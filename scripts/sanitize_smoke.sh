#!/usr/bin/env bash
# Builds a sanitizer preset and runs a slice of the test suite under it.
#
# Default preset is asan-ubsan with the schedule-cache / run-compression
# suite (plus the randomized copy fuzzer).  Pass --preset=tsan to run the
# ThreadSanitizer build instead; its default filter is the transport /
# executor / split-phase suites, where the cross-thread mailbox traffic
# lives.
#
# Usage: scripts/sanitize_smoke.sh [--preset=asan-ubsan|tsan] [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=asan-ubsan
if [[ "${1:-}" == --preset=* ]]; then
  PRESET="${1#--preset=}"
  shift
fi

case "$PRESET" in
  asan-ubsan)
    BUILD_DIR=build-asan
    DEFAULT_FILTER="test_run_compression|test_schedule_cache|test_schedule_invariants|test_fuzz_copy|test_localize_batch|test_run_kernels|test_schedule_delta|test_topology|test_server|test_server_sharing|test_snapshot"
    ;;
  tsan)
    BUILD_DIR=build-tsan
    DEFAULT_FILTER="test_transport|test_transport_extra|test_executor|test_split_phase|test_localize_batch|test_run_kernels|test_schedule_delta|test_topology|test_server|test_server_sharing|test_snapshot"
    ;;
  *)
    echo "unknown preset: $PRESET (expected asan-ubsan or tsan)" >&2
    exit 2
    ;;
esac

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "$(nproc)"

FILTER="${1:-$DEFAULT_FILTER}"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR" -R "$FILTER" --output-on-failure -j 2
