#!/usr/bin/env bash
# Builds the asan-ubsan preset and runs the schedule-cache / run-compression
# test suite (plus the randomized copy fuzzer) under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/sanitize_smoke.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

FILTER="${1:-test_run_compression|test_schedule_cache|test_schedule_invariants|test_fuzz_copy}"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan -R "$FILTER" --output-on-failure -j 2
