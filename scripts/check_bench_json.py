#!/usr/bin/env python3
"""Validate BENCH_*.json files against the mc-bench-v1 schema.

The schema is pinned by src/obs/json.h (obs::BenchReport, the one emitter
every bench binary routes through):

    {
      "schema": "mc-bench-v1",
      "benchmark": "<name>",
      "config":  { "<key>": number | string, ... },
      "cases": [
        { "name": "<case>",
          "metrics": {
            "<dotted.metric>": number | null,
            "<dotted.metric>": { "count": N, "mean": x|null, "min": x|null,
                                 "max": x|null, "stddev": x|null, "sum": x }
          } }, ... ]
    }

Conventions enforced here:
  * keys (config, case names, metric names) are snake_case dotted paths:
    [a-z0-9_] segments joined by '.', starting with a letter;
  * every time-valued metric name ends in "_seconds" — and vice versa, a
    *_seconds metric must be a number/null/stat like any other (no strings);
  * a stat-valued metric carries exactly the six RunningStat fields —
    or exactly those six plus "p50"/"p99" (a quantile stat from a
    Reservoir) — with "count" a non-negative integer; count == 0 requires
    null mean/min/max/stddev (and null p50/p99), an empty stat is
    explicit, never a fake zero;
  * benchmarks listed in REQUIRED_FINITE must carry each named metric in
    every case, as a finite number (null or a stat does not satisfy it) —
    e.g. a repartition report without its migration_fraction cannot show
    the workload stayed in the small-migration regime the speedup claims;
  * benchmarks listed in REQUIRED_QUANTILES must carry each named metric
    in every case as a *non-empty quantile stat* with finite p50/p99 — a
    latency report without percentiles cannot support a tail-latency
    claim.

Usage: check_bench_json.py FILE [FILE...]   (exits non-zero on any failure)
"""

import json
import math
import re
import sys

KEY_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
STAT_FIELDS = {"count", "mean", "min", "max", "stddev", "sum"}
QUANTILE_FIELDS = {"p50", "p99"}

# benchmark name -> metrics each of its cases must report as finite numbers.
REQUIRED_FINITE = {
    "repartition": ("migration_fraction", "bytes_migrated"),
    "server": ("latency_p50_seconds", "latency_p99_seconds",
               "sched_share.hit_rate", "batch.occupancy_mean"),
    # Per-link-class traffic attribution: a data-move report that cannot
    # say how many messages crossed nodes cannot support a topology claim.
    "data_move": ("link.inter_node.messages", "link.inter_node.bytes",
                  "link.intra_node.messages", "link.intra_node.bytes",
                  "link.forwarded.messages", "link.forwarded.bytes"),
    # Warm-start evidence: a snapshot report that cannot say how much state
    # was restored or how the first request compared cold-vs-warm cannot
    # support a warm-start claim.  The cold case reports restore volume 0
    # and speedup 1.0 — finite, never null.
    "snapshot": ("restore_bytes", "restore_entries",
                 "first_request_speedup"),
}

# benchmark name -> metrics each of its cases must report as non-empty
# quantile stats (the six RunningStat fields + finite p50/p99).
REQUIRED_QUANTILES = {
    "server": ("latency_seconds",),
}


def is_number(v):
    # bool is an int subclass; a bare true/false is never a valid metric.
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_key(errors, where, key):
    if not KEY_RE.match(key):
        errors.append(f"{where}: key '{key}' is not a snake_case dotted path")


def check_stat(errors, where, v):
    fields = set(v.keys())
    if fields != STAT_FIELDS and fields != STAT_FIELDS | QUANTILE_FIELDS:
        errors.append(
            f"{where}: stat object has fields {sorted(fields)}, "
            f"expected {sorted(STAT_FIELDS)} (optionally plus "
            f"{sorted(QUANTILE_FIELDS)})")
        return
    count = v["count"]
    if not is_number(count) or count < 0 or count != int(count):
        errors.append(f"{where}: stat 'count' must be a non-negative integer")
        return
    moments = ["mean", "min", "max", "stddev"]
    moments += sorted(fields & QUANTILE_FIELDS)
    if count == 0:
        for m in moments:
            if v[m] is not None:
                errors.append(
                    f"{where}: empty stat (count 0) must have null '{m}', "
                    f"got {v[m]!r}")
    else:
        for m in moments + ["sum"]:
            if not is_number(v[m]):
                errors.append(
                    f"{where}: non-empty stat field '{m}' must be a number, "
                    f"got {v[m]!r}")


def check_metric(errors, where, name, v):
    check_key(errors, where, name)
    if v is None or is_number(v):
        return
    if isinstance(v, dict):
        check_stat(errors, f"{where}.{name}", v)
        return
    errors.append(
        f"{where}: metric '{name}' must be a number, null, or a stat "
        f"object, got {type(v).__name__}")


def check_report(errors, path, doc):
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level must be an object")
        return
    if doc.get("schema") != "mc-bench-v1":
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      f"expected 'mc-bench-v1'")
    if not isinstance(doc.get("benchmark"), str) or not doc.get("benchmark"):
        errors.append(f"{path}: 'benchmark' must be a non-empty string")
    extra = set(doc.keys()) - {"schema", "benchmark", "config", "cases"}
    if extra:
        errors.append(f"{path}: unexpected top-level keys {sorted(extra)}")

    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append(f"{path}: 'config' must be an object")
    else:
        for key, v in config.items():
            check_key(errors, f"{path}:config", key)
            if not (is_number(v) or isinstance(v, str)):
                errors.append(f"{path}:config: '{key}' must be a number or "
                              f"string, got {type(v).__name__}")

    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{path}: 'cases' must be a non-empty array")
        return
    seen = set()
    for i, case in enumerate(cases):
        where = f"{path}:cases[{i}]"
        if not isinstance(case, dict):
            errors.append(f"{where}: must be an object")
            continue
        name = case.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: 'name' must be a non-empty string")
        else:
            check_key(errors, where, name)
            if name in seen:
                errors.append(f"{where}: duplicate case name '{name}'")
            seen.add(name)
        if set(case.keys()) != {"name", "metrics"}:
            errors.append(f"{where}: must have exactly 'name' and 'metrics', "
                          f"got {sorted(case.keys())}")
            continue
        metrics = case["metrics"]
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"{where}: 'metrics' must be a non-empty object")
            continue
        for mname, v in metrics.items():
            check_metric(errors, where, mname, v)
        for req in REQUIRED_FINITE.get(doc.get("benchmark"), ()):
            v = metrics.get(req)
            if not is_number(v) or not math.isfinite(v):
                errors.append(
                    f"{where}: benchmark '{doc.get('benchmark')}' requires "
                    f"metric '{req}' as a finite number, got {v!r}")
        for req in REQUIRED_QUANTILES.get(doc.get("benchmark"), ()):
            v = metrics.get(req)
            ok = (isinstance(v, dict)
                  and set(v.keys()) == STAT_FIELDS | QUANTILE_FIELDS
                  and is_number(v.get("count")) and v["count"] > 0
                  and all(is_number(v.get(q)) and math.isfinite(v[q])
                          for q in QUANTILE_FIELDS))
            if not ok:
                errors.append(
                    f"{where}: benchmark '{doc.get('benchmark')}' requires "
                    f"metric '{req}' as a non-empty quantile stat with "
                    f"finite p50/p99, got {v!r}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: {e}")
            continue
        check_report(errors, path, doc)
    for e in errors:
        print(f"check_bench_json: {e}", file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(argv) - 1} file(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
