// Ablation: message aggregation.  Meta-Chaos sends at most one message per
// processor pair (paper Section 4.1.4: "Messages are aggregated, so that at
// most one message is sent between each source and each destination
// processor"); this ablation executes the same schedule with one message
// per *run of elements* instead, showing what aggregation buys under a
// latency-bearing network.
#include <cstdio>

#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

/// Unaggregated executor: one message per 64-element slice of each plan.
void executeUnaggregated(transport::Comm& c, const core::McSchedule& sched,
                         std::span<const double> src, std::span<double> dst) {
  constexpr size_t kSlice = 64;
  const int tag = c.nextUserTag();
  for (const sched::OffsetPlan& plan : sched.plan.sends) {
    const std::vector<Index> offsets = plan.expandedOffsets();
    for (size_t base = 0; base < offsets.size(); base += kSlice) {
      const size_t end = std::min(offsets.size(), base + kSlice);
      std::vector<double> buf;
      c.compute([&] {
        buf.reserve(end - base);
        for (size_t i = base; i < end; ++i) {
          buf.push_back(src[static_cast<size_t>(offsets[i])]);
        }
      });
      c.send(plan.peer, tag, buf);
    }
  }
  c.compute([&] {
    for (const auto& [from, to] : sched.plan.expandedLocalPairs()) {
      dst[static_cast<size_t>(to)] = src[static_cast<size_t>(from)];
    }
  });
  for (const sched::OffsetPlan& plan : sched.plan.recvs) {
    const std::vector<Index> offsets = plan.expandedOffsets();
    for (size_t base = 0; base < offsets.size(); base += kSlice) {
      const size_t end = std::min(offsets.size(), base + kSlice);
      const std::vector<double> buf = c.recv<double>(plan.peer, tag);
      MC_REQUIRE(buf.size() == end - base, "slice mismatch: rank %d peer %d got %zu want %zu planlen %zu", c.rank(), plan.peer, buf.size(), end - base, offsets.size());
      c.compute([&] {
        for (size_t i = base; i < end; ++i) {
          dst[static_cast<size_t>(offsets[i])] = buf[i - base];
        }
      });
    }
  }
}

}  // namespace

int main() {
  const Index n = 65536;
  constexpr int kIters = 3;
  const std::vector<int> procs = {2, 4, 8};
  std::vector<double> agg, unagg;
  std::vector<double> aggMsgs, unaggMsgs;

  for (int np : procs) {
    double tAgg = 0, tUnagg = 0, mAgg = 0, mUnagg = 0;
    transport::World::runSPMD(np, [&](transport::Comm& c) {
      parti::BlockDistArray<double> a(c, Shape::of({256, 256}), 0);
      a.fillByPoint([](const Point& p) { return static_cast<double>(p[0]); });
      const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 3);
      auto table = std::make_shared<const chaos::TranslationTable>(
          chaos::TranslationTable::build(
              c, mine, n, chaos::TranslationTable::Storage::kDistributed));
      chaos::IrregArray<double> x(c, table, mine);
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::section(RegularSection::box({0, 0}, {255, 255})));
      std::vector<Index> ids(static_cast<size_t>(n));
      for (Index k = 0; k < n; ++k) ids[static_cast<size_t>(k)] = k;
      dstSet.add(core::Region::indices(ids));
      const core::McSchedule sched = core::computeSchedule(
          c, core::PartiAdapter::describe(a), srcSet,
          core::ChaosAdapter::describe(x), dstSet);

      bench::PhaseTimer timer(c);
      c.resetStats();
      for (int it = 0; it < kIters; ++it) {
        core::dataMove<double>(c, sched, a.raw(), x.raw());
      }
      const double t1 = timer.lap() / kIters;
      const double m1 =
          static_cast<double>(c.stats().messagesSent) / kIters;
      c.resetStats();
      for (int it = 0; it < kIters; ++it) {
        executeUnaggregated(c, sched, a.raw(), x.raw());
      }
      const double t2 = timer.lap() / kIters;
      const double m2 =
          static_cast<double>(c.stats().messagesSent) / kIters;
      if (c.rank() == 0) {
        tAgg = t1;
        tUnagg = t2;
        mAgg = m1;
        mUnagg = m2;
      }
    });
    agg.push_back(tAgg);
    unagg.push_back(tUnagg);
    aggMsgs.push_back(mAgg);
    unaggMsgs.push_back(mUnagg);
  }
  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));
  std::printf("%s\n",
              bench::renderTable(
                  "Ablation: message aggregation, 65536-element "
                  "regular->irregular copy [ms]",
                  cols,
                  {
                      bench::Row{"aggregated (1 msg/pair)", agg, {}},
                      bench::Row{"64-element slices", unagg, {}},
                  })
                  .c_str());
  std::printf("messages per iteration on rank 0: aggregated %.0f/%.0f/%.0f, "
              "sliced %.0f/%.0f/%.0f\n",
              aggMsgs[0], aggMsgs[1], aggMsgs[2], unaggMsgs[0], unaggMsgs[1],
              unaggMsgs[2]);
  return 0;
}
