// Micro benchmark for incremental delta schedules under an adaptive
// workload (DESIGN.md §14).
//
// A regular Parti mesh feeds an irregularly partitioned Chaos mesh whose
// RCB partition tracks a slowly shearing particle cloud: each epoch the
// coordinates drift, the RCB partitioner reassigns a small fraction of the
// points, and the copy schedule must follow.  Two strategies per epoch:
//
//   full_rebuild — a fresh inspector build against the new distribution
//                  (duplication method: both descriptors enumerated, cost
//                  proportional to the whole set);
//   patch        — core::patchSchedule against the migrated-interval delta
//                  (cost proportional to the migration), with the payload
//                  moved by the generated redistribution move and the
//                  executor re-bound in place.
//
// Both produce bit-identical schedules and bit-identical data movement —
// the bench verifies this every epoch — so the entire gap is inspector
// cost.  stableRemapOrder keeps surviving elements at their old offsets;
// without it every epoch would migrate everything and the delta machinery
// would have nothing to reuse.  Emits BENCH_repartition.json (mc-bench-v1)
// with migration_fraction and bytes_migrated so the validator can check
// the workload stayed in the small-migration regime.
#include <cstdio>
#include <numeric>

#include "chaos/migration.h"
#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/copy_regions.h"
#include "layout/dist_delta.h"
#include "obs/json.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;
constexpr Index kSide = 96;  // 96x96 cloud -> 9216 irregular points
constexpr Index kN = kSide * kSide;
constexpr int kEpochs = 8;
constexpr double kShearPerEpoch = 0.35;  // tuned: <10% migration per epoch
constexpr double kQueryCost = 15e-6;     // modeled Chaos dereference cost

/// Particle coordinates after `epochs` of shear drift: rows slide right
/// proportionally to their height, so RCB's vertical cuts capture a slowly
/// changing population.
void cloudAt(int epochs, std::vector<double>& x, std::vector<double>& y) {
  x.resize(static_cast<std::size_t>(kN));
  y.resize(static_cast<std::size_t>(kN));
  const double t = kShearPerEpoch * epochs;
  for (Index g = 0; g < kN; ++g) {
    const double row = static_cast<double>(g / kSide);
    const double col = static_cast<double>(g % kSide);
    x[static_cast<std::size_t>(g)] =
        col + t * (row / static_cast<double>(kSide));
    y[static_cast<std::size_t>(g)] = row;
  }
}

std::shared_ptr<chaos::IrregArray<double>> makeArray(
    transport::Comm& c, const std::vector<Index>& mine) {
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, kN, chaos::TranslationTable::Storage::kReplicated,
          kQueryCost));
  return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
}

bool plansEqual(const sched::Schedule& a, const sched::Schedule& b) {
  if (a.sends.size() != b.sends.size() || a.recvs.size() != b.recvs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.sends.size(); ++i) {
    if (a.sends[i].peer != b.sends[i].peer ||
        a.sends[i].runs != b.sends[i].runs ||
        a.sends[i].offsets != b.sends[i].offsets) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.recvs.size(); ++i) {
    if (a.recvs[i].peer != b.recvs[i].peer ||
        a.recvs[i].runs != b.recvs[i].runs ||
        a.recvs[i].offsets != b.recvs[i].offsets) {
      return false;
    }
  }
  return a.localRuns == b.localRuns && a.localPairs == b.localPairs;
}

struct EpochResult {
  double rebuildSeconds = 0;
  double patchSeconds = 0;
  Index migrated = 0;
  bool identical = true;       // plans + provenance patched == rebuilt
  bool dataIdentical = true;   // executed destination bitwise equal
};

}  // namespace

int main() {
  std::vector<EpochResult> epochs(kEpochs);
  std::uint64_t rebindAllocations = ~0ull;
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    // Fixed source: a block-distributed regular mesh covering the cloud.
    parti::BlockDistArray<double> a(c, Shape::of({kSide, kSide}),
                                    /*ghost=*/1);
    a.fillByPoint([](const Point& p) {
      return static_cast<double>(p[0] * kSide + p[1]);
    });
    const core::DistObject aObj = core::PartiAdapter::describe(a);
    core::SetOfRegions aSet;
    aSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    // Destination set: the identity index list (lin == global index), so
    // deltaFromMigratedIndices maps migrated globals 1:1.
    core::SetOfRegions xSet;
    std::vector<Index> ids(static_cast<std::size_t>(kN));
    std::iota(ids.begin(), ids.end(), Index{0});
    xSet.add(core::Region::indices(ids));

    std::vector<double> xc, yc;
    cloudAt(0, xc, yc);
    auto cur = makeArray(c, chaos::rcbPartition(xc, yc, kProcs, c.rank()));
    cur->fillByGlobal([](Index g) { return 1000.0 + static_cast<double>(g); });

    core::McSchedule sched = core::computeSchedule(
        c, aObj, aSet, core::ChaosAdapter::describe(*cur), xSet,
        core::Method::kDuplication);
    sched::Executor<double> ex(c, sched.plan);

    bench::PhaseTimer timer(c);
    for (int e = 0; e < kEpochs; ++e) {
      // --- the repartitioning itself (not timed against either leg) ------
      cloudAt(e + 1, xc, yc);
      const std::vector<Index> newMine = chaos::stableRemapOrder(
          cur->myGlobals(), chaos::rcbPartition(xc, yc, kProcs, c.rank()));
      const std::vector<Index> migrated =
          chaos::migratedGlobals(c, cur->myGlobals(), newMine, kN);
      const layout::DistDelta delta =
          core::deltaFromMigratedIndices(xSet, migrated);
      auto next = makeArray(c, newMine);
      const core::DistObject curObj = core::ChaosAdapter::describe(*cur);
      const core::DistObject nextObj = core::ChaosAdapter::describe(*next);

      // Payload migration: unmigrated elements keep (owner, offset) — a
      // straight overlap copy carries them; the generated redistribution
      // move handles exactly the delta-marked rest.
      {
        const auto src = cur->raw();
        auto dst = next->raw();
        for (std::size_t i = 0; i < std::min(src.size(), dst.size()); ++i) {
          dst[i] = src[i];
        }
        const sched::Schedule move =
            core::buildRedistMove(c, curObj, nextObj, xSet, delta);
        sched::execute<double>(c, move, src, dst, c.nextUserTag());
      }
      timer.lap();

      // --- full rebuild leg ---------------------------------------------
      const core::McSchedule rebuilt = core::computeSchedule(
          c, aObj, aSet, nextObj, xSet, core::Method::kDuplication);
      const double tRebuild = timer.lap();

      // --- patch leg ----------------------------------------------------
      const core::McSchedule patched =
          core::patchSchedule(c, sched, delta, aObj, aSet, nextObj, xSet);
      const double tPatch = timer.lap();

      const bool identical = plansEqual(patched.plan, rebuilt.plan) &&
                             patched.sendSegs == rebuilt.sendSegs &&
                             patched.recvSegs == rebuilt.recvSegs;

      // Rebind in place and verify the moved bytes match a rebuilt-and-
      // rebound executor bitwise.  The owning overload keeps the plan
      // alive across iterations after the loop-local `patched` dies.
      ex.rebind(std::make_shared<const sched::Schedule>(patched.plan));
      next->fillByGlobal([](Index) { return -1.0; });
      ex.run(a.raw(), next->raw(), c.nextUserTag());
      const std::vector<double> viaPatch = next->gatherGlobal();
      next->fillByGlobal([](Index) { return -1.0; });
      sched::execute<double>(c, rebuilt.plan, a.raw(), next->raw(),
                             c.nextUserTag());
      const bool dataIdentical = viaPatch == next->gatherGlobal();

      if (c.rank() == 0) {
        epochs[static_cast<std::size_t>(e)] =
            EpochResult{tRebuild, tPatch,
                        static_cast<Index>(migrated.size()), identical,
                        dataIdentical};
      }
      cur = next;
      sched = patched;
    }

    // Steady state after a rebind: one warm-up step repopulates the
    // recycled-buffer set, then a run performs no payload allocations on
    // any rank.  The barrier lets every rank's drained-buffer overflow
    // reach the world pool before any rank's next send asks for it.
    ex.run(a.raw(), cur->raw(), c.nextUserTag());
    c.barrier();
    const auto before = c.stats();
    ex.run(a.raw(), cur->raw(), c.nextUserTag());
    const std::uint64_t allocs = (c.stats() - before).allocations;
    const std::uint64_t worst = static_cast<std::uint64_t>(
        c.allreduceValue(static_cast<double>(allocs),
                         [](double p, double q) { return p > q ? p : q; }));
    if (c.rank() == 0) rebindAllocations = worst;
  });

  double tRebuild = 0, tPatch = 0;
  Index migratedTotal = 0;
  bool allIdentical = true;
  for (const EpochResult& e : epochs) {
    tRebuild += e.rebuildSeconds;
    tPatch += e.patchSeconds;
    migratedTotal += e.migrated;
    allIdentical = allIdentical && e.identical && e.dataIdentical;
  }
  const double migrationFraction =
      static_cast<double>(migratedTotal) /
      (static_cast<double>(kN) * kEpochs);
  const double speedup = tPatch > 0 ? tRebuild / tPatch : 0.0;

  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Repartitioning: %d RCB drift epochs of a %lld-"
                            "point irregular mesh, %d processors [ms]",
                            kEpochs, static_cast<long long>(kN), kProcs),
                  {"total"},
                  {
                      bench::Row{"full rebuild", {tRebuild}, {}},
                      bench::Row{"patch (delta)", {tPatch}, {}},
                  })
                  .c_str());
  std::printf("migration fraction %.4f (avg/epoch), schedules %s, "
              "rebind allocations/step %llu, speedup %.1fx\n",
              migrationFraction,
              allIdentical ? "bit-identical" : "MISMATCH",
              static_cast<unsigned long long>(rebindAllocations), speedup);
  if (!allIdentical) {
    std::fprintf(stderr, "FATAL: patched schedule diverged from rebuild\n");
    return 1;
  }

  obs::BenchReport report("repartition");
  report.config("procs", kProcs);
  report.config("points", static_cast<double>(kN));
  report.config("epochs", kEpochs);
  report.config("shear_per_epoch", kShearPerEpoch);
  obs::BenchReport::Case& rebuild = report.addCase("full_rebuild");
  rebuild.metric("total_seconds", tRebuild);
  rebuild.metric("migration_fraction", migrationFraction);
  rebuild.metric("bytes_migrated",
                 static_cast<double>(migratedTotal) * sizeof(double));
  obs::BenchReport::Case& patch = report.addCase("patch");
  patch.metric("total_seconds", tPatch);
  patch.metric("migration_fraction", migrationFraction);
  patch.metric("bytes_migrated",
               static_cast<double>(migratedTotal) * sizeof(double));
  patch.metric("speedup", speedup);
  patch.metric("schedules_identical", allIdentical ? 1.0 : 0.0);
  patch.metric("rebind_allocations_per_step",
               static_cast<double>(rebindAllocations));
  report.write("BENCH_repartition.json");
  std::printf("wrote BENCH_repartition.json\n");
  return 0;
}
