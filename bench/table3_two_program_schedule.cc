// Table 3 of the paper: Meta-Chaos schedule-computation time for two
// separate programs — Preg (Multiblock Parti, 256x256 mesh) and Pirreg
// (Chaos, 65536 points) — over every combination of 2/4/8 processors per
// program, using the cooperation method.
//
// Expected shape (paper): the time depends almost entirely on the number of
// Pirreg processors (the Chaos dereference work lives there) and drops
// near-linearly with them, while adding Preg processors changes little.
#include <cstdio>

#include "common/two_program_mesh.h"

using namespace mc;

int main() {
  const std::vector<int> procs = {2, 4, 8};
  const double paper[3][3] = {
      {1350, 726, 396}, {1377, 738, 403}, {1381, 718, 398}};

  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("Pirreg=" + std::to_string(np));
  std::vector<bench::Row> rows;
  for (size_t r = 0; r < procs.size(); ++r) {
    std::vector<double> measured;
    for (int npIrreg : procs) {
      measured.push_back(
          bench::runTwoProgramMesh(procs[r], npIrreg).schedule);
    }
    rows.push_back(bench::Row{
        "Preg=" + std::to_string(procs[r]), measured,
        {paper[r][0], paper[r][1], paper[r][2]}});
  }
  std::printf("%s\n",
              bench::renderTable(
                  "Table 3: Meta-Chaos schedule computation, two programs, "
                  "cooperation method [ms]",
                  cols, rows)
                  .c_str());
  return 0;
}
