// Ablation: translation-table storage policy.
//
// Chaos can replicate the translation table (O(1)-communication dereference
// but O(array) memory per processor) or distribute it (O(array/P) memory
// but a collective exchange per dereference).  This ablation measures both
// the dereference cost and the cost of *shipping* a distributed table
// (gatherFull) — the operation that makes the paper's duplication method
// impractical across programs for Chaos data.
#include <cstdio>
#include <numeric>

#include "chaos/partition.h"
#include "chaos/ttable.h"
#include "common/bench_util.h"

using namespace mc;
using layout::Index;

int main() {
  const Index n = 65536;
  const std::vector<int> procs = {2, 4, 8, 16};
  std::vector<double> replicated, distributed, ship;

  for (int np : procs) {
    double tRepl = 0, tDist = 0, tShip = 0;
    transport::World::runSPMD(np, [&](transport::Comm& c) {
      const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 5);
      const auto repl = chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kReplicated, 30e-6);
      const auto dist = chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kDistributed, 30e-6);
      // Every processor dereferences its 1/P slice of the index space, the
      // access pattern of a cooperation-style schedule build.
      const Index chunk = (n + c.size() - 1) / c.size();
      const Index lo = chunk * c.rank();
      const Index hi = std::min(n, lo + chunk);
      std::vector<Index> queries(static_cast<size_t>(std::max<Index>(0, hi - lo)));
      std::iota(queries.begin(), queries.end(), lo);

      bench::PhaseTimer timer(c);
      (void)repl.dereference(c, queries);
      const double t1 = timer.lap();
      (void)dist.dereference(c, queries);
      const double t2 = timer.lap();
      (void)dist.gatherFull(c);
      const double t3 = timer.lap();
      if (c.rank() == 0) {
        tRepl = t1;
        tDist = t2;
        tShip = t3;
      }
    });
    replicated.push_back(tRepl);
    distributed.push_back(tDist);
    ship.push_back(tShip);
  }
  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));
  std::printf("%s\n",
              bench::renderTable(
                  "Ablation: translation-table policy, 65536 elements, "
                  "1/P dereferences per processor [ms]",
                  cols,
                  {
                      bench::Row{"replicated dereference", replicated, {}},
                      bench::Row{"distributed dereference", distributed, {}},
                      bench::Row{"ship distributed table", ship, {}},
                  })
                  .c_str());
  std::printf("expected: the dereference rows track each other (modeled\n"
              "lookup cost dominates); shipping the table is pure O(array)\n"
              "communication — the duplication method's hidden cost.\n");
  return 0;
}
