// Multi-tenant compute-server sweep (the Figure 10 family, pushed to the
// service regime the paper gestures at in Section 6): one 8-process HPF
// matvec server on 4 nodes, swept to 100+ single-process clients with
// heavy-tailed (bounded-Pareto, seeded, deterministic) arrivals on the
// virtual clock.  Clients draw from a small set of distinct operand
// layouts (pads {0, 5, 32}) and two matrices, so the server's layout-keyed
// schedule sharing and its batching scheduler both engage: at 64+ clients
// over 3 layouts the sharing hit rate exceeds 95%, and batching
// (maxBatch=8) is A/B'd against serial execution (maxBatch=1) at every
// client count to expose the p99 latency win.
//
// A second sweep varies server processes per node (server on 8, 4, 2, 1
// nodes -> 1, 2, 4, 8 procs per node) with a per-message NIC cost on every
// inter-node link — the Section 5.4 regime where latencies rise again as
// node sharing grows.  Each point is A/B'd flat against topology-aware
// execution (node-aggregated executors + hierarchical collectives) under
// the *same* network parameters, so the aggregated path's flattening of
// the curve is attributable to messaging strategy alone.
//
// Emits BENCH_server.json (mc-bench-v1): per case, the full latency
// reservoir with p50/p99, admission-queue accounting, batch occupancy, and
// the schedule-sharing hit rate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/json.h"
#include "sched/node_agg.h"
#include "server/client_session.h"
#include "server/compute_server.h"
#include "util/stats.h"

using namespace mc;
using layout::Index;
using layout::Point;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

namespace {

constexpr int kServerProcs = 8;
constexpr int kServerNodes = 4;
const int kPads[] = {0, 5, 32};  // 3 distinct layout fingerprints
constexpr int kNumPads = 3;
constexpr int kNumMatrices = 2;

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
double uniform01(std::uint64_t& s) {
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
}

double vectorEntry(Index i, int iter) {
  return static_cast<double>((i + iter) % 13) - 6.0;
}

struct SweepResult {
  Reservoir latencies{4096, 0x5eedull};
  server::ServerStats stats;
  std::uint64_t backoffs = 0;
  std::uint64_t requests = 0;
};

/// One server/clients world.  `serverNodes` controls node sharing on the
/// server side; `nicPerMessage` puts a per-message cost on every inter-node
/// link; `topologyAware` switches on node-aggregated executors plus
/// hierarchical collectives (the network parameters stay the same, only the
/// messaging strategy changes).
SweepResult runSweep(int numClients, int requestsPerClient,
                     std::uint64_t seed, Index n, int maxBatch,
                     int serverNodes = kServerNodes,
                     double nicPerMessage = 0.0, bool topologyAware = false) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(numClients));
  std::vector<int> backoffs(static_cast<std::size_t>(numClients), 0);
  server::ServerStats stats;

  transport::WorldOptions options;
  options.net.interNode = transport::atmParams();
  options.net.interProgram = transport::atmParams();
  options.net.contention = true;
  options.net.nodesPerProgram.assign(
      static_cast<std::size_t>(numClients) + 1, 1);
  options.net.nodesPerProgram[0] = serverNodes;
  options.net.interNode.nicPerMessage = nicPerMessage;
  options.net.hierarchicalCollectives = topologyAware;
  // Process-wide, captured at executor bind; set before the world's threads
  // launch and restored after they all join.
  sched::setNodeAggregation(topologyAware);

  // Heavy-tailed think time: bounded Pareto (alpha=1.5) scaled to the
  // per-request service estimate, so large client counts queue up bursts.
  const double xm = 2.0 * 2.0 * static_cast<double>(n) *
                    static_cast<double>(n) /
                    (static_cast<double>(kServerProcs) * 4e6);

  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", kServerProcs, [&](Comm& c) {
    server::ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = numClients;
    cfg.queueDepth = 16;
    cfg.maxBatch = maxBatch;
    server::ComputeServer srv(c, cfg);
    srv.run();
    if (c.rank() == 0) stats = srv.stats();
  }});
  for (int i = 0; i < numClients; ++i) {
    specs.push_back(ProgramSpec{
        "client" + std::to_string(i), 1, [&, i](Comm& c) {
          server::SessionConfig scfg;
          scfg.n = n;
          scfg.pad = kPads[i % kNumPads];
          scfg.matrixId = i % kNumMatrices;
          scfg.serverProgram = 0;
          server::ClientSession session(c, scfg);
          std::uint64_t rng = seed ^ (0x9e3779b97f4a7c15ull *
                                      static_cast<std::uint64_t>(i + 1));
          session.attach();
          for (int it = 0; it < requestsPerClient; ++it) {
            double think =
                xm * std::pow(1.0 - uniform01(rng), -1.0 / 1.5);
            think = std::min(think, 50.0 * xm);
            c.advance(think);
            session.x().fillByPoint([&](const Point& p) {
              return vectorEntry(p[0], i * 31 + it);
            });
            const server::RequestResult r = session.request();
            latencies[static_cast<std::size_t>(i)].push_back(
                r.latencySeconds);
            if (r.backedOff) backoffs[static_cast<std::size_t>(i)] += 1;
          }
          session.detach();
        }});
  }
  World::run(specs, options);
  sched::setNodeAggregation(false);

  SweepResult res;
  res.stats = stats;
  // Aggregate in client order, so the reservoir content is independent of
  // completion interleaving.
  for (int i = 0; i < numClients; ++i) {
    for (const double lat : latencies[static_cast<std::size_t>(i)]) {
      res.latencies.add(lat);
      res.requests += 1;
    }
    res.backoffs += static_cast<std::uint64_t>(
        backoffs[static_cast<std::size_t>(i)]);
  }
  return res;
}

obs::BenchReport::Case& addCase(obs::BenchReport& report,
                                const std::string& name, const SweepResult& r,
                                int clients, double p99VsUnbatched) {
  obs::BenchReport::Case& c = report.addCase(name);
  c.metric("clients", static_cast<double>(clients));
  c.metric("requests", static_cast<double>(r.requests));
  c.metric("latency_seconds", r.latencies);
  c.metric("latency_p50_seconds", r.latencies.p50());
  c.metric("latency_p99_seconds", r.latencies.p99());
  c.metric("sched_share.hit_rate", r.stats.hitRate());
  c.metric("sched_share.hits", static_cast<double>(r.stats.schedShareHits));
  c.metric("sched_share.misses",
           static_cast<double>(r.stats.schedShareMisses));
  c.metric("sharing.max_degree",
           static_cast<double>(r.stats.maxSharingDegree));
  c.metric("batch.occupancy_mean", r.stats.batchOccupancy.count() > 0
                                       ? r.stats.batchOccupancy.mean()
                                       : 1.0);
  c.metric("batch.count", static_cast<double>(r.stats.batches));
  c.metric("batch.max_occupancy",
           static_cast<double>(r.stats.maxBatchOccupancy));
  c.metric("queue.max_depth", static_cast<double>(r.stats.maxQueueDepth));
  c.metric("queue.rejected", static_cast<double>(r.stats.rejected));
  c.metric("queue.deferred", static_cast<double>(r.stats.deferred));
  c.metric("client_backoffs", static_cast<double>(r.backoffs));
  if (p99VsUnbatched > 0) c.metric("p99_vs_unbatched", p99VsUnbatched);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> clientCounts = {16, 64, 128};
  int requests = 6;
  std::uint64_t seed = 12345;
  Index n = 128;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--clients=", 0) == 0) {
      clientCounts.clear();
      std::string rest = arg.substr(10);
      for (std::size_t pos = 0; pos < rest.size();) {
        const std::size_t comma = rest.find(',', pos);
        const std::size_t end = comma == std::string::npos ? rest.size()
                                                           : comma;
        clientCounts.push_back(std::atoi(rest.substr(pos, end - pos).c_str()));
        pos = end + 1;
      }
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--n=", 0) == 0) {
      n = std::atoi(arg.c_str() + 4);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return 1;
    }
  }

  obs::BenchReport report("server");
  report.config("server_procs", kServerProcs);
  report.config("server_nodes", kServerNodes);
  report.config("n", static_cast<double>(n));
  report.config("requests_per_client", requests);
  report.config("seed", static_cast<double>(seed));
  report.config("distinct_layouts", kNumPads);
  report.config("matrices", kNumMatrices);
  report.config("sweep_nic_per_message_seconds", 100e-6);

  std::printf(
      "== compute-server sweep: %d-process server on %d nodes, n=%lld ==\n",
      kServerProcs, kServerNodes, static_cast<long long>(n));
  std::printf("%8s %12s %12s %12s %10s %10s %10s\n", "clients", "p50[ms]",
              "p99[ms]", "p99/serial", "hit_rate", "batch_avg", "rejected");
  for (const int clients : clientCounts) {
    const SweepResult serial =
        runSweep(clients, requests, seed, n, /*maxBatch=*/1);
    const SweepResult batched =
        runSweep(clients, requests, seed, n, /*maxBatch=*/8);
    const double ratio = serial.latencies.p99() > 0
                             ? batched.latencies.p99() / serial.latencies.p99()
                             : 1.0;
    const std::string tag = "c" + std::to_string(clients);
    addCase(report, tag + "_unbatched", serial, clients, 0.0);
    addCase(report, tag + "_batched", batched, clients, ratio);
    std::printf("%8d %12.3f %12.3f %12.2f %10.3f %10.2f %10llu\n", clients,
                1e3 * batched.latencies.p50(), 1e3 * batched.latencies.p99(),
                ratio, batched.stats.hitRate(),
                batched.stats.batchOccupancy.count() > 0
                    ? batched.stats.batchOccupancy.mean()
                    : 1.0,
                static_cast<unsigned long long>(batched.stats.rejected));
  }

  // Processes-per-node contention sweep (Section 5.4): the same 8-process
  // server packed onto fewer nodes, with a per-message NIC cost on every
  // inter-node link.  Flat execution pays one message per remote rank and
  // one flat collective hop per rank, both scaled by node sharing, so
  // latency climbs with procs per node; the topology-aware legs (same
  // network, node-aggregated executors + hierarchical collectives) flatten
  // the curve.
  constexpr double kNicPerMessage = 100e-6;
  const int sweepClients = clientCounts.front();
  std::printf(
      "\n== procs-per-node contention sweep: %d clients, nic/message %.0f us "
      "==\n",
      sweepClients, kNicPerMessage * 1e6);
  std::printf("%8s %8s %15s %15s %14s %10s\n", "nodes", "ppn",
              "flat mean[ms]", "topo mean[ms]", "topo p99[ms]", "speedup");
  for (const int nodes : {8, 4, 2, 1}) {
    const int ppn = kServerProcs / nodes;
    // Serial execution (maxBatch=1): batching composition is sensitive to
    // tiny timing shifts, which would swamp the messaging-strategy signal
    // this sweep isolates.  The headline number is the *mean* latency over
    // all requests — tail order under queueing is chaotic in both legs,
    // the mean is where the per-message NIC saving shows cleanly.
    const SweepResult flat =
        runSweep(sweepClients, requests, seed, n, /*maxBatch=*/1, nodes,
                 kNicPerMessage, /*topologyAware=*/false);
    const SweepResult topo =
        runSweep(sweepClients, requests, seed, n, /*maxBatch=*/1, nodes,
                 kNicPerMessage, /*topologyAware=*/true);
    const double flatMean = flat.latencies.stat().mean();
    const double topoMean = topo.latencies.stat().mean();
    const double speedup = topoMean > 0 ? flatMean / topoMean : 1.0;
    const std::string tag = "ppn" + std::to_string(ppn);
    obs::BenchReport::Case& cf =
        addCase(report, tag + "_flat", flat, sweepClients, 0.0);
    cf.metric("server_nodes", static_cast<double>(nodes));
    cf.metric("procs_per_node", static_cast<double>(ppn));
    cf.metric("latency_mean_seconds", flatMean);
    obs::BenchReport::Case& ct =
        addCase(report, tag + "_topo", topo, sweepClients, 0.0);
    ct.metric("server_nodes", static_cast<double>(nodes));
    ct.metric("procs_per_node", static_cast<double>(ppn));
    ct.metric("latency_mean_seconds", topoMean);
    ct.metric("mean_speedup_vs_flat", speedup);
    std::printf("%8d %8d %15.3f %15.3f %14.3f %9.2fx\n", nodes, ppn,
                1e3 * flatMean, 1e3 * topoMean, 1e3 * topo.latencies.p99(),
                speedup);
  }
  report.write("BENCH_server.json");
  std::printf("wrote BENCH_server.json\n");
  return 0;
}
