// Shared driver for Figures 10-15: the Section 5.4 client/server
// matrix-vector experiments (512x512 double matrix, ATM-class
// inter-program links, 4 server nodes with cyclic process placement, link
// contention modeled).
#pragma once

#include <cstdio>

#include "common/bench_util.h"
#include "obs/json.h"
#include "workloads/matvec_session.h"

namespace mc::bench {

/// Per-case mc-bench-v1 emission of one breakdown (shared by every
/// client/server figure bench).
inline void addBreakdownCase(obs::BenchReport& report,
                             const std::string& caseName,
                             const workloads::MatvecBreakdown& b) {
  obs::BenchReport::Case& c = report.addCase(caseName);
  c.metric("schedule_build_seconds", b.scheduleBuild);
  c.metric("send_matrix_seconds", b.sendMatrix);
  c.metric("server_compute_seconds", b.serverCompute);
  c.metric("vector_exchange_seconds", b.vectorExchange);
  c.metric("client_local_matvec_seconds", b.clientLocalMatvec);
  c.metric("total_seconds", b.total());
}

/// Runs sessions for every server process count, prints the component
/// breakdown table the paper plots as a stacked bar figure, and emits the
/// schema-valid BENCH_<benchName>.json next to it.
inline void printClientServerFigure(const std::string& title,
                                    const std::string& benchName,
                                    int clientProcs,
                                    const std::vector<int>& serverProcs,
                                    int numVectors) {
  obs::BenchReport report(benchName);
  report.config("client_procs", clientProcs);
  report.config("num_vectors", numVectors);
  std::vector<double> sched, matrix, server, vectors, total;
  for (int sp : serverProcs) {
    workloads::MatvecSessionConfig cfg;
    cfg.clientProcs = clientProcs;
    cfg.serverProcs = sp;
    cfg.numVectors = numVectors;
    const workloads::MatvecBreakdown b = workloads::runMatvecSession(cfg);
    sched.push_back(b.scheduleBuild);
    matrix.push_back(b.sendMatrix);
    server.push_back(b.serverCompute);
    vectors.push_back(b.vectorExchange);
    total.push_back(b.total());
    addBreakdownCase(report, "s" + std::to_string(sp), b);
  }
  const std::string out = "BENCH_" + benchName + ".json";
  report.write(out);
  std::printf("wrote %s\n", out.c_str());
  std::vector<std::string> cols;
  for (int sp : serverProcs) cols.push_back("S=" + std::to_string(sp));
  std::printf("%s\n",
              renderTable(title, cols,
                          {
                              Row{"compute schedule", sched, {}},
                              Row{"send matrix", matrix, {}},
                              Row{"HPF program", server, {}},
                              Row{"send/recv vector", vectors, {}},
                              Row{"total", total, {}},
                          })
                  .c_str());
}

}  // namespace mc::bench
