// Shared driver for Figures 10-15: the Section 5.4 client/server
// matrix-vector experiments (512x512 double matrix, ATM-class
// inter-program links, 4 server nodes with cyclic process placement, link
// contention modeled).
#pragma once

#include <cstdio>

#include "common/bench_util.h"
#include "workloads/matvec_session.h"

namespace mc::bench {

/// Runs sessions for every server process count and prints the component
/// breakdown table the paper plots as a stacked bar figure.
inline void printClientServerFigure(const std::string& title, int clientProcs,
                                    const std::vector<int>& serverProcs,
                                    int numVectors) {
  std::vector<double> sched, matrix, server, vectors, total;
  for (int sp : serverProcs) {
    workloads::MatvecSessionConfig cfg;
    cfg.clientProcs = clientProcs;
    cfg.serverProcs = sp;
    cfg.numVectors = numVectors;
    const workloads::MatvecBreakdown b = workloads::runMatvecSession(cfg);
    sched.push_back(b.scheduleBuild);
    matrix.push_back(b.sendMatrix);
    server.push_back(b.serverCompute);
    vectors.push_back(b.vectorExchange);
    total.push_back(b.total());
  }
  std::vector<std::string> cols;
  for (int sp : serverProcs) cols.push_back("S=" + std::to_string(sp));
  std::printf("%s\n",
              renderTable(title, cols,
                          {
                              Row{"compute schedule", sched, {}},
                              Row{"send matrix", matrix, {}},
                              Row{"HPF program", server, {}},
                              Row{"send/recv vector", vectors, {}},
                              Row{"total", total, {}},
                          })
                  .c_str());
}

}  // namespace mc::bench
