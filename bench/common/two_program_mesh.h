// Shared driver for Tables 3 and 4: the coupled-mesh workload split into
// two separately running programs, Preg (Multiblock Parti) and Pirreg
// (Chaos), exchanging the whole mesh through Meta-Chaos each time-step
// (paper Section 5.2).  The cooperation build is used — the paper notes the
// duplication method would require shipping a Chaos translation table
// between the programs, "which is very expensive".
#pragma once

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "common/bench_util.h"
#include "meshgen/meshgen.h"
#include "parti/dist_array.h"

namespace mc::bench {

struct TwoProgramResult {
  double schedule = 0;     ///< build time, max over the two programs (s)
  double copyPerIter = 0;  ///< one full exchange (both directions) (s)
};

inline TwoProgramResult runTwoProgramMesh(int npReg, int npIrreg,
                                          layout::Index side = 256,
                                          int iters = 3) {
  TwoProgramResult result;
  const layout::Index n = side * side;
  const std::uint64_t seed = 12345;
  double schedReg = 0, schedIrreg = 0, copyReg = 0;

  auto pregMain = [&](transport::Comm& c) {
    parti::BlockDistArray<double> a(c, layout::Shape::of({side, side}), 1);
    a.fillByPoint([&](const layout::Point& p) {
      return 1.0 + 1e-3 * static_cast<double>(p[0] * side + p[1]);
    });
    core::SetOfRegions set;
    set.add(core::Region::section(
        layout::RegularSection::box({0, 0}, {side - 1, side - 1})));
    PhaseTimer timer(c);
    const core::McSchedule send = core::computeScheduleSend(
        c, core::PartiAdapter::describe(a), set, 1, core::Method::kCooperation);
    const core::McSchedule recv = core::reverseSchedule(send);
    const double ts = timer.lap();
    for (int it = 0; it < iters; ++it) {
      core::dataMoveSend<double>(c, send, a.raw());
      core::dataMoveRecv<double>(c, recv, a.raw());
    }
    const double tc = timer.lap() / iters;
    if (c.rank() == 0) {
      schedReg = ts;
      copyReg = tc;
    }
  };

  auto pirregMain = [&](transport::Comm& c) {
    const auto perm = meshgen::nodePermutation(n, seed);
    const auto mine =
        chaos::randomPartition(n, c.size(), c.rank(), seed + 1);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed,
            /*modeledQueryCostSeconds=*/30e-6));
    chaos::IrregArray<double> x(c, table, mine);
    const auto mapping = meshgen::regToIrregMapping(side, side, perm);
    core::SetOfRegions set;
    set.add(core::Region::indices(mapping.irreg));
    PhaseTimer timer(c);
    const core::McSchedule recv = core::computeScheduleRecv(
        c, core::ChaosAdapter::describe(x), set, 0, core::Method::kCooperation);
    const core::McSchedule send = core::reverseSchedule(recv);
    const double ts = timer.lap();
    for (int it = 0; it < iters; ++it) {
      core::dataMoveRecv<double>(c, recv, x.raw());
      core::dataMoveSend<double>(c, send, x.raw());
    }
    timer.lap();
    if (c.rank() == 0) schedIrreg = ts;
  };

  transport::WorldOptions options;
  // One processor per node with NIC contention: a program's aggregate
  // bandwidth is proportional to its processor count, which is what makes
  // the copy time depend on the *smaller* program (paper Section 5.2).
  options.net.contention = true;
  transport::World::run(
      {
          transport::ProgramSpec{"preg", npReg, pregMain},
          transport::ProgramSpec{"pirreg", npIrreg, pirregMain},
      },
      options);
  result.schedule = std::max(schedReg, schedIrreg);
  result.copyPerIter = copyReg;  // symmetric (paper Section 5.2)
  return result;
}

}  // namespace mc::bench
