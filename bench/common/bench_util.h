// Shared machinery for the paper-reproduction benchmarks.
//
// Every table/figure binary prints (a) the measured virtual-time numbers in
// the paper's row/column layout and (b) the paper's published values
// alongside, so shape comparisons are one glance away.  Absolute magnitudes
// are NOT comparable (1997 IBM SP2 / Alpha farm vs a modeled transport —
// see DESIGN.md §2-3); ratios, trends and crossovers are the reproduction
// target.
#pragma once

#include <string>
#include <vector>

#include "transport/world.h"
#include "util/format.h"
#include "util/table.h"

namespace mc::bench {

/// Phase timing against the virtual clock: lap() barriers the program (so
/// clocks synchronize to the slowest processor) and returns the elapsed
/// virtual time since the previous lap.
class PhaseTimer {
 public:
  explicit PhaseTimer(transport::Comm& comm) : comm_(&comm) {
    comm_->barrier();
    last_ = comm_->now();
  }
  double lap() {
    comm_->barrier();
    const double now = comm_->now();
    const double delta = now - last_;
    last_ = now;
    return delta;
  }

 private:
  transport::Comm* comm_;
  double last_ = 0;
};

inline std::string fmtMs(double seconds) {
  const double ms = seconds * 1e3;
  if (ms >= 100) return strprintf("%.0f", ms);
  if (ms >= 1) return strprintf("%.1f", ms);
  return strprintf("%.3f", ms);
}

/// One row of a paper-style table: a label, measured values (ms), and the
/// paper's published values for the same cells.
struct Row {
  std::string label;
  std::vector<double> measuredSeconds;
  std::vector<double> paperMs;  // empty if the paper has no such row
};

/// Renders measured and paper rows interleaved.
inline std::string renderTable(const std::string& title,
                               const std::vector<std::string>& columns,
                               const std::vector<Row>& rows) {
  AsciiTable t;
  std::vector<std::string> header{"row"};
  header.insert(header.end(), columns.begin(), columns.end());
  t.header(std::move(header));
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    for (double s : row.measuredSeconds) cells.push_back(fmtMs(s));
    t.row(std::move(cells));
    if (!row.paperMs.empty()) {
      std::vector<std::string> paper{"  (paper)"};
      for (double ms : row.paperMs) paper.push_back(strprintf("%.0f", ms));
      t.row(std::move(paper));
    }
  }
  return "== " + title + " ==\n" + t.render();
}

}  // namespace mc::bench
