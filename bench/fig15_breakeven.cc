// Figure 15 of the paper: how many vectors must be multiplied by one
// matrix before offloading to the HPF server (schedules + matrix shipped
// once) beats computing the matvec inside the client.
//
// Expected shape (paper): small break-even counts (best ~2 with an 8-process
// server); a two-process client against a two-process server never breaks
// even (the paper omits that bar entirely).
#include <cstdio>

#include "common/bench_util.h"
#include "common/client_server.h"
#include "workloads/matvec_session.h"

using namespace mc;

int main() {
  const std::vector<int> serverProcs = {2, 4, 8, 12, 16};
  const std::vector<int> clientProcs = {1, 2};

  obs::BenchReport report("fig15");
  report.config("num_vectors", 4);
  mc::AsciiTable t;
  std::vector<std::string> header{"client procs"};
  for (int sp : serverProcs) header.push_back("S=" + std::to_string(sp));
  t.header(std::move(header));
  for (int cp : clientProcs) {
    std::vector<std::string> cells{std::to_string(cp)};
    for (int sp : serverProcs) {
      workloads::MatvecSessionConfig cfg;
      cfg.clientProcs = cp;
      cfg.serverProcs = sp;
      cfg.numVectors = 4;  // amortizes measurement noise per vector
      const workloads::MatvecBreakdown b = workloads::runMatvecSession(cfg);
      const int k = workloads::breakEvenVectors(b, cfg.numVectors);
      cells.push_back(k == 0 ? "never" : std::to_string(k));
      const std::string name =
          "c" + std::to_string(cp) + "_s" + std::to_string(sp);
      obs::BenchReport::Case& bc = report.addCase(name);
      bc.metric("break_even_vectors", static_cast<double>(k));
      bc.metric("client_local_matvec_seconds", b.clientLocalMatvec);
      bc.metric("total_seconds", b.total());
    }
    t.row(std::move(cells));
  }
  report.write("BENCH_fig15.json");
  std::printf("== Figure 15: break-even number of vectors ==\n%s\n",
              t.render().c_str());
  std::printf("wrote BENCH_fig15.json\n");
  return 0;
}
