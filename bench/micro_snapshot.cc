// Cold-vs-warm server start (the ROADMAP's persistent-arrays item made
// measurable): the same one-client world runs twice against the same
// snapshot directory.  The first run boots a cold server — the client's
// attach pays the collective inspector build — and saves a snapshot on
// shutdown; the second run warm-starts from it, so the first attach is a
// layout-archive sharing hit: the client downloads the archived schedule
// bytes, the server restores its receive halves and matrices, and NO
// inspector build runs anywhere (asserted via build.count on both the
// client and server threads).  The two runs' results must be bitwise
// identical — the restored schedule is byte-for-byte the built one, so the
// execution order (and therefore every floating-point sum) is reproduced
// exactly.
//
// Emits BENCH_snapshot.json (mc-bench-v1): per case, the restore volume
// (bytes / cache entries), the first-request virtual latency, the
// warm-vs-cold first-request speedup, and the build counts.  Exits
// non-zero if the warm run built anything or the results diverge — the
// bench doubles as the kill-and-restart differential check in CI.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/client_session.h"
#include "server/compute_server.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

namespace {

constexpr int kServerProcs = 3;

double vectorEntry(Index i, int iter) {
  return static_cast<double>((i * 7 + iter) % 11) - 5.0;
}

/// The calling thread's inspector-build count (0 when nothing was built on
/// this thread — the counter registers lazily on the first build).
double buildCount() {
  const obs::Snapshot s = obs::threadRegistry().snapshot();
  return s.has("build.count") ? s.get("build.count") : 0.0;
}

struct PhaseOutcome {
  server::ServerStats stats;
  double restoreBytes = 0;
  double restoreEntries = 0;
  double saveBytes = 0;
  double serverBuilds = 0;      // rank 0's builds over the whole run
  double clientAttachBuilds = 0;
  double firstRequestSeconds = 0;  // attach + first request, virtual clock
  bool sharedSchedule = false;
  std::vector<double> results;  // every request's y, concatenated
};

PhaseOutcome runPhase(Index n, int requests, const std::string& dir) {
  PhaseOutcome out;
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", kServerProcs, [&](Comm& c) {
    server::ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = 1;
    cfg.snapshotDir = dir;
    server::ComputeServer srv(c, cfg);
    const double before = buildCount();
    srv.run();
    if (c.rank() == 0) {
      out.stats = srv.stats();
      out.serverBuilds = buildCount() - before;
      const obs::Snapshot s = obs::threadRegistry().snapshot();
      out.restoreBytes =
          s.has("snapshot.restore.bytes") ? s.get("snapshot.restore.bytes")
                                          : 0.0;
      out.restoreEntries = s.has("snapshot.restore.entries")
                               ? s.get("snapshot.restore.entries")
                               : 0.0;
      out.saveBytes =
          s.has("snapshot.save.bytes") ? s.get("snapshot.save.bytes") : 0.0;
    }
  }});
  specs.push_back(ProgramSpec{"client", 1, [&](Comm& c) {
    server::SessionConfig cfg;
    cfg.n = n;
    cfg.serverProgram = 0;
    server::ClientSession session(c, cfg);
    const double builds0 = buildCount();
    const double t0 = c.now();
    const server::AttachStats as = session.attach();
    out.clientAttachBuilds = buildCount() - builds0;
    out.sharedSchedule = as.sharedSchedule;
    for (int it = 0; it < requests; ++it) {
      session.x().fillByPoint(
          [&](const Point& p) { return vectorEntry(p[0], it); });
      session.request();
      if (it == 0) out.firstRequestSeconds = c.now() - t0;
      const std::vector<double> y = session.y().gatherGlobal();
      out.results.insert(out.results.end(), y.begin(), y.end());
    }
    session.detach();
  }});
  World::run(specs);
  return out;
}

obs::BenchReport::Case& addCase(obs::BenchReport& report,
                                const std::string& name,
                                const PhaseOutcome& o, double speedup) {
  obs::BenchReport::Case& c = report.addCase(name);
  c.metric("restore_bytes", o.restoreBytes);
  c.metric("restore_entries", o.restoreEntries);
  c.metric("save_bytes", o.saveBytes);
  c.metric("first_request_seconds", o.firstRequestSeconds);
  c.metric("first_request_speedup", speedup);
  c.metric("builds_server", o.serverBuilds);
  c.metric("builds_client_attach", o.clientAttachBuilds);
  c.metric("sched_share.hits", static_cast<double>(o.stats.schedShareHits));
  c.metric("sched_share.misses",
           static_cast<double>(o.stats.schedShareMisses));
  c.metric("matrix_ships", static_cast<double>(o.stats.matrixShips));
  c.metric("shared_schedule", o.sharedSchedule ? 1.0 : 0.0);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Index n = 192;
  int requests = 3;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--n=", 0) == 0) {
      n = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::atoi(arg.c_str() + 11);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return 1;
    }
  }

  const std::string dir = "micro_snapshot.snapdir";
  std::filesystem::remove_all(dir);

  // Run 1: cold boot (no snapshot exists), saves on shutdown.
  const PhaseOutcome cold = runPhase(n, requests, dir);
  // Run 2: a fresh world — every thread-local cache starts empty, exactly
  // like a restarted process — warm-started from run 1's snapshot.
  const PhaseOutcome warm = runPhase(n, requests, dir);
  std::filesystem::remove_all(dir);

  const double speedup = warm.firstRequestSeconds > 0
                             ? cold.firstRequestSeconds /
                                   warm.firstRequestSeconds
                             : 1.0;
  const bool identical =
      cold.results.size() == warm.results.size() &&
      std::memcmp(cold.results.data(), warm.results.data(),
                  cold.results.size() * sizeof(double)) == 0;
  const double warmBuilds = warm.serverBuilds + warm.clientAttachBuilds;

  obs::BenchReport report("snapshot");
  report.config("n", static_cast<double>(n));
  report.config("requests", requests);
  report.config("server_procs", kServerProcs);
  addCase(report, "cold", cold, 1.0);
  obs::BenchReport::Case& w = addCase(report, "warm", warm, speedup);
  w.metric("bitwise_identical", identical ? 1.0 : 0.0);
  report.write("BENCH_snapshot.json");

  std::printf("== snapshot warm-start: n=%lld, %d requests ==\n",
              static_cast<long long>(n), requests);
  std::printf("%6s %14s %15s %15s %12s %10s\n", "case", "restore[B]",
              "restore[entry]", "first_req[ms]", "builds", "shared");
  std::printf("%6s %14.0f %15.0f %15.3f %12.0f %10s\n", "cold",
              cold.restoreBytes, cold.restoreEntries,
              1e3 * cold.firstRequestSeconds,
              cold.serverBuilds + cold.clientAttachBuilds,
              cold.sharedSchedule ? "yes" : "no");
  std::printf("%6s %14.0f %15.0f %15.3f %12.0f %10s\n", "warm",
              warm.restoreBytes, warm.restoreEntries,
              1e3 * warm.firstRequestSeconds, warmBuilds,
              warm.sharedSchedule ? "yes" : "no");
  std::printf("first-request speedup: %.2fx, bitwise identical: %s\n",
              speedup, identical ? "yes" : "NO");
  std::printf("wrote BENCH_snapshot.json\n");

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: warm-start results are not bitwise identical\n");
    return 1;
  }
  if (warmBuilds != 0) {
    std::fprintf(stderr,
                 "FAIL: warm start ran %.0f inspector builds (expected 0)\n",
                 warmBuilds);
    return 1;
  }
  if (!warm.sharedSchedule || warm.stats.schedShareHits == 0) {
    std::fprintf(stderr, "FAIL: warm first attach was not a sharing hit\n");
    return 1;
  }
  return 0;
}
