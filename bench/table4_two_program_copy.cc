// Table 4 of the paper: per-iteration data-copy time for the two-program
// coupled meshes (one full exchange: regular -> irregular and back), over
// every combination of 2/4/8 processors per program.
//
// Expected shape (paper): the copy time is symmetric between the programs
// and limited by whichever program runs on fewer processors; growing the
// larger side does not help.
#include <cstdio>

#include "common/two_program_mesh.h"

using namespace mc;

int main() {
  const std::vector<int> procs = {2, 4, 8};
  const double paper[3][3] = {{63, 61, 66}, {55, 33, 36}, {61, 32, 21}};

  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("Pirreg=" + std::to_string(np));
  std::vector<bench::Row> rows;
  for (size_t r = 0; r < procs.size(); ++r) {
    std::vector<double> measured;
    for (int npIrreg : procs) {
      measured.push_back(
          bench::runTwoProgramMesh(procs[r], npIrreg).copyPerIter);
    }
    rows.push_back(bench::Row{
        "Preg=" + std::to_string(procs[r]), measured,
        {paper[r][0], paper[r][1], paper[r][2]}});
  }
  std::printf("%s\n",
              bench::renderTable(
                  "Table 4: Meta-Chaos data copy per iteration, two "
                  "programs [ms]",
                  cols, rows)
                  .c_str());
  return 0;
}
