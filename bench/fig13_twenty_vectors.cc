// Figure 13 of the paper: twenty matrix-vector multiplies with one matrix,
// sequential client, server from 1 to 16 processes.  With the schedule and
// matrix shipped once, the per-vector costs dominate and the server's
// speedup shows through (the paper reports a speedup of 4.5 at 8 server
// processes relative to computing in the client).
#include <cstdio>

#include "common/client_server.h"

int main() {
  mc::bench::printClientServerFigure(
      "Figure 13: sequential client, twenty vectors, server on 4 nodes [ms]",
      "fig13", /*clientProcs=*/1, {1, 2, 4, 8, 12, 16}, /*numVectors=*/20);

  // The paper's headline: server-vs-client speedup over the 20 multiplies.
  mc::workloads::MatvecSessionConfig cfg;
  cfg.clientProcs = 1;
  cfg.serverProcs = 8;
  cfg.numVectors = 20;
  const auto b = mc::workloads::runMatvecSession(cfg);
  const double serverSide = (b.serverCompute + b.vectorExchange) / 20.0;
  std::printf(
      "per-vector: client-local %.2f ms vs server %.2f ms -> speedup %.1fx "
      "(paper: 4.5x at 8 server processes)\n",
      1e3 * b.clientLocalMatvec, 1e3 * serverSide,
      b.clientLocalMatvec / serverSide);

  mc::obs::BenchReport headline("fig13_headline");
  headline.config("client_procs", 1);
  headline.config("num_vectors", 20);
  mc::bench::addBreakdownCase(headline, "s8", b);
  mc::obs::BenchReport::Case& c = headline.addCase("speedup");
  c.metric("per_vector_client_seconds", b.clientLocalMatvec);
  c.metric("per_vector_server_seconds", serverSide);
  c.metric("speedup", b.clientLocalMatvec / serverSide);
  headline.write("BENCH_fig13_headline.json");
  std::printf("wrote BENCH_fig13_headline.json\n");
  return 0;
}
