// Table 5 of the paper: two 1000x1000 block-distributed Multiblock Parti
// arrays in one program; copy half of one into the other once per
// time-step.  Compares the special-purpose Parti section-move machinery
// with general Meta-Chaos (both builds), on 2/4/8/16 processors.
//
// Expected shape (paper): Parti's box-calculus schedule build is cheapest
// (it never enumerates elements); Meta-Chaos costs a little more, with
// cooperation above duplication (cooperation ships schedule parts);
// the copy times of all three are essentially identical, except on 2
// processors where Meta-Chaos's direct local copies beat Parti's staging
// buffer.
#include <cstdio>

#include "common/bench_util.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "parti/section_copy.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr Index kSide = 1000;

struct Cell {
  double sched = 0;
  double copy = 0;
};

Cell run(int np, int variant) {  // 0 = parti, 1 = MC coop, 2 = MC dup
  Cell out;
  constexpr int kIters = 3;
  // Copy the top half of a onto rows 250..749 of b: a multiblock-style
  // inter-block update in which part of the data stays processor-local and
  // part crosses processors (as in the paper's 2-processor discussion).
  const RegularSection srcSec = RegularSection::box({0, 0}, {499, kSide - 1});
  const RegularSection dstSec = RegularSection::box({250, 0}, {749, kSide - 1});
  transport::World::runSPMD(np, [&](transport::Comm& c) {
    parti::BlockDistArray<double> a(c, Shape::of({kSide, kSide}), 0);
    parti::BlockDistArray<double> b(c, Shape::of({kSide, kSide}), 0);
    a.fillByPoint([](const Point& p) {
      return static_cast<double>(p[0] - p[1]);
    });
    bench::PhaseTimer timer(c);
    if (variant == 0) {
      parti::Schedule sched;
      c.compute([&] {
        sched = parti::buildSectionCopySchedule(a.desc(), srcSec, b.desc(),
                                                dstSec, c.rank());
      });
      out.sched = timer.lap();
      for (int it = 0; it < kIters; ++it) parti::sectionCopy(sched, a, b);
      out.copy = timer.lap() / kIters;
    } else {
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::section(srcSec));
      dstSet.add(core::Region::section(dstSec));
      const core::McSchedule sched = core::computeSchedule(
          c, core::PartiAdapter::describe(a), srcSet,
          core::PartiAdapter::describe(b), dstSet,
          variant == 1 ? core::Method::kCooperation
                       : core::Method::kDuplication);
      out.sched = timer.lap();
      for (int it = 0; it < kIters; ++it) {
        core::dataMove<double>(c, sched, a.raw(), b.raw());
      }
      out.copy = timer.lap() / kIters;
    }
  });
  return out;
}

}  // namespace

int main() {
  const std::vector<int> procs = {2, 4, 8, 16};
  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));

  const char* names[3] = {"Block Parti", "Meta-Chaos coop", "Meta-Chaos dup"};
  const std::vector<std::vector<double>> paperSched = {
      {19, 11, 10, 9}, {29, 29, 20, 25}, {24, 20, 14, 13}};
  const std::vector<std::vector<double>> paperCopy = {
      {467, 195, 101, 53}, {396, 198, 102, 52}, {396, 198, 102, 52}};
  std::vector<bench::Row> rows;
  for (int v = 0; v < 3; ++v) {
    std::vector<double> sched, copy;
    for (int np : procs) {
      const Cell cell = run(np, v);
      sched.push_back(cell.sched);
      copy.push_back(cell.copy);
    }
    rows.push_back(bench::Row{std::string(names[v]) + " schedule", sched,
                              paperSched[static_cast<size_t>(v)]});
    rows.push_back(bench::Row{std::string(names[v]) + " copy", copy,
                              paperCopy[static_cast<size_t>(v)]});
  }
  std::printf("%s\n",
              bench::renderTable(
                  "Table 5: schedule build (total) / copy (per iter), two "
                  "structured meshes in one program, 1000x1000, half "
                  "copied [ms]",
                  cols, rows)
                  .c_str());
  return 0;
}
