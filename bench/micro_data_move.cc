// Micro benchmark for steady-state schedule execution (the data-move hot
// path): the pre-PR copy-per-step executor (sched::reference) against the
// persistent zero-copy sched::Executor, on a schedule built once and run
// many times — the paper's amortization pattern.
//
//   * regular -> regular     (parti block -> hpf block, full section): long
//     runs, so per-element work is all memcpy and the transport's extra
//     copies dominate;
//   * irregular -> irregular (chaos -> chaos, shuffled index sets): runs
//     degenerate to single elements, pack/unpack gather-scatter dominates
//     and the transport copies are the remaining fat;  the executor is
//     measured twice — once with kernel dispatch forced off (the pre-kernel
//     run-wise loops) and once with the compiled PlanKernels — so the
//     flattened index-list gather/scatter win is isolated from the
//     zero-copy transport win;
//   * split-phase overlap   (symmetric ring exchange): blocking run()
//     against start()/poll()/finish() under a synthetic per-step compute
//     load calibrated to the exchange time.  Measured on the virtual
//     clock (overlap lives in the modelled network, not host wall time);
//   * node aggregation under contention (fine-grained all-to-all, 2 nodes
//     x 4 processes, one NIC per node, per-message NIC cost on): flat
//     per-peer sends against the node-aggregated executor, A/B on the
//     virtual clock.  The per-link-class traffic counters
//     (link.inter_node/intra_node/forwarded) show the message-count
//     mechanism: aggregated mode emits at most nodes-1 inter-node
//     messages per rank per step.
//
// Reports wall-clock per step (virtual clocks cannot see the transport's
// internal copies — they happen outside compute()), plus the new
// TrafficStats counters: bytesCopied and allocations summed over ranks for
// the measured steps.  The executor leg must show zero for both.  Per-case
// attribution uses TrafficStats epoch snapshot/diff (after - before), not
// resetStats(): resetting would clobber the cumulative counters the obs
// registry samples, and earlier cases' traffic would silently leak into
// later ones if any step skipped the reset.
//
// Emits BENCH_data_move.json through obs::BenchReport (mc-bench-v1), and a
// Chrome trace of the split-phase overlap case to
// TRACE_data_move_overlap.json (load it in chrome://tracing or
// ui.perfetto.dev: the interior compute span rides beside recvWait).
//
// Flags: --side=N (default 768; element count is side^2), --steps=N
// (default 10), for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/schedule_builder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sched/executor.h"
#include "sched/kernels.h"
#include "sched/node_agg.h"
#include "sched/reference_executor.h"
#include "util/rng.h"

using namespace mc;
using layout::Index;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;

struct Leg {
  double perStepSeconds = 0;  // wall clock, max over ranks
  double bytesCopied = 0;     // summed over ranks, measured steps only
  double allocations = 0;     // summed over ranks
  double messages = 0;        // summed over ranks
  double drainedEarly = 0;    // messages consumed by poll(), summed
  // Per-link-class traffic (summed over ranks, measured steps only).
  // Forwarded counts are the leader re-sends of aggregated segments, a
  // subset of intra_node.
  double interNodeMessages = 0, interNodeBytes = 0;
  double intraNodeMessages = 0, intraNodeBytes = 0;
  double forwardedMessages = 0, forwardedBytes = 0;
};

/// Reduces a TrafficStats diff's per-link-class counters into `leg`.
/// Collective (allreduce per field).
void reduceLinkStats(transport::Comm& c, const transport::TrafficStats& d,
                     Leg& leg) {
  leg.interNodeMessages =
      c.allreduceSum(static_cast<double>(d.interNodeMessages));
  leg.interNodeBytes = c.allreduceSum(static_cast<double>(d.interNodeBytes));
  leg.intraNodeMessages =
      c.allreduceSum(static_cast<double>(d.intraNodeMessages));
  leg.intraNodeBytes = c.allreduceSum(static_cast<double>(d.intraNodeBytes));
  leg.forwardedMessages =
      c.allreduceSum(static_cast<double>(d.forwardedMessages));
  leg.forwardedBytes = c.allreduceSum(static_cast<double>(d.forwardedBytes));
}

/// Kernel executions during the executor leg, by compiled kind; summed
/// over ranks, measured steps only.
struct KernelCounts {
  double contiguous = 0, strided = 0, runList = 0, indexList = 0;
};

struct CaseResult {
  const char* name = "";
  Leg reference, runwise, executor;
  KernelCounts kernels;
  double speedup() const {
    return executor.perStepSeconds > 0
               ? reference.perStepSeconds / executor.perStepSeconds
               : 0.0;
  }
  /// Isolated pack/unpack kernel win: the same persistent executor with
  /// dispatch forced off against the compiled kernels.
  double kernelSpeedup() const {
    return executor.perStepSeconds > 0
               ? runwise.perStepSeconds / executor.perStepSeconds
               : 0.0;
  }
  /// Transport copy reduction; the executor leg is expected to be 0, so
  /// guard the ratio at one byte.
  double copyRatio() const {
    return reference.bytesCopied /
           (executor.bytesCopied > 0 ? executor.bytesCopied : 1.0);
  }
};

std::vector<Index> shuffledIds(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> ids(static_cast<size_t>(n));
  for (size_t k = 0; k < ids.size(); ++k) {
    ids[k] = static_cast<Index>(perm[k]);
  }
  return ids;
}

std::shared_ptr<chaos::IrregArray<double>> makeIrreg(transport::Comm& c,
                                                     Index n,
                                                     std::uint64_t seed) {
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), seed);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kDistributed));
  return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
}

/// Warmup + `steps` measured executions of `step`, returning per-step wall
/// time (max over ranks) and this rank's traffic counters reduced over the
/// program.  Wall clock, not virtual: the transport's payload copies run
/// outside compute() and are invisible to the virtual clock by design.
template <typename StepFn>
Leg measureLeg(transport::Comm& c, int steps, StepFn&& step) {
  step();  // warmup: first-run allocations stay out of the window
  c.barrier();
  const transport::TrafficStats before = c.stats();  // epoch snapshot
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) step();
  // Diff before the reductions add traffic of their own.
  const transport::TrafficStats stats = c.stats() - before;
  const double mine =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Leg leg;
  leg.perStepSeconds = c.allreduceMax(mine) / steps;
  leg.bytesCopied = c.allreduceSum(static_cast<double>(stats.bytesCopied));
  leg.allocations = c.allreduceSum(static_cast<double>(stats.allocations));
  leg.messages = c.allreduceSum(static_cast<double>(stats.messagesSent));
  reduceLinkStats(c, stats, leg);
  return leg;
}

/// Same shape as measureLeg, but on the *virtual* clock: per-step
/// c.now() delta, max over ranks.  Used by the split-phase case, where the
/// win is overlap inside the modelled network — the host may have a single
/// core, so wall clock cannot see it.
template <typename StepFn>
Leg measureVirtualLeg(transport::Comm& c, int steps, StepFn&& step) {
  step();  // warmup: first-run allocations stay out of the window
  c.barrier();
  const transport::TrafficStats before = c.stats();  // epoch snapshot
  const double v0 = c.now();
  for (int i = 0; i < steps; ++i) step();
  // Diff before the reductions add traffic of their own.
  const transport::TrafficStats stats = c.stats() - before;
  const double mine = c.now() - v0;
  Leg leg;
  leg.perStepSeconds = c.allreduceMax(mine) / steps;
  leg.bytesCopied = c.allreduceSum(static_cast<double>(stats.bytesCopied));
  leg.allocations = c.allreduceSum(static_cast<double>(stats.allocations));
  leg.messages = c.allreduceSum(static_cast<double>(stats.messagesSent));
  leg.drainedEarly =
      c.allreduceSum(static_cast<double>(stats.messagesDrainedEarly));
  reduceLinkStats(c, stats, leg);
  return leg;
}

/// Measures the same bound executor twice: with kernel dispatch forced off
/// (the pre-kernel run-wise loops) and with the compiled PlanKernels, plus
/// the per-step kernel-execution counters of the fast leg.  The dispatch
/// flag is process-wide, so each toggle sits between barriers — every rank
/// has stored the same value before any rank resumes measuring.  Counter
/// diffs cover the leg's warmup execution too, hence the steps + 1
/// normalization.
template <typename StepFn>
void measureExecutorLegs(transport::Comm& c, int steps, StepFn&& step,
                         Leg& runwise, Leg& fast, KernelCounts& kernels) {
  c.barrier();
  sched::setKernelDispatch(false);
  c.barrier();
  runwise = measureLeg(c, steps, step);
  c.barrier();
  sched::setKernelDispatch(true);
  c.barrier();
  const sched::KernelStats k0 = sched::kernelStats();
  fast = measureLeg(c, steps, step);
  const sched::KernelStats k1 = sched::kernelStats();
  const double perStep = 1.0 / (steps + 1);
  kernels.contiguous = c.allreduceSum(
      static_cast<double>(k1.execContiguous - k0.execContiguous) * perStep);
  kernels.strided = c.allreduceSum(
      static_cast<double>(k1.execStrided - k0.execStrided) * perStep);
  kernels.runList = c.allreduceSum(
      static_cast<double>(k1.execRunList - k0.execRunList) * perStep);
  kernels.indexList = c.allreduceSum(
      static_cast<double>(k1.execIndexList - k0.execIndexList) * perStep);
}

struct OverlapResult {
  Leg blocking, split;
  double commSeconds = 0;  // calibrated per-step exchange time (virtual)
  double speedup() const {
    return split.perStepSeconds > 0
               ? blocking.perStepSeconds / split.perStepSeconds
               : 0.0;
  }
};

/// The symmetric ring exchange of the overlap case: each rank ships a
/// `block`-element run to its successor and receives one from its
/// predecessor (into the upper half of a 2*block destination).
sched::Schedule makeRingPlan(const transport::Comm& c, Index block) {
  sched::Schedule plan;
  sched::OffsetPlan send;
  send.peer = (c.rank() + 1) % c.size();
  send.offsets.resize(static_cast<size_t>(block));
  std::iota(send.offsets.begin(), send.offsets.end(), Index{0});
  sched::OffsetPlan recv;
  recv.peer = (c.rank() + c.size() - 1) % c.size();
  recv.offsets.resize(static_cast<size_t>(block));
  std::iota(recv.offsets.begin(), recv.offsets.end(), block);
  plan.sends.push_back(std::move(send));
  plan.recvs.push_back(std::move(recv));
  plan.compress();
  plan.sortByPeer();
  return plan;
}

struct ContentionResult {
  Leg flat, aggregated;
  double speedup() const {
    return aggregated.perStepSeconds > 0
               ? flat.perStepSeconds / aggregated.perStepSeconds
               : 0.0;
  }
};

/// Fine-grained all-to-all for the node-aggregation case: each rank ships
/// `blk` elements to every other rank, destination rows disjoint per
/// source.  Small blocks keep the exchange in the per-message-dominated
/// regime where the paper's Section 5.4 contention effect lives.
sched::Schedule makeAllToAllPlan(const transport::Comm& c, Index blk) {
  sched::Schedule plan;
  for (int i = 1; i < c.size(); ++i) {
    const int peer = (c.rank() + i) % c.size();
    sched::OffsetPlan send;
    send.peer = peer;
    send.offsets.resize(static_cast<size_t>(blk));
    std::iota(send.offsets.begin(), send.offsets.end(), Index{0});
    plan.sends.push_back(std::move(send));
    sched::OffsetPlan recv;
    recv.peer = peer;
    recv.offsets.resize(static_cast<size_t>(blk));
    const Index base =
        blk * static_cast<Index>(peer < c.rank() ? peer : peer - 1);
    std::iota(recv.offsets.begin(), recv.offsets.end(), base);
    plan.recvs.push_back(std::move(recv));
  }
  plan.compress();
  plan.sortByPeer();
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  Index side = 768;
  int steps = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--side=", 7) == 0) {
      side = static_cast<Index>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      steps = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--side=N] [--steps=N]\n", argv[0]);
      return 2;
    }
  }
  const Index n = side * side;

  std::vector<CaseResult> results(2);
  results[0].name = "regular->regular";
  results[1].name = "irregular->irregular";
  OverlapResult overlap;
  ContentionResult contention;

  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    // Case 1: parti block (with ghosts) -> hpf CYCLIC rows, full array
    // section.  Both sides are regular (long runs), but the distributions
    // disagree, so nearly all elements cross processors.
    {
      parti::BlockDistArray<double> a(c, Shape::of({side, side}), /*ghost=*/1);
      hpfrt::HpfArray<double> b(
          c, hpfrt::HpfDist(
                 Shape::of({side, side}),
                 {hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1},
                  hpfrt::DimDist{hpfrt::DistKind::kBlock, 1, 1}}));
      a.fillByPoint([&](const layout::Point& p) {
        return static_cast<double>(p[0] * side + p[1]);
      });
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::section(
          RegularSection::box({0, 0}, {side - 1, side - 1})));
      dstSet.add(core::Region::section(
          RegularSection::box({0, 0}, {side - 1, side - 1})));
      const core::McSchedule sched = core::computeSchedule(
          c, core::PartiAdapter::describe(a), srcSet,
          core::HpfAdapter::describe(b), dstSet, core::Method::kCooperation);

      const Leg ref = measureLeg(c, steps, [&] {
        sched::reference::execute<double>(c, sched.plan, a.raw(), b.raw(),
                                          c.nextUserTag());
      });
      sched::Executor<double> ex(c, sched.plan);
      Leg runwise, fast;
      KernelCounts kernels;
      measureExecutorLegs(
          c, steps, [&] { ex.run(a.raw(), b.raw()); }, runwise, fast,
          kernels);
      if (c.rank() == 0) {
        results[0].reference = ref;
        results[0].runwise = runwise;
        results[0].executor = fast;
        results[0].kernels = kernels;
      }
    }

    // Case 2: chaos -> chaos with shuffled index sets.
    {
      auto x = makeIrreg(c, n, 7);
      auto y = makeIrreg(c, n, 8);
      x->fillByGlobal([](Index g) { return static_cast<double>(g) * 0.5; });
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::indices(shuffledIds(n, 5)));
      dstSet.add(core::Region::indices(shuffledIds(n, 6)));
      const core::McSchedule sched = core::computeSchedule(
          c, core::ChaosAdapter::describe(*x), srcSet,
          core::ChaosAdapter::describe(*y), dstSet,
          core::Method::kCooperation);

      const Leg ref = measureLeg(c, steps, [&] {
        sched::reference::execute<double>(c, sched.plan, x->raw(), y->raw(),
                                          c.nextUserTag());
      });
      sched::Executor<double> ex(c, sched.plan);
      Leg runwise, fast;
      KernelCounts kernels;
      measureExecutorLegs(
          c, steps, [&] { ex.run(x->raw(), y->raw()); }, runwise, fast,
          kernels);
      if (c.rank() == 0) {
        results[1].reference = ref;
        results[1].runwise = runwise;
        results[1].executor = fast;
        results[1].kernels = kernels;
      }
    }

    // Case 3: split-phase overlap.  A symmetric ring exchange (each rank
    // ships a block to its successor) under a per-step compute phase
    // calibrated to the measured exchange time — the regime where
    // communication and computation are comparable, so blocking pays
    // comm + compute per step while split-phase pays max(comm, compute).
    // Virtual clock: the overlap lives in the modelled network.
    {
      const Index block = n / kProcs + 1;
      const sched::Schedule plan = makeRingPlan(c, block);
      std::vector<double> src(static_cast<size_t>(block), 1.0);
      std::vector<double> dst(static_cast<size_t>(2 * block), 0.0);
      const std::span<const double> srcSpan(src);
      const std::span<double> dstSpan(dst);
      sched::Executor<double> ex(c, plan);

      // Calibrate the synthetic load to the bare exchange time.
      const Leg commOnly =
          measureVirtualLeg(c, steps, [&] { ex.run(srcSpan, dstSpan); });
      const double load = commOnly.perStepSeconds;

      const Leg blocking = measureVirtualLeg(c, steps, [&] {
        ex.run(srcSpan, dstSpan);
        c.advance(load);
      });
      const Leg split = measureVirtualLeg(c, steps, [&] {
        auto pending = ex.start(srcSpan);
        c.advance(load);  // caller compute, away from the footprint
        pending.poll();   // opportunistic drain of what already arrived
        pending.finish(dstSpan);
      });
      if (c.rank() == 0) {
        overlap.blocking = blocking;
        overlap.split = split;
        overlap.commSeconds = load;
      }
    }
  });

  // Case 4: node-aggregated execution under NIC contention.  A separate
  // world: 8 processes on 2 nodes (4 per node), one NIC per node with a
  // per-message processing cost — the Section 5.4 regime where times rise
  // with processes per node because every message pays the shared NIC.
  // The same fine-grained all-to-all runs flat (one message per remote
  // rank) and aggregated (one framed message per remote node, split and
  // forwarded by the destination's leader), A/B on the virtual clock.
  constexpr int kAggNodes = 2;
  constexpr Index kAggBlock = 8;
  {
    transport::WorldOptions options;
    options.net.nodesPerProgram = {kAggNodes};
    options.net.contention = true;
    options.net.interNode.nicPerMessage = 100e-6;
    transport::World::runSPMD(
        kProcs,
        [&](transport::Comm& c) {
          const sched::Schedule plan = makeAllToAllPlan(c, kAggBlock);
          std::vector<double> src(static_cast<size_t>(kAggBlock));
          for (size_t k = 0; k < src.size(); ++k) {
            src[k] = static_cast<double>(c.rank()) +
                     0.01 * static_cast<double>(k);
          }
          std::vector<double> dst(
              static_cast<size_t>(kAggBlock) * (kProcs - 1), 0.0);
          const std::span<const double> srcSpan(src);
          const std::span<double> dstSpan(dst);
          // The aggregation flag is process-wide and captured at bind, so
          // each toggle sits between barriers and the executor is
          // constructed afterwards (aggregated binds are collective).
          c.barrier();
          sched::setNodeAggregation(false);
          c.barrier();
          {
            sched::Executor<double> ex(c, plan);
            const Leg flat = measureVirtualLeg(
                c, steps, [&] { ex.run(srcSpan, dstSpan); });
            if (c.rank() == 0) contention.flat = flat;
          }
          c.barrier();
          sched::setNodeAggregation(true);
          c.barrier();
          {
            sched::Executor<double> ex(c, plan);
            const Leg agg = measureVirtualLeg(
                c, steps, [&] { ex.run(srcSpan, dstSpan); });
            if (c.rank() == 0) contention.aggregated = agg;
          }
          c.barrier();
          sched::setNodeAggregation(false);
        },
        options);
  }

  std::vector<std::string> cols;
  std::vector<double> refT, runT, exT;
  for (const CaseResult& r : results) {
    cols.push_back(r.name);
    refT.push_back(r.reference.perStepSeconds);
    runT.push_back(r.runwise.perStepSeconds);
    exT.push_back(r.executor.perStepSeconds);
  }
  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Steady-state data move, %lld elements, %d "
                            "processors, %d steps [wall ms per step]",
                            static_cast<long long>(n), kProcs, steps),
                  cols,
                  {
                      bench::Row{"reference (copy per step)", refT, {}},
                      bench::Row{"executor (run-wise loops)", runT, {}},
                      bench::Row{"executor (compiled kernels)", exT, {}},
                  })
                  .c_str());
  for (const CaseResult& r : results) {
    std::printf(
        "%-22s speedup %4.2fx (kernels alone %4.2fx)   bytes copied/step: "
        "%11.0f -> %3.0f   allocations/step: %6.0f -> %2.0f\n",
        r.name, r.speedup(), r.kernelSpeedup(),
        r.reference.bytesCopied / steps, r.executor.bytesCopied / steps,
        r.reference.allocations / steps, r.executor.allocations / steps);
    std::printf(
        "%-22s kernel exec/step: contiguous %4.0f  strided %4.0f  "
        "run_list %4.0f  index_list %4.0f\n",
        "", r.kernels.contiguous, r.kernels.strided, r.kernels.runList,
        r.kernels.indexList);
  }
  std::printf(
      "\nsplit-phase overlap (ring exchange, compute ~ comm, virtual "
      "clock):\n"
      "  blocking    %8.3f ms/step\n"
      "  split-phase %8.3f ms/step   speedup %4.2fx   drained early/step: "
      "%4.0f   allocations/step: %2.0f\n",
      overlap.blocking.perStepSeconds * 1e3,
      overlap.split.perStepSeconds * 1e3, overlap.speedup(),
      overlap.split.drainedEarly / steps,
      overlap.split.allocations / steps);
  std::printf(
      "\nnode aggregation under contention (%d procs on %d nodes, "
      "%lld doubles/peer all-to-all, virtual clock):\n"
      "  flat        %8.3f ms/step   inter-node msgs/step %4.0f\n"
      "  aggregated  %8.3f ms/step   inter-node msgs/step %4.0f   "
      "forwarded/step %4.0f   speedup %4.2fx\n",
      kProcs, kAggNodes, static_cast<long long>(kAggBlock),
      contention.flat.perStepSeconds * 1e3,
      contention.flat.interNodeMessages / steps,
      contention.aggregated.perStepSeconds * 1e3,
      contention.aggregated.interNodeMessages / steps,
      contention.aggregated.forwardedMessages / steps,
      contention.speedup());

  // Per-phase attribution of the irregular kernel-dispatch win: a separate
  // span-recorded world reruns the irregular case under both dispatch modes
  // and sums the executor's pack/unpack/apply thread-CPU span seconds.
  // Spans cost a clock read per phase, so this runs outside the measured
  // legs above; the phase split is the per-phase evidence the wall-clock
  // speedup cannot give (pack and unpack shrink, recvWait does not).
  struct PhaseCpu {
    double pack = 0, unpack = 0, apply = 0;  // CPU sec/step, summed ranks
  };
  PhaseCpu phaseRunwise, phaseKernels;
  Leg phaseLink;  // link-class traffic of the kernels leg (attribution only)
  obs::setEnabled(true);
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    constexpr int kPhaseSteps = 5;
    auto x = makeIrreg(c, n, 7);
    auto y = makeIrreg(c, n, 8);
    x->fillByGlobal([](Index g) { return static_cast<double>(g) * 0.5; });
    core::SetOfRegions srcSet, dstSet;
    srcSet.add(core::Region::indices(shuffledIds(n, 5)));
    dstSet.add(core::Region::indices(shuffledIds(n, 6)));
    const core::McSchedule sched = core::computeSchedule(
        c, core::ChaosAdapter::describe(*x), srcSet,
        core::ChaosAdapter::describe(*y), dstSet, core::Method::kCooperation);
    sched::Executor<double> ex(c, sched.plan);
    const auto phaseLeg = [&](bool kernels, PhaseCpu& out) {
      c.barrier();
      sched::setKernelDispatch(kernels);
      c.barrier();
      ex.run(x->raw(), y->raw());  // warmup outside the span window
      obs::threadRegistry().clearSpans();
      for (int i = 0; i < kPhaseSteps; ++i) ex.run(x->raw(), y->raw());
      PhaseCpu mine;
      for (const obs::SpanRecord& s : obs::threadRegistry().takeSpans()) {
        if (std::strcmp(s.name, obs::phase::kPack) == 0) {
          mine.pack += s.cpuSeconds();
        } else if (std::strcmp(s.name, obs::phase::kUnpack) == 0) {
          mine.unpack += s.cpuSeconds();
        } else if (std::strcmp(s.name, obs::phase::kApply) == 0) {
          mine.apply += s.cpuSeconds();
        }
      }
      const double pack = c.allreduceSum(mine.pack) / kPhaseSteps;
      const double unpack = c.allreduceSum(mine.unpack) / kPhaseSteps;
      const double apply = c.allreduceSum(mine.apply) / kPhaseSteps;
      if (c.rank() == 0) out = PhaseCpu{pack, unpack, apply};
    };
    phaseLeg(false, phaseRunwise);
    const transport::TrafficStats linkBefore = c.stats();
    phaseLeg(true, phaseKernels);
    const transport::TrafficStats linkDiff = c.stats() - linkBefore;
    Leg link;
    reduceLinkStats(c, linkDiff, link);
    if (c.rank() == 0) phaseLink = link;
    c.barrier();
    sched::setKernelDispatch(true);
  });
  obs::setEnabled(false);
  std::printf(
      "\nirregular per-phase CPU, run-wise -> kernels [ms/step, summed over "
      "ranks]:\n"
      "  pack   %7.3f -> %7.3f\n"
      "  unpack %7.3f -> %7.3f\n"
      "  apply  %7.3f -> %7.3f\n",
      phaseRunwise.pack * 1e3, phaseKernels.pack * 1e3,
      phaseRunwise.unpack * 1e3, phaseKernels.unpack * 1e3,
      phaseRunwise.apply * 1e3, phaseKernels.apply * 1e3);

  // Span-recorded rerun of the split-phase overlap case, exported as a
  // Chrome trace.  A separate world, so span recording cannot perturb the
  // measured legs above; each rank calibrates its own synthetic load.
  obs::TraceCollector trace;
  obs::setEnabled(true);
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    constexpr int kTraceSteps = 3;
    const Index block = n / kProcs + 1;
    const sched::Schedule plan = makeRingPlan(c, block);
    std::vector<double> src(static_cast<size_t>(block), 1.0);
    std::vector<double> dst(static_cast<size_t>(2 * block), 0.0);
    const std::span<const double> srcSpan(src);
    const std::span<double> dstSpan(dst);
    sched::Executor<double> ex(c, plan);
    const double v0 = c.now();
    for (int i = 0; i < kTraceSteps; ++i) ex.run(srcSpan, dstSpan);
    const double load = (c.now() - v0) / kTraceSteps;
    c.barrier();
    obs::threadRegistry().clearSpans();  // warmup/calibration spans out
    for (int i = 0; i < kTraceSteps; ++i) {
      auto pending = ex.start(srcSpan);
      obs::ScopedSpan compute(obs::phase::kCompute);
      c.advance(load);  // caller compute, away from the footprint
      compute.end();
      pending.poll();
      pending.finish(dstSpan);
    }
    trace.add(c.program(), c.globalRank(),
              strprintf("prog%d/rank%d", c.program(), c.rank()),
              obs::threadRegistry().takeSpans());
  });
  obs::setEnabled(false);
  obs::writeChromeTrace("TRACE_data_move_overlap.json", trace);

  obs::BenchReport report("data_move");
  report.config("procs", kProcs);
  report.config("side", static_cast<double>(side));
  report.config("elements", static_cast<double>(n));
  report.config("steps", steps);
  report.config("overlap_clock", "virtual");
  const auto legMetrics = [](obs::BenchReport::Case& cs,
                             const std::string& prefix, const Leg& l) {
    cs.metric(prefix + ".per_step_seconds", l.perStepSeconds);
    cs.metric(prefix + ".bytes_copied", l.bytesCopied);
    cs.metric(prefix + ".allocations", l.allocations);
    cs.metric(prefix + ".messages", l.messages);
  };
  // Per-link-class traffic; every case carries the unprefixed six (the
  // validator requires them finite), attributed to the case's primary leg.
  const auto linkMetrics = [](obs::BenchReport::Case& cs,
                              const std::string& prefix, const Leg& l) {
    cs.metric(prefix + "inter_node.messages", l.interNodeMessages);
    cs.metric(prefix + "inter_node.bytes", l.interNodeBytes);
    cs.metric(prefix + "intra_node.messages", l.intraNodeMessages);
    cs.metric(prefix + "intra_node.bytes", l.intraNodeBytes);
    cs.metric(prefix + "forwarded.messages", l.forwardedMessages);
    cs.metric(prefix + "forwarded.bytes", l.forwardedBytes);
  };
  const char* jsonNames[] = {"regular_to_regular", "irregular_to_irregular"};
  for (size_t i = 0; i < results.size(); ++i) {
    obs::BenchReport::Case& cs = report.addCase(jsonNames[i]);
    legMetrics(cs, "reference", results[i].reference);
    legMetrics(cs, "executor_runwise", results[i].runwise);
    legMetrics(cs, "executor", results[i].executor);
    cs.metric("speedup", results[i].speedup());
    cs.metric("kernel_speedup", results[i].kernelSpeedup());
    cs.metric("copy_ratio", results[i].copyRatio());
    cs.metric("kernel_exec_per_step.contiguous", results[i].kernels.contiguous);
    cs.metric("kernel_exec_per_step.strided", results[i].kernels.strided);
    cs.metric("kernel_exec_per_step.run_list", results[i].kernels.runList);
    cs.metric("kernel_exec_per_step.index_list", results[i].kernels.indexList);
    linkMetrics(cs, "link.", results[i].executor);
  }
  obs::BenchReport::Case& ph = report.addCase("irregular_kernel_phases");
  ph.metric("runwise.pack_cpu_seconds", phaseRunwise.pack);
  ph.metric("runwise.unpack_cpu_seconds", phaseRunwise.unpack);
  ph.metric("runwise.apply_cpu_seconds", phaseRunwise.apply);
  ph.metric("kernels.pack_cpu_seconds", phaseKernels.pack);
  ph.metric("kernels.unpack_cpu_seconds", phaseKernels.unpack);
  ph.metric("kernels.apply_cpu_seconds", phaseKernels.apply);
  linkMetrics(ph, "link.", phaseLink);
  obs::BenchReport::Case& ov = report.addCase("split_phase_overlap");
  ov.metric("comm_seconds", overlap.commSeconds);
  ov.metric("blocking.per_step_seconds", overlap.blocking.perStepSeconds);
  ov.metric("blocking.allocations", overlap.blocking.allocations);
  ov.metric("blocking.messages", overlap.blocking.messages);
  ov.metric("split_phase.per_step_seconds", overlap.split.perStepSeconds);
  ov.metric("split_phase.allocations", overlap.split.allocations);
  ov.metric("split_phase.messages", overlap.split.messages);
  ov.metric("split_phase.messages_drained_early", overlap.split.drainedEarly);
  ov.metric("speedup", overlap.speedup());
  linkMetrics(ov, "link.", overlap.split);
  obs::BenchReport::Case& ag = report.addCase("node_aggregation_contention");
  ag.metric("nodes", kAggNodes);
  ag.metric("procs_per_node", kProcs / kAggNodes);
  ag.metric("block_elements", static_cast<double>(kAggBlock));
  ag.metric("flat.per_step_seconds", contention.flat.perStepSeconds);
  ag.metric("flat.messages", contention.flat.messages);
  linkMetrics(ag, "flat.link.", contention.flat);
  ag.metric("aggregated.per_step_seconds",
            contention.aggregated.perStepSeconds);
  ag.metric("aggregated.messages", contention.aggregated.messages);
  linkMetrics(ag, "link.", contention.aggregated);
  // Inter-node sends per rank per step in aggregated mode; the node
  // aggregation invariant bounds this by nodes - 1.
  ag.metric("inter_node_messages_per_rank_step",
            contention.aggregated.interNodeMessages / steps / kProcs);
  ag.metric("speedup", contention.speedup());
  report.write("BENCH_data_move.json");
  std::printf(
      "\nwrote BENCH_data_move.json and TRACE_data_move_overlap.json\n");
  return 0;
}
