// Micro benchmark for steady-state schedule execution (the data-move hot
// path): the pre-PR copy-per-step executor (sched::reference) against the
// persistent zero-copy sched::Executor, on a schedule built once and run
// many times — the paper's amortization pattern.
//
//   * regular -> regular     (parti block -> hpf block, full section): long
//     runs, so per-element work is all memcpy and the transport's extra
//     copies dominate;
//   * irregular -> irregular (chaos -> chaos, shuffled index sets): runs
//     degenerate to single elements, pack/unpack gather-scatter dominates
//     and the transport copies are the remaining fat.
//
// Reports wall-clock per step (virtual clocks cannot see the transport's
// internal copies — they happen outside compute()), plus the new
// TrafficStats counters: bytesCopied and allocations summed over ranks for
// the measured steps.  The executor leg must show zero for both.
// Emits BENCH_data_move.json.
//
// Flags: --side=N (default 768; element count is side^2), --steps=N
// (default 10), for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>

#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/schedule_builder.h"
#include "sched/executor.h"
#include "sched/reference_executor.h"
#include "util/rng.h"

using namespace mc;
using layout::Index;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;

struct Leg {
  double perStepSeconds = 0;  // wall clock, max over ranks
  double bytesCopied = 0;     // summed over ranks, measured steps only
  double allocations = 0;     // summed over ranks
  double messages = 0;        // summed over ranks
};

struct CaseResult {
  const char* name = "";
  Leg reference, executor;
  double speedup() const {
    return executor.perStepSeconds > 0
               ? reference.perStepSeconds / executor.perStepSeconds
               : 0.0;
  }
  /// Transport copy reduction; the executor leg is expected to be 0, so
  /// guard the ratio at one byte.
  double copyRatio() const {
    return reference.bytesCopied /
           (executor.bytesCopied > 0 ? executor.bytesCopied : 1.0);
  }
};

std::vector<Index> shuffledIds(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> ids(static_cast<size_t>(n));
  for (size_t k = 0; k < ids.size(); ++k) {
    ids[k] = static_cast<Index>(perm[k]);
  }
  return ids;
}

std::shared_ptr<chaos::IrregArray<double>> makeIrreg(transport::Comm& c,
                                                     Index n,
                                                     std::uint64_t seed) {
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), seed);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kDistributed));
  return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
}

/// Warmup + `steps` measured executions of `step`, returning per-step wall
/// time (max over ranks) and this rank's traffic counters reduced over the
/// program.  Wall clock, not virtual: the transport's payload copies run
/// outside compute() and are invisible to the virtual clock by design.
template <typename StepFn>
Leg measureLeg(transport::Comm& c, int steps, StepFn&& step) {
  step();  // warmup: first-run allocations stay out of the window
  c.barrier();
  c.resetStats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) step();
  const auto stats = c.stats();  // read before the reductions add traffic
  const double mine =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Leg leg;
  leg.perStepSeconds = c.allreduceMax(mine) / steps;
  leg.bytesCopied = c.allreduceSum(static_cast<double>(stats.bytesCopied));
  leg.allocations = c.allreduceSum(static_cast<double>(stats.allocations));
  leg.messages = c.allreduceSum(static_cast<double>(stats.messagesSent));
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  Index side = 768;
  int steps = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--side=", 7) == 0) {
      side = static_cast<Index>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      steps = std::atoi(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--side=N] [--steps=N]\n", argv[0]);
      return 2;
    }
  }
  const Index n = side * side;

  std::vector<CaseResult> results(2);
  results[0].name = "regular->regular";
  results[1].name = "irregular->irregular";

  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    // Case 1: parti block (with ghosts) -> hpf CYCLIC rows, full array
    // section.  Both sides are regular (long runs), but the distributions
    // disagree, so nearly all elements cross processors.
    {
      parti::BlockDistArray<double> a(c, Shape::of({side, side}), /*ghost=*/1);
      hpfrt::HpfArray<double> b(
          c, hpfrt::HpfDist(
                 Shape::of({side, side}),
                 {hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1},
                  hpfrt::DimDist{hpfrt::DistKind::kBlock, 1, 1}}));
      a.fillByPoint([&](const layout::Point& p) {
        return static_cast<double>(p[0] * side + p[1]);
      });
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::section(
          RegularSection::box({0, 0}, {side - 1, side - 1})));
      dstSet.add(core::Region::section(
          RegularSection::box({0, 0}, {side - 1, side - 1})));
      const core::McSchedule sched = core::computeSchedule(
          c, core::PartiAdapter::describe(a), srcSet,
          core::HpfAdapter::describe(b), dstSet, core::Method::kCooperation);

      const Leg ref = measureLeg(c, steps, [&] {
        sched::reference::execute<double>(c, sched.plan, a.raw(), b.raw(),
                                          c.nextUserTag());
      });
      sched::Executor<double> ex(c, sched.plan);
      const Leg fast =
          measureLeg(c, steps, [&] { ex.run(a.raw(), b.raw()); });
      if (c.rank() == 0) {
        results[0].reference = ref;
        results[0].executor = fast;
      }
    }

    // Case 2: chaos -> chaos with shuffled index sets.
    {
      auto x = makeIrreg(c, n, 7);
      auto y = makeIrreg(c, n, 8);
      x->fillByGlobal([](Index g) { return static_cast<double>(g) * 0.5; });
      core::SetOfRegions srcSet, dstSet;
      srcSet.add(core::Region::indices(shuffledIds(n, 5)));
      dstSet.add(core::Region::indices(shuffledIds(n, 6)));
      const core::McSchedule sched = core::computeSchedule(
          c, core::ChaosAdapter::describe(*x), srcSet,
          core::ChaosAdapter::describe(*y), dstSet,
          core::Method::kCooperation);

      const Leg ref = measureLeg(c, steps, [&] {
        sched::reference::execute<double>(c, sched.plan, x->raw(), y->raw(),
                                          c.nextUserTag());
      });
      sched::Executor<double> ex(c, sched.plan);
      const Leg fast =
          measureLeg(c, steps, [&] { ex.run(x->raw(), y->raw()); });
      if (c.rank() == 0) {
        results[1].reference = ref;
        results[1].executor = fast;
      }
    }
  });

  std::vector<std::string> cols;
  std::vector<double> refT, exT;
  for (const CaseResult& r : results) {
    cols.push_back(r.name);
    refT.push_back(r.reference.perStepSeconds);
    exT.push_back(r.executor.perStepSeconds);
  }
  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Steady-state data move, %lld elements, %d "
                            "processors, %d steps [wall ms per step]",
                            static_cast<long long>(n), kProcs, steps),
                  cols,
                  {
                      bench::Row{"reference (copy per step)", refT, {}},
                      bench::Row{"executor (zero-copy)", exT, {}},
                  })
                  .c_str());
  for (const CaseResult& r : results) {
    std::printf(
        "%-22s speedup %4.2fx   bytes copied/step: %11.0f -> %3.0f   "
        "allocations/step: %6.0f -> %2.0f\n",
        r.name, r.speedup(), r.reference.bytesCopied / steps,
        r.executor.bytesCopied / steps, r.reference.allocations / steps,
        r.executor.allocations / steps);
  }

  std::ofstream json("BENCH_data_move.json");
  json << "{\n  \"benchmark\": \"data_move\",\n  \"procs\": " << kProcs
       << ",\n  \"elements\": " << n << ",\n  \"steps\": " << steps
       << ",\n  \"cases\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    const auto leg = [&](const char* name, const Leg& l,
                         const char* trailing) {
      json << "     \"" << name
           << "\": {\"per_step_seconds\": " << l.perStepSeconds
           << ", \"bytes_copied\": " << l.bytesCopied
           << ", \"allocations\": " << l.allocations
           << ", \"messages\": " << l.messages << "}" << trailing << "\n";
    };
    json << "    {\"name\": \"" << r.name << "\",\n";
    leg("reference", r.reference, ",");
    leg("executor", r.executor, ",");
    json << "     \"speedup\": " << r.speedup()
         << ",\n     \"copy_ratio\": " << r.copyRatio() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_data_move.json\n");
  return 0;
}
