// Figure 11 of the paper: same experiment as Figure 10, but the client is
// a two-process Multiblock Parti program on two nodes.
#include "common/client_server.h"

int main() {
  mc::bench::printClientServerFigure(
      "Figure 11: two-process client (two nodes), one vector, server on 4 "
      "nodes [ms]",
      "fig11", /*clientProcs=*/2, {1, 2, 4, 8, 12, 16}, /*numVectors=*/1);
  return 0;
}
