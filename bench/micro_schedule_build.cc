// Micro benchmark for the run-native schedule builder.
//
// Measures cooperation-schedule build time (virtual clock) and the peak
// per-rank ownership-table footprint for three library pairings:
//
//   * regular -> regular     (parti block -> hpf block): every section row
//     is one run, so the run-native build is O(runs) in both time and
//     table bytes while the element-wise reference pays one table entry
//     per element;
//   * regular -> irregular   (parti block -> chaos distributed): the
//     regular side compresses, the irregular side stays per-element;
//   * irregular -> irregular (chaos -> chaos, different partitions and a
//     shuffled index set): the adversarial floor — runs degenerate to
//     single elements; the run-native pipeline leans on the batched
//     dereference cache, so repeat builds resolve locally while the
//     element-wise reference re-asks the table's home processors each rep.
//
// Each case reports the cold (first) and warm (subsequent) build times
// separately plus the localize.deref_cache hit/miss counters, so the
// inspector-reuse win is visible next to the averaged build time.
//
// Emits BENCH_schedule_build.json (obs::BenchReport, mc-bench-v1) next to
// the ascii table so the perf trajectory is machine-trackable.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "chaos/deref_cache.h"
#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/schedule_builder.h"
#include "obs/json.h"
#include "util/rng.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;
Index kSide = 768;  // elements per set = kSide^2; overridable via --side=N
constexpr int kReps = 3;

struct Measurement {
  double buildSeconds = 0;      // per build, averaged over kReps
  double coldBuildSeconds = 0;  // first build (empty dereference cache)
  double warmBuildSeconds = 0;  // per build, averaged over reps 2..kReps
  double peakTableBytes = 0;    // max over ranks, last build
  double derefHits = 0;         // deref-cache hits, summed over ranks
  double derefMisses = 0;       // deref-cache misses, summed over ranks
};

struct Case {
  const char* name;
  // Returns (srcObj, srcSet, dstObj, dstSet) holders; built inside the SPMD
  // region so each mode pass sees identical deterministic inputs.
  std::function<Measurement(bool elementwise)> run;
};

std::vector<Index> iotaIds(Index n) {
  std::vector<Index> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), Index{0});
  return ids;
}

std::vector<Index> shuffledIds(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> ids(static_cast<size_t>(n));
  for (size_t k = 0; k < ids.size(); ++k) {
    ids[k] = static_cast<Index>(perm[k]);
  }
  return ids;
}

std::shared_ptr<chaos::IrregArray<double>> makeIrreg(transport::Comm& c,
                                                     Index n,
                                                     std::uint64_t seed) {
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), seed);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kDistributed));
  return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
}

/// Runs kReps cooperation builds of (srcObj, srcSet) -> (dstObj, dstSet)
/// under the current pipeline mode and reports time and peak table bytes.
template <typename MakeFn>
Measurement measure(bool elementwise, MakeFn&& make) {
  const bool prev = core::testing::buildElementwiseForTest(elementwise);
  Measurement out;
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    auto [srcObj, srcSet, dstObj, dstSet, holder] = make(c);
    const chaos::DerefCacheStats d0 = chaos::derefCacheStats();
    bench::PhaseTimer timer(c);
    (void)core::computeSchedule(c, srcObj, srcSet, dstObj, dstSet,
                                core::Method::kCooperation);
    const double cold = timer.lap();
    for (int i = 1; i < kReps; ++i) {
      (void)core::computeSchedule(c, srcObj, srcSet, dstObj, dstSet,
                                  core::Method::kCooperation);
    }
    const double warm = timer.lap() / (kReps - 1);
    const chaos::DerefCacheStats d1 = chaos::derefCacheStats();
    const double peak = c.allreduceMax(
        static_cast<double>(core::lastBuildStats().ownershipTableBytes));
    const double hits =
        c.allreduceSum(static_cast<double>(d1.hits - d0.hits));
    const double misses =
        c.allreduceSum(static_cast<double>(d1.misses - d0.misses));
    if (c.rank() == 0) {
      out.buildSeconds = (cold + warm * (kReps - 1)) / kReps;
      out.coldBuildSeconds = cold;
      out.warmBuildSeconds = warm;
      out.peakTableBytes = peak;
      out.derefHits = hits;
      out.derefMisses = misses;
    }
  });
  core::testing::buildElementwiseForTest(prev);
  return out;
}

struct MadeCase {
  core::DistObject srcObj, dstObj;
  core::SetOfRegions srcSet, dstSet;
  std::shared_ptr<void> holder;
};

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--side=", 7) == 0) {
      kSide = static_cast<Index>(std::atoll(argv[i] + 7));
    } else {
      std::fprintf(stderr, "usage: %s [--side=N]\n", argv[0]);
      return 2;
    }
  }
  const Index n = kSide * kSide;

  const auto makeRegularRegular = [&](transport::Comm& c) {
    auto a = std::make_shared<parti::BlockDistArray<double>>(
        c, Shape::of({kSide, kSide}), /*ghost=*/1);
    auto b = std::make_shared<hpfrt::HpfArray<double>>(
        c, hpfrt::HpfDist::blockEveryDim(Shape::of({kSide, kSide}),
                                         c.size()));
    core::SetOfRegions srcSet, dstSet;
    srcSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    dstSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    auto holder = std::make_shared<std::pair<decltype(a), decltype(b)>>(a, b);
    return std::tuple{core::PartiAdapter::describe(*a), srcSet,
                      core::HpfAdapter::describe(*b), dstSet,
                      std::shared_ptr<void>(holder)};
  };

  const auto makeRegularIrregular = [&](transport::Comm& c) {
    auto a = std::make_shared<parti::BlockDistArray<double>>(
        c, Shape::of({kSide, kSide}), /*ghost=*/1);
    auto x = makeIrreg(c, n, 42);
    core::SetOfRegions srcSet, dstSet;
    srcSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    dstSet.add(core::Region::indices(iotaIds(n)));
    auto holder = std::make_shared<std::pair<decltype(a), decltype(x)>>(a, x);
    return std::tuple{core::PartiAdapter::describe(*a), srcSet,
                      core::ChaosAdapter::describe(*x), dstSet,
                      std::shared_ptr<void>(holder)};
  };

  const auto makeIrregularIrregular = [&](transport::Comm& c) {
    auto x = makeIrreg(c, n, 7);
    auto y = makeIrreg(c, n, 8);
    core::SetOfRegions srcSet, dstSet;
    srcSet.add(core::Region::indices(shuffledIds(n, 5)));
    dstSet.add(core::Region::indices(shuffledIds(n, 6)));
    auto holder = std::make_shared<std::pair<decltype(x), decltype(y)>>(x, y);
    return std::tuple{core::ChaosAdapter::describe(*x), srcSet,
                      core::ChaosAdapter::describe(*y), dstSet,
                      std::shared_ptr<void>(holder)};
  };

  struct Result {
    const char* name;
    Measurement elem, runs;
  };
  std::vector<Result> results;
  results.push_back({"regular->regular",
                     measure(true, makeRegularRegular),
                     measure(false, makeRegularRegular)});
  results.push_back({"regular->irregular",
                     measure(true, makeRegularIrregular),
                     measure(false, makeRegularIrregular)});
  results.push_back({"irregular->irregular",
                     measure(true, makeIrregularIrregular),
                     measure(false, makeIrregularIrregular)});

  std::vector<std::string> cols;
  std::vector<double> elemT, runT;
  for (const Result& r : results) {
    cols.push_back(r.name);
    elemT.push_back(r.elem.buildSeconds);
    runT.push_back(r.runs.buildSeconds);
  }
  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Cooperation schedule build, %lld elements, "
                            "%d processors [ms per build]",
                            static_cast<long long>(n), kProcs),
                  cols,
                  {
                      bench::Row{"element-wise reference", elemT, {}},
                      bench::Row{"run-native interval join", runT, {}},
                  })
                  .c_str());
  for (const Result& r : results) {
    std::printf(
        "%-22s build speedup %5.1fx   peak table bytes/rank: "
        "%9.0f -> %7.0f (%5.1fx smaller)\n",
        r.name, r.runs.buildSeconds > 0
                    ? r.elem.buildSeconds / r.runs.buildSeconds
                    : 0.0,
        r.elem.peakTableBytes, r.runs.peakTableBytes,
        r.runs.peakTableBytes > 0
            ? r.elem.peakTableBytes / r.runs.peakTableBytes
            : 0.0);
    std::printf(
        "%-22s run-native cold/warm: %s / %s ms   deref cache "
        "hits/misses: %.0f / %.0f\n",
        "", bench::fmtMs(r.runs.coldBuildSeconds).c_str(),
        bench::fmtMs(r.runs.warmBuildSeconds).c_str(), r.runs.derefHits,
        r.runs.derefMisses);
  }

  obs::BenchReport report("schedule_build");
  report.config("procs", kProcs);
  report.config("side", static_cast<double>(kSide));
  report.config("elements", static_cast<double>(n));
  report.config("reps", kReps);
  const char* jsonNames[] = {"regular_to_regular", "regular_to_irregular",
                             "irregular_to_irregular"};
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    obs::BenchReport::Case& cs = report.addCase(jsonNames[i]);
    cs.metric("elementwise.build_seconds", r.elem.buildSeconds);
    cs.metric("elementwise.cold_build_seconds", r.elem.coldBuildSeconds);
    cs.metric("elementwise.warm_build_seconds", r.elem.warmBuildSeconds);
    cs.metric("elementwise.peak_table_bytes", r.elem.peakTableBytes);
    cs.metric("elementwise.deref_cache_hits", r.elem.derefHits);
    cs.metric("elementwise.deref_cache_misses", r.elem.derefMisses);
    cs.metric("run_native.build_seconds", r.runs.buildSeconds);
    cs.metric("run_native.cold_build_seconds", r.runs.coldBuildSeconds);
    cs.metric("run_native.warm_build_seconds", r.runs.warmBuildSeconds);
    cs.metric("run_native.peak_table_bytes", r.runs.peakTableBytes);
    cs.metric("run_native.deref_cache_hits", r.runs.derefHits);
    cs.metric("run_native.deref_cache_misses", r.runs.derefMisses);
    cs.metric("build_speedup", r.runs.buildSeconds > 0
                                   ? r.elem.buildSeconds / r.runs.buildSeconds
                                   : 0.0);
    cs.metric("warm_build_speedup",
              r.runs.warmBuildSeconds > 0
                  ? r.elem.warmBuildSeconds / r.runs.warmBuildSeconds
                  : 0.0);
    cs.metric("table_bytes_ratio",
              r.runs.peakTableBytes > 0
                  ? r.elem.peakTableBytes / r.runs.peakTableBytes
                  : 0.0);
  }
  report.write("BENCH_schedule_build.json");
  std::printf("\nwrote BENCH_schedule_build.json\n");
  return 0;
}
