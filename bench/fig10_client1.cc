// Figure 10 of the paper: total time, broken down by component, for a
// *sequential* client using the HPF matvec server (one vector), as the
// server grows from 1 to 16 processes on 4 nodes.
//
// Expected shape (paper): the HPF compute time falls up to ~8 processes and
// stops improving; schedule time falls to 4 processes then *rises* (ATM
// contention among processes sharing a node + more, smaller messages);
// best total around 8 server processes.
#include "common/client_server.h"

int main() {
  mc::bench::printClientServerFigure(
      "Figure 10: sequential client, one vector, server on 4 nodes [ms]",
      "fig10", /*clientProcs=*/1, {1, 2, 4, 8, 12, 16}, /*numVectors=*/1);
  return 0;
}
