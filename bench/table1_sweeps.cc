// Table 1 of the paper: inspector time (total) and executor time (per
// iteration) for the regular and irregular mesh sweeps of the Figure-1 code
// in one program, on 2/4/8/16 processors.
//
// Workload (paper Section 5.1): 256x256 regular mesh, block-distributed by
// Multiblock Parti; 65536-point irregular mesh distributed by Chaos.  The
// inspector comprises the Parti ghost-schedule build and the Chaos localize
// of the edge endpoint arrays; the executor is one stencil sweep plus one
// edge sweep (intra-mesh communication included).
//
// Expected shape: inspector cost drops with more processors (the Chaos
// dereference work is spread); executor drops with more processors.
#include <cstdio>

#include "common/bench_util.h"
#include "workloads/coupled_mesh.h"

using namespace mc;

int main() {
  const std::vector<int> procs = {2, 4, 8, 16};
  constexpr int kIters = 5;
  std::vector<double> inspector, executor;

  for (int np : procs) {
    double insp = 0, exec = 0;
    transport::World::runSPMD(np, [&](transport::Comm& c) {
      workloads::CoupledMesh mesh(c, workloads::CoupledMeshConfig{});
      mesh.buildMetaChaosCopySchedules(core::Method::kCooperation);
      bench::PhaseTimer timer(c);
      mesh.buildRegularInspector();
      mesh.buildIrregularInspector();
      const double ti = timer.lap();
      for (int it = 0; it < kIters; ++it) {
        mesh.regularSweep();
        mesh.copyRegToIrregMC();  // keep x fresh between sweeps
        mesh.irregularSweep();
      }
      const double te = timer.lap() / kIters;
      if (c.rank() == 0) {
        insp = ti;
        exec = te;
      }
    });
    inspector.push_back(insp);
    executor.push_back(exec);
  }

  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));
  std::printf("%s\n",
              bench::renderTable(
                  "Table 1: inspector (total) / executor (per iter), one "
                  "program, regular+irregular meshes [ms]",
                  cols,
                  {
                      bench::Row{"inspector", inspector,
                                 {1533, 1340, 667, 684}},
                      bench::Row{"executor", executor, {91, 66, 65, 53}},
                  })
                  .c_str());
  std::printf("note: executor includes the Meta-Chaos remap to keep the\n"
              "unstructured sweep's input live, as in the Figure 1 code.\n");
  return 0;
}
