// Micro benchmark for the schedule cache and run-compressed execution.
//
// Part 1 (virtual time): a time-step loop that copies a regular mesh into an
// irregular one, either rebuilding the schedule every step (the naive
// pattern) or fetching it from the rank's ScheduleCache (build once, hit
// thereafter).  The gap is the paper's amortization argument (Figure 15)
// turned into a library default.
//
// Part 2 (wall clock): pack/unpack of a large section, element-by-element
// versus run-compressed (one memcpy per contiguous run).  This measures the
// real CPU cost of the executor fast path, independent of the network model.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/copy_regions.h"
#include "sched/run_plan.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;
constexpr Index kSide = 96;  // 96x96 regular mesh -> 9216-point irregular mesh
constexpr int kReps = 10;

struct Setup {
  parti::BlockDistArray<double> a;
  std::shared_ptr<chaos::IrregArray<double>> x;
  core::DistObject aObj, xObj;
  core::SetOfRegions aSet, xSet;

  static std::shared_ptr<chaos::IrregArray<double>> makeIrreg(
      transport::Comm& c) {
    const Index n = kSide * kSide;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 42);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  }

  explicit Setup(transport::Comm& c)
      : a(c, Shape::of({kSide, kSide}), /*ghost=*/1),
        x(makeIrreg(c)),
        aObj(core::PartiAdapter::describe(a)),
        xObj(core::ChaosAdapter::describe(*x)) {
    a.fillByPoint([](const Point& p) {
      return static_cast<double>(p[0] * kSide + p[1]);
    });
    x->fillByGlobal([](Index) { return 0.0; });
    aSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    std::vector<Index> ids(static_cast<size_t>(kSide * kSide));
    std::iota(ids.begin(), ids.end(), Index{0});
    xSet.add(core::Region::indices(ids));
  }
};

double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  // --- Part 1: rebuild-per-copy vs cached-per-copy (virtual clock) --------
  double tRebuild = 0, tCached = 0, tExecOnly = 0;
  std::uint64_t hits = 0, misses = 0;
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    Setup s(c);
    bench::PhaseTimer timer(c);

    // Naive: a fresh inspector every time step.
    for (int i = 0; i < kReps; ++i) {
      const core::McSchedule sched = core::computeSchedule(
          c, s.aObj, s.aSet, s.xObj, s.xSet, core::Method::kCooperation);
      core::dataMove<double>(c, sched, s.a.raw(), s.x->raw());
    }
    const double t1 = timer.lap();

    // Cached: the first step builds and inserts, the rest hit.
    core::ScheduleCache cache;
    for (int i = 0; i < kReps; ++i) {
      core::copyRegions<double>(c, s.aObj, s.aSet, s.a.raw(), s.xObj, s.xSet,
                                s.x->raw(), core::Method::kCooperation,
                                &cache);
    }
    const double t2 = timer.lap();

    // Floor: executor only, schedule in hand (what a hit costs minus the
    // agreement round).
    const auto sched = cache.getOrBuild(c, s.aObj, s.aSet, s.xObj, s.xSet);
    timer.lap();
    for (int i = 0; i < kReps; ++i) {
      core::dataMove<double>(c, *sched, s.a.raw(), s.x->raw());
    }
    const double t3 = timer.lap();

    if (c.rank() == 0) {
      tRebuild = t1;
      tCached = t2;
      tExecOnly = t3;
      hits = cache.stats().hits;
      misses = cache.stats().misses;
    }
  });

  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Schedule cache: %d copies of a %lldx%lld mesh "
                            "into an irregular mesh, %d processors [ms]",
                            kReps, static_cast<long long>(kSide),
                            static_cast<long long>(kSide), kProcs),
                  {"total"},
                  {
                      bench::Row{"rebuild every copy", {tRebuild}, {}},
                      bench::Row{"schedule cache", {tCached}, {}},
                      bench::Row{"executor only", {tExecOnly}, {}},
                  })
                  .c_str());
  std::printf("cache counters (rank 0): %llu hits / %llu misses; "
              "amortization factor %.1fx\n\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              tCached > 0 ? tRebuild / tCached : 0.0);

  // --- Part 2: run-compressed vs per-element pack/unpack (wall clock) -----
  const Index n = 1 << 20;
  std::vector<double> src(static_cast<size_t>(n));
  std::iota(src.begin(), src.end(), 0.0);

  struct Pattern {
    const char* name;
    std::vector<Index> offsets;
  };
  std::vector<Pattern> patterns;
  {
    Pattern contiguous{"contiguous", {}};
    contiguous.offsets.resize(static_cast<size_t>(n));
    std::iota(contiguous.offsets.begin(), contiguous.offsets.end(), Index{0});
    patterns.push_back(std::move(contiguous));

    Pattern rows{"rows of 1024", {}};  // 512 contiguous rows, every other row
    for (Index r = 0; r < n / 1024; r += 2) {
      for (Index k = 0; k < 1024; ++k) rows.offsets.push_back(r * 1024 + k);
    }
    patterns.push_back(std::move(rows));

    Pattern strided{"stride 2", {}};
    for (Index k = 0; k < n; k += 2) strided.offsets.push_back(k);
    patterns.push_back(std::move(strided));
  }

  std::printf("== Run-compressed vs per-element pack (1M-double buffer, "
              "wall clock) ==\n");
  std::printf("%-14s %10s %12s %12s %8s\n", "pattern", "elements",
              "element [ms]", "runwise [ms]", "speedup");
  for (const Pattern& pat : patterns) {
    const auto runs =
        sched::compressOffsets(std::span<const Index>(pat.offsets));
    std::vector<double> buf(pat.offsets.size());
    const int wReps = 20;

    double tElem = wallNow();
    for (int r = 0; r < wReps; ++r) {
      size_t i = 0;
      for (Index off : pat.offsets) buf[i++] = src[static_cast<size_t>(off)];
    }
    tElem = wallNow() - tElem;

    double tRuns = wallNow();
    for (int r = 0; r < wReps; ++r) {
      sched::packRuns(std::span<const double>(src),
                      std::span<const sched::OffsetRun>(runs), buf.data());
    }
    tRuns = wallNow() - tRuns;

    std::printf("%-14s %10zu %12.2f %12.2f %7.1fx\n", pat.name,
                pat.offsets.size(), 1e3 * tElem / wReps, 1e3 * tRuns / wReps,
                tRuns > 0 ? tElem / tRuns : 0.0);
  }
  std::printf("expected: contiguous and blocked patterns collapse to a few\n"
              "memcpy calls; pure stride-2 keeps one run whose pointer walk\n"
              "still beats chasing an explicit offset list.\n");

  std::ofstream json("BENCH_schedule_cache.json");
  json << "{\n  \"benchmark\": \"schedule_cache\",\n  \"procs\": " << kProcs
       << ",\n  \"reps\": " << kReps
       << ",\n  \"rebuild_seconds\": " << tRebuild
       << ",\n  \"cached_seconds\": " << tCached
       << ",\n  \"executor_only_seconds\": " << tExecOnly
       << ",\n  \"cache_hits\": " << hits << ",\n  \"cache_misses\": "
       << misses << ",\n  \"amortization_factor\": "
       << (tCached > 0 ? tRebuild / tCached : 0.0) << "\n}\n";
  std::printf("wrote BENCH_schedule_cache.json\n");
  return 0;
}
