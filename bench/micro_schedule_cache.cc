// Micro benchmark for the schedule cache and run-compressed execution.
//
// Part 1 (virtual time): a time-step loop that copies a regular mesh into an
// irregular one, either rebuilding the schedule every step (the naive
// pattern) or fetching it from the rank's ScheduleCache (build once, hit
// thereafter).  The gap is the paper's amortization argument (Figure 15)
// turned into a library default.
//
// Part 2 (wall clock): pack/unpack of a large section, element-by-element
// versus run-compressed (one memcpy per contiguous run).  This measures the
// real CPU cost of the executor fast path, independent of the network model.
//
// Cache counters are attributed per leg by CacheStats epoch snapshot/diff
// (after - before): the cached leg is 1 miss + kReps-1 hits, and the
// executor-only leg's getOrBuild prep is its own 1 hit.  (Reading the
// counters once at the end used to conflate the two, reporting the prep hit
// as if the cached leg had kReps hits.)  Emits BENCH_schedule_cache.json
// through obs::BenchReport (mc-bench-v1).
#include <chrono>
#include <cstdio>
#include <numeric>

#include "chaos/partition.h"
#include "common/bench_util.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/copy_regions.h"
#include "obs/json.h"
#include "sched/run_plan.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr int kProcs = 8;
constexpr Index kSide = 96;  // 96x96 regular mesh -> 9216-point irregular mesh
constexpr int kReps = 10;

struct Setup {
  parti::BlockDistArray<double> a;
  std::shared_ptr<chaos::IrregArray<double>> x;
  core::DistObject aObj, xObj;
  core::SetOfRegions aSet, xSet;

  static std::shared_ptr<chaos::IrregArray<double>> makeIrreg(
      transport::Comm& c) {
    const Index n = kSide * kSide;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 42);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    return std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  }

  explicit Setup(transport::Comm& c)
      : a(c, Shape::of({kSide, kSide}), /*ghost=*/1),
        x(makeIrreg(c)),
        aObj(core::PartiAdapter::describe(a)),
        xObj(core::ChaosAdapter::describe(*x)) {
    a.fillByPoint([](const Point& p) {
      return static_cast<double>(p[0] * kSide + p[1]);
    });
    x->fillByGlobal([](Index) { return 0.0; });
    aSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
    std::vector<Index> ids(static_cast<size_t>(kSide * kSide));
    std::iota(ids.begin(), ids.end(), Index{0});
    xSet.add(core::Region::indices(ids));
  }
};

double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  // --- Part 1: rebuild-per-copy vs cached-per-copy (virtual clock) --------
  double tRebuild = 0, tCached = 0, tExecOnly = 0;
  sched::CacheStats cachedLeg, prepLeg;
  transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
    Setup s(c);
    bench::PhaseTimer timer(c);

    // Naive: a fresh inspector every time step.
    for (int i = 0; i < kReps; ++i) {
      const core::McSchedule sched = core::computeSchedule(
          c, s.aObj, s.aSet, s.xObj, s.xSet, core::Method::kCooperation);
      core::dataMove<double>(c, sched, s.a.raw(), s.x->raw());
    }
    const double t1 = timer.lap();

    // Cached: the first step builds and inserts, the rest hit.  Counters
    // are attributed by epoch diff so the executor-only leg's prep below
    // cannot leak into this leg's hit count.
    core::ScheduleCache cache;
    const sched::CacheStats beforeCached = cache.stats();
    for (int i = 0; i < kReps; ++i) {
      core::copyRegions<double>(c, s.aObj, s.aSet, s.a.raw(), s.xObj, s.xSet,
                                s.x->raw(), core::Method::kCooperation,
                                &cache);
    }
    const sched::CacheStats afterCached = cache.stats();
    const double t2 = timer.lap();

    // Floor: executor only, schedule in hand (what a hit costs minus the
    // agreement round).  The getOrBuild is prep — its cache hit belongs to
    // this leg, not the cached loop above.
    const auto sched = cache.getOrBuild(c, s.aObj, s.aSet, s.xObj, s.xSet);
    const sched::CacheStats afterPrep = cache.stats();
    timer.lap();
    for (int i = 0; i < kReps; ++i) {
      core::dataMove<double>(c, *sched, s.a.raw(), s.x->raw());
    }
    const double t3 = timer.lap();

    if (c.rank() == 0) {
      tRebuild = t1;
      tCached = t2;
      tExecOnly = t3;
      cachedLeg = afterCached - beforeCached;
      prepLeg = afterPrep - afterCached;
    }
  });

  std::printf("%s\n",
              bench::renderTable(
                  strprintf("Schedule cache: %d copies of a %lldx%lld mesh "
                            "into an irregular mesh, %d processors [ms]",
                            kReps, static_cast<long long>(kSide),
                            static_cast<long long>(kSide), kProcs),
                  {"total"},
                  {
                      bench::Row{"rebuild every copy", {tRebuild}, {}},
                      bench::Row{"schedule cache", {tCached}, {}},
                      bench::Row{"executor only", {tExecOnly}, {}},
                  })
                  .c_str());
  std::printf("cache counters (rank 0): cached leg %llu hits / %llu misses, "
              "executor prep %llu hits; amortization factor %.1fx\n\n",
              static_cast<unsigned long long>(cachedLeg.hits),
              static_cast<unsigned long long>(cachedLeg.misses),
              static_cast<unsigned long long>(prepLeg.hits),
              tCached > 0 ? tRebuild / tCached : 0.0);

  // --- Part 2: run-compressed vs per-element pack/unpack (wall clock) -----
  const Index n = 1 << 20;
  std::vector<double> src(static_cast<size_t>(n));
  std::iota(src.begin(), src.end(), 0.0);

  struct Pattern {
    const char* name;
    std::vector<Index> offsets;
  };
  std::vector<Pattern> patterns;
  {
    Pattern contiguous{"contiguous", {}};
    contiguous.offsets.resize(static_cast<size_t>(n));
    std::iota(contiguous.offsets.begin(), contiguous.offsets.end(), Index{0});
    patterns.push_back(std::move(contiguous));

    Pattern rows{"rows of 1024", {}};  // 512 contiguous rows, every other row
    for (Index r = 0; r < n / 1024; r += 2) {
      for (Index k = 0; k < 1024; ++k) rows.offsets.push_back(r * 1024 + k);
    }
    patterns.push_back(std::move(rows));

    Pattern strided{"stride 2", {}};
    for (Index k = 0; k < n; k += 2) strided.offsets.push_back(k);
    patterns.push_back(std::move(strided));
  }

  std::printf("== Run-compressed vs per-element pack (1M-double buffer, "
              "wall clock) ==\n");
  std::printf("%-14s %10s %12s %12s %8s\n", "pattern", "elements",
              "element [ms]", "runwise [ms]", "speedup");
  struct PackResult {
    std::string name;  // snake_case for the JSON case name
    double elements = 0, elementSeconds = 0, runwiseSeconds = 0;
  };
  std::vector<PackResult> packResults;
  for (const Pattern& pat : patterns) {
    const auto runs =
        sched::compressOffsets(std::span<const Index>(pat.offsets));
    std::vector<double> buf(pat.offsets.size());
    const int wReps = 20;

    double tElem = wallNow();
    for (int r = 0; r < wReps; ++r) {
      size_t i = 0;
      for (Index off : pat.offsets) buf[i++] = src[static_cast<size_t>(off)];
    }
    tElem = wallNow() - tElem;

    double tRuns = wallNow();
    for (int r = 0; r < wReps; ++r) {
      sched::packRuns(std::span<const double>(src),
                      std::span<const sched::OffsetRun>(runs), buf.data());
    }
    tRuns = wallNow() - tRuns;

    std::printf("%-14s %10zu %12.2f %12.2f %7.1fx\n", pat.name,
                pat.offsets.size(), 1e3 * tElem / wReps, 1e3 * tRuns / wReps,
                tRuns > 0 ? tElem / tRuns : 0.0);

    PackResult pr;
    pr.name = std::string("pack_") + pat.name;
    for (char& ch : pr.name) {
      if (ch == ' ') ch = '_';
    }
    pr.elements = static_cast<double>(pat.offsets.size());
    pr.elementSeconds = tElem / wReps;
    pr.runwiseSeconds = tRuns / wReps;
    packResults.push_back(std::move(pr));
  }
  std::printf("expected: contiguous and blocked patterns collapse to a few\n"
              "memcpy calls; pure stride-2 keeps one run whose pointer walk\n"
              "still beats chasing an explicit offset list.\n");

  obs::BenchReport report("schedule_cache");
  report.config("procs", kProcs);
  report.config("side", static_cast<double>(kSide));
  report.config("reps", kReps);
  obs::BenchReport::Case& rebuild = report.addCase("rebuild_every_copy");
  rebuild.metric("total_seconds", tRebuild);
  obs::BenchReport::Case& cached = report.addCase("schedule_cache");
  cached.metric("total_seconds", tCached);
  cached.metric("cache.hits", static_cast<double>(cachedLeg.hits));
  cached.metric("cache.misses", static_cast<double>(cachedLeg.misses));
  cached.metric("cache.insertions",
                static_cast<double>(cachedLeg.insertions));
  cached.metric("amortization_factor",
                tCached > 0 ? tRebuild / tCached : 0.0);
  obs::BenchReport::Case& execOnly = report.addCase("executor_only");
  execOnly.metric("total_seconds", tExecOnly);
  execOnly.metric("prep.cache.hits", static_cast<double>(prepLeg.hits));
  execOnly.metric("prep.cache.misses", static_cast<double>(prepLeg.misses));
  for (const auto& pr : packResults) {
    obs::BenchReport::Case& cs = report.addCase(pr.name);
    cs.metric("elements", pr.elements);
    cs.metric("element_seconds", pr.elementSeconds);
    cs.metric("runwise_seconds", pr.runwiseSeconds);
    cs.metric("speedup", pr.runwiseSeconds > 0
                             ? pr.elementSeconds / pr.runwiseSeconds
                             : 0.0);
  }
  report.write("BENCH_schedule_cache.json");
  std::printf("wrote BENCH_schedule_cache.json\n");
  return 0;
}
