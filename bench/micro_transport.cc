// Micro-benchmarks (google-benchmark) for the virtual-processor transport:
// wall-clock throughput of the mailbox/point-to-point machinery and the
// collectives.  These measure the *host* cost of the substrate itself (not
// virtual time) — the overhead every simulated experiment rides on.
#include <benchmark/benchmark.h>

#include "transport/world.h"

namespace {

using mc::transport::Comm;
using mc::transport::World;

void BM_PingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::runSPMD(2, [&](Comm& c) {
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.sendValue(1, 1, i);
          benchmark::DoNotOptimize(c.recvValue<int>(1, 2));
        } else {
          benchmark::DoNotOptimize(c.recvValue<int>(0, 1));
          c.sendValue(0, 2, i);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_PingPong)->Arg(1000);

void BM_Bandwidth1MiB(benchmark::State& state) {
  const std::vector<double> payload(1 << 17);  // 1 MiB of doubles
  for (auto _ : state) {
    World::runSPMD(2, [&](Comm& c) {
      for (int i = 0; i < 8; ++i) {
        if (c.rank() == 0) {
          c.send(1, 1, payload);
        } else {
          benchmark::DoNotOptimize(c.recv<double>(0, 1));
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 8 * (1 << 20));
}
BENCHMARK(BM_Bandwidth1MiB);

void BM_Barrier(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    World::runSPMD(np, [&](Comm& c) {
      for (int i = 0; i < rounds; ++i) c.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16);

void BM_Alltoall(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::runSPMD(np, [&](Comm& c) {
      std::vector<std::vector<double>> lanes(
          static_cast<size_t>(c.size()), std::vector<double>(256, 1.0));
      for (int i = 0; i < 20; ++i) {
        benchmark::DoNotOptimize(c.alltoall(lanes));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_Alltoall)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
