// Ablation: schedule-builder choice as the transfer size grows.
//
// For analytic (closed-form) distributions the duplication build is pure
// local computation while cooperation pays some communication; for
// translation-table data the trade inverts because duplication must double
// the dereference work and, across programs, ship the table.  This ablation
// sweeps the set size for an analytic pair (Parti <-> HPF) and reports both
// builders.
#include <cstdio>

#include "common/bench_util.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

int main() {
  constexpr int kProcs = 8;
  const std::vector<Index> sides = {64, 128, 256, 512, 1024};
  std::vector<double> coop, dup;

  for (Index side : sides) {
    double tCoop = 0, tDup = 0;
    transport::World::runSPMD(kProcs, [&](transport::Comm& c) {
      parti::BlockDistArray<double> a(c, Shape::of({side, side}), 0);
      hpfrt::HpfArray<double> b(
          c, hpfrt::HpfDist(Shape::of({side, side}),
                            {hpfrt::DimDist{hpfrt::DistKind::kCyclic,
                                            c.size(), 1},
                             hpfrt::DimDist{hpfrt::DistKind::kBlock, 1, 1}}));
      core::SetOfRegions set;
      set.add(core::Region::section(
          RegularSection::box({0, 0}, {side - 1, side - 1})));
      bench::PhaseTimer timer(c);
      (void)core::computeSchedule(c, core::PartiAdapter::describe(a), set,
                                  core::HpfAdapter::describe(b), set,
                                  core::Method::kCooperation);
      const double t1 = timer.lap();
      (void)core::computeSchedule(c, core::PartiAdapter::describe(a), set,
                                  core::HpfAdapter::describe(b), set,
                                  core::Method::kDuplication);
      const double t2 = timer.lap();
      if (c.rank() == 0) {
        tCoop = t1;
        tDup = t2;
      }
    });
    coop.push_back(tCoop);
    dup.push_back(tDup);
  }
  std::vector<std::string> cols;
  for (Index side : sides) {
    cols.push_back(std::to_string(side) + "^2");
  }
  std::printf("%s\n",
              bench::renderTable(
                  "Ablation: builder choice, Parti -> HPF(CYCLIC) full-array "
                  "schedule on 8 processors [ms]",
                  cols,
                  {
                      bench::Row{"cooperation", coop, {}},
                      bench::Row{"duplication", dup, {}},
                  })
                  .c_str());
  std::printf("expected: cooperation splits the O(n) enumeration across\n"
              "processors (then ships compact run plans); duplication\n"
              "enumerates everything on every processor, so it loses ground\n"
              "as the set grows — unless the descriptor is a translation\n"
              "table, where the trade inverts (see ablation_ttable).\n");
  return 0;
}
