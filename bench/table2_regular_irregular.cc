// Table 2 of the paper: schedule-build time (total) and data-copy time (per
// iteration, both directions) for moving the whole mesh between the regular
// (Multiblock Parti) and irregular (Chaos) distributions, in one program:
//
//   * Chaos alone (pointwise translation table for the regular mesh,
//     explicit correspondence, extra copy + indirection in the executor),
//   * Meta-Chaos with the cooperation build,
//   * Meta-Chaos with the duplication build.
//
// Expected shape (paper): cooperation ~ Chaos (both pay one dereference
// pass over the irregular table); duplication ~ 2x (two ownership passes);
// the Meta-Chaos copy is never slower than the Chaos copy; all build times
// fall as processors are added.
#include <cstdio>

#include "common/bench_util.h"
#include "workloads/coupled_mesh.h"

using namespace mc;

namespace {

struct Cell {
  double sched = 0;
  double copy = 0;
};

Cell run(int np, int variant) {  // 0 = chaos, 1 = coop, 2 = dup
  Cell out;
  constexpr int kIters = 3;
  transport::World::runSPMD(np, [&](transport::Comm& c) {
    workloads::CoupledMeshConfig cfg;
    workloads::CoupledMesh mesh(c, cfg);
    bench::PhaseTimer timer(c);
    switch (variant) {
      case 0: mesh.buildChaosCopySchedules(); break;
      case 1:
        mesh.buildMetaChaosCopySchedules(core::Method::kCooperation);
        break;
      default:
        mesh.buildMetaChaosCopySchedules(core::Method::kDuplication);
        break;
    }
    const double ts = timer.lap();
    for (int it = 0; it < kIters; ++it) {
      if (variant == 0) {
        mesh.copyRegToIrregChaos();
        mesh.copyIrregToRegChaos();
      } else {
        mesh.copyRegToIrregMC();
        mesh.copyIrregToRegMC();
      }
    }
    const double tc = timer.lap() / kIters;
    if (c.rank() == 0) {
      out.sched = ts;
      out.copy = tc;
    }
  });
  return out;
}

}  // namespace

int main() {
  const std::vector<int> procs = {2, 4, 8, 16};
  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));

  std::vector<bench::Row> rows;
  const char* names[3] = {"Chaos", "Meta-Chaos coop", "Meta-Chaos dup"};
  const std::vector<std::vector<double>> paperSched = {
      {1099, 830, 437, 215}, {1509, 832, 436, 215}, {2768, 1645, 1025, 745}};
  const std::vector<std::vector<double>> paperCopy = {
      {64, 52, 38, 33}, {71, 50, 32, 21}, {70, 50, 33, 21}};
  for (int v = 0; v < 3; ++v) {
    std::vector<double> sched, copy;
    for (int np : procs) {
      const Cell cell = run(np, v);
      sched.push_back(cell.sched);
      copy.push_back(cell.copy);
    }
    rows.push_back(bench::Row{std::string(names[v]) + " schedule", sched,
                              paperSched[static_cast<size_t>(v)]});
    rows.push_back(bench::Row{std::string(names[v]) + " copy", copy,
                              paperCopy[static_cast<size_t>(v)]});
  }
  std::printf("%s\n",
              bench::renderTable(
                  "Table 2: schedule build (total) / copy (per iter, both "
                  "directions), regular<->irregular, one program [ms]",
                  cols, rows)
                  .c_str());
  std::printf(
      "note: the duplication build first replicates the distributed\n"
      "translation table to every processor (its 'exchange descriptors'\n"
      "step) and that cost is charged to its schedule time.\n");
  return 0;
}
