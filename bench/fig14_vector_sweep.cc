// Figure 14 of the paper: total time as a function of the number of
// vectors multiplied by one matrix (sequential client, eight-process
// server — the server's best configuration).  The one-time costs (schedule
// computation, matrix send) amortize; the incremental cost per vector is
// the server compute plus the vector roundtrip.
#include <cstdio>

#include "common/bench_util.h"
#include "common/client_server.h"
#include "workloads/matvec_session.h"

using namespace mc;

int main() {
  const std::vector<int> vectorCounts = {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  obs::BenchReport report("fig14");
  report.config("client_procs", 1);
  report.config("server_procs", 8);
  std::vector<double> sched, matrix, server, vectors, total;
  for (int nv : vectorCounts) {
    workloads::MatvecSessionConfig cfg;
    cfg.clientProcs = 1;
    cfg.serverProcs = 8;
    cfg.numVectors = nv;
    const workloads::MatvecBreakdown b = workloads::runMatvecSession(cfg);
    sched.push_back(b.scheduleBuild);
    matrix.push_back(b.sendMatrix);
    server.push_back(b.serverCompute);
    vectors.push_back(b.vectorExchange);
    total.push_back(b.total());
    bench::addBreakdownCase(report, "v" + std::to_string(nv), b);
  }
  report.write("BENCH_fig14.json");
  std::vector<std::string> cols;
  for (int nv : vectorCounts) cols.push_back("v=" + std::to_string(nv));
  std::printf("%s\n",
              bench::renderTable(
                  "Figure 14: total time vs number of vectors, sequential "
                  "client, 8-process server [ms]",
                  cols,
                  {
                      bench::Row{"compute schedule", sched, {}},
                      bench::Row{"send matrix", matrix, {}},
                      bench::Row{"HPF program", server, {}},
                      bench::Row{"send/recv vector", vectors, {}},
                      bench::Row{"total", total, {}},
                  })
                  .c_str());
  std::printf("expected shape: schedule + matrix rows stay flat while the\n"
              "HPF and vector rows grow linearly with the vector count.\n");
  return 0;
}
