// Micro-benchmarks (google-benchmark) for linearization enumeration — the
// per-element inquiry work at the heart of every Meta-Chaos schedule build,
// measured per region type / library adapter.
#include <benchmark/benchmark.h>

#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "util/rng.h"

namespace {

using mc::layout::Index;
using mc::layout::RegularSection;
using mc::layout::Shape;
using namespace mc::core;

void BM_EnumerateParti(benchmark::State& state) {
  const Index side = state.range(0);
  auto desc = std::make_shared<const mc::parti::PartiDesc>(
      mc::parti::PartiDesc{
          mc::layout::BlockDecomp::regular(Shape::of({side, side}), 16), 1});
  const DistObject obj("parti", desc);
  SetOfRegions set;
  set.add(Region::section(RegularSection::box({0, 0}, {side - 1, side - 1})));
  const PartiAdapter adapter;
  for (auto _ : state) {
    Index sink = 0;
    adapter.enumerateAll(obj, set, [&](Index, int owner, Index off) {
      sink += owner + off;
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_EnumerateParti)->Arg(256)->Arg(512);

void BM_EnumerateHpfCyclic(benchmark::State& state) {
  const Index side = state.range(0);
  auto dist = std::make_shared<const mc::hpfrt::HpfDist>(
      Shape::of({side, side}),
      std::vector<mc::hpfrt::DimDist>{
          mc::hpfrt::DimDist{mc::hpfrt::DistKind::kCyclic, 16, 1},
          mc::hpfrt::DimDist{mc::hpfrt::DistKind::kBlockCyclic, 1, 4}});
  const DistObject obj("hpf", dist);
  SetOfRegions set;
  set.add(Region::section(RegularSection::box({0, 0}, {side - 1, side - 1})));
  const HpfAdapter adapter;
  for (auto _ : state) {
    Index sink = 0;
    adapter.enumerateAll(obj, set, [&](Index, int owner, Index off) {
      sink += owner + off;
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_EnumerateHpfCyclic)->Arg(256)->Arg(512);

void BM_EnumerateChaosReplicated(benchmark::State& state) {
  const Index n = state.range(0);
  std::vector<mc::chaos::ElementLoc> entries(static_cast<size_t>(n));
  mc::Rng rng(7);
  for (Index g = 0; g < n; ++g) {
    entries[static_cast<size_t>(g)] =
        mc::chaos::ElementLoc{static_cast<int>(rng.below(16)), g / 16};
  }
  auto table = std::make_shared<const mc::chaos::TranslationTable>(
      mc::chaos::TranslationTable::replicatedFromEntries(std::move(entries),
                                                         16));
  const DistObject obj("chaos", table);
  std::vector<Index> ids(static_cast<size_t>(n));
  for (Index k = 0; k < n; ++k) ids[static_cast<size_t>(k)] = n - 1 - k;
  SetOfRegions set;
  set.add(Region::indices(std::move(ids)));
  const ChaosAdapter adapter;
  for (auto _ : state) {
    Index sink = 0;
    adapter.enumerateAll(obj, set, [&](Index, int owner, Index off) {
      sink += owner + off;
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnumerateChaosReplicated)->Arg(65536);

void BM_EnumerateTulip(benchmark::State& state) {
  const Index n = state.range(0);
  auto desc = std::make_shared<const mc::tulip::TulipDesc>(
      mc::tulip::TulipDesc{n, 16, mc::tulip::Placement::kCyclic});
  const DistObject obj("pc++", desc);
  SetOfRegions set;
  set.add(Region::range(0, n - 1));
  const TulipAdapter adapter;
  for (auto _ : state) {
    Index sink = 0;
    adapter.enumerateAll(obj, set, [&](Index, int owner, Index off) {
      sink += owner + off;
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnumerateTulip)->Arg(65536);

void BM_EnumerateRangeParti(benchmark::State& state) {
  // Range enumeration must cost O(range), not O(set): enumerate 1/16th.
  const Index side = 1024;
  auto desc = std::make_shared<const mc::parti::PartiDesc>(
      mc::parti::PartiDesc{
          mc::layout::BlockDecomp::regular(Shape::of({side, side}), 16), 0});
  const DistObject obj("parti", desc);
  SetOfRegions set;
  set.add(Region::section(RegularSection::box({0, 0}, {side - 1, side - 1})));
  const PartiAdapter adapter;
  const Index chunk = side * side / 16;
  for (auto _ : state) {
    Index sink = 0;
    adapter.enumerateRange(obj, set, 5 * chunk, 6 * chunk,
                           [&](Index, int owner, Index off) {
                             sink += owner + off;
                           });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * chunk);
}
BENCHMARK(BM_EnumerateRangeParti);

}  // namespace

BENCHMARK_MAIN();
