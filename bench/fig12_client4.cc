// Figure 12 of the paper: same experiment as Figure 10, but the client is
// a four-process Multiblock Parti program on four nodes.
#include "common/client_server.h"

int main() {
  mc::bench::printClientServerFigure(
      "Figure 12: four-process client (four nodes), one vector, server on "
      "4 nodes [ms]",
      "fig12", /*clientProcs=*/4, {1, 2, 4, 8, 12, 16}, /*numVectors=*/1);
  return 0;
}
