// Ablation: processor-local transfers — direct copy (Meta-Chaos) vs an
// intermediate staging buffer (Multiblock Parti's behaviour).
//
// The paper (Section 5.3) credits Meta-Chaos's better 2-processor copy time
// in Table 5 to exactly this difference: "Meta-Chaos performs a direct copy
// between the storage for the source and destination, while Multiblock
// Parti requires an intermediate buffer."  This ablation isolates the
// effect with a copy whose transfers are almost entirely local.
#include <cstdio>

#include "common/bench_util.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

int main() {
  constexpr Index kSide = 1000;
  constexpr int kIters = 5;
  const std::vector<int> procs = {1, 2, 4};

  std::vector<double> direct, staged;
  for (int np : procs) {
    double tDirect = 0, tStaged = 0;
    transport::World::runSPMD(np, [&](transport::Comm& c) {
      parti::BlockDistArray<double> a(c, Shape::of({kSide, kSide}), 0);
      parti::BlockDistArray<double> b(c, Shape::of({kSide, kSide}), 0);
      a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] + p[1]); });
      // Same section both sides: every transfer is processor-local.
      core::SetOfRegions set;
      set.add(core::Region::section(
          RegularSection::box({0, 0}, {kSide - 1, kSide - 1})));
      core::McSchedule sched = core::computeSchedule(
          c, core::PartiAdapter::describe(a), set,
          core::PartiAdapter::describe(b), set);
      bench::PhaseTimer timer(c);
      for (int it = 0; it < kIters; ++it) {
        core::dataMove<double>(c, sched, a.raw(), b.raw());
      }
      const double d = timer.lap() / kIters;
      sched.plan.bufferLocalCopies = true;  // Parti-style staging
      for (int it = 0; it < kIters; ++it) {
        core::dataMove<double>(c, sched, a.raw(), b.raw());
      }
      const double s = timer.lap() / kIters;
      if (c.rank() == 0) {
        tDirect = d;
        tStaged = s;
      }
    });
    direct.push_back(tDirect);
    staged.push_back(tStaged);
  }
  std::vector<std::string> cols;
  for (int np : procs) cols.push_back("P=" + std::to_string(np));
  std::printf("%s\n",
              bench::renderTable(
                  "Ablation: local-copy path, 1000x1000 all-local copy [ms]",
                  cols,
                  {
                      bench::Row{"direct (Meta-Chaos)", direct, {}},
                      bench::Row{"staging buffer (Parti-style)", staged, {}},
                  })
                  .c_str());
  std::printf("expected: the staging buffer pays an extra pass over the "
              "data, so the direct path wins.\n");
  return 0;
}
