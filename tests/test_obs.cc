// The observability layer: registry registration and epoch snapshot/diff,
// span nesting on the virtual clock, RunningStat::merge vs pooled
// equivalence, deterministic cross-rank aggregation, the mc-bench-v1
// emitter's explicit-empty contract, the Chrome trace exporter, and
// regression tests pinning the per-case accounting fixes (TrafficStats /
// CacheStats epoch diffs instead of destructive resets).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/aggregate.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sched/executor.h"
#include "sched/schedule_cache.h"
#include "transport/world.h"
#include "util/error.h"
#include "util/stats.h"

namespace mc::obs {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

/// Restores the global enabled flag (tests flip it; the default is off).
struct EnabledGuard {
  bool prev = enabled();
  ~EnabledGuard() { setEnabled(prev); }
};

// --- registry: counters, snapshot, epoch diff -----------------------------

TEST(Registry, SnapshotSamplesRegisteredCounters) {
  MetricsRegistry reg;
  double a = 1.0, b = 10.0;
  reg.registerCounter("t.a", [&] { return a; });
  reg.registerCounter("t.b", [&] { return b; });
  const Snapshot s0 = reg.snapshot();
  EXPECT_DOUBLE_EQ(s0.get("t.a"), 1.0);
  EXPECT_DOUBLE_EQ(s0.get("t.b"), 10.0);
  a = 4.0;
  b = 10.5;
  const Snapshot s1 = reg.snapshot();
  // Epoch diff: the cost of the region between the snapshots.
  const Snapshot d = s1 - s0;
  EXPECT_DOUBLE_EQ(d.get("t.a"), 3.0);
  EXPECT_DOUBLE_EQ(d.get("t.b"), 0.5);
  EXPECT_FALSE(d.has("t.c"));
  EXPECT_THROW(d.get("t.c"), Error);
}

TEST(Registry, DiffHandlesCountersRegisteredMidRegion) {
  MetricsRegistry reg;
  reg.registerCounter("t.a", [] { return 2.0; });
  const Snapshot before = reg.snapshot();
  reg.registerCounter("t.late", [] { return 7.0; });
  const Snapshot d = reg.snapshot() - before;
  EXPECT_DOUBLE_EQ(d.get("t.a"), 0.0);
  EXPECT_DOUBLE_EQ(d.get("t.late"), 7.0);  // diffs against zero
}

TEST(Registry, DuplicateNameThrows) {
  MetricsRegistry reg;
  reg.registerCounter("t.a", [] { return 0.0; });
  EXPECT_THROW(reg.registerCounter("t.a", [] { return 0.0; }), Error);
}

TEST(Registry, UnregisterPrefixDropsSubsystem) {
  MetricsRegistry reg;
  reg.registerCounter("sub.a", [] { return 1.0; });
  reg.registerCounter("sub.b", [] { return 2.0; });
  reg.registerCounter("other.a", [] { return 3.0; });
  reg.unregisterPrefix("sub.");
  const Snapshot s = reg.snapshot();
  EXPECT_FALSE(s.has("sub.a"));
  EXPECT_FALSE(s.has("sub.b"));
  EXPECT_TRUE(s.has("other.a"));
}

// --- spans ----------------------------------------------------------------

TEST(Spans, RecordNestingOnTheInstalledVirtualClock) {
  EnabledGuard guard;
  MetricsRegistry reg;
  double clock = 100.0;
  reg.setVirtualClock([&] { return clock; });
  setEnabled(true);

  const std::size_t outer = reg.beginSpan(phase::kSend);
  clock = 101.0;
  const std::size_t inner = reg.beginSpan(phase::kPack);
  EXPECT_EQ(reg.spanDepth(), 2);
  clock = 103.0;
  reg.endSpan(inner);
  clock = 106.0;
  reg.endSpan(outer);
  EXPECT_EQ(reg.spanDepth(), 0);

  const auto spans = reg.takeSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, phase::kSend);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_DOUBLE_EQ(spans[0].virtualBegin, 100.0);
  EXPECT_DOUBLE_EQ(spans[0].virtualEnd, 106.0);
  EXPECT_STREQ(spans[1].name, phase::kPack);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_DOUBLE_EQ(spans[1].virtualSeconds(), 2.0);
  EXPECT_GE(spans[0].cpuSeconds(), 0.0);
  EXPECT_TRUE(reg.spans().empty());  // takeSpans resets
}

TEST(Spans, DisabledModeRecordsNothing) {
  EnabledGuard guard;
  setEnabled(false);
  threadRegistry().clearSpans();
  {
    ScopedSpan span(phase::kCompute);
    ScopedSpan nested(phase::kPack);
  }
  EXPECT_TRUE(threadRegistry().spans().empty());
  EXPECT_EQ(threadRegistry().spanDepth(), 0);
}

TEST(Spans, ScopedSpanEarlyEndIsIdempotent) {
  EnabledGuard guard;
  setEnabled(true);
  threadRegistry().clearSpans();
  {
    ScopedSpan span(phase::kCompute);
    span.end();
    span.end();  // no-op; destructor is a third no-op
  }
  const auto spans = threadRegistry().takeSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(threadRegistry().spanDepth(), 0);
}

TEST(Spans, VirtualTimesComeFromTheCommClock) {
  EnabledGuard guard;
  setEnabled(true);
  double begin[2] = {0, 0}, end[2] = {0, 0};
  World::runSPMD(2, [&](Comm& c) {
    threadRegistry().clearSpans();
    {
      ScopedSpan span(phase::kCompute);
      c.advance(1.5 + c.rank());
    }
    const auto spans = threadRegistry().takeSpans();
    ASSERT_EQ(spans.size(), 1u);
    begin[c.rank()] = spans[0].virtualBegin;
    end[c.rank()] = spans[0].virtualEnd;
  });
  // Each rank's span is measured on its own virtual clock.
  EXPECT_NEAR(end[0] - begin[0], 1.5, 1e-12);
  EXPECT_NEAR(end[1] - begin[1], 2.5, 1e-12);
}

// --- RunningStat::merge ---------------------------------------------------

TEST(Stats, MergeMatchesPooledAccumulation) {
  RunningStat a, b, pooled;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * i * i - 3.0 * i + 7.0;
    (i % 3 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9 * std::fabs(pooled.mean()));
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
  EXPECT_NEAR(a.stddev(), pooled.stddev(), 1e-9 * pooled.stddev());
  EXPECT_NEAR(a.sum(), pooled.sum(), 1e-9 * std::fabs(pooled.sum()));
}

TEST(Stats, MergeWithEmptySidesIsExact) {
  RunningStat filled;
  filled.add(3.0);
  filled.add(5.0);

  RunningStat left = filled, empty;
  left.merge(empty);  // empty right side: unchanged
  EXPECT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.mean(), 4.0);

  RunningStat right;
  right.merge(filled);  // empty left side: becomes the other
  EXPECT_EQ(right.count(), 2u);
  EXPECT_DOUBLE_EQ(right.mean(), 4.0);
  EXPECT_DOUBLE_EQ(right.stddev(), filled.stddev());

  RunningStat both;
  both.merge(empty);  // empty + empty stays explicitly empty
  EXPECT_EQ(both.count(), 0u);
  EXPECT_TRUE(std::isnan(both.mean()));
}

TEST(Stats, MergeOfSingletonsEqualsTwoAdds) {
  RunningStat a, b, direct;
  a.add(2.0);
  b.add(6.0);
  direct.add(2.0);
  direct.add(6.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(a.variance(), direct.variance());
}

// --- cross-rank aggregation -----------------------------------------------

TEST(Aggregate, MatchesDirectStatisticsAndIsDeterministic) {
  constexpr int kProcs = 5;
  std::map<std::string, RunningStat> first, second;
  for (int round = 0; round < 2; ++round) {
    auto& out = round == 0 ? first : second;
    World::runSPMD(kProcs, [&](Comm& c) {
      MetricsRegistry reg;
      const double mine = 1.0 + 0.3 * c.rank() * c.rank();
      reg.registerCounter("t.v", [&] { return mine; });
      reg.registerCounter("t.const", [] { return 2.0; });
      const auto agg = aggregate(c, reg.snapshot());
      if (c.rank() == 0) out = agg;
    });
  }

  RunningStat direct;
  for (int r = 0; r < kProcs; ++r) direct.add(1.0 + 0.3 * r * r);
  const RunningStat& v = first.at("t.v");
  EXPECT_EQ(v.count(), static_cast<std::size_t>(kProcs));
  EXPECT_DOUBLE_EQ(v.min(), direct.min());
  EXPECT_DOUBLE_EQ(v.max(), direct.max());
  EXPECT_NEAR(v.mean(), direct.mean(), 1e-12);
  EXPECT_NEAR(v.stddev(), direct.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(first.at("t.const").stddev(), 0.0);

  // The binomial allreduce fixes the merge tree, so aggregation is bitwise
  // reproducible run to run.
  for (const auto& [key, stat] : first) {
    const RunningStat& other = second.at(key);
    EXPECT_EQ(std::memcmp(&stat, &other, sizeof(RunningStat)), 0)
        << "aggregate of '" << key << "' differs between identical runs";
  }
}

TEST(Aggregate, KeySetDisagreementFailsLoudly) {
  std::atomic<int> failures{0};
  World::runSPMD(2, [&](Comm& c) {
    MetricsRegistry reg;
    // Rank 1 registers an extra metric: the digest agreement must throw on
    // every rank rather than silently pairing different keys.
    reg.registerCounter("t.a", [] { return 1.0; });
    if (c.rank() == 1) reg.registerCounter("t.b", [] { return 2.0; });
    try {
      (void)aggregate(c, reg.snapshot());
    } catch (const Error&) {
      ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 2);
}

// --- the accounting-bug regressions ---------------------------------------

// TrafficStats attribution: diffing epochs isolates one case's traffic even
// though the counters keep accumulating (resetStats() would instead clobber
// the cumulative values the obs registry samples).
TEST(Accounting, TrafficEpochDiffIsolatesACase) {
  World::runSPMD(2, [&](Comm& c) {
    const int peer = 1 - c.rank();
    const std::vector<double> payload = {1, 2, 3, 4};
    const auto exchange = [&](int times) {
      for (int i = 0; i < times; ++i) {
        const int tag = c.nextUserTag();
        c.send(peer, tag, payload);
        (void)c.recv<double>(peer, tag);
      }
    };
    exchange(3);  // earlier "case": 3 messages
    const transport::TrafficStats before = c.stats();
    exchange(2);  // the measured case
    const transport::TrafficStats d = c.stats() - before;
    EXPECT_EQ(d.messagesSent, 2u);
    EXPECT_EQ(d.messagesReceived, 2u);
    EXPECT_EQ(d.bytesSent, 2 * payload.size() * sizeof(double));
    // And the cumulative epoch kept growing — nothing was reset.
    EXPECT_EQ(c.stats().messagesSent, 5u);
  });
}

// CacheStats attribution: the bug fixed in bench/micro_schedule_cache — a
// leg that reads cumulative counters claims the next leg's prep hit.
TEST(Accounting, CacheEpochDiffSeparatesLegs) {
  sched::KeyedCache<int> cache;
  HashStream k1, k2;
  k1.str("key1");
  k2.str("key2");

  const sched::CacheStats before = cache.stats();
  // "Cached" leg: 1 miss + 3 hits.
  (void)cache.getOrBuild(k1.digest(), [] { return std::make_shared<int>(7); });
  for (int i = 0; i < 3; ++i) EXPECT_NE(cache.find(k1.digest()), nullptr);
  const sched::CacheStats afterLeg = cache.stats();
  // "Prep" for the next leg: one more hit that must NOT count above.
  EXPECT_NE(cache.find(k1.digest()), nullptr);
  const sched::CacheStats afterPrep = cache.stats();

  const sched::CacheStats leg = afterLeg - before;
  EXPECT_EQ(leg.hits, 3u);
  EXPECT_EQ(leg.misses, 1u);
  EXPECT_EQ(leg.insertions, 1u);
  const sched::CacheStats prep = afterPrep - afterLeg;
  EXPECT_EQ(prep.hits, 1u);
  EXPECT_EQ(prep.misses, 0u);
}

// The executor registers transport.* counters through the Comm: snapshots
// taken inside a world see the live traffic and pool counters.
TEST(Accounting, RegistrySamplesLiveTransportCounters) {
  World::runSPMD(2, [&](Comm& c) {
    const Snapshot before = threadRegistry().snapshot();
    ASSERT_TRUE(before.has("transport.messages_sent"));
    ASSERT_TRUE(before.has("transport.pool.acquires"));
    const int peer = 1 - c.rank();
    const int tag = c.nextUserTag();
    const std::vector<double> payload = {1, 2};
    c.send(peer, tag, payload);
    (void)c.recv<double>(peer, tag);
    const Snapshot d = threadRegistry().snapshot() - before;
    EXPECT_DOUBLE_EQ(d.get("transport.messages_sent"), 1.0);
    EXPECT_DOUBLE_EQ(d.get("transport.messages_received"), 1.0);
    EXPECT_DOUBLE_EQ(d.get("transport.bytes_sent"),
                     static_cast<double>(payload.size() * sizeof(double)));
    EXPECT_GE(d.get("transport.virtual_seconds"), 0.0);
  });
}

// --- the emitter ----------------------------------------------------------

TEST(BenchReport, EmitsSchemaConfigAndMetrics) {
  BenchReport report("unit");
  report.config("procs", 8);
  report.config("mode", "virtual");
  BenchReport::Case& cs = report.addCase("case_one");
  cs.metric("x.per_step_seconds", 0.25);
  cs.metric("x.messages", 42.0);
  const std::string out = report.render();
  EXPECT_NE(out.find("\"schema\": \"mc-bench-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"benchmark\": \"unit\""), std::string::npos);
  EXPECT_NE(out.find("\"procs\": 8"), std::string::npos);  // integral double
  EXPECT_NE(out.find("\"mode\": \"virtual\""), std::string::npos);
  EXPECT_NE(out.find("\"x.per_step_seconds\": 0.25"), std::string::npos);
  EXPECT_NE(out.find("\"x.messages\": 42"), std::string::npos);
}

TEST(BenchReport, EmptyStatIsExplicitNull) {
  BenchReport report("unit");
  BenchReport::Case& cs = report.addCase("case_one");
  cs.metric("empty", RunningStat{});
  RunningStat two;
  two.add(1.0);
  two.add(3.0);
  cs.metric("filled", two);
  const std::string out = report.render();
  // Never a fake zero: count 0 plus null moments.
  EXPECT_NE(out.find("\"empty\": {\"count\": 0, \"mean\": null, "
                     "\"min\": null, \"max\": null, \"stddev\": null, "
                     "\"sum\": 0}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"filled\": {\"count\": 2, \"mean\": 2, \"min\": 1, "
                     "\"max\": 3"),
            std::string::npos)
      << out;
}

TEST(BenchReport, NanMetricEmitsNull) {
  BenchReport report("unit");
  report.addCase("c").metric("bad", std::nan(""));
  EXPECT_NE(report.render().find("\"bad\": null"), std::string::npos);
}

// --- quantile reservoirs --------------------------------------------------

TEST(ReservoirStat, ExactQuantilesBelowCapacity) {
  Reservoir r(128);
  for (int v = 1; v <= 100; ++v) r.add(static_cast<double>(v));
  // Nearest-rank on the full stream: ceil(q * 100).
  EXPECT_DOUBLE_EQ(r.p50(), 50.0);
  EXPECT_DOUBLE_EQ(r.p99(), 99.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(r.quantile(-0.5), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(r.quantile(2.0), 100.0);
}

TEST(ReservoirStat, EmptyIsNaNNotZero) {
  Reservoir r;
  EXPECT_TRUE(std::isnan(r.p50()));
  EXPECT_TRUE(std::isnan(r.p99()));
}

TEST(ReservoirStat, DeterministicPastCapacity) {
  Reservoir a(64, 42), b(64, 42);
  for (int v = 0; v < 1000; ++v) {
    const double x = static_cast<double>((v * 7919) % 1000);
    a.add(x);
    b.add(x);
  }
  // Same seed, same insertion order -> identical sample set, run to run.
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  EXPECT_EQ(a.stat().count(), 1000u);
}

TEST(ReservoirStat, MergeMatchesPooledStream) {
  Reservoir a(2048), b(2048), pooled(2048);
  RunningStat ref;
  for (int v = 0; v < 500; ++v) {
    a.add(static_cast<double>(v));
    pooled.add(static_cast<double>(v));
    ref.add(static_cast<double>(v));
  }
  for (int v = 500; v < 1000; ++v) {
    b.add(static_cast<double>(v));
    pooled.add(static_cast<double>(v));
    ref.add(static_cast<double>(v));
  }
  a.merge(b);
  EXPECT_EQ(a.stat().count(), 1000u);
  EXPECT_NEAR(a.stat().mean(), ref.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(a.stat().min(), 0.0);
  EXPECT_DOUBLE_EQ(a.stat().max(), 999.0);
  // Below 4x capacity the merged samples are the full stream: exact.
  EXPECT_DOUBLE_EQ(a.p50(), pooled.p50());
  EXPECT_DOUBLE_EQ(a.p99(), pooled.p99());
}

TEST(BenchReport, ReservoirMetricEmitsQuantileFields) {
  BenchReport report("unit");
  BenchReport::Case& cs = report.addCase("case_one");
  Reservoir filled(64);
  for (int v = 1; v <= 10; ++v) filled.add(static_cast<double>(v));
  cs.metric("lat_seconds", filled);
  cs.metric("empty_seconds", Reservoir{});
  const std::string out = report.render();
  // Eight fields: the six RunningStat moments plus p50/p99.
  EXPECT_NE(out.find("\"lat_seconds\": {\"count\": 10"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"p50\": 5"), std::string::npos) << out;
  EXPECT_NE(out.find("\"p99\": 10"), std::string::npos) << out;
  // An empty reservoir is explicit: null quantiles, never a fake zero.
  EXPECT_NE(out.find("\"empty_seconds\": {\"count\": 0"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"p50\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"p99\": null"), std::string::npos) << out;
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.beginObject();
  w.kv("k\"ey", std::string_view("va\\l\nue"));
  w.endObject();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\": \"va\\\\l\\nue\"}");
}

// --- trace export ---------------------------------------------------------

TEST(Trace, RendersSortedCompleteEventsOnTheVirtualTimeline) {
  TraceCollector collector;
  SpanRecord r;
  r.name = phase::kCompute;
  r.virtualBegin = 0.5;
  r.virtualEnd = 0.75;
  r.cpuBegin = 0.0;
  r.cpuEnd = 0.001;
  // Added out of rank order; the exporter sorts.
  collector.add(0, 1, "prog0/rank1", {r});
  collector.add(0, 0, "prog0/rank0", {r});
  const std::string out = renderChromeTrace(collector);
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"compute\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\": 500000"), std::string::npos);   // 0.5 s -> µs
  EXPECT_NE(out.find("\"dur\": 250000"), std::string::npos);  // 0.25 s -> µs
  EXPECT_NE(out.find("prog0/rank0"), std::string::npos);
  // rank 0's metadata precedes rank 1's despite insertion order.
  EXPECT_LT(out.find("prog0/rank0"), out.find("prog0/rank1"));
}

TEST(Trace, OverlapPipelineSpansAreWellFormed) {
  EnabledGuard guard;
  setEnabled(true);
  constexpr int kProcs = 4;
  TraceCollector collector;
  World::runSPMD(kProcs, [&](Comm& c) {
    const Index block = 64;
    sched::Schedule plan;
    sched::OffsetPlan send;
    send.peer = (c.rank() + 1) % c.size();
    for (Index k = 0; k < block; ++k) send.offsets.push_back(k);
    sched::OffsetPlan recv;
    recv.peer = (c.rank() + c.size() - 1) % c.size();
    for (Index k = 0; k < block; ++k) recv.offsets.push_back(block + k);
    plan.sends.push_back(std::move(send));
    plan.recvs.push_back(std::move(recv));
    plan.compress();
    std::vector<double> src(static_cast<size_t>(block), 1.0);
    std::vector<double> dst(static_cast<size_t>(2 * block), 0.0);
    sched::Executor<double> ex(c, plan);
    threadRegistry().clearSpans();
    auto pending = ex.start(std::span<const double>(src));
    {
      ScopedSpan compute(phase::kCompute);
      c.advance(1e-3);
    }
    pending.finish(std::span<double>(dst));
    collector.add(c.program(), c.globalRank(), "r",
                  threadRegistry().takeSpans());
  });
  const auto ranks = collector.sorted();
  ASSERT_EQ(ranks.size(), static_cast<size_t>(kProcs));
  for (const auto& rank : ranks) {
    bool sawSend = false, sawCompute = false;
    for (const auto& s : rank.spans) {
      EXPECT_GE(s.virtualEnd, s.virtualBegin) << s.name;
      EXPECT_GE(s.depth, 0);
      sawSend |= std::strcmp(s.name, phase::kSend) == 0;
      sawCompute |= std::strcmp(s.name, phase::kCompute) == 0;
    }
    EXPECT_TRUE(sawSend);
    EXPECT_TRUE(sawCompute);
  }
}

}  // namespace
}  // namespace mc::obs
