// Differential property suite for the run-native schedule builder.
//
// The Meta-Chaos builder has two pipelines: the run-native interval join
// (default) and the element-wise reference path kept behind
// core::testing::buildElementwiseForTest.  They must produce bitwise
// identical schedules — same peers, same element order, and (after
// compressing the element-wise plans) the exact same run lists — for every
// ordered library pair, both build methods, intra- and inter-program, and
// for adversarial irregular index sets (stride-0 fan-out, descending runs,
// singletons straddling chunk boundaries).  Also checks the adapter
// run-enumeration contract: expanded run streams equal the element streams.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "transport/world.h"
#include "util/rng.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

enum class Lib { kParti, kHpf, kChaos, kTulip };

const char* libName(Lib l) {
  switch (l) {
    case Lib::kParti: return "parti";
    case Lib::kHpf: return "hpf";
    case Lib::kChaos: return "chaos";
    case Lib::kTulip: return "tulip";
  }
  return "?";
}

constexpr Index kSetElems = 48;

double valueOf(Index globalId) {
  return 1000.0 + static_cast<double>(globalId);
}

/// A live distributed container plus a region set of kSetElems elements.
struct Instance {
  DistObject obj;
  SetOfRegions set;
  std::vector<Index> setGlobalIds;  // linearization position -> global id
  std::function<std::span<double>()> raw;
  std::function<std::vector<double>()> gather;  // by global id
  std::shared_ptr<void> holder;
};

Instance makeParti(Comm& c) {
  auto arr = std::make_shared<parti::BlockDistArray<double>>(
      c, Shape::of({10, 12}), /*ghost=*/1);
  arr->fillByPoint([](const Point& p) { return valueOf(p[0] * 12 + p[1]); });
  Instance inst{PartiAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  const RegularSection r1 = RegularSection::box({1, 2}, {4, 9});
  const RegularSection r2 = RegularSection::of({5, 0}, {8, 9}, {1, 3});
  inst.set.add(Region::section(r1));
  inst.set.add(Region::section(r2));
  for (const RegularSection* r : {&r1, &r2}) {
    r->forEach([&](const Point& p, Index) {
      inst.setGlobalIds.push_back(p[0] * 12 + p[1]);
    });
  }
  MC_CHECK(static_cast<Index>(inst.setGlobalIds.size()) == kSetElems);
  return inst;
}

Instance makeHpf(Comm& c) {
  // CYCLIC(4) along the last dimension so section rows split at k-block
  // boundaries — the hardest case for the run enumerator.
  auto arr = std::make_shared<hpfrt::HpfArray<double>>(
      c, hpfrt::HpfDist(
             Shape::of({9, 30}),
             {hpfrt::DimDist{hpfrt::DistKind::kBlock, 1, 1},
              hpfrt::DimDist{hpfrt::DistKind::kBlockCyclic, c.size(), 4}}));
  arr->fillByPoint([](const Point& p) { return valueOf(p[0] * 30 + p[1]); });
  Instance inst{HpfAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  const RegularSection r = RegularSection::of({1, 3}, {7, 25}, {2, 2});
  inst.set.add(Region::section(r));
  r.forEach([&](const Point& p, Index) {
    inst.setGlobalIds.push_back(p[0] * 30 + p[1]);
  });
  MC_CHECK(static_cast<Index>(inst.setGlobalIds.size()) == kSetElems);
  return inst;
}

Instance makeChaos(Comm& c, bool replicated) {
  const Index n = 60;
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 23);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n,
          replicated ? chaos::TranslationTable::Storage::kReplicated
                     : chaos::TranslationTable::Storage::kDistributed));
  auto arr = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  arr->fillByGlobal([](Index g) { return valueOf(g); });
  Instance inst{ChaosAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  Rng rng(7);
  auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> ids;
  for (Index k = 0; k < kSetElems; ++k) {
    ids.push_back(static_cast<Index>(perm[static_cast<size_t>(k)]));
  }
  inst.set.add(Region::indices(ids));
  inst.setGlobalIds = ids;
  return inst;
}

Instance makeTulip(Comm& c) {
  const Index n = 100;
  auto coll = std::make_shared<tulip::Collection<double>>(
      c, n, tulip::Placement::kCyclic);
  coll->forEachOwned([](Index g, double& v) { v = valueOf(g); });
  Instance inst{TulipAdapter::describe(*coll),
                SetOfRegions{},
                {},
                [coll]() { return coll->raw(); },
                [coll]() { return coll->gatherGlobal(); },
                coll};
  inst.set.add(Region::range(2, 96, 2));  // stride 2: per-element for CYCLIC
  for (Index k = 0; k < kSetElems; ++k) inst.setGlobalIds.push_back(2 + 2 * k);
  return inst;
}

Instance makeInstance(Lib lib, Comm& c, bool chaosReplicated) {
  switch (lib) {
    case Lib::kParti: return makeParti(c);
    case Lib::kHpf: return makeHpf(c);
    case Lib::kChaos: return makeChaos(c, chaosReplicated);
    case Lib::kTulip: return makeTulip(c);
  }
  MC_CHECK(false);
  return makeParti(c);
}

/// Asserts the element-wise reference schedule and the run-native schedule
/// describe identical plans: same peers, identical element sequences, and
/// identical run lists once the element-wise form is compressed (the
/// run-wise greedy equals the element-wise greedy bit for bit).
void expectSameSchedule(const sched::Schedule& elem,
                        const sched::Schedule& run) {
  sched::Schedule compressedElem = elem;
  compressedElem.compress();
  ASSERT_EQ(elem.sends.size(), run.sends.size());
  for (size_t i = 0; i < elem.sends.size(); ++i) {
    EXPECT_EQ(elem.sends[i].peer, run.sends[i].peer);
    EXPECT_EQ(elem.sends[i].expandedOffsets(), run.sends[i].expandedOffsets());
    EXPECT_TRUE(compressedElem.sends[i].runs == run.sends[i].runs)
        << "send runs differ for peer " << run.sends[i].peer;
  }
  ASSERT_EQ(elem.recvs.size(), run.recvs.size());
  for (size_t i = 0; i < elem.recvs.size(); ++i) {
    EXPECT_EQ(elem.recvs[i].peer, run.recvs[i].peer);
    EXPECT_EQ(elem.recvs[i].expandedOffsets(), run.recvs[i].expandedOffsets());
    EXPECT_TRUE(compressedElem.recvs[i].runs == run.recvs[i].runs)
        << "recv runs differ for peer " << run.recvs[i].peer;
  }
  EXPECT_EQ(elem.expandedLocalPairs(), run.expandedLocalPairs());
  EXPECT_TRUE(compressedElem.localRuns == run.localRuns)
      << "local runs differ";
}

struct PairCase {
  Lib src;
  Lib dst;
  Method method;
};

std::vector<sched::Schedule> buildIntraPlans(const PairCase& tc, int np,
                                             bool elementwise) {
  const bool prev = testing::buildElementwiseForTest(elementwise);
  std::vector<sched::Schedule> plans(static_cast<size_t>(np));
  World::runSPMD(np, [&](Comm& c) {
    const bool chaosReplicated = tc.method == Method::kDuplication;
    Instance src = makeInstance(tc.src, c, chaosReplicated);
    Instance dst = makeInstance(tc.dst, c, chaosReplicated);
    plans[static_cast<size_t>(c.rank())] =
        computeSchedule(c, src.obj, src.set, dst.obj, dst.set, tc.method).plan;
  });
  testing::buildElementwiseForTest(prev);
  return plans;
}

class RunJoinDifferentialP : public ::testing::TestWithParam<PairCase> {};

TEST_P(RunJoinDifferentialP, RunNativeMatchesElementwise) {
  const PairCase tc = GetParam();
  constexpr int kProcs = 4;
  const auto elem = buildIntraPlans(tc, kProcs, /*elementwise=*/true);
  const auto run = buildIntraPlans(tc, kProcs, /*elementwise=*/false);
  for (int r = 0; r < kProcs; ++r) {
    SCOPED_TRACE(std::string(libName(tc.src)) + "->" + libName(tc.dst) +
                 " rank " + std::to_string(r));
    expectSameSchedule(elem[static_cast<size_t>(r)],
                       run[static_cast<size_t>(r)]);
  }
}

std::vector<PairCase> allPairs() {
  std::vector<PairCase> cases;
  for (Lib s : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
    for (Lib d : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
      for (Method m : {Method::kCooperation, Method::kDuplication}) {
        cases.push_back(PairCase{s, d, m});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, RunJoinDifferentialP, ::testing::ValuesIn(allPairs()),
    [](const ::testing::TestParamInfo<PairCase>& info) {
      const PairCase& tc = info.param;
      return std::string(libName(tc.src)) + "_to_" + libName(tc.dst) + "_" +
             (tc.method == Method::kCooperation ? "coop" : "dup");
    });

// --- inter-program ----------------------------------------------------------

struct InterPlans {
  std::vector<sched::Schedule> sendSide;
  std::vector<sched::Schedule> recvSide;
};

InterPlans buildInterPlans(Method method, bool elementwise) {
  const bool prev = testing::buildElementwiseForTest(elementwise);
  constexpr Index kRows = 8, kCols = 8;
  const Index n = kRows * kCols;
  InterPlans out{std::vector<sched::Schedule>(2),
                 std::vector<sched::Schedule>(2)};
  World::run(
      {ProgramSpec{"preg", 2,
                   [&](Comm& c) {
                     parti::BlockDistArray<double> a(
                         c, Shape::of({kRows, kCols}), 1);
                     SetOfRegions set;
                     set.add(Region::section(
                         RegularSection::box({0, 0}, {kRows - 1, kCols - 1})));
                     out.sendSide[static_cast<size_t>(c.rank())] =
                         computeScheduleSend(c, PartiAdapter::describe(a), set,
                                             /*remoteProgram=*/1, method)
                             .plan;
                   }},
       ProgramSpec{"pirreg", 2, [&](Comm& c) {
                     const auto storage =
                         method == Method::kDuplication
                             ? chaos::TranslationTable::Storage::kReplicated
                             : chaos::TranslationTable::Storage::kDistributed;
                     const auto mine =
                         chaos::randomPartition(n, c.size(), c.rank(), 3);
                     auto table =
                         std::make_shared<const chaos::TranslationTable>(
                             chaos::TranslationTable::build(c, mine, n,
                                                            storage));
                     chaos::IrregArray<double> x(c, table, mine);
                     SetOfRegions set;
                     std::vector<Index> ids(static_cast<size_t>(n));
                     for (Index k = 0; k < n; ++k) {
                       ids[static_cast<size_t>(k)] = k;
                     }
                     set.add(Region::indices(ids));
                     out.recvSide[static_cast<size_t>(c.rank())] =
                         computeScheduleRecv(c, ChaosAdapter::describe(x), set,
                                             /*remoteProgram=*/0, method)
                             .plan;
                   }}});
  testing::buildElementwiseForTest(prev);
  return out;
}

TEST(RunJoinInterProgram, RunNativeMatchesElementwise) {
  for (Method m : {Method::kCooperation, Method::kDuplication}) {
    const InterPlans elem = buildInterPlans(m, /*elementwise=*/true);
    const InterPlans run = buildInterPlans(m, /*elementwise=*/false);
    for (size_t r = 0; r < 2; ++r) {
      SCOPED_TRACE(std::string(m == Method::kCooperation ? "coop" : "dup") +
                   " rank " + std::to_string(r));
      expectSameSchedule(elem.sendSide[r], run.sendSide[r]);
      expectSameSchedule(elem.recvSide[r], run.recvSide[r]);
    }
  }
}

// --- fuzz: adversarial irregular index sets ---------------------------------

/// Builds a source index multiset with deliberate pathologies: a stride-0
/// fan-out block (one global id repeated), a descending run (negative
/// offset progressions), and single elements straddling the linearization
/// chunk boundaries of a 4-processor build (chunk = 16 for 64 elements).
std::vector<Index> fuzzSrcIds(std::uint64_t seed, Index tableSize,
                              Index count) {
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::uint64_t>(tableSize));
  std::vector<Index> ids(static_cast<size_t>(count));
  for (Index k = 0; k < count; ++k) {
    ids[static_cast<size_t>(k)] = static_cast<Index>(
        perm[static_cast<size_t>(k % tableSize)]);
  }
  // Stride-0 fan-out: positions 2..6 all read the same element.
  for (size_t k = 2; k <= 6; ++k) ids[k] = ids[2];
  // Descending run: positions 8..14.
  for (size_t k = 8; k <= 14; ++k) {
    ids[k] = 20 + static_cast<Index>(14 - k);
  }
  // Singletons at the 4-proc chunk seams (positions 15/16, 31/32, 47/48).
  ids[15] = 3;
  ids[16] = 55;
  ids[31] = 4;
  ids[32] = 54;
  ids[47] = 5;
  ids[48] = 53;
  return ids;
}

TEST(RunJoinFuzz, AdversarialChaosIndexSets) {
  constexpr int kProcs = 4;
  constexpr Index kTable = 96;
  constexpr Index kCount = 64;
  for (std::uint64_t seed : {11u, 29u, 47u}) {
    const std::vector<Index> srcIds = fuzzSrcIds(seed, kTable, kCount);
    Rng rng(seed + 1000);
    const auto dstPerm = rng.permutation(static_cast<std::uint64_t>(kTable));
    std::vector<Index> dstIds(static_cast<size_t>(kCount));
    for (Index k = 0; k < kCount; ++k) {
      dstIds[static_cast<size_t>(k)] =
          static_cast<Index>(dstPerm[static_cast<size_t>(k)]);
    }

    auto build = [&](bool elementwise) {
      const bool prev = testing::buildElementwiseForTest(elementwise);
      std::vector<sched::Schedule> plans(kProcs);
      std::vector<double> gathered;
      World::runSPMD(kProcs, [&](Comm& c) {
        const auto srcMine =
            chaos::randomPartition(kTable, c.size(), c.rank(), seed + 11);
        const auto dstMine =
            chaos::randomPartition(kTable, c.size(), c.rank(), seed + 12);
        auto srcTable = std::make_shared<const chaos::TranslationTable>(
            chaos::TranslationTable::build(
                c, srcMine, kTable,
                chaos::TranslationTable::Storage::kDistributed));
        auto dstTable = std::make_shared<const chaos::TranslationTable>(
            chaos::TranslationTable::build(
                c, dstMine, kTable,
                chaos::TranslationTable::Storage::kDistributed));
        chaos::IrregArray<double> src(c, srcTable, srcMine);
        chaos::IrregArray<double> dst(c, dstTable, dstMine);
        src.fillByGlobal([](Index g) { return valueOf(g); });
        dst.fillByGlobal([](Index) { return -1.0; });
        SetOfRegions srcSet, dstSet;
        srcSet.add(Region::indices(srcIds));
        dstSet.add(Region::indices(dstIds));
        const McSchedule sched =
            computeSchedule(c, ChaosAdapter::describe(src), srcSet,
                            ChaosAdapter::describe(dst), dstSet);
        plans[static_cast<size_t>(c.rank())] = sched.plan;
        dataMove<double>(c, sched, src.raw(), dst.raw());
        if (c.rank() == 0) gathered = dst.gatherGlobal();
        else (void)dst.gatherGlobal();
      });
      testing::buildElementwiseForTest(prev);
      return std::make_pair(std::move(plans), std::move(gathered));
    };

    const auto elem = build(/*elementwise=*/true);
    const auto run = build(/*elementwise=*/false);
    for (int r = 0; r < kProcs; ++r) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rank " +
                   std::to_string(r));
      expectSameSchedule(elem.first[static_cast<size_t>(r)],
                         run.first[static_cast<size_t>(r)]);
    }
    // Oracle on the run-native execution: destination id dstIds[k] holds
    // the source value at the same linearization position k.
    std::map<Index, double> expect;
    for (Index k = 0; k < kCount; ++k) {
      expect[dstIds[static_cast<size_t>(k)]] =
          valueOf(srcIds[static_cast<size_t>(k)]);
    }
    ASSERT_EQ(run.second.size(), static_cast<size_t>(kTable));
    for (size_t g = 0; g < run.second.size(); ++g) {
      const auto it = expect.find(static_cast<Index>(g));
      const double want = it != expect.end() ? it->second : -1.0;
      EXPECT_DOUBLE_EQ(run.second[g], want) << "global " << g;
    }
  }
}

// --- adapter run-enumeration contract ---------------------------------------

using Elem = std::tuple<Index, int, Index>;  // lin, owner, offset

TEST(RunEnumerationContract, RangeRunsExpandToElementStream) {
  World::runSPMD(4, [](Comm& c) {
    registerBuiltinAdapters();
    for (Lib lib : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
      SCOPED_TRACE(libName(lib));
      Instance inst = makeInstance(lib, c, /*chaosReplicated=*/true);
      const LibraryAdapter& ad = Registry::instance().get(inst.obj.library());
      const Index n = inst.set.numElements();
      std::vector<Elem> elems;
      ad.enumerateAll(inst.obj, inst.set,
                      [&](Index lin, int owner, Index off) {
                        elems.emplace_back(lin, owner, off);
                      });
      // Expand runs over an uneven range split; cut points land mid-row and
      // mid-block so the enumerators must clip runs correctly.
      std::vector<Elem> expanded;
      const std::vector<Index> cuts = {0, 7, n / 3, n / 2, n};
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        ad.enumerateRangeRuns(
            inst.obj, inst.set, cuts[i], cuts[i + 1],
            [&](Index lin, int owner, Index off, Index count,
                Index offStride) {
              EXPECT_GT(count, 0);
              for (Index k = 0; k < count; ++k) {
                expanded.emplace_back(lin + k, owner, off + k * offStride);
              }
            });
      }
      EXPECT_EQ(elems, expanded);
    }
  });
}

TEST(RunEnumerationContract, OwnedRunsExpandToOwnedElements) {
  World::runSPMD(4, [](Comm& c) {
    registerBuiltinAdapters();
    // Distributed-chaos last: its enumerateOwned is collective, so keep the
    // call order identical on every rank.
    for (bool chaosReplicated : {true, false}) {
      for (Lib lib : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
        if (!chaosReplicated && lib != Lib::kChaos) continue;
        SCOPED_TRACE(std::string(libName(lib)) +
                     (chaosReplicated ? "" : " (distributed)"));
        Instance inst = makeInstance(lib, c, chaosReplicated);
        const LibraryAdapter& ad =
            Registry::instance().get(inst.obj.library());
        const std::vector<LinRun> runs =
            ad.enumerateOwnedRuns(inst.obj, inst.set, c);
        const std::vector<LinLoc> owned =
            ad.enumerateOwned(inst.obj, inst.set, c);
        std::vector<std::pair<Index, Index>> expanded;
        for (const LinRun& run : runs) {
          EXPECT_GT(run.count, 0);
          for (Index k = 0; k < run.count; ++k) {
            expanded.emplace_back(run.lin + k, run.off + k * run.offStride);
          }
        }
        std::vector<std::pair<Index, Index>> want;
        for (const LinLoc& ll : owned) want.emplace_back(ll.lin, ll.offset);
        EXPECT_EQ(expanded, want);
      }
    }
  });
}

}  // namespace
}  // namespace mc::core
