// The snapshot subsystem and the hardened blob layer beneath it: byte-level
// fuzz (every strict prefix and every single-byte corruption of a framed
// blob must throw mc::Error — never crash, never over-allocate), per-
// serializer round trips (McSchedule, translation tables, all four
// libraries' arrays), snapshot save/restore with LRU-order preservation,
// the loud agreement failures (wrong program size, mixed save generations,
// truncated files, section mismatches), and the kill-and-restart
// differential: a warm-started server must reproduce a cold run bitwise
// with zero inspector builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/partition.h"
#include "core/schedule_cache.h"
#include "sched/serialize.h"
#include "server/client_session.h"
#include "server/compute_server.h"
#include "snapshot/array_io.h"
#include "snapshot/mc_schedule_io.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "transport/world.h"
#include "util/blob_io.h"

namespace mc {
namespace {

using layout::Index;
using layout::Point;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

std::filesystem::path tmpDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("mc_test_snapshot_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

sched::Schedule samplePlan() {
  sched::Schedule s;
  s.sends.push_back(sched::OffsetPlan{2, {0, 3, 4, 9}, {}});
  s.sends.push_back(sched::OffsetPlan{5, {}, {sched::OffsetRun{1, 4, 2}}});
  s.recvs.push_back(sched::OffsetPlan{1, {7, 8}, {}});
  s.localPairs.emplace_back(0, 10);
  s.localRuns.push_back(sched::LocalRun{0, 10, 2, 1, 1});
  s.bufferLocalCopies = true;
  return s;
}

core::McSchedule sampleMcSchedule(int salt) {
  core::McSchedule s;
  s.plan = samplePlan();
  s.plan.sends[0].peer = 2 + salt;
  s.numElements = 17 + salt;
  s.remoteProgram = salt % 2 ? 1 : -1;
  s.isSender = salt % 2 != 0;
  s.hasProvenance = true;
  s.sendSegs.push_back(core::SendSeg{salt, 1, 2, 3, 4, 5, 6});
  s.recvSegs.push_back(core::RecvSeg{7, 8, 9, 10, salt});
  return s;
}

/// Every strict prefix of `blob` must be rejected with mc::Error — the
/// reader clamps every count against the bytes that remain, so truncation
/// can never crash or trigger a huge allocation.
template <typename ReadFn>
void expectEveryPrefixRejected(const std::vector<std::byte>& blob,
                               ReadFn&& read) {
  for (std::size_t keep = 0; keep < blob.size(); ++keep) {
    EXPECT_THROW(read(std::span<const std::byte>(blob.data(), keep)), Error)
        << "kept " << keep << " of " << blob.size() << " bytes";
  }
}

/// Every single-byte corruption must be rejected too (the frame covers the
/// header with field checks and the payload with a checksum).
template <typename ReadFn>
void expectEveryByteFlipRejected(const std::vector<std::byte>& blob,
                                 ReadFn&& read) {
  for (std::size_t at = 0; at < blob.size(); ++at) {
    std::vector<std::byte> bad = blob;
    bad[at] ^= std::byte{0x40};
    EXPECT_THROW(read(bad), Error) << "flipped byte " << at;
  }
}

// ---------------------------------------------------------------------------
// Blob container hardening (pure, no world).

TEST(BlobFrame, RoundTripsAndTagsKind) {
  std::vector<std::byte> payload;
  blob::putU64(payload, 42);
  blob::putStr(payload, "hello");
  const std::vector<std::byte> framed =
      blob::frame(blob::kSnapshotBody, 3, payload);
  std::size_t consumed = 0;
  const blob::FrameView v =
      blob::unframe(framed, blob::kSnapshotBody, &consumed);
  EXPECT_EQ(consumed, framed.size());
  EXPECT_EQ(v.kindVersion, 3u);
  blob::ByteReader r(v.payload);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.str(), "hello");
  r.requireEnd("test payload");
  // The same bytes presented as a different kind are rejected.
  EXPECT_THROW(blob::unframe(framed, blob::kSnapshotManifest), Error);
  // Trailing garbage is rejected when no `consumed` out-param is given.
  std::vector<std::byte> trailing = framed;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(blob::unframe(trailing, blob::kSnapshotBody), Error);
}

TEST(BlobFrame, EveryPrefixAndEveryByteFlipRejected) {
  std::vector<std::byte> payload;
  blob::putU64(payload, 7);
  blob::putPods(payload, std::vector<std::uint32_t>{1, 2, 3});
  const std::vector<std::byte> framed =
      blob::frame(blob::kSnapshotBody, 1, payload);
  // Mirror a real reader's preamble: unframe, then check the kind version
  // (the only header field unframe leaves to the caller).
  const auto read = [](std::span<const std::byte> d) {
    const blob::FrameView v = blob::unframe(d, blob::kSnapshotBody);
    MC_REQUIRE(v.kindVersion == 1, "unknown kind version %u", v.kindVersion);
    return v;
  };
  expectEveryPrefixRejected(framed, read);
  expectEveryByteFlipRejected(framed, read);
}

// The reserve-clamp bugfix: a well-framed payload (magic, checksum all
// valid) whose leading count field claims more items than the payload could
// possibly hold must fail the count clamp with mc::Error — not bad_alloc,
// not a multi-gigabyte reserve.
TEST(BlobFrame, HugeCountInsideValidFrameRejectedBeforeAllocating) {
  std::vector<std::byte> payload;
  blob::putU64(payload, std::uint64_t{1} << 60);  // "2^60 plan entries"
  const std::vector<std::byte> framed =
      blob::frame(blob::kSchedule, sched::kScheduleBlobVersion, payload);
  EXPECT_THROW(sched::deserializeSchedule(framed), Error);

  // Same attack one level up, against the snapshot body's entry count.
  const std::vector<std::byte> mcFramed =
      blob::frame(blob::kMcSchedule, snapshot::kMcScheduleBlobVersion,
                  payload);
  EXPECT_THROW(snapshot::deserializeMcSchedule(mcFramed), Error);
}

// ---------------------------------------------------------------------------
// McSchedule blobs (pure, no world).

TEST(McScheduleBlob, RoundTripsExactlyAndCanonically) {
  const core::McSchedule s = sampleMcSchedule(3);
  const std::vector<std::byte> blob = snapshot::serializeMcSchedule(s);
  const core::McSchedule back = snapshot::deserializeMcSchedule(blob);
  EXPECT_EQ(sched::serializeSchedule(back.plan),
            sched::serializeSchedule(s.plan));
  EXPECT_EQ(back.numElements, s.numElements);
  EXPECT_EQ(back.remoteProgram, s.remoteProgram);
  EXPECT_EQ(back.isSender, s.isSender);
  EXPECT_EQ(back.hasProvenance, s.hasProvenance);
  EXPECT_EQ(back.sendSegs, s.sendSegs);
  EXPECT_EQ(back.recvSegs, s.recvSegs);
  EXPECT_EQ(snapshot::serializeMcSchedule(back), blob);
}

TEST(McScheduleBlob, EveryPrefixRejectedAndFlagsCrossChecked) {
  const std::vector<std::byte> blob =
      snapshot::serializeMcSchedule(sampleMcSchedule(1));
  expectEveryPrefixRejected(blob, [](std::span<const std::byte> d) {
    return snapshot::deserializeMcSchedule(d);
  });
  // Provenance lanes without the flag serialize fine but must be rejected
  // on read — the reader cross-checks the flag against the lanes.
  core::McSchedule inconsistent = sampleMcSchedule(1);
  inconsistent.hasProvenance = false;
  EXPECT_THROW(snapshot::deserializeMcSchedule(
                   snapshot::serializeMcSchedule(inconsistent)),
               Error);
}

// ---------------------------------------------------------------------------
// Translation-table blobs.

TEST(TranslationTableBlob, ReplicatedRoundTripMintsFreshUid) {
  std::vector<chaos::ElementLoc> entries;
  std::vector<Index> offsets(3, 0);
  for (Index g = 0; g < 20; ++g) {
    const int proc = static_cast<int>(g % 3);
    entries.push_back(chaos::ElementLoc{proc, offsets[proc]++});
  }
  const chaos::TranslationTable t =
      chaos::TranslationTable::replicatedFromEntries(entries, 3, 1.5e-5);
  const std::vector<std::byte> blob = t.serialize();
  const chaos::TranslationTable back =
      chaos::TranslationTable::deserialize(blob);
  EXPECT_EQ(back.storage(), t.storage());
  EXPECT_EQ(back.globalSize(), t.globalSize());
  EXPECT_DOUBLE_EQ(back.modeledQueryCost(), t.modeledQueryCost());
  for (int p = 0; p < 3; ++p) EXPECT_EQ(back.localCount(p), t.localCount(p));
  for (Index g = 0; g < 20; ++g) {
    EXPECT_EQ(back.dereferenceLocal(g), t.dereferenceLocal(g));
  }
  // The uid is minted fresh on restore (DerefCache soundness): entries
  // cached against the saved table can never be served to the restored one.
  EXPECT_NE(back.uid(), t.uid());
  EXPECT_EQ(back.serialize(), blob);  // canonical form
  expectEveryPrefixRejected(blob, [](std::span<const std::byte> d) {
    return chaos::TranslationTable::deserialize(d);
  });
}

TEST(TranslationTableBlob, DistributedRoundTripAnswersIdentically) {
  World::runSPMD(4, [&](Comm& c) {
    const Index n = 50;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 77);
    const chaos::TranslationTable t = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kDistributed);
    const chaos::TranslationTable back =
        chaos::TranslationTable::deserialize(t.serialize());
    EXPECT_NE(back.uid(), t.uid());
    std::vector<Index> queries;
    for (Index k = 0; k < 25; ++k) queries.push_back((k * 7 + c.rank()) % n);
    const auto expect = t.dereference(c, queries);
    const auto got = back.dereference(c, queries);
    EXPECT_EQ(got, expect);
  });
}

// ---------------------------------------------------------------------------
// Array blobs: one round trip per library, plus the loud mismatches.

TEST(ArrayBlob, AllFourLibrariesRoundTripBitwise) {
  World::runSPMD(4, [&](Comm& c) {
    // Parti: 2-D block array with a ghost ring.
    parti::BlockDistArray<double> pa(
        c, layout::BlockDecomp::regular(Shape::of({12, 10}), c.size()), 1);
    pa.fillByPoint([](const Point& p) {
      return 0.25 * static_cast<double>(p[0] * 100 + p[1]);
    });
    parti::BlockDistArray<double> pb =
        snapshot::deserializePartiArray<double>(c, snapshot::serializeArray(pa));
    ASSERT_EQ(pb.raw().size(), pa.raw().size());
    EXPECT_EQ(std::memcmp(pb.raw().data(), pa.raw().data(),
                          pa.raw().size() * sizeof(double)),
              0);
    EXPECT_EQ(pb.ghost(), pa.ghost());

    // HPF: cyclic distribution.
    hpfrt::HpfArray<double> ha(
        c, hpfrt::HpfDist(Shape::of({37}),
                          {hpfrt::DimDist{hpfrt::DistKind::kCyclic,
                                          c.size(), 1}}));
    ha.fillByPoint([](const Point& p) {
      return 1.0 / (1.0 + static_cast<double>(p[0]));
    });
    hpfrt::HpfArray<double> hb =
        snapshot::deserializeHpfArray<double>(c, snapshot::serializeArray(ha));
    ASSERT_EQ(hb.raw().size(), ha.raw().size());
    EXPECT_EQ(std::memcmp(hb.raw().data(), ha.raw().data(),
                          ha.raw().size() * sizeof(double)),
              0);

    // Tulip: cyclic collection.
    tulip::Collection<double> ta(c, 29, tulip::Placement::kCyclic);
    ta.forEachOwned(
        [](Index g, double& v) { v = static_cast<double>(g * g); });
    tulip::Collection<double> tb = snapshot::deserializeTulipCollection<double>(
        c, snapshot::serializeArray(ta));
    ASSERT_EQ(tb.raw().size(), ta.raw().size());
    EXPECT_EQ(std::memcmp(tb.raw().data(), ta.raw().data(),
                          ta.raw().size() * sizeof(double)),
              0);

    // Chaos: irregular array over a distributed table.
    const Index n = 40;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 5);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    chaos::IrregArray<double> ia(c, table, mine);
    for (std::size_t k = 0; k < ia.raw().size(); ++k) {
      ia.raw()[k] = static_cast<double>(mine[k]) * 0.5;
    }
    chaos::IrregArray<double> ib = snapshot::deserializeIrregArray<double>(
        c, snapshot::serializeArray(ia));
    ASSERT_EQ(ib.raw().size(), ia.raw().size());
    EXPECT_EQ(std::memcmp(ib.raw().data(), ia.raw().data(),
                          ia.raw().size() * sizeof(double)),
              0);
    EXPECT_NE(ib.table().uid(), ia.table().uid());
    expectEveryPrefixRejected(
        snapshot::serializeArray(ia), [&](std::span<const std::byte> d) {
          return snapshot::deserializeIrregArray<double>(c, d);
        });
  });
}

TEST(ArrayBlob, WrongProgramSizeAndWrongTypeRejected) {
  std::vector<std::byte> saved;
  World::runSPMD(2, [&](Comm& c) {
    tulip::Collection<double> a(c, 16, tulip::Placement::kBlock);
    a.forEachOwned([](Index g, double& v) { v = static_cast<double>(g); });
    if (c.rank() == 0) saved = snapshot::serializeArray(a);
  });
  ASSERT_FALSE(saved.empty());
  World::runSPMD(3, [&](Comm& c) {
    if (c.rank() == 0) {
      // Saved by a 2-process program; this program has 3.
      EXPECT_THROW(snapshot::deserializeTulipCollection<double>(c, saved),
                   Error);
    }
  });
  World::runSPMD(2, [&](Comm& c) {
    if (c.rank() == 0) {
      // Same program size, but float != the saved 8-byte elements.
      EXPECT_THROW(snapshot::deserializeTulipCollection<float>(c, saved),
                   Error);
    }
  });
}

// ---------------------------------------------------------------------------
// Snapshot save/restore.

TEST(Snapshot, SaveRestoreRoundTripsCacheAndSections) {
  const std::filesystem::path dir = tmpDir("roundtrip");
  const int nprocs = 2;
  // What each rank's cache held at save time, as canonical bytes.
  std::vector<std::vector<std::pair<HashStream::Digest,
                                    std::vector<std::byte>>>> saved(nprocs);
  std::vector<std::vector<std::byte>> sectionBytes(nprocs);

  World::runSPMD(nprocs, [&](Comm& c) {
    EXPECT_FALSE(snapshotAvailable(c, dir.string()));
    core::ScheduleCache& cache = core::defaultScheduleCache();
    for (int k = 0; k < 3; ++k) {
      const HashStream::Digest key{
          static_cast<std::uint64_t>(100 * c.rank() + k), 7};
      cache.insertEntry(key, std::make_shared<const core::McSchedule>(
                                 sampleMcSchedule(c.rank() * 10 + k)));
    }
    cache.forEachEntryOldestFirst(
        [&](const HashStream::Digest& key,
            const std::shared_ptr<const core::McSchedule>& v) {
          saved[c.rank()].emplace_back(key, snapshot::serializeMcSchedule(*v));
        });
    std::vector<std::byte> bytes;
    blob::putStr(bytes, "rank " + std::to_string(c.rank()) + " state");
    sectionBytes[c.rank()] = bytes;
    snapshot::threadSections().add(
        "test.section",
        [&](Comm& cc) { return sectionBytes[cc.rank()]; },
        [](Comm&, std::span<const std::byte>) {});
    const snapshot::Report rep = snapshotSave(c, dir.string());
    EXPECT_GT(rep.bytes, 0u);
    EXPECT_EQ(rep.cacheEntries, 3u);
    EXPECT_EQ(rep.sections, 1u);
    EXPECT_TRUE(snapshotAvailable(c, dir.string()));
  });

  std::vector<int> sectionRestored(nprocs, 0);
  World::runSPMD(nprocs, [&](Comm& c) {
    // A fresh world: the thread-local cache starts empty, like a restarted
    // process.
    core::ScheduleCache& cache = core::defaultScheduleCache();
    ASSERT_EQ(cache.size(), 0u);
    snapshot::threadSections().add(
        "test.section", [](Comm&) { return std::vector<std::byte>{}; },
        [&](Comm& cc, std::span<const std::byte> bytes) {
          const std::vector<std::byte>& expect = sectionBytes[cc.rank()];
          EXPECT_TRUE(bytes.size() == expect.size() &&
                      std::memcmp(bytes.data(), expect.data(),
                                  bytes.size()) == 0);
          sectionRestored[cc.rank()] = 1;
        });
    const snapshot::Report rep = snapshotRestore(c, dir.string());
    EXPECT_EQ(rep.cacheEntries, 3u);
    EXPECT_EQ(rep.sections, 1u);
    // Same entries, same canonical bytes, same LRU order.
    std::vector<std::pair<HashStream::Digest, std::vector<std::byte>>> got;
    cache.forEachEntryOldestFirst(
        [&](const HashStream::Digest& key,
            const std::shared_ptr<const core::McSchedule>& v) {
          got.emplace_back(key, snapshot::serializeMcSchedule(*v));
        });
    EXPECT_EQ(got, saved[c.rank()]);
    // Restored entries count as insertions, never as hits.
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().insertions, 3u);
  });
  for (int r = 0; r < nprocs; ++r) EXPECT_EQ(sectionRestored[r], 1);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, WrongProgramSizeFailsLoudly) {
  const std::filesystem::path dir = tmpDir("nprocs");
  World::runSPMD(3, [&](Comm& c) { snapshotSave(c, dir.string()); });
  // Fewer ranks than the save: the files exist, but the rank-count check
  // must reject them on every rank.
  EXPECT_THROW(World::runSPMD(2,
                              [&](Comm& c) {
                                ASSERT_TRUE(
                                    snapshotAvailable(c, dir.string()));
                                snapshotRestore(c, dir.string());
                              }),
               Error);
  // More ranks than the save: rank 3's file is missing, so the collective
  // probe answers false everywhere and restore throws.
  World::runSPMD(4, [&](Comm& c) {
    EXPECT_FALSE(snapshotAvailable(c, dir.string()));
  });
  EXPECT_THROW(
      World::runSPMD(4, [&](Comm& c) { snapshotRestore(c, dir.string()); }),
      Error);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, MixedGenerationsFailTheManifestAgreement) {
  const std::filesystem::path dirA = tmpDir("gen_a");
  const std::filesystem::path dirB = tmpDir("gen_b");
  for (int gen = 0; gen < 2; ++gen) {
    World::runSPMD(2, [&](Comm& c) {
      core::defaultScheduleCache().insertEntry(
          HashStream::Digest{static_cast<std::uint64_t>(gen + 1), 0},
          std::make_shared<const core::McSchedule>(sampleMcSchedule(gen)));
      snapshotSave(c, (gen == 0 ? dirA : dirB).string());
    });
  }
  // Frankenstein directory: rank 0's file from generation A, rank 1's from
  // generation B.  Each file is individually valid (framed, checksummed),
  // but the manifests disagree across ranks.
  const std::filesystem::path dirC = tmpDir("gen_mixed");
  std::filesystem::create_directories(dirC);
  std::filesystem::copy_file(dirA / "rank0.mcsnap", dirC / "rank0.mcsnap");
  std::filesystem::copy_file(dirB / "rank1.mcsnap", dirC / "rank1.mcsnap");
  EXPECT_THROW(
      World::runSPMD(2, [&](Comm& c) { snapshotRestore(c, dirC.string()); }),
      Error);
  std::filesystem::remove_all(dirA);
  std::filesystem::remove_all(dirB);
  std::filesystem::remove_all(dirC);
}

TEST(Snapshot, TruncatedOrCorruptFileFailsLoudly) {
  const std::filesystem::path dir = tmpDir("truncate");
  World::runSPMD(2, [&](Comm& c) {
    core::defaultScheduleCache().insertEntry(
        HashStream::Digest{9, 9},
        std::make_shared<const core::McSchedule>(sampleMcSchedule(0)));
    snapshotSave(c, dir.string());
  });
  const std::filesystem::path victim = dir / "rank0.mcsnap";
  std::vector<char> bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 60u);
  const auto rewrite = [&](std::size_t keep, int flipAt) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    std::vector<char> copy(bytes.begin(),
                           bytes.begin() + static_cast<long>(keep));
    if (flipAt >= 0) copy[static_cast<std::size_t>(flipAt)] ^= 0x40;
    out.write(copy.data(), static_cast<long>(copy.size()));
  };
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{55}, bytes.size() / 2,
        bytes.size() - 1}) {
    rewrite(keep, -1);
    EXPECT_THROW(World::runSPMD(
                     2, [&](Comm& c) { snapshotRestore(c, dir.string()); }),
                 Error)
        << "kept " << keep << " of " << bytes.size() << " file bytes";
  }
  rewrite(bytes.size(), static_cast<int>(bytes.size()) - 9);  // payload flip
  EXPECT_THROW(
      World::runSPMD(2, [&](Comm& c) { snapshotRestore(c, dir.string()); }),
      Error);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, SectionSetMismatchFailsLoudly) {
  const std::filesystem::path dir = tmpDir("sections");
  World::runSPMD(2, [&](Comm& c) {
    snapshot::threadSections().add(
        "app.state", [](Comm&) { return std::vector<std::byte>(4); },
        [](Comm&, std::span<const std::byte>) {});
    snapshotSave(c, dir.string());
  });
  // The saving configuration registered "app.state"; restoring without it
  // (or with a different name) must fail — the snapshot is only meaningful
  // to the configuration that wrote it.
  EXPECT_THROW(
      World::runSPMD(2, [&](Comm& c) { snapshotRestore(c, dir.string()); }),
      Error);
  EXPECT_THROW(
      World::runSPMD(2,
                     [&](Comm& c) {
                       snapshot::threadSections().add(
                           "other.state",
                           [](Comm&) { return std::vector<std::byte>(4); },
                           [](Comm&, std::span<const std::byte>) {});
                       snapshotRestore(c, dir.string());
                     }),
      Error);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Kill-and-restart differential: the warm-started server reproduces the
// cold run bitwise, with zero inspector builds on either side.

double buildCount() {
  const obs::Snapshot s = obs::threadRegistry().snapshot();
  return s.has("build.count") ? s.get("build.count") : 0.0;
}

struct RunOutcome {
  std::vector<double> y;
  double serverBuilds = 0;
  double clientBuilds = 0;
  bool sharedSchedule = false;
  server::ServerStats stats;
};

RunOutcome runServerOnce(Index n, const std::string& dir) {
  RunOutcome out;
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", 3, [&](Comm& c) {
    server::ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = 1;
    cfg.snapshotDir = dir;
    server::ComputeServer srv(c, cfg);
    const double before = buildCount();
    srv.run();
    if (c.rank() == 0) {
      out.stats = srv.stats();
      out.serverBuilds = buildCount() - before;
    }
  }});
  specs.push_back(ProgramSpec{"client", 1, [&](Comm& c) {
    server::SessionConfig cfg;
    cfg.n = n;
    server::ClientSession session(c, cfg);
    const double before = buildCount();
    const server::AttachStats as = session.attach();
    out.clientBuilds = buildCount() - before;
    out.sharedSchedule = as.sharedSchedule;
    session.x().fillByPoint([](const Point& p) {
      return static_cast<double>((p[0] * 5 + 2) % 9) - 4.0;
    });
    session.request();
    out.y = session.y().gatherGlobal();
    session.detach();
  }});
  World::run(specs);
  return out;
}

TEST(Snapshot, WarmStartedServerMatchesColdRunBitwiseWithZeroBuilds) {
  const std::filesystem::path dir = tmpDir("warm_start");
  const Index n = 64;
  const RunOutcome cold = runServerOnce(n, dir.string());
  const RunOutcome warm = runServerOnce(n, dir.string());
  std::filesystem::remove_all(dir);

  // Cold run built; its attach cannot have been a sharing hit.
  EXPECT_FALSE(cold.sharedSchedule);
  EXPECT_GT(cold.serverBuilds + cold.clientBuilds, 0.0);
  // Warm run: first same-layout attach is a sharing hit, nothing builds.
  EXPECT_TRUE(warm.sharedSchedule);
  EXPECT_GE(warm.stats.schedShareHits, 1u);
  EXPECT_EQ(warm.serverBuilds, 0.0);
  EXPECT_EQ(warm.clientBuilds, 0.0);
  // And the answers are bitwise identical.
  ASSERT_EQ(warm.y.size(), cold.y.size());
  EXPECT_EQ(std::memcmp(warm.y.data(), cold.y.data(),
                        cold.y.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace mc
