// Tests for MultiblockArray: multi-grid domains stitched by inter-block
// interfaces (the Table 5 / multiblock-CFD scenario).
#include <gtest/gtest.h>

#include "parti/multiblock.h"
#include "transport/world.h"

namespace mc::parti {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

double cellOf(int block, Index i, Index j) {
  return 10000.0 * block + 100.0 * static_cast<double>(i) + static_cast<double>(j);
}

TEST(Multiblock, InterfaceCopiesExactSections) {
  // Two 8x8 blocks side by side: block 0's right edge feeds block 1's left
  // edge and vice versa (a classic C-grid stitch).
  for (int np : {1, 2, 4}) {
    World::runSPMD(np, [&](Comm& c) {
      MultiblockArray<double> mb(c, {Shape::of({8, 8}), Shape::of({8, 8})}, 0);
      for (int b = 0; b < 2; ++b) {
        mb.block(b).fillByPoint(
            [b](const Point& p) { return cellOf(b, p[0], p[1]); });
      }
      mb.addInterface(0, RegularSection::box({0, 7}, {7, 7}),  // 0's right
                      1, RegularSection::box({0, 0}, {7, 0}));  // -> 1's left
      mb.addInterface(1, RegularSection::box({0, 1}, {7, 1}),  // 1's col 1
                      0, RegularSection::box({0, 0}, {7, 0}));  // -> 0's left
      mb.buildSchedules();
      mb.updateInterfaces();
      const auto img0 = mb.block(0).gatherGlobal();
      const auto img1 = mb.block(1).gatherGlobal();
      for (Index i = 0; i < 8; ++i) {
        // Block 1 column 0 now holds block 0's column 7 (original values).
        EXPECT_DOUBLE_EQ(img1[static_cast<size_t>(i * 8)], cellOf(0, i, 7));
        // Block 0 column 0 now holds block 1's column 1.
        EXPECT_DOUBLE_EQ(img0[static_cast<size_t>(i * 8)], cellOf(1, i, 1));
        // Interior untouched.
        EXPECT_DOUBLE_EQ(img0[static_cast<size_t>(i * 8 + 3)], cellOf(0, i, 3));
      }
    });
  }
}

TEST(Multiblock, DifferentBlockShapesAndStrides) {
  World::runSPMD(3, [](Comm& c) {
    MultiblockArray<double> mb(c, {Shape::of({6, 10}), Shape::of({12, 4})}, 0);
    mb.block(0).fillByPoint([](const Point& p) { return cellOf(0, p[0], p[1]); });
    mb.block(1).fill(0.0);
    // A strided 6x2 patch of block 0 feeds rows 0..10:2 x cols 1..2 of 1.
    mb.addInterface(0, RegularSection::of({0, 0}, {5, 9}, {1, 5}),
                    1, RegularSection::of({0, 1}, {10, 2}, {2, 1}));
    mb.buildSchedules();
    mb.updateInterfaces();
    const auto img1 = mb.block(1).gatherGlobal();
    for (Index r = 0; r < 6; ++r) {
      for (Index k = 0; k < 2; ++k) {
        EXPECT_DOUBLE_EQ(img1[static_cast<size_t>((2 * r) * 4 + 1 + k)],
                         cellOf(0, r, 5 * k));
      }
    }
  });
}

TEST(Multiblock, ReusableAcrossSteps) {
  World::runSPMD(2, [](Comm& c) {
    MultiblockArray<double> mb(c, {Shape::of({4, 4}), Shape::of({4, 4})}, 0);
    mb.addInterface(0, RegularSection::box({0, 3}, {3, 3}),
                    1, RegularSection::box({0, 0}, {3, 0}));
    mb.buildSchedules();
    for (int step = 0; step < 4; ++step) {
      mb.block(0).fillByPoint([step](const Point& p) {
        return cellOf(0, p[0], p[1]) + step;
      });
      mb.updateInterfaces();
      const auto img1 = mb.block(1).gatherGlobal();
      for (Index i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(img1[static_cast<size_t>(i * 4)],
                         cellOf(0, i, 3) + step);
      }
    }
  });
}

TEST(Multiblock, GhostsAndInterfacesCoexist) {
  World::runSPMD(4, [](Comm& c) {
    MultiblockArray<double> mb(c, {Shape::of({8, 8}), Shape::of({8, 8})}, 1);
    for (int b = 0; b < 2; ++b) {
      mb.block(b).fillByPoint(
          [b](const Point& p) { return cellOf(b, p[0], p[1]); });
    }
    mb.addInterface(0, RegularSection::box({0, 7}, {7, 7}),
                    1, RegularSection::box({0, 0}, {7, 0}));
    mb.buildSchedules();
    mb.updateInterfaces();
    mb.exchangeAllGhosts();
    // Halo points of block 1 reflect the post-interface values.
    const RegularSection halo =
        layout::expandBox(mb.block(1).ownedBox(), 1, Shape::of({8, 8}));
    halo.forEach([&](const Point& p, Index) {
      const double want = p[1] == 0 ? cellOf(0, p[0], 7) : cellOf(1, p[0], p[1]);
      EXPECT_DOUBLE_EQ(mb.block(1).at(p), want);
    });
  });
}

TEST(Multiblock, ChecksumIndependentOfProcessorCount) {
  auto run = [](int np) {
    double cs = 0;
    World::runSPMD(np, [&](Comm& c) {
      MultiblockArray<double> mb(
          c, {Shape::of({6, 6}), Shape::of({6, 9}), Shape::of({9, 6})}, 0);
      for (int b = 0; b < 3; ++b) {
        mb.block(b).fillByPoint(
            [b](const Point& p) { return cellOf(b, p[0], p[1]); });
      }
      mb.addInterface(0, RegularSection::box({0, 5}, {5, 5}),
                      1, RegularSection::box({0, 0}, {5, 0}));
      mb.addInterface(1, RegularSection::box({5, 0}, {5, 5}),
                      2, RegularSection::box({0, 0}, {0, 5}));
      mb.buildSchedules();
      mb.updateInterfaces();
      mb.updateInterfaces();  // idempotent on static sources
      const double v = mb.checksum();
      if (c.rank() == 0) cs = v;
    });
    return cs;
  };
  const double ref = run(1);
  EXPECT_DOUBLE_EQ(run(2), ref);
  EXPECT_DOUBLE_EQ(run(5), ref);
}

TEST(Multiblock, ApiMisuseRejected) {
  World::runSPMD(1, [](Comm& c) {
    MultiblockArray<double> mb(c, {Shape::of({4, 4})}, 0);
    EXPECT_THROW(mb.updateInterfaces(), Error);  // schedules not built
    EXPECT_THROW(mb.addInterface(0, RegularSection::box({0, 0}, {1, 1}),
                                 2, RegularSection::box({0, 0}, {1, 1})),
                 Error);  // bad block id
    mb.buildSchedules();
    EXPECT_THROW(mb.addInterface(0, RegularSection::box({0, 0}, {1, 1}),
                                 0, RegularSection::box({2, 2}, {3, 3})),
                 Error);  // too late
    EXPECT_THROW(mb.buildSchedules(), Error);  // twice
  });
  EXPECT_THROW(
      World::runSPMD(1,
                     [](Comm& c) {
                       MultiblockArray<double> mb(c, {}, 0);
                     }),
      Error);
}

}  // namespace
}  // namespace mc::parti
