// sched::Executor: arrival-order drain correctness and determinism, the
// zero-copy / zero-allocation steady state, aliased ghost fills, the
// DrainOrder::kPeer debug mode, and the inter-program halves.  The old
// peer-ordered copy-per-step executors live on as sched::reference and
// serve as the oracle throughout.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "chaos/localize.h"
#include "chaos/partition.h"
#include "parti/ghost.h"
#include "sched/executor.h"
#include "sched/reference_executor.h"
#include "transport/world.h"

namespace mc::sched {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

constexpr int kPerPeer = 8;

/// Star pattern: every rank > 0 sends kPerPeer elements to rank 0.
/// `overlap` controls rank 0's unpack targets: disjoint per-peer ranges
/// (copy semantics) or the same range for every peer (add semantics).
Schedule starSchedule(int me, int nprocs, bool overlap) {
  Schedule s;
  s.bufferLocalCopies = false;
  if (me == 0) {
    for (int r = 1; r < nprocs; ++r) {
      OffsetPlan p;
      p.peer = r;
      const Index base = overlap ? 0 : static_cast<Index>((r - 1) * kPerPeer);
      for (int i = 0; i < kPerPeer; ++i) {
        p.offsets.push_back(base + static_cast<Index>(i));
      }
      s.recvs.push_back(std::move(p));
    }
  } else {
    OffsetPlan p;
    p.peer = 0;
    for (int i = 0; i < kPerPeer; ++i) {
      p.offsets.push_back(static_cast<Index>(i));
    }
    s.sends.push_back(std::move(p));
  }
  return s;
}

/// Rotates real delivery order across iterations: peer r stalls by a
/// per-iteration amount before entering the collective run, so rank 0's
/// mailbox sees the messages in a different wall-clock order each time.
void staggeredSleep(int rank, int iteration) {
  if (rank == 0) return;
  const int ms = ((rank - 1 + iteration) % 3) * 4;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(Executor, ArrivalOrderCopyIsExactUnderShuffledDelivery) {
  World::runSPMD(4, [](Comm& c) {
    const Schedule s = starSchedule(c.rank(), c.size(), /*overlap=*/false);
    Executor<double> ex(c, s);
    std::vector<double> src(kPerPeer), dst(3 * kPerPeer);
    for (int i = 0; i < kPerPeer; ++i) {
      src[static_cast<size_t>(i)] = 100.0 * c.rank() + i;
    }
    for (int it = 0; it < 6; ++it) {
      std::fill(dst.begin(), dst.end(), -1.0);
      staggeredSleep(c.rank(), it);
      ex.run(src, dst);
      if (c.rank() == 0) {
        for (int r = 1; r < c.size(); ++r) {
          for (int i = 0; i < kPerPeer; ++i) {
            EXPECT_EQ(dst[static_cast<size_t>((r - 1) * kPerPeer + i)],
                      100.0 * r + i)
                << "iteration " << it;
          }
        }
      }
    }
    // Message counts: the one-message-per-pair invariant per run.
    c.resetStats();
    ex.run(src, dst);
    EXPECT_EQ(c.stats().messagesSent, s.sends.size());
    EXPECT_EQ(c.stats().messagesReceived, s.recvs.size());
  });
}

TEST(Executor, AddAppliesInPeerOrderRegardlessOfArrival) {
  World::runSPMD(4, [](Comm& c) {
    const Schedule s = starSchedule(c.rank(), c.size(), /*overlap=*/true);
    Executor<double> ex(c, s);
    // Values chosen so floating-point accumulation order is visible:
    // ((0 + 1e16) + 1) + -1e16 == 0, but (0 + 1e16) + -1e16 + 1 == 1.
    const double contributions[] = {1e16, 1.0, -1e16};
    std::vector<double> src(kPerPeer), dst(kPerPeer);
    if (c.rank() > 0) {
      std::fill(src.begin(), src.end(),
                contributions[static_cast<size_t>(c.rank() - 1)]);
    }
    double expected = 0.0;
    for (double v : contributions) expected += v;  // peer order
    for (int it = 0; it < 6; ++it) {
      std::fill(dst.begin(), dst.end(), 0.0);
      staggeredSleep(c.rank(), it);
      ex.runAdd(src, dst);
      if (c.rank() == 0) {
        for (int i = 0; i < kPerPeer; ++i) {
          EXPECT_EQ(dst[static_cast<size_t>(i)], expected)
              << "iteration " << it;
        }
      }
    }
  });
}

TEST(Executor, PeerDrainModeProducesSameResults) {
  setDrainOrder(DrainOrder::kPeer);
  World::runSPMD(4, [](Comm& c) {
    const Schedule copyS = starSchedule(c.rank(), c.size(), /*overlap=*/false);
    const Schedule addS = starSchedule(c.rank(), c.size(), /*overlap=*/true);
    Executor<double> copyEx(c, copyS);
    Executor<double> addEx(c, addS);
    std::vector<double> src(kPerPeer, 1e16), dst(3 * kPerPeer, 0.0);
    if (c.rank() == 2) std::fill(src.begin(), src.end(), 1.0);
    if (c.rank() == 3) std::fill(src.begin(), src.end(), -1e16);
    c.resetStats();
    copyEx.run(src, dst);
    EXPECT_EQ(c.stats().messagesSent, copyS.sends.size());
    EXPECT_EQ(c.stats().messagesReceived, copyS.recvs.size());
    if (c.rank() == 0) {
      EXPECT_EQ(dst[0], 1e16);
      EXPECT_EQ(dst[kPerPeer], 1.0);
      EXPECT_EQ(dst[2 * kPerPeer], -1e16);
    }
    std::fill(dst.begin(), dst.end(), 0.0);
    addEx.runAdd(src, dst);
    if (c.rank() == 0) {
      EXPECT_EQ(dst[0], (1e16 + 1.0) + -1e16);  // peer-order accumulation
    }
  });
  setDrainOrder(DrainOrder::kArrival);
}

TEST(Executor, AliasedGhostFillMatchesReferenceExecutor) {
  World::runSPMD(4, [](Comm& c) {
    parti::BlockDistArray<double> a(c, layout::Shape::of({8, 8}), /*ghost=*/1);
    parti::BlockDistArray<double> b(c, layout::Shape::of({8, 8}), /*ghost=*/1);
    auto fill = [](const layout::Point& p) {
      return static_cast<double>(p[0] * 17 + p[1]);
    };
    a.fillByPoint(fill);
    b.fillByPoint(fill);
    const Schedule s = parti::buildGhostSchedule(a);

    // Reference: peer-ordered, copy-per-step, src/dst aliased.
    reference::execute<double>(c, s, b.raw(), b.raw(), c.nextUserTag());
    // Executor: arrival-ordered, zero-copy, src/dst aliased.
    Executor<double> ex(c, s);
    ex.run(a.raw(), a.raw());

    ASSERT_EQ(a.raw().size(), b.raw().size());
    for (size_t i = 0; i < a.raw().size(); ++i) {
      EXPECT_EQ(a.raw()[i], b.raw()[i]) << "element " << i;
    }
  });
}

TEST(Executor, SteadyStateHasZeroCopiesAndZeroAllocations) {
  World::runSPMD(4, [](Comm& c) {
    parti::BlockDistArray<double> a(c, layout::Shape::of({8, 8}), /*ghost=*/1);
    a.fillByPoint([](const layout::Point& p) {
      return static_cast<double>(p[0] - p[1]);
    });
    parti::GhostExchanger<double> ex(a);
    ex.exchange();  // warmup: allocates the send buffers once

    c.resetStats();
    const int kSteps = 5;
    for (int i = 0; i < kSteps; ++i) ex.exchange();
    const auto& s = c.stats();
    // Ghost exchanges are symmetric (send volume to q == recv volume from
    // q), so from the second run on every send reuses a buffer recycled
    // from the previous run's receives: no transport payload copies, no
    // heap allocations, exactly one message per peer per step.
    EXPECT_EQ(s.bytesCopied, 0u);
    EXPECT_EQ(s.allocations, 0u);
    EXPECT_EQ(s.messagesSent, kSteps * ex.schedule().sends.size());
    EXPECT_EQ(s.messagesReceived, kSteps * ex.schedule().recvs.size());
  });
}

TEST(Executor, IrregularGatherScatterAddMatchesReference) {
  World::runSPMD(3, [](Comm& c) {
    const Index n = 60;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 5);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    // Every rank references a shuffled window of global ids.
    std::vector<Index> refs;
    for (Index g = 0; g < n; g += 2) {
      refs.push_back((g * 7 + c.rank() * 13) % n);
    }
    const chaos::Localized loc = chaos::localize(c, *table, refs);

    std::vector<double> owned(mine.size());
    for (size_t i = 0; i < mine.size(); ++i) {
      owned[i] = static_cast<double>(mine[i]) + 0.25;
    }
    const size_t ghostN = static_cast<size_t>(loc.ghostCount);

    // Gather: executor vs reference, bitwise.
    std::vector<double> ghostRef(ghostN, -1.0), ghostNew(ghostN, -2.0);
    reference::execute<double>(c, loc.gatherSched, owned, ghostRef,
                               c.nextUserTag());
    Executor<double> gatherEx(c, loc.gatherSched);
    gatherEx.run(owned, ghostNew);
    EXPECT_EQ(ghostRef, ghostNew);

    // Scatter-add: executor vs reference, bitwise.
    std::vector<double> contrib(ghostN);
    for (size_t i = 0; i < ghostN; ++i) {
      contrib[i] = 0.5 + static_cast<double>(i);
    }
    std::vector<double> ownedRef = owned, ownedNew = owned;
    reference::executeAdd<double>(c, loc.scatterAddSched, contrib, ownedRef,
                                  c.nextUserTag());
    Executor<double> scatterEx(c, loc.scatterAddSched);
    scatterEx.runAdd(contrib, ownedNew);
    EXPECT_EQ(ownedRef, ownedNew);
  });
}

TEST(Executor, InterProgramHalvesMoveDataAndStayPaired) {
  // Program a (2 ranks) scatters to program b (3 ranks): a0 -> {b0, b1},
  // a1 -> {b2}.  Run twice so the paired inter-program tag counters are
  // exercised past their first value.
  const int kN = 4;
  auto senderSched = [&](int rank) {
    Schedule s;
    s.bufferLocalCopies = false;
    const std::vector<int> peers =
        rank == 0 ? std::vector<int>{0, 1} : std::vector<int>{2};
    for (size_t k = 0; k < peers.size(); ++k) {
      OffsetPlan p;
      p.peer = peers[k];
      for (int i = 0; i < kN; ++i) {
        p.offsets.push_back(static_cast<Index>(k * kN + i));
      }
      s.sends.push_back(std::move(p));
    }
    return s;
  };
  auto receiverSched = [&](int rank) {
    Schedule s;
    s.bufferLocalCopies = false;
    OffsetPlan p;
    p.peer = rank < 2 ? 0 : 1;  // which a-rank feeds this b-rank
    for (int i = 0; i < kN; ++i) p.offsets.push_back(static_cast<Index>(i));
    s.recvs.push_back(std::move(p));
    return s;
  };
  World::run({
      transport::ProgramSpec{
          "a", 2,
          [&](Comm& c) {
            const Schedule s = senderSched(c.rank());
            Executor<double> ex = Executor<double>::sender(c, s, /*prog=*/1);
            std::vector<double> src(2 * kN);
            for (int round = 0; round < 2; ++round) {
              for (size_t i = 0; i < src.size(); ++i) {
                src[i] = 1000.0 * round + 10.0 * c.rank() + i;
              }
              ex.runSend(src);
            }
          }},
      transport::ProgramSpec{
          "b", 3,
          [&](Comm& c) {
            const Schedule s = receiverSched(c.rank());
            Executor<double> ex = Executor<double>::receiver(c, s, /*prog=*/0);
            std::vector<double> dst(kN);
            for (int round = 0; round < 2; ++round) {
              std::fill(dst.begin(), dst.end(), -1.0);
              ex.runRecv(dst);
              const int aRank = c.rank() < 2 ? 0 : 1;
              const int lane = c.rank() < 2 ? c.rank() : 0;
              for (int i = 0; i < kN; ++i) {
                EXPECT_EQ(dst[static_cast<size_t>(i)],
                          1000.0 * round + 10.0 * aRank + lane * kN + i)
                    << "round " << round;
              }
            }
          }},
  });
}

}  // namespace
}  // namespace mc::sched
