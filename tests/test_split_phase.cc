// Split-phase schedule execution (Executor::start / Pending): differential
// equivalence against run()/runAdd() — bitwise, under shuffled delivery, in
// both DrainOrder modes — plus the misuse contract (second start throws,
// dropped Pending cancels cleanly), footprint classification against brute
// force, the steady-state zero-allocation invariant, the new traffic
// counters, and the core-level dataMoveBegin/dataMoveEnd wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "core/data_move.h"
#include "parti/ghost.h"
#include "sched/executor.h"
#include "sched/footprint.h"
#include "transport/world.h"
#include "util/error.h"

namespace mc::sched {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

constexpr int kMaxPerPair = 6;

/// Fuzzed all-to-all schedule: every ordered pair (p, q) with p != q moves a
/// seeded-random number of elements from random src offsets at p into a
/// shuffled window of q's per-sender dst block (so per-peer recv offsets
/// stay disjoint — the copy-semantics invariant builders guarantee).  Rank
/// me's own dst block receives seeded-random local transfers.  Every rank
/// derives identical plans from (seed, p, q) alone, as a real inspector
/// would from the replicated distribution.
Schedule fuzzedSchedule(int me, int nprocs, unsigned seed, Index srcN) {
  Schedule s;
  s.bufferLocalCopies = false;
  auto rngFor = [&](int p, int q) {
    return std::mt19937(seed * 1000003u + static_cast<unsigned>(p) * 1009u +
                        static_cast<unsigned>(q));
  };
  auto pick = [](std::mt19937& rng, Index bound, Index count) {
    // `count` distinct offsets in [0, bound), shuffled.
    std::vector<Index> all(static_cast<size_t>(bound));
    for (Index i = 0; i < bound; ++i) all[static_cast<size_t>(i)] = i;
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(static_cast<size_t>(count));
    return all;
  };
  for (int p = 0; p < nprocs; ++p) {
    for (int q = 0; q < nprocs; ++q) {
      std::mt19937 rng = rngFor(p, q);
      const Index count = 1 + static_cast<Index>(rng() % kMaxPerPair);
      const Index dstBase = static_cast<Index>(p) * kMaxPerPair;
      if (p == q) {
        if (me == p) {
          const auto from = pick(rng, srcN, count);
          const auto to = pick(rng, kMaxPerPair, count);
          for (Index k = 0; k < count; ++k) {
            s.localPairs.emplace_back(from[static_cast<size_t>(k)],
                                      dstBase + to[static_cast<size_t>(k)]);
          }
        }
        continue;
      }
      if (me == p) {
        OffsetPlan plan;
        plan.peer = q;
        plan.offsets = pick(rng, srcN, count);
        s.sends.push_back(std::move(plan));
      } else if (me == q) {
        OffsetPlan plan;
        plan.peer = p;
        const auto to = pick(rng, kMaxPerPair, count);
        plan.offsets.reserve(static_cast<size_t>(count));
        for (Index k = 0; k < count; ++k) {
          plan.offsets.push_back(dstBase + to[static_cast<size_t>(k)]);
        }
        s.recvs.push_back(std::move(plan));
      }
    }
  }
  // p ascending already orders recvs by peer; sends by q ascending.
  s.sortByPeer();
  return s;
}

/// Rotates real delivery order across iterations (see test_executor.cc).
void staggeredSleep(int rank, int iteration) {
  const int ms = ((rank + iteration) % 3) * 4;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void expectSplitMatchesRun(DrainOrder order) {
  setDrainOrder(order);
  World::runSPMD(4, [order](Comm& c) {
    const Index srcN = 32;
    const Index dstN = static_cast<Index>(c.size()) * kMaxPerPair;
    for (unsigned seed = 1; seed <= 5; ++seed) {
      const Schedule s =
          fuzzedSchedule(c.rank(), c.size(), seed, srcN);
      std::vector<double> src(static_cast<size_t>(srcN));
      for (Index i = 0; i < srcN; ++i) {
        src[static_cast<size_t>(i)] =
            1000.0 * c.rank() + static_cast<double>(i) + 0.5;
      }
      Executor<double> runEx(c, s);
      Executor<double> splitEx(c, s);
      for (int it = 0; it < 3; ++it) {
        std::vector<double> want(static_cast<size_t>(dstN), -1.0);
        std::vector<double> got(static_cast<size_t>(dstN), -1.0);
        staggeredSleep(c.rank(), it);
        runEx.run(src, want);
        staggeredSleep(c.rank(), it + 1);
        auto pending = splitEx.start(src);
        // Interleave "caller compute" with opportunistic polls; in kPeer
        // mode poll is a deliberate no-op and everything drains in finish.
        for (int spin = 0; spin < 3; ++spin) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          pending.poll();
        }
        pending.finish(got);
        EXPECT_EQ(want, got) << "seed " << seed << " it " << it << " order "
                             << static_cast<int>(order);
      }
    }
  });
  setDrainOrder(DrainOrder::kArrival);
}

TEST(SplitPhase, CopyMatchesRunBitwiseArrivalOrder) {
  expectSplitMatchesRun(DrainOrder::kArrival);
}

TEST(SplitPhase, CopyMatchesRunBitwisePeerOrder) {
  expectSplitMatchesRun(DrainOrder::kPeer);
}

void expectSplitAddMatchesRunAdd(DrainOrder order) {
  setDrainOrder(order);
  // Star pattern, every peer hitting the SAME dst offsets with values whose
  // accumulation order is visible in the bits: ((0 + 1e16) + 1) + -1e16 == 0
  // but (0 + 1e16) + -1e16 + 1 == 1.  finishAdd must reproduce runAdd's
  // peer-order application exactly, whatever the arrival order.
  World::runSPMD(4, [](Comm& c) {
    constexpr Index kN = 8;
    Schedule s;
    s.bufferLocalCopies = false;
    if (c.rank() == 0) {
      for (int r = 1; r < c.size(); ++r) {
        OffsetPlan p;
        p.peer = r;
        for (Index i = 0; i < kN; ++i) p.offsets.push_back(i);
        s.recvs.push_back(std::move(p));
      }
    } else {
      OffsetPlan p;
      p.peer = 0;
      for (Index i = 0; i < kN; ++i) p.offsets.push_back(i);
      s.sends.push_back(std::move(p));
    }
    const double contributions[] = {1e16, 1.0, -1e16};
    std::vector<double> src(kN, 0.0);
    if (c.rank() > 0) {
      std::fill(src.begin(), src.end(),
                contributions[static_cast<size_t>(c.rank() - 1)]);
    }
    Executor<double> runEx(c, s);
    Executor<double> splitEx(c, s);
    for (int it = 0; it < 6; ++it) {
      std::vector<double> want(kN, 0.0), got(kN, 0.0);
      staggeredSleep(c.rank(), it);
      runEx.runAdd(src, want);
      staggeredSleep(c.rank(), it + 2);
      auto pending = splitEx.start(src);
      pending.poll();
      pending.finishAdd(got);
      EXPECT_EQ(want, got) << "iteration " << it;
      if (c.rank() == 0) {
        EXPECT_EQ(got[0], (0.0 + 1e16 + 1.0) + -1e16) << "iteration " << it;
      }
    }
  });
  setDrainOrder(DrainOrder::kArrival);
}

TEST(SplitPhase, AddMatchesRunAddBitwiseArrivalOrder) {
  expectSplitAddMatchesRunAdd(DrainOrder::kArrival);
}

TEST(SplitPhase, AddMatchesRunAddBitwisePeerOrder) {
  expectSplitAddMatchesRunAdd(DrainOrder::kPeer);
}

TEST(SplitPhase, SecondStartBeforeFinishThrows) {
  World::runSPMD(1, [](Comm& c) {
    Schedule s;
    s.bufferLocalCopies = false;
    s.localPairs = {{0, 4}, {1, 5}, {2, 6}};
    Executor<double> ex(c, s);
    std::vector<double> src{10, 11, 12, 13}, dst(8, -1.0);
    auto pending = ex.start(src);
    EXPECT_THROW((void)ex.start(src), Error);
    EXPECT_THROW(ex.run(src, dst), Error);
    EXPECT_THROW(ex.runAdd(src, dst), Error);
    EXPECT_TRUE(pending.poll());  // no receives: trivially complete
    pending.finish(dst);
    EXPECT_EQ(dst[4], 10.0);
    EXPECT_EQ(dst[5], 11.0);
    EXPECT_EQ(dst[6], 12.0);
    // The handle is spent: further use throws, and the executor is free.
    EXPECT_THROW(pending.finish(dst), Error);
    EXPECT_THROW((void)pending.poll(), Error);
    auto again = ex.start(src);
    again.finish(dst);
  });
}

TEST(SplitPhase, DroppedPendingCancelsCleanly) {
  // Rank 0 abandons a started run (handle destroyed without finish); the
  // destructor must consume the exchange's messages so the next run on the
  // same executor sees a clean mailbox and exact results.
  World::runSPMD(4, [](Comm& c) {
    const Index srcN = 32;
    const Index dstN = static_cast<Index>(c.size()) * kMaxPerPair;
    const Schedule s = fuzzedSchedule(c.rank(), c.size(), 7, srcN);
    Executor<double> ex(c, s);
    std::vector<double> src(static_cast<size_t>(srcN));
    for (Index i = 0; i < srcN; ++i) {
      src[static_cast<size_t>(i)] = 100.0 * c.rank() + static_cast<double>(i);
    }
    std::vector<double> dst(static_cast<size_t>(dstN), -1.0);
    {
      auto dropped = ex.start(src);
      // destroyed unfinished at scope exit
    }
    std::vector<double> want(static_cast<size_t>(dstN), -1.0);
    Executor<double>(c, s).run(src, want);
    ex.run(src, dst);
    EXPECT_EQ(want, dst);
  });
}

TEST(SplitPhase, SteadyStateSymmetricExchangeStaysZeroCopy) {
  // The PR-3 buffer-recycling invariant survives split phase: received
  // payloads become the next start()'s send buffers, so a symmetric
  // steady-state exchange performs no transport payload copies and no heap
  // allocations.
  World::runSPMD(4, [](Comm& c) {
    parti::BlockDistArray<double> a(c, layout::Shape::of({8, 8}), /*ghost=*/1);
    a.fillByPoint([](const layout::Point& p) {
      return static_cast<double>(p[0] * 3 - p[1]);
    });
    parti::GhostExchanger<double> ex(a);
    {
      auto p = ex.startExchange();  // warmup allocates send buffers once
      p.finish(a.raw());
    }
    c.resetStats();
    const int kSteps = 5;
    for (int i = 0; i < kSteps; ++i) {
      auto p = ex.startExchange();
      while (!p.poll()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      p.finish(a.raw());
    }
    const auto& stats = c.stats();
    EXPECT_EQ(stats.bytesCopied, 0u);
    EXPECT_EQ(stats.allocations, 0u);
    EXPECT_EQ(stats.messagesSent, kSteps * ex.schedule().sends.size());
    EXPECT_EQ(stats.messagesReceived, kSteps * ex.schedule().recvs.size());
    // Everything was consumed by the non-blocking poll path.
    EXPECT_EQ(stats.messagesDrainedEarly, kSteps * ex.schedule().recvs.size());
  });
}

TEST(SplitPhase, SplitGhostFillMatchesBlockingExchange) {
  World::runSPMD(4, [](Comm& c) {
    parti::BlockDistArray<double> a(c, layout::Shape::of({9, 7}), /*ghost=*/1);
    parti::BlockDistArray<double> b(c, layout::Shape::of({9, 7}), /*ghost=*/1);
    auto fill = [](const layout::Point& p) {
      return 0.25 + static_cast<double>(p[0] * 11 + p[1]);
    };
    a.fillByPoint(fill);
    b.fillByPoint(fill);
    parti::GhostExchanger<double> exA(a);
    parti::GhostExchanger<double> exB(b);
    exA.exchange();
    auto pending = exB.startExchange();
    pending.finish(b.raw());
    ASSERT_EQ(a.raw().size(), b.raw().size());
    for (size_t i = 0; i < a.raw().size(); ++i) {
      EXPECT_EQ(a.raw()[i], b.raw()[i]) << "element " << i;
    }
  });
}

TEST(SplitPhase, TrafficStatsObserveWaitsAndEarlyDrains) {
  World::runSPMD(2, [](Comm& c) {
    Schedule s;
    s.bufferLocalCopies = false;
    OffsetPlan p;
    p.peer = c.rank() == 0 ? 1 : 0;
    for (Index i = 0; i < 4; ++i) p.offsets.push_back(i);
    if (c.rank() == 0) {
      s.recvs.push_back(std::move(p));
    } else {
      s.sends.push_back(std::move(p));
    }
    Executor<double> ex(c, s);
    std::vector<double> src(4, 2.5), dst(4, 0.0);
    c.resetStats();
    if (c.rank() == 1) {
      // Delay the send so the receiver's blocking drain measurably waits.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ex.run(src, dst);
    if (c.rank() == 0) {
      EXPECT_GT(c.stats().recvWaitSeconds, 0.0);
      EXPECT_EQ(c.stats().messagesDrainedEarly, 0u);
    }
    // Second round: the receiver spins on poll(), so the message is
    // consumed by the non-blocking path and counted as drained early.
    c.resetStats();
    auto pending = ex.start(src);
    while (!pending.poll()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    pending.finish(dst);
    if (c.rank() == 0) {
      EXPECT_EQ(c.stats().messagesDrainedEarly, 1u);
      EXPECT_EQ(dst, std::vector<double>(4, 2.5));
    }
  });
}

TEST(SplitPhase, DataMoveBeginEndMatchesDataMove) {
  World::runSPMD(3, [](Comm& c) {
    const Index srcN = 32;
    const Index dstN = static_cast<Index>(c.size()) * kMaxPerPair;
    core::McSchedule ms;
    ms.plan = fuzzedSchedule(c.rank(), c.size(), 11, srcN);
    ms.numElements = dstN;
    std::vector<double> src(static_cast<size_t>(srcN));
    for (Index i = 0; i < srcN; ++i) {
      src[static_cast<size_t>(i)] = 7.0 * c.rank() + static_cast<double>(i);
    }
    std::vector<double> want(static_cast<size_t>(dstN), 0.0);
    std::vector<double> got(static_cast<size_t>(dstN), 0.0);
    core::dataMove<double>(c, ms, src, want);
    auto move = core::dataMoveBegin<double>(c, ms, src);
    EXPECT_FALSE(move.footprint().remote.empty() &&
                 move.footprint().localDst.empty());
    move.poll();
    core::dataMoveEnd<double>(move, got);
    EXPECT_EQ(want, got);
  });
}

TEST(Footprint, ClassifiesOffsetsExactly) {
  // Pure inspector-side computation: classify a schedule mixing offset
  // lists, contiguous runs, strided runs, and a repeated (stride-0) run,
  // then compare membership against brute-force enumeration.
  Schedule s;
  OffsetPlan r1;
  r1.peer = 0;
  r1.runs = {OffsetRun{10, 4, 1}, OffsetRun{100, 3, 7}};  // 10..13, 100,107,114
  OffsetPlan r2;
  r2.peer = 1;
  r2.offsets = {2, 40, 41, 3};
  s.recvs = {r1, r2};
  s.localRuns = {LocalRun{/*src=*/60, /*dst=*/70, /*count=*/5,
                          /*srcStride=*/2, /*dstStride=*/1},
                 LocalRun{/*src=*/0, /*dst=*/90, /*count=*/3,
                          /*srcStride=*/0, /*dstStride=*/-1}};
  const Footprint fp = Footprint::of(s);

  const std::vector<Index> remoteWant = {2, 3, 10, 11, 12, 13,
                                         40, 41, 100, 107, 114};
  EXPECT_EQ(fp.remote.count(), static_cast<Index>(remoteWant.size()));
  for (Index off : remoteWant) EXPECT_TRUE(fp.remote.contains(off)) << off;
  for (Index off : {0, 1, 4, 9, 14, 39, 42, 99, 101, 113, 115}) {
    EXPECT_FALSE(fp.remote.contains(static_cast<Index>(off))) << off;
  }

  const std::vector<Index> srcWant = {0, 60, 62, 64, 66, 68};
  EXPECT_EQ(fp.localSrc.count(), static_cast<Index>(srcWant.size()));
  for (Index off : srcWant) EXPECT_TRUE(fp.localSrc.contains(off)) << off;
  EXPECT_FALSE(fp.localSrc.contains(61));
  EXPECT_FALSE(fp.localSrc.contains(70));

  const std::vector<Index> dstWant = {70, 71, 72, 73, 74, 88, 89, 90};
  EXPECT_EQ(fp.localDst.count(), static_cast<Index>(dstWant.size()));
  for (Index off : dstWant) EXPECT_TRUE(fp.localDst.contains(off)) << off;

  EXPECT_EQ(fp.dstTouched.count(),
            fp.remote.count() + fp.localDst.count());  // disjoint here
  EXPECT_TRUE(fp.dstTouched.contains(12));
  EXPECT_TRUE(fp.dstTouched.contains(74));
  EXPECT_FALSE(fp.dstTouched.contains(75));

  // Interval queries used by the overlap pipelines.
  EXPECT_TRUE(fp.remote.overlaps(13, 20));
  EXPECT_FALSE(fp.remote.overlaps(14, 40));
  std::vector<Index> seen;
  fp.remote.forEachIn(11, 101, [&](Index off) { seen.push_back(off); });
  EXPECT_EQ(seen, (std::vector<Index>{11, 12, 13, 40, 41, 100}));
  // Ranges entirely past the set visit nothing (regression: the scan must
  // stop cleanly at the end of the interval list).
  seen.clear();
  fp.remote.forEachIn(101, 107, [&](Index off) { seen.push_back(off); });
  EXPECT_TRUE(seen.empty());
  fp.remote.forEachIn(115, 500, [&](Index off) { seen.push_back(off); });
  EXPECT_TRUE(seen.empty());
  fp.remote.forEachIn(200, 100, [&](Index off) { seen.push_back(off); });
  EXPECT_TRUE(seen.empty());
}

TEST(Footprint, StridedRunsAreNotOverApproximated) {
  // A halo-column run (stride == row stride) must classify exactly its
  // elements, never the covering interval — otherwise the whole local block
  // would count as touched and the overlap pipelines would defer everything.
  Schedule s;
  OffsetPlan col;
  col.peer = 0;
  col.runs = {OffsetRun{/*start=*/5, /*count=*/4, /*stride=*/10}};
  s.recvs = {col};
  const Footprint fp = Footprint::of(s);
  EXPECT_EQ(fp.remote.count(), 4);
  for (Index off : {5, 15, 25, 35}) {
    EXPECT_TRUE(fp.remote.contains(off)) << off;
  }
  for (Index off : {6, 10, 14, 16, 24, 34, 36}) {
    EXPECT_FALSE(fp.remote.contains(static_cast<Index>(off))) << off;
  }
  EXPECT_FALSE(fp.remote.overlaps(16, 25));
}

}  // namespace
}  // namespace mc::sched
