// Unit tests for Meta-Chaos regions, SetOfRegions, serialization, registry,
// and adapter inquiry functions.
#include <gtest/gtest.h>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/registry.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

TEST(Region, SectionCount) {
  const Region r = Region::section(RegularSection::of({0, 0}, {4, 9}, {1, 2}));
  EXPECT_EQ(r.kind(), Region::Kind::kSection);
  EXPECT_EQ(r.numElements(), 25);
  EXPECT_THROW(r.asIndices(), Error);
  EXPECT_THROW(r.asRange(), Error);
}

TEST(Region, IndicesCount) {
  const Region r = Region::indices({5, 3, 9, 9, 1});
  EXPECT_EQ(r.kind(), Region::Kind::kIndices);
  EXPECT_EQ(r.numElements(), 5);  // listed order, duplicates allowed by count
  EXPECT_THROW(r.asSection(), Error);
}

TEST(Region, RangeCount) {
  const Region r = Region::range(2, 10, 3);  // 2, 5, 8
  EXPECT_EQ(r.numElements(), 3);
  EXPECT_EQ(r.asRange().at(2), 8);
  EXPECT_THROW(Region::range(0, 5, 0), Error);
}

TEST(Region, EmptyRange) {
  EXPECT_EQ(Region::range(5, 4).numElements(), 0);
}

TEST(SetOfRegions, ConcatenatesCounts) {
  SetOfRegions set;
  set.add(Region::section(RegularSection::box({0, 0}, {2, 2})));
  set.add(Region::section(RegularSection::box({5, 5}, {6, 8})));
  EXPECT_EQ(set.numElements(), 9 + 8);
  EXPECT_EQ(set.kind(), Region::Kind::kSection);
}

TEST(SetOfRegions, RejectsMixedKinds) {
  SetOfRegions set;
  set.add(Region::indices({1, 2}));
  EXPECT_THROW(set.add(Region::range(0, 3)), Error);
}

TEST(SetOfRegions, EmptyHasNoKind) {
  SetOfRegions set;
  EXPECT_EQ(set.numElements(), 0);
  EXPECT_THROW(set.kind(), Error);
}

TEST(SetOfRegions, SerializationRoundTrip) {
  {
    SetOfRegions set;
    set.add(Region::section(RegularSection::of({1, 2}, {9, 8}, {2, 3})));
    set.add(Region::section(RegularSection::box({0, 0}, {3, 3})));
    const SetOfRegions back = deserializeSet(serializeSet(set));
    ASSERT_EQ(back.regions().size(), 2u);
    EXPECT_EQ(back.regions()[0].asSection(),
              RegularSection::of({1, 2}, {9, 8}, {2, 3}));
    EXPECT_EQ(back.numElements(), set.numElements());
  }
  {
    SetOfRegions set;
    set.add(Region::indices({7, 1, 4}));
    const SetOfRegions back = deserializeSet(serializeSet(set));
    EXPECT_EQ(back.regions()[0].asIndices(), (std::vector<Index>{7, 1, 4}));
  }
  {
    SetOfRegions set;
    set.add(Region::range(3, 30, 4));
    const SetOfRegions back = deserializeSet(serializeSet(set));
    EXPECT_EQ(back.regions()[0].asRange().stride, 4);
    EXPECT_EQ(back.numElements(), set.numElements());
  }
}

TEST(SetOfRegions, DeserializeRejectsGarbage) {
  std::vector<std::byte> junk(13, std::byte{0x5a});
  EXPECT_THROW(deserializeSet(junk), Error);
}

TEST(Registry, BuiltinsRegistered) {
  registerBuiltinAdapters();
  Registry& r = Registry::instance();
  for (const char* name : {"parti", "hpf", "chaos", "pc++"}) {
    ASSERT_TRUE(r.has(name)) << name;
    EXPECT_EQ(r.get(name).name(), name);
  }
  EXPECT_FALSE(r.has("petsc"));
  EXPECT_THROW(r.get("petsc"), Error);
}

TEST(DistObject, TypeSafety) {
  auto desc = std::make_shared<const tulip::TulipDesc>(
      tulip::TulipDesc{10, 2, tulip::Placement::kBlock});
  DistObject obj("pc++", desc);
  EXPECT_EQ(obj.as<tulip::TulipDesc>().size, 10);
  EXPECT_THROW(obj.as<hpfrt::HpfDist>(), Error);
}

TEST(PartiAdapter, EnumerationOrderIsRowMajorConcat) {
  // Mirrors the paper's Figures 4-5: two regions rA1, rA2 of array A; the
  // set linearization is rA1's row-major order followed by rA2's.
  const PartiAdapter adapter;
  auto desc = std::make_shared<const parti::PartiDesc>(
      parti::PartiDesc{layout::BlockDecomp(Shape::of({7, 9}), {1, 1}), 0});
  const DistObject obj("parti", desc);
  SetOfRegions set;
  // rA1 = rows 1..3, cols 4..6 (0-based for the paper's a25..a47 block)
  set.add(Region::section(RegularSection::box({1, 4}, {3, 6})));
  // rA2 = rows 2..5, cols 1..2
  set.add(Region::section(RegularSection::box({2, 1}, {5, 2})));
  std::vector<std::pair<Index, Index>> seen;  // (lin, offset)
  adapter.enumerateAll(obj, set, [&](Index lin, int owner, Index off) {
    EXPECT_EQ(owner, 0);
    seen.emplace_back(lin, off);
  });
  ASSERT_EQ(seen.size(), 9u + 8u);
  // First element of the linearization is a(1,4) -> offset 1*9+4.
  EXPECT_EQ(seen[0], (std::pair<Index, Index>{0, 13}));
  // Last of rA1 is a(3,6) -> 33; first of rA2 is a(2,1) -> 19.
  EXPECT_EQ(seen[8], (std::pair<Index, Index>{8, 33}));
  EXPECT_EQ(seen[9], (std::pair<Index, Index>{9, 19}));
  // Positions strictly increase.
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, static_cast<Index>(i));
  }
}

TEST(PartiAdapter, ValidateBounds) {
  const PartiAdapter adapter;
  auto desc = std::make_shared<const parti::PartiDesc>(
      parti::PartiDesc{layout::BlockDecomp(Shape::of({4, 4}), {1, 1}), 0});
  const DistObject obj("parti", desc);
  SetOfRegions bad;
  bad.add(Region::section(RegularSection::box({0, 0}, {4, 3})));
  EXPECT_THROW(adapter.validate(obj, bad), Error);
  SetOfRegions wrongKind;
  wrongKind.add(Region::indices({0}));
  EXPECT_THROW(adapter.validate(obj, wrongKind), Error);
}

TEST(HpfAdapter, DescriptorRoundTrip) {
  World::runSPMD(1, [](Comm& c) {
    const HpfAdapter adapter;
    auto dist = std::make_shared<const hpfrt::HpfDist>(
        Shape::of({12, 8}),
        std::vector<hpfrt::DimDist>{
            hpfrt::DimDist{hpfrt::DistKind::kBlockCyclic, 1, 3},
            hpfrt::DimDist{hpfrt::DistKind::kCyclic, 1, 1}});
    const DistObject obj("hpf", dist);
    const DistObject back =
        adapter.deserializeDesc(adapter.serializeDesc(obj, c));
    const auto& d = back.as<hpfrt::HpfDist>();
    EXPECT_EQ(d.globalShape(), Shape::of({12, 8}));
    EXPECT_EQ(d.dims()[0].kind, hpfrt::DistKind::kBlockCyclic);
    EXPECT_EQ(d.dims()[0].param, 3);
  });
}

TEST(PartiAdapter, DescriptorRoundTrip) {
  World::runSPMD(1, [](Comm& c) {
    const PartiAdapter adapter;
    auto desc = std::make_shared<const parti::PartiDesc>(
        parti::PartiDesc{layout::BlockDecomp(Shape::of({16, 32}), {2, 2}), 2});
    const DistObject obj("parti", desc);
    const DistObject back =
        adapter.deserializeDesc(adapter.serializeDesc(obj, c));
    const auto& d = back.as<parti::PartiDesc>();
    EXPECT_EQ(d.ghost, 2);
    EXPECT_EQ(d.decomp.grid(), (std::vector<int>{2, 2}));
    EXPECT_EQ(d.decomp.globalShape(), Shape::of({16, 32}));
  });
}

TEST(TulipAdapter, DescriptorRoundTrip) {
  World::runSPMD(1, [](Comm& c) {
    const TulipAdapter adapter;
    auto desc = std::make_shared<const tulip::TulipDesc>(
        tulip::TulipDesc{100, 4, tulip::Placement::kCyclic});
    const DistObject obj("pc++", desc);
    const DistObject back =
        adapter.deserializeDesc(adapter.serializeDesc(obj, c));
    const auto& d = back.as<tulip::TulipDesc>();
    EXPECT_EQ(d.size, 100);
    EXPECT_EQ(d.placement, tulip::Placement::kCyclic);
  });
}

TEST(ChaosAdapter, DescriptorRoundTripShipsWholeTable) {
  World::runSPMD(2, [](Comm& c) {
    const ChaosAdapter adapter;
    const Index n = 30;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 11);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    const DistObject obj("chaos", table);
    const auto bytes = adapter.serializeDesc(obj, c);
    // O(global size): the cost the paper flags for duplication with Chaos.
    EXPECT_GE(bytes.size(), n * sizeof(chaos::ElementLoc));
    const DistObject back = adapter.deserializeDesc(bytes);
    const auto& t = back.as<chaos::TranslationTable>();
    EXPECT_EQ(t.storage(), chaos::TranslationTable::Storage::kReplicated);
    EXPECT_EQ(t.globalSize(), n);
    for (Index g = 0; g < n; ++g) {
      const auto want = table->dereference(c, std::vector<Index>{g})[0];
      EXPECT_EQ(t.dereferenceLocal(g), want);
    }
  });
}

TEST(ChaosAdapter, EnumerateOwnedSortedAndComplete) {
  World::runSPMD(3, [](Comm& c) {
    const ChaosAdapter adapter;
    const Index n = 40;
    const auto mine = chaos::cyclicPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    const DistObject obj("chaos", table);
    SetOfRegions set;
    std::vector<Index> ids;
    for (Index g = n - 1; g >= 0; --g) ids.push_back(g);  // reversed order
    set.add(Region::indices(ids));
    const auto owned = adapter.enumerateOwned(obj, set, c);
    // Sorted by linearization position.
    for (size_t i = 1; i < owned.size(); ++i) {
      EXPECT_LT(owned[i - 1].lin, owned[i].lin);
    }
    // Every processor owns exactly its share.
    EXPECT_EQ(static_cast<Index>(owned.size()),
              table->localCount(c.rank()));
    // lin k refers to global n-1-k; the offset must match my assignment
    // (mine[offset] is the global index stored there).
    for (const LinLoc& ll : owned) {
      const Index g = n - 1 - ll.lin;
      ASSERT_LT(static_cast<size_t>(ll.offset), mine.size());
      EXPECT_EQ(mine[static_cast<size_t>(ll.offset)], g);
    }
  });
}

}  // namespace
}  // namespace mc::core
