// Property tests for the vectorized run kernels (sched/kernels.h): every
// compiled pack/unpack/scatter-add variant must be bit-identical to the
// element-wise oracle and to the sched::reference executors on randomized
// (start,count,stride) runs — including stride 0, stride 1, and negative
// strides — with aliased src/dst buffers guarded by Footprint, and with
// float `+=` staying bitwise deterministic under both DrainOrder modes.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "chaos/localize.h"
#include "chaos/partition.h"
#include "obs/metrics.h"
#include "sched/executor.h"
#include "sched/footprint.h"
#include "sched/kernels.h"
#include "sched/reference_executor.h"
#include "transport/world.h"

namespace mc::sched {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

OffsetPlan planFromOffsets(std::vector<Index> offsets, bool compress) {
  OffsetPlan p;
  p.peer = 1;
  p.offsets = std::move(offsets);
  if (compress) {
    p.runs = compressOffsets(std::span<const Index>(p.offsets));
  }
  return p;
}

OffsetPlan planFromRuns(std::vector<OffsetRun> runs) {
  OffsetPlan p;
  p.peer = 1;
  p.runs = std::move(runs);
  return p;
}

/// Checks one plan's compiled kernels against the element-wise oracle for
/// pack, unpack, and accumulating unpack.
void checkPlanKernels(const OffsetPlan& plan, Index bufSize) {
  const std::vector<Index> offs = plan.expandedOffsets();
  const size_t n = offs.size();
  const PlanKernel kernel = PlanKernel::compile(plan);

  std::vector<double> src(static_cast<size_t>(bufSize));
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = 1.0 + 0.125 * static_cast<double>(i);
  }

  // pack: out[i] = src[offs[i]].
  std::vector<double> got(n, -1.0), want(n, -2.0);
  packKernel<double>(kernel, plan, src, got.data());
  for (size_t i = 0; i < n; ++i) want[i] = src[static_cast<size_t>(offs[i])];
  EXPECT_EQ(got, want);

  // unpack: dst[offs[i]] = buf[i], in element order (last write wins on
  // duplicate offsets — stride-0 runs).
  std::vector<double> buf(n);
  for (size_t i = 0; i < n; ++i) buf[i] = 100.0 + static_cast<double>(i);
  std::vector<double> dstGot(static_cast<size_t>(bufSize), 0.0);
  std::vector<double> dstWant(dstGot);
  unpackKernel<double>(kernel, plan, buf.data(), dstGot);
  for (size_t i = 0; i < n; ++i) {
    dstWant[static_cast<size_t>(offs[i])] = buf[i];
  }
  EXPECT_EQ(dstGot, dstWant);

  // unpackAdd: dst[offs[i]] += buf[i], element order (duplicates
  // accumulate; float order must match the oracle exactly).
  std::fill(dstGot.begin(), dstGot.end(), 0.5);
  std::fill(dstWant.begin(), dstWant.end(), 0.5);
  unpackAddKernel<double>(kernel, plan, buf.data(), dstGot);
  for (size_t i = 0; i < n; ++i) {
    dstWant[static_cast<size_t>(offs[i])] += buf[i];
  }
  EXPECT_EQ(dstGot, dstWant);
}

TEST(PlanKernel, ClassificationPicksTheExpectedVariant) {
  EXPECT_EQ(classifyPlan(planFromOffsets({}, true)), KernelKind::kEmpty);
  // Single stride-1 run.
  EXPECT_EQ(classifyPlan(planFromOffsets({4, 5, 6, 7}, true)),
            KernelKind::kContiguous);
  // Single run, count 1: contiguous (stride irrelevant).
  EXPECT_EQ(classifyPlan(planFromOffsets({9}, true)),
            KernelKind::kContiguous);
  // Single constant-stride run.
  EXPECT_EQ(classifyPlan(planFromOffsets({0, 3, 6, 9}, true)),
            KernelKind::kStrided);
  // Single descending run (negative stride).
  EXPECT_EQ(classifyPlan(planFromOffsets({9, 6, 3, 0}, true)),
            KernelKind::kStrided);
  // Many short runs: flattened to an index list.
  EXPECT_EQ(classifyPlan(planFromOffsets({0, 1, 7, 8, 3, 4, 11, 12}, true)),
            KernelKind::kIndexList);
  // Few long runs: run-wise loop.
  EXPECT_EQ(classifyPlan(planFromRuns({OffsetRun{0, 16, 1},
                                       OffsetRun{100, 16, 2}})),
            KernelKind::kRunList);
  // Uncompressed plan: the offset list is the index list.
  EXPECT_EQ(classifyPlan(planFromOffsets({5, 0, 9, 2}, false)),
            KernelKind::kIndexList);
}

TEST(PlanKernel, EdgeCaseRunsMatchElementwiseOracle) {
  // Hand-built runs covering stride 0 / 1 / negative and count 1.
  checkPlanKernels(planFromRuns({OffsetRun{10, 5, 1}}), 32);    // contiguous
  checkPlanKernels(planFromRuns({OffsetRun{3, 4, 0}}), 32);     // stride 0
  checkPlanKernels(planFromRuns({OffsetRun{20, 6, -2}}), 32);   // descending
  checkPlanKernels(planFromRuns({OffsetRun{7, 1, 99}}), 32);    // count 1
  checkPlanKernels(planFromRuns({OffsetRun{0, 8, 3}}), 32);     // strided
  // Mixed short runs (flattens), including duplicate offsets across runs.
  checkPlanKernels(planFromRuns({OffsetRun{0, 2, 1}, OffsetRun{0, 2, 1},
                                 OffsetRun{30, 2, -3}, OffsetRun{5, 1, 0}}),
                   32);
  // Long runs stay run-wise.
  checkPlanKernels(planFromRuns({OffsetRun{0, 12, 1}, OffsetRun{40, 12, 2}}),
                   80);
  checkPlanKernels(planFromOffsets({}, true), 8);  // empty
}

TEST(PlanKernel, RandomizedRunsMatchElementwiseOracle) {
  std::mt19937 rng(2026);
  std::uniform_int_distribution<int> runCount(1, 12);
  std::uniform_int_distribution<Index> count(1, 9);
  std::uniform_int_distribution<Index> stride(-3, 3);
  for (int iter = 0; iter < 200; ++iter) {
    const Index bufSize = 256;
    std::vector<OffsetRun> runs;
    const int nr = runCount(rng);
    for (int r = 0; r < nr; ++r) {
      OffsetRun run{0, count(rng), stride(rng)};
      // Place the run so every element stays inside the buffer.
      const Index span = (run.count - 1) * (run.stride < 0 ? -run.stride
                                                           : run.stride);
      std::uniform_int_distribution<Index> start(
          run.stride < 0 ? span : 0,
          run.stride < 0 ? bufSize - 1 : bufSize - 1 - span);
      run.start = start(rng);
      runs.push_back(run);
    }
    checkPlanKernels(planFromRuns(std::move(runs)), bufSize);
    // And the same pattern as an uncompressed offset plan.
    std::uniform_int_distribution<Index> off(0, bufSize - 1);
    std::vector<Index> offs(static_cast<size_t>(1 + iter % 40));
    for (Index& o : offs) o = off(rng);
    checkPlanKernels(planFromOffsets(std::move(offs), iter % 2 == 0),
                     bufSize);
  }
}

TEST(LocalKernel, FlattenGateKeepsMemmoveRunsRunwise) {
  // A (1,1)-stride run with count > 1 must NOT flatten: copyLocalRuns
  // gives it read-all-then-write (memmove) semantics under aliasing.
  Schedule overlapping;
  overlapping.localRuns = {LocalRun{0, 1, 4, 1, 1}};
  EXPECT_EQ(LocalKernel::compile(overlapping).kind, KernelKind::kRunList);
  // Count-1 and non-(1,1)-stride short runs flatten.
  Schedule fine;
  fine.localRuns = {LocalRun{0, 9, 1, 1, 1}, LocalRun{4, 2, 2, 3, 1},
                    LocalRun{7, 20, 2, 1, -1}};
  const LocalKernel k = LocalKernel::compile(fine);
  ASSERT_EQ(k.kind, KernelKind::kIndexList);
  // Flattened order == element order == copyLocalRuns order for these runs.
  std::vector<double> src = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> dst(24, -1.0);
  k.copy<double>(src, dst);
  std::vector<double> want(24, -1.0);
  copyLocalRuns<double>(std::span<const LocalRun>(fine.localRuns), src, want);
  EXPECT_EQ(dst, want);
  // add variant against addLocalRuns.
  std::fill(dst.begin(), dst.end(), 0.25);
  std::fill(want.begin(), want.end(), 0.25);
  k.add<double>(src, dst);
  addLocalRuns<double>(std::span<const LocalRun>(fine.localRuns), src, want);
  EXPECT_EQ(dst, want);
}

// --- executor-level differentials ------------------------------------------

/// An irregular gather schedule from a real localize run: every rank
/// references a shuffled sample of the global array, producing the mostly
/// count-2 random-stride plans whose dispatch the kernels exist for.
chaos::Localized irregularLocalized(Comm& c, const chaos::TranslationTable& t,
                                    Index n, unsigned seed) {
  std::mt19937 rng(seed + static_cast<unsigned>(c.rank()) * 131u);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::vector<Index> refs(static_cast<size_t>(2 * n / c.size()));
  for (Index& g : refs) g = pick(rng);
  return chaos::localize(c, t, refs);
}

TEST(KernelExecutor, IrregularGatherMatchesReferenceBitwise) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 160;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 3);
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    chaos::Localized loc = irregularLocalized(c, table, n, 17);
    loc.gatherSched.compress();

    std::vector<double> owned(mine.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      owned[i] = 1000.0 * c.rank() + static_cast<double>(i) * 0.75;
    }
    std::vector<double> ghostRef(static_cast<size_t>(loc.ghostCount), -1.0);
    reference::execute<double>(c, loc.gatherSched, owned, ghostRef,
                               c.nextUserTag());

    Executor<double> ex(c, loc.gatherSched);
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    for (int it = 0; it < 4; ++it) {
      std::fill(ghost.begin(), ghost.end(), -1.0);
      ex.run(owned, ghost);
      EXPECT_EQ(ghost, ghostRef) << "iteration " << it;
    }
  });
}

TEST(KernelExecutor, ScatterAddBitwiseDeterministicUnderBothDrainOrders) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 120;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 5);
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    chaos::Localized loc = irregularLocalized(c, table, n, 29);
    loc.scatterAddSched.compress();

    // Contributions with magnitudes that expose any reassociation.
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    for (size_t i = 0; i < ghost.size(); ++i) {
      ghost[i] = (i % 3 == 0 ? 1e16 : 1.0) * (c.rank() % 2 == 0 ? 1 : -1);
    }
    std::vector<double> ownedRef(mine.size(), 0.125);
    reference::executeAdd<double>(c, loc.scatterAddSched, ghost, ownedRef,
                                  c.nextUserTag());

    Executor<double> ex(c, loc.scatterAddSched);
    std::vector<double> owned(mine.size());
    for (const DrainOrder order : {DrainOrder::kArrival, DrainOrder::kPeer}) {
      c.barrier();
      if (c.rank() == 0) setDrainOrder(order);
      c.barrier();
      for (int it = 0; it < 4; ++it) {
        std::fill(owned.begin(), owned.end(), 0.125);
        // Shuffle real arrival order across iterations.
        if (c.rank() > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              ((c.rank() + it) % 3) * 3));
        }
        ex.runAdd(ghost, owned);
        EXPECT_EQ(owned, ownedRef) << "iteration " << it;
      }
    }
    c.barrier();
    if (c.rank() == 0) setDrainOrder(DrainOrder::kArrival);
    c.barrier();
  });
}

TEST(KernelExecutor, AliasedGhostFillGuardedByFootprint) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 96;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 9);
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    chaos::Localized loc = irregularLocalized(c, table, n, 41);
    loc.gatherSched.compress();

    // One buffer: owned elements followed by the ghost area.  The gather's
    // recv offsets index the ghost *suffix*, so shift them up and run the
    // schedule aliased (src == dst), the chaos ghost-fill idiom.
    Schedule aliased = loc.gatherSched;
    const Index base = static_cast<Index>(mine.size());
    for (OffsetPlan& p : aliased.recvs) {
      for (Index& off : p.offsets) off += base;
      for (OffsetRun& r : p.runs) r.start += base;
    }
    const size_t total = mine.size() + static_cast<size_t>(loc.ghostCount);
    std::vector<double> buf(total, -7.0);
    for (size_t i = 0; i < mine.size(); ++i) {
      buf[i] = 10.0 * c.rank() + static_cast<double>(i);
    }
    // Footprint guards the aliasing: the destination offsets the run
    // touches must all lie in the ghost suffix, never in the owned prefix
    // the pack reads from.
    const Footprint fp = Footprint::of(aliased);
    for (size_t i = 0; i < mine.size(); ++i) {
      ASSERT_FALSE(fp.dstTouched.contains(static_cast<Index>(i)));
    }

    std::vector<double> expected(buf);
    {
      std::vector<double> ghost(static_cast<size_t>(loc.ghostCount), 0.0);
      reference::execute<double>(c, loc.gatherSched, buf, ghost,
                                 c.nextUserTag());
      std::copy(ghost.begin(), ghost.end(), expected.begin() + base);
    }
    Executor<double> ex(c, aliased);
    ex.run(buf, buf);  // aliased
    EXPECT_EQ(buf, expected);
  });
}

TEST(KernelExecutor, DispatchToggleDoesNotChangeResults) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 128;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 15);
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    chaos::Localized loc = irregularLocalized(c, table, n, 53);
    loc.gatherSched.compress();
    Executor<double> ex(c, loc.gatherSched);
    std::vector<double> owned(mine.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      owned[i] = 3.0 * c.rank() + 0.5 * static_cast<double>(i);
    }
    std::vector<double> withKernels(static_cast<size_t>(loc.ghostCount));
    std::vector<double> without(withKernels);

    c.barrier();
    if (c.rank() == 0) setKernelDispatch(true);
    c.barrier();
    ex.run(owned, withKernels);
    c.barrier();
    if (c.rank() == 0) setKernelDispatch(false);
    c.barrier();
    ex.run(owned, without);
    c.barrier();
    if (c.rank() == 0) setKernelDispatch(true);
    c.barrier();
    EXPECT_EQ(withKernels, without);
  });
}

TEST(KernelExecutor, IrregularPlansDispatchToIndexListAndCount) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 160;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 23);
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    chaos::Localized loc = irregularLocalized(c, table, n, 61);
    loc.gatherSched.compress();

    const obs::Snapshot before = obs::threadRegistry().snapshot();
    Executor<double> ex(c, loc.gatherSched);
    std::vector<double> owned(mine.size(), 1.0);
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    ex.run(owned, ghost);
    const obs::Snapshot diff = obs::threadRegistry().snapshot() - before;
    // Random gathers compile to index lists; the bind recorded the
    // dispatch and the run recorded executions.
    if (!loc.gatherSched.sends.empty() || !loc.gatherSched.recvs.empty()) {
      EXPECT_GT(diff.get("kernel.dispatch.index_list"), 0.0);
      EXPECT_GT(diff.get("kernel.exec.index_list"), 0.0);
    }
  });
}

}  // namespace
}  // namespace mc::sched
