// The multi-tenant compute server: schedule-blob round trips, fused batch
// replication, bitwise equivalence of batched and serial execution (both
// at the MatvecEngine level and differentially through the full server
// protocol), admission control under overload, and attach/detach/re-attach
// session churn including zero-request tenancies.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "hpfrt/matvec.h"
#include "sched/serialize.h"
#include "server/client_session.h"
#include "server/compute_server.h"
#include "server/protocol.h"
#include "transport/world.h"

namespace mc::server {
namespace {

using layout::Index;
using layout::Point;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

double vectorEntry(Index i, int salt) {
  return static_cast<double>((i * 7 + salt) % 11) - 5.0;
}

/// Dense oracle: y[i] = sum_j matrixEntry(matrixId, i, j) * x(j).
std::vector<double> oracle(Index n, int matrixId, int salt) {
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    double acc = 0;
    for (Index j = 0; j < n; ++j) {
      acc += matrixEntry(matrixId, i, j) * vectorEntry(j, salt);
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

// ---------------------------------------------------------------------------
// Schedule blobs and batch replication (pure, no world).

sched::Schedule sampleSchedule() {
  sched::Schedule s;
  s.sends.push_back(sched::OffsetPlan{2, {0, 3, 4, 9}, {}});
  s.sends.push_back(
      sched::OffsetPlan{5, {}, {sched::OffsetRun{1, 4, 2}}});
  s.recvs.push_back(sched::OffsetPlan{1, {7, 8}, {}});
  s.localPairs.emplace_back(0, 10);
  s.localPairs.emplace_back(1, 11);
  s.localRuns.push_back(sched::LocalRun{0, 10, 2, 1, 1});
  s.bufferLocalCopies = true;
  return s;
}

TEST(ScheduleBlob, RoundTripsExactly) {
  const sched::Schedule s = sampleSchedule();
  const std::vector<std::byte> blob = sched::serializeSchedule(s);
  const sched::Schedule back = sched::deserializeSchedule(blob);
  EXPECT_EQ(back.bufferLocalCopies, s.bufferLocalCopies);
  ASSERT_EQ(back.sends.size(), s.sends.size());
  ASSERT_EQ(back.recvs.size(), s.recvs.size());
  for (std::size_t i = 0; i < s.sends.size(); ++i) {
    EXPECT_EQ(back.sends[i].peer, s.sends[i].peer);
    EXPECT_EQ(back.sends[i].offsets, s.sends[i].offsets);
    EXPECT_EQ(back.sends[i].runs, s.sends[i].runs);
  }
  EXPECT_EQ(back.localPairs, s.localPairs);
  EXPECT_EQ(back.localRuns, s.localRuns);
  // And the re-serialized bytes are identical (canonical form).
  EXPECT_EQ(sched::serializeSchedule(back), blob);
}

TEST(ScheduleBlob, TruncatedOrCorruptBlobRejected) {
  const std::vector<std::byte> blob =
      sched::serializeSchedule(sampleSchedule());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 blob.size() - 1}) {
    EXPECT_THROW(sched::deserializeSchedule(
                     std::span<const std::byte>(blob.data(), keep)),
                 Error)
        << "kept " << keep << " bytes";
  }
  std::vector<std::byte> bad = blob;
  bad[0] = std::byte{0xff};  // first magic byte of the container header
  EXPECT_THROW(sched::deserializeSchedule(bad), Error);
}

TEST(BatchReplicate, ShiftsEachCopyByTheStride) {
  sched::Schedule s;
  s.sends.push_back(sched::OffsetPlan{1, {0, 2}, {}});
  s.recvs.push_back(
      sched::OffsetPlan{1, {}, {sched::OffsetRun{1, 3, 1}}});
  const sched::Schedule fused = sched::batchReplicate(
      s, 3, /*sendStride=*/4, /*recvStride=*/8);
  ASSERT_EQ(fused.sends.size(), 1u);
  EXPECT_EQ(fused.sends[0].offsets,
            (std::vector<Index>{0, 2, 4, 6, 8, 10}));
  ASSERT_EQ(fused.recvs.size(), 1u);
  ASSERT_EQ(fused.recvs[0].runs.size(), 3u);
  EXPECT_EQ(fused.recvs[0].runs[0], (sched::OffsetRun{1, 3, 1}));
  EXPECT_EQ(fused.recvs[0].runs[1], (sched::OffsetRun{9, 3, 1}));
  EXPECT_EQ(fused.recvs[0].runs[2], (sched::OffsetRun{17, 3, 1}));
  // k=1 is the identity.
  const sched::Schedule same = sched::batchReplicate(s, 1, 4, 8);
  EXPECT_EQ(sched::serializeSchedule(same), sched::serializeSchedule(s));
}

// ---------------------------------------------------------------------------
// MatvecEngine::multiplyBatch is bitwise multiply(), per vector.

TEST(MultiplyBatch, BitIdenticalToSingleMultiplies) {
  const Index n = 24;
  const int k = 3;
  std::atomic<int> mismatches{0};
  World::runSPMD(4, [&](Comm& c) {
    hpfrt::HpfArray<double> A(c, hpfrt::matvecMatrixDist(n, c.size()));
    hpfrt::HpfArray<double> x(c, hpfrt::matvecVectorDist(n, c.size()));
    hpfrt::HpfArray<double> y(c, hpfrt::matvecVectorDist(n, c.size()));
    A.fillByPoint([](const Point& p) {
      return matrixEntry(0, p[0], p[1]);
    });
    hpfrt::MatvecEngine<double> engine(x);
    const Index localLen = engine.operandLocalLen();
    const Index myRows = A.dist().localShape(c.rank())[0];

    std::vector<double> xs(static_cast<std::size_t>(k * localLen));
    std::vector<double> ref(static_cast<std::size_t>(k * myRows));
    for (int j = 0; j < k; ++j) {
      x.fillByPoint([&](const Point& p) { return vectorEntry(p[0], j); });
      std::memcpy(xs.data() + static_cast<std::size_t>(j * localLen),
                  x.raw().data(), sizeof(double) * x.raw().size());
      engine.multiply(A, x, y);
      std::memcpy(ref.data() + static_cast<std::size_t>(j * myRows),
                  y.raw().data(), sizeof(double) * y.raw().size());
    }

    std::vector<double> ys(static_cast<std::size_t>(k * myRows), -1.0);
    engine.multiplyBatch(A, xs, ys, k);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (ys[i] != ref[i]) mismatches.fetch_add(1);  // exact, not NEAR
    }
    // k=1 through the batch path matches too.
    std::vector<double> y1(static_cast<std::size_t>(myRows), -1.0);
    engine.multiplyBatch(
        A, std::span<const double>(xs.data(), static_cast<std::size_t>(localLen)),
        y1, 1);
    for (std::size_t i = 0; i < y1.size(); ++i) {
      if (y1[i] != ref[i]) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Full protocol: one client against the server, checked against the oracle.

TEST(ComputeServer, SingleClientMatchesDenseOracle) {
  const Index n = 48;
  std::vector<double> got;
  ServerStats stats;
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"client", 2, [&](Comm& c) {
    SessionConfig cfg;
    cfg.n = n;
    cfg.serverProgram = 1;
    ClientSession session(c, cfg);
    const AttachStats as = session.attach();
    EXPECT_FALSE(as.sharedSchedule);
    EXPECT_TRUE(as.shippedMatrix);
    session.x().fillByPoint([](const Point& p) {
      return vectorEntry(p[0], 7);
    });
    const RequestResult r = session.request();
    EXPECT_GT(r.latencySeconds, 0.0);
    EXPECT_GT(r.serverComputeSeconds, 0.0);
    const std::vector<double> g = session.y().gatherGlobal();
    if (c.rank() == 0) got = g;
    session.detach();
  }});
  specs.push_back(ProgramSpec{"server", 3, [&](Comm& c) {
    ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = 1;
    ComputeServer srv(c, cfg);
    srv.run();
    if (c.rank() == 0) stats = srv.stats();
  }});
  World::run(specs);

  const std::vector<double> want = oracle(n, 0, 7);
  ASSERT_GE(got.size(), static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)],
                std::abs(want[static_cast<std::size_t>(i)]) * 1e-12 + 1e-12)
        << "row " << i;
  }
  EXPECT_EQ(stats.attaches, 1u);
  EXPECT_EQ(stats.detaches, 1u);
  EXPECT_EQ(stats.schedShareMisses, 1u);
  EXPECT_EQ(stats.matrixShips, 1u);
}

// ---------------------------------------------------------------------------
// Differential test: batched execution must be bit-identical to serial
// per-request execution through the whole protocol — same clients, same
// requests, maxBatch 4 vs 1.

std::vector<std::vector<double>> runClientsAndCollect(int numClients,
                                                      int requestsEach,
                                                      Index n, int maxBatch) {
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(numClients * requestsEach));
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", 4, [&](Comm& c) {
    ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = numClients;
    cfg.maxBatch = maxBatch;
    ComputeServer(c, cfg).run();
  }});
  for (int i = 0; i < numClients; ++i) {
    specs.push_back(ProgramSpec{"client" + std::to_string(i), 1,
                                [&, i](Comm& c) {
      SessionConfig cfg;
      cfg.n = n;
      cfg.pad = (i % 2) ? 5 : 0;  // two layouts -> mixed-compatibility pool
      cfg.matrixId = i % 2;
      cfg.serverProgram = 0;
      ClientSession session(c, cfg);
      session.attach();
      for (int it = 0; it < requestsEach; ++it) {
        session.x().fillByPoint([&](const Point& p) {
          return vectorEntry(p[0], i * 31 + it);
        });
        session.request();
        std::vector<double> g = session.y().gatherGlobal();
        g.resize(static_cast<std::size_t>(n));  // drop the pad tail
        results[static_cast<std::size_t>(i * requestsEach + it)] =
            std::move(g);
      }
      session.detach();
    }});
  }
  World::run(specs);
  return results;
}

TEST(ComputeServer, BatchedExecutionBitIdenticalToSerial) {
  const Index n = 32;
  const int numClients = 6, requestsEach = 3;
  const auto batched = runClientsAndCollect(numClients, requestsEach, n, 4);
  const auto serial = runClientsAndCollect(numClients, requestsEach, n, 1);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t r = 0; r < batched.size(); ++r) {
    ASSERT_EQ(batched[r].size(), serial[r].size()) << "request " << r;
    for (std::size_t i = 0; i < batched[r].size(); ++i) {
      // Exact bitwise agreement — the accumulation order must not depend
      // on batch composition.
      EXPECT_EQ(batched[r][i], serial[r][i])
          << "request " << r << " element " << i;
    }
  }
  // And both agree with the dense oracle.
  for (int i = 0; i < numClients; ++i) {
    for (int it = 0; it < requestsEach; ++it) {
      const std::vector<double> want = oracle(n, i % 2, i * 31 + it);
      const auto& got =
          batched[static_cast<std::size_t>(i * requestsEach + it)];
      for (Index r = 0; r < n; ++r) {
        EXPECT_NEAR(got[static_cast<std::size_t>(r)],
                    want[static_cast<std::size_t>(r)],
                    std::abs(want[static_cast<std::size_t>(r)]) * 1e-12 +
                        1e-12);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Admission control: a depth-1 queue under 8 greedy clients must bounce
// first attempts with a hint, never exceed its bound, and still serve
// every request via deferred grants.

TEST(ComputeServer, AdmissionControlBoundsQueueAndServesAll) {
  const Index n = 32;
  const int numClients = 8, requestsEach = 2;
  std::atomic<int> served{0};
  std::atomic<int> backedOff{0};
  ServerStats stats;
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", 2, [&](Comm& c) {
    ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = numClients;
    cfg.queueDepth = 1;
    cfg.maxBatch = 1;
    ComputeServer srv(c, cfg);
    srv.run();
    if (c.rank() == 0) stats = srv.stats();
  }});
  for (int i = 0; i < numClients; ++i) {
    specs.push_back(ProgramSpec{"client" + std::to_string(i), 1,
                                [&, i](Comm& c) {
      SessionConfig cfg;
      cfg.n = n;
      cfg.serverProgram = 0;
      ClientSession session(c, cfg);
      session.attach();
      for (int it = 0; it < requestsEach; ++it) {
        session.x().fillByPoint([&](const Point& p) {
          return vectorEntry(p[0], i + it);
        });
        const RequestResult r = session.request();
        if (r.latencySeconds > 0) served.fetch_add(1);
        if (r.backedOff) backedOff.fetch_add(1);
      }
      session.detach();
    }});
  }
  World::run(specs);

  EXPECT_EQ(served.load(), numClients * requestsEach);
  // 8 concurrent submits cannot fit a depth-1 queue: some were bounced.
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(backedOff.load()));
  EXPECT_LE(stats.maxQueueDepth, 1u);
  // Every request is granted exactly once (directly or as a deferred
  // grant), and a retry is only ever held, never re-bounced.
  EXPECT_EQ(stats.admitted,
            static_cast<std::uint64_t>(numClients * requestsEach));
  EXPECT_LE(stats.deferred, stats.rejected);
}

// ---------------------------------------------------------------------------
// Session churn: attach / request / detach / re-attach, with zero-request
// tenancies mixed in, across layouts and matrices.

TEST(ComputeServer, AttachDetachChurnWithZeroRequestSessions) {
  const Index n = 32;
  const int numClients = 4, sessionsEach = 2;
  const Index pads[] = {0, 5, 9};
  std::atomic<int> badResults{0};
  ServerStats stats;
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", 3, [&](Comm& c) {
    ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = numClients * sessionsEach;
    cfg.queueDepth = 4;
    cfg.maxBatch = 4;
    ComputeServer srv(c, cfg);
    srv.run();
    if (c.rank() == 0) stats = srv.stats();
  }});
  for (int i = 0; i < numClients; ++i) {
    specs.push_back(ProgramSpec{"client" + std::to_string(i), 1,
                                [&, i](Comm& c) {
      for (int s = 0; s < sessionsEach; ++s) {
        SessionConfig cfg;
        cfg.n = n;
        cfg.pad = pads[(i + s) % 3];
        cfg.matrixId = (i + s) % 2;
        cfg.serverProgram = 0;
        ClientSession session(c, cfg);
        session.attach();
        const int requests = (i + s) % 3;  // 0, 1 or 2 per tenancy
        for (int it = 0; it < requests; ++it) {
          const int salt = 100 * i + 10 * s + it;
          session.x().fillByPoint([&](const Point& p) {
            return vectorEntry(p[0], salt);
          });
          session.request();
          const std::vector<double> got = session.y().gatherGlobal();
          const std::vector<double> want = oracle(n, cfg.matrixId, salt);
          for (Index r = 0; r < n; ++r) {
            const double w = want[static_cast<std::size_t>(r)];
            if (std::abs(got[static_cast<std::size_t>(r)] - w) >
                std::abs(w) * 1e-12 + 1e-12) {
              badResults.fetch_add(1);
            }
          }
        }
        session.detach();
      }
    }});
  }
  World::run(specs);

  EXPECT_EQ(badResults.load(), 0);
  EXPECT_EQ(stats.attaches,
            static_cast<std::uint64_t>(numClients * sessionsEach));
  EXPECT_EQ(stats.detaches, stats.attaches);
  EXPECT_EQ(stats.schedShareHits + stats.schedShareMisses, stats.attaches);
  // 8 tenancies over 3 layouts: later identical layouts must have hit.
  EXPECT_GT(stats.schedShareHits, 0u);
  EXPECT_LE(stats.schedShareMisses, 3u);
  // Both matrices shipped exactly once despite re-attaches.
  EXPECT_EQ(stats.matrixShips, 2u);
}

}  // namespace
}  // namespace mc::server
