// Unit tests for src/util.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mc {
namespace {

TEST(Format, Basic) {
  EXPECT_EQ(strprintf("x=%d y=%s", 7, "ab"), "x=7 y=ab");
  EXPECT_EQ(strprintf("%.2f", 1.2345), "1.23");
}

TEST(Format, Empty) { EXPECT_EQ(strprintf("%s", ""), ""); }

TEST(Format, Long) {
  std::string big(10000, 'z');
  EXPECT_EQ(strprintf("%s", big.c_str()).size(), 10000u);
}

TEST(Error, RequirePassesThrough) {
  EXPECT_NO_THROW(MC_REQUIRE(1 + 1 == 2));
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    MC_REQUIRE(false, "bad value %d", 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad value 42"), std::string::npos);
    EXPECT_NE(what.find("requirement failed"), std::string::npos);
  }
}

TEST(Error, RequireThrowsWithoutMessage) {
  EXPECT_THROW(MC_REQUIRE(false), Error);
}

TEST(Stats, EmptyIsExplicit) {
  // An empty accumulator must be distinguishable from a real zero: NaN, not
  // 0.0 (the accounting bug fixed with the observability layer).
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Stats, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(11);
  auto p = r.permutation(257);
  std::vector<bool> seen(257, false);
  for (auto x : p) {
    ASSERT_LT(x, 257u);
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(Rng, PermutationNotIdentity) {
  Rng r(13);
  auto p = r.permutation(100);
  bool moved = false;
  for (std::uint64_t i = 0; i < 100; ++i) moved |= (p[i] != i);
  EXPECT_TRUE(moved);
}

TEST(Table, RendersAligned) {
  AsciiTable t;
  t.header({"method", "P=2", "P=4"});
  t.row({"chaos", "1099", "830"});
  t.row({"meta-chaos", "1509", "832"});
  const std::string out = t.render();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("meta-chaos"), std::string::npos);
  // Columns align: both data rows place "P=2" numbers at the same offset.
  const auto l1 = out.find("1099");
  const auto l2 = out.find("1509");
  const auto row1 = out.rfind('\n', l1);
  const auto row2 = out.rfind('\n', l2);
  EXPECT_EQ(l1 - row1, l2 - row2);
}

TEST(Table, SeparatorLine) {
  AsciiTable t;
  t.row({"a", "b"});
  t.separator();
  t.row({"c", "d"});
  EXPECT_NE(t.render().find("---"), std::string::npos);
}

}  // namespace
}  // namespace mc
