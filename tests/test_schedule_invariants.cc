// Traffic invariants of schedule execution (paper Section 4.1.4): a
// schedule ships at most one message per processor pair, N executions cost
// exactly N times the traffic of one, and neither run compression nor cache
// reuse changes what goes over the wire.
#include <gtest/gtest.h>

#include <set>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"
#include "parti/sched_cache.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

/// Structural half of the invariant: plans are sorted by peer, peers are
/// distinct and never the executing rank, and no plan is empty (an empty
/// plan would still cost a message).
void expectOneMessagePerPair(const sched::Schedule& plan, int me) {
  for (const auto* list : {&plan.sends, &plan.recvs}) {
    std::set<int> peers;
    for (const sched::OffsetPlan& p : *list) {
      EXPECT_NE(p.peer, me);
      EXPECT_GT(p.elementCount(), 0);
      EXPECT_TRUE(peers.insert(p.peer).second)
          << "two plans for peer " << p.peer;
    }
    for (size_t i = 1; i < list->size(); ++i) {
      EXPECT_LT((*list)[i - 1].peer, (*list)[i].peer);
    }
  }
}

struct Meshes {
  std::shared_ptr<parti::BlockDistArray<double>> a;
  std::shared_ptr<chaos::IrregArray<double>> x;
  DistObject aObj;
  DistObject xObj;
  SetOfRegions aSet;
  SetOfRegions xSet;
};

Meshes makeMeshes(Comm& c) {
  auto a = std::make_shared<parti::BlockDistArray<double>>(c, Shape::of({8, 8}),
                                                           /*ghost=*/1);
  a->fillByPoint(
      [](const Point& p) { return static_cast<double>(p[0] * 8 + p[1]); });
  const Index n = 64;
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 11);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n, chaos::TranslationTable::Storage::kDistributed));
  auto x = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  x->fillByGlobal([](Index) { return 0.0; });
  Meshes m{a,  x, PartiAdapter::describe(*a), ChaosAdapter::describe(*x),
           {}, {}};
  m.aSet.add(Region::section(RegularSection::box({0, 0}, {7, 7})));
  std::vector<Index> ids(64);
  for (Index k = 0; k < 64; ++k) ids[static_cast<size_t>(k)] = k;
  m.xSet.add(Region::indices(ids));
  return m;
}

TEST(ScheduleInvariants, NExecutionsCostExactlyNTimesOneExecution) {
  World::runSPMD(4, [](Comm& c) {
    Meshes m = makeMeshes(c);
    const McSchedule sched =
        computeSchedule(c, m.aObj, m.aSet, m.xObj, m.xSet);
    expectOneMessagePerPair(sched.plan, c.rank());

    // One execution, measured.
    c.barrier();
    c.resetStats();
    dataMove<double>(c, sched, m.a->raw(), m.x->raw());
    const auto one = c.stats();
    EXPECT_EQ(one.messagesSent, sched.plan.sends.size());
    EXPECT_EQ(one.messagesReceived, sched.plan.recvs.size());
    EXPECT_EQ(one.bytesSent,
              sizeof(double) *
                  static_cast<std::uint64_t>(sched.plan.totalSendElements()));

    // N further executions: exactly N times the traffic, no drift.
    const int kReps = 5;
    c.barrier();
    c.resetStats();
    for (int i = 0; i < kReps; ++i) {
      dataMove<double>(c, sched, m.a->raw(), m.x->raw());
    }
    const auto many = c.stats();
    EXPECT_EQ(many.messagesSent, kReps * one.messagesSent);
    EXPECT_EQ(many.messagesReceived, kReps * one.messagesReceived);
    EXPECT_EQ(many.bytesSent, kReps * one.bytesSent);
    EXPECT_EQ(many.bytesReceived, kReps * one.bytesReceived);
  });
}

TEST(ScheduleInvariants, RunCompressionDoesNotChangeTraffic) {
  World::runSPMD(3, [](Comm& c) {
    Meshes m = makeMeshes(c);
    McSchedule plain = computeSchedule(c, m.aObj, m.aSet, m.xObj, m.xSet);
    McSchedule fast = plain;
    fast.plan.compress();
    ASSERT_TRUE(fast.plan.compressed());

    c.barrier();
    c.resetStats();
    dataMove<double>(c, plain, m.a->raw(), m.x->raw());
    const auto before = c.stats();
    const auto plainResult = m.x->gatherGlobal();

    c.barrier();
    c.resetStats();
    dataMove<double>(c, fast, m.a->raw(), m.x->raw());
    const auto after = c.stats();

    EXPECT_EQ(before.messagesSent, after.messagesSent);
    EXPECT_EQ(before.bytesSent, after.bytesSent);
    EXPECT_EQ(before.messagesReceived, after.messagesReceived);
    EXPECT_EQ(before.bytesReceived, after.bytesReceived);
    EXPECT_EQ(m.x->gatherGlobal(), plainResult);
  });
}

TEST(ScheduleInvariants, CacheHitAvoidsBuildTraffic) {
  World::runSPMD(3, [](Comm& c) {
    Meshes m = makeMeshes(c);

    // Miss: pays the full collective build (chaos dereference traffic).
    ScheduleCache cache;
    c.barrier();
    c.resetStats();
    const auto first = cache.getOrBuild(c, m.aObj, m.aSet, m.xObj, m.xSet);
    const auto missTraffic = c.stats();

    // Hit: only the hit/miss agreement reduction remains.
    c.barrier();
    c.resetStats();
    const auto second = cache.getOrBuild(c, m.aObj, m.aSet, m.xObj, m.xSet);
    const auto hitTraffic = c.stats();

    EXPECT_EQ(first.get(), second.get());
    // The agreement is a handful of tiny messages; the build moved the whole
    // dereference volume.  Sum over ranks so the comparison is not skewed by
    // which rank pays which half of a reduction.
    const auto sumBytes = [&](const transport::TrafficStats& s) {
      return c.allreduceSum(static_cast<double>(s.bytesSent));
    };
    const double missBytes = sumBytes(missTraffic);
    const double hitBytes = sumBytes(hitTraffic);
    EXPECT_LT(hitBytes, missBytes);

    // Pure-local caches (analytic descriptors) hit with zero traffic.
    parti::partiScheduleCache().clear();
    parti::partiScheduleCache().resetStats();
    (void)parti::cachedGhostSchedule(m.a->desc(), c.rank());
    c.barrier();
    c.resetStats();
    const auto g = parti::cachedGhostSchedule(m.a->desc(), c.rank());
    EXPECT_EQ(c.stats().messagesSent, 0u);
    EXPECT_EQ(c.stats().bytesSent, 0u);
    EXPECT_NE(g, nullptr);
    EXPECT_EQ(parti::partiScheduleCache().stats().hits, 1u);
  });
}

TEST(ScheduleInvariants, ReverseSchedulePreservesMessageMinimality) {
  World::runSPMD(3, [](Comm& c) {
    Meshes m = makeMeshes(c);
    const McSchedule fwd = computeSchedule(c, m.aObj, m.aSet, m.xObj, m.xSet);
    const McSchedule rev = reverseSchedule(fwd);
    expectOneMessagePerPair(rev.plan, c.rank());
    // Reverse swaps the halves exactly: same per-peer traffic, other way.
    ASSERT_EQ(rev.plan.sends.size(), fwd.plan.recvs.size());
    for (size_t i = 0; i < rev.plan.sends.size(); ++i) {
      EXPECT_EQ(rev.plan.sends[i].peer, fwd.plan.recvs[i].peer);
      EXPECT_EQ(rev.plan.sends[i].expandedOffsets(),
                fwd.plan.recvs[i].expandedOffsets());
    }

    c.barrier();
    c.resetStats();
    dataMove<double>(c, rev, m.x->raw(), m.a->raw());
    EXPECT_EQ(c.stats().messagesSent, rev.plan.sends.size());
    EXPECT_EQ(c.stats().messagesReceived, rev.plan.recvs.size());
  });
}

}  // namespace
}  // namespace mc::core
