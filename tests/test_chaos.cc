// Tests for the Chaos-like library: partitioners, translation tables,
// localize inspector, gather/scatter-add executors, native copies, and the
// Figure-1 edge sweep.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "chaos/irreg_array.h"
#include "chaos/irreg_copy.h"
#include "chaos/irregular_loop.h"
#include "chaos/localize.h"
#include "chaos/partition.h"
#include "chaos/ttable.h"
#include "transport/world.h"

namespace mc::chaos {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

using PartitionFn = std::vector<Index> (*)(Index, int, int);

std::vector<Index> randomPart(Index n, int np, int r) {
  return randomPartition(n, np, r, 42);
}

// --- partitioners -----------------------------------------------------------

class PartitionP
    : public ::testing::TestWithParam<std::tuple<PartitionFn, Index, int>> {};

TEST_P(PartitionP, CoversExactlyOnce) {
  const auto [fn, n, np] = GetParam();
  std::set<Index> seen;
  for (int r = 0; r < np; ++r) {
    for (Index g : fn(n, np, r)) {
      EXPECT_TRUE(seen.insert(g).second) << "duplicate " << g;
      EXPECT_GE(g, 0);
      EXPECT_LT(g, n);
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), n);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionP,
    ::testing::Combine(
        ::testing::Values(static_cast<PartitionFn>(blockPartition),
                          static_cast<PartitionFn>(cyclicPartition),
                          static_cast<PartitionFn>(randomPart)),
        ::testing::Values<Index>(1, 17, 256),
        ::testing::Values(1, 3, 8)));

TEST(Partition, BlockIsContiguous) {
  const auto p = blockPartition(10, 3, 1);
  ASSERT_EQ(p.size(), 4u);  // ceil(10/3)=4 -> proc1 owns 4..7
  EXPECT_EQ(p.front(), 4);
  EXPECT_EQ(p.back(), 7);
}

TEST(Partition, CyclicStridesByP) {
  const auto p = cyclicPartition(10, 4, 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 2);
  EXPECT_EQ(p[1], 6);
}

TEST(Partition, RandomDiffersFromBlock) {
  const auto r = randomPartition(64, 4, 0, 7);
  const auto b = blockPartition(64, 4, 0);
  EXPECT_NE(r, b);
}

TEST(Partition, RandomIsSeedStable) {
  EXPECT_EQ(randomPartition(100, 4, 2, 5), randomPartition(100, 4, 2, 5));
  EXPECT_NE(randomPartition(100, 4, 2, 5), randomPartition(100, 4, 2, 6));
}

// --- translation tables -----------------------------------------------------

class TTableP : public ::testing::TestWithParam<
                    std::tuple<TranslationTable::Storage, PartitionFn, int>> {};

TEST_P(TTableP, DereferenceAgreesWithPartition) {
  const auto [storage, fn, np] = GetParam();
  const Index n = 97;
  World::runSPMD(np, [&, storage, fn](Comm& c) {
    const auto mine = fn(n, c.size(), c.rank());
    const auto table = TranslationTable::build(c, mine, n, storage);
    EXPECT_EQ(table.globalSize(), n);
    EXPECT_EQ(table.localCount(c.rank()), static_cast<Index>(mine.size()));
    // Every processor queries every global index.
    std::vector<Index> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    const auto locs = table.dereference(c, all);
    // Verify against the partitioner ground truth.
    for (int r = 0; r < c.size(); ++r) {
      const auto owned = fn(n, c.size(), r);
      for (size_t i = 0; i < owned.size(); ++i) {
        const ElementLoc& loc = locs[static_cast<size_t>(owned[i])];
        EXPECT_EQ(loc.proc, r);
        EXPECT_EQ(loc.offset, static_cast<Index>(i));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    StorageAndPartition, TTableP,
    ::testing::Combine(
        ::testing::Values(TranslationTable::Storage::kReplicated,
                          TranslationTable::Storage::kDistributed),
        ::testing::Values(static_cast<PartitionFn>(blockPartition),
                          static_cast<PartitionFn>(cyclicPartition),
                          static_cast<PartitionFn>(randomPart)),
        ::testing::Values(1, 2, 5)));

TEST(TTable, RejectsIncompleteCover) {
  EXPECT_THROW(World::runSPMD(2,
                              [](Comm& c) {
                                // Both procs claim the same block; coverage
                                // check must fire.
                                auto mine = blockPartition(10, 2, 0);
                                TranslationTable::build(
                                    c, mine, 10,
                                    TranslationTable::Storage::kDistributed);
                              }),
               Error);
}

TEST(TTable, RejectsOutOfRangeIndex) {
  EXPECT_THROW(World::runSPMD(1,
                              [](Comm& c) {
                                std::vector<Index> mine{0, 1, 99};
                                TranslationTable::build(
                                    c, mine, 3,
                                    TranslationTable::Storage::kReplicated);
                              }),
               Error);
}

TEST(TTable, LocalDereferenceRequiresReplicated) {
  World::runSPMD(2, [](Comm& c) {
    const auto mine = blockPartition(8, 2, c.rank());
    const auto dist = TranslationTable::build(
        c, mine, 8, TranslationTable::Storage::kDistributed);
    EXPECT_THROW(dist.dereferenceLocal(0), Error);
    const auto repl = TranslationTable::build(
        c, mine, 8, TranslationTable::Storage::kReplicated);
    EXPECT_EQ(repl.dereferenceLocal(5).proc, 1);
    EXPECT_EQ(repl.dereferenceLocal(5).offset, 1);
  });
}

TEST(TTable, GatherFullMatchesBothStorages) {
  World::runSPMD(4, [](Comm& c) {
    const auto mine = randomPartition(50, c.size(), c.rank(), 3);
    const auto dist = TranslationTable::build(
        c, mine, 50, TranslationTable::Storage::kDistributed);
    const auto repl = TranslationTable::build(
        c, mine, 50, TranslationTable::Storage::kReplicated);
    const auto fullD = dist.gatherFull(c);
    const auto fullR = repl.gatherFull(c);
    ASSERT_EQ(fullD.size(), 50u);
    EXPECT_EQ(fullD, fullR);
  });
}

TEST(TTable, DereferenceEmptyQuery) {
  World::runSPMD(2, [](Comm& c) {
    const auto mine = blockPartition(8, 2, c.rank());
    const auto t = TranslationTable::build(
        c, mine, 8, TranslationTable::Storage::kDistributed);
    EXPECT_TRUE(t.dereference(c, {}).empty());
  });
}

// --- irregular arrays -------------------------------------------------------

TEST(IrregArray, FillAndGatherGlobal) {
  World::runSPMD(3, [](Comm& c) {
    const Index n = 31;
    const auto mine = randomPartition(n, c.size(), c.rank(), 9);
    auto table = std::make_shared<TranslationTable>(TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kDistributed));
    IrregArray<double> x(c, table, mine);
    x.fillByGlobal([](Index g) { return 10.0 * static_cast<double>(g); });
    const auto global = x.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(global[static_cast<size_t>(g)], 10.0 * static_cast<double>(g));
    }
  });
}

TEST(IrregArray, RejectsMismatchedAssignment) {
  EXPECT_THROW(
      World::runSPMD(2,
                     [](Comm& c) {
                       const auto mine = blockPartition(10, 2, c.rank());
                       auto table = std::make_shared<TranslationTable>(
                           TranslationTable::build(
                               c, mine, 10,
                               TranslationTable::Storage::kReplicated));
                       auto wrong = mine;
                       wrong.pop_back();
                       IrregArray<double> x(c, table, wrong);
                     }),
      Error);
}

// --- localize + gather/scatter ----------------------------------------------

TEST(Localize, LocalIndicesResolveReferences) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 40;
    const auto mine = cyclicPartition(n, c.size(), c.rank());
    const auto table = TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kDistributed);
    auto tablePtr = std::make_shared<TranslationTable>(table);
    IrregArray<double> x(c, tablePtr, mine);
    x.fillByGlobal([](Index g) { return static_cast<double>(g) + 0.5; });

    // Each proc references a window of globals, with repeats.
    std::vector<Index> refs;
    for (Index k = 0; k < 20; ++k) refs.push_back((c.rank() * 7 + k) % n);
    refs.push_back(refs[0]);  // duplicate
    const Localized loc = localize(c, table, refs);

    ASSERT_EQ(loc.localIndices.size(), refs.size());
    // Duplicates share a slot.
    EXPECT_EQ(loc.localIndices.front(), loc.localIndices.back());

    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    gatherGhosts<double>(c, loc, x.raw(), ghost);
    const Index owned = x.localCount();
    for (size_t i = 0; i < refs.size(); ++i) {
      const Index li = loc.localIndices[i];
      const double v = li < owned
                           ? x.raw()[static_cast<size_t>(li)]
                           : ghost[static_cast<size_t>(li - owned)];
      EXPECT_DOUBLE_EQ(v, static_cast<double>(refs[i]) + 0.5);
    }
  });
}

TEST(Localize, NoGhostsForAllLocalRefs) {
  World::runSPMD(2, [](Comm& c) {
    const Index n = 16;
    const auto mine = blockPartition(n, c.size(), c.rank());
    const auto table = TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kDistributed);
    const Localized loc = localize(c, table, mine);
    EXPECT_EQ(loc.ghostCount, 0);
    EXPECT_TRUE(loc.gatherSched.sends.empty() || c.size() == 1);
    EXPECT_TRUE(loc.gatherSched.recvs.empty());
  });
}

TEST(Localize, ScatterAddAccumulatesToOwners) {
  World::runSPMD(3, [](Comm& c) {
    const Index n = 12;
    const auto mine = cyclicPartition(n, c.size(), c.rank());
    const auto table = TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kReplicated);
    auto tablePtr = std::make_shared<TranslationTable>(table);
    IrregArray<double> y(c, tablePtr, mine);
    y.fillByGlobal([](Index) { return 1.0; });

    // Every proc contributes +g to every global element.
    std::vector<Index> refs(static_cast<size_t>(n));
    std::iota(refs.begin(), refs.end(), 0);
    const Localized loc = localize(c, table, refs);
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount), 0.0);
    const Index owned = y.localCount();
    for (size_t i = 0; i < refs.size(); ++i) {
      const Index li = loc.localIndices[i];
      const double v = static_cast<double>(refs[i]);
      if (li < owned) {
        y.raw()[static_cast<size_t>(li)] += v;
      } else {
        ghost[static_cast<size_t>(li - owned)] += v;
      }
    }
    scatterAddGhosts<double>(c, loc, ghost, y.raw());
    const auto global = y.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      // 1 + 3 procs x g
      EXPECT_DOUBLE_EQ(global[static_cast<size_t>(g)],
                       1.0 + 3.0 * static_cast<double>(g));
    }
  });
}

TEST(Localize, MessageAggregation) {
  // All off-proc references to one owner travel in a single message.
  World::runSPMD(2, [](Comm& c) {
    const Index n = 100;
    const auto mine = blockPartition(n, c.size(), c.rank());
    const auto table = TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kReplicated);
    // Proc 0 references 30 elements owned by proc 1 and vice versa.
    std::vector<Index> refs;
    for (Index k = 0; k < 30; ++k) {
      refs.push_back(c.rank() == 0 ? 50 + k : k);
    }
    const Localized loc = localize(c, table, refs);
    auto tablePtr = std::make_shared<TranslationTable>(table);
    IrregArray<double> x(c, tablePtr, mine);
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    c.resetStats();
    gatherGhosts<double>(c, loc, x.raw(), ghost);
    EXPECT_EQ(c.stats().messagesSent, 1u);
    EXPECT_EQ(c.stats().messagesReceived, 1u);
    EXPECT_EQ(c.stats().bytesReceived, 30 * sizeof(double));
  });
}

// --- chaos-native copy ------------------------------------------------------

TEST(IrregCopy, MovesMappedElements) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 64;
    // Destination: irregularly distributed array.
    const auto dstMine = randomPartition(n, c.size(), c.rank(), 17);
    auto dstTable = std::make_shared<TranslationTable>(TranslationTable::build(
        c, dstMine, n, TranslationTable::Storage::kDistributed));
    IrregArray<double> dst(c, dstTable, dstMine);
    // Source: block distributed; the mapping reverses the array.
    const auto srcMine = blockPartition(n, c.size(), c.rank());
    auto srcTable = std::make_shared<TranslationTable>(TranslationTable::build(
        c, srcMine, n, TranslationTable::Storage::kDistributed));
    IrregArray<double> src(c, srcTable, srcMine);
    src.fillByGlobal([](Index g) { return static_cast<double>(g); });

    // My mapping entries: for each locally owned source element i (global g),
    // destination global = n-1-g.
    std::vector<Index> srcOffsets;
    std::vector<Index> dstGlobals;
    for (size_t i = 0; i < srcMine.size(); ++i) {
      srcOffsets.push_back(static_cast<Index>(i));
      dstGlobals.push_back(n - 1 - srcMine[i]);
    }
    const auto sched = buildIrregCopySchedule(c, *dstTable, srcOffsets, dstGlobals);
    executeChaosCopy<double>(c, sched, src.raw(), dst.raw(), c.nextUserTag());
    const auto global = dst.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(global[static_cast<size_t>(g)],
                       static_cast<double>(n - 1 - g));
    }
  });
}

TEST(IrregCopy, ScheduleIsSymmetric) {
  // reverse(schedule) copies the data back (paper Section 4.3 symmetry).
  World::runSPMD(2, [](Comm& c) {
    const Index n = 20;
    const auto aMine = blockPartition(n, c.size(), c.rank());
    const auto bMine = cyclicPartition(n, c.size(), c.rank());
    auto aTable = std::make_shared<TranslationTable>(TranslationTable::build(
        c, aMine, n, TranslationTable::Storage::kReplicated));
    auto bTable = std::make_shared<TranslationTable>(TranslationTable::build(
        c, bMine, n, TranslationTable::Storage::kReplicated));
    IrregArray<double> a(c, aTable, aMine);
    IrregArray<double> b(c, bTable, bMine);
    a.fillByGlobal([](Index g) { return static_cast<double>(g * g); });

    std::vector<Index> srcOffsets;
    std::vector<Index> dstGlobals;
    for (size_t i = 0; i < aMine.size(); ++i) {
      srcOffsets.push_back(static_cast<Index>(i));
      dstGlobals.push_back(aMine[i]);  // identity mapping
    }
    const auto sched = buildIrregCopySchedule(c, *bTable, srcOffsets, dstGlobals);
    executeChaosCopy<double>(c, sched, a.raw(), b.raw(), c.nextUserTag());
    // Wipe a, then copy back with the reversed schedule.
    a.fillByGlobal([](Index) { return -1.0; });
    const auto rev = sched::reverse(sched);
    executeChaosCopy<double>(c, rev, b.raw(), a.raw(), c.nextUserTag());
    const auto global = a.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(global[static_cast<size_t>(g)], static_cast<double>(g * g));
    }
  });
}

// --- edge sweep (Figure 1 Loop 3) -------------------------------------------

TEST(EdgeSweep, MatchesSerialOracle) {
  const Index nNodes = 24;
  // A ring plus some chords.
  std::vector<Index> ia, ib;
  for (Index v = 0; v < nNodes; ++v) {
    ia.push_back(v);
    ib.push_back((v + 1) % nNodes);
  }
  for (Index v = 0; v < nNodes; v += 3) {
    ia.push_back(v);
    ib.push_back((v + 7) % nNodes);
  }
  const Index nEdges = static_cast<Index>(ia.size());

  // Serial oracle: two sweeps.
  std::vector<double> xs(static_cast<size_t>(nNodes)), ys(static_cast<size_t>(nNodes), 0.0);
  for (Index v = 0; v < nNodes; ++v) xs[static_cast<size_t>(v)] = static_cast<double>(v) + 1.0;
  for (int s = 0; s < 2; ++s) {
    for (Index e = 0; e < nEdges; ++e) {
      const double contrib = (xs[static_cast<size_t>(ia[static_cast<size_t>(e)])] +
                              xs[static_cast<size_t>(ib[static_cast<size_t>(e)])]) / 4.0;
      ys[static_cast<size_t>(ia[static_cast<size_t>(e)])] += contrib;
      ys[static_cast<size_t>(ib[static_cast<size_t>(e)])] += contrib;
    }
  }

  for (int np : {1, 2, 4}) {
    World::runSPMD(np, [&](Comm& c) {
      const auto mine = randomPartition(nNodes, c.size(), c.rank(), 5);
      auto table = std::make_shared<TranslationTable>(TranslationTable::build(
          c, mine, nNodes, TranslationTable::Storage::kDistributed));
      IrregArray<double> x(c, table, mine), y(c, table, mine);
      x.fillByGlobal([](Index g) { return static_cast<double>(g) + 1.0; });
      y.fillByGlobal([](Index) { return 0.0; });
      // Block-distribute the edges.
      const auto myEdges = blockPartition(nEdges, c.size(), c.rank());
      std::vector<Index> myIa, myIb;
      for (Index e : myEdges) {
        myIa.push_back(ia[static_cast<size_t>(e)]);
        myIb.push_back(ib[static_cast<size_t>(e)]);
      }
      EdgeSweep<double> sweep(c, *table, myIa, myIb);
      sweep.run(x, y);
      sweep.run(x, y);
      const auto got = y.gatherGlobal();
      for (Index v = 0; v < nNodes; ++v) {
        EXPECT_NEAR(got[static_cast<size_t>(v)], ys[static_cast<size_t>(v)], 1e-9)
            << "np=" << np << " node=" << v;
      }
    });
  }
}

}  // namespace
}  // namespace mc::chaos
