// Additional transport coverage: probing, virtual-time determinism, larger
// worlds, failure injection into schedule execution, and traffic accounting.
#include <gtest/gtest.h>

#include "sched/executor.h"
#include "transport/world.h"

namespace mc::transport {
namespace {

TEST(TransportExtra, ProbeSeesQueuedMessage) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 7, 1);
      // Ack so the probe below observes a settled mailbox.
      c.recvValue<int>(1, 8);
    } else {
      // Busy-wait via probe (non-blocking), then consume.
      while (!c.probe(0, 7)) {
      }
      EXPECT_FALSE(c.probe(0, 99));
      EXPECT_TRUE(c.probe(kAnySource, kAnyTag));
      EXPECT_EQ(c.recvValue<int>(0, 7), 1);
      EXPECT_FALSE(c.probe(0, 7));  // consumed
      c.sendValue(0, 8, 1);
    }
  });
}

TEST(TransportExtra, ModeledClocksAreDeterministic) {
  // A workload whose time is entirely modeled (advance + messages, no
  // measured compute) must give bit-identical virtual clocks across runs.
  auto run = [] {
    std::vector<double> clocks(4, 0.0);
    WorldOptions o;
    o.net.contention = true;
    World::runSPMD(4, [&](Comm& c) {
      for (int round = 0; round < 5; ++round) {
        c.advance(1e-4 * (c.rank() + 1));
        const int next = (c.rank() + 1) % c.size();
        const int prev = (c.rank() + c.size() - 1) % c.size();
        std::vector<double> payload(static_cast<size_t>(64 * (round + 1)), 1.0);
        c.send(next, 1, payload);
        (void)c.recv<double>(prev, 1);
        c.barrier();
      }
      clocks[static_cast<size_t>(c.rank())] = c.now();
    }, o);
    return clocks;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  // Barrier synchronization: clocks agree up to the barrier's own
  // per-rank message overheads.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_NEAR(a[i], a[0], 1e-3);
}

TEST(TransportExtra, ThirtyTwoProcessorRelay) {
  World::runSPMD(32, [](Comm& c) {
    // Binary-tree reduction by hand, then verify against allreduce.
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduceSum(mine), 32.0 * 33.0 / 2.0);
    const auto rows = c.allgatherValue(c.rank());
    for (int r = 0; r < 32; ++r) EXPECT_EQ(rows[static_cast<size_t>(r)], r);
  });
}

TEST(TransportExtra, LargePayloadRoundTrip) {
  World::runSPMD(2, [](Comm& c) {
    const size_t n = 1 << 20;  // 8 MiB of doubles
    if (c.rank() == 0) {
      std::vector<double> big(n);
      for (size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i % 977);
      c.send(1, 1, big);
    } else {
      const auto big = c.recv<double>(0, 1);
      ASSERT_EQ(big.size(), n);
      EXPECT_DOUBLE_EQ(big[12345], static_cast<double>(12345 % 977));
      EXPECT_DOUBLE_EQ(big[n - 1], static_cast<double>((n - 1) % 977));
    }
  });
}

TEST(TransportExtra, ScheduleExecutorRejectsMismatchedPlans) {
  // Failure injection: a corrupted schedule (receiver expects more elements
  // than the sender ships) must fail loudly, not hang or corrupt memory.
  WorldOptions o;
  o.recvTimeoutSeconds = 5.0;
  EXPECT_THROW(
      World::runSPMD(2,
                     [](Comm& c) {
                       sched::Schedule s;
                       if (c.rank() == 0) {
                         s.sends.push_back(sched::OffsetPlan{1, {0, 1}});
                       } else {
                         s.recvs.push_back(sched::OffsetPlan{0, {0, 1, 2}});
                       }
                       std::vector<double> buf(8, 0.0);
                       sched::execute<double>(c, s, buf, buf, 42);
                     },
                     o),
      Error);
}

TEST(TransportExtra, ExecuteAddAccumulates) {
  World::runSPMD(2, [](Comm& c) {
    sched::Schedule s;
    if (c.rank() == 0) {
      s.sends.push_back(sched::OffsetPlan{1, {0, 2}});
      s.localPairs.emplace_back(1, 3);
    } else {
      s.recvs.push_back(sched::OffsetPlan{0, {1, 1}});  // both add to slot 1
    }
    std::vector<double> src{10, 20, 30, 40};
    std::vector<double> dst{1, 1, 1, 1};
    sched::executeAdd<double>(c, s, src, dst, c.nextUserTag());
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(dst[3], 1 + 20);  // local pair accumulated
    } else {
      EXPECT_DOUBLE_EQ(dst[1], 1 + 10 + 30);  // both remote adds landed
    }
  });
}

TEST(TransportExtra, ReverseTwiceIsIdentity) {
  sched::Schedule s;
  s.sends.push_back(sched::OffsetPlan{2, {5, 6, 7}});
  s.recvs.push_back(sched::OffsetPlan{1, {9}});
  s.localPairs.emplace_back(3, 4);
  const sched::Schedule rr = sched::reverse(sched::reverse(s));
  ASSERT_EQ(rr.sends.size(), 1u);
  EXPECT_EQ(rr.sends[0].peer, 2);
  EXPECT_EQ(rr.sends[0].offsets, (std::vector<layout::Index>{5, 6, 7}));
  ASSERT_EQ(rr.recvs.size(), 1u);
  EXPECT_EQ(rr.recvs[0].offsets, (std::vector<layout::Index>{9}));
  EXPECT_EQ(rr.localPairs, s.localPairs);
}

TEST(TransportExtra, TrafficBytesAccounting) {
  World::runSPMD(2, [](Comm& c) {
    c.resetStats();
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<double>(100));
      c.send(1, 2, std::vector<std::int32_t>(7));
      EXPECT_EQ(c.stats().bytesSent, 100 * 8 + 7 * 4);
      EXPECT_EQ(c.stats().messagesSent, 2u);
      EXPECT_EQ(c.stats().bytesReceived, 0u);
    } else {
      c.recv<double>(0, 1);
      c.recv<std::int32_t>(0, 2);
      EXPECT_EQ(c.stats().bytesReceived, 100 * 8 + 7 * 4);
    }
  });
}

TEST(TransportExtra, InterTagRejectsBadProgram) {
  World::run({ProgramSpec{"solo", 1, [](Comm& c) {
    EXPECT_THROW(c.nextInterTag(0), Error);   // own program
    EXPECT_THROW(c.nextInterTag(5), Error);   // nonexistent
  }}});
}

TEST(TransportExtra, SendOverheadAdvancesSenderClock) {
  WorldOptions o;
  o.net.interNode = NetParams{0.0, 1e12, 7e-3, 0.0};
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      const double before = c.now();
      c.sendValue(1, 1, 0);
      EXPECT_NEAR(c.now() - before, 7e-3, 1e-12);
    } else {
      c.recvValue<int>(0, 1);
    }
  }, o);
}

}  // namespace
}  // namespace mc::transport
