// Tests for the pC++/Tulip-like distributed collection runtime.
#include <gtest/gtest.h>

#include "transport/world.h"
#include "tulip/collection.h"

namespace mc::tulip {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

struct Particle {
  double x = 0;
  double v = 0;
};

class TulipDescP
    : public ::testing::TestWithParam<std::tuple<Placement, Index, int>> {};

TEST_P(TulipDescP, OwnershipPartitionsExactly) {
  const auto [placement, n, np] = GetParam();
  const TulipDesc desc{n, np, placement};
  std::vector<Index> counts(static_cast<size_t>(np), 0);
  for (Index e = 0; e < n; ++e) {
    const int owner = desc.ownerOf(e);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, np);
    const Index off = desc.localOffsetOf(e);
    EXPECT_EQ(desc.globalOf(owner, off), e);
    ++counts[static_cast<size_t>(owner)];
  }
  Index total = 0;
  for (int p = 0; p < np; ++p) {
    EXPECT_EQ(desc.localCount(p), counts[static_cast<size_t>(p)]);
    total += counts[static_cast<size_t>(p)];
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, TulipDescP,
    ::testing::Combine(::testing::Values(Placement::kBlock,
                                         Placement::kCyclic),
                       ::testing::Values<Index>(1, 10, 31),
                       ::testing::Values(1, 3, 8)));

TEST(TulipDesc, OutOfRangeRejected) {
  const TulipDesc desc{10, 2, Placement::kBlock};
  EXPECT_THROW(desc.ownerOf(10), Error);
  EXPECT_THROW(desc.ownerOf(-1), Error);
}

TEST(Collection, OwnerComputesOverObjects) {
  World::runSPMD(3, [](Comm& c) {
    Collection<Particle> particles(c, 20, Placement::kCyclic);
    particles.forEachOwned([](Index e, Particle& p) {
      p.x = static_cast<double>(e);
      p.v = 2.0 * static_cast<double>(e);
    });
    // A pC++-style method over the collection: advance positions.
    particles.forEachOwned([](Index, Particle& p) { p.x += p.v; });
    const auto global = particles.gatherGlobal();
    for (Index e = 0; e < 20; ++e) {
      EXPECT_DOUBLE_EQ(global[static_cast<size_t>(e)].x,
                       3.0 * static_cast<double>(e));
    }
  });
}

TEST(Collection, AtChecksOwnership) {
  World::runSPMD(2, [](Comm& c) {
    Collection<double> coll(c, 8, Placement::kBlock);
    const Index mine = c.rank() == 0 ? 0 : 4;
    const Index theirs = c.rank() == 0 ? 4 : 0;
    EXPECT_NO_THROW(coll.at(mine));
    EXPECT_THROW(coll.at(theirs), Error);
  });
}

TEST(Collection, EmptyCollection) {
  World::runSPMD(2, [](Comm& c) {
    Collection<double> coll(c, 0);
    EXPECT_EQ(coll.localCount(), 0);
    EXPECT_TRUE(coll.gatherGlobal().empty());
  });
}

}  // namespace
}  // namespace mc::tulip
