// Integration tests over the experiment workloads: the Figure-1 coupled
// meshes and the client/server matvec session.  These pin down that every
// benchmark configuration computes the *same numbers* regardless of method
// or processor count.
#include <gtest/gtest.h>

#include "workloads/coupled_mesh.h"
#include "workloads/matvec_session.h"

namespace mc::workloads {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

CoupledMeshConfig smallMesh() {
  CoupledMeshConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  return cfg;
}

double runCoupledSteps(int np, int steps, core::Method method) {
  double sum = 0;
  World::runSPMD(np, [&](Comm& c) {
    CoupledMesh mesh(c, smallMesh());
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildMetaChaosCopySchedules(method);
    for (int s = 0; s < steps; ++s) mesh.timeStepMC();
    const double cs = mesh.checksum();
    if (c.rank() == 0) sum = cs;
  });
  return sum;
}

TEST(CoupledMesh, ChecksumIndependentOfProcessorCount) {
  const double ref = runCoupledSteps(1, 3, core::Method::kCooperation);
  for (int np : {2, 4}) {
    EXPECT_NEAR(runCoupledSteps(np, 3, core::Method::kCooperation), ref,
                std::abs(ref) * 1e-12)
        << "np=" << np;
  }
}

TEST(CoupledMesh, MethodsAgree) {
  CoupledMeshConfig cfg = smallMesh();
  cfg.storage = chaos::TranslationTable::Storage::kReplicated;
  double coop = 0, dup = 0;
  World::runSPMD(3, [&](Comm& c) {
    CoupledMesh mesh(c, cfg);
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildMetaChaosCopySchedules(core::Method::kCooperation);
    for (int s = 0; s < 2; ++s) mesh.timeStepMC();
    if (c.rank() == 0) coop = mesh.checksum();
    if (c.rank() != 0) mesh.checksum();
  });
  World::runSPMD(3, [&](Comm& c) {
    CoupledMesh mesh(c, cfg);
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildMetaChaosCopySchedules(core::Method::kDuplication);
    for (int s = 0; s < 2; ++s) mesh.timeStepMC();
    if (c.rank() == 0) dup = mesh.checksum();
    if (c.rank() != 0) mesh.checksum();
  });
  EXPECT_DOUBLE_EQ(coop, dup);
}

TEST(CoupledMesh, ChaosBaselineMatchesMetaChaos) {
  // Loops 2 and 4 via the Chaos-native path must move exactly the same data
  // as the Meta-Chaos path.
  double viaMc = 0, viaChaos = 0;
  World::runSPMD(4, [&](Comm& c) {
    CoupledMesh mesh(c, smallMesh());
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildMetaChaosCopySchedules(core::Method::kCooperation);
    for (int s = 0; s < 2; ++s) mesh.timeStepMC();
    const double cs = mesh.checksum();
    if (c.rank() == 0) viaMc = cs;
  });
  World::runSPMD(4, [&](Comm& c) {
    CoupledMesh mesh(c, smallMesh());
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildChaosCopySchedules();
    for (int s = 0; s < 2; ++s) {
      mesh.regularSweep();
      mesh.copyRegToIrregChaos();
      mesh.irregularSweep();
      mesh.copyIrregToRegChaos();
    }
    const double cs = mesh.checksum();
    if (c.rank() == 0) viaChaos = cs;
  });
  EXPECT_DOUBLE_EQ(viaMc, viaChaos);
}

TEST(CoupledMesh, InspectorsRequiredBeforeExecutors) {
  World::runSPMD(1, [](Comm& c) {
    CoupledMesh mesh(c, smallMesh());
    EXPECT_THROW(mesh.regularSweep(), Error);
    EXPECT_THROW(mesh.copyRegToIrregMC(), Error);
    EXPECT_THROW(mesh.copyRegToIrregChaos(), Error);
  });
}

TEST(MatvecSession, BreakdownIsPopulatedAndPositive) {
  MatvecSessionConfig cfg;
  cfg.n = 64;
  cfg.clientProcs = 1;
  cfg.serverProcs = 4;
  cfg.numVectors = 3;
  const MatvecBreakdown b = runMatvecSession(cfg);
  EXPECT_GT(b.scheduleBuild, 0.0);
  EXPECT_GT(b.sendMatrix, 0.0);
  EXPECT_GT(b.serverCompute, 0.0);
  EXPECT_GT(b.vectorExchange, 0.0);
  EXPECT_GT(b.clientLocalMatvec, 0.0);
  EXPECT_GT(b.total(), b.sendMatrix);
}

TEST(MatvecSession, ParallelClientWorks) {
  MatvecSessionConfig cfg;
  cfg.n = 48;
  cfg.clientProcs = 2;
  cfg.serverProcs = 3;
  cfg.numVectors = 2;
  const MatvecBreakdown b = runMatvecSession(cfg);
  EXPECT_GT(b.total(), 0.0);
}

TEST(MatvecSession, DuplicationMethodWorks) {
  MatvecSessionConfig cfg;
  cfg.n = 32;
  cfg.clientProcs = 1;
  cfg.serverProcs = 2;
  cfg.numVectors = 1;
  cfg.method = core::Method::kDuplication;
  const MatvecBreakdown b = runMatvecSession(cfg);
  EXPECT_GT(b.total(), 0.0);
}

TEST(MatvecSession, BreakEvenArithmetic) {
  MatvecBreakdown b;
  b.scheduleBuild = 1.0;
  b.sendMatrix = 1.0;
  b.serverCompute = 0.2;
  b.vectorExchange = 0.2;
  b.clientLocalMatvec = 0.6;  // per-vector gain = 0.6 - 0.4 = 0.2
  EXPECT_EQ(breakEvenVectors(b, 1), 10);  // 2.0 / 0.2
  b.clientLocalMatvec = 0.3;  // gain negative -> never
  EXPECT_EQ(breakEvenVectors(b, 1), 0);
}

TEST(MatvecSession, BreakEvenEdgeCases) {
  MatvecBreakdown b;
  b.scheduleBuild = 2.0;
  b.sendMatrix = 1.0;
  b.serverCompute = 0.8;
  b.vectorExchange = 0.8;
  b.clientLocalMatvec = 0.5;
  // A zero-vector session has no per-vector cost to amortize against.
  EXPECT_EQ(breakEvenVectors(b, 0), 0);
  // Per-vector server cost (1.6 / 4 = 0.4) exactly ties the client at
  // clientLocalMatvec = 0.4: zero gain means the server never wins.
  b.clientLocalMatvec = 0.4;
  EXPECT_EQ(breakEvenVectors(b, 4), 0);
  // Just above the tie it wins, with a large break-even count.
  b.clientLocalMatvec = 0.4 + 0.001;
  EXPECT_EQ(breakEvenVectors(b, 4), 3000);  // 3.0 / 0.001
}

TEST(MatvecSession, ZeroVectorSessionRunsAndChargesNoPerVectorCost) {
  MatvecSessionConfig cfg;
  cfg.n = 48;
  cfg.clientProcs = 1;
  cfg.serverProcs = 2;
  cfg.numVectors = 0;  // attach + detach, no requests
  const MatvecBreakdown b = runMatvecSession(cfg);
  EXPECT_EQ(b.serverCompute, 0.0);
  EXPECT_GT(b.scheduleBuild, 0.0);
  EXPECT_GT(b.sendMatrix, 0.0);
  EXPECT_GE(b.vectorExchange, 0.0);
  EXPECT_EQ(breakEvenVectors(b, cfg.numVectors), 0);
}

TEST(MatvecSession, TotalIsAdditiveAcrossProcessCounts) {
  for (const auto& [cp, sp] : {std::pair{1, 2}, std::pair{2, 4}}) {
    MatvecSessionConfig cfg;
    cfg.n = 48;
    cfg.clientProcs = cp;
    cfg.serverProcs = sp;
    cfg.numVectors = 2;
    const MatvecBreakdown b = runMatvecSession(cfg);
    EXPECT_DOUBLE_EQ(
        b.total(),
        b.scheduleBuild + b.sendMatrix + b.serverCompute + b.vectorExchange)
        << "c" << cp << "_s" << sp;
    EXPECT_GE(b.scheduleBuild, 0.0);
    EXPECT_GE(b.sendMatrix, 0.0);
    EXPECT_GT(b.serverCompute, 0.0);
    EXPECT_GE(b.vectorExchange, 0.0);
    // The client-local alternative is measured but excluded from total().
    EXPECT_GT(b.clientLocalMatvec, 0.0);
  }
}

}  // namespace
}  // namespace mc::workloads
