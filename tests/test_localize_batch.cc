// Differential suite for the batched localize inspector: the batched,
// cache-backed localize() must produce BIT-IDENTICAL Localized output
// (ghost layout, local indices, gather/scatter-add schedules) to the
// hash-based element-wise oracle localizeReference() on any reference
// pattern — duplicates, all-local, all-remote, empty ranks, single
// elements, adversarial owner skew — over random translation tables under
// both storage policies.  Plus the dereference-cache contract: hit/miss
// accounting via obs snapshot diffs, uid keying across live tables, and
// the stale-cache regression (chaos::remap invalidates the old table's
// shard on every rank).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "chaos/deref_cache.h"
#include "chaos/irreg_array.h"
#include "chaos/localize.h"
#include "chaos/partition.h"
#include "chaos/remap.h"
#include "chaos/ttable.h"
#include "obs/metrics.h"
#include "transport/world.h"

namespace mc::chaos {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;
using Storage = TranslationTable::Storage;

void expectPlansEqual(const std::vector<sched::OffsetPlan>& got,
                      const std::vector<sched::OffsetPlan>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].peer, want[i].peer) << what << " plan " << i;
    EXPECT_EQ(got[i].expandedOffsets(), want[i].expandedOffsets())
        << what << " plan " << i;
  }
}

void expectLocalizedEqual(const Localized& got, const Localized& want) {
  EXPECT_EQ(got.localIndices, want.localIndices);
  EXPECT_EQ(got.ghostCount, want.ghostCount);
  expectPlansEqual(got.gatherSched.sends, want.gatherSched.sends, "gather sends");
  expectPlansEqual(got.gatherSched.recvs, want.gatherSched.recvs, "gather recvs");
  EXPECT_EQ(got.gatherSched.localPairs, want.gatherSched.localPairs);
  expectPlansEqual(got.scatterAddSched.sends, want.scatterAddSched.sends,
                   "scatter sends");
  expectPlansEqual(got.scatterAddSched.recvs, want.scatterAddSched.recvs,
                   "scatter recvs");
}

/// Runs both inspectors on the same inputs and cross-checks them.
void differential(Comm& c, const TranslationTable& table,
                  std::span<const Index> refs) {
  const Localized oracle = localizeReference(c, table, refs);
  const Localized batched = localize(c, table, refs);
  expectLocalizedEqual(batched, oracle);
}

class LocalizeBatchP
    : public ::testing::TestWithParam<std::tuple<Storage, int, unsigned>> {};

TEST_P(LocalizeBatchP, RandomRefsMatchOracle) {
  const auto [storage, nprocs, seed] = GetParam();
  World::runSPMD(nprocs, [storage = storage, seed = seed](Comm& c) {
    const Index n = 257;
    const auto mine = randomPartition(n, c.size(), c.rank(), seed);
    const auto table =
        TranslationTable::build(c, mine, n, storage);
    // Heavy duplication: ~3n draws from n indices.
    std::mt19937 rng(seed * 977u + static_cast<unsigned>(c.rank()));
    std::uniform_int_distribution<Index> pick(0, n - 1);
    std::vector<Index> refs(static_cast<size_t>(3 * n));
    for (Index& g : refs) g = pick(rng);
    differential(c, table, refs);
    // Second pass over fresh refs: the batched path now runs against a
    // warm cache and must still match exactly.
    for (Index& g : refs) g = pick(rng);
    differential(c, table, refs);
  });
}

INSTANTIATE_TEST_SUITE_P(
    StorageProcsSeeds, LocalizeBatchP,
    ::testing::Combine(::testing::Values(Storage::kReplicated,
                                         Storage::kDistributed),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1u, 2u, 3u)));

TEST(LocalizeBatch, AllLocalRefsMatchOracle) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 120;
    const auto mine = randomPartition(n, c.size(), c.rank(), 7);
    const auto table =
        TranslationTable::build(c, mine, n, Storage::kDistributed);
    // Every rank references only its own elements (twice, for duplicates).
    std::vector<Index> refs(mine.begin(), mine.end());
    refs.insert(refs.end(), mine.begin(), mine.end());
    const Localized oracle = localizeReference(c, table, refs);
    const Localized batched = localize(c, table, refs);
    expectLocalizedEqual(batched, oracle);
    EXPECT_EQ(batched.ghostCount, 0);
    EXPECT_TRUE(batched.gatherSched.sends.empty());
    EXPECT_TRUE(batched.gatherSched.recvs.empty());
  });
}

TEST(LocalizeBatch, AllRemoteRefsMatchOracle) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 96;
    // Block partition: easy to reference exclusively the next rank's block.
    const auto mine = blockPartition(n, c.size(), c.rank());
    const auto table =
        TranslationTable::build(c, mine, n, Storage::kDistributed);
    const auto theirs =
        blockPartition(n, c.size(), (c.rank() + 1) % c.size());
    std::vector<Index> refs(theirs.begin(), theirs.end());
    if (c.size() > 1) {
      const Localized batched = localize(c, table, refs);
      EXPECT_EQ(batched.ghostCount, static_cast<Index>(refs.size()));
      expectLocalizedEqual(batched, localizeReference(c, table, refs));
    } else {
      differential(c, table, refs);
    }
  });
}

TEST(LocalizeBatch, EmptyAndSingleElementRanksMatchOracle) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 64;
    const auto mine = randomPartition(n, c.size(), c.rank(), 11);
    const auto table =
        TranslationTable::build(c, mine, n, Storage::kDistributed);
    // Rank 0: empty reference list; rank 1: a single reference; the rest:
    // a handful.  Collectivity must hold with uneven participation.
    std::vector<Index> refs;
    if (c.rank() == 1) refs = {n - 1};
    if (c.rank() >= 2) refs = {0, n / 2, 0, n - 1, n / 2};
    differential(c, table, refs);
  });
}

TEST(LocalizeBatch, AdversarialOwnerSkewMatchesOracle) {
  World::runSPMD(4, [](Comm& c) {
    // Rank 0 owns 90% of the elements; everyone references mostly rank 0.
    const Index n = 200;
    const Index cut = (n * 9) / 10;
    std::vector<Index> mine;
    if (c.rank() == 0) {
      mine.resize(static_cast<size_t>(cut));
      std::iota(mine.begin(), mine.end(), Index{0});
    } else {
      for (Index g = cut + c.rank() - 1; g < n;
           g += static_cast<Index>(c.size() - 1)) {
        mine.push_back(g);
      }
    }
    const auto table =
        TranslationTable::build(c, mine, n, Storage::kDistributed);
    std::mt19937 rng(13u + static_cast<unsigned>(c.rank()));
    std::uniform_int_distribution<Index> skewed(0, cut - 1);
    std::uniform_int_distribution<Index> any(0, n - 1);
    std::vector<Index> refs;
    for (int i = 0; i < 300; ++i) {
      refs.push_back((i % 10 == 0) ? any(rng) : skewed(rng));
    }
    differential(c, table, refs);
  });
}

// --- dereference-cache contract --------------------------------------------

TEST(DerefCache, SecondLocalizeHitsEntirelyInCache) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 150;
    const auto mine = randomPartition(n, c.size(), c.rank(), 21);
    const auto table =
        TranslationTable::build(c, mine, n, Storage::kDistributed);
    std::vector<Index> refs;
    for (Index g = c.rank(); g < n; g += 3) refs.push_back(g % n);
    const size_t distinct = [&] {
      std::vector<Index> u(refs);
      std::sort(u.begin(), u.end());
      u.erase(std::unique(u.begin(), u.end()), u.end());
      return u.size();
    }();

    (void)localize(c, table, refs);
    const obs::Snapshot before = obs::threadRegistry().snapshot();
    (void)localize(c, table, refs);
    const obs::Snapshot diff = obs::threadRegistry().snapshot() - before;
    // Same distinct set again: all hits, no misses, nothing inserted.
    EXPECT_EQ(diff.get("localize.deref_cache.hits"),
              static_cast<double>(distinct));
    EXPECT_EQ(diff.get("localize.deref_cache.misses"), 0.0);
    EXPECT_EQ(diff.get("localize.deref_cache.insertions"), 0.0);
  });
}

TEST(DerefCache, UidKeyingKeepsConcurrentTablesSeparate) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 90;
    const auto mineA = randomPartition(n, c.size(), c.rank(), 31);
    const auto mineB = randomPartition(n, c.size(), c.rank(), 32);
    const auto tableA =
        TranslationTable::build(c, mineA, n, Storage::kDistributed);
    const auto tableB =
        TranslationTable::build(c, mineB, n, Storage::kDistributed);
    EXPECT_NE(tableA.uid(), tableB.uid());
    std::vector<Index> refs;
    for (Index g = 0; g < n; g += 2) refs.push_back(g);
    // Interleave the two tables; each must resolve against its own shard.
    for (int round = 0; round < 3; ++round) {
      differential(c, tableA, refs);
      differential(c, tableB, refs);
    }
  });
}

TEST(DerefCache, RemapInvalidatesOldTableShard) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 128;
    auto table = std::make_shared<const TranslationTable>(
        TranslationTable::build(c, randomPartition(n, c.size(), c.rank(), 41),
                                n, Storage::kDistributed));
    IrregArray<double> arr(c, table,
                           randomPartition(n, c.size(), c.rank(), 41));
    arr.fillByGlobal([](Index g) { return static_cast<double>(g); });

    // Warm the cache for the old table.
    std::vector<Index> refs;
    for (Index g = 0; g < n; g += 2) refs.push_back(g);
    (void)localize(c, *table, refs);
    const double entriesBefore =
        obs::threadRegistry().snapshot().get("localize.deref_cache.entries");

    const obs::Snapshot before = obs::threadRegistry().snapshot();
    IrregArray<double> moved =
        remap(arr, randomPartition(n, c.size(), c.rank(), 99),
              Storage::kDistributed);
    const obs::Snapshot diff = obs::threadRegistry().snapshot() - before;
    // remap dropped the old table's shard on this rank.
    EXPECT_GE(diff.get("localize.deref_cache.invalidations"), 1.0);
    if (entriesBefore > 0) {
      EXPECT_LT(obs::threadRegistry()
                    .snapshot()
                    .get("localize.deref_cache.entries"),
                entriesBefore);
    }
    // Data survived the move.
    for (size_t i = 0; i < moved.myGlobals().size(); ++i) {
      EXPECT_EQ(moved.raw()[i],
                static_cast<double>(moved.myGlobals()[i]));
    }
    // The stale-cache bug class: a localize against the NEW table must
    // resolve to the new owners — differentially checked against the
    // uncached oracle — and re-priming the old table's shard must MISS
    // (its entries are gone), not serve stale locations.
    differential(c, moved.table(), refs);
    const obs::Snapshot prime = obs::threadRegistry().snapshot();
    (void)localize(c, *table, refs);
    const obs::Snapshot primeDiff =
        obs::threadRegistry().snapshot() - prime;
    EXPECT_EQ(primeDiff.get("localize.deref_cache.misses"),
              static_cast<double>(refs.size()));
  });
}

TEST(DerefCache, CachedDereferenceMatchesUncachedOnRawQueries) {
  World::runSPMD(4, [](Comm& c) {
    const Index n = 140;
    const auto mine = randomPartition(n, c.size(), c.rank(), 51);
    for (const Storage storage :
         {Storage::kReplicated, Storage::kDistributed}) {
      const auto table = TranslationTable::build(c, mine, n, storage);
      std::mt19937 rng(7u * static_cast<unsigned>(c.rank() + 1));
      std::uniform_int_distribution<Index> pick(0, n - 1);
      for (int round = 0; round < 4; ++round) {
        // Unsorted, duplicate-heavy query lists of varying length.
        std::vector<Index> q(static_cast<size_t>(20 + 30 * round));
        for (Index& g : q) g = pick(rng);
        EXPECT_EQ(table.dereferenceCached(c, q), table.dereference(c, q));
      }
    }
  });
}

}  // namespace
}  // namespace mc::chaos
