// Unit tests for src/layout: index math, regular sections, block decomps.
#include <gtest/gtest.h>

#include <set>

#include "layout/block_decomp.h"
#include "layout/index.h"
#include "layout/section.h"

namespace mc::layout {
namespace {

TEST(Index, RowMajorRoundTrip) {
  const Shape s = Shape::of({3, 4, 5});
  Index expect = 0;
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 4; ++j) {
      for (Index k = 0; k < 5; ++k) {
        const Point p = Point::of({i, j, k});
        EXPECT_EQ(rowMajorOffset(s, p), expect);
        EXPECT_EQ(rowMajorPoint(s, expect), p);
        ++expect;
      }
    }
  }
}

TEST(Index, ShapeContains) {
  const Shape s = Shape::of({2, 3});
  EXPECT_TRUE(s.contains(Point::of({0, 0})));
  EXPECT_TRUE(s.contains(Point::of({1, 2})));
  EXPECT_FALSE(s.contains(Point::of({2, 0})));
  EXPECT_FALSE(s.contains(Point::of({0, -1})));
  EXPECT_FALSE(s.contains(Point::of({0, 0, 0})));  // rank mismatch
}

TEST(Index, NumElements) {
  EXPECT_EQ(Shape::of({7}).numElements(), 7);
  EXPECT_EQ(Shape::of({3, 0}).numElements(), 0);
  EXPECT_EQ(Shape::of({2, 3, 4, 5}).numElements(), 120);
}

TEST(Section, CountAndElements) {
  // 2:10:3 -> {2, 5, 8} (paper-style triplet, inclusive upper bound)
  const RegularSection s = RegularSection::of({2}, {10}, {3});
  EXPECT_EQ(s.numElements(), 3);
  EXPECT_EQ(s.pointAt(0), Point::of({2}));
  EXPECT_EQ(s.pointAt(1), Point::of({5}));
  EXPECT_EQ(s.pointAt(2), Point::of({8}));
}

TEST(Section, EmptyWhenReversed) {
  const RegularSection s = RegularSection::of({5}, {4}, {1});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.numElements(), 0);
}

TEST(Section, RowMajorLinearization) {
  // The linearization of a section is row-major over its tuples (paper 4.1.2).
  const RegularSection s = RegularSection::of({1, 2}, {5, 8}, {2, 3});
  // rows {1,3,5} x cols {2,5,8}
  EXPECT_EQ(s.numElements(), 9);
  EXPECT_EQ(s.pointAt(0), Point::of({1, 2}));
  EXPECT_EQ(s.pointAt(1), Point::of({1, 5}));
  EXPECT_EQ(s.pointAt(3), Point::of({3, 2}));
  EXPECT_EQ(s.pointAt(8), Point::of({5, 8}));
}

TEST(Section, PositionOfInvertsPointAt) {
  const RegularSection s = RegularSection::of({0, 3, 1}, {9, 9, 7}, {3, 2, 1});
  for (Index k = 0; k < s.numElements(); ++k) {
    EXPECT_EQ(s.positionOf(s.pointAt(k)), k);
  }
}

TEST(Section, ForEachMatchesPointAt) {
  const RegularSection s = RegularSection::of({2, 0}, {8, 4}, {3, 2});
  Index calls = 0;
  s.forEach([&](const Point& p, Index pos) {
    EXPECT_EQ(p, s.pointAt(pos));
    EXPECT_EQ(pos, calls);
    ++calls;
  });
  EXPECT_EQ(calls, s.numElements());
}

TEST(Section, ForEachEmpty) {
  const RegularSection s = RegularSection::of({3}, {2}, {1});
  s.forEach([&](const Point&, Index) { FAIL(); });
}

TEST(Section, Contains) {
  const RegularSection s = RegularSection::of({2, 1}, {10, 9}, {2, 4});
  EXPECT_TRUE(s.contains(Point::of({2, 1})));
  EXPECT_TRUE(s.contains(Point::of({4, 5})));
  EXPECT_FALSE(s.contains(Point::of({3, 1})));   // off-lattice dim 0
  EXPECT_FALSE(s.contains(Point::of({2, 2})));   // off-lattice dim 1
  EXPECT_FALSE(s.contains(Point::of({12, 1})));  // out of bounds
}

TEST(Section, ClampToBoxKeepsLattice) {
  const RegularSection s = RegularSection::of({1}, {19}, {3});  // 1,4,...,19
  const RegularSection c = s.clampToBox(Point::of({5}), Point::of({14}));
  // lattice points in [5,14]: 7, 10, 13
  EXPECT_EQ(c.numElements(), 3);
  EXPECT_EQ(c.pointAt(0), Point::of({7}));
  EXPECT_EQ(c.pointAt(2), Point::of({13}));
}

TEST(Section, ClampToBoxEmpty) {
  const RegularSection s = RegularSection::of({0}, {100}, {10});
  const RegularSection c = s.clampToBox(Point::of({41}), Point::of({49}));
  EXPECT_TRUE(c.empty());
}

TEST(Section, ClampToBox2D) {
  const RegularSection s = RegularSection::of({0, 0}, {9, 9}, {2, 2});
  const RegularSection c = s.clampToBox(Point::of({3, 0}), Point::of({7, 5}));
  std::set<std::pair<Index, Index>> got;
  c.forEach([&](const Point& p, Index) { got.insert({p[0], p[1]}); });
  std::set<std::pair<Index, Index>> want;
  s.forEach([&](const Point& p, Index) {
    if (p[0] >= 3 && p[0] <= 7 && p[1] >= 0 && p[1] <= 5) {
      want.insert({p[0], p[1]});
    }
  });
  EXPECT_EQ(got, want);
}

TEST(Section, AllCoversShape) {
  const Shape shape = Shape::of({4, 6});
  const RegularSection s = RegularSection::all(shape);
  EXPECT_EQ(s.numElements(), shape.numElements());
  // Linearization of all() equals row-major order of the array.
  s.forEach([&](const Point& p, Index pos) {
    EXPECT_EQ(rowMajorOffset(shape, p), pos);
  });
}

TEST(Section, StrideMustBePositive) {
  EXPECT_THROW(RegularSection::of({0}, {5}, {0}), Error);
}

TEST(ProcGrid, ProductMatches) {
  for (int np : {1, 2, 3, 4, 6, 8, 12, 16, 17, 24}) {
    auto g = chooseProcGrid(np, 2);
    EXPECT_EQ(static_cast<int>(g.size()), 2);
    EXPECT_EQ(g[0] * g[1], np);
  }
}

TEST(ProcGrid, NearSquare) {
  auto g = chooseProcGrid(16, 2);
  EXPECT_EQ(g[0], 4);
  EXPECT_EQ(g[1], 4);
  g = chooseProcGrid(8, 2);
  EXPECT_EQ(g[0] * g[1], 8);
  EXPECT_LE(g[0] / g[1], 2);
}

TEST(BlockDecomp, PartitionIsDisjointAndComplete) {
  const Shape shape = Shape::of({13, 7});
  for (int np : {1, 2, 4, 6}) {
    const BlockDecomp d = BlockDecomp::regular(shape, np);
    std::set<std::pair<Index, Index>> seen;
    for (int p = 0; p < np; ++p) {
      const RegularSection box = d.ownedBox(p);
      box.forEach([&](const Point& pt, Index) {
        EXPECT_TRUE(seen.insert({pt[0], pt[1]}).second)
            << "duplicate ownership of (" << pt[0] << "," << pt[1] << ")";
        EXPECT_EQ(d.ownerOf(pt), p);
      });
    }
    EXPECT_EQ(static_cast<Index>(seen.size()), shape.numElements());
  }
}

TEST(BlockDecomp, ProcCoordRoundTrip) {
  const BlockDecomp d(Shape::of({16, 16}), {2, 3});
  for (int p = 0; p < 6; ++p) EXPECT_EQ(d.procAt(d.procCoord(p)), p);
}

TEST(BlockDecomp, CeilingBlocks) {
  // 10 elements over 4 procs: blocks of 3,3,3,1 (HPF BLOCK rule).
  const BlockDecomp d(Shape::of({10}), {4});
  EXPECT_EQ(d.ownedRange(0, 0), (std::pair<Index, Index>{0, 2}));
  EXPECT_EQ(d.ownedRange(0, 1), (std::pair<Index, Index>{3, 5}));
  EXPECT_EQ(d.ownedRange(0, 3), (std::pair<Index, Index>{9, 9}));
}

TEST(BlockDecomp, EmptyBlocks) {
  // 3 elements over 4 procs: ceil(3/4)=1 per block, last proc owns nothing.
  const BlockDecomp d(Shape::of({3}), {4});
  const auto [lo, hi] = d.ownedRange(0, 3);
  EXPECT_GT(lo, hi);
  EXPECT_TRUE(d.ownedBox(3).empty());
}

TEST(BlockDecomp, LocalOffsetRowMajor) {
  const BlockDecomp d(Shape::of({8, 8}), {2, 2});
  // proc 0 owns [0..3]x[0..3]; local shape 4x4.
  EXPECT_EQ(d.localOffset(0, Point::of({0, 0})), 0);
  EXPECT_EQ(d.localOffset(0, Point::of({0, 3})), 3);
  EXPECT_EQ(d.localOffset(0, Point::of({1, 0})), 4);
  EXPECT_EQ(d.localOffset(0, Point::of({3, 3})), 15);
  // proc 3 owns [4..7]x[4..7].
  EXPECT_EQ(d.localOffset(3, Point::of({4, 4})), 0);
  EXPECT_EQ(d.localOffset(3, Point::of({7, 7})), 15);
}

TEST(BlockDecomp, LocalOffsetRejectsForeignPoint) {
  const BlockDecomp d(Shape::of({8, 8}), {2, 2});
  EXPECT_THROW(d.localOffset(0, Point::of({7, 7})), Error);
}

TEST(BlockDecomp, LocalShapesSumToGlobal) {
  const Shape shape = Shape::of({257, 129});
  const BlockDecomp d = BlockDecomp::regular(shape, 8);
  Index total = 0;
  for (int p = 0; p < 8; ++p) total += d.localShape(p).numElements();
  EXPECT_EQ(total, shape.numElements());
}

}  // namespace
}  // namespace mc::layout
