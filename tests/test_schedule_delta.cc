// Incremental delta schedules: DistDelta bookkeeping, computeDelta
// exactness, and the load-bearing property of patchSchedule — a patched
// schedule is bit-identical (plans AND provenance) to a full inspector
// rebuild of the new distributions, so its data movement is bitwise equal
// too.  Also covers the satellite machinery: deltaFromMigratedIndices /
// chaos::migratedGlobals / stableRemapOrder, the redistribution move,
// ScheduleCache::getOrPatch, Executor::rebind buffer reuse, and the
// dereference cache's selective retarget across a remap.
#include <gtest/gtest.h>

#include <numeric>

#include "chaos/migration.h"
#include "chaos/partition.h"
#include "chaos/remap.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/schedule_cache.h"
#include "hpfrt/hpf_array.h"
#include "layout/dist_delta.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using chaos::IrregArray;
using chaos::TranslationTable;
using layout::DistDelta;
using layout::Index;
using layout::LinInterval;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

// ---------------------------------------------------------------------------
// DistDelta unit tests (no world needed).

TEST(DistDelta, MergesAdjacentAndOverlapping) {
  DistDelta d;
  d.add(0, 4);
  d.add(4, 6);   // adjacent: merges
  d.add(2, 5);   // overlapping: already covered
  d.add(10, 12);
  ASSERT_EQ(d.intervals().size(), 2u);
  EXPECT_EQ(d.intervals()[0], (LinInterval{0, 6}));
  EXPECT_EQ(d.intervals()[1], (LinInterval{10, 12}));
  EXPECT_EQ(d.migratedElements(), 8);
}

TEST(DistDelta, OutOfOrderAddsNormalize) {
  DistDelta d;
  d.add(10, 12);
  d.add(0, 2);
  d.add(11, 15);
  ASSERT_EQ(d.intervals().size(), 2u);
  EXPECT_EQ(d.intervals()[0], (LinInterval{0, 2}));
  EXPECT_EQ(d.intervals()[1], (LinInterval{10, 15}));
  EXPECT_TRUE(d.contains(0));
  EXPECT_FALSE(d.contains(2));
  EXPECT_TRUE(d.contains(14));
  EXPECT_FALSE(d.contains(15));
}

TEST(DistDelta, EmptyAndInvertedIntervalsIgnored) {
  DistDelta d;
  d.add(5, 5);
  d.add(7, 3);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.migratedElements(), 0);
}

TEST(DistDelta, AddRunStrided) {
  DistDelta d;
  d.addRun(0, 3, 4);  // positions 0, 4, 8
  ASSERT_EQ(d.intervals().size(), 3u);
  EXPECT_TRUE(d.contains(4));
  EXPECT_FALSE(d.contains(5));
  DistDelta e;
  e.addRun(2, 5, 1);  // contiguous block [2, 7)
  ASSERT_EQ(e.intervals().size(), 1u);
  EXPECT_EQ(e.intervals()[0], (LinInterval{2, 7}));
}

TEST(DistDelta, UnionWith) {
  DistDelta a;
  a.add(0, 4);
  DistDelta b;
  b.add(2, 8);
  b.add(20, 22);
  a.unionWith(b);
  ASSERT_EQ(a.intervals().size(), 2u);
  EXPECT_EQ(a.intervals()[0], (LinInterval{0, 8}));
  EXPECT_EQ(a.intervals()[1], (LinInterval{20, 22}));
}

TEST(DistDelta, FingerprintIsContentAddressed) {
  DistDelta a;
  a.add(0, 4);
  a.add(4, 8);  // normalizes to [0, 8)
  DistDelta b;
  b.add(0, 8);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  DistDelta c;
  c.add(0, 9);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------------------
// stableRemapOrder (local, no world).

TEST(Migration, StableRemapOrderKeepsSurvivorSlots) {
  const std::vector<Index> oldMine = {4, 9, 1, 7};
  // 9 departs, 3 and 12 arrive: 9's slot is reused, the extra appends.
  const std::vector<Index> newAny = {12, 1, 3, 4, 7};
  const auto out = chaos::stableRemapOrder(oldMine, newAny);
  EXPECT_EQ(out, (std::vector<Index>{4, 3, 1, 7, 12}));
}

TEST(Migration, StableRemapOrderShrinkCompacts) {
  const std::vector<Index> oldMine = {4, 9, 1, 7};
  const std::vector<Index> newAny = {7, 4};
  const auto out = chaos::stableRemapOrder(oldMine, newAny);
  EXPECT_EQ(out, (std::vector<Index>{4, 7}));
}

// ---------------------------------------------------------------------------
// Deterministic assignment fixtures for the distributed tests.

constexpr int kProcs = 4;

struct Assignment {
  std::vector<std::vector<Index>> mine;  // per rank, local order
};

Assignment basePartition(Index n, unsigned seed) {
  Assignment a;
  for (int r = 0; r < kProcs; ++r) {
    a.mine.push_back(chaos::randomPartition(n, kProcs, r, seed));
  }
  return a;
}

/// Moves `moves` deterministic elements to a different owner and re-stables
/// every rank's local order so survivors keep their offsets.
Assignment mutate(const Assignment& oldA, Index n, int moves, unsigned salt) {
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < kProcs; ++r) {
    for (const Index g : oldA.mine[static_cast<std::size_t>(r)]) {
      owner[static_cast<std::size_t>(g)] = r;
    }
  }
  for (int k = 0; k < moves; ++k) {
    const auto g = static_cast<std::size_t>(
        (static_cast<Index>(k) * 131 + static_cast<Index>(salt) * 17) % n);
    owner[g] = (owner[g] + 1 + k % (kProcs - 1)) % kProcs;
  }
  Assignment newA;
  newA.mine.resize(kProcs);
  for (Index g = 0; g < n; ++g) {
    newA.mine[static_cast<std::size_t>(owner[static_cast<std::size_t>(g)])]
        .push_back(g);
  }
  for (int r = 0; r < kProcs; ++r) {
    auto& lane = newA.mine[static_cast<std::size_t>(r)];
    lane = chaos::stableRemapOrder(oldA.mine[static_cast<std::size_t>(r)],
                                   lane);
  }
  return newA;
}

std::shared_ptr<IrregArray<double>> makeChaosArray(Comm& c, Index n,
                                                   const Assignment& a,
                                                   double base) {
  auto table = std::make_shared<const TranslationTable>(
      TranslationTable::build(c, a.mine[static_cast<std::size_t>(c.rank())],
                              n, TranslationTable::Storage::kReplicated));
  auto arr = std::make_shared<IrregArray<double>>(
      c, table, a.mine[static_cast<std::size_t>(c.rank())]);
  arr->fillByGlobal(
      [base](Index g) { return base + static_cast<double>(g); });
  return arr;
}

void expectSchedEqual(const McSchedule& a, const McSchedule& b) {
  ASSERT_EQ(a.plan.sends.size(), b.plan.sends.size());
  for (std::size_t i = 0; i < a.plan.sends.size(); ++i) {
    EXPECT_EQ(a.plan.sends[i].peer, b.plan.sends[i].peer);
    EXPECT_EQ(a.plan.sends[i].runs, b.plan.sends[i].runs);
    EXPECT_EQ(a.plan.sends[i].offsets, b.plan.sends[i].offsets);
  }
  ASSERT_EQ(a.plan.recvs.size(), b.plan.recvs.size());
  for (std::size_t i = 0; i < a.plan.recvs.size(); ++i) {
    EXPECT_EQ(a.plan.recvs[i].peer, b.plan.recvs[i].peer);
    EXPECT_EQ(a.plan.recvs[i].runs, b.plan.recvs[i].runs);
    EXPECT_EQ(a.plan.recvs[i].offsets, b.plan.recvs[i].offsets);
  }
  EXPECT_EQ(a.plan.localRuns, b.plan.localRuns);
  EXPECT_EQ(a.plan.localPairs, b.plan.localPairs);
  EXPECT_EQ(a.sendSegs, b.sendSegs);
  EXPECT_EQ(a.recvSegs, b.recvSegs);
  EXPECT_EQ(a.numElements, b.numElements);
  EXPECT_EQ(a.hasProvenance, b.hasProvenance);
}

/// The fuzz scenario: chaos source (replicated table) copied into an HPF
/// cyclic array; the chaos side repartitions with a bounded number of
/// migrations.
struct Scenario {
  static constexpr Index kN = 48;  // chaos array size
  static constexpr Index kM = 32;  // elements copied

  std::shared_ptr<IrregArray<double>> oldArr;
  std::shared_ptr<IrregArray<double>> newArr;
  std::shared_ptr<hpfrt::HpfArray<double>> dstArr;
  DistObject oldSrc;
  DistObject newSrc;
  DistObject dst;
  SetOfRegions srcSet;
  SetOfRegions dstSet;

  Scenario(Comm& c, unsigned seed, int moves)
      : Scenario(c, basePartition(kN, seed), moves, seed) {}

  Scenario(Comm& c, const Assignment& oldA, int moves, unsigned salt)
      : oldArr(makeChaosArray(c, kN, oldA, 100.0)),
        newArr(makeChaosArray(c, kN, mutate(oldA, kN, moves, salt), 100.0)),
        dstArr(std::make_shared<hpfrt::HpfArray<double>>(
            c, hpfrt::HpfDist(Shape::of({kM}),
                              {hpfrt::DimDist{hpfrt::DistKind::kCyclic,
                                              c.size(), 1}}))),
        oldSrc(ChaosAdapter::describe(*oldArr)),
        newSrc(ChaosAdapter::describe(*newArr)),
        dst(HpfAdapter::describe(*dstArr)) {
    // 5 is coprime to 48: kM distinct global indices, non-monotone order.
    std::vector<Index> ids;
    for (Index k = 0; k < kM; ++k) ids.push_back((5 * k + 2) % kN);
    srcSet.add(Region::indices(ids));
    dstSet.add(Region::section(RegularSection::of({0}, {kM - 1}, {1})));
  }

  std::vector<double> executed(Comm& c, const McSchedule& sched) {
    dstArr->fillByPoint([](const Point&) { return -1.0; });
    sched::execute<double>(c, sched.plan, newArr->raw(), dstArr->raw(),
                           c.nextUserTag());
    return dstArr->gatherGlobal();
  }
};

// ---------------------------------------------------------------------------
// The tentpole property: patched == fresh rebuild, bit for bit.

void runDifferentialFuzz(Method method) {
  World::runSPMD(kProcs, [&](Comm& c) {
    for (const unsigned seed : {7u, 21u}) {
      for (const int moves : {0, 1, 5, 16}) {
        Scenario s(c, seed, moves);
        const McSchedule old = computeSchedule(c, s.oldSrc, s.srcSet, s.dst,
                                               s.dstSet, method);
        ASSERT_TRUE(old.hasProvenance);
        const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
        const McSchedule patched = patchSchedule(
            c, old, delta, s.newSrc, s.srcSet, s.dst, s.dstSet);
        const McSchedule fresh = computeSchedule(c, s.newSrc, s.srcSet,
                                                 s.dst, s.dstSet, method);
        expectSchedEqual(patched, fresh);
        EXPECT_EQ(s.executed(c, patched), s.executed(c, fresh));
        if (moves == 0) {
          EXPECT_TRUE(delta.empty());
          expectSchedEqual(patched, old);
        }
        // Over-approximation is harmless: widen the delta arbitrarily.
        DistDelta over = delta;
        over.add(1, 6);
        over.add(Scenario::kM - 3, Scenario::kM);
        expectSchedEqual(patchSchedule(c, old, over, s.newSrc, s.srcSet,
                                       s.dst, s.dstSet),
                         fresh);
      }
    }
  });
}

TEST(ScheduleDelta, PatchedEqualsFreshCooperation) {
  runDifferentialFuzz(Method::kCooperation);
}

TEST(ScheduleDelta, PatchedEqualsFreshDuplication) {
  runDifferentialFuzz(Method::kDuplication);
}

TEST(ScheduleDelta, FullDeltaEqualsFresh) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 11u, 9);
    const McSchedule old =
        computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    DistDelta all;
    all.add(0, Scenario::kM);
    const McSchedule patched =
        patchSchedule(c, old, all, s.newSrc, s.srcSet, s.dst, s.dstSet);
    const McSchedule fresh =
        computeSchedule(c, s.newSrc, s.srcSet, s.dst, s.dstSet);
    expectSchedEqual(patched, fresh);
    const auto& ps = lastPatchStats();
    EXPECT_EQ(ps.segmentsReused, 0u);
    EXPECT_EQ(ps.elementsPatched, Scenario::kM);
  });
}

TEST(ScheduleDelta, PatchStatsCountReuse) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 3u, 2);
    const McSchedule old =
        computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
    EXPECT_LT(delta.migratedElements(), Scenario::kM);
    (void)patchSchedule(c, old, delta, s.newSrc, s.srcSet, s.dst, s.dstSet);
    const auto& ps = lastPatchStats();
    EXPECT_EQ(ps.elementsPatched, delta.migratedElements());
    // Somebody in the program reuses segments (a rank whose elements all
    // migrated may not — check the aggregate).
    const auto reused = c.allreduceValue(
        static_cast<Index>(ps.segmentsReused),
        [](Index a, Index b) { return a + b; });
    EXPECT_GT(reused, 0);
  });
}

// The destination side repartitions too: an HPF redistribution (cyclic ->
// block) patched against a mostly-full delta still matches the rebuild.
TEST(ScheduleDelta, DstSideRepartition) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 5u, 0);
    hpfrt::HpfArray<double> blockDst(
        c, hpfrt::HpfDist(Shape::of({Scenario::kM}),
                          {hpfrt::DimDist{hpfrt::DistKind::kBlock, c.size(),
                                          1}}));
    const DistObject newDst = HpfAdapter::describe(blockDst);
    const McSchedule old =
        computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    const DistDelta delta = computeDelta(s.dst, newDst, s.dstSet);
    const McSchedule patched =
        patchSchedule(c, old, delta, s.oldSrc, s.srcSet, newDst, s.dstSet);
    const McSchedule fresh =
        computeSchedule(c, s.oldSrc, s.srcSet, newDst, s.dstSet);
    expectSchedEqual(patched, fresh);
  });
}

TEST(ScheduleDelta, ReversedSchedulesAreNotPatchable) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 2u, 0);
    const McSchedule old =
        computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    EXPECT_TRUE(patchableSchedule(old, s.newSrc, s.dst));
    const McSchedule rev = reverseSchedule(old);
    EXPECT_FALSE(patchableSchedule(rev, s.newSrc, s.dst));
  });
}

// Execution equality under every drain-order x kernel-dispatch combination.
TEST(ScheduleDelta, ExecutionBitwiseUnderAllModes) {
  for (const auto order : {sched::DrainOrder::kArrival,
                           sched::DrainOrder::kPeer}) {
    for (const bool kernels : {true, false}) {
      sched::setDrainOrder(order);
      sched::setKernelDispatch(kernels);
      World::runSPMD(kProcs, [](Comm& c) {
        Scenario s(c, 13u, 6);
        const McSchedule old =
            computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
        const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
        const McSchedule patched = patchSchedule(c, old, delta, s.newSrc,
                                                 s.srcSet, s.dst, s.dstSet);
        const McSchedule fresh =
            computeSchedule(c, s.newSrc, s.srcSet, s.dst, s.dstSet);
        EXPECT_EQ(s.executed(c, patched), s.executed(c, fresh));
      });
    }
  }
  sched::setDrainOrder(sched::DrainOrder::kArrival);
  sched::setKernelDispatch(true);
}

// The element-wise reference pipeline records the same provenance as the
// run-native one (both re-coalesce through the same canonical greedy).
TEST(ScheduleDelta, ElementwiseProvenanceParity) {
  std::vector<McSchedule> runNative(kProcs);
  std::vector<McSchedule> elementwise(kProcs);
  const auto build = [](std::vector<McSchedule>& out) {
    World::runSPMD(kProcs, [&](Comm& c) {
      Scenario s(c, 17u, 4);
      out[static_cast<std::size_t>(c.rank())] =
          computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    });
  };
  build(runNative);
  const bool prev = testing::buildElementwiseForTest(true);
  build(elementwise);
  testing::buildElementwiseForTest(prev);
  for (int r = 0; r < kProcs; ++r) {
    const McSchedule& a = runNative[static_cast<std::size_t>(r)];
    const McSchedule& b = elementwise[static_cast<std::size_t>(r)];
    // Provenance is identical bit for bit; the plans agree element-wise
    // (the reference pipeline emits expanded offsets, not runs).
    EXPECT_EQ(a.sendSegs, b.sendSegs);
    EXPECT_EQ(a.recvSegs, b.recvSegs);
    EXPECT_TRUE(a.hasProvenance);
    EXPECT_TRUE(b.hasProvenance);
    ASSERT_EQ(a.plan.sends.size(), b.plan.sends.size());
    for (std::size_t i = 0; i < a.plan.sends.size(); ++i) {
      EXPECT_EQ(a.plan.sends[i].peer, b.plan.sends[i].peer);
      EXPECT_EQ(a.plan.sends[i].expandedOffsets(),
                b.plan.sends[i].expandedOffsets());
    }
    ASSERT_EQ(a.plan.recvs.size(), b.plan.recvs.size());
    for (std::size_t i = 0; i < a.plan.recvs.size(); ++i) {
      EXPECT_EQ(a.plan.recvs[i].peer, b.plan.recvs[i].peer);
      EXPECT_EQ(a.plan.recvs[i].expandedOffsets(),
                b.plan.recvs[i].expandedOffsets());
    }
  }
}

// ---------------------------------------------------------------------------
// computeDelta exactness against a brute-force enumerateAll diff.

TEST(ScheduleDelta, ComputeDeltaMatchesBruteForce) {
  World::runSPMD(kProcs, [](Comm& c) {
    for (const int moves : {0, 2, 7}) {
      Scenario s(c, 23u, moves);
      const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
      const LibraryAdapter& lib = Registry::instance().get("chaos");
      std::vector<std::pair<int, Index>> oldMap(
          static_cast<std::size_t>(Scenario::kM));
      std::vector<std::pair<int, Index>> newMap(
          static_cast<std::size_t>(Scenario::kM));
      lib.enumerateAll(s.oldSrc, s.srcSet, [&](Index lin, int owner,
                                               Index off) {
        oldMap[static_cast<std::size_t>(lin)] = {owner, off};
      });
      lib.enumerateAll(s.newSrc, s.srcSet, [&](Index lin, int owner,
                                               Index off) {
        newMap[static_cast<std::size_t>(lin)] = {owner, off};
      });
      // Soundness: every genuinely changed position is marked.  (The
      // converse does not hold exactly — a stride-mismatched joined
      // segment is marked whole even when some of its positions coincide;
      // that over-approximation is part of the DistDelta contract.)
      Index changed = 0;
      for (Index lin = 0; lin < Scenario::kM; ++lin) {
        if (oldMap[static_cast<std::size_t>(lin)] !=
            newMap[static_cast<std::size_t>(lin)]) {
          EXPECT_TRUE(delta.contains(lin)) << "lin " << lin;
          ++changed;
        }
      }
      EXPECT_GE(delta.migratedElements(), changed);
      EXPECT_LE(delta.migratedElements(), Scenario::kM);
      if (moves == 0) {
        EXPECT_TRUE(delta.empty());
      }
    }
  });
}

// deltaFromMigratedIndices agrees with computeDelta on an index-list set
// (its elements ARE global indices), given the exact migrated set.
TEST(ScheduleDelta, DeltaFromMigratedIndicesAgrees) {
  World::runSPMD(kProcs, [](Comm& c) {
    const Index n = Scenario::kN;
    const Assignment oldA = basePartition(n, 31u);
    const Assignment newA = mutate(oldA, n, 6, 31u);
    auto oldArr = makeChaosArray(c, n, oldA, 0.0);
    auto newArr = makeChaosArray(c, n, newA, 0.0);
    const auto migrated = chaos::migratedGlobals(
        c, oldArr->myGlobals(), newArr->myGlobals(), n);
    EXPECT_FALSE(migrated.empty());
    EXPECT_TRUE(std::is_sorted(migrated.begin(), migrated.end()));
    // Identity set: lin == global index.
    SetOfRegions set;
    std::vector<Index> iota(static_cast<std::size_t>(n));
    std::iota(iota.begin(), iota.end(), Index{0});
    set.add(Region::indices(iota));
    const DistDelta fromIdx = deltaFromMigratedIndices(set, migrated);
    const DistDelta fromCmp = computeDelta(ChaosAdapter::describe(*oldArr),
                                           ChaosAdapter::describe(*newArr),
                                           set);
    EXPECT_EQ(fromIdx.intervals(), fromCmp.intervals());
  });
}

// ---------------------------------------------------------------------------
// The redistribution move migrates exactly the delta-marked payloads.

TEST(ScheduleDelta, RedistMoveMigratesPayloads) {
  World::runSPMD(kProcs, [](Comm& c) {
    const Index n = Scenario::kN;
    const Assignment oldA = basePartition(n, 41u);
    const Assignment newA = mutate(oldA, n, 8, 41u);
    auto oldArr = makeChaosArray(c, n, oldA, 700.0);
    auto newArr = makeChaosArray(c, n, newA, 0.0);
    const auto migrated = chaos::migratedGlobals(
        c, oldArr->myGlobals(), newArr->myGlobals(), n);
    SetOfRegions set;
    std::vector<Index> iota(static_cast<std::size_t>(n));
    std::iota(iota.begin(), iota.end(), Index{0});
    set.add(Region::indices(iota));
    const DistDelta delta = deltaFromMigratedIndices(set, migrated);
    const sched::Schedule move =
        buildRedistMove(c, ChaosAdapter::describe(*oldArr),
                        ChaosAdapter::describe(*newArr), set, delta);
    // Unmigrated elements keep (owner, offset): carry them by straight
    // copy, then let the move overwrite the migrated positions.
    newArr->fillByGlobal([](Index) { return -1.0; });
    const auto src = oldArr->raw();
    auto dst = newArr->raw();
    for (std::size_t i = 0; i < std::min(src.size(), dst.size()); ++i) {
      dst[i] = src[i];
    }
    sched::execute<double>(c, move, src, dst, c.nextUserTag());
    const auto gathered = newArr->gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(g)],
                700.0 + static_cast<double>(g))
          << "global " << g;
    }
  });
}

// ---------------------------------------------------------------------------
// ScheduleCache::getOrPatch — patch on miss, delta-keyed secondary hits.

TEST(ScheduleDelta, GetOrPatchPatchesThenHits) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 29u, 4);
    ScheduleCache cache;
    const auto old =
        cache.getOrBuild(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
    const auto patched =
        cache.getOrPatch(c, s.oldSrc, s.newSrc, s.srcSet, s.dst, s.dst,
                         s.dstSet, delta);
    EXPECT_EQ(cache.patches(), 1u);
    EXPECT_EQ(cache.patchFallbacks(), 0u);
    expectSchedEqual(*patched,
                     computeSchedule(c, s.newSrc, s.srcSet, s.dst, s.dstSet));
    // Second call: straight hit on the new-distributions key.
    const auto again =
        cache.getOrPatch(c, s.oldSrc, s.newSrc, s.srcSet, s.dst, s.dst,
                         s.dstSet, delta);
    EXPECT_EQ(again.get(), patched.get());
    EXPECT_EQ(cache.patches(), 1u);
    // getOrBuild of the new pair also hits — the patched entry was inserted
    // under the new distributions' primary key.
    const auto viaBuild =
        cache.getOrBuild(c, s.newSrc, s.srcSet, s.dst, s.dstSet);
    EXPECT_EQ(viaBuild.get(), patched.get());
    (void)old;
  });
}

TEST(ScheduleDelta, GetOrPatchFallsBackWithoutCachedOld) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 37u, 3);
    ScheduleCache cache;  // empty: nothing to patch from
    const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
    const auto built =
        cache.getOrPatch(c, s.oldSrc, s.newSrc, s.srcSet, s.dst, s.dst,
                         s.dstSet, delta);
    EXPECT_EQ(cache.patches(), 0u);
    EXPECT_EQ(cache.patchFallbacks(), 1u);
    expectSchedEqual(*built,
                     computeSchedule(c, s.newSrc, s.srcSet, s.dst, s.dstSet));
  });
}

// ---------------------------------------------------------------------------
// Executor::rebind — same results as a fresh executor, buffers retained.

TEST(ScheduleDelta, RebindMatchesFreshExecutorAndKeepsBuffers) {
  World::runSPMD(kProcs, [](Comm& c) {
    Scenario s(c, 43u, 5);
    const McSchedule old =
        computeSchedule(c, s.oldSrc, s.srcSet, s.dst, s.dstSet);
    const DistDelta delta = computeDelta(s.oldSrc, s.newSrc, s.srcSet);
    const McSchedule patched =
        patchSchedule(c, old, delta, s.newSrc, s.srcSet, s.dst, s.dstSet);

    sched::Executor<double> ex(c, old.plan);
    s.dstArr->fillByPoint([](const Point&) { return -1.0; });
    ex.run(s.oldArr->raw(), s.dstArr->raw(), c.nextUserTag());

    ex.rebind(patched.plan);
    s.dstArr->fillByPoint([](const Point&) { return -1.0; });
    ex.run(s.newArr->raw(), s.dstArr->raw(), c.nextUserTag());
    const auto viaRebind = s.dstArr->gatherGlobal();

    // Warm steady state reached within one step: the next run performs no
    // payload allocations on any rank.
    const auto before = c.stats();
    s.dstArr->fillByPoint([](const Point&) { return -1.0; });
    ex.run(s.newArr->raw(), s.dstArr->raw(), c.nextUserTag());
    const auto diff = c.stats() - before;
    EXPECT_EQ(diff.allocations, 0u);

    // Bitwise identical to a never-rebound executor.
    sched::Executor<double> fresh(c, patched.plan);
    s.dstArr->fillByPoint([](const Point&) { return -1.0; });
    fresh.run(s.newArr->raw(), s.dstArr->raw(), c.nextUserTag());
    EXPECT_EQ(viaRebind, s.dstArr->gatherGlobal());
  });
}

// ---------------------------------------------------------------------------
// DerefCache::retarget — survivors carry across a remap.

TEST(ScheduleDelta, DerefCacheRetargetKeepsSurvivors) {
  chaos::DerefCache cache;
  const std::vector<Index> keys = {2, 5, 9, 14};
  const std::vector<chaos::ElementLoc> locs = {
      {0, 10}, {1, 20}, {2, 30}, {3, 40}};
  cache.insertSorted(9001, keys, locs);
  const std::vector<Index> migrated = {5, 11, 14};
  EXPECT_TRUE(cache.retarget(9001, 9002, migrated));
  EXPECT_EQ(cache.entryCount(), 2u);
  // Old uid: everything misses (the shard was rekeyed).
  std::vector<chaos::ElementLoc> out(keys.size());
  std::vector<std::uint8_t> hit(keys.size());
  EXPECT_EQ(cache.lookupSorted(9001, keys, out.data(), hit.data()), 0u);
  // New uid: survivors hit with their carried locations, migrated miss.
  EXPECT_EQ(cache.lookupSorted(9002, keys, out.data(), hit.data()), 2u);
  EXPECT_TRUE(hit[0] && !hit[1] && hit[2] && !hit[3]);
  EXPECT_EQ(out[0], (chaos::ElementLoc{0, 10}));
  EXPECT_EQ(out[2], (chaos::ElementLoc{2, 30}));
}

// Stats-diff regression: the remap's OWN copy-schedule build dereferences
// every old-owned global against the NEW table.  With selective retarget,
// the warm entries for unmigrated elements carry over and hit; only the
// actually-migrated references miss.  (The old behaviour dropped the whole
// shard, so the remap build started cold — every reference missed.)
TEST(ScheduleDelta, RemapKeepsDerefCacheHitsForSurvivors) {
  World::runSPMD(kProcs, [](Comm& c) {
    const Index n = 64;
    const Assignment oldA = basePartition(n, 53u);
    const auto& myOld = oldA.mine[static_cast<std::size_t>(c.rank())];
    auto table = std::make_shared<const TranslationTable>(
        TranslationTable::build(c, myOld, n,
                                TranslationTable::Storage::kDistributed));
    IrregArray<double> arr(c, table, myOld);
    arr.fillByGlobal([](Index g) { return static_cast<double>(g); });

    // Warm the cache with exactly the references the remap build will
    // dereference: this rank's own (old) globals.
    (void)table->dereferenceCached(c, myOld);

    // Remap with a small migration, slots kept stable.
    const Assignment newA = mutate(oldA, n, 4, 53u);
    std::vector<Index> migrated;
    const auto before = chaos::derefCacheStats();
    IrregArray<double> fresh =
        chaos::remap(arr, newA.mine[static_cast<std::size_t>(c.rank())],
                     TranslationTable::Storage::kDistributed, &migrated);
    const auto after = chaos::derefCacheStats();
    EXPECT_FALSE(migrated.empty());
    // A rank that shrank shifts its tail survivors, so the migrated set can
    // exceed the moved count — but stays well under the whole array.
    EXPECT_LT(static_cast<Index>(migrated.size()), n / 2);

    std::size_t myMigrated = 0;
    for (const Index g : myOld) {
      if (std::binary_search(migrated.begin(), migrated.end(), g)) {
        ++myMigrated;
      }
    }
    EXPECT_EQ(after.retargets - before.retargets, 1u);
    EXPECT_EQ(after.misses - before.misses, myMigrated);
    EXPECT_EQ(after.hits - before.hits, myOld.size() - myMigrated);
    // The moved data arrived intact.
    const auto gathered = fresh.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(g)],
                static_cast<double>(g));
    }
  });
}

}  // namespace
}  // namespace mc::core
