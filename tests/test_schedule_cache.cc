// The schedule cache: identical rebuilds hit, any key ingredient change
// misses, LRU eviction respects capacity, cached schedules move bytes
// exactly like freshly built ones for every adapter pair, and the MC_* API
// surfaces the counters.
#include <gtest/gtest.h>

#include <map>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/copy_regions.h"
#include "core/mc_api.h"
#include "core/schedule_cache.h"
#include "hpfrt/redistribute.h"
#include "parti/sched_cache.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

// ---------------------------------------------------------------------------
// KeyedCache unit tests (no world needed).

sched::KeyedCache<int>::Key keyOf(int salt) {
  HashStream h;
  h.pod(salt);
  return h.digest();
}

TEST(KeyedCache, FindCountsHitsAndMisses) {
  sched::KeyedCache<int> cache(4);
  EXPECT_EQ(cache.find(keyOf(1)), nullptr);
  cache.insert(keyOf(1), std::make_shared<int>(10));
  const auto hit = cache.find(keyOf(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(KeyedCache, PeekDoesNotTouchStatsOrOrder) {
  sched::KeyedCache<int> cache(2);
  cache.insert(keyOf(1), std::make_shared<int>(1));
  cache.insert(keyOf(2), std::make_shared<int>(2));
  EXPECT_NE(cache.peek(keyOf(1)), nullptr);
  EXPECT_EQ(cache.peek(keyOf(3)), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(KeyedCache, LruEvictionRespectsCapacity) {
  sched::KeyedCache<int> cache(2);
  cache.insert(keyOf(1), std::make_shared<int>(1));
  cache.insert(keyOf(2), std::make_shared<int>(2));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.find(keyOf(1)), nullptr);
  cache.insert(keyOf(3), std::make_shared<int>(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.peek(keyOf(1)), nullptr);
  EXPECT_EQ(cache.peek(keyOf(2)), nullptr);  // evicted
  EXPECT_NE(cache.peek(keyOf(3)), nullptr);
}

TEST(KeyedCache, SetCapacityEvictsDown) {
  sched::KeyedCache<int> cache(8);
  for (int i = 0; i < 6; ++i) cache.insert(keyOf(i), std::make_shared<int>(i));
  cache.setCapacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 4u);
  // The two most recently inserted survive.
  EXPECT_NE(cache.peek(keyOf(4)), nullptr);
  EXPECT_NE(cache.peek(keyOf(5)), nullptr);
}

TEST(KeyedCache, InsertReplacesUnderSameKey) {
  sched::KeyedCache<int> cache(2);
  cache.insert(keyOf(1), std::make_shared<int>(1));
  cache.insert(keyOf(1), std::make_shared<int>(99));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.peek(keyOf(1)), 99);
}

// ---------------------------------------------------------------------------
// ScheduleCache behaviour on live distributed objects.

enum class Lib { kParti, kHpf, kChaos, kTulip };
constexpr Index kElems = 16;

double valueOf(Index g) { return 2000.0 + static_cast<double>(g); }

struct Instance {
  DistObject obj;
  SetOfRegions set;
  std::vector<Index> setGlobalIds;
  std::function<std::span<double>()> raw;
  std::function<std::vector<double>()> gather;
  std::function<void(double)> refill;  // value base -> re-initialize
  std::shared_ptr<void> holder;
};

Instance makeParti(Comm& c) {
  auto arr = std::make_shared<parti::BlockDistArray<double>>(
      c, Shape::of({8, 8}), /*ghost=*/1);
  auto fill = [arr](double base) {
    arr->fillByPoint(
        [base](const Point& p) { return base + static_cast<double>(p[0] * 8 + p[1]); });
  };
  fill(2000.0);
  Instance inst{PartiAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                fill,
                arr};
  const RegularSection r = RegularSection::box({2, 2}, {5, 5});
  inst.set.add(Region::section(r));
  r.forEach([&](const Point& p, Index) {
    inst.setGlobalIds.push_back(p[0] * 8 + p[1]);
  });
  return inst;
}

Instance makeHpf(Comm& c) {
  auto arr = std::make_shared<hpfrt::HpfArray<double>>(
      c, hpfrt::HpfDist(Shape::of({32}),
                        {hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1}}));
  auto fill = [arr](double base) {
    arr->fillByPoint([base](const Point& p) { return base + static_cast<double>(p[0]); });
  };
  fill(2000.0);
  Instance inst{HpfAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                fill,
                arr};
  const RegularSection r = RegularSection::of({1}, {31}, {2});
  inst.set.add(Region::section(r));
  r.forEach([&](const Point& p, Index) { inst.setGlobalIds.push_back(p[0]); });
  return inst;
}

Instance makeChaos(Comm& c, bool replicated) {
  const Index n = 20;
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 5);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n,
          replicated ? chaos::TranslationTable::Storage::kReplicated
                     : chaos::TranslationTable::Storage::kDistributed));
  auto arr = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  auto fill = [arr](double base) {
    arr->fillByGlobal([base](Index g) { return base + static_cast<double>(g); });
  };
  fill(2000.0);
  Instance inst{ChaosAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                fill,
                arr};
  std::vector<Index> ids;
  for (Index k = 0; k < kElems; ++k) ids.push_back((3 * k + 1) % n);
  // (3k+1) mod 20 over k=0..15 yields 16 distinct indices.
  inst.set.add(Region::indices(ids));
  inst.setGlobalIds = ids;
  return inst;
}

Instance makeTulip(Comm& c) {
  const Index n = 40;
  auto coll = std::make_shared<tulip::Collection<double>>(
      c, n, tulip::Placement::kCyclic);
  auto fill = [coll](double base) {
    coll->forEachOwned([base](Index g, double& v) { v = base + static_cast<double>(g); });
  };
  fill(2000.0);
  Instance inst{TulipAdapter::describe(*coll),
                SetOfRegions{},
                {},
                [coll]() { return coll->raw(); },
                [coll]() { return coll->gatherGlobal(); },
                fill,
                coll};
  inst.set.add(Region::range(3, 33, 2));
  for (Index k = 0; k < kElems; ++k) inst.setGlobalIds.push_back(3 + 2 * k);
  return inst;
}

Instance makeInstance(Lib lib, Comm& c, bool chaosReplicated = false) {
  switch (lib) {
    case Lib::kParti: return makeParti(c);
    case Lib::kHpf: return makeHpf(c);
    case Lib::kChaos: return makeChaos(c, chaosReplicated);
    case Lib::kTulip: return makeTulip(c);
  }
  MC_CHECK(false);
  return makeParti(c);
}

TEST(ScheduleCache, IdenticalRebuildHitsAndSharesTheSchedule) {
  World::runSPMD(3, [](Comm& c) {
    ScheduleCache cache;
    Instance src = makeParti(c);
    Instance dst = makeHpf(c);
    const auto first =
        cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    const auto second =
        cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    EXPECT_EQ(first.get(), second.get());  // same cached object
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_TRUE(first->plan.compressed());
  });
}

TEST(ScheduleCache, AnyKeyIngredientChangeMisses) {
  World::runSPMD(2, [](Comm& c) {
    ScheduleCache cache;
    Instance src = makeParti(c);
    Instance dst = makeTulip(c);
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);

    // Different destination regions (same element count).
    SetOfRegions otherSet;
    otherSet.add(Region::range(4, 34, 2));
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, otherSet);
    EXPECT_EQ(cache.stats().misses, 2u);

    // Different method.
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set,
                           Method::kDuplication);
    EXPECT_EQ(cache.stats().misses, 3u);

    // Different source distribution (ghost width changes the descriptor).
    auto arr2 = std::make_shared<parti::BlockDistArray<double>>(
        c, Shape::of({8, 8}), /*ghost=*/2);
    arr2->fillByPoint([](const Point& p) { return valueOf(p[0] * 8 + p[1]); });
    (void)cache.getOrBuild(c, PartiAdapter::describe(*arr2), src.set, dst.obj,
                           dst.set);
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // The original key still hits.
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    EXPECT_EQ(cache.stats().hits, 1u);
  });
}

TEST(ScheduleCache, EvictionRespectsCapacity) {
  World::runSPMD(2, [](Comm& c) {
    ScheduleCache cache(/*capacity=*/1);
    Instance src = makeParti(c);
    Instance dst = makeTulip(c);
    SetOfRegions setB;
    setB.add(Region::range(4, 34, 2));

    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, setB);  // evicts
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 1u);
    // The first schedule was evicted: rebuilding it misses again.
    (void)cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 0u);
  });
}

TEST(ScheduleCache, DivergentRanksAgreeOnMissWithoutDeadlock) {
  // If one rank lost its cached copy (here: forced clear), the collective
  // agreement must make every rank rebuild together instead of deadlocking.
  World::runSPMD(3, [](Comm& c) {
    ScheduleCache cache;
    Instance src = makeHpf(c);
    Instance dst = makeChaos(c, /*replicated=*/false);
    const auto first = cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    if (c.rank() == 0) cache.clear();
    const auto second = cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(cache.stats().misses, 2u);  // all ranks rebuild in lockstep
    // The rebuilt schedule matches the original plan.
    ASSERT_EQ(second->plan.sends.size(), first->plan.sends.size());
    for (size_t i = 0; i < second->plan.sends.size(); ++i) {
      EXPECT_EQ(second->plan.sends[i].peer, first->plan.sends[i].peer);
      EXPECT_TRUE(second->plan.sends[i].runs == first->plan.sends[i].runs);
    }
  });
}

struct CachePairCase {
  Lib src;
  Lib dst;
};

class CachedCopyPairP : public ::testing::TestWithParam<CachePairCase> {};

TEST_P(CachedCopyPairP, CachedEqualsFreshBitwise) {
  const CachePairCase tc = GetParam();
  World::runSPMD(3, [&](Comm& c) {
    Instance src = makeInstance(tc.src, c);
    Instance dst = makeInstance(tc.dst, c);

    // Fresh (uncached, uncompressed) schedule and copy.
    const McSchedule fresh =
        computeSchedule(c, src.obj, src.set, dst.obj, dst.set);
    dst.refill(4000.0);
    dataMove<double>(c, fresh, src.raw(), dst.raw());
    const auto wantDst = dst.gather();

    // Reset the destination to the same pre-copy state, then copy through
    // the cache twice; the second pass must be a hit and reproduce the
    // same bytes (set elements carry source values, so a dropped copy
    // would leave the refill value behind and fail the comparison).
    ScheduleCache cache;
    dst.refill(4000.0);
    copyRegions<double>(c, src.obj, src.set, src.raw(), dst.obj, dst.set,
                        dst.raw(), Method::kCooperation, &cache);
    EXPECT_EQ(dst.gather(), wantDst);

    dst.refill(4000.0);
    copyRegions<double>(c, src.obj, src.set, src.raw(), dst.obj, dst.set,
                        dst.raw(), Method::kCooperation, &cache);
    EXPECT_EQ(dst.gather(), wantDst);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
  });
}

std::vector<CachePairCase> cachePairs() {
  std::vector<CachePairCase> cases;
  for (Lib s : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
    for (Lib d : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
      cases.push_back(CachePairCase{s, d});
    }
  }
  return cases;
}

const char* libName(Lib l) {
  switch (l) {
    case Lib::kParti: return "parti";
    case Lib::kHpf: return "hpf";
    case Lib::kChaos: return "chaos";
    case Lib::kTulip: return "tulip";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CachedCopyPairP, ::testing::ValuesIn(cachePairs()),
    [](const ::testing::TestParamInfo<CachePairCase>& info) {
      return std::string(libName(info.param.src)) + "_to_" +
             libName(info.param.dst);
    });

TEST(ScheduleCache, InterProgramHalvesHitInLockstep) {
  const int kClient = 0, kServer = 1;
  auto clientMain = [&](Comm& c) {
    ScheduleCache cache;
    Instance src = makeParti(c);
    const auto first =
        cache.getOrBuildSend(c, src.obj, src.set, kServer);
    const auto second =
        cache.getOrBuildSend(c, src.obj, src.set, kServer);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    core::dataMoveSend<double>(c, *second, src.raw());
  };
  auto serverMain = [&](Comm& c) {
    ScheduleCache cache;
    Instance dst = makeHpf(c);
    const auto first = cache.getOrBuildRecv(c, dst.obj, dst.set, kClient);
    const auto second = cache.getOrBuildRecv(c, dst.obj, dst.set, kClient);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    core::dataMoveRecv<double>(c, *second, dst.raw());
    // The transfer pairs elements in set order across the programs.
    const auto got = dst.gather();
    for (Index k = 0; k < kElems; ++k) {
      const Index g = dst.setGlobalIds[static_cast<size_t>(k)];
      // Client's parti source global id at position k, over an 8x8 mesh.
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(g)],
                       2000.0 + static_cast<double>(
                                    18 + (k / 4) * 8 + (k % 4)));
    }
  };
  World::run({ProgramSpec{"client", 2, clientMain},
              ProgramSpec{"server", 2, serverMain}});
}

TEST(ScheduleCache, McApiSurfacesCounters) {
  World::runSPMD(2, [](Comm& c) {
    api::MC_Reset();
    api::MC_SchedCacheClear();
    auto arr = std::make_shared<parti::BlockDistArray<double>>(
        c, Shape::of({8, 8}), 1);
    arr->fillByPoint([](const Point& p) { return valueOf(p[0] * 8 + p[1]); });
    auto coll = std::make_shared<tulip::Collection<double>>(
        c, 40, tulip::Placement::kCyclic);
    coll->forEachOwned([](Index, double& v) { v = 0.0; });

    const layout::Index lo[2] = {2, 2}, hi[2] = {5, 5};
    const api::RegionId r1 = api::CreateRegion_Parti(2, lo, hi);
    const api::SetId s1 = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(r1, s1);
    const api::RegionId r2 = api::CreateRegion_PCXX(3, 33, 2);
    const api::SetId s2 = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(r2, s2);
    const api::ObjectId o1 = api::MC_RegisterParti(*arr);
    const api::ObjectId o2 = api::MC_RegisterPCXX(*coll);

    const api::SchedId h1 = api::MC_ComputeSched(c, o1, s1, o2, s2);
    const api::SchedId h2 = api::MC_ComputeSched(c, o1, s1, o2, s2);
    EXPECT_NE(h1, h2);  // fresh handle...
    EXPECT_EQ(&api::MC_GetSched(h1), &api::MC_GetSched(h2));  // ...same schedule
    EXPECT_EQ(api::MC_SchedCacheStats().misses, 1u);
    EXPECT_EQ(api::MC_SchedCacheStats().hits, 1u);

    api::MC_SchedCacheResetStats();
    EXPECT_EQ(api::MC_SchedCacheStats().hits, 0u);
    // Entries survive a stats reset.
    (void)api::MC_ComputeSched(c, o1, s1, o2, s2);
    EXPECT_EQ(api::MC_SchedCacheStats().hits, 1u);

    api::MC_SchedCacheClear();
    (void)api::MC_ComputeSched(c, o1, s1, o2, s2);
    EXPECT_EQ(api::MC_SchedCacheStats().misses, 1u);
    api::MC_Reset();
    api::MC_SchedCacheClear();
  });
}

TEST(ScheduleCache, LibraryCachesHitOnRebuild) {
  World::runSPMD(2, [](Comm& c) {
    // Parti ghost + section-copy cache.
    parti::partiScheduleCache().clear();
    parti::partiScheduleCache().resetStats();
    parti::PartiDesc desc{layout::BlockDecomp(Shape::of({8, 8}), {c.size(), 1}),
                          1};
    const auto g1 = parti::cachedGhostSchedule(desc, c.rank());
    const auto g2 = parti::cachedGhostSchedule(desc, c.rank());
    EXPECT_EQ(g1.get(), g2.get());
    EXPECT_TRUE(g1->compressed());
    EXPECT_EQ(parti::partiScheduleCache().stats().hits, 1u);

    // HPF redistribution cache via sectionAssign.
    hpfrt::hpfScheduleCache().clear();
    hpfrt::hpfScheduleCache().resetStats();
    hpfrt::HpfArray<double> a(
        c, hpfrt::HpfDist(Shape::of({24}),
                          {hpfrt::DimDist{hpfrt::DistKind::kBlock, c.size(), 1}}));
    hpfrt::HpfArray<double> b(
        c, hpfrt::HpfDist(Shape::of({24}),
                          {hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1}}));
    a.fillByPoint([](const Point& p) { return valueOf(p[0]); });
    const RegularSection whole = RegularSection::box({0}, {23});
    hpfrt::sectionAssign(a, whole, b, whole);
    hpfrt::sectionAssign(a, whole, b, whole);
    EXPECT_EQ(hpfrt::hpfScheduleCache().stats().misses, 1u);
    EXPECT_EQ(hpfrt::hpfScheduleCache().stats().hits, 1u);
    const auto got = b.gatherGlobal();
    for (Index g = 0; g < 24; ++g) {
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(g)], valueOf(g));
    }
  });
}

}  // namespace
}  // namespace mc::core
