// Tests for the Multiblock-Parti-like library: distributed arrays, ghost
// exchange, regular-section copy, stencil sweeps.
#include <gtest/gtest.h>

#include "parti/dist_array.h"
#include "parti/ghost.h"
#include "parti/section_copy.h"
#include "parti/stencil.h"
#include "transport/world.h"

namespace mc::parti {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

double cell(Index i, Index j) { return 1000.0 * static_cast<double>(i) + static_cast<double>(j); }

TEST(PartiDesc, PaddedOffsets) {
  // 8x8 over 2x2 grid, ghost 1: proc 0 padded shape 6x6, owned at (1,1).
  PartiDesc d{layout::BlockDecomp(Shape::of({8, 8}), {2, 2}), 1};
  EXPECT_EQ(d.paddedShape(0), Shape::of({6, 6}));
  EXPECT_EQ(d.paddedOffsetOf(0, Point::of({0, 0})), 7);   // (1,1) in 6x6
  EXPECT_EQ(d.paddedOffsetOf(0, Point::of({3, 3})), 28);  // (4,4)
  // Halo point from the neighbour's block is addressable.
  EXPECT_EQ(d.paddedOffsetOf(0, Point::of({4, 0})), 31);  // (5,1)
  // Beyond the halo is not.
  EXPECT_THROW(d.paddedOffsetOf(0, Point::of({5, 0})), Error);
}

TEST(PartiArray, FillAndGather) {
  for (int np : {1, 2, 4}) {
    World::runSPMD(np, [](Comm& c) {
      BlockDistArray<double> a(c, Shape::of({6, 5}));
      a.fillByPoint([](const Point& p) { return cell(p[0], p[1]); });
      const auto global = a.gatherGlobal();
      for (Index i = 0; i < 6; ++i) {
        for (Index j = 0; j < 5; ++j) {
          EXPECT_DOUBLE_EQ(global[static_cast<size_t>(i * 5 + j)], cell(i, j));
        }
      }
    });
  }
}

TEST(PartiArray, MismatchedDecompRejected) {
  World::runSPMD(2, [](Comm& c) {
    layout::BlockDecomp d(Shape::of({4, 4}), {1, 1});  // 1-proc decomp
    EXPECT_THROW(BlockDistArray<double>(c, d, 0), Error);
  });
}

TEST(Ghost, FillsAllHaloCells) {
  for (int np : {2, 4}) {
    World::runSPMD(np, [](Comm& c) {
      BlockDistArray<double> a(c, Shape::of({8, 8}), 1);
      a.fillByPoint([](const Point& p) { return cell(p[0], p[1]); });
      const Schedule sched = buildGhostSchedule(a);
      exchangeGhosts(a, sched);
      // Every in-domain halo point now holds the owner's value.
      const RegularSection box = a.ownedBox();
      const RegularSection halo =
          layout::expandBox(box, 1, a.globalShape());
      halo.forEach([&](const Point& p, Index) {
        EXPECT_DOUBLE_EQ(a.at(p), cell(p[0], p[1]))
            << "at (" << p[0] << "," << p[1] << ")";
      });
    });
  }
}

TEST(Ghost, WidthTwo) {
  World::runSPMD(4, [](Comm& c) {
    BlockDistArray<int> a(c, Shape::of({12, 12}), 2);
    a.fillByPoint([](const Point& p) { return static_cast<int>(p[0] * 100 + p[1]); });
    const Schedule sched = buildGhostSchedule(a);
    exchangeGhosts(a, sched);
    const RegularSection halo = layout::expandBox(a.ownedBox(), 2, a.globalShape());
    halo.forEach([&](const Point& p, Index) {
      EXPECT_EQ(a.at(p), static_cast<int>(p[0] * 100 + p[1]));
    });
  });
}

TEST(Ghost, ZeroWidthIsEmptySchedule) {
  World::runSPMD(2, [](Comm& c) {
    BlockDistArray<double> a(c, Shape::of({4, 4}), 0);
    const Schedule sched = buildGhostSchedule(a);
    EXPECT_TRUE(sched.sends.empty());
    EXPECT_TRUE(sched.recvs.empty());
  });
}

TEST(Ghost, OneMessagePerNeighbourPair) {
  World::runSPMD(4, [](Comm& c) {
    BlockDistArray<double> a(c, Shape::of({8, 8}), 1);
    const Schedule sched = buildGhostSchedule(a);
    c.resetStats();
    exchangeGhosts(a, sched);
    // 2x2 grid with corner halos: every proc exchanges with all 3 others.
    EXPECT_EQ(c.stats().messagesSent, 3u);
    EXPECT_EQ(c.stats().messagesReceived, 3u);
  });
}

// Reference oracle: serial section copy by conformant index mapping.
void oracleSectionCopy(const RegularSection& srcSec, std::vector<double>& dst,
                       const std::vector<double>& src, const Shape& srcShape,
                       const RegularSection& dstSec, const Shape& dstShape) {
  srcSec.forEach([&](const Point& sp, Index pos) {
    const Point dp = dstSec.pointAt(pos);
    dst[static_cast<size_t>(rowMajorOffset(dstShape, dp))] =
        src[static_cast<size_t>(rowMajorOffset(srcShape, sp))];
  });
}

struct CopyCase {
  Shape srcShape, dstShape;
  RegularSection srcSec, dstSec;
  int nprocs;
};

class SectionCopyP : public ::testing::TestWithParam<CopyCase> {};

TEST_P(SectionCopyP, MatchesOracle) {
  const CopyCase tc = GetParam();
  World::runSPMD(tc.nprocs, [&](Comm& c) {
    BlockDistArray<double> a(c, tc.srcShape);
    BlockDistArray<double> b(c, tc.dstShape);
    a.fillByPoint([](const Point& p) { return cell(p[0], p[1]); });
    b.fillByPoint([](const Point& p) { return -cell(p[0], p[1]); });
    const Schedule sched = buildSectionCopySchedule(
        a.desc(), tc.srcSec, b.desc(), tc.dstSec, c.rank());
    sectionCopy(sched, a, b);

    const auto got = b.gatherGlobal();
    // Build the oracle from the initial global images.
    std::vector<double> srcImg(static_cast<size_t>(tc.srcShape.numElements()));
    std::vector<double> want(static_cast<size_t>(tc.dstShape.numElements()));
    RegularSection::all(tc.srcShape).forEach([&](const Point& p, Index) {
      srcImg[static_cast<size_t>(rowMajorOffset(tc.srcShape, p))] = cell(p[0], p[1]);
    });
    RegularSection::all(tc.dstShape).forEach([&](const Point& p, Index) {
      want[static_cast<size_t>(rowMajorOffset(tc.dstShape, p))] = -cell(p[0], p[1]);
    });
    oracleSectionCopy(tc.srcSec, want, srcImg, tc.srcShape, tc.dstSec,
                      tc.dstShape);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], want[i]) << "at flat index " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SectionCopyP,
    ::testing::Values(
        // whole-array copy, same shapes
        CopyCase{Shape::of({8, 8}), Shape::of({8, 8}),
                 RegularSection::box({0, 0}, {7, 7}),
                 RegularSection::box({0, 0}, {7, 7}), 4},
        // shifted block (inter-block boundary update pattern)
        CopyCase{Shape::of({16, 16}), Shape::of({16, 16}),
                 RegularSection::box({0, 0}, {7, 15}),
                 RegularSection::box({8, 0}, {15, 15}), 4},
        // different shapes, offset sections
        CopyCase{Shape::of({12, 10}), Shape::of({9, 20}),
                 RegularSection::box({2, 1}, {7, 6}),
                 RegularSection::box({3, 10}, {8, 15}), 3},
        // strided source onto dense destination
        CopyCase{Shape::of({16, 16}), Shape::of({8, 8}),
                 RegularSection::of({0, 0}, {15, 15}, {2, 2}),
                 RegularSection::box({0, 0}, {7, 7}), 4},
        // dense source onto strided destination
        CopyCase{Shape::of({6, 6}), Shape::of({18, 12}),
                 RegularSection::box({1, 1}, {4, 4}),
                 RegularSection::of({0, 0}, {15, 10}, {5, 3}), 2},
        // single processor degenerate
        CopyCase{Shape::of({10, 10}), Shape::of({10, 10}),
                 RegularSection::box({0, 0}, {4, 9}),
                 RegularSection::box({5, 0}, {9, 9}), 1},
        // many processors, small array (empty blocks likely)
        CopyCase{Shape::of({5, 5}), Shape::of({5, 5}),
                 RegularSection::box({0, 0}, {3, 3}),
                 RegularSection::box({1, 1}, {4, 4}), 8},
        // 1-D arrays
        CopyCase{Shape::of({100}), Shape::of({60}),
                 RegularSection::of({0}, {98}, {2}),
                 RegularSection::box({5}, {54}), 4}),
    [](const ::testing::TestParamInfo<CopyCase>& info) {
      return "case" + std::to_string(info.index);
    });

TEST(SectionCopy, RejectsNonConformant) {
  World::runSPMD(1, [](Comm& c) {
    BlockDistArray<double> a(c, Shape::of({8, 8}));
    BlockDistArray<double> b(c, Shape::of({8, 8}));
    EXPECT_THROW(buildSectionCopySchedule(
                     a.desc(), RegularSection::box({0, 0}, {3, 3}),
                     b.desc(), RegularSection::box({0, 0}, {3, 4}), 0),
                 Error);
  });
}

TEST(SectionCopy, MessageCountIsMinimal) {
  // Copying the left half to the right half on a 1x4 grid: each source proc
  // sends to exactly the procs owning its image — no more.
  World::runSPMD(4, [](Comm& c) {
    layout::BlockDecomp d(Shape::of({8, 8}), {1, 4});
    BlockDistArray<double> a(c, d, 0);
    BlockDistArray<double> b(c, d, 0);
    const auto srcSec = RegularSection::box({0, 0}, {7, 3});
    const auto dstSec = RegularSection::box({0, 4}, {7, 7});
    const Schedule sched =
        buildSectionCopySchedule(a.desc(), srcSec, b.desc(), dstSec, c.rank());
    // Source columns 0..3 live on procs 0,1; images (cols 4..7) on procs 2,3.
    // Proc 0 owns cols 0,1 -> images cols 4,5 -> exactly proc 2.
    if (c.rank() == 0) {
      ASSERT_EQ(sched.sends.size(), 1u);
      EXPECT_EQ(sched.sends[0].peer, 2);
      EXPECT_TRUE(sched.recvs.empty());
    }
    if (c.rank() == 2) {
      ASSERT_EQ(sched.recvs.size(), 1u);
      EXPECT_EQ(sched.recvs[0].peer, 0);
      EXPECT_TRUE(sched.sends.empty());
    }
    sectionCopy(sched, a, b);  // completes without mismatch
  });
}

TEST(SectionCopy, LocalBufferingMatchesDirect) {
  // The intermediate-buffer local path and the direct path must agree even
  // when source and destination alias the same array (in-place shift).
  World::runSPMD(1, [](Comm& c) {
    for (bool buffered : {true, false}) {
      BlockDistArray<double> a(c, Shape::of({10}));
      a.fillByPoint([](const Point& p) { return static_cast<double>(p[0]); });
      Schedule sched = buildSectionCopySchedule(
          a.desc(), RegularSection::box({0}, {8}), a.desc(),
          RegularSection::box({1}, {9}), 0);
      sched.bufferLocalCopies = buffered;
      if (buffered) {
        // Parti semantics: the staging buffer makes in-place shifts safe.
        execute<double>(c, sched, a.raw(), a.raw(), c.nextUserTag());
        const auto g = a.gatherGlobal();
        for (Index i = 1; i < 10; ++i) {
          EXPECT_DOUBLE_EQ(g[static_cast<size_t>(i)], static_cast<double>(i - 1));
        }
      }
    }
  });
}

TEST(Stencil, MatchesSerialSweep) {
  // Run the Figure-1 Loop-1 sweep for several steps on several processor
  // counts and compare with a serial reference.
  const Index n = 12;
  const int steps = 3;
  // Serial reference.
  std::vector<double> ref(static_cast<size_t>(n * n));
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      ref[static_cast<size_t>(i * n + j)] = cell(i, j);
    }
  }
  for (int s = 0; s < steps; ++s) {
    std::vector<double> old = ref;
    for (Index i = 1; i <= n - 2; ++i) {
      for (Index j = 1; j <= n - 2; ++j) {
        ref[static_cast<size_t>(i * n + j)] =
            old[static_cast<size_t>(i * n + j - 1)] +
            old[static_cast<size_t>((i - 1) * n + j)] +
            old[static_cast<size_t>((i + 1) * n + j)] +
            old[static_cast<size_t>(i * n + j + 1)];
      }
    }
  }
  for (int np : {1, 2, 4}) {
    World::runSPMD(np, [&](Comm& c) {
      BlockDistArray<double> a(c, Shape::of({n, n}), 1);
      a.fillByPoint([](const Point& p) { return cell(p[0], p[1]); });
      const Schedule sched = buildGhostSchedule(a);
      std::vector<double> scratch;
      for (int s = 0; s < steps; ++s) stencilSweep(a, sched, scratch);
      const auto got = a.gatherGlobal();
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i], ref[i]) << "np=" << np << " flat=" << i;
      }
    });
  }
}

}  // namespace
}  // namespace mc::parti
