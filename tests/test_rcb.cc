// Tests for the recursive-coordinate-bisection partitioner and mesh
// coordinates, including an end-to-end edge sweep over an RCB-partitioned
// unstructured mesh (the realistic Chaos usage: a geometric partitioner
// feeds the runtime).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chaos/irregular_loop.h"
#include "chaos/partition.h"
#include "meshgen/meshgen.h"
#include "transport/world.h"

namespace mc::chaos {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

std::pair<std::vector<double>, std::vector<double>> gridCoords(Index side,
                                                               std::uint64_t seed) {
  const auto perm = meshgen::nodePermutation(side * side, seed);
  auto coords = meshgen::gridCoordinates(side, side, perm);
  return {std::move(coords.x), std::move(coords.y)};
}

TEST(Rcb, CoversExactlyOnce) {
  const auto [x, y] = gridCoords(9, 3);
  for (int np : {1, 2, 3, 7, 8}) {
    std::set<Index> seen;
    for (int r = 0; r < np; ++r) {
      for (Index g : rcbPartition(x, y, np, r)) {
        EXPECT_TRUE(seen.insert(g).second);
      }
    }
    EXPECT_EQ(seen.size(), x.size());
  }
}

TEST(Rcb, BalancedParts) {
  const auto [x, y] = gridCoords(16, 5);
  const int np = 8;
  for (int r = 0; r < np; ++r) {
    const auto mine = rcbPartition(x, y, np, r);
    EXPECT_NEAR(static_cast<double>(mine.size()), 256.0 / np, 1.0);
  }
}

TEST(Rcb, Deterministic) {
  const auto [x, y] = gridCoords(8, 9);
  EXPECT_EQ(rcbPartition(x, y, 4, 2), rcbPartition(x, y, 4, 2));
}

TEST(Rcb, PartsAreSpatiallyCompact) {
  // Each RCB part's bounding box must be much smaller than the domain: the
  // whole point of a geometric partitioner.
  const Index side = 16;
  const auto [x, y] = gridCoords(side, 1);
  const int np = 4;
  for (int r = 0; r < np; ++r) {
    const auto mine = rcbPartition(x, y, np, r);
    double xMin = 1e9, xMax = -1e9, yMin = 1e9, yMax = -1e9;
    for (Index g : mine) {
      xMin = std::min(xMin, x[static_cast<size_t>(g)]);
      xMax = std::max(xMax, x[static_cast<size_t>(g)]);
      yMin = std::min(yMin, y[static_cast<size_t>(g)]);
      yMax = std::max(yMax, y[static_cast<size_t>(g)]);
    }
    const double area = (xMax - xMin + 1) * (yMax - yMin + 1);
    // A quadrant-ish part covers ~1/4 of the domain, far below the whole.
    EXPECT_LE(area, 0.6 * side * side) << "rank " << r;
  }
}

TEST(Rcb, DegenerateInputs) {
  std::vector<double> x{0.5}, y{0.5};
  EXPECT_EQ(rcbPartition(x, y, 1, 0), (std::vector<Index>{0}));
  // More parts than points: someone gets nothing, everything covered once.
  std::set<Index> seen;
  for (int r = 0; r < 4; ++r) {
    for (Index g : rcbPartition(x, y, 4, r)) seen.insert(g);
  }
  EXPECT_EQ(seen.size(), 1u);
  // Empty input.
  EXPECT_TRUE(rcbPartition({}, {}, 3, 1).empty());
  // Mismatched coordinates.
  std::vector<double> bad{1.0, 2.0};
  EXPECT_THROW(rcbPartition(x, bad, 2, 0), Error);
}

TEST(Rcb, CutsReduceEdgeCuts) {
  // On a grid graph, RCB should cut far fewer edges than a random
  // partition — the property that makes it the realistic choice.
  const Index side = 16;
  const Index n = side * side;
  const std::uint64_t seed = 11;
  const auto perm = meshgen::nodePermutation(n, seed);
  const auto edges = meshgen::renumberNodes(meshgen::gridEdges(side, side), perm);
  const auto coords = meshgen::gridCoordinates(side, side, perm);
  const int np = 4;
  auto countCuts = [&](auto partitionOf) {
    Index cuts = 0;
    for (Index e = 0; e < edges.numEdges(); ++e) {
      if (partitionOf(edges.ia[static_cast<size_t>(e)]) !=
          partitionOf(edges.ib[static_cast<size_t>(e)])) {
        ++cuts;
      }
    }
    return cuts;
  };
  std::vector<int> rcbOwner(static_cast<size_t>(n));
  for (int r = 0; r < np; ++r) {
    for (Index g : rcbPartition(coords.x, coords.y, np, r)) {
      rcbOwner[static_cast<size_t>(g)] = r;
    }
  }
  std::vector<int> rndOwner(static_cast<size_t>(n));
  for (int r = 0; r < np; ++r) {
    for (Index g : randomPartition(n, np, r, seed)) {
      rndOwner[static_cast<size_t>(g)] = r;
    }
  }
  const Index rcbCuts = countCuts([&](Index v) { return rcbOwner[static_cast<size_t>(v)]; });
  const Index rndCuts = countCuts([&](Index v) { return rndOwner[static_cast<size_t>(v)]; });
  EXPECT_LT(rcbCuts * 4, rndCuts) << "rcb=" << rcbCuts << " rnd=" << rndCuts;
}

TEST(Rcb, EdgeSweepOverRcbPartitionMatchesOracle) {
  const Index side = 8;
  const Index n = side * side;
  const std::uint64_t seed = 21;
  const auto perm = meshgen::nodePermutation(n, seed);
  const auto edges = meshgen::renumberNodes(meshgen::gridEdges(side, side), perm);
  const auto coords = meshgen::gridCoordinates(side, side, perm);

  // Serial oracle.
  std::vector<double> xs(static_cast<size_t>(n)), ys(static_cast<size_t>(n), 0.0);
  for (Index v = 0; v < n; ++v) xs[static_cast<size_t>(v)] = std::sqrt(1.0 + v);
  for (Index e = 0; e < edges.numEdges(); ++e) {
    const double contrib = (xs[static_cast<size_t>(edges.ia[static_cast<size_t>(e)])] +
                            xs[static_cast<size_t>(edges.ib[static_cast<size_t>(e)])]) / 4.0;
    ys[static_cast<size_t>(edges.ia[static_cast<size_t>(e)])] += contrib;
    ys[static_cast<size_t>(edges.ib[static_cast<size_t>(e)])] += contrib;
  }

  World::runSPMD(4, [&](Comm& c) {
    const auto mine = rcbPartition(coords.x, coords.y, c.size(), c.rank());
    auto table = std::make_shared<const TranslationTable>(TranslationTable::build(
        c, mine, n, TranslationTable::Storage::kDistributed));
    IrregArray<double> x(c, table, mine), y(c, table, mine);
    x.fillByGlobal([](Index g) { return std::sqrt(1.0 + g); });
    const auto myEdges = blockPartition(edges.numEdges(), c.size(), c.rank());
    std::vector<Index> ia, ib;
    for (Index e : myEdges) {
      ia.push_back(edges.ia[static_cast<size_t>(e)]);
      ib.push_back(edges.ib[static_cast<size_t>(e)]);
    }
    EdgeSweep<double> sweep(c, *table, ia, ib);
    sweep.run(x, y);
    const auto got = y.gatherGlobal();
    for (Index v = 0; v < n; ++v) {
      EXPECT_NEAR(got[static_cast<size_t>(v)], ys[static_cast<size_t>(v)], 1e-9);
    }
  });
}

TEST(GridCoordinates, InverseOfPermutation) {
  const auto perm = meshgen::nodePermutation(12, 4);
  const auto coords = meshgen::gridCoordinates(3, 4, perm);
  for (Index k = 0; k < 12; ++k) {
    const auto id = static_cast<size_t>(perm[static_cast<size_t>(k)]);
    EXPECT_DOUBLE_EQ(coords.x[id], static_cast<double>(k % 4));
    EXPECT_DOUBLE_EQ(coords.y[id], static_cast<double>(k / 4));
  }
}

}  // namespace
}  // namespace mc::chaos
