// Contract tests every library adapter must satisfy: enumerateAll /
// enumerateRange / enumerateOwned consistency, descriptor round-trips
// preserving enumeration, and modeled-cost accounting.
#include <gtest/gtest.h>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/registry.h"
#include "core/schedule_builder.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

struct Fixture {
  DistObject obj;
  SetOfRegions set;
};

/// Builds a representative (descriptor, set) fixture per library, living in
/// a 4-processor program.  Multi-region sets with strides stress the
/// linearization bookkeeping.
Fixture makeFixture(const std::string& lib, Comm& c) {
  if (lib == "parti") {
    auto desc = std::make_shared<const parti::PartiDesc>(
        parti::PartiDesc{layout::BlockDecomp::regular(Shape::of({12, 18}), c.size()), 1});
    SetOfRegions set;
    set.add(Region::section(RegularSection::of({1, 0}, {10, 17}, {3, 2})));
    set.add(Region::section(RegularSection::box({0, 5}, {3, 9})));
    return Fixture{DistObject("parti", desc), std::move(set)};
  }
  if (lib == "hpf") {
    auto dist = std::make_shared<const hpfrt::HpfDist>(
        Shape::of({10, 21}),
        std::vector<hpfrt::DimDist>{
            hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1},
            hpfrt::DimDist{hpfrt::DistKind::kBlockCyclic, 1, 4}});
    SetOfRegions set;
    set.add(Region::section(RegularSection::of({0, 1}, {9, 19}, {2, 3})));
    return Fixture{DistObject("hpf", dist), std::move(set)};
  }
  if (lib == "chaos") {
    const Index n = 50;
    const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 77);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kReplicated));
    SetOfRegions set;
    std::vector<Index> a, b;
    for (Index k = 0; k < 20; ++k) a.push_back((k * 7) % n);
    for (Index k = 0; k < 15; ++k) b.push_back((3 + k * 11) % n);
    set.add(Region::indices(a));
    set.add(Region::indices(b));
    return Fixture{DistObject("chaos", table), std::move(set)};
  }
  auto desc = std::make_shared<const tulip::TulipDesc>(
      tulip::TulipDesc{64, c.size(), tulip::Placement::kCyclic});
  SetOfRegions set;
  set.add(Region::range(3, 60, 3));
  set.add(Region::range(0, 9));
  return Fixture{DistObject("pc++", desc), std::move(set)};
}

class AdapterContractP : public ::testing::TestWithParam<const char*> {};

TEST_P(AdapterContractP, EnumerateAllVisitsEveryPositionOnce) {
  World::runSPMD(4, [&](Comm& c) {
    registerBuiltinAdapters();
    const Fixture f = makeFixture(GetParam(), c);
    const LibraryAdapter& lib = Registry::instance().get(f.obj.library());
    const Index n = f.set.numElements();
    ASSERT_GT(n, 0);
    Index visits = 0;
    Index expect = 0;
    lib.enumerateAll(f.obj, f.set, [&](Index lin, int owner, Index off) {
      EXPECT_EQ(lin, expect++);
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, c.size());
      EXPECT_GE(off, 0);
      ++visits;
    });
    EXPECT_EQ(visits, n);
  });
}

TEST_P(AdapterContractP, EnumerateRangeMatchesEnumerateAll) {
  World::runSPMD(4, [&](Comm& c) {
    registerBuiltinAdapters();
    const Fixture f = makeFixture(GetParam(), c);
    const LibraryAdapter& lib = Registry::instance().get(f.obj.library());
    const Index n = f.set.numElements();
    std::vector<std::pair<int, Index>> all(static_cast<size_t>(n));
    lib.enumerateAll(f.obj, f.set, [&](Index lin, int owner, Index off) {
      all[static_cast<size_t>(lin)] = {owner, off};
    });
    // Every window, including empty, degenerate and cross-region ones.
    for (const auto& [lo, hi] : {std::pair<Index, Index>{0, n},
                                {0, 1},
                                {n - 1, n},
                                {n / 3, 2 * n / 3},
                                {5, 5},
                                {n, n}}) {
      Index expect = lo;
      lib.enumerateRange(f.obj, f.set, lo, hi,
                         [&](Index lin, int owner, Index off) {
                           ASSERT_EQ(lin, expect++);
                           EXPECT_EQ(owner, all[static_cast<size_t>(lin)].first);
                           EXPECT_EQ(off, all[static_cast<size_t>(lin)].second);
                         });
      EXPECT_EQ(expect, hi);
    }
  });
}

TEST_P(AdapterContractP, EnumerateOwnedIsTheOwnerFilter) {
  World::runSPMD(4, [&](Comm& c) {
    registerBuiltinAdapters();
    const Fixture f = makeFixture(GetParam(), c);
    const LibraryAdapter& lib = Registry::instance().get(f.obj.library());
    std::vector<LinLoc> expect;
    lib.enumerateAll(f.obj, f.set, [&](Index lin, int owner, Index off) {
      if (owner == c.rank()) expect.push_back(LinLoc{lin, off});
    });
    const std::vector<LinLoc> got = lib.enumerateOwned(f.obj, f.set, c);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].lin, expect[i].lin);
      EXPECT_EQ(got[i].offset, expect[i].offset);
    }
  });
}

TEST_P(AdapterContractP, DescriptorRoundTripPreservesEnumeration) {
  World::runSPMD(4, [&](Comm& c) {
    registerBuiltinAdapters();
    const Fixture f = makeFixture(GetParam(), c);
    const LibraryAdapter& lib = Registry::instance().get(f.obj.library());
    const DistObject back =
        lib.deserializeDesc(lib.serializeDesc(f.obj, c));
    std::vector<std::pair<int, Index>> a, b;
    lib.enumerateAll(f.obj, f.set, [&](Index, int owner, Index off) {
      a.emplace_back(owner, off);
    });
    lib.enumerateAll(back, f.set, [&](Index, int owner, Index off) {
      b.emplace_back(owner, off);
    });
    EXPECT_EQ(a, b);
  });
}

TEST_P(AdapterContractP, ValidateAcceptsItsOwnFixture) {
  World::runSPMD(4, [&](Comm& c) {
    registerBuiltinAdapters();
    const Fixture f = makeFixture(GetParam(), c);
    const LibraryAdapter& lib = Registry::instance().get(f.obj.library());
    EXPECT_NO_THROW(lib.validate(f.obj, f.set));
  });
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, AdapterContractP,
                         ::testing::Values("parti", "hpf", "chaos", "tulip"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(ModeledCosts, DereferenceChargesVirtualTime) {
  World::runSPMD(2, [](Comm& c) {
    const Index n = 100;
    const auto mine = chaos::blockPartition(n, c.size(), c.rank());
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kDistributed,
        /*modeledQueryCostSeconds=*/1e-3);
    std::vector<Index> queries;
    for (Index k = 0; k < 50; ++k) queries.push_back((k * 3) % n);
    c.barrier();
    const double before = c.now();
    (void)table.dereference(c, queries);
    c.barrier();
    const double after = c.now();
    // 2 procs x 50 queries, spread over the answerers: at least 50 ms of
    // modeled lookup work lands on the slowest processor.
    EXPECT_GE(after - before, 50e-3);
  });
}

TEST(ModeledCosts, ZeroCostChargesNothingExtra) {
  World::runSPMD(2, [](Comm& c) {
    const Index n = 100;
    const auto mine = chaos::blockPartition(n, c.size(), c.rank());
    const auto table = chaos::TranslationTable::build(
        c, mine, n, chaos::TranslationTable::Storage::kReplicated);
    const double before = c.now();
    (void)table.dereference(c, mine);
    EXPECT_DOUBLE_EQ(c.now(), before);  // replicated, zero modeled cost
  });
}

TEST(ModeledCosts, DuplicationChargesTwice) {
  World::runSPMD(2, [](Comm& c) {
    const Index n = 64;
    const auto mine = chaos::blockPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kReplicated,
            /*modeledQueryCostSeconds=*/1e-3));
    chaos::IrregArray<double> x(c, table, mine);
    auto desc = std::make_shared<const tulip::TulipDesc>(
        tulip::TulipDesc{n, c.size(), tulip::Placement::kBlock});
    SetOfRegions srcSet, dstSet;
    std::vector<Index> ids(static_cast<size_t>(n));
    for (Index k = 0; k < n; ++k) ids[static_cast<size_t>(k)] = k;
    srcSet.add(Region::indices(ids));
    dstSet.add(Region::range(0, n - 1));
    c.barrier();
    const double before = c.now();
    (void)computeSchedule(c, ChaosAdapter::describe(x), srcSet,
                          DistObject("pc++", desc), dstSet,
                          Method::kDuplication);
    c.barrier();
    const double after = c.now();
    // 2 * cost * n / P = 2 * 1e-3 * 64 / 2 = 64 ms of modeled work.
    EXPECT_GE(after - before, 64e-3);
    EXPECT_LT(after - before, 200e-3);
  });
}

}  // namespace
}  // namespace mc::core
