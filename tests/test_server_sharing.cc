// Cross-client schedule sharing: the second client presenting a layout the
// server has already seen must pay ZERO inspector cost (asserted via the
// build.count counter on the client's own thread), distinct fingerprints
// must not false-share, and the layout-keyed cache lookups must keep
// hit/miss agreement across both programs even when one rank's cache state
// diverges.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "core/adapters/parti_adapter.h"
#include "core/schedule_cache.h"
#include "obs/metrics.h"
#include "parti/dist_array.h"
#include "sched/executor.h"
#include "sched/serialize.h"
#include "server/client_session.h"
#include "server/compute_server.h"
#include "server/protocol.h"
#include "transport/world.h"

namespace mc::server {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

double vectorEntry(Index i, int salt) {
  return static_cast<double>((i * 5 + salt) % 9) - 4.0;
}

std::vector<double> oracle(Index n, int matrixId, int salt) {
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    double acc = 0;
    for (Index j = 0; j < n; ++j) {
      acc += matrixEntry(matrixId, i, j) * vectorEntry(j, salt);
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

/// The calling thread's inspector-build count (0 when nothing was ever
/// built on this thread — the counter registers lazily on first build).
double buildCount() {
  const obs::Snapshot s = obs::threadRegistry().snapshot();
  return s.has("build.count") ? s.get("build.count") : 0.0;
}

struct SharingOutcome {
  ServerStats stats;
  double firstBuilds = -1, secondBuilds = -1;
  bool firstShared = true, secondShared = false;
  int badResults = 0;
};

/// Two single-process clients attach in an enforced order (client 1 hands
/// client 2 a token only after its own attach completed), each runs one
/// request, and both results are oracle-checked.
SharingOutcome runTwoClients(Index n, Index pad1, Index pad2) {
  SharingOutcome out;
  std::atomic<int> bad{0};
  std::vector<ProgramSpec> specs;
  specs.push_back(ProgramSpec{"server", 3, [&](Comm& c) {
    ServerConfig cfg;
    cfg.n = n;
    cfg.totalSessions = 2;
    ComputeServer srv(c, cfg);
    srv.run();
    if (c.rank() == 0) out.stats = srv.stats();
  }});
  auto clientMain = [&](int who, Index pad) {
    return [&, who, pad](Comm& c) {
      if (who == 2) (void)c.recvValueFrom<int>(1, 0, kControlTag);
      SessionConfig cfg;
      cfg.n = n;
      cfg.pad = pad;
      cfg.serverProgram = 0;
      ClientSession session(c, cfg);
      const double before = buildCount();
      const AttachStats as = session.attach();
      const double builds = buildCount() - before;
      if (who == 1) {
        out.firstBuilds = builds;
        out.firstShared = as.sharedSchedule;
        c.sendValueTo(2, 0, kControlTag, 1);  // release client 2
      } else {
        out.secondBuilds = builds;
        out.secondShared = as.sharedSchedule;
      }
      session.x().fillByPoint([&](const Point& p) {
        return vectorEntry(p[0], who);
      });
      session.request();
      const std::vector<double> got = session.y().gatherGlobal();
      const std::vector<double> want = oracle(n, 0, who);
      for (Index i = 0; i < n; ++i) {
        const double w = want[static_cast<std::size_t>(i)];
        if (std::abs(got[static_cast<std::size_t>(i)] - w) >
            std::abs(w) * 1e-12 + 1e-12) {
          bad.fetch_add(1);
        }
      }
      session.detach();
    };
  };
  specs.push_back(ProgramSpec{"client1", 1, clientMain(1, pad1)});
  specs.push_back(ProgramSpec{"client2", 1, clientMain(2, pad2)});
  World::run(specs);
  out.badResults = bad.load();
  return out;
}

TEST(ScheduleSharing, SecondIdenticalLayoutClientBuildsNothing) {
  const SharingOutcome out = runTwoClients(40, /*pad1=*/0, /*pad2=*/0);
  EXPECT_EQ(out.badResults, 0);
  EXPECT_FALSE(out.firstShared);
  EXPECT_TRUE(out.secondShared);
  // The first client ran inspectors (vector send + matrix send halves);
  // the second paid ZERO inspector cost: no build on its thread at all.
  EXPECT_GT(out.firstBuilds, 0.0);
  EXPECT_EQ(out.secondBuilds, 0.0);
  EXPECT_EQ(out.stats.schedShareHits, 1u);
  EXPECT_EQ(out.stats.schedShareMisses, 1u);
  EXPECT_EQ(out.stats.maxSharingDegree, 2u);
  EXPECT_EQ(out.stats.matrixShips, 1u);  // same matrix, shipped once
}

TEST(ScheduleSharing, DistinctFingerprintsDoNotFalseShare) {
  const SharingOutcome out = runTwoClients(40, /*pad1=*/0, /*pad2=*/7);
  EXPECT_EQ(out.badResults, 0);
  EXPECT_FALSE(out.firstShared);
  EXPECT_FALSE(out.secondShared);
  // Different layout fingerprint -> a real build on the second thread.
  EXPECT_GT(out.secondBuilds, 0.0);
  EXPECT_EQ(out.stats.schedShareHits, 0u);
  EXPECT_EQ(out.stats.schedShareMisses, 2u);
  EXPECT_LE(out.stats.maxSharingDegree, 1u);
}

// ---------------------------------------------------------------------------
// The ByLayout lookups must keep collective hit/miss agreement: when one
// rank's cache diverges (here: cleared mid-run), every participant of both
// programs must rebuild together instead of deadlocking half-hit.

TEST(ScheduleSharing, ByLayoutLookupAgreesUnderMixedCacheState) {
  const Index n = 24;
  std::atomic<int> bad{0};
  std::vector<std::vector<std::byte>> firstPlan(2), secondPlan(2);
  World::run(
      {ProgramSpec{"sender", 2, [&](Comm& c) {
         parti::BlockDistArray<double> x(
             c, layout::BlockDecomp(Shape::of({n}), {c.size()}), 0);
         x.fillByPoint([](const Point& p) {
           return 1.5 * static_cast<double>(p[0]) + 1.0;
         });
         core::SetOfRegions vSet;
         vSet.add(core::Region::section(RegularSection::box({0}, {n - 1})));
         HashStream::Digest mine = core::scheduleSideDigest(
             core::PartiAdapter::describe(x), vSet);
         mine = c.bcastValue(mine, 0);
         HashStream::Digest remote{};
         if (c.rank() == 0) {
           c.sendValueTo(1, 0, kControlTag, mine);
           remote = c.recvValueFrom<HashStream::Digest>(1, 0, kControlTag);
         }
         remote = c.bcastValue(remote, 0);

         core::ScheduleCache cache(8);
         const auto s1 = cache.getOrBuildSendByLayout(
             c, core::PartiAdapter::describe(x), vSet, 1, remote);
         if (c.rank() == 0) {
           firstPlan[0] = sched::serializeSchedule(s1->plan);
         }
         EXPECT_EQ(cache.stats().misses, 1u);
         // Round 2: the receiver's rank 0 cleared its cache; agreement
         // must drag this (locally hitting) side into the rebuild.
         const auto s2 = cache.getOrBuildSendByLayout(
             c, core::PartiAdapter::describe(x), vSet, 1, remote);
         if (c.rank() == 0) {
           secondPlan[0] = sched::serializeSchedule(s2->plan);
         }
         EXPECT_EQ(cache.stats().misses, 2u);
         EXPECT_EQ(cache.stats().hits, 0u);
         // The rebuilt schedule still moves the data.
         auto plan = std::shared_ptr<const sched::Schedule>(s2, &s2->plan);
         sched::Executor<double>::sender(c, plan, 1).runSend(x.raw());
       }},
       ProgramSpec{"receiver", 2, [&](Comm& c) {
         parti::BlockDistArray<double> y(
             c, layout::BlockDecomp(Shape::of({n}), {c.size()}), 0);
         core::SetOfRegions vSet;
         vSet.add(core::Region::section(RegularSection::box({0}, {n - 1})));
         HashStream::Digest mine = core::scheduleSideDigest(
             core::PartiAdapter::describe(y), vSet);
         mine = c.bcastValue(mine, 0);
         HashStream::Digest remote{};
         if (c.rank() == 0) {
           remote = c.recvValueFrom<HashStream::Digest>(0, 0, kControlTag);
           c.sendValueTo(0, 0, kControlTag, mine);
         }
         remote = c.bcastValue(remote, 0);

         core::ScheduleCache cache(8);
         const auto r1 = cache.getOrBuildRecvByLayout(
             c, core::PartiAdapter::describe(y), vSet, 0, remote);
         if (c.rank() == 0) {
           firstPlan[1] = sched::serializeSchedule(r1->plan);
           cache.clear();  // diverge: this rank alone forgets the entry
         }
         const auto r2 = cache.getOrBuildRecvByLayout(
             c, core::PartiAdapter::describe(y), vSet, 0, remote);
         if (c.rank() == 0) {
           secondPlan[1] = sched::serializeSchedule(r2->plan);
         }
         EXPECT_EQ(cache.stats().hits, 0u);
         auto plan = std::shared_ptr<const sched::Schedule>(r2, &r2->plan);
         sched::Executor<double>::receiver(c, plan, 0).runRecv(y.raw());
         const std::vector<double> got = y.gatherGlobal();
         for (Index i = 0; i < n; ++i) {
           const double w = 1.5 * static_cast<double>(i) + 1.0;
           if (got[static_cast<std::size_t>(i)] != w) bad.fetch_add(1);
         }
       }}});
  EXPECT_EQ(bad.load(), 0);
  // The forced rebuild reproduced byte-identical plans on both sides.
  EXPECT_EQ(firstPlan[0], secondPlan[0]);
  EXPECT_EQ(firstPlan[1], secondPlan[1]);
  EXPECT_FALSE(firstPlan[0].empty());
  EXPECT_FALSE(firstPlan[1].empty());
}

}  // namespace
}  // namespace mc::server
