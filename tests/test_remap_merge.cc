// Tests for the adaptive-application features: chaos::remap (repartition a
// live irregular array), sched::merge (one message per peer for grouped
// transfers), and Parti global reductions.
#include <gtest/gtest.h>

#include "chaos/localize.h"
#include "chaos/partition.h"
#include "chaos/remap.h"
#include "parti/dist_array.h"
#include "transport/world.h"

namespace mc {
namespace {

using chaos::IrregArray;
using chaos::TranslationTable;
using layout::Index;
using layout::Point;
using layout::Shape;
using transport::Comm;
using transport::World;

TEST(Remap, PreservesValuesUnderNewDistribution) {
  for (int np : {1, 2, 4}) {
    World::runSPMD(np, [&](Comm& c) {
      const Index n = 40;
      const auto oldMine = chaos::blockPartition(n, c.size(), c.rank());
      auto table = std::make_shared<const TranslationTable>(
          TranslationTable::build(c, oldMine, n,
                                  TranslationTable::Storage::kDistributed));
      IrregArray<double> x(c, table, oldMine);
      x.fillByGlobal([](Index g) { return 3.0 * static_cast<double>(g) + 1.0; });

      const auto newMine = chaos::randomPartition(n, c.size(), c.rank(), 99);
      IrregArray<double> y = chaos::remap(
          x, newMine, TranslationTable::Storage::kDistributed);
      EXPECT_EQ(y.localCount(), static_cast<Index>(newMine.size()));
      const auto img = y.gatherGlobal();
      for (Index g = 0; g < n; ++g) {
        EXPECT_DOUBLE_EQ(img[static_cast<size_t>(g)],
                         3.0 * static_cast<double>(g) + 1.0)
            << "np=" << np;
      }
    });
  }
}

TEST(Remap, StorageCanChange) {
  World::runSPMD(3, [](Comm& c) {
    const Index n = 21;
    const auto oldMine = chaos::cyclicPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const TranslationTable>(
        TranslationTable::build(c, oldMine, n,
                                TranslationTable::Storage::kReplicated));
    IrregArray<int> x(c, table, oldMine);
    x.fillByGlobal([](Index g) { return static_cast<int>(g * g); });
    const auto newMine = chaos::blockPartition(n, c.size(), c.rank());
    IrregArray<int> y =
        chaos::remap(x, newMine, TranslationTable::Storage::kDistributed);
    EXPECT_EQ(y.table().storage(), TranslationTable::Storage::kDistributed);
    const auto img = y.gatherGlobal();
    for (Index g = 0; g < n; ++g) {
      EXPECT_EQ(img[static_cast<size_t>(g)], static_cast<int>(g * g));
    }
  });
}

TEST(Remap, LocalizeWorksAfterRemap) {
  // The inspector/executor contract: schedules must be rebuilt after a
  // remap, and the rebuilt ones must see the new distribution.
  World::runSPMD(2, [](Comm& c) {
    const Index n = 16;
    const auto oldMine = chaos::blockPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const TranslationTable>(
        TranslationTable::build(c, oldMine, n,
                                TranslationTable::Storage::kDistributed));
    IrregArray<double> x(c, table, oldMine);
    x.fillByGlobal([](Index g) { return static_cast<double>(g); });
    const auto newMine = chaos::cyclicPartition(n, c.size(), c.rank());
    IrregArray<double> y =
        chaos::remap(x, newMine, TranslationTable::Storage::kDistributed);

    std::vector<Index> refs;
    for (Index k = 0; k < n; ++k) refs.push_back((k * 5) % n);
    const chaos::Localized loc = chaos::localize(c, y.table(), refs);
    std::vector<double> ghost(static_cast<size_t>(loc.ghostCount));
    chaos::gatherGhosts<double>(c, loc, y.raw(), ghost);
    for (size_t i = 0; i < refs.size(); ++i) {
      const Index li = loc.localIndices[i];
      const double v = li < y.localCount()
                           ? y.raw()[static_cast<size_t>(li)]
                           : ghost[static_cast<size_t>(li - y.localCount())];
      EXPECT_DOUBLE_EQ(v, static_cast<double>(refs[i]));
    }
  });
}

TEST(ScheduleMerge, OneMessagePerPeerForGroupedTransfers) {
  World::runSPMD(2, [](Comm& c) {
    // Two disjoint transfers 0 -> 1 into different slots.
    sched::Schedule s1, s2;
    if (c.rank() == 0) {
      s1.sends.push_back(sched::OffsetPlan{1, {0, 1}});
      s2.sends.push_back(sched::OffsetPlan{1, {4, 5}});
    } else {
      s1.recvs.push_back(sched::OffsetPlan{0, {0, 1}});
      s2.recvs.push_back(sched::OffsetPlan{0, {6, 7}});
    }
    const std::vector<sched::Schedule> parts{s1, s2};
    const sched::Schedule merged = sched::merge(parts);
    std::vector<double> src{10, 11, 12, 13, 14, 15, 16, 17};
    std::vector<double> dst(8, 0.0);
    c.resetStats();
    sched::execute<double>(c, merged, src, dst, c.nextUserTag());
    if (c.rank() == 0) {
      EXPECT_EQ(c.stats().messagesSent, 1u);  // one message for both parts
    } else {
      EXPECT_EQ(c.stats().messagesReceived, 1u);
      EXPECT_DOUBLE_EQ(dst[0], 10);
      EXPECT_DOUBLE_EQ(dst[1], 11);
      EXPECT_DOUBLE_EQ(dst[6], 14);
      EXPECT_DOUBLE_EQ(dst[7], 15);
    }
  });
}

TEST(ScheduleMerge, EquivalentToSequentialExecution) {
  World::runSPMD(3, [](Comm& c) {
    // Ring transfers in two parts; merged result == sequential results.
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    sched::Schedule s1, s2;
    s1.sends.push_back(sched::OffsetPlan{next, {0}});
    s1.recvs.push_back(sched::OffsetPlan{prev, {4}});
    s2.sends.push_back(sched::OffsetPlan{next, {1, 2}});
    s2.recvs.push_back(sched::OffsetPlan{prev, {5, 6}});
    std::vector<double> src{1.0 + c.rank(), 10.0 + c.rank(), 20.0 + c.rank(), 0};
    std::vector<double> seq(8, 0.0), mrg(8, 0.0);
    sched::execute<double>(c, s1, src, seq, c.nextUserTag());
    sched::execute<double>(c, s2, src, seq, c.nextUserTag());
    const std::vector<sched::Schedule> parts{s1, s2};
    sched::execute<double>(c, sched::merge(parts), src, mrg, c.nextUserTag());
    EXPECT_EQ(seq, mrg);
  });
}

TEST(ScheduleMerge, RejectsMixedLocalCopyPolicies) {
  sched::Schedule a, b;
  a.bufferLocalCopies = true;
  b.bufferLocalCopies = false;
  const std::vector<sched::Schedule> parts{a, b};
  EXPECT_THROW(sched::merge(parts), Error);
}

TEST(ScheduleMerge, EmptyInput) {
  EXPECT_TRUE(sched::merge({}).sends.empty());
}

TEST(PartiReductions, SumAndMax) {
  for (int np : {1, 3, 4}) {
    World::runSPMD(np, [](Comm& c) {
      parti::BlockDistArray<double> a(c, Shape::of({6, 7}), 1);
      a.fillByPoint([](const Point& p) {
        return static_cast<double>(p[0] * 7 + p[1]);
      });
      EXPECT_DOUBLE_EQ(parti::globalSum(a), 41.0 * 42.0 / 2.0);
      EXPECT_DOUBLE_EQ(parti::globalMax(a), 41.0);
    });
  }
}

TEST(PartiReductions, MaxWithEmptyBlocks) {
  // 2x2 array over 8 processors: most own nothing.
  World::runSPMD(8, [](Comm& c) {
    parti::BlockDistArray<int> a(c, Shape::of({2, 2}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<int>(p[0] + p[1]); });
    EXPECT_EQ(parti::globalMax(a), 2);
    EXPECT_EQ(parti::globalSum(a), 0 + 1 + 1 + 2);
  });
}

}  // namespace
}  // namespace mc
