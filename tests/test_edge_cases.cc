// Edge cases across the stack: empty transfers, single-element sets,
// more processors than data, and degenerate distributions.
#include <gtest/gtest.h>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

TEST(EdgeCases, EmptySetsProduceEmptySchedules) {
  for (Method m : {Method::kCooperation, Method::kDuplication}) {
    World::runSPMD(3, [m](Comm& c) {
      parti::BlockDistArray<double> a(c, Shape::of({4, 4}), 0);
      tulip::Collection<double> t(c, 8);
      SetOfRegions srcSet, dstSet;
      srcSet.add(Region::section(RegularSection::of({3, 0}, {2, 3}, {1, 1})));
      dstSet.add(Region::range(5, 4));
      ASSERT_EQ(srcSet.numElements(), 0);
      const McSchedule sched =
          computeSchedule(c, PartiAdapter::describe(a), srcSet,
                          TulipAdapter::describe(t), dstSet, m);
      EXPECT_TRUE(sched.plan.sends.empty());
      EXPECT_TRUE(sched.plan.recvs.empty());
      EXPECT_EQ(sched.plan.localElementCount(), 0);
      dataMove<double>(c, sched, a.raw(), t.raw());  // no-op, no hang
    });
  }
}

TEST(EdgeCases, SingleElementCopy) {
  World::runSPMD(4, [](Comm& c) {
    parti::BlockDistArray<double> a(c, Shape::of({8, 8}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 8 + p[1]); });
    tulip::Collection<double> t(c, 4, tulip::Placement::kCyclic);
    SetOfRegions srcSet, dstSet;
    srcSet.add(Region::section(RegularSection::box({7, 7}, {7, 7})));
    dstSet.add(Region::range(2, 2));
    const McSchedule sched = computeSchedule(
        c, PartiAdapter::describe(a), srcSet, TulipAdapter::describe(t), dstSet);
    dataMove<double>(c, sched, a.raw(), t.raw());
    const auto img = t.gatherGlobal();
    EXPECT_DOUBLE_EQ(img[2], 63.0);
  });
}

TEST(EdgeCases, MoreProcessorsThanElements) {
  World::runSPMD(8, [](Comm& c) {
    // 3-element array over 8 processors: five own nothing.
    const Index n = 3;
    const auto mine = chaos::blockPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    chaos::IrregArray<double> x(c, table, mine);
    x.fillByGlobal([](Index g) { return 100.0 + g; });
    parti::BlockDistArray<double> a(c, Shape::of({3}), 0);
    SetOfRegions srcSet, dstSet;
    srcSet.add(Region::indices({2, 0, 1}));
    dstSet.add(Region::section(RegularSection::box({0}, {2})));
    const McSchedule sched = computeSchedule(
        c, ChaosAdapter::describe(x), srcSet, PartiAdapter::describe(a), dstSet);
    dataMove<double>(c, sched, x.raw(), a.raw());
    const auto img = a.gatherGlobal();
    EXPECT_DOUBLE_EQ(img[0], 102.0);
    EXPECT_DOUBLE_EQ(img[1], 100.0);
    EXPECT_DOUBLE_EQ(img[2], 101.0);
  });
}

TEST(EdgeCases, ManySmallRegionsInOneSet) {
  // 16 one-element regions stress the per-region linearization bases.
  World::runSPMD(2, [](Comm& c) {
    parti::BlockDistArray<double> a(c, Shape::of({4, 4}), 0);
    parti::BlockDistArray<double> b(c, Shape::of({4, 4}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 4 + p[1]); });
    SetOfRegions srcSet, dstSet;
    for (Index i = 0; i < 4; ++i) {
      for (Index j = 0; j < 4; ++j) {
        srcSet.add(Region::section(RegularSection::box({i, j}, {i, j})));
        // Destination visits the transposed element.
        dstSet.add(Region::section(RegularSection::box({j, i}, {j, i})));
      }
    }
    const McSchedule sched = computeSchedule(
        c, PartiAdapter::describe(a), srcSet, PartiAdapter::describe(b), dstSet);
    dataMove<double>(c, sched, a.raw(), b.raw());
    const auto img = b.gatherGlobal();
    for (Index i = 0; i < 4; ++i) {
      for (Index j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(img[static_cast<size_t>(i * 4 + j)],
                         static_cast<double>(j * 4 + i));
      }
    }
  });
}

TEST(EdgeCases, OneDimensionalWorld) {
  // Everything still works on a single processor.
  World::runSPMD(1, [](Comm& c) {
    parti::BlockDistArray<float> a(c, Shape::of({5}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<float>(p[0]); });
    tulip::Collection<float> t(c, 5);
    SetOfRegions srcSet, dstSet;
    srcSet.add(Region::section(RegularSection::box({0}, {4})));
    dstSet.add(Region::range(0, 4));
    const McSchedule sched = computeSchedule(
        c, PartiAdapter::describe(a), srcSet, TulipAdapter::describe(t), dstSet);
    EXPECT_TRUE(sched.plan.sends.empty());
    EXPECT_EQ(sched.plan.localElementCount(), 5);
    dataMove<float>(c, sched, a.raw(), t.raw());
    EXPECT_FLOAT_EQ(t.at(3), 3.0f);
  });
}

TEST(EdgeCases, IntElementType) {
  // The schedule machinery is element-type agnostic; exercise int arrays.
  World::runSPMD(3, [](Comm& c) {
    parti::BlockDistArray<int> a(c, Shape::of({6}), 0);
    parti::BlockDistArray<int> b(c, Shape::of({6}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<int>(p[0] * 11); });
    SetOfRegions set;
    set.add(Region::section(RegularSection::box({0}, {5})));
    const McSchedule sched = computeSchedule(
        c, PartiAdapter::describe(a), set, PartiAdapter::describe(b), set);
    dataMove<int>(c, sched, a.raw(), b.raw());
    const auto img = b.gatherGlobal();
    for (Index i = 0; i < 6; ++i) {
      EXPECT_EQ(img[static_cast<size_t>(i)], static_cast<int>(i * 11));
    }
  });
}

}  // namespace
}  // namespace mc::core
