// Run compression (sched/run_plan.h) must be an exact, order-preserving
// re-encoding of offset lists: adversarial patterns round-trip through
// compress/expand unchanged, and compressed pack/unpack/local-copy produce
// bit-identical results to the element-wise baseline.
#include <gtest/gtest.h>

#include <numeric>

#include "sched/run_plan.h"
#include "sched/executor.h"
#include "transport/world.h"
#include "util/rng.h"

namespace mc::sched {
namespace {

using layout::Index;
using transport::Comm;
using transport::World;

std::vector<Index> expand(const std::vector<OffsetRun>& runs) {
  return expandOffsets(std::span<const OffsetRun>(runs));
}

std::vector<OffsetRun> compress(const std::vector<Index>& offsets) {
  return compressOffsets(std::span<const Index>(offsets));
}

TEST(RunCompression, EmptyList) {
  const auto runs = compress({});
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(runElementCount(std::span<const OffsetRun>(runs)), 0);
}

TEST(RunCompression, AllContiguousIsOneRun) {
  std::vector<Index> offsets(1000);
  std::iota(offsets.begin(), offsets.end(), Index{17});
  const auto runs = compress(offsets);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start, 17);
  EXPECT_EQ(runs[0].count, 1000);
  EXPECT_EQ(runs[0].stride, 1);
  EXPECT_EQ(expand(runs), offsets);
}

TEST(RunCompression, StridedIsOneRun) {
  std::vector<Index> offsets;
  for (Index k = 0; k < 64; ++k) offsets.push_back(5 + 7 * k);
  const auto runs = compress(offsets);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].stride, 7);
  EXPECT_EQ(expand(runs), offsets);
}

TEST(RunCompression, DescendingStrideRoundTrips) {
  std::vector<Index> offsets;
  for (Index k = 0; k < 20; ++k) offsets.push_back(100 - 3 * k);
  const auto runs = compress(offsets);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].stride, -3);
  EXPECT_EQ(expand(runs), offsets);
}

TEST(RunCompression, RepeatedOffsetIsStrideZeroRun) {
  // A source element fanned out to several destinations.
  const std::vector<Index> offsets{4, 4, 4, 4};
  const auto runs = compress(offsets);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].stride, 0);
  EXPECT_EQ(runs[0].count, 4);
  EXPECT_EQ(expand(runs), offsets);
}

TEST(RunCompression, SingletonSoupRoundTrips) {
  // Worst case: no two consecutive offsets continue a progression once a
  // run is longer than one element.
  const std::vector<Index> offsets{0, 10, 11, 3, 40, 41, 42, 5, 2, 90};
  const auto runs = compress(offsets);
  EXPECT_EQ(expand(runs), offsets);
  EXPECT_EQ(runElementCount(std::span<const OffsetRun>(runs)),
            static_cast<Index>(offsets.size()));
}

TEST(RunCompression, RandomListsRoundTripExactly) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Index> offsets;
    const int n = static_cast<int>(rng.below(201));
    for (int i = 0; i < n; ++i) {
      offsets.push_back(static_cast<Index>(rng.below(300)));
    }
    const auto runs = compress(offsets);
    EXPECT_EQ(expand(runs), offsets) << "trial " << trial;
  }
}

TEST(RunCompression, PackMatchesElementwise) {
  Rng rng(7);
  std::vector<double> src(512);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i) * 1.5;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Index> offsets;
    // Mix contiguous blocks, strided rows, and repeats.
    for (int b = 0; b < 6; ++b) {
      const Index start = static_cast<Index>(rng.below(400));
      const Index stride = static_cast<Index>(rng.below(4));
      const Index count = static_cast<Index>(1 + rng.below(30));
      for (Index k = 0; k < count && start + k * stride < 512; ++k) {
        offsets.push_back(start + k * stride);
      }
    }
    std::vector<double> want;
    want.reserve(offsets.size());
    for (Index off : offsets) want.push_back(src[static_cast<size_t>(off)]);

    const auto runs = compress(offsets);
    std::vector<double> got(offsets.size());
    packRuns(std::span<const double>(src), std::span<const OffsetRun>(runs),
             got.data());
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(RunCompression, UnpackAndUnpackAddMatchElementwise) {
  // Distinct destination offsets (unpack targets never repeat in a
  // schedule); stride-1, strided and singleton runs mixed.
  std::vector<Index> offsets;
  for (Index k = 0; k < 10; ++k) offsets.push_back(k);          // contiguous
  for (Index k = 0; k < 10; ++k) offsets.push_back(30 + 3 * k); // strided
  offsets.push_back(99);
  offsets.push_back(85);
  std::vector<double> buf(offsets.size());
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = 100.0 + static_cast<double>(i);

  std::vector<double> wantSet(128, -1.0), gotSet(128, -1.0);
  std::vector<double> wantAdd(128, 0.5), gotAdd(128, 0.5);
  for (size_t i = 0; i < offsets.size(); ++i) {
    wantSet[static_cast<size_t>(offsets[i])] = buf[i];
    wantAdd[static_cast<size_t>(offsets[i])] += buf[i];
  }
  const auto runs = compress(offsets);
  unpackRuns(std::span<const OffsetRun>(runs), buf.data(),
             std::span<double>(gotSet));
  unpackRunsAdd(std::span<const OffsetRun>(runs), buf.data(),
                std::span<double>(gotAdd));
  EXPECT_EQ(gotSet, wantSet);
  EXPECT_EQ(gotAdd, wantAdd);
}

TEST(RunCompression, LocalPairsRoundTripAndAliasSafety) {
  // Pairs compress to (src, dst, count, srcStride, dstStride) runs; the
  // contiguous executor path must behave read-all-then-write (memmove).
  std::vector<std::pair<Index, Index>> pairs;
  for (Index k = 0; k < 16; ++k) pairs.emplace_back(k, 40 + k);  // contiguous
  for (Index k = 0; k < 8; ++k) pairs.emplace_back(20 + 2 * k, 60 + 3 * k);
  const auto runs =
      compressPairs(std::span<const std::pair<Index, Index>>(pairs));

  std::vector<double> want(100), got(100);
  for (size_t i = 0; i < 100; ++i) want[i] = got[i] = static_cast<double>(i);
  for (const auto& [from, to] : pairs) {
    want[static_cast<size_t>(to)] = static_cast<double>(from);
  }
  copyLocalRuns(std::span<const LocalRun>(runs), std::span<const double>(got),
                std::span<double>(got));
  EXPECT_EQ(got, want);
}

TEST(RunCompression, ScheduleCompressIsIdempotentAndExact) {
  Schedule s;
  s.sends.push_back(OffsetPlan{1, {0, 1, 2, 3, 10, 20, 30, 7}, {}});
  s.recvs.push_back(OffsetPlan{2, {5, 5, 5, 9}, {}});
  s.localPairs = {{0, 50}, {1, 51}, {2, 52}, {9, 70}};
  s.compress();
  EXPECT_TRUE(s.compressed());
  const auto runsBefore = s.sends[0].runs;
  s.compress();
  EXPECT_EQ(s.sends[0].runs.size(), runsBefore.size());
  EXPECT_EQ(expand(s.sends[0].runs), s.sends[0].offsets);
  EXPECT_EQ(expand(s.recvs[0].runs), s.recvs[0].offsets);
}

TEST(RunCompression, CompressedExecuteEqualsUncompressed) {
  // The same schedule, compressed and not, must move bytes identically —
  // including the local direct-copy path with aliasing src/dst.
  World::runSPMD(3, [](Comm& c) {
    const int np = c.size();
    const int me = c.rank();
    const Index perRank = 40;
    // Ring schedule: each rank sends a strided slice to the next rank and
    // keeps a contiguous slice locally.
    Schedule plain;
    plain.bufferLocalCopies = false;
    OffsetPlan send;
    send.peer = (me + 1) % np;
    for (Index k = 0; k < 10; ++k) send.offsets.push_back(3 * k);
    OffsetPlan recv;
    recv.peer = (me + np - 1) % np;
    for (Index k = 0; k < 10; ++k) recv.offsets.push_back(perRank - 1 - k);
    plain.sends.push_back(send);
    plain.recvs.push_back(recv);
    for (Index k = 0; k < 6; ++k) plain.localPairs.emplace_back(k, 12 + k);

    Schedule fast = plain;
    fast.compress();

    auto fill = [&](std::vector<double>& v) {
      v.resize(static_cast<size_t>(perRank));
      for (Index k = 0; k < perRank; ++k) {
        v[static_cast<size_t>(k)] =
            static_cast<double>(me) * 1000.0 + static_cast<double>(k);
      }
    };
    std::vector<double> a, b;
    fill(a);
    fill(b);
    execute<double>(c, plain, a, a, c.nextUserTag());
    execute<double>(c, fast, b, b, c.nextUserTag());
    EXPECT_EQ(a, b);

    // And the scatter-add executor.
    std::vector<double> a2, b2;
    fill(a2);
    fill(b2);
    executeAdd<double>(c, plain, a2, a2, c.nextUserTag());
    executeAdd<double>(c, fast, b2, b2, c.nextUserTag());
    EXPECT_EQ(a2, b2);
  });
}

TEST(RunCompression, MergePreservesCompressionExactness) {
  // merge() concatenates per-peer offsets; when all parts were compressed
  // the result must come back compressed and still expand exactly.
  std::vector<Schedule> parts(2);
  for (auto& p : parts) p.bufferLocalCopies = false;
  parts[0].sends.push_back(OffsetPlan{0, {0, 1, 2}, {}});
  parts[1].sends.push_back(OffsetPlan{0, {10, 11, 12}, {}});
  parts[0].compress();
  parts[1].compress();
  const Schedule merged = merge(std::span<const Schedule>(parts));
  ASSERT_EQ(merged.sends.size(), 1u);
  EXPECT_EQ(merged.sends[0].offsets,
            (std::vector<Index>{0, 1, 2, 10, 11, 12}));
  EXPECT_TRUE(merged.compressed());
  EXPECT_EQ(expand(merged.sends[0].runs), merged.sends[0].offsets);
}

TEST(RunCompression, ReverseCarriesRunsWithFlippedLocals) {
  Schedule s;
  s.bufferLocalCopies = false;
  s.sends.push_back(OffsetPlan{1, {0, 1, 2, 9}, {}});
  s.recvs.push_back(OffsetPlan{1, {4, 6, 8}, {}});
  s.localPairs = {{0, 10}, {1, 11}};
  s.compress();
  const Schedule r = reverse(s);
  EXPECT_TRUE(r.compressed());
  EXPECT_EQ(expand(r.sends[0].runs), s.recvs[0].offsets);
  EXPECT_EQ(expand(r.recvs[0].runs), s.sends[0].offsets);
  ASSERT_EQ(r.localPairs.size(), 2u);
  EXPECT_EQ(r.localPairs[0], (std::pair<Index, Index>{10, 0}));
}

}  // namespace
}  // namespace mc::sched
