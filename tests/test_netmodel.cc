// Tests for the network cost model: parameter selection by endpoint
// placement, transfer-time arithmetic, and link contention.
#include <gtest/gtest.h>

#include "transport/netmodel.h"
#include "transport/world.h"

namespace mc::transport {
namespace {

TEST(NetParams, TransferTime) {
  NetParams p{1e-3, 1e6, 0, 0};
  EXPECT_DOUBLE_EQ(p.transferTime(0), 1e-3);
  EXPECT_DOUBLE_EQ(p.transferTime(1000000), 1e-3 + 1.0);
}

NetworkModel makeModel(NetConfig cfg, std::vector<int> nodeOf,
                       std::vector<int> programOf) {
  return NetworkModel(std::move(cfg), std::move(nodeOf), std::move(programOf));
}

TEST(NetworkModel, ParamsByPlacement) {
  NetConfig cfg;
  cfg.intraNode = NetParams{1, 1, 0, 0};
  cfg.interNode = NetParams{2, 1, 0, 0};
  cfg.interProgram = NetParams{3, 1, 0, 0};
  // ranks: 0,1 on node0 prog0; 2 on node1 prog0; 3 on node2 prog1
  auto m = makeModel(cfg, {0, 0, 1, 2}, {0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(m.paramsFor(0, 1).latency, 1);
  EXPECT_DOUBLE_EQ(m.paramsFor(0, 2).latency, 2);
  EXPECT_DOUBLE_EQ(m.paramsFor(0, 3).latency, 3);
  EXPECT_DOUBLE_EQ(m.paramsFor(3, 1).latency, 3);
}

TEST(NetworkModel, SelfMessageInstant) {
  auto m = makeModel(NetConfig{}, {0, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(m.arrival(5.0, 0, 0, 1 << 20), 5.0);
}

TEST(NetworkModel, ArrivalWithoutContention) {
  NetConfig cfg;
  cfg.interNode = NetParams{1e-3, 1e6, 0, 0};
  cfg.contention = false;
  auto m = makeModel(cfg, {0, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(m.arrival(0.0, 0, 1, 1000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(m.senderOccupancy(0, 1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(m.receiverOccupancy(0, 1, 1000), 0.0);
}

TEST(NetworkModel, ContentionChargesBothNics) {
  NetConfig cfg;
  cfg.interNode = NetParams{1e-3, 1e6, 0, 0};
  cfg.contention = true;
  auto m = makeModel(cfg, {0, 1, 2}, {0, 0, 0});
  // One process per node: the transmit time (1 ms) occupies the sender NIC
  // and the receive time occupies the receiver NIC; only latency rides on
  // the arrival.
  EXPECT_DOUBLE_EQ(m.senderOccupancy(0, 1, 1000), 1e-3);
  EXPECT_DOUBLE_EQ(m.receiverOccupancy(0, 1, 1000), 1e-3);
  EXPECT_DOUBLE_EQ(m.arrival(5.0, 0, 1, 1000), 5.0 + 1e-3);
}

TEST(NetworkModel, ContentionScalesWithNodeSharing) {
  // Two processes sharing the sender node halve its NIC rate.
  NetConfig cfg;
  cfg.interNode = NetParams{0.0, 1e6, 0, 0};
  cfg.contention = true;
  auto m = makeModel(cfg, {0, 0, 1}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(m.senderOccupancy(0, 2, 1000), 2e-3);
  EXPECT_DOUBLE_EQ(m.receiverOccupancy(0, 2, 1000), 1e-3);
}

TEST(NetworkModel, SameNodeSkipsContention) {
  NetConfig cfg;
  cfg.intraNode = NetParams{1e-6, 1e9, 0, 0};
  cfg.contention = true;
  auto m = makeModel(cfg, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.senderOccupancy(0, 1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(m.receiverOccupancy(0, 1, 1000), 0.0);
}

TEST(NetworkModel, ContentionIsDeterministic) {
  // The occupancy model holds no shared state: identical queries give
  // identical answers regardless of call order.
  NetConfig cfg;
  cfg.interNode = NetParams{1e-4, 1e7, 0, 0};
  cfg.contention = true;
  auto m = makeModel(cfg, {0, 1, 2, 3}, {0, 0, 0, 0});
  const double a = m.arrival(0.25, 1, 3, 4096);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(m.arrival(0.25, 1, 3, 4096), a);
    EXPECT_DOUBLE_EQ(m.arrival(0.0, 2, 0, 100), 1e-4);
  }
}

TEST(World, NodesPerProgramPlacement) {
  // 4 procs on 2 nodes: ranks 0,2 -> node 0; ranks 1,3 -> node 1 (cyclic).
  WorldOptions o;
  o.net.nodesPerProgram = {2};
  o.net.intraNode = NetParams{1.0, 1e12, 0, 0};
  o.net.interNode = NetParams{2.0, 1e12, 0, 0};
  World::runSPMD(4, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(2, 1, 0);  // same node: latency 1
      c.sendValue(1, 2, 0);  // different node: latency 2
    } else if (c.rank() == 2) {
      c.recvValue<int>(0, 1);
      EXPECT_NEAR(c.now(), 1.0, 1e-9);
    } else if (c.rank() == 1) {
      c.recvValue<int>(0, 2);
      EXPECT_NEAR(c.now(), 2.0, 1e-9);
    }
  }, o);
}

TEST(World, InterProgramParamsApply) {
  WorldOptions o;
  o.net.interProgram = NetParams{7.0, 1e12, 0, 0};
  World::run({
      ProgramSpec{"a", 1, [](Comm& c) { c.sendValueTo(1, 0, 1, 5); }},
      ProgramSpec{"b", 1,
                  [](Comm& c) {
                    EXPECT_EQ(c.recvValueFrom<int>(0, 0, 1), 5);
                    EXPECT_NEAR(c.now(), 7.0, 1e-9);
                  }},
  }, o);
}

}  // namespace
}  // namespace mc::transport
