// Topology layer: Comm placement accessors, hierarchical (two-level)
// collectives vs the flat algorithms (bitwise differential, including
// inter-program worlds), node-aggregated schedule execution vs flat
// execution (fuzzed run()/runAdd() in both drain orders, split-phase), the
// per-link-class message invariants (<= nodes-1 inter-node messages per
// rank per schedule step), and the alltoall pairwise rotation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "sched/executor.h"
#include "sched/node_agg.h"
#include "transport/world.h"

namespace mc {
namespace {

using layout::Index;
using sched::Executor;
using sched::OffsetPlan;
using sched::Schedule;
using transport::Comm;
using transport::NetConfig;
using transport::World;
using transport::WorldOptions;

/// Restores the process-wide aggregation flag even when an assertion fires.
struct AggFlagGuard {
  explicit AggFlagGuard(bool on) { sched::setNodeAggregation(on); }
  ~AggFlagGuard() { sched::setNodeAggregation(false); }
};

struct DrainOrderGuard {
  explicit DrainOrderGuard(sched::DrainOrder o) { sched::setDrainOrder(o); }
  ~DrainOrderGuard() { sched::setDrainOrder(sched::DrainOrder::kArrival); }
};

WorldOptions nodesOptions(int nodes, bool hierarchical = false,
                          bool contention = false) {
  WorldOptions options;
  options.net.nodesPerProgram = {nodes};
  options.net.hierarchicalCollectives = hierarchical;
  options.net.contention = contention;
  return options;
}

TEST(Topology, CommAccessorsMatchCyclicPlacement) {
  World::runSPMD(
      8,
      [](Comm& c) {
        // Cyclic placement over 3 nodes: rank r lives on node r % 3.
        EXPECT_EQ(c.programNodes(), 3);
        EXPECT_EQ(c.myNode(), c.nodeOfRank(c.rank()));
        for (int r = 0; r < c.size(); ++r) {
          EXPECT_EQ(c.leaderOfRank(r), r % 3);
        }
        EXPECT_EQ(c.nodeLeader(), c.rank() % 3);
        EXPECT_EQ(c.isNodeLeader(), c.rank() < 3);
        ASSERT_EQ(c.nodeLeaders().size(), 3u);
        EXPECT_EQ(c.nodeLeaders()[0], 0);  // rank 0 is always a leader
        EXPECT_EQ(c.nodeLeaders()[1], 1);
        EXPECT_EQ(c.nodeLeaders()[2], 2);
        std::vector<int> expectPeers;
        for (int r = c.rank() % 3; r < 8; r += 3) expectPeers.push_back(r);
        EXPECT_EQ(c.nodePeers(), expectPeers);
      },
      nodesOptions(3));
}

// --- hierarchical collectives ------------------------------------------------

/// Runs the collective workload once and returns each rank's serialized
/// results, so flat and hierarchical worlds can be compared bytewise.
std::vector<std::vector<std::byte>> runCollectiveWorkload(bool hierarchical) {
  const int kProcs = 8;
  std::vector<std::vector<std::byte>> results(kProcs);
  World::runSPMD(
      kProcs,
      [&results](Comm& c) {
        std::vector<std::byte>& out =
            results[static_cast<size_t>(c.rank())];
        const auto put = [&out](std::span<const std::byte> b) {
          out.insert(out.end(), b.begin(), b.end());
        };
        const auto putDouble = [&put](double v) {
          put(std::as_bytes(std::span<const double>(&v, 1)));
        };
        std::mt19937 rng(1234u + static_cast<unsigned>(c.rank()));
        std::uniform_real_distribution<double> val(-3.0, 3.0);

        c.advance(0.01 * (c.rank() + 1));
        c.barrier();
        EXPECT_GE(c.now(), 0.08);  // at least the max participating clock

        // bcast from every root, odd payload sizes.
        for (int root = 0; root < c.size(); ++root) {
          std::vector<double> data;
          if (c.rank() == root) {
            data.resize(static_cast<size_t>(3 + root));
            for (double& v : data) v = val(rng);
          }
          c.bcast(data, root);
          ASSERT_EQ(data.size(), static_cast<size_t>(3 + root));
          put(std::as_bytes(std::span<const double>(data)));
        }

        // allgather with rank-dependent row sizes (exercises the framed
        // leader batches), plus the empty-row edge case at rank 5.
        std::vector<double> mine(
            static_cast<size_t>(c.rank() == 5 ? 0 : 1 + c.rank() % 4));
        for (double& v : mine) v = val(rng);
        const auto rows = c.allgather<double>(mine);
        for (const auto& row : rows) {
          put(std::as_bytes(std::span<const double>(row)));
        }

        // allreduce: floating-point sums only match bitwise when the
        // combination order is identical.
        const double sum = c.allreduceSum(val(rng));
        putDouble(sum);
        putDouble(c.allreduceMax(val(rng)));

        // gather stays flat but must coexist with the hierarchy flag.
        const auto g = c.gather<double>(mine, 1);
        if (c.rank() == 1) {
          for (const auto& row : g) {
            put(std::as_bytes(std::span<const double>(row)));
          }
        }
      },
      nodesOptions(3, hierarchical));
  return results;
}

TEST(Topology, HierarchicalCollectivesBitwiseIdenticalToFlat) {
  const auto flat = runCollectiveWorkload(false);
  const auto tree = runCollectiveWorkload(true);
  ASSERT_EQ(flat.size(), tree.size());
  for (size_t r = 0; r < flat.size(); ++r) {
    EXPECT_EQ(flat[r], tree[r]) << "rank " << r;
  }
}

/// Two coupled programs, each spanning multiple nodes, with cross-program
/// traffic interleaved between intra-program collectives.
std::vector<std::vector<std::byte>> runInterProgramWorkload(
    bool hierarchical) {
  std::vector<std::vector<std::byte>> results(10);
  WorldOptions options;
  options.net.nodesPerProgram = {2, 3};
  options.net.hierarchicalCollectives = hierarchical;
  const auto body = [&results](Comm& c) {
    std::vector<std::byte>& out =
        results[static_cast<size_t>(c.globalRank())];
    const auto putDouble = [&out](double v) {
      const auto b = std::as_bytes(std::span<const double>(&v, 1));
      out.insert(out.end(), b.begin(), b.end());
    };
    const int other = 1 - c.program();
    const double local = 0.125 * (c.globalRank() + 1);
    putDouble(c.allreduceSum(local));
    // rank 0 <-> rank 0 exchange between the programs.
    if (c.rank() == 0) {
      const int tag = c.nextInterTag(other);
      c.sendValueTo(other, 0, tag, local * 10.0);
      putDouble(c.recvValueFrom<double>(other, 0, tag));
    }
    std::vector<double> mine{local, -local};
    const auto rows = c.allgather<double>(mine);
    for (const auto& row : rows) {
      const auto b = std::as_bytes(std::span<const double>(row));
      out.insert(out.end(), b.begin(), b.end());
    }
  };
  World::run({{"left", 6, body}, {"right", 4, body}}, options);
  return results;
}

TEST(Topology, HierarchicalCollectivesAcrossProgramWorlds) {
  const auto flat = runInterProgramWorkload(false);
  const auto tree = runInterProgramWorkload(true);
  ASSERT_EQ(flat.size(), tree.size());
  for (size_t r = 0; r < flat.size(); ++r) {
    EXPECT_EQ(flat[r], tree[r]) << "global rank " << r;
  }
}

TEST(Topology, AlltoallRotationDeliversCorrectRows) {
  World::runSPMD(
      5,
      [](Comm& c) {
        std::vector<std::vector<int>> sendTo(5);
        for (int r = 0; r < 5; ++r) {
          sendTo[static_cast<size_t>(r)] = {c.rank() * 100 + r,
                                            c.rank() * 100 + r + 50};
        }
        const auto got = c.alltoall<int>(sendTo);
        ASSERT_EQ(got.size(), 5u);
        for (int r = 0; r < 5; ++r) {
          const auto& row = got[static_cast<size_t>(r)];
          ASSERT_EQ(row.size(), 2u);
          EXPECT_EQ(row[0], r * 100 + c.rank());
          EXPECT_EQ(row[1], r * 100 + c.rank() + 50);
        }
      },
      nodesOptions(2, /*hierarchical=*/false, /*contention=*/true));
}

// --- node-aggregated schedule execution --------------------------------------

constexpr int kSrcLen = 64;

/// Deterministic fuzzed traffic matrix: every rank derives the same plans
/// from the seed, so send and receive sides agree.  With `overlap` the
/// receive offsets of different peers may collide (add semantics);
/// otherwise each (src, dst) pair gets a disjoint destination region.
Schedule fuzzSchedule(unsigned seed, int nprocs, int me, bool overlap,
                      size_t* dstLen) {
  const auto countOf = [seed](int s, int d) {
    std::mt19937 rng(seed * 7919u + static_cast<unsigned>(s) * 131u +
                     static_cast<unsigned>(d));
    return static_cast<int>(rng() % 4);  // 0..3 elements, 0 = no message
  };
  Schedule sched;
  sched.bufferLocalCopies = false;
  for (int d = 0; d < nprocs; ++d) {
    const int n = countOf(me, d);
    if (n == 0) continue;
    std::mt19937 rng(seed * 31u + static_cast<unsigned>(me) * 17u +
                     static_cast<unsigned>(d));
    OffsetPlan p;
    p.peer = d;
    for (int i = 0; i < n; ++i) {
      p.offsets.push_back(static_cast<Index>(rng() % kSrcLen));
    }
    sched.sends.push_back(std::move(p));
  }
  size_t base = 0;
  for (int s = 0; s < nprocs; ++s) {
    const int n = countOf(s, me);
    if (n == 0) continue;
    std::mt19937 rng(seed * 101u + static_cast<unsigned>(s) * 13u +
                     static_cast<unsigned>(me));
    OffsetPlan p;
    p.peer = s;
    for (int i = 0; i < n; ++i) {
      p.offsets.push_back(overlap
                              ? static_cast<Index>(rng() % 16)
                              : static_cast<Index>(base + static_cast<size_t>(i)));
    }
    base += static_cast<size_t>(n);
    sched.recvs.push_back(std::move(p));
  }
  *dstLen = overlap ? 16 : (base > 0 ? base : 1);
  return sched;
}

void staggeredSleep(int rank, int iteration) {
  const int ms = ((rank + iteration) % 3) * 3;
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Runs the fuzzed schedule `iters` times through one executor and returns
/// each rank's final dst bytes.
std::vector<std::vector<double>> runFuzzWorld(unsigned seed, int nprocs,
                                              int nodes, bool aggregated,
                                              bool add, int iters) {
  std::vector<std::vector<double>> results(static_cast<size_t>(nprocs));
  AggFlagGuard agg(aggregated);
  World::runSPMD(
      nprocs,
      [&results, seed, add, iters](Comm& c) {
        size_t dstLen = 0;
        const Schedule s =
            fuzzSchedule(seed, c.size(), c.rank(), /*overlap=*/add, &dstLen);
        Executor<double> ex(c, s);
        std::vector<double> src(kSrcLen);
        for (int i = 0; i < kSrcLen; ++i) {
          src[static_cast<size_t>(i)] =
              std::sin(0.1 * i + c.rank()) * 1e3;  // irregular doubles
        }
        std::vector<double> dst(dstLen, 0.25);
        for (int it = 0; it < iters; ++it) {
          staggeredSleep(c.rank(), it);
          if (add) {
            ex.runAdd(src, dst);
          } else {
            ex.run(src, dst);
          }
        }
        results[static_cast<size_t>(c.rank())] = dst;
      },
      nodesOptions(nodes));
  return results;
}

void expectBitwiseEqual(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size()) << "rank " << r;
    EXPECT_EQ(0, std::memcmp(a[r].data(), b[r].data(),
                             a[r].size() * sizeof(double)))
        << "rank " << r;
  }
}

TEST(Topology, AggregatedRunMatchesFlatBitwise) {
  for (const auto order :
       {sched::DrainOrder::kArrival, sched::DrainOrder::kPeer}) {
    DrainOrderGuard guard(order);
    for (unsigned seed : {1u, 2u, 3u}) {
      const auto flat = runFuzzWorld(seed, 8, 3, /*aggregated=*/false,
                                     /*add=*/false, /*iters=*/4);
      const auto agg = runFuzzWorld(seed, 8, 3, /*aggregated=*/true,
                                    /*add=*/false, /*iters=*/4);
      expectBitwiseEqual(flat, agg);
    }
  }
}

TEST(Topology, AggregatedRunAddMatchesFlatBitwise) {
  for (const auto order :
       {sched::DrainOrder::kArrival, sched::DrainOrder::kPeer}) {
    DrainOrderGuard guard(order);
    for (unsigned seed : {4u, 5u, 6u}) {
      // Overlapping receive offsets: float += only matches bitwise when
      // contributions apply in peer order on both paths.
      const auto flat = runFuzzWorld(seed, 8, 3, /*aggregated=*/false,
                                     /*add=*/true, /*iters=*/4);
      const auto agg = runFuzzWorld(seed, 8, 3, /*aggregated=*/true,
                                    /*add=*/true, /*iters=*/4);
      expectBitwiseEqual(flat, agg);
    }
  }
}

TEST(Topology, AggregatedSingleNodeAndDistributedEdges) {
  // nodes == 1 (everything direct, no frames) and nodes == nprocs (every
  // remote peer is its own frame) both stay bitwise identical.
  for (int nodes : {1, 6}) {
    const auto flat =
        runFuzzWorld(7u, 6, nodes, /*aggregated=*/false, /*add=*/true, 3);
    const auto agg =
        runFuzzWorld(7u, 6, nodes, /*aggregated=*/true, /*add=*/true, 3);
    expectBitwiseEqual(flat, agg);
  }
}

/// Split-phase with aggregation: poll-while-computing, finish/finishAdd,
/// and a cancelled Pending followed by a clean run.
std::vector<std::vector<double>> runSplitPhaseWorld(unsigned seed,
                                                    bool aggregated) {
  const int kProcs = 8;
  std::vector<std::vector<double>> results(kProcs);
  AggFlagGuard agg(aggregated);
  World::runSPMD(
      kProcs,
      [&results, seed](Comm& c) {
        size_t dstLen = 0;
        const Schedule s =
            fuzzSchedule(seed, c.size(), c.rank(), /*overlap=*/false, &dstLen);
        Executor<double> ex(c, s);
        std::vector<double> src(kSrcLen);
        for (int i = 0; i < kSrcLen; ++i) {
          src[static_cast<size_t>(i)] = 1.5 * i - c.rank();
        }
        std::vector<double> dst(dstLen, -1.0);
        for (int it = 0; it < 3; ++it) {
          staggeredSleep(c.rank(), it);
          auto pending = ex.start(src);
          int spins = 0;
          while (!pending.poll() && spins < 100) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            ++spins;
          }
          pending.finish(dst);
        }
        {
          // Abandoned exchange: the destructor must drain (and, under
          // aggregation, still forward node-mates' segments).
          auto abandoned = ex.start(src);
        }
        auto pending = ex.start(src);
        pending.finishAdd(dst);
        results[static_cast<size_t>(c.rank())] = dst;
      },
      nodesOptions(3));
  return results;
}

TEST(Topology, AggregatedSplitPhaseMatchesFlat) {
  const auto flat = runSplitPhaseWorld(11u, false);
  const auto agg = runSplitPhaseWorld(11u, true);
  expectBitwiseEqual(flat, agg);
}

/// All-to-all schedule on 8 ranks over 2 nodes: flat execution emits 4
/// inter-node messages per rank per step, aggregated execution exactly 1
/// (<= nodes-1), with the node leaders forwarding 3 segments each.
TEST(Topology, AggregatedInterNodeMessageInvariant) {
  constexpr int kProcs = 8;
  constexpr int kNodes = 2;
  for (bool aggregated : {false, true}) {
    AggFlagGuard agg(aggregated);
    World::runSPMD(
        kProcs,
        [aggregated](Comm& c) {
          Schedule s;
          s.bufferLocalCopies = false;
          for (int r = 0; r < c.size(); ++r) {
            if (r == c.rank()) continue;
            OffsetPlan snd;
            snd.peer = r;
            snd.offsets = {0, 1};
            s.sends.push_back(std::move(snd));
            OffsetPlan rcv;
            rcv.peer = r;
            const Index base =
                static_cast<Index>(2 * (r < c.rank() ? r : r - 1));
            rcv.offsets = {base, base + 1};
            s.recvs.push_back(std::move(rcv));
          }
          Executor<double> ex(c, s);
          std::vector<double> src(2, 1.0 * c.rank());
          std::vector<double> dst(2 * (kProcs - 1), 0.0);
          const auto before = c.stats();
          ex.run(src, dst);
          // Every send of the step (frames AND leader forwards) happens
          // inside run(): forwarding rides the leader's own drain, so the
          // rank's post-run counter diff covers the whole step.
          const auto d = c.stats() - before;
          const int remoteRanks = kProcs - kProcs / kNodes;  // 4
          if (aggregated) {
            // Direct same-node sends plus exactly ONE frame per remote
            // node: the <= nodes-1 inter-node invariant, exact here.
            EXPECT_EQ(d.interNodeMessages,
                      static_cast<std::uint64_t>(kNodes - 1));
            if (c.isNodeLeader()) {
              // 4 remote sources frame into this node; 3 of each frame's
              // 4 segments forward to the other three node-mates... except
              // segments addressed to the leader itself.
              EXPECT_EQ(d.forwardedMessages,
                        static_cast<std::uint64_t>(remoteRanks) * 3u);
            } else {
              EXPECT_EQ(d.forwardedMessages, 0u);
            }
          } else {
            // Flat: one message per remote rank.
            EXPECT_EQ(d.interNodeMessages,
                      static_cast<std::uint64_t>(remoteRanks));
            EXPECT_EQ(d.forwardedMessages, 0u);
          }
          // Data correctness either way.
          for (int r = 0; r < kProcs; ++r) {
            if (r == c.rank()) continue;
            const size_t base =
                static_cast<size_t>(2 * (r < c.rank() ? r : r - 1));
            EXPECT_EQ(dst[base], 1.0 * r);
            EXPECT_EQ(dst[base + 1], 1.0 * r);
          }
        },
        nodesOptions(kNodes, /*hierarchical=*/false, /*contention=*/true));
  }
}

/// Rebinding an aggregated executor re-derives the node grouping (and the
/// leader's expected-frame set) collectively.
TEST(Topology, AggregatedRebindStaysCorrect) {
  AggFlagGuard agg(true);
  World::runSPMD(
      6,
      [](Comm& c) {
        size_t dstLen1 = 0, dstLen2 = 0;
        const Schedule s1 =
            fuzzSchedule(21u, c.size(), c.rank(), /*overlap=*/false, &dstLen1);
        const Schedule s2 =
            fuzzSchedule(22u, c.size(), c.rank(), /*overlap=*/false, &dstLen2);
        Executor<double> ex(c, s1);
        std::vector<double> src(kSrcLen);
        for (int i = 0; i < kSrcLen; ++i) {
          src[static_cast<size_t>(i)] = 2.0 * i + c.rank();
        }
        std::vector<double> dst1(dstLen1, 0.0);
        ex.run(src, dst1);
        ex.rebind(s2);
        std::vector<double> dst2(dstLen2, 0.0);
        ex.run(src, dst2);
        // Oracle: fresh flat-equivalent executors produce the same bytes.
        // (The aggregation flag is still on, so these are also aggregated —
        // the point is the rebind path, exercised against fresh binds.)
        Executor<double> ex2(c, s2);
        std::vector<double> dst2b(dstLen2, 0.0);
        ex2.run(src, dst2b);
        EXPECT_EQ(0, std::memcmp(dst2.data(), dst2b.data(),
                                 dst2.size() * sizeof(double)));
      },
      nodesOptions(2));
}

}  // namespace
}  // namespace mc
