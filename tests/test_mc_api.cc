// Tests for the paper-style MC_* API facade, including a faithful rendition
// of the paper's Figure 9 two-HPF-programs example.
#include <gtest/gtest.h>

#include "chaos/partition.h"
#include "core/mc_api.h"
#include "transport/world.h"

namespace mc::api {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

TEST(McApi, RegionAndSetLifecycle) {
  World::runSPMD(1, [](Comm&) {
    MC_Reset();
    const Index lo[2] = {0, 0};
    const Index hi[2] = {3, 3};
    const RegionId r = CreateRegion_HPF(2, lo, hi);
    const SetId s = MC_NewSetOfRegion();
    MC_AddRegion2Set(r, s);
    MC_FreeRegion(r);
    MC_FreeSet(s);
    EXPECT_THROW(MC_FreeRegion(r), Error);
    EXPECT_THROW(MC_AddRegion2Set(r, s), Error);
  });
}

TEST(McApi, BadHandlesRejected) {
  World::runSPMD(1, [](Comm& c) {
    MC_Reset();
    EXPECT_THROW(MC_GetSched(42), Error);
    EXPECT_THROW(MC_ComputeSched(c, 1, 2, 3, 4), Error);
    const Index lo = 0, hi = -1;
    EXPECT_THROW(CreateRegion_HPF(0, &lo, &hi), Error);
    EXPECT_THROW(CreateRegion_HPF(9, &lo, &hi), Error);
  });
}

TEST(McApi, HandlesAreIndependentPerRank) {
  World::runSPMD(3, [](Comm& c) {
    MC_Reset();
    // Ranks create different numbers of regions; handles never clash
    // because each rank has its own table.
    const Index lo = 0, hi = 5;
    for (int k = 0; k <= c.rank(); ++k) CreateRegion_PCXX(lo, hi);
    const SetId s = MC_NewSetOfRegion();
    MC_FreeSet(s);
  });
}

TEST(McApi, IntraProgramCopyPartiToChaos) {
  World::runSPMD(4, [](Comm& c) {
    MC_Reset();
    const Index n = 36;
    parti::BlockDistArray<double> a(c, Shape::of({6, 6}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 6 + p[1]); });
    const auto mine = chaos::cyclicPartition(n, c.size(), c.rank());
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            c, mine, n, chaos::TranslationTable::Storage::kDistributed));
    chaos::IrregArray<double> x(c, table, mine);

    const Index lo[2] = {0, 0}, hi[2] = {5, 5};
    const RegionId srcRegion = CreateRegion_Parti(2, lo, hi);
    const SetId srcSet = MC_NewSetOfRegion();
    MC_AddRegion2Set(srcRegion, srcSet);

    std::vector<Index> ids(static_cast<size_t>(n));
    for (Index k = 0; k < n; ++k) ids[static_cast<size_t>(k)] = n - 1 - k;
    const RegionId dstRegion =
        CreateRegion_Chaos(ids.data(), static_cast<Index>(ids.size()));
    const SetId dstSet = MC_NewSetOfRegion();
    MC_AddRegion2Set(dstRegion, dstSet);

    const ObjectId srcObj = MC_RegisterParti(a);
    const ObjectId dstObj = MC_RegisterChaos(x);
    const SchedId sched = MC_ComputeSched(c, srcObj, srcSet, dstObj, dstSet);
    MC_DataMove<double>(c, sched, a.raw(), x.raw());

    const auto img = x.gatherGlobal();
    for (Index k = 0; k < n; ++k) {
      // Irregular element n-1-k receives regular element k.
      EXPECT_DOUBLE_EQ(img[static_cast<size_t>(n - 1 - k)],
                       static_cast<double>(k));
    }
  });
}

TEST(McApi, Figure9TwoHpfPrograms) {
  // The paper's Figure 9 (0-based, made conformant — the paper's literal
  // triplets disagree by one row): the source program owns a 200x100 HPF
  // array B, the destination a 50x60 array A (both (BLOCK, BLOCK)), and
  // Meta-Chaos performs A[0:49, 9:59] = B[49:98, 49:99] (50x51 elements).
  constexpr Index kRowsB = 200, kColsB = 100;
  constexpr Index kRowsA = 50, kColsA = 60;
  World::run({
      ProgramSpec{
          "source", 4,
          [&](Comm& c) {
            MC_Reset();
            hpfrt::HpfArray<double> B(
                c, hpfrt::HpfDist::blockEveryDim(Shape::of({kRowsB, kColsB}),
                                                 c.size()));
            B.fillByPoint([](const Point& p) {
              return static_cast<double>(p[0] * 1000 + p[1]);
            });
            const Index lo[2] = {49, 49}, hi[2] = {98, 99};
            const RegionId region = CreateRegion_HPF(2, lo, hi);
            const SetId set = MC_NewSetOfRegion();
            MC_AddRegion2Set(region, set);
            const ObjectId obj = MC_RegisterHPF(B);
            const SchedId sched = MC_ComputeSchedSend(c, obj, set, 1);
            MC_DataMoveSend<double>(c, sched, B.raw());
          }},
      ProgramSpec{
          "destination", 2,
          [&](Comm& c) {
            MC_Reset();
            hpfrt::HpfArray<double> A(
                c, hpfrt::HpfDist::blockEveryDim(Shape::of({kRowsA, kColsA}),
                                                 c.size()));
            const Index lo[2] = {0, 9}, hi[2] = {49, 59};
            const RegionId region = CreateRegion_HPF(2, lo, hi);
            const SetId set = MC_NewSetOfRegion();
            MC_AddRegion2Set(region, set);
            const ObjectId obj = MC_RegisterHPF(A);
            const SchedId sched = MC_ComputeSchedRecv(c, obj, set, 0);
            MC_DataMoveRecv<double>(c, sched, A.raw());
            const auto img = A.gatherGlobal();
            for (Index i = 0; i < 50; ++i) {
              for (Index j = 0; j < 51; ++j) {
                EXPECT_DOUBLE_EQ(
                    img[static_cast<size_t>(i * kColsA + (j + 9))],
                    static_cast<double>((i + 49) * 1000 + (j + 49)));
              }
            }
          }},
  });
}

TEST(McApi, ReverseSchedHandle) {
  World::runSPMD(2, [](Comm& c) {
    MC_Reset();
    parti::BlockDistArray<double> a(c, Shape::of({4, 4}), 0);
    parti::BlockDistArray<double> b(c, Shape::of({4, 4}), 0);
    a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 4 + p[1]); });
    const Index lo[2] = {0, 0}, hi[2] = {3, 3};
    const RegionId r = CreateRegion_Parti(2, lo, hi);
    const SetId s = MC_NewSetOfRegion();
    MC_AddRegion2Set(r, s);
    const SchedId fwd = MC_ComputeSched(c, MC_RegisterParti(a), s,
                                        MC_RegisterParti(b), s);
    MC_DataMove<double>(c, fwd, a.raw(), b.raw());
    a.fill(0.0);
    const SchedId rev = MC_ReverseSched(fwd);
    MC_DataMove<double>(c, rev, b.raw(), a.raw());
    const auto img = a.gatherGlobal();
    for (Index k = 0; k < 16; ++k) {
      EXPECT_DOUBLE_EQ(img[static_cast<size_t>(k)], static_cast<double>(k));
    }
  });
}

}  // namespace
}  // namespace mc::api
