// Tests for program-scoped collectives: barrier, bcast, gather, allgather,
// alltoall, reductions — including clock-synchronization semantics.
#include <gtest/gtest.h>

#include "transport/world.h"

namespace mc::transport {
namespace {

TEST(Collectives, BarrierSynchronizesClocks) {
  World::runSPMD(4, [](Comm& c) {
    c.advance(0.1 * (c.rank() + 1));  // ranks at 0.1 .. 0.4
    c.barrier();
    EXPECT_GE(c.now(), 0.4);  // everyone at least at the max
  });
}

TEST(Collectives, BcastFromEveryRoot) {
  World::runSPMD(4, [](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<int> data;
      if (c.rank() == root) data = {root, root * 10, root * 100};
      c.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[1], root * 10);
    }
  });
}

TEST(Collectives, BcastValue) {
  World::runSPMD(3, [](Comm& c) {
    const double v = c.bcastValue(c.rank() == 1 ? 3.25 : -1.0, 1);
    EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST(Collectives, GatherConcentratesAtRoot) {
  World::runSPMD(4, [](Comm& c) {
    std::vector<int> mine(static_cast<size_t>(c.rank()) + 1, c.rank());
    auto rows = c.gather<int>(mine, 2);
    if (c.rank() == 2) {
      ASSERT_EQ(rows.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(rows[static_cast<size_t>(r)].size(),
                  static_cast<size_t>(r) + 1);
        for (int x : rows[static_cast<size_t>(r)]) EXPECT_EQ(x, r);
      }
    } else {
      EXPECT_TRUE(rows.empty());
    }
  });
}

TEST(Collectives, AllgatherEveryoneSeesAll) {
  World::runSPMD(5, [](Comm& c) {
    std::vector<int> mine{c.rank() * 7};
    auto rows = c.allgather<int>(mine);
    ASSERT_EQ(rows.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      ASSERT_EQ(rows[static_cast<size_t>(r)].size(), 1u);
      EXPECT_EQ(rows[static_cast<size_t>(r)][0], r * 7);
    }
  });
}

TEST(Collectives, AllgatherVariableSizes) {
  World::runSPMD(4, [](Comm& c) {
    std::vector<double> mine(static_cast<size_t>(c.rank() * 3));
    for (auto& x : mine) x = c.rank();
    auto rows = c.allgather<double>(mine);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(rows[static_cast<size_t>(r)].size(),
                static_cast<size_t>(r * 3));
    }
  });
}

TEST(Collectives, AllgatherValue) {
  World::runSPMD(3, [](Comm& c) {
    auto all = c.allgatherValue(c.rank() + 100);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 100);
    EXPECT_EQ(all[2], 102);
  });
}

TEST(Collectives, AlltoallPersonalized) {
  World::runSPMD(4, [](Comm& c) {
    std::vector<std::vector<int>> sendTo(4);
    for (int r = 0; r < 4; ++r) sendTo[static_cast<size_t>(r)] = {c.rank() * 10 + r};
    auto recvFrom = c.alltoall(sendTo);
    ASSERT_EQ(recvFrom.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(recvFrom[static_cast<size_t>(r)].size(), 1u);
      EXPECT_EQ(recvFrom[static_cast<size_t>(r)][0], r * 10 + c.rank());
    }
  });
}

TEST(Collectives, AlltoallEmptyLanes) {
  World::runSPMD(3, [](Comm& c) {
    std::vector<std::vector<int>> sendTo(3);
    // Only send to rank 0.
    sendTo[0] = {c.rank()};
    auto recvFrom = c.alltoall(sendTo);
    if (c.rank() == 0) {
      for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(recvFrom[static_cast<size_t>(r)].size(), 1u);
        EXPECT_EQ(recvFrom[static_cast<size_t>(r)][0], r);
      }
    } else {
      for (const auto& v : recvFrom) EXPECT_TRUE(v.empty());
    }
  });
}

TEST(Collectives, AlltoallWrongLaneCountRejected) {
  EXPECT_THROW(World::runSPMD(2,
                              [](Comm& c) {
                                std::vector<std::vector<int>> bad(1);
                                c.alltoall(bad);
                              }),
               Error);
}

TEST(Collectives, AllreduceMaxAndSum) {
  World::runSPMD(6, [](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduceMax(static_cast<double>(c.rank())), 5.0);
    EXPECT_DOUBLE_EQ(c.allreduceSum(1.0), 6.0);
  });
}

TEST(Collectives, MixedSequenceStaysMatched) {
  // Back-to-back different collectives must not cross-match tags.
  World::runSPMD(4, [](Comm& c) {
    for (int iter = 0; iter < 10; ++iter) {
      c.barrier();
      auto all = c.allgatherValue(iter * 4 + c.rank());
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[static_cast<size_t>(r)], iter * 4 + r);
      std::vector<int> b{iter};
      c.bcast(b, iter % 4);
      EXPECT_EQ(b[0], iter);
    }
  });
}

TEST(Collectives, CollectivesScopedToProgram) {
  // Two programs run independent collectives concurrently; they must not
  // interfere (the cross-program mailboxes are only touched by *To/From).
  World::run({
      ProgramSpec{"a", 3,
                  [](Comm& c) {
                    auto all = c.allgatherValue(c.rank());
                    EXPECT_EQ(all.size(), 3u);
                  }},
      ProgramSpec{"b", 2,
                  [](Comm& c) {
                    auto all = c.allgatherValue(c.rank() + 50);
                    ASSERT_EQ(all.size(), 2u);
                    EXPECT_EQ(all[1], 51);
                  }},
  });
}

TEST(Collectives, SingleRankDegenerate) {
  World::runSPMD(1, [](Comm& c) {
    c.barrier();
    auto all = c.allgatherValue(9);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], 9);
    std::vector<int> v{1, 2};
    c.bcast(v, 0);
    EXPECT_EQ(v.size(), 2u);
    auto a2a = c.alltoall(std::vector<std::vector<int>>{{5}});
    EXPECT_EQ(a2a[0][0], 5);
  });
}

}  // namespace
}  // namespace mc::transport
