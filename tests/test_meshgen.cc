// Tests for the workload generators.
#include <gtest/gtest.h>

#include <set>

#include "meshgen/meshgen.h"

namespace mc::meshgen {
namespace {

using layout::Index;

TEST(GridEdges, CountAndEndpoints) {
  const EdgeList e = gridEdges(3, 4);
  // Horizontal: 3*(4-1)=9, vertical: (3-1)*4=8.
  EXPECT_EQ(e.numEdges(), 17);
  for (Index k = 0; k < e.numEdges(); ++k) {
    EXPECT_GE(e.ia[static_cast<size_t>(k)], 0);
    EXPECT_LT(e.ia[static_cast<size_t>(k)], 12);
    EXPECT_LT(e.ib[static_cast<size_t>(k)], 12);
    // Grid edges connect neighbours: ids differ by 1 or by #cols.
    const Index d = e.ib[static_cast<size_t>(k)] - e.ia[static_cast<size_t>(k)];
    EXPECT_TRUE(d == 1 || d == 4) << "edge " << k;
  }
}

TEST(GridEdges, NoDuplicates) {
  const EdgeList e = gridEdges(5, 5);
  std::set<std::pair<Index, Index>> seen;
  for (Index k = 0; k < e.numEdges(); ++k) {
    EXPECT_TRUE(seen.insert({e.ia[static_cast<size_t>(k)],
                             e.ib[static_cast<size_t>(k)]}).second);
  }
}

TEST(Renumber, PreservesStructure) {
  const EdgeList e = gridEdges(4, 4);
  const auto perm = nodePermutation(16, 99);
  const EdgeList r = renumberNodes(e, perm);
  ASSERT_EQ(r.numEdges(), e.numEdges());
  for (Index k = 0; k < e.numEdges(); ++k) {
    EXPECT_EQ(r.ia[static_cast<size_t>(k)],
              perm[static_cast<size_t>(e.ia[static_cast<size_t>(k)])]);
    EXPECT_EQ(r.ib[static_cast<size_t>(k)],
              perm[static_cast<size_t>(e.ib[static_cast<size_t>(k)])]);
  }
}

TEST(Permutation, DeterministicAndComplete) {
  const auto p1 = nodePermutation(100, 5);
  const auto p2 = nodePermutation(100, 5);
  EXPECT_EQ(p1, p2);
  std::set<Index> seen(p1.begin(), p1.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(InterfaceMapping, FullRemapStructure) {
  const auto perm = nodePermutation(12, 4);
  const InterfaceMapping m = regToIrregMapping(3, 4, perm);
  EXPECT_EQ(m.size(), 12);
  std::set<Index> irregSeen;
  for (Index k = 0; k < m.size(); ++k) {
    EXPECT_EQ(m.reg1[static_cast<size_t>(k)], k / 4);
    EXPECT_EQ(m.reg2[static_cast<size_t>(k)], k % 4);
    EXPECT_EQ(m.irreg[static_cast<size_t>(k)], perm[static_cast<size_t>(k)]);
    irregSeen.insert(m.irreg[static_cast<size_t>(k)]);
  }
  EXPECT_EQ(irregSeen.size(), 12u);  // bijective interface
}

TEST(InterfaceMapping, RejectsWrongPermSize) {
  EXPECT_THROW(regToIrregMapping(3, 4, nodePermutation(11, 1)), Error);
}

}  // namespace
}  // namespace mc::meshgen
