// The central Meta-Chaos property suite: copying data between every ordered
// pair of libraries (parti, hpf, chaos, pc++), with both schedule methods
// (cooperation, duplication) and several processor counts, must equal the
// serial oracle implied by the two linearizations.  Also checks message
// minimality, schedule symmetry, and reuse.
#include <gtest/gtest.h>

#include <map>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "transport/world.h"
#include "util/rng.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

enum class Lib { kParti, kHpf, kChaos, kTulip };

const char* libName(Lib l) {
  switch (l) {
    case Lib::kParti: return "parti";
    case Lib::kHpf: return "hpf";
    case Lib::kChaos: return "chaos";
    case Lib::kTulip: return "tulip";
  }
  return "?";
}

/// A live distributed container for one library, with:
///  * a DistObject and a SetOfRegions of exactly kSetElems elements,
///  * element values keyed by *global id* (the container was filled with
///    value(globalId)),
///  * setGlobalIds: linearization position -> global id,
///  * span / gather accessors for the raw local storage.
struct Instance {
  DistObject obj;
  SetOfRegions set;
  std::vector<Index> setGlobalIds;
  std::function<std::span<double>()> raw;
  std::function<std::vector<double>()> gather;  // by global id
  std::shared_ptr<void> holder;                 // keeps the container alive
};

constexpr Index kSetElems = 48;

double valueOf(Index globalId) { return 1000.0 + static_cast<double>(globalId); }

Instance makeParti(Comm& c) {
  auto arr = std::make_shared<parti::BlockDistArray<double>>(
      c, Shape::of({10, 12}), /*ghost=*/1);
  arr->fillByPoint([](const Point& p) {
    return valueOf(p[0] * 12 + p[1]);
  });
  Instance inst{PartiAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  // Two disjoint regions: a 4x8 box (rows 1-4) and a strided 4x4 patch
  // (rows 5-8) -> 48 elements.  Destination regions must not repeat
  // elements, or the copy's outcome would depend on unpack order.
  const RegularSection r1 = RegularSection::box({1, 2}, {4, 9});
  const RegularSection r2 = RegularSection::of({5, 0}, {8, 9}, {1, 3});
  inst.set.add(Region::section(r1));
  inst.set.add(Region::section(r2));
  r1.forEach([&](const Point& p, Index) {
    inst.setGlobalIds.push_back(p[0] * 12 + p[1]);
  });
  r2.forEach([&](const Point& p, Index) {
    inst.setGlobalIds.push_back(p[0] * 12 + p[1]);
  });
  MC_CHECK(static_cast<Index>(inst.setGlobalIds.size()) == kSetElems);
  return inst;
}

Instance makeHpf(Comm& c) {
  auto arr = std::make_shared<hpfrt::HpfArray<double>>(
      c, hpfrt::HpfDist(
             Shape::of({9, 30}),
             {hpfrt::DimDist{hpfrt::DistKind::kCyclic, c.size(), 1},
              hpfrt::DimDist{hpfrt::DistKind::kBlock, 1, 1}}));
  arr->fillByPoint([](const Point& p) { return valueOf(p[0] * 30 + p[1]); });
  Instance inst{HpfAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  // 4x12 strided section = 48 elements.
  const RegularSection r = RegularSection::of({1, 3}, {7, 25}, {2, 2});
  inst.set.add(Region::section(r));
  r.forEach([&](const Point& p, Index) {
    inst.setGlobalIds.push_back(p[0] * 30 + p[1]);
  });
  MC_CHECK(static_cast<Index>(inst.setGlobalIds.size()) == kSetElems);
  return inst;
}

Instance makeChaos(Comm& c, bool replicated) {
  const Index n = 60;
  const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 23);
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(
          c, mine, n,
          replicated ? chaos::TranslationTable::Storage::kReplicated
                     : chaos::TranslationTable::Storage::kDistributed));
  auto arr = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
  arr->fillByGlobal([](Index g) { return valueOf(g); });
  Instance inst{ChaosAdapter::describe(*arr),
                SetOfRegions{},
                {},
                [arr]() { return arr->raw(); },
                [arr]() { return arr->gatherGlobal(); },
                arr};
  // 48 distinct indices in a shuffled order (a Chaos region is an index set).
  Rng rng(7);
  auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> ids;
  for (Index k = 0; k < kSetElems; ++k) {
    ids.push_back(static_cast<Index>(perm[static_cast<size_t>(k)]));
  }
  inst.set.add(Region::indices(ids));
  inst.setGlobalIds = ids;
  return inst;
}

Instance makeTulip(Comm& c) {
  const Index n = 100;
  auto coll = std::make_shared<tulip::Collection<double>>(
      c, n, tulip::Placement::kCyclic);
  coll->forEachOwned([](Index g, double& v) { v = valueOf(g); });
  Instance inst{TulipAdapter::describe(*coll),
                SetOfRegions{},
                {},
                [coll]() { return coll->raw(); },
                [coll]() { return coll->gatherGlobal(); },
                coll};
  // Elements 2, 4, ..., 96 -> 48 elements.
  inst.set.add(Region::range(2, 96, 2));
  for (Index k = 0; k < kSetElems; ++k) inst.setGlobalIds.push_back(2 + 2 * k);
  return inst;
}

Instance makeInstance(Lib lib, Comm& c, bool chaosReplicated) {
  switch (lib) {
    case Lib::kParti: return makeParti(c);
    case Lib::kHpf: return makeHpf(c);
    case Lib::kChaos: return makeChaos(c, chaosReplicated);
    case Lib::kTulip: return makeTulip(c);
  }
  MC_CHECK(false);
  return makeParti(c);
}

struct PairCase {
  Lib src;
  Lib dst;
  Method method;
  int nprocs;
};

class CopyPairP : public ::testing::TestWithParam<PairCase> {};

TEST_P(CopyPairP, MatchesLinearizationOracle) {
  const PairCase tc = GetParam();
  World::runSPMD(tc.nprocs, [&](Comm& c) {
    // Duplication needs locally enumerable descriptors -> replicated table.
    const bool chaosReplicated = tc.method == Method::kDuplication;
    Instance src = makeInstance(tc.src, c, chaosReplicated);
    Instance dst = makeInstance(tc.dst, c, chaosReplicated);

    const McSchedule sched =
        computeSchedule(c, src.obj, src.set, dst.obj, dst.set, tc.method);
    dataMove<double>(c, sched, src.raw(), dst.raw());

    const auto got = dst.gather();
    // Oracle: dst element at set position k holds src element at position k.
    std::map<Index, double> expect;
    for (Index k = 0; k < kSetElems; ++k) {
      expect[dst.setGlobalIds[static_cast<size_t>(k)]] =
          valueOf(src.setGlobalIds[static_cast<size_t>(k)]);
    }
    for (size_t g = 0; g < got.size(); ++g) {
      const auto it = expect.find(static_cast<Index>(g));
      const double want =
          it != expect.end() ? it->second : valueOf(static_cast<Index>(g));
      EXPECT_DOUBLE_EQ(got[g], want)
          << libName(tc.src) << "->" << libName(tc.dst) << " global " << g;
    }
  });
}

std::vector<PairCase> allPairs() {
  std::vector<PairCase> cases;
  for (Lib s : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
    for (Lib d : {Lib::kParti, Lib::kHpf, Lib::kChaos, Lib::kTulip}) {
      for (Method m : {Method::kCooperation, Method::kDuplication}) {
        for (int np : {1, 3, 4}) {
          cases.push_back(PairCase{s, d, m, np});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CopyPairP, ::testing::ValuesIn(allPairs()),
    [](const ::testing::TestParamInfo<PairCase>& info) {
      const PairCase& tc = info.param;
      std::string name = std::string(libName(tc.src)) + "_to_" +
                         libName(tc.dst) + "_" +
                         (tc.method == Method::kCooperation ? "coop" : "dup") +
                         "_np" + std::to_string(tc.nprocs);
      for (char& ch : name) {
        if (ch == '+') ch = 'x';
      }
      return name;
    });

TEST(CopyProperties, CooperationAndDuplicationAgree) {
  World::runSPMD(4, [](Comm& c) {
    Instance src = makeInstance(Lib::kParti, c, true);
    Instance dst = makeInstance(Lib::kChaos, c, true);
    const McSchedule coop = computeSchedule(c, src.obj, src.set, dst.obj,
                                            dst.set, Method::kCooperation);
    const McSchedule dup = computeSchedule(c, src.obj, src.set, dst.obj,
                                           dst.set, Method::kDuplication);
    // Identical plans: same peers, same offsets in the same order, same
    // local pairs.
    ASSERT_EQ(coop.plan.sends.size(), dup.plan.sends.size());
    for (size_t i = 0; i < coop.plan.sends.size(); ++i) {
      EXPECT_EQ(coop.plan.sends[i].peer, dup.plan.sends[i].peer);
      EXPECT_EQ(coop.plan.sends[i].expandedOffsets(),
                dup.plan.sends[i].expandedOffsets());
    }
    ASSERT_EQ(coop.plan.recvs.size(), dup.plan.recvs.size());
    for (size_t i = 0; i < coop.plan.recvs.size(); ++i) {
      EXPECT_EQ(coop.plan.recvs[i].peer, dup.plan.recvs[i].peer);
      EXPECT_EQ(coop.plan.recvs[i].expandedOffsets(),
                dup.plan.recvs[i].expandedOffsets());
    }
    EXPECT_EQ(coop.plan.expandedLocalPairs(), dup.plan.expandedLocalPairs());
  });
}

TEST(CopyProperties, AtMostOneMessagePerPair) {
  // The paper: hand-crafted messaging would use exactly the same number of
  // messages; Meta-Chaos aggregates to at most one per processor pair.
  World::runSPMD(4, [](Comm& c) {
    Instance src = makeInstance(Lib::kHpf, c, false);
    Instance dst = makeInstance(Lib::kChaos, c, false);
    const McSchedule sched = computeSchedule(c, src.obj, src.set, dst.obj,
                                             dst.set, Method::kCooperation);
    c.resetStats();
    dataMove<double>(c, sched, src.raw(), dst.raw());
    EXPECT_LE(c.stats().messagesSent, 3u);  // at most P-1 peers
    // Message count equals the number of distinct send peers.
    EXPECT_EQ(c.stats().messagesSent, sched.plan.sends.size());
    EXPECT_EQ(c.stats().messagesReceived, sched.plan.recvs.size());
  });
}

TEST(CopyProperties, ScheduleReusableAcrossMoves) {
  World::runSPMD(3, [](Comm& c) {
    Instance src = makeInstance(Lib::kTulip, c, false);
    Instance dst = makeInstance(Lib::kParti, c, false);
    const McSchedule sched = computeSchedule(c, src.obj, src.set, dst.obj,
                                             dst.set, Method::kCooperation);
    for (int iter = 0; iter < 3; ++iter) {
      // Change source values each time; the same schedule must move them.
      auto s = src.raw();
      for (auto& v : s) v += 1.0;
      dataMove<double>(c, sched, src.raw(), dst.raw());
      const auto got = dst.gather();
      const auto srcImg = src.gather();
      for (Index k = 0; k < kSetElems; ++k) {
        EXPECT_DOUBLE_EQ(
            got[static_cast<size_t>(dst.setGlobalIds[static_cast<size_t>(k)])],
            srcImg[static_cast<size_t>(
                src.setGlobalIds[static_cast<size_t>(k)])]);
      }
    }
  });
}

TEST(CopyProperties, ReversedScheduleCopiesBack) {
  World::runSPMD(4, [](Comm& c) {
    Instance a = makeInstance(Lib::kParti, c, false);
    Instance b = makeInstance(Lib::kHpf, c, false);
    const McSchedule fwd = computeSchedule(c, a.obj, a.set, b.obj, b.set,
                                           Method::kCooperation);
    dataMove<double>(c, fwd, a.raw(), b.raw());
    // Deface the copied section of a, then restore it with the reverse.
    for (auto& v : a.raw()) v = -7.0;
    const McSchedule rev = reverseSchedule(fwd);
    dataMove<double>(c, rev, b.raw(), a.raw());
    const auto got = a.gather();
    for (Index k = 0; k < kSetElems; ++k) {
      const Index g = a.setGlobalIds[static_cast<size_t>(k)];
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(g)], valueOf(g));
    }
  });
}

TEST(CopyProperties, SizeMismatchRejected) {
  World::runSPMD(2, [](Comm& c) {
    Instance src = makeInstance(Lib::kParti, c, false);
    Instance dst = makeInstance(Lib::kTulip, c, false);
    SetOfRegions small;
    small.add(Region::range(0, 9));
    EXPECT_THROW(
        computeSchedule(c, src.obj, src.set, dst.obj, small,
                        Method::kCooperation),
        Error);
  });
}

TEST(CopyProperties, DuplicationRequiresLocalEnumeration) {
  World::runSPMD(2, [](Comm& c) {
    Instance src = makeInstance(Lib::kChaos, c, /*replicated=*/false);
    Instance dst = makeInstance(Lib::kParti, c, false);
    EXPECT_THROW(
        computeSchedule(c, src.obj, src.set, dst.obj, dst.set,
                        Method::kDuplication),
        Error);
  });
}

TEST(CopyProperties, OverlappingSetsWithinOneArray) {
  // Source and destination can be two sections of the *same* array: the
  // paper's Figure 7 copies SA of A into SB of B, but nothing requires
  // distinct arrays.  (Disjoint sections; MC does direct local copies.)
  World::runSPMD(2, [](Comm& c) {
    auto arr = std::make_shared<parti::BlockDistArray<double>>(
        c, Shape::of({8, 8}), 0);
    arr->fillByPoint([](const Point& p) { return valueOf(p[0] * 8 + p[1]); });
    const DistObject obj = PartiAdapter::describe(*arr);
    SetOfRegions top, bottom;
    top.add(Region::section(RegularSection::box({0, 0}, {3, 7})));
    bottom.add(Region::section(RegularSection::box({4, 0}, {7, 7})));
    const McSchedule sched =
        computeSchedule(c, obj, top, obj, bottom, Method::kCooperation);
    dataMove<double>(c, sched, arr->raw(), arr->raw());
    const auto got = arr->gatherGlobal();
    for (Index i = 0; i < 4; ++i) {
      for (Index j = 0; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(got[static_cast<size_t>((i + 4) * 8 + j)],
                         valueOf(i * 8 + j));
      }
    }
  });
}

}  // namespace
}  // namespace mc::core
