// Inter-program Meta-Chaos: two separately running SPMD programs exchange
// distributed data (paper Figure 3 and Sections 5.2 / 5.4).
#include <gtest/gtest.h>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "hpfrt/matvec.h"
#include "transport/world.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

double cell(Index i, Index j) { return 100.0 * static_cast<double>(i) + static_cast<double>(j); }

/// Program A (Parti, 2-D mesh) sends a section to program B (Chaos,
/// irregular array) and receives it back, exercising both directions of a
/// symmetric schedule pair across programs.
void runPartiChaosExchange(int npA, int npB, Method method) {
  constexpr Index kRows = 8, kCols = 8;
  const Index n = kRows * kCols;

  World::run({
      ProgramSpec{
          "preg", npA,
          [&](Comm& c) {
            parti::BlockDistArray<double> a(c, Shape::of({kRows, kCols}), 1);
            a.fillByPoint([](const Point& p) { return cell(p[0], p[1]); });
            SetOfRegions set;
            set.add(Region::section(RegularSection::box({0, 0}, {kRows - 1, kCols - 1})));
            const McSchedule send =
                computeScheduleSend(c, PartiAdapter::describe(a), set,
                                    /*remoteProgram=*/1, method);
            dataMoveSend<double>(c, send, a.raw());
            // Receive it back (roles flip; build the paired recv schedule).
            const McSchedule recv =
                computeScheduleRecv(c, PartiAdapter::describe(a), set,
                                    /*remoteProgram=*/1, method);
            a.fill(-1.0);
            dataMoveRecv<double>(c, recv, a.raw());
            const auto img = a.gatherGlobal();
            for (Index i = 0; i < kRows; ++i) {
              for (Index j = 0; j < kCols; ++j) {
                EXPECT_DOUBLE_EQ(img[static_cast<size_t>(i * kCols + j)],
                                 cell(i, j));
              }
            }
          }},
      ProgramSpec{
          "pirreg", npB,
          [&](Comm& c) {
            // Irregular array over the same element count.  Duplication
            // must ship the table, so use a replicated one for that method
            // (the practical choice the paper describes).
            const auto storage =
                method == Method::kDuplication
                    ? chaos::TranslationTable::Storage::kReplicated
                    : chaos::TranslationTable::Storage::kDistributed;
            const auto mine = chaos::randomPartition(n, c.size(), c.rank(), 3);
            auto table = std::make_shared<const chaos::TranslationTable>(
                chaos::TranslationTable::build(c, mine, n, storage));
            chaos::IrregArray<double> x(c, table, mine);
            SetOfRegions set;
            std::vector<Index> ids(static_cast<size_t>(n));
            for (Index k = 0; k < n; ++k) ids[static_cast<size_t>(k)] = k;
            set.add(Region::indices(ids));
            const McSchedule recv = computeScheduleRecv(
                c, ChaosAdapter::describe(x), set, /*remoteProgram=*/0, method);
            dataMoveRecv<double>(c, recv, x.raw());
            // Verify: irregular element k holds regular element (k/8, k%8).
            const auto img = x.gatherGlobal();
            for (Index k = 0; k < n; ++k) {
              EXPECT_DOUBLE_EQ(img[static_cast<size_t>(k)],
                               cell(k / kCols, k % kCols));
            }
            // Send it back.
            const McSchedule send = computeScheduleSend(
                c, ChaosAdapter::describe(x), set, /*remoteProgram=*/0, method);
            dataMoveSend<double>(c, send, x.raw());
          }},
  });
}

TEST(InterProgram, PartiToChaosCooperation1x1) {
  runPartiChaosExchange(1, 1, Method::kCooperation);
}
TEST(InterProgram, PartiToChaosCooperation2x3) {
  runPartiChaosExchange(2, 3, Method::kCooperation);
}
TEST(InterProgram, PartiToChaosCooperation4x2) {
  runPartiChaosExchange(4, 2, Method::kCooperation);
}
TEST(InterProgram, PartiToChaosDuplication2x2) {
  runPartiChaosExchange(2, 2, Method::kDuplication);
}
TEST(InterProgram, PartiToChaosDuplication3x2) {
  runPartiChaosExchange(3, 2, Method::kDuplication);
}

TEST(InterProgram, ReversedInterScheduleSwapsDirection) {
  // Build one schedule pair, then use its reverses to move data backwards
  // without rebuilding (paper Section 4.3: swap DataMoveSend and
  // DataMoveRecv between the programs).
  constexpr Index n = 24;
  World::run({
      ProgramSpec{"a", 2,
                  [&](Comm& c) {
                    hpfrt::HpfArray<double> v(
                        c, hpfrt::matvecVectorDist(n, c.size()));
                    v.fillByPoint([](const Point& p) {
                      return static_cast<double>(p[0]) * 2.0;
                    });
                    SetOfRegions set;
                    set.add(Region::section(RegularSection::box({0}, {n - 1})));
                    const McSchedule send = computeScheduleSend(
                        c, HpfAdapter::describe(v), set, 1,
                        Method::kCooperation);
                    dataMoveSend<double>(c, send, v.raw());
                    // Reverse: now receive updated values back.
                    const McSchedule back = reverseSchedule(send);
                    dataMoveRecv<double>(c, back, v.raw());
                    const auto img = v.gatherGlobal();
                    for (Index k = 0; k < n; ++k) {
                      EXPECT_DOUBLE_EQ(img[static_cast<size_t>(k)],
                                       static_cast<double>(k) * 2.0 + 1.0);
                    }
                  }},
      ProgramSpec{"b", 3,
                  [&](Comm& c) {
                    hpfrt::HpfArray<double> w(
                        c, hpfrt::HpfDist(Shape::of({n}),
                                          {hpfrt::DimDist{
                                              hpfrt::DistKind::kCyclic,
                                              c.size(), 1}}));
                    SetOfRegions set;
                    set.add(Region::section(RegularSection::box({0}, {n - 1})));
                    const McSchedule recv = computeScheduleRecv(
                        c, HpfAdapter::describe(w), set, 0,
                        Method::kCooperation);
                    dataMoveRecv<double>(c, recv, w.raw());
                    for (auto& x : w.raw()) x += 1.0;  // server-side update
                    const McSchedule back = reverseSchedule(recv);
                    dataMoveSend<double>(c, back, w.raw());
                  }},
  });
}

TEST(InterProgram, ScheduleReuseAcrossIterations) {
  // The paper's client/server experiment reuses one schedule for many
  // vector exchanges; verify tags stay paired across iterations.
  constexpr Index n = 16;
  constexpr int kIters = 5;
  World::run({
      ProgramSpec{"client", 1,
                  [&](Comm& c) {
                    hpfrt::HpfArray<double> v(
                        c, hpfrt::matvecVectorDist(n, c.size()));
                    SetOfRegions set;
                    set.add(Region::section(RegularSection::box({0}, {n - 1})));
                    const McSchedule send = computeScheduleSend(
                        c, HpfAdapter::describe(v), set, 1,
                        Method::kCooperation);
                    const McSchedule recv = reverseSchedule(send);
                    for (int it = 0; it < kIters; ++it) {
                      v.fillByPoint([&](const Point& p) {
                        return static_cast<double>(p[0] + it);
                      });
                      dataMoveSend<double>(c, send, v.raw());
                      dataMoveRecv<double>(c, recv, v.raw());
                      const auto img = v.gatherGlobal();
                      for (Index k = 0; k < n; ++k) {
                        EXPECT_DOUBLE_EQ(img[static_cast<size_t>(k)],
                                         10.0 * static_cast<double>(k + it));
                      }
                    }
                  }},
      ProgramSpec{"server", 4,
                  [&](Comm& c) {
                    hpfrt::HpfArray<double> w(
                        c, hpfrt::matvecVectorDist(n, c.size()));
                    SetOfRegions set;
                    set.add(Region::section(RegularSection::box({0}, {n - 1})));
                    const McSchedule recv = computeScheduleRecv(
                        c, HpfAdapter::describe(w), set, 0,
                        Method::kCooperation);
                    const McSchedule send = reverseSchedule(recv);
                    for (int it = 0; it < kIters; ++it) {
                      dataMoveRecv<double>(c, recv, w.raw());
                      for (auto& x : w.raw()) x *= 10.0;
                      dataMoveSend<double>(c, send, w.raw());
                    }
                  }},
  });
}

TEST(InterProgram, MatvecClientServer) {
  // End-to-end miniature of Section 5.4: a sequential Fortran-style client
  // ships a matrix and vectors to an HPF matvec server via Meta-Chaos.
  constexpr Index n = 12;
  World::run({
      ProgramSpec{
          "client", 1,
          [&](Comm& c) {
            // Sequential client: everything is a 1-proc HPF array (the
            // degenerate distribution plays the role of local Fortran data).
            hpfrt::HpfArray<double> A(c, hpfrt::matvecMatrixDist(n, 1));
            hpfrt::HpfArray<double> x(c, hpfrt::matvecVectorDist(n, 1));
            hpfrt::HpfArray<double> y(c, hpfrt::matvecVectorDist(n, 1));
            A.fillByPoint([](const Point& p) {
              return p[0] == p[1] ? 3.0 : (p[1] == 0 ? 1.0 : 0.0);
            });
            x.fillByPoint([](const Point& p) { return static_cast<double>(p[0] + 1); });
            SetOfRegions mSet, vSet;
            mSet.add(Region::section(
                RegularSection::box({0, 0}, {n - 1, n - 1})));
            vSet.add(Region::section(RegularSection::box({0}, {n - 1})));
            const McSchedule mSend = computeScheduleSend(
                c, HpfAdapter::describe(A), mSet, 1, Method::kCooperation);
            const McSchedule vSend = computeScheduleSend(
                c, HpfAdapter::describe(x), vSet, 1, Method::kCooperation);
            const McSchedule vRecv = computeScheduleRecv(
                c, HpfAdapter::describe(y), vSet, 1, Method::kCooperation);
            dataMoveSend<double>(c, mSend, A.raw());
            dataMoveSend<double>(c, vSend, x.raw());
            dataMoveRecv<double>(c, vRecv, y.raw());
            // A is 3 on the diagonal and 1 in column 0 (off-diagonal), so
            // y_i = 3*x_i + [i>0]*x_0 with x_i = i+1.
            for (Index i = 0; i < n; ++i) {
              const double want =
                  3.0 * static_cast<double>(i + 1) + (i > 0 ? 1.0 : 0.0);
              EXPECT_DOUBLE_EQ(y.raw()[static_cast<size_t>(i)], want);
            }
          }},
      ProgramSpec{
          "server", 3,
          [&](Comm& c) {
            hpfrt::HpfArray<double> A(c, hpfrt::matvecMatrixDist(n, c.size()));
            hpfrt::HpfArray<double> x(c, hpfrt::matvecVectorDist(n, c.size()));
            hpfrt::HpfArray<double> y(c, hpfrt::matvecVectorDist(n, c.size()));
            SetOfRegions mSet, vSet;
            mSet.add(Region::section(
                RegularSection::box({0, 0}, {n - 1, n - 1})));
            vSet.add(Region::section(RegularSection::box({0}, {n - 1})));
            const McSchedule mRecv = computeScheduleRecv(
                c, HpfAdapter::describe(A), mSet, 0, Method::kCooperation);
            const McSchedule xRecv = computeScheduleRecv(
                c, HpfAdapter::describe(x), vSet, 0, Method::kCooperation);
            const McSchedule ySend = computeScheduleSend(
                c, HpfAdapter::describe(y), vSet, 0, Method::kCooperation);
            dataMoveRecv<double>(c, mRecv, A.raw());
            dataMoveRecv<double>(c, xRecv, x.raw());
            hpfrt::matvec(A, x, y);
            dataMoveSend<double>(c, ySend, y.raw());
          }},
  });
}

TEST(InterProgram, MismatchedSizesAbort) {
  EXPECT_THROW(
      World::run(
          {
              ProgramSpec{"a", 1,
                          [](Comm& c) {
                            hpfrt::HpfArray<double> v(
                                c, hpfrt::matvecVectorDist(8, 1));
                            SetOfRegions set;
                            set.add(Region::section(
                                RegularSection::box({0}, {7})));
                            computeScheduleSend(c, HpfAdapter::describe(v),
                                                set, 1, Method::kCooperation);
                          }},
              ProgramSpec{"b", 1,
                          [](Comm& c) {
                            hpfrt::HpfArray<double> v(
                                c, hpfrt::matvecVectorDist(9, 1));
                            SetOfRegions set;
                            set.add(Region::section(
                                RegularSection::box({0}, {8})));
                            computeScheduleRecv(c, HpfAdapter::describe(v),
                                                set, 0, Method::kCooperation);
                          }},
          },
          [] {
            transport::WorldOptions o;
            o.recvTimeoutSeconds = 5.0;
            return o;
          }()),
      Error);
}

}  // namespace
}  // namespace mc::core
