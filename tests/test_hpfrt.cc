// Tests for the HPF-like runtime: distributions (BLOCK / CYCLIC /
// CYCLIC(k)), arrays, redistribution, matrix-vector multiply.
#include <gtest/gtest.h>

#include <set>

#include "hpfrt/hpf_array.h"
#include "hpfrt/matvec.h"
#include "hpfrt/redistribute.h"
#include "transport/world.h"

namespace mc::hpfrt {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

// Every (kind, n, P) combination must give a disjoint, complete partition
// with consistent local indexing.
struct DistCase {
  DistKind kind;
  Index n;
  int procs;
  Index param;
};

class DimDistP : public ::testing::TestWithParam<DistCase> {};

TEST_P(DimDistP, OwnershipPartitionsAndIndexes) {
  const DistCase tc = GetParam();
  const HpfDist dist(Shape::of({tc.n}),
                     {DimDist{tc.kind, tc.procs, tc.param}});
  std::vector<Index> counts(static_cast<size_t>(tc.procs), 0);
  for (Index g = 0; g < tc.n; ++g) {
    const int owner = dist.ownerInDim(0, g);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, tc.procs);
    const Index li = dist.localIndexInDim(0, g);
    EXPECT_EQ(dist.globalFromLocal(0, owner, li), g);
    ++counts[static_cast<size_t>(owner)];
  }
  Index total = 0;
  for (int c = 0; c < tc.procs; ++c) {
    EXPECT_EQ(dist.localCountInDim(0, c), counts[static_cast<size_t>(c)])
        << "coord " << c;
    total += counts[static_cast<size_t>(c)];
  }
  EXPECT_EQ(total, tc.n);
  // Local indices are dense 0..count-1 per owner.
  for (int c = 0; c < tc.procs; ++c) {
    std::set<Index> lis;
    for (Index g = 0; g < tc.n; ++g) {
      if (dist.ownerInDim(0, g) == c) lis.insert(dist.localIndexInDim(0, g));
    }
    Index expect = 0;
    for (Index li : lis) EXPECT_EQ(li, expect++);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DimDistP,
    ::testing::Values(
        DistCase{DistKind::kBlock, 16, 4, 1},
        DistCase{DistKind::kBlock, 17, 4, 1},
        DistCase{DistKind::kBlock, 3, 4, 1},
        DistCase{DistKind::kCyclic, 16, 4, 1},
        DistCase{DistKind::kCyclic, 17, 5, 1},
        DistCase{DistKind::kCyclic, 2, 4, 1},
        DistCase{DistKind::kBlockCyclic, 16, 4, 2},
        DistCase{DistKind::kBlockCyclic, 17, 4, 3},
        DistCase{DistKind::kBlockCyclic, 23, 3, 5},
        DistCase{DistKind::kBlockCyclic, 7, 2, 16},  // blocks > extent
        DistCase{DistKind::kBlockCyclic, 12, 1, 4}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return "case" + std::to_string(info.index);
    });

TEST(HpfDist, TwoDimensionalOwnership) {
  // (BLOCK, CYCLIC) on a 2x3 grid.
  const HpfDist dist(Shape::of({8, 9}), {DimDist{DistKind::kBlock, 2, 1},
                                         DimDist{DistKind::kCyclic, 3, 1}});
  EXPECT_EQ(dist.nprocs(), 6);
  std::vector<Index> counts(6, 0);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 9; ++j) {
      ++counts[static_cast<size_t>(dist.ownerOf(Point::of({i, j})))];
    }
  }
  // 4 rows x 3 columns each.
  for (Index c : counts) EXPECT_EQ(c, 12);
}

TEST(HpfDist, ForEachOwnedConsistentWithOffsets) {
  const HpfDist dist(Shape::of({10, 10}),
                     {DimDist{DistKind::kBlockCyclic, 2, 3},
                      DimDist{DistKind::kCyclic, 2, 1}});
  for (int proc = 0; proc < 4; ++proc) {
    Index seen = 0;
    dist.forEachOwned(proc, [&](const Point& g, Index off) {
      EXPECT_EQ(dist.ownerOf(g), proc);
      EXPECT_EQ(dist.localOffset(proc, g), off);
      EXPECT_EQ(off, seen++);
    });
    EXPECT_EQ(seen, dist.localShape(proc).numElements());
  }
}

TEST(HpfDist, RejectsBadConfig) {
  EXPECT_THROW(HpfDist(Shape::of({4, 4}), {DimDist{DistKind::kBlock, 2, 1}}),
               Error);
  EXPECT_THROW(HpfDist(Shape::of({4}), {DimDist{DistKind::kBlockCyclic, 2, 0}}),
               Error);
}

TEST(HpfArray, FillAndGather) {
  World::runSPMD(4, [](Comm& c) {
    HpfArray<double> a(c, HpfDist(Shape::of({6, 6}),
                                  {DimDist{DistKind::kCyclic, 2, 1},
                                   DimDist{DistKind::kBlock, 2, 1}}));
    a.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 10 + p[1]); });
    const auto g = a.gatherGlobal();
    for (Index i = 0; i < 6; ++i) {
      for (Index j = 0; j < 6; ++j) {
        EXPECT_DOUBLE_EQ(g[static_cast<size_t>(i * 6 + j)],
                         static_cast<double>(i * 10 + j));
      }
    }
  });
}

TEST(HpfArray, WrongProcessorCountRejected) {
  World::runSPMD(2, [](Comm& c) {
    EXPECT_THROW(HpfArray<double>(c, HpfDist::blockEveryDim(Shape::of({4}), 3)),
                 Error);
  });
}

struct RedistCase {
  std::vector<DimDist> srcDims, dstDims;
  Shape srcShape, dstShape;
  RegularSection srcSec, dstSec;
  int nprocs;
};

class RedistP : public ::testing::TestWithParam<RedistCase> {};

TEST_P(RedistP, MatchesOracle) {
  const RedistCase tc = GetParam();
  World::runSPMD(tc.nprocs, [&](Comm& c) {
    HpfArray<double> a(c, HpfDist(tc.srcShape, tc.srcDims));
    HpfArray<double> b(c, HpfDist(tc.dstShape, tc.dstDims));
    a.fillByPoint([&](const Point& p) {
      return static_cast<double>(rowMajorOffset(tc.srcShape, p)) + 0.25;
    });
    b.fill(-1.0);
    const auto sched = buildRedistSchedule(a.dist(), tc.srcSec, b.dist(),
                                           tc.dstSec, c.rank());
    redistribute(sched, a, b);
    const auto got = b.gatherGlobal();
    // Oracle.
    std::vector<double> want(static_cast<size_t>(tc.dstShape.numElements()),
                             -1.0);
    tc.srcSec.forEach([&](const Point& sp, Index k) {
      const Point dp = tc.dstSec.pointAt(k);
      want[static_cast<size_t>(rowMajorOffset(tc.dstShape, dp))] =
          static_cast<double>(rowMajorOffset(tc.srcShape, sp)) + 0.25;
    });
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], want[i]) << "flat " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RedistP,
    ::testing::Values(
        // BLOCK -> CYCLIC full-array, 1-D
        RedistCase{{DimDist{DistKind::kBlock, 4, 1}},
                   {DimDist{DistKind::kCyclic, 4, 1}},
                   Shape::of({32}), Shape::of({32}),
                   RegularSection::box({0}, {31}),
                   RegularSection::box({0}, {31}), 4},
        // CYCLIC(3) -> BLOCK, partial strided section
        RedistCase{{DimDist{DistKind::kBlockCyclic, 3, 3}},
                   {DimDist{DistKind::kBlock, 3, 1}},
                   Shape::of({40}), Shape::of({25}),
                   RegularSection::of({1}, {39}, {2}),
                   RegularSection::box({2}, {21}), 3},
        // 2-D (BLOCK,BLOCK) -> (CYCLIC,BLOCK), sub-box (the paper's Fig. 9
        // HPF example shape: A[1:50,10:60] = B[50:100,50:100])
        RedistCase{{DimDist{DistKind::kBlock, 2, 1}, DimDist{DistKind::kBlock, 2, 1}},
                   {DimDist{DistKind::kCyclic, 2, 1}, DimDist{DistKind::kBlock, 2, 1}},
                   Shape::of({20, 20}), Shape::of({12, 12}),
                   RegularSection::box({8, 8}, {17, 17}),
                   RegularSection::box({1, 2}, {10, 11}), 4},
        // linearization pairing across different ranks: 2-D section -> 1-D
        RedistCase{{DimDist{DistKind::kBlock, 2, 1}, DimDist{DistKind::kBlock, 2, 1}},
                   {DimDist{DistKind::kCyclic, 4, 1}},
                   Shape::of({6, 6}), Shape::of({36}),
                   RegularSection::box({0, 0}, {5, 5}),
                   RegularSection::box({0}, {35}), 4}),
    [](const ::testing::TestParamInfo<RedistCase>& info) {
      return "case" + std::to_string(info.index);
    });

TEST(Redistribute, SectionAssignOneCall) {
  // The Figure-9-style assignment A[0:4, 2:6] = B[5:9, 0:4] in one call.
  World::runSPMD(4, [](Comm& c) {
    HpfArray<double> B(c, HpfDist::blockEveryDim(Shape::of({10, 10}), c.size()));
    HpfArray<double> A(c, HpfDist(Shape::of({8, 8}),
                                  {DimDist{DistKind::kCyclic, c.size(), 1},
                                   DimDist{DistKind::kBlock, 1, 1}}));
    B.fillByPoint([](const Point& p) { return static_cast<double>(p[0] * 10 + p[1]); });
    A.fill(-1.0);
    sectionAssign(B, RegularSection::box({5, 0}, {9, 4}),
                  A, RegularSection::box({0, 2}, {4, 6}));
    const auto img = A.gatherGlobal();
    for (Index i = 0; i < 5; ++i) {
      for (Index j = 0; j < 5; ++j) {
        EXPECT_DOUBLE_EQ(img[static_cast<size_t>(i * 8 + j + 2)],
                         static_cast<double>((i + 5) * 10 + j));
      }
    }
  });
}

TEST(Redistribute, SectionAssignWithinOneArray) {
  World::runSPMD(2, [](Comm& c) {
    HpfArray<int> A(c, HpfDist::blockEveryDim(Shape::of({12}), c.size()));
    A.fillByPoint([](const Point& p) { return static_cast<int>(p[0]); });
    // Shift the first half onto the second half (disjoint sections).
    sectionAssign(A, RegularSection::box({0}, {5}),
                  A, RegularSection::box({6}, {11}));
    const auto img = A.gatherGlobal();
    for (Index k = 0; k < 6; ++k) {
      EXPECT_EQ(img[static_cast<size_t>(k + 6)], static_cast<int>(k));
    }
  });
}

TEST(Redistribute, RejectsMismatchedCounts) {
  World::runSPMD(1, [](Comm& c) {
    HpfArray<double> a(c, HpfDist::blockEveryDim(Shape::of({8}), 1));
    HpfArray<double> b(c, HpfDist::blockEveryDim(Shape::of({8}), 1));
    EXPECT_THROW(buildRedistSchedule(a.dist(), RegularSection::box({0}, {3}),
                                     b.dist(), RegularSection::box({0}, {4}),
                                     0),
                 Error);
  });
}

TEST(Matvec, MatchesSerialProduct) {
  const Index n = 24;
  for (int np : {1, 2, 4, 6}) {
    World::runSPMD(np, [&](Comm& c) {
      HpfArray<double> A(c, matvecMatrixDist(n, c.size()));
      HpfArray<double> x(c, matvecVectorDist(n, c.size()));
      HpfArray<double> y(c, matvecVectorDist(n, c.size()));
      A.fillByPoint([](const Point& p) {
        return static_cast<double>((p[0] + 1) * (p[1] + 2) % 7);
      });
      x.fillByPoint([](const Point& p) { return static_cast<double>(p[0] % 5) - 2.0; });
      matvec(A, x, y);
      const auto got = y.gatherGlobal();
      for (Index i = 0; i < n; ++i) {
        double want = 0;
        for (Index j = 0; j < n; ++j) {
          want += static_cast<double>((i + 1) * (j + 2) % 7) *
                  (static_cast<double>(j % 5) - 2.0);
        }
        EXPECT_NEAR(got[static_cast<size_t>(i)], want, 1e-9) << "np=" << np;
      }
    });
  }
}

TEST(Matvec, RepeatedMultipliesAreStable) {
  // The server loop of Section 5.4 multiplies many vectors by one matrix.
  World::runSPMD(3, [](Comm& c) {
    const Index n = 12;
    HpfArray<double> A(c, matvecMatrixDist(n, c.size()));
    HpfArray<double> x(c, matvecVectorDist(n, c.size()));
    HpfArray<double> y(c, matvecVectorDist(n, c.size()));
    A.fillByPoint([](const Point& p) { return p[0] == p[1] ? 2.0 : 0.0; });
    x.fillByPoint([](const Point& p) { return static_cast<double>(p[0]); });
    for (int iter = 0; iter < 5; ++iter) {
      matvec(A, x, y);
      const auto got = y.gatherGlobal();
      for (Index i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)], 2.0 * static_cast<double>(i));
      }
    }
  });
}

TEST(Matvec, RejectsWrongDistribution) {
  World::runSPMD(2, [](Comm& c) {
    const Index n = 8;
    // (BLOCK, BLOCK) over a 1x2 grid distributes *columns*; matvec refuses.
    HpfArray<double> A(c, HpfDist(Shape::of({n, n}),
                                  {DimDist{DistKind::kBlock, 1, 1},
                                   DimDist{DistKind::kBlock, 2, 1}}));
    HpfArray<double> x(c, matvecVectorDist(n, c.size()));
    HpfArray<double> y(c, matvecVectorDist(n, c.size()));
    EXPECT_THROW(matvec(A, x, y), Error);
  });
}

}  // namespace
}  // namespace mc::hpfrt
