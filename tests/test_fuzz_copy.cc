// Randomized property suite: for dozens of seeded random configurations —
// library pair, processor count, distribution parameters, region structure,
// schedule method — a Meta-Chaos copy must equal the serial oracle implied
// by the two linearizations.  This is the broad-spectrum net behind the
// hand-picked cases in test_core_copy.
#include <gtest/gtest.h>

#include <map>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"
#include "transport/world.h"
#include "util/rng.h"

namespace mc::core {
namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::World;

double valueOf(Index g) { return 5000.0 + static_cast<double>(g); }

struct Instance {
  DistObject obj;
  SetOfRegions set;
  std::vector<Index> setGlobalIds;  // linearization position -> global id
  std::function<std::span<double>()> raw;
  std::function<std::vector<double>()> gather;
  std::shared_ptr<void> holder;
  std::function<void()> refill;  // restore the initial valueOf() contents
};

/// A random source-side instance: random distribution, random (possibly
/// multi-)region set.  Returns the set's element count via setGlobalIds.
Instance makeRandomSource(int lib, Comm& c, Rng& rng) {
  switch (lib) {
    case 0: {  // parti: 2-D array, random shape/ghost, 1-2 disjoint sections
      const Index rows = 6 + static_cast<Index>(rng.below(10));
      const Index cols = 6 + static_cast<Index>(rng.below(10));
      const int ghost = static_cast<int>(rng.below(2));
      auto arr = std::make_shared<parti::BlockDistArray<double>>(
          c, Shape::of({rows, cols}), ghost);
      arr->fillByPoint([&](const Point& p) { return valueOf(p[0] * cols + p[1]); });
      Instance inst{PartiAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      // Split rows into two disjoint bands, strided sections within each.
      const Index mid = rows / 2;
      const auto addBand = [&](Index rLo, Index rHi) {
        if (rHi < rLo) return;
        const Index sr = 1 + static_cast<Index>(rng.below(2));
        const Index sc = 1 + static_cast<Index>(rng.below(3));
        const RegularSection s = RegularSection::of(
            {rLo, static_cast<Index>(rng.below(2))}, {rHi, cols - 1}, {sr, sc});
        if (s.empty()) return;
        inst.set.add(Region::section(s));
        s.forEach([&](const Point& p, Index) {
          inst.setGlobalIds.push_back(p[0] * cols + p[1]);
        });
      };
      addBand(0, mid - 1);
      if (rng.below(2) == 0) addBand(mid, rows - 1);
      if (inst.set.empty()) addBand(0, rows - 1);
      return inst;
    }
    case 1: {  // hpf: random per-dim distribution kinds
      const Index rows = 6 + static_cast<Index>(rng.below(8));
      const Index cols = 6 + static_cast<Index>(rng.below(12));
      auto kindOf = [&](int procs) {
        const auto k = rng.below(3);
        if (k == 0) return hpfrt::DimDist{hpfrt::DistKind::kBlock, procs, 1};
        if (k == 1) return hpfrt::DimDist{hpfrt::DistKind::kCyclic, procs, 1};
        return hpfrt::DimDist{hpfrt::DistKind::kBlockCyclic, procs,
                              1 + static_cast<Index>(rng.below(3))};
      };
      // Split processors over the two dims when possible.
      int p0 = c.size(), p1 = 1;
      if (c.size() % 2 == 0 && rng.below(2) == 0) {
        p0 = c.size() / 2;
        p1 = 2;
      }
      auto arr = std::make_shared<hpfrt::HpfArray<double>>(
          c, hpfrt::HpfDist(Shape::of({rows, cols}),
                            {kindOf(p0), kindOf(p1)}));
      arr->fillByPoint([&](const Point& p) { return valueOf(p[0] * cols + p[1]); });
      Instance inst{HpfAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      const RegularSection s = RegularSection::of(
          {static_cast<Index>(rng.below(2)), static_cast<Index>(rng.below(3))},
          {rows - 1, cols - 1},
          {1 + static_cast<Index>(rng.below(2)), 1 + static_cast<Index>(rng.below(3))});
      inst.set.add(Region::section(s));
      s.forEach([&](const Point& p, Index) {
        inst.setGlobalIds.push_back(p[0] * cols + p[1]);
      });
      return inst;
    }
    case 2: {  // chaos: random partitioner, random index set
      const Index n = 30 + static_cast<Index>(rng.below(60));
      const auto part = rng.below(3);
      const std::uint64_t pseed = rng.next();
      std::vector<Index> mine;
      if (part == 0) {
        mine = chaos::blockPartition(n, c.size(), c.rank());
      } else if (part == 1) {
        mine = chaos::cyclicPartition(n, c.size(), c.rank());
      } else {
        mine = chaos::randomPartition(n, c.size(), c.rank(), pseed);
      }
      auto table = std::make_shared<const chaos::TranslationTable>(
          chaos::TranslationTable::build(
              c, mine, n, chaos::TranslationTable::Storage::kReplicated));
      auto arr = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
      arr->fillByGlobal(valueOf);
      Instance inst{ChaosAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      auto ids = rng.permutation(static_cast<std::uint64_t>(n));
      const size_t count = 1 + rng.below(static_cast<std::uint64_t>(n));
      std::vector<Index> pick;
      for (size_t k = 0; k < count; ++k) pick.push_back(static_cast<Index>(ids[k]));
      inst.set.add(Region::indices(pick));
      inst.setGlobalIds = pick;
      return inst;
    }
    default: {  // tulip
      const Index n = 40 + static_cast<Index>(rng.below(60));
      const auto placement =
          rng.below(2) == 0 ? tulip::Placement::kBlock : tulip::Placement::kCyclic;
      auto coll = std::make_shared<tulip::Collection<double>>(c, n, placement);
      coll->forEachOwned([](Index g, double& v) { v = valueOf(g); });
      Instance inst{TulipAdapter::describe(*coll), SetOfRegions{}, {},
                    [coll] { return coll->raw(); },
                    [coll] { return coll->gatherGlobal(); }, coll};
      const Index stride = 1 + static_cast<Index>(rng.below(3));
      const Index lo = static_cast<Index>(rng.below(4));
      const Index hi = n - 1 - static_cast<Index>(rng.below(4));
      inst.set.add(Region::range(lo, hi, stride));
      for (Index g = lo; g <= hi; g += stride) inst.setGlobalIds.push_back(g);
      return inst;
    }
  }
}

/// A destination instance of library `lib` whose set has exactly `n`
/// elements (1-D shapes sized to fit).
Instance makeConformantDest(int lib, Comm& c, Rng& rng, Index n) {
  const Index stride = 1 + static_cast<Index>(rng.below(2));
  const Index lo = static_cast<Index>(rng.below(3));
  const Index size = lo + (n - 1) * stride + 1 + static_cast<Index>(rng.below(4));
  switch (lib) {
    case 0: {
      auto arr = std::make_shared<parti::BlockDistArray<double>>(
          c, Shape::of({size}), static_cast<int>(rng.below(2)));
      arr->fillByPoint([](const Point& p) { return valueOf(p[0]); });
      Instance inst{PartiAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      inst.refill = [arr] {
        arr->fillByPoint([](const Point& p) { return valueOf(p[0]); });
      };
      inst.set.add(Region::section(
          RegularSection::of({lo}, {lo + (n - 1) * stride}, {stride})));
      for (Index k = 0; k < n; ++k) inst.setGlobalIds.push_back(lo + k * stride);
      return inst;
    }
    case 1: {
      auto kind = rng.below(2) == 0 ? hpfrt::DistKind::kCyclic
                                    : hpfrt::DistKind::kBlockCyclic;
      auto arr = std::make_shared<hpfrt::HpfArray<double>>(
          c, hpfrt::HpfDist(Shape::of({size}),
                            {hpfrt::DimDist{kind, c.size(),
                                            1 + static_cast<Index>(rng.below(3))}}));
      arr->fillByPoint([](const Point& p) { return valueOf(p[0]); });
      Instance inst{HpfAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      inst.refill = [arr] {
        arr->fillByPoint([](const Point& p) { return valueOf(p[0]); });
      };
      inst.set.add(Region::section(
          RegularSection::of({lo}, {lo + (n - 1) * stride}, {stride})));
      for (Index k = 0; k < n; ++k) inst.setGlobalIds.push_back(lo + k * stride);
      return inst;
    }
    case 2: {
      const std::uint64_t pseed = rng.next();
      const auto mine = chaos::randomPartition(size, c.size(), c.rank(), pseed);
      auto table = std::make_shared<const chaos::TranslationTable>(
          chaos::TranslationTable::build(
              c, mine, size, chaos::TranslationTable::Storage::kReplicated));
      auto arr = std::make_shared<chaos::IrregArray<double>>(c, table, mine);
      arr->fillByGlobal(valueOf);
      Instance inst{ChaosAdapter::describe(*arr), SetOfRegions{}, {},
                    [arr] { return arr->raw(); },
                    [arr] { return arr->gatherGlobal(); }, arr};
      inst.refill = [arr] { arr->fillByGlobal(valueOf); };
      auto ids = rng.permutation(static_cast<std::uint64_t>(size));
      std::vector<Index> pick;
      for (Index k = 0; k < n; ++k) pick.push_back(static_cast<Index>(ids[static_cast<size_t>(k)]));
      inst.set.add(Region::indices(pick));
      inst.setGlobalIds = pick;
      return inst;
    }
    default: {
      auto coll = std::make_shared<tulip::Collection<double>>(
          c, size, tulip::Placement::kCyclic);
      coll->forEachOwned([](Index g, double& v) { v = valueOf(g); });
      Instance inst{TulipAdapter::describe(*coll), SetOfRegions{}, {},
                    [coll] { return coll->raw(); },
                    [coll] { return coll->gatherGlobal(); }, coll};
      inst.refill = [coll] {
        coll->forEachOwned([](Index g, double& v) { v = valueOf(g); });
      };
      inst.set.add(Region::range(lo, lo + (n - 1) * stride, stride));
      for (Index k = 0; k < n; ++k) inst.setGlobalIds.push_back(lo + k * stride);
      return inst;
    }
  }
}

class FuzzCopyP : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCopyP, RandomConfigurationMatchesOracle) {
  const int seed = GetParam();
  Rng pick(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const int srcLib = static_cast<int>(pick.below(4));
  const int dstLib = static_cast<int>(pick.below(4));
  const int nprocs = 1 + static_cast<int>(pick.below(6));
  const Method method =
      pick.below(2) == 0 ? Method::kCooperation : Method::kDuplication;
  const std::uint64_t worldSeed = pick.next();

  World::runSPMD(nprocs, [&](Comm& c) {
    Rng rng(worldSeed);  // same stream on every rank: SPMD-consistent picks
    Instance src = makeRandomSource(srcLib, c, rng);
    const Index n = static_cast<Index>(src.setGlobalIds.size());
    ASSERT_GT(n, 0);
    Instance dst = makeConformantDest(dstLib, c, rng, n);

    const McSchedule sched =
        computeSchedule(c, src.obj, src.set, dst.obj, dst.set, method);
    dataMove<double>(c, sched, src.raw(), dst.raw());

    std::map<Index, double> expect;
    for (Index k = 0; k < n; ++k) {
      expect[dst.setGlobalIds[static_cast<size_t>(k)]] =
          valueOf(src.setGlobalIds[static_cast<size_t>(k)]);
    }
    const auto checkOracle = [&](const std::vector<double>& got,
                                 const char* pass) {
      for (size_t g = 0; g < got.size(); ++g) {
        const auto it = expect.find(static_cast<Index>(g));
        const double want =
            it != expect.end() ? it->second : valueOf(static_cast<Index>(g));
        ASSERT_DOUBLE_EQ(got[g], want)
            << pass << " seed " << seed << " libs " << srcLib << "->" << dstLib
            << " np " << nprocs << " global " << g;
      }
    };
    checkOracle(dst.gather(), "fresh");

    // Cached re-execution: restore the destination to its initial contents,
    // fetch the same schedule through a cache twice (the second lookup must
    // hit and return the identical — run-compressed — schedule), re-execute
    // and hold it to the same oracle.
    ScheduleCache cache;
    const auto cached =
        cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set, method);
    const auto cachedAgain =
        cache.getOrBuild(c, src.obj, src.set, dst.obj, dst.set, method);
    ASSERT_EQ(cached.get(), cachedAgain.get());
    ASSERT_EQ(cache.stats().hits, 1u);
    ASSERT_TRUE(cached->plan.compressed());
    dst.refill();
    dataMove<double>(c, *cachedAgain, src.raw(), dst.raw());
    checkOracle(dst.gather(), "cached");
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCopyP, ::testing::Range(0, 48));

}  // namespace
}  // namespace mc::core
