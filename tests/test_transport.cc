// Unit tests for the virtual-processor transport: point-to-point messaging,
// tag/source matching, inter-program traffic, virtual clocks, error paths.
#include <gtest/gtest.h>

#include <atomic>

#include "transport/world.h"

namespace mc::transport {
namespace {

WorldOptions fastTimeout() {
  WorldOptions o;
  o.recvTimeoutSeconds = 5.0;
  return o;
}

TEST(Transport, PingPong) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 7, 42);
      EXPECT_EQ(c.recvValue<int>(1, 8), 43);
    } else {
      EXPECT_EQ(c.recvValue<int>(0, 7), 42);
      c.sendValue(0, 8, 43);
    }
  });
}

TEST(Transport, VectorPayload) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v{1.5, 2.5, 3.5};
      c.send(1, 1, v);
    } else {
      auto v = c.recv<double>(0, 1);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_DOUBLE_EQ(v[2], 3.5);
    }
  });
}

TEST(Transport, EmptyPayload) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<int>{});
    } else {
      EXPECT_TRUE(c.recv<int>(0, 1).empty());
    }
  });
}

TEST(Transport, TagMatching) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 10, 100);
      c.sendValue(1, 20, 200);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(c.recvValue<int>(0, 20), 200);
      EXPECT_EQ(c.recvValue<int>(0, 10), 100);
    }
  });
}

TEST(Transport, AnySource) {
  World::runSPMD(4, [](Comm& c) {
    if (c.rank() == 0) {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        int src = -1;
        auto v = c.recv<int>(kAnySource, 5, &src);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_EQ(v[0], src);
        sum += v[0];
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      c.sendValue(0, 5, c.rank());
    }
  });
}

TEST(Transport, AnyTag) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 33, 7);
    } else {
      Message m = c.recvMsg(0, kAnyTag);
      EXPECT_EQ(m.tag, 33);
    }
  });
}

TEST(Transport, SelfSend) {
  World::runSPMD(1, [](Comm& c) {
    c.sendValue(0, 3, 9);
    EXPECT_EQ(c.recvValue<int>(0, 3), 9);
  });
}

TEST(Transport, FifoPerSourceAndTag) {
  World::runSPMD(2, [](Comm& c) {
    constexpr int kN = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.sendValue(1, 1, i);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(c.recvValue<int>(0, 1), i);
    }
  });
}

TEST(Transport, TwoPrograms) {
  std::atomic<int> serverSaw{0};
  World::run({
      ProgramSpec{"client", 1,
                  [](Comm& c) {
                    EXPECT_EQ(c.program(), 0);
                    EXPECT_EQ(c.numPrograms(), 2);
                    c.sendValueTo(1, 0, 1, 123);
                    EXPECT_EQ(c.recvValueFrom<int>(1, 0, 2), 246);
                  }},
      ProgramSpec{"server", 2,
                  [&](Comm& c) {
                    if (c.rank() == 0) {
                      const int v = c.recvValueFrom<int>(0, 0, 1);
                      serverSaw = v;
                      c.sendValueTo(0, 0, 2, v * 2);
                    }
                  }},
  });
  EXPECT_EQ(serverSaw.load(), 123);
}

TEST(Transport, ProgramLocalRanks) {
  World::run({
      ProgramSpec{"a", 2,
                  [](Comm& c) {
                    EXPECT_LT(c.rank(), 2);
                    EXPECT_EQ(c.size(), 2);
                    EXPECT_EQ(c.worldSize(), 5);
                  }},
      ProgramSpec{"b", 3,
                  [](Comm& c) {
                    EXPECT_LT(c.rank(), 3);
                    EXPECT_EQ(c.size(), 3);
                    EXPECT_EQ(c.programInfo().name, "b");
                  }},
  });
}

TEST(Transport, CrossProgramTrafficDoesNotLeakIntoLocalRecv) {
  // Program-local recv from rank 0 must not capture program 0's message.
  World::run({
      ProgramSpec{"a", 1,
                  [](Comm& c) { c.sendValueTo(1, 1, 9, 111); }},
      ProgramSpec{"b", 2,
                  [](Comm& c) {
                    if (c.rank() == 0) {
                      c.sendValue(1, 9, 222);
                    } else {
                      // Both messages have tag 9; addressed receive picks
                      // the right peer each time.
                      EXPECT_EQ(c.recvValueFrom<int>(0, 0, 9), 111);
                      EXPECT_EQ(c.recvValue<int>(0, 9), 222);
                    }
                  }},
  });
}

TEST(Transport, ClockAdvancesOnCompute) {
  World::runSPMD(1, [](Comm& c) {
    const double before = c.now();
    c.advance(0.25);
    EXPECT_DOUBLE_EQ(c.now(), before + 0.25);
  });
}

TEST(Transport, ClockMeasuredCompute) {
  World::runSPMD(1, [](Comm& c) {
    const double before = c.now();
    volatile double sink = 0;
    c.compute([&] {
      for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
    });
    EXPECT_GT(c.now(), before);
  });
}

TEST(Transport, MessageCostAdvancesReceiverClock) {
  WorldOptions o = fastTimeout();
  o.net.interNode = NetParams{1e-3, 1e6, 0.0, 0.0};  // 1 ms latency, 1 MB/s
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> payload(1000);  // 1 ms transfer at 1 MB/s
      c.sendBytes(1, 1, payload);
    } else {
      c.recvMsg(0, 1);
      // latency + bytes/bandwidth = 2 ms
      EXPECT_GE(c.now(), 2e-3);
      EXPECT_LT(c.now(), 3e-3);
    }
  }, o);
}

TEST(Transport, NegativeAdvanceRejected) {
  EXPECT_THROW(
      World::runSPMD(1, [](Comm& c) { c.advance(-1.0); }),
      Error);
}

TEST(Transport, ExceptionInOneRankAbortsWorld) {
  EXPECT_THROW(
      World::runSPMD(2,
                     [](Comm& c) {
                       if (c.rank() == 0) throw Error("boom");
                       // rank 1 would deadlock without the abort path
                       c.recvMsg(0, 1);
                     },
                     fastTimeout()),
      Error);
}

TEST(Transport, DeadlockGuardTimesOut) {
  WorldOptions o;
  o.recvTimeoutSeconds = 0.2;
  EXPECT_THROW(
      World::runSPMD(1, [](Comm& c) { c.recvMsg(0, 1); }, o),
      Error);
}

TEST(Transport, StatsCountMessages) {
  World::runSPMD(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 1, 1.0);
      c.sendValue(1, 2, 2.0);
      EXPECT_EQ(c.stats().messagesSent, 2u);
      EXPECT_EQ(c.stats().bytesSent, 2 * sizeof(double));
    } else {
      c.recvValue<double>(0, 1);
      c.recvValue<double>(0, 2);
      EXPECT_EQ(c.stats().messagesReceived, 2u);
    }
  });
}

TEST(Transport, ManyProcs) {
  // A ring pass with 16 virtual processors (the paper's SP2 size).
  World::runSPMD(16, [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    c.sendValue(next, 1, c.rank());
    EXPECT_EQ(c.recvValue<int>(prev, 1), prev);
  });
}

TEST(Transport, GlobalRankOfBounds) {
  World::run({ProgramSpec{"a", 2, [](Comm& c) {
    EXPECT_EQ(c.globalRankOf(0, 0), 0);
    EXPECT_EQ(c.globalRankOf(0, 1), 1);
    EXPECT_THROW(c.globalRankOf(0, 2), Error);
  }}});
}

TEST(Transport, InvalidProgramSpecRejected) {
  EXPECT_THROW(World::run({ProgramSpec{"x", 0, [](Comm&) {}}}), Error);
  EXPECT_THROW(World::run({ProgramSpec{"x", 1, nullptr}}), Error);
  EXPECT_THROW(World::run({}), Error);
}

}  // namespace
}  // namespace mc::transport
