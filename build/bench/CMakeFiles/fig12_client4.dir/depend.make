# Empty dependencies file for fig12_client4.
# This may be replaced when dependencies are built.
