file(REMOVE_RECURSE
  "CMakeFiles/fig12_client4.dir/fig12_client4.cc.o"
  "CMakeFiles/fig12_client4.dir/fig12_client4.cc.o.d"
  "fig12_client4"
  "fig12_client4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_client4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
