file(REMOVE_RECURSE
  "CMakeFiles/fig13_twenty_vectors.dir/fig13_twenty_vectors.cc.o"
  "CMakeFiles/fig13_twenty_vectors.dir/fig13_twenty_vectors.cc.o.d"
  "fig13_twenty_vectors"
  "fig13_twenty_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_twenty_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
