# Empty dependencies file for fig13_twenty_vectors.
# This may be replaced when dependencies are built.
