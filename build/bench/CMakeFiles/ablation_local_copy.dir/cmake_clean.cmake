file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_copy.dir/ablation_local_copy.cc.o"
  "CMakeFiles/ablation_local_copy.dir/ablation_local_copy.cc.o.d"
  "ablation_local_copy"
  "ablation_local_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
