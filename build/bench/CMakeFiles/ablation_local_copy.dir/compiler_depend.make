# Empty compiler generated dependencies file for ablation_local_copy.
# This may be replaced when dependencies are built.
