file(REMOVE_RECURSE
  "CMakeFiles/table5_two_regular.dir/table5_two_regular.cc.o"
  "CMakeFiles/table5_two_regular.dir/table5_two_regular.cc.o.d"
  "table5_two_regular"
  "table5_two_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_two_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
