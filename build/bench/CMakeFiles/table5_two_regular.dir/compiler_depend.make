# Empty compiler generated dependencies file for table5_two_regular.
# This may be replaced when dependencies are built.
