file(REMOVE_RECURSE
  "CMakeFiles/table3_two_program_schedule.dir/table3_two_program_schedule.cc.o"
  "CMakeFiles/table3_two_program_schedule.dir/table3_two_program_schedule.cc.o.d"
  "table3_two_program_schedule"
  "table3_two_program_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_two_program_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
