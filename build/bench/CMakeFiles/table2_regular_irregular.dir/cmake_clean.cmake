file(REMOVE_RECURSE
  "CMakeFiles/table2_regular_irregular.dir/table2_regular_irregular.cc.o"
  "CMakeFiles/table2_regular_irregular.dir/table2_regular_irregular.cc.o.d"
  "table2_regular_irregular"
  "table2_regular_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_regular_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
