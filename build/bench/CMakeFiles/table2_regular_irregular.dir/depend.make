# Empty dependencies file for table2_regular_irregular.
# This may be replaced when dependencies are built.
