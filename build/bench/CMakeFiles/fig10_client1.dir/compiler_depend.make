# Empty compiler generated dependencies file for fig10_client1.
# This may be replaced when dependencies are built.
