file(REMOVE_RECURSE
  "CMakeFiles/fig10_client1.dir/fig10_client1.cc.o"
  "CMakeFiles/fig10_client1.dir/fig10_client1.cc.o.d"
  "fig10_client1"
  "fig10_client1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_client1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
