# Empty dependencies file for table1_sweeps.
# This may be replaced when dependencies are built.
