file(REMOVE_RECURSE
  "CMakeFiles/table1_sweeps.dir/table1_sweeps.cc.o"
  "CMakeFiles/table1_sweeps.dir/table1_sweeps.cc.o.d"
  "table1_sweeps"
  "table1_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
