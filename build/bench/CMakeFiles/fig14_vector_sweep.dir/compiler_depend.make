# Empty compiler generated dependencies file for fig14_vector_sweep.
# This may be replaced when dependencies are built.
