file(REMOVE_RECURSE
  "CMakeFiles/fig14_vector_sweep.dir/fig14_vector_sweep.cc.o"
  "CMakeFiles/fig14_vector_sweep.dir/fig14_vector_sweep.cc.o.d"
  "fig14_vector_sweep"
  "fig14_vector_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vector_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
