file(REMOVE_RECURSE
  "CMakeFiles/table4_two_program_copy.dir/table4_two_program_copy.cc.o"
  "CMakeFiles/table4_two_program_copy.dir/table4_two_program_copy.cc.o.d"
  "table4_two_program_copy"
  "table4_two_program_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_two_program_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
