# Empty dependencies file for table4_two_program_copy.
# This may be replaced when dependencies are built.
