# Empty dependencies file for fig11_client2.
# This may be replaced when dependencies are built.
