file(REMOVE_RECURSE
  "CMakeFiles/ablation_builders.dir/ablation_builders.cc.o"
  "CMakeFiles/ablation_builders.dir/ablation_builders.cc.o.d"
  "ablation_builders"
  "ablation_builders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
