file(REMOVE_RECURSE
  "CMakeFiles/micro_linearize.dir/micro_linearize.cc.o"
  "CMakeFiles/micro_linearize.dir/micro_linearize.cc.o.d"
  "micro_linearize"
  "micro_linearize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_linearize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
