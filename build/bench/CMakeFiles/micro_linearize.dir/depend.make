# Empty dependencies file for micro_linearize.
# This may be replaced when dependencies are built.
