file(REMOVE_RECURSE
  "CMakeFiles/ablation_ttable.dir/ablation_ttable.cc.o"
  "CMakeFiles/ablation_ttable.dir/ablation_ttable.cc.o.d"
  "ablation_ttable"
  "ablation_ttable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ttable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
