# Empty compiler generated dependencies file for ablation_ttable.
# This may be replaced when dependencies are built.
