
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adapters/chaos_adapter.cc" "src/core/CMakeFiles/mc_core.dir/adapters/chaos_adapter.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/adapters/chaos_adapter.cc.o.d"
  "/root/repo/src/core/adapters/hpf_adapter.cc" "src/core/CMakeFiles/mc_core.dir/adapters/hpf_adapter.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/adapters/hpf_adapter.cc.o.d"
  "/root/repo/src/core/adapters/parti_adapter.cc" "src/core/CMakeFiles/mc_core.dir/adapters/parti_adapter.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/adapters/parti_adapter.cc.o.d"
  "/root/repo/src/core/adapters/tulip_adapter.cc" "src/core/CMakeFiles/mc_core.dir/adapters/tulip_adapter.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/adapters/tulip_adapter.cc.o.d"
  "/root/repo/src/core/mc_api.cc" "src/core/CMakeFiles/mc_core.dir/mc_api.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/mc_api.cc.o.d"
  "/root/repo/src/core/region.cc" "src/core/CMakeFiles/mc_core.dir/region.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/region.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/mc_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/registry.cc.o.d"
  "/root/repo/src/core/schedule_builder.cc" "src/core/CMakeFiles/mc_core.dir/schedule_builder.cc.o" "gcc" "src/core/CMakeFiles/mc_core.dir/schedule_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chaos/CMakeFiles/mc_chaos.dir/DependInfo.cmake"
  "/root/repo/build/src/hpfrt/CMakeFiles/mc_hpfrt.dir/DependInfo.cmake"
  "/root/repo/build/src/parti/CMakeFiles/mc_parti.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/mc_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
