file(REMOVE_RECURSE
  "CMakeFiles/mc_core.dir/adapters/chaos_adapter.cc.o"
  "CMakeFiles/mc_core.dir/adapters/chaos_adapter.cc.o.d"
  "CMakeFiles/mc_core.dir/adapters/hpf_adapter.cc.o"
  "CMakeFiles/mc_core.dir/adapters/hpf_adapter.cc.o.d"
  "CMakeFiles/mc_core.dir/adapters/parti_adapter.cc.o"
  "CMakeFiles/mc_core.dir/adapters/parti_adapter.cc.o.d"
  "CMakeFiles/mc_core.dir/adapters/tulip_adapter.cc.o"
  "CMakeFiles/mc_core.dir/adapters/tulip_adapter.cc.o.d"
  "CMakeFiles/mc_core.dir/mc_api.cc.o"
  "CMakeFiles/mc_core.dir/mc_api.cc.o.d"
  "CMakeFiles/mc_core.dir/region.cc.o"
  "CMakeFiles/mc_core.dir/region.cc.o.d"
  "CMakeFiles/mc_core.dir/registry.cc.o"
  "CMakeFiles/mc_core.dir/registry.cc.o.d"
  "CMakeFiles/mc_core.dir/schedule_builder.cc.o"
  "CMakeFiles/mc_core.dir/schedule_builder.cc.o.d"
  "libmc_core.a"
  "libmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
