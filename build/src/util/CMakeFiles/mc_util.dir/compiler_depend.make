# Empty compiler generated dependencies file for mc_util.
# This may be replaced when dependencies are built.
