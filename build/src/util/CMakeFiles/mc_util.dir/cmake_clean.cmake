file(REMOVE_RECURSE
  "CMakeFiles/mc_util.dir/table.cc.o"
  "CMakeFiles/mc_util.dir/table.cc.o.d"
  "libmc_util.a"
  "libmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
