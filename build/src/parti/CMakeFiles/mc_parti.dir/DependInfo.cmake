
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parti/ghost.cc" "src/parti/CMakeFiles/mc_parti.dir/ghost.cc.o" "gcc" "src/parti/CMakeFiles/mc_parti.dir/ghost.cc.o.d"
  "/root/repo/src/parti/section_copy.cc" "src/parti/CMakeFiles/mc_parti.dir/section_copy.cc.o" "gcc" "src/parti/CMakeFiles/mc_parti.dir/section_copy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/mc_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
