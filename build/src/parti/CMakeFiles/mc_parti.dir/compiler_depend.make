# Empty compiler generated dependencies file for mc_parti.
# This may be replaced when dependencies are built.
