# Empty dependencies file for mc_parti.
# This may be replaced when dependencies are built.
