file(REMOVE_RECURSE
  "CMakeFiles/mc_parti.dir/ghost.cc.o"
  "CMakeFiles/mc_parti.dir/ghost.cc.o.d"
  "CMakeFiles/mc_parti.dir/section_copy.cc.o"
  "CMakeFiles/mc_parti.dir/section_copy.cc.o.d"
  "libmc_parti.a"
  "libmc_parti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_parti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
