file(REMOVE_RECURSE
  "libmc_parti.a"
)
