file(REMOVE_RECURSE
  "libmc_layout.a"
)
