# Empty dependencies file for mc_layout.
# This may be replaced when dependencies are built.
