file(REMOVE_RECURSE
  "CMakeFiles/mc_layout.dir/block_decomp.cc.o"
  "CMakeFiles/mc_layout.dir/block_decomp.cc.o.d"
  "CMakeFiles/mc_layout.dir/section.cc.o"
  "CMakeFiles/mc_layout.dir/section.cc.o.d"
  "libmc_layout.a"
  "libmc_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
