
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/comm.cc" "src/transport/CMakeFiles/mc_transport.dir/comm.cc.o" "gcc" "src/transport/CMakeFiles/mc_transport.dir/comm.cc.o.d"
  "/root/repo/src/transport/mailbox.cc" "src/transport/CMakeFiles/mc_transport.dir/mailbox.cc.o" "gcc" "src/transport/CMakeFiles/mc_transport.dir/mailbox.cc.o.d"
  "/root/repo/src/transport/netmodel.cc" "src/transport/CMakeFiles/mc_transport.dir/netmodel.cc.o" "gcc" "src/transport/CMakeFiles/mc_transport.dir/netmodel.cc.o.d"
  "/root/repo/src/transport/world.cc" "src/transport/CMakeFiles/mc_transport.dir/world.cc.o" "gcc" "src/transport/CMakeFiles/mc_transport.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
