file(REMOVE_RECURSE
  "libmc_transport.a"
)
