# Empty compiler generated dependencies file for mc_transport.
# This may be replaced when dependencies are built.
