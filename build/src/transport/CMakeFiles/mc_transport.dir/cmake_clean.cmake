file(REMOVE_RECURSE
  "CMakeFiles/mc_transport.dir/comm.cc.o"
  "CMakeFiles/mc_transport.dir/comm.cc.o.d"
  "CMakeFiles/mc_transport.dir/mailbox.cc.o"
  "CMakeFiles/mc_transport.dir/mailbox.cc.o.d"
  "CMakeFiles/mc_transport.dir/netmodel.cc.o"
  "CMakeFiles/mc_transport.dir/netmodel.cc.o.d"
  "CMakeFiles/mc_transport.dir/world.cc.o"
  "CMakeFiles/mc_transport.dir/world.cc.o.d"
  "libmc_transport.a"
  "libmc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
