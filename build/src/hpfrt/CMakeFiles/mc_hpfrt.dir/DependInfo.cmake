
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpfrt/dist.cc" "src/hpfrt/CMakeFiles/mc_hpfrt.dir/dist.cc.o" "gcc" "src/hpfrt/CMakeFiles/mc_hpfrt.dir/dist.cc.o.d"
  "/root/repo/src/hpfrt/redistribute.cc" "src/hpfrt/CMakeFiles/mc_hpfrt.dir/redistribute.cc.o" "gcc" "src/hpfrt/CMakeFiles/mc_hpfrt.dir/redistribute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/mc_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
