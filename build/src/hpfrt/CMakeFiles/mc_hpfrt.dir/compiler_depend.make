# Empty compiler generated dependencies file for mc_hpfrt.
# This may be replaced when dependencies are built.
