file(REMOVE_RECURSE
  "CMakeFiles/mc_hpfrt.dir/dist.cc.o"
  "CMakeFiles/mc_hpfrt.dir/dist.cc.o.d"
  "CMakeFiles/mc_hpfrt.dir/redistribute.cc.o"
  "CMakeFiles/mc_hpfrt.dir/redistribute.cc.o.d"
  "libmc_hpfrt.a"
  "libmc_hpfrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_hpfrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
