file(REMOVE_RECURSE
  "libmc_hpfrt.a"
)
