# Empty compiler generated dependencies file for mc_chaos.
# This may be replaced when dependencies are built.
