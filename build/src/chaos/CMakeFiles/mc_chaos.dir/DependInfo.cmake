
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaos/irreg_copy.cc" "src/chaos/CMakeFiles/mc_chaos.dir/irreg_copy.cc.o" "gcc" "src/chaos/CMakeFiles/mc_chaos.dir/irreg_copy.cc.o.d"
  "/root/repo/src/chaos/localize.cc" "src/chaos/CMakeFiles/mc_chaos.dir/localize.cc.o" "gcc" "src/chaos/CMakeFiles/mc_chaos.dir/localize.cc.o.d"
  "/root/repo/src/chaos/partition.cc" "src/chaos/CMakeFiles/mc_chaos.dir/partition.cc.o" "gcc" "src/chaos/CMakeFiles/mc_chaos.dir/partition.cc.o.d"
  "/root/repo/src/chaos/ttable.cc" "src/chaos/CMakeFiles/mc_chaos.dir/ttable.cc.o" "gcc" "src/chaos/CMakeFiles/mc_chaos.dir/ttable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/mc_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
