file(REMOVE_RECURSE
  "libmc_chaos.a"
)
