file(REMOVE_RECURSE
  "CMakeFiles/mc_chaos.dir/irreg_copy.cc.o"
  "CMakeFiles/mc_chaos.dir/irreg_copy.cc.o.d"
  "CMakeFiles/mc_chaos.dir/localize.cc.o"
  "CMakeFiles/mc_chaos.dir/localize.cc.o.d"
  "CMakeFiles/mc_chaos.dir/partition.cc.o"
  "CMakeFiles/mc_chaos.dir/partition.cc.o.d"
  "CMakeFiles/mc_chaos.dir/ttable.cc.o"
  "CMakeFiles/mc_chaos.dir/ttable.cc.o.d"
  "libmc_chaos.a"
  "libmc_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
