file(REMOVE_RECURSE
  "libmc_meshgen.a"
)
