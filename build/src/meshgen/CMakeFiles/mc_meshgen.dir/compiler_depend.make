# Empty compiler generated dependencies file for mc_meshgen.
# This may be replaced when dependencies are built.
