file(REMOVE_RECURSE
  "CMakeFiles/mc_meshgen.dir/meshgen.cc.o"
  "CMakeFiles/mc_meshgen.dir/meshgen.cc.o.d"
  "libmc_meshgen.a"
  "libmc_meshgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_meshgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
