# Empty compiler generated dependencies file for mc_workloads.
# This may be replaced when dependencies are built.
