file(REMOVE_RECURSE
  "CMakeFiles/mc_workloads.dir/coupled_mesh.cc.o"
  "CMakeFiles/mc_workloads.dir/coupled_mesh.cc.o.d"
  "CMakeFiles/mc_workloads.dir/matvec_session.cc.o"
  "CMakeFiles/mc_workloads.dir/matvec_session.cc.o.d"
  "libmc_workloads.a"
  "libmc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
