file(REMOVE_RECURSE
  "libmc_workloads.a"
)
