file(REMOVE_RECURSE
  "CMakeFiles/test_tulip.dir/test_tulip.cc.o"
  "CMakeFiles/test_tulip.dir/test_tulip.cc.o.d"
  "test_tulip"
  "test_tulip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tulip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
