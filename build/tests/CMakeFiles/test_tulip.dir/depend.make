# Empty dependencies file for test_tulip.
# This may be replaced when dependencies are built.
