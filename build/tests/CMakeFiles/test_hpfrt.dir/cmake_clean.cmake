file(REMOVE_RECURSE
  "CMakeFiles/test_hpfrt.dir/test_hpfrt.cc.o"
  "CMakeFiles/test_hpfrt.dir/test_hpfrt.cc.o.d"
  "test_hpfrt"
  "test_hpfrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpfrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
