# Empty dependencies file for test_hpfrt.
# This may be replaced when dependencies are built.
