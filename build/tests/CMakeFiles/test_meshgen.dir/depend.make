# Empty dependencies file for test_meshgen.
# This may be replaced when dependencies are built.
