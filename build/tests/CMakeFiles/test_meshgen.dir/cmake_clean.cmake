file(REMOVE_RECURSE
  "CMakeFiles/test_meshgen.dir/test_meshgen.cc.o"
  "CMakeFiles/test_meshgen.dir/test_meshgen.cc.o.d"
  "test_meshgen"
  "test_meshgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meshgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
