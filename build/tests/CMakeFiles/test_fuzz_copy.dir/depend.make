# Empty dependencies file for test_fuzz_copy.
# This may be replaced when dependencies are built.
