file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_copy.dir/test_fuzz_copy.cc.o"
  "CMakeFiles/test_fuzz_copy.dir/test_fuzz_copy.cc.o.d"
  "test_fuzz_copy"
  "test_fuzz_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
