file(REMOVE_RECURSE
  "CMakeFiles/test_adapter_contract.dir/test_adapter_contract.cc.o"
  "CMakeFiles/test_adapter_contract.dir/test_adapter_contract.cc.o.d"
  "test_adapter_contract"
  "test_adapter_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapter_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
