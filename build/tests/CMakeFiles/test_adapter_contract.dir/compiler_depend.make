# Empty compiler generated dependencies file for test_adapter_contract.
# This may be replaced when dependencies are built.
