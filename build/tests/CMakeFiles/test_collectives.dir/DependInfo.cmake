
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_collectives.cc" "tests/CMakeFiles/test_collectives.dir/test_collectives.cc.o" "gcc" "tests/CMakeFiles/test_collectives.dir/test_collectives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parti/CMakeFiles/mc_parti.dir/DependInfo.cmake"
  "/root/repo/build/src/chaos/CMakeFiles/mc_chaos.dir/DependInfo.cmake"
  "/root/repo/build/src/hpfrt/CMakeFiles/mc_hpfrt.dir/DependInfo.cmake"
  "/root/repo/build/src/meshgen/CMakeFiles/mc_meshgen.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/mc_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
