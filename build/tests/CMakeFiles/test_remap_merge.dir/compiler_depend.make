# Empty compiler generated dependencies file for test_remap_merge.
# This may be replaced when dependencies are built.
