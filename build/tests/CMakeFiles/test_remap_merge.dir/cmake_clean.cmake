file(REMOVE_RECURSE
  "CMakeFiles/test_remap_merge.dir/test_remap_merge.cc.o"
  "CMakeFiles/test_remap_merge.dir/test_remap_merge.cc.o.d"
  "test_remap_merge"
  "test_remap_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
