# Empty dependencies file for test_core_interprogram.
# This may be replaced when dependencies are built.
