file(REMOVE_RECURSE
  "CMakeFiles/test_core_interprogram.dir/test_core_interprogram.cc.o"
  "CMakeFiles/test_core_interprogram.dir/test_core_interprogram.cc.o.d"
  "test_core_interprogram"
  "test_core_interprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
