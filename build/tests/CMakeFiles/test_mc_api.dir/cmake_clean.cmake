file(REMOVE_RECURSE
  "CMakeFiles/test_mc_api.dir/test_mc_api.cc.o"
  "CMakeFiles/test_mc_api.dir/test_mc_api.cc.o.d"
  "test_mc_api"
  "test_mc_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
