# Empty compiler generated dependencies file for test_mc_api.
# This may be replaced when dependencies are built.
