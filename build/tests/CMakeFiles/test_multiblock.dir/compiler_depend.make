# Empty compiler generated dependencies file for test_multiblock.
# This may be replaced when dependencies are built.
