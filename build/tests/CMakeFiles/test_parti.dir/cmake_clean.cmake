file(REMOVE_RECURSE
  "CMakeFiles/test_parti.dir/test_parti.cc.o"
  "CMakeFiles/test_parti.dir/test_parti.cc.o.d"
  "test_parti"
  "test_parti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
