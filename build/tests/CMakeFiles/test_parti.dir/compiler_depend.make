# Empty compiler generated dependencies file for test_parti.
# This may be replaced when dependencies are built.
