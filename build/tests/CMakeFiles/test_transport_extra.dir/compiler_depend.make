# Empty compiler generated dependencies file for test_transport_extra.
# This may be replaced when dependencies are built.
