file(REMOVE_RECURSE
  "CMakeFiles/test_core_copy.dir/test_core_copy.cc.o"
  "CMakeFiles/test_core_copy.dir/test_core_copy.cc.o.d"
  "test_core_copy"
  "test_core_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
