# Empty dependencies file for test_core_copy.
# This may be replaced when dependencies are built.
