# Empty dependencies file for test_core_regions.
# This may be replaced when dependencies are built.
