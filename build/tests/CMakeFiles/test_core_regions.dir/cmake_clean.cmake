file(REMOVE_RECURSE
  "CMakeFiles/test_core_regions.dir/test_core_regions.cc.o"
  "CMakeFiles/test_core_regions.dir/test_core_regions.cc.o.d"
  "test_core_regions"
  "test_core_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
