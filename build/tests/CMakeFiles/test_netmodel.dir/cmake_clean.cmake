file(REMOVE_RECURSE
  "CMakeFiles/test_netmodel.dir/test_netmodel.cc.o"
  "CMakeFiles/test_netmodel.dir/test_netmodel.cc.o.d"
  "test_netmodel"
  "test_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
