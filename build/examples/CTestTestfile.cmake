# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cfd_coupling "/root/repo/build/examples/cfd_coupling" "3" "2" "24")
set_tests_properties(example_cfd_coupling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_program "/root/repo/build/examples/two_program_coupling" "2" "3" "2" "24")
set_tests_properties(example_two_program PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matvec_server "/root/repo/build/examples/matvec_server" "4" "2" "48")
set_tests_properties(example_matvec_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_tiles "/root/repo/build/examples/image_tiles" "4" "2")
set_tests_properties(example_image_tiles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiblock_cfd "/root/repo/build/examples/multiblock_cfd" "3" "2" "16")
set_tests_properties(example_multiblock_cfd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_remap "/root/repo/build/examples/adaptive_remap" "3" "24")
set_tests_properties(example_adaptive_remap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
