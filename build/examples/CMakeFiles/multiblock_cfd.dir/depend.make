# Empty dependencies file for multiblock_cfd.
# This may be replaced when dependencies are built.
