file(REMOVE_RECURSE
  "CMakeFiles/multiblock_cfd.dir/multiblock_cfd.cpp.o"
  "CMakeFiles/multiblock_cfd.dir/multiblock_cfd.cpp.o.d"
  "multiblock_cfd"
  "multiblock_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiblock_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
