# Empty dependencies file for image_tiles.
# This may be replaced when dependencies are built.
