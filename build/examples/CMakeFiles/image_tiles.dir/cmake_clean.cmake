file(REMOVE_RECURSE
  "CMakeFiles/image_tiles.dir/image_tiles.cpp.o"
  "CMakeFiles/image_tiles.dir/image_tiles.cpp.o.d"
  "image_tiles"
  "image_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
