file(REMOVE_RECURSE
  "CMakeFiles/two_program_coupling.dir/two_program_coupling.cpp.o"
  "CMakeFiles/two_program_coupling.dir/two_program_coupling.cpp.o.d"
  "two_program_coupling"
  "two_program_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_program_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
