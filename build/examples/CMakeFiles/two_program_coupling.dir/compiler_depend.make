# Empty compiler generated dependencies file for two_program_coupling.
# This may be replaced when dependencies are built.
