file(REMOVE_RECURSE
  "CMakeFiles/adaptive_remap.dir/adaptive_remap.cpp.o"
  "CMakeFiles/adaptive_remap.dir/adaptive_remap.cpp.o.d"
  "adaptive_remap"
  "adaptive_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
