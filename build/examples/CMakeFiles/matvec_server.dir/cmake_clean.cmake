file(REMOVE_RECURSE
  "CMakeFiles/matvec_server.dir/matvec_server.cpp.o"
  "CMakeFiles/matvec_server.dir/matvec_server.cpp.o.d"
  "matvec_server"
  "matvec_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matvec_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
