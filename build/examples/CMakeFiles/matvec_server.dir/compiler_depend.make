# Empty compiler generated dependencies file for matvec_server.
# This may be replaced when dependencies are built.
