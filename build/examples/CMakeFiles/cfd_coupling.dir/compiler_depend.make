# Empty compiler generated dependencies file for cfd_coupling.
# This may be replaced when dependencies are built.
