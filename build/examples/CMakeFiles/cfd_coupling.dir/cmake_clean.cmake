file(REMOVE_RECURSE
  "CMakeFiles/cfd_coupling.dir/cfd_coupling.cpp.o"
  "CMakeFiles/cfd_coupling.dir/cfd_coupling.cpp.o.d"
  "cfd_coupling"
  "cfd_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
