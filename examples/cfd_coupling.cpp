// The paper's Figure 1 end to end, in one program: a structured mesh
// (Multiblock Parti) coupled to an unstructured mesh (Chaos), exchanging
// boundary data through Meta-Chaos every time-step.
//
//   Loop 1: stencil sweep over the structured mesh
//   Loop 2: Meta-Chaos copy  structured -> unstructured
//   Loop 3: edge sweep over the unstructured mesh
//   Loop 4: Meta-Chaos copy  unstructured -> structured
//
// Run:  ./cfd_coupling [nprocs] [steps] [mesh_side]
#include <cstdio>
#include <cstdlib>

#include "transport/world.h"
#include "workloads/coupled_mesh.h"

using namespace mc;

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 5;
  const layout::Index side = argc > 3 ? std::atoll(argv[3]) : 64;
  std::printf(
      "CFD-style coupled meshes: %lldx%lld structured + %lld-point "
      "unstructured, %d procs, %d steps\n",
      static_cast<long long>(side), static_cast<long long>(side),
      static_cast<long long>(side * side), nprocs, steps);

  transport::World::runSPMD(nprocs, [&](transport::Comm& comm) {
    workloads::CoupledMeshConfig cfg;
    cfg.rows = side;
    cfg.cols = side;
    workloads::CoupledMesh mesh(comm, cfg);

    // Inspectors: run once, before the time-step loop (the inspector /
    // executor pattern all three libraries share).
    const double i0 = comm.now();
    mesh.buildRegularInspector();
    mesh.buildIrregularInspector();
    mesh.buildMetaChaosCopySchedules(core::Method::kCooperation);
    comm.barrier();
    const double i1 = comm.now();

    for (int s = 0; s < steps; ++s) {
      mesh.timeStepMC();
      const double cs = mesh.checksum();
      if (comm.rank() == 0) {
        std::printf("  step %d: checksum %.6e (t=%.2f ms)\n", s, cs,
                    1e3 * comm.now());
      }
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::printf("inspectors: %.2f ms, total: %.2f ms (virtual time)\n",
                  1e3 * (i1 - i0), 1e3 * comm.now());
    }
  });
  return 0;
}
