// Quickstart: copy a section of a Multiblock-Parti-distributed array into an
// irregularly (Chaos-)distributed array with Meta-Chaos, inside one SPMD
// program — the paper's Figure 2 scenario in ~60 lines of user code.
//
// Run:  ./quickstart [nprocs]        (default 4 virtual processors)
#include <cstdio>
#include <cstdlib>

#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  std::printf("Meta-Chaos quickstart on %d virtual processors\n", nprocs);

  transport::World::runSPMD(nprocs, [](transport::Comm& comm) {
    // --- a regular 8x8 mesh, BLOCK x BLOCK distributed by Multiblock Parti
    parti::BlockDistArray<double> a(comm, Shape::of({8, 8}), /*ghost=*/0);
    a.fillByPoint([](const Point& p) {
      return static_cast<double>(10 * p[0] + p[1]);
    });

    // --- an irregular 64-element array, randomly partitioned by Chaos
    const Index n = 64;
    const auto mine = chaos::randomPartition(n, comm.size(), comm.rank(), 7);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            comm, mine, n, chaos::TranslationTable::Storage::kDistributed));
    chaos::IrregArray<double> x(comm, table, mine);

    // --- describe WHAT to copy: the whole mesh, row-major, onto the
    //     irregular points in reversed order
    core::SetOfRegions srcSet;
    srcSet.add(core::Region::section(RegularSection::box({0, 0}, {7, 7})));
    std::vector<Index> ids;
    for (Index k = n - 1; k >= 0; --k) ids.push_back(k);
    core::SetOfRegions dstSet;
    dstSet.add(core::Region::indices(ids));

    // --- build the schedule once, move data (both are collective)
    const core::McSchedule sched = core::computeSchedule(
        comm, core::PartiAdapter::describe(a), srcSet,
        core::ChaosAdapter::describe(x), dstSet);
    core::dataMove<double>(comm, sched, a.raw(), x.raw());

    // --- check and report
    const auto img = x.gatherGlobal();
    if (comm.rank() == 0) {
      int bad = 0;
      for (Index k = 0; k < n; ++k) {
        const Index i = k / 8, j = k % 8;  // mesh point feeding element n-1-k
        if (img[static_cast<size_t>(n - 1 - k)] !=
            static_cast<double>(10 * i + j)) {
          ++bad;
        }
      }
      std::printf("copied %lld elements parti -> chaos, %d mismatches\n",
                  static_cast<long long>(n), bad);
      std::printf("first 8 irregular elements: ");
      for (int k = 0; k < 8; ++k) std::printf("%.0f ", img[static_cast<size_t>(k)]);
      std::printf("\nvirtual time on rank 0: %.3f ms\n", 1e3 * comm.now());
    }
  });
  return 0;
}
