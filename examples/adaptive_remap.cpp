// Adaptive repartitioning: the coupled-mesh application of cfd_coupling,
// but the unstructured mesh starts on a deliberately bad (random)
// partition and is *remapped* onto an RCB partition mid-run — the adaptive
// pattern Chaos was built for.  After the remap every schedule touching the
// irregular mesh (the Chaos localize and the Meta-Chaos copies) is rebuilt;
// the solution is unaffected while the communication volume drops.
//
// Run:  ./adaptive_remap [nprocs] [side]
#include <cstdio>
#include <cstdlib>

#include "chaos/irregular_loop.h"
#include "chaos/partition.h"
#include "chaos/remap.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "meshgen/meshgen.h"
#include "parti/stencil.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

struct Phase {
  std::shared_ptr<const chaos::TranslationTable> table;
  std::unique_ptr<chaos::IrregArray<double>> x;
  std::unique_ptr<chaos::IrregArray<double>> y;
  std::unique_ptr<chaos::EdgeSweep<double>> sweep;
  core::McSchedule regToIrreg;
  core::McSchedule irregToReg;
};

}  // namespace

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const Index side = argc > 2 ? std::atoll(argv[2]) : 48;
  const Index n = side * side;
  const std::uint64_t seed = 4242;
  std::printf("adaptive remap: %lld-point unstructured mesh, %d procs\n",
              static_cast<long long>(n), nprocs);

  transport::World::runSPMD(nprocs, [&](transport::Comm& comm) {
    parti::BlockDistArray<double> a(comm, Shape::of({side, side}), 1);
    a.fillByPoint([&](const Point& p) {
      return 1.0 + 1e-3 * static_cast<double>(p[0] * side + p[1]);
    });
    const parti::Schedule ghosts = parti::buildGhostSchedule(a);
    const auto perm = meshgen::nodePermutation(n, seed);
    const auto edges =
        meshgen::renumberNodes(meshgen::gridEdges(side, side), perm);
    const auto mapping = meshgen::regToIrregMapping(side, side, perm);
    const auto myEdges =
        chaos::blockPartition(edges.numEdges(), comm.size(), comm.rank());
    std::vector<Index> ia, ib;
    for (Index e : myEdges) {
      ia.push_back(edges.ia[static_cast<size_t>(e)]);
      ib.push_back(edges.ib[static_cast<size_t>(e)]);
    }

    core::SetOfRegions regSet, irregSet;
    regSet.add(core::Region::section(
        RegularSection::box({0, 0}, {side - 1, side - 1})));
    irregSet.add(core::Region::indices(mapping.irreg));

    // Builds a phase's arrays and every schedule against one partition.
    auto buildPhase = [&](std::vector<Index> mine,
                          std::unique_ptr<chaos::IrregArray<double>> carried)
        -> Phase {
      Phase ph;
      ph.table = std::make_shared<const chaos::TranslationTable>(
          chaos::TranslationTable::build(
              comm, mine, n, chaos::TranslationTable::Storage::kDistributed));
      if (carried) {
        ph.x = std::make_unique<chaos::IrregArray<double>>(
            chaos::remap(*carried, mine,
                         chaos::TranslationTable::Storage::kDistributed));
        ph.table = ph.x->tablePtr();
      } else {
        ph.x = std::make_unique<chaos::IrregArray<double>>(comm, ph.table, mine);
      }
      ph.y = std::make_unique<chaos::IrregArray<double>>(
          comm, ph.x->tablePtr(), std::vector<Index>(ph.x->myGlobals().begin(),
                                                     ph.x->myGlobals().end()));
      ph.sweep = std::make_unique<chaos::EdgeSweep<double>>(comm, ph.x->table(),
                                                            ia, ib);
      ph.regToIrreg = core::computeSchedule(
          comm, core::PartiAdapter::describe(a), regSet,
          core::ChaosAdapter::describe(*ph.x), irregSet,
          core::Method::kCooperation);
      ph.irregToReg = core::reverseSchedule(ph.regToIrreg);
      return ph;
    };

    auto step = [&](Phase& ph, std::vector<double>& scratch) {
      parti::stencilSweep(a, ghosts, scratch);
      core::dataMove<double>(comm, ph.regToIrreg, a.raw(), ph.x->raw());
      ph.sweep->run(*ph.x, *ph.y);
      core::dataMove<double>(comm, ph.irregToReg, ph.x->raw(), a.raw());
    };

    std::vector<double> scratch;
    // Phase 1: a random partition — bad locality for the edge sweep.
    Phase ph1 = buildPhase(
        chaos::randomPartition(n, comm.size(), comm.rank(), seed + 1), nullptr);
    comm.resetStats();
    for (int s = 0; s < 2; ++s) step(ph1, scratch);
    const auto rndBytes = comm.stats().bytesSent;
    const double cs1 = parti::globalSum(a);

    // Remap onto an RCB partition and rebuild everything.
    const auto coords = meshgen::gridCoordinates(side, side, perm);
    Phase ph2 = buildPhase(
        chaos::rcbPartition(coords.x, coords.y, comm.size(), comm.rank()),
        std::move(ph1.x));
    comm.resetStats();
    for (int s = 0; s < 2; ++s) step(ph2, scratch);
    const auto rcbBytes = comm.stats().bytesSent;
    const double cs2 = parti::globalSum(a);

    if (comm.rank() == 0) {
      std::printf("  after random phase: checksum %.6e\n", cs1);
      std::printf("  after RCB phase:    checksum %.6e\n", cs2);
      std::printf("  rank-0 bytes/2 steps: random %llu, RCB %llu "
                  "(edge-sweep locality improves)\n",
                  static_cast<unsigned long long>(rndBytes),
                  static_cast<unsigned long long>(rcbBytes));
    }
  });
  std::printf("done\n");
  return 0;
}
