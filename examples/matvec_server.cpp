// Client/server computation offload (paper Section 5.4), written against
// the paper-style MC_* API: a client ships a matrix to an HPF matvec
// server once, then streams operand vectors and receives results, with all
// transfers running through Meta-Chaos schedules that are computed once and
// reused.
//
// Run:  ./matvec_server [server_procs] [vectors] [n]
#include <cstdio>
#include <cstdlib>

#include "core/mc_api.h"
#include "hpfrt/matvec.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::Shape;

int main(int argc, char** argv) {
  const int serverProcs = argc > 1 ? std::atoi(argv[1]) : 8;
  const int vectors = argc > 2 ? std::atoi(argv[2]) : 5;
  const Index n = argc > 3 ? std::atoll(argv[3]) : 128;
  std::printf("matvec server: sequential client + %d-proc HPF server, "
              "%d vectors of length %lld\n",
              serverProcs, vectors, static_cast<long long>(n));

  auto clientMain = [&](transport::Comm& comm) {
    api::MC_Reset();
    hpfrt::HpfArray<double> A(comm, hpfrt::matvecMatrixDist(n, 1));
    hpfrt::HpfArray<double> x(comm, hpfrt::matvecVectorDist(n, 1));
    hpfrt::HpfArray<double> y(comm, hpfrt::matvecVectorDist(n, 1));
    A.fillByPoint([](const Point& p) {
      return p[0] >= p[1] ? 1.0 : 0.0;  // lower-triangular ones
    });

    const Index mLo[2] = {0, 0}, mHi[2] = {n - 1, n - 1};
    const Index vLo = 0, vHi = n - 1;
    const api::SetId mSet = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(api::CreateRegion_HPF(2, mLo, mHi), mSet);
    const api::SetId vSet = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(api::CreateRegion_HPF(1, &vLo, &vHi), vSet);

    const api::SchedId mSend =
        api::MC_ComputeSchedSend(comm, api::MC_RegisterHPF(A), mSet, 1);
    const api::SchedId xSend =
        api::MC_ComputeSchedSend(comm, api::MC_RegisterHPF(x), vSet, 1);
    const api::SchedId yRecv = api::MC_ReverseSched(xSend);

    api::MC_DataMoveSend<double>(comm, mSend, A.raw());
    for (int it = 0; it < vectors; ++it) {
      x.fillByPoint([&](const Point& p) {
        return p[0] == static_cast<Index>(it) ? 1.0 : 0.0;  // unit vector
      });
      api::MC_DataMoveSend<double>(comm, xSend, x.raw());
      api::MC_DataMoveRecv<double>(comm, yRecv, y.raw());
      // A * e_it = column it of A: 0 ... 0 1 1 ... 1 (it zeros).
      int bad = 0;
      for (Index i = 0; i < n; ++i) {
        const double want = i >= static_cast<Index>(it) ? 1.0 : 0.0;
        if (y.raw()[static_cast<size_t>(i)] != want) ++bad;
      }
      std::printf("  vector %d: result %s (t=%.2f ms)\n", it,
                  bad == 0 ? "correct" : "WRONG", 1e3 * comm.now());
    }
  };

  auto serverMain = [&](transport::Comm& comm) {
    api::MC_Reset();
    hpfrt::HpfArray<double> A(comm, hpfrt::matvecMatrixDist(n, comm.size()));
    hpfrt::HpfArray<double> x(comm, hpfrt::matvecVectorDist(n, comm.size()));
    hpfrt::HpfArray<double> y(comm, hpfrt::matvecVectorDist(n, comm.size()));

    const Index mLo[2] = {0, 0}, mHi[2] = {n - 1, n - 1};
    const Index vLo = 0, vHi = n - 1;
    const api::SetId mSet = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(api::CreateRegion_HPF(2, mLo, mHi), mSet);
    const api::SetId vSet = api::MC_NewSetOfRegion();
    api::MC_AddRegion2Set(api::CreateRegion_HPF(1, &vLo, &vHi), vSet);

    const api::SchedId mRecv =
        api::MC_ComputeSchedRecv(comm, api::MC_RegisterHPF(A), mSet, 0);
    const api::SchedId xRecv =
        api::MC_ComputeSchedRecv(comm, api::MC_RegisterHPF(x), vSet, 0);
    const api::SchedId ySend = api::MC_ReverseSched(xRecv);

    api::MC_DataMoveRecv<double>(comm, mRecv, A.raw());
    for (int it = 0; it < vectors; ++it) {
      api::MC_DataMoveRecv<double>(comm, xRecv, x.raw());
      hpfrt::matvec(A, x, y);
      api::MC_DataMoveSend<double>(comm, ySend, y.raw());
    }
  };

  transport::World::run({
      transport::ProgramSpec{"client", 1, clientMain},
      transport::ProgramSpec{"server", serverProcs, serverMain},
  });
  std::printf("done\n");
  return 0;
}
