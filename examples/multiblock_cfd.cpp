// Multiblock structured-grid solver skeleton: an L-shaped domain built from
// three blocks, stitched by inter-block interfaces that are updated every
// time-step — the Multiblock Parti usage pattern behind the paper's Table 5
// ("a multiblock CFD code, where inter-block boundaries must be updated at
// every time-step").
//
//        +--------+--------+
//        | block0 | block1 |      block0|block1 share a vertical interface,
//        +--------+--------+      block0|block2 a horizontal one.
//        | block2 |
//        +--------+
//
// Run:  ./multiblock_cfd [nprocs] [steps] [block_side]
#include <cstdio>
#include <cstdlib>

#include "parti/multiblock.h"
#include "parti/stencil.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 5;
  const Index side = argc > 3 ? std::atoll(argv[3]) : 32;
  std::printf("multiblock L-domain: three %lldx%lld blocks, %d procs, "
              "%d steps\n",
              static_cast<long long>(side), static_cast<long long>(side),
              nprocs, steps);

  transport::World::runSPMD(nprocs, [&](transport::Comm& comm) {
    parti::MultiblockArray<double> mb(
        comm, {Shape::of({side, side}), Shape::of({side, side}),
               Shape::of({side, side})},
        /*ghost=*/1);
    for (int b = 0; b < 3; ++b) {
      mb.block(b).fillByPoint([&](const Point& p) {
        return 1.0 + 0.25 * b + 1e-4 * static_cast<double>(p[0] * side + p[1]);
      });
    }
    // block0 right edge <-> block1 left edge.
    mb.addInterface(0, RegularSection::box({0, side - 2}, {side - 1, side - 2}),
                    1, RegularSection::box({0, 0}, {side - 1, 0}));
    mb.addInterface(1, RegularSection::box({0, 1}, {side - 1, 1}),
                    0, RegularSection::box({0, side - 1}, {side - 1, side - 1}));
    // block0 bottom edge <-> block2 top edge.
    mb.addInterface(0, RegularSection::box({side - 2, 0}, {side - 2, side - 1}),
                    2, RegularSection::box({0, 0}, {0, side - 1}));
    mb.addInterface(2, RegularSection::box({1, 0}, {1, side - 1}),
                    0, RegularSection::box({side - 1, 0}, {side - 1, side - 1}));
    mb.buildSchedules();

    std::vector<double> scratch;
    // Per-block ghost schedules live inside mb; the sweeps reuse them via
    // exchangeAllGhosts + per-block relaxation.
    for (int s = 0; s < steps; ++s) {
      mb.updateInterfaces();  // refresh inter-block boundaries
      for (int b = 0; b < 3; ++b) {
        const parti::Schedule ghosts = parti::buildGhostSchedule(mb.block(b));
        parti::stencilSweep(mb.block(b), ghosts, scratch);
      }
      const double cs = mb.checksum();
      if (comm.rank() == 0) {
        std::printf("  step %d: domain checksum %.6e (t=%.2f ms)\n", s, cs,
                    1e3 * comm.now());
      }
    }
  });
  std::printf("done\n");
  return 0;
}
