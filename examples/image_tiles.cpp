// Remote-sensing-style client/server (the paper's introduction motivates
// Meta-Chaos with satellite image database servers): a parallel server
// holds an image as a pC++/Tulip collection of pixel objects; a client
// holds a Parti-distributed viewport and pulls arbitrary rectangular tiles
// out of the server through Meta-Chaos — neither side knows anything about
// the other's data layout.
//
// Run:  ./image_tiles [server_procs] [client_procs]
#include <cstdio>
#include <cstdlib>

#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "transport/world.h"
#include "tulip/collection.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

namespace {

constexpr Index kImageSide = 64;         // server image: 64x64 pixels
constexpr Index kTile = 16;              // client pulls 16x16 tiles

double pixel(Index r, Index c) {
  // A synthetic "satellite image": smooth gradient + checkered texture.
  return static_cast<double>(r) + 0.01 * static_cast<double>(c) +
         ((r / 8 + c / 8) % 2 == 0 ? 100.0 : 0.0);
}

/// The tile request protocol: the client sends (row0, col0) of the tile it
/// wants; the server answers by joining a Meta-Chaos transfer of exactly
/// those pixels.  (-1, -1) ends the session.
struct TileRequest {
  Index row0 = -1;
  Index col0 = -1;
};

}  // namespace

int main(int argc, char** argv) {
  const int serverProcs = argc > 1 ? std::atoi(argv[1]) : 6;
  const int clientProcs = argc > 2 ? std::atoi(argv[2]) : 2;
  std::printf("image tile server: %d server procs (pC++ collection), "
              "%d client procs (Parti viewport)\n",
              serverProcs, clientProcs);

  const std::vector<TileRequest> wanted = {
      {0, 0}, {48, 48}, {16, 32}, {8, 8}, {-1, -1}};

  auto serverMain = [&](transport::Comm& comm) {
    // Pixels as a cyclically placed distributed collection (row-major ids).
    tulip::Collection<double> image(comm, kImageSide * kImageSide,
                                    tulip::Placement::kCyclic);
    image.forEachOwned([](Index id, double& v) {
      v = pixel(id / kImageSide, id % kImageSide);
    });
    for (;;) {
      // Rank 0 receives the request and broadcasts it to the program.
      TileRequest req;
      const int tag = comm.nextInterTag(0);
      if (comm.rank() == 0) req = comm.recvValueFrom<TileRequest>(0, 0, tag);
      req = comm.bcastValue(req, 0);
      if (req.row0 < 0) break;
      // Region: the tile's pixel ids, row-major (a range per tile row).
      core::SetOfRegions set;
      for (Index r = 0; r < kTile; ++r) {
        const Index base = (req.row0 + r) * kImageSide + req.col0;
        set.add(core::Region::range(base, base + kTile - 1));
      }
      const core::McSchedule send = core::computeScheduleSend(
          comm, core::TulipAdapter::describe(image), set, /*remote=*/0);
      core::dataMoveSend<double>(comm, send, image.raw());
    }
  };

  auto clientMain = [&](transport::Comm& comm) {
    parti::BlockDistArray<double> viewport(comm, Shape::of({kTile, kTile}), 0);
    core::SetOfRegions viewSet;
    viewSet.add(core::Region::section(
        RegularSection::box({0, 0}, {kTile - 1, kTile - 1})));
    for (const TileRequest& req : wanted) {
      const int tag = comm.nextInterTag(1);
      if (comm.rank() == 0) comm.sendValueTo(1, 0, tag, req);
      if (req.row0 < 0) break;
      const core::McSchedule recv = core::computeScheduleRecv(
          comm, core::PartiAdapter::describe(viewport), viewSet, /*remote=*/1);
      core::dataMoveRecv<double>(comm, recv, viewport.raw());
      // Verify the tile against the synthetic image and report a summary.
      const auto img = viewport.gatherGlobal();
      if (comm.rank() == 0) {
        int bad = 0;
        double mean = 0;
        for (Index r = 0; r < kTile; ++r) {
          for (Index c = 0; c < kTile; ++c) {
            const double got = img[static_cast<size_t>(r * kTile + c)];
            mean += got;
            if (got != pixel(req.row0 + r, req.col0 + c)) ++bad;
          }
        }
        mean /= static_cast<double>(kTile * kTile);
        std::printf("  tile (%2lld,%2lld): mean intensity %7.2f, %s\n",
                    static_cast<long long>(req.row0),
                    static_cast<long long>(req.col0), mean,
                    bad == 0 ? "verified" : "CORRUPT");
      }
    }
  };

  transport::World::run({
      transport::ProgramSpec{"client", clientProcs, clientMain},
      transport::ProgramSpec{"server", serverProcs, serverMain},
  });
  std::printf("done\n");
  return 0;
}
