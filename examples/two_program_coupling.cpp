// The paper's Section 5.2 scenario: the SAME coupled-mesh algorithm as
// cfd_coupling, but split into two separately running data parallel
// programs — Preg (Multiblock Parti, structured mesh) and Pirreg (Chaos,
// unstructured mesh) — that exchange boundary data through Meta-Chaos
// send/recv schedules each time-step (Figure 3's model).
//
// Run:  ./two_program_coupling [preg_procs] [pirreg_procs] [steps] [side]
#include <cstdio>
#include <cstdlib>

#include "chaos/irregular_loop.h"
#include "chaos/partition.h"
#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "meshgen/meshgen.h"
#include "parti/stencil.h"
#include "transport/world.h"

using namespace mc;
using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

int main(int argc, char** argv) {
  const int npReg = argc > 1 ? std::atoi(argv[1]) : 2;
  const int npIrreg = argc > 2 ? std::atoi(argv[2]) : 4;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 3;
  const Index side = argc > 4 ? std::atoll(argv[4]) : 48;
  const Index n = side * side;
  const std::uint64_t seed = 12345;
  std::printf("two-program coupling: Preg x%d  <->  Pirreg x%d, %d steps\n",
              npReg, npIrreg, steps);

  auto pregMain = [&](transport::Comm& comm) {
    parti::BlockDistArray<double> a(comm, Shape::of({side, side}), 1);
    a.fillByPoint([&](const Point& p) {
      return 1.0 + 1e-3 * static_cast<double>(p[0] * side + p[1]);
    });
    const parti::Schedule ghosts = parti::buildGhostSchedule(a);

    core::SetOfRegions set;
    set.add(core::Region::section(
        RegularSection::box({0, 0}, {side - 1, side - 1})));
    const core::McSchedule send = core::computeScheduleSend(
        comm, core::PartiAdapter::describe(a), set, /*remote=*/1,
        core::Method::kCooperation);
    const core::McSchedule recv = core::reverseSchedule(send);

    std::vector<double> scratch;
    for (int s = 0; s < steps; ++s) {
      parti::stencilSweep(a, ghosts, scratch);          // Loop 1
      core::dataMoveSend<double>(comm, send, a.raw());  // Loop 2 (my half)
      core::dataMoveRecv<double>(comm, recv, a.raw());  // Loop 4 (my half)
    }
    double local = 0;
    a.ownedBox().forEach([&](const Point& p, Index) { local += a.at(p); });
    const double cs = comm.allreduceSum(local);
    if (comm.rank() == 0) {
      std::printf("Preg: final structured-mesh checksum %.6e, t=%.2f ms\n",
                  cs, 1e3 * comm.now());
    }
  };

  auto pirregMain = [&](transport::Comm& comm) {
    const auto perm = meshgen::nodePermutation(n, seed);
    const auto mine =
        chaos::randomPartition(n, comm.size(), comm.rank(), seed + 1);
    auto table = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::build(
            comm, mine, n, chaos::TranslationTable::Storage::kDistributed));
    chaos::IrregArray<double> x(comm, table, mine), y(comm, table, mine);

    const meshgen::EdgeList edges =
        meshgen::renumberNodes(meshgen::gridEdges(side, side), perm);
    const auto myEdges =
        chaos::blockPartition(edges.numEdges(), comm.size(), comm.rank());
    std::vector<Index> ia, ib;
    for (Index e : myEdges) {
      ia.push_back(edges.ia[static_cast<size_t>(e)]);
      ib.push_back(edges.ib[static_cast<size_t>(e)]);
    }
    chaos::EdgeSweep<double> sweep(comm, *table, ia, ib);

    const auto mapping = meshgen::regToIrregMapping(side, side, perm);
    core::SetOfRegions set;
    set.add(core::Region::indices(mapping.irreg));
    const core::McSchedule recv = core::computeScheduleRecv(
        comm, core::ChaosAdapter::describe(x), set, /*remote=*/0,
        core::Method::kCooperation);
    const core::McSchedule send = core::reverseSchedule(recv);

    for (int s = 0; s < steps; ++s) {
      core::dataMoveRecv<double>(comm, recv, x.raw());  // Loop 2 (my half)
      sweep.run(x, y);                                  // Loop 3
      core::dataMoveSend<double>(comm, send, x.raw());  // Loop 4 (my half)
    }
    double local = 0;
    for (double v : y.raw()) local += v;
    const double cs = comm.allreduceSum(local);
    if (comm.rank() == 0) {
      std::printf("Pirreg: final unstructured-accumulator checksum %.6e, "
                  "t=%.2f ms\n",
                  cs, 1e3 * comm.now());
    }
  };

  transport::World::run({
      transport::ProgramSpec{"preg", npReg, pregMain},
      transport::ProgramSpec{"pirreg", npIrreg, pirregMain},
  });
  return 0;
}
