#include "meshgen/meshgen.h"

#include "util/error.h"
#include "util/rng.h"

namespace mc::meshgen {

using layout::Index;

EdgeList gridEdges(Index rows, Index cols) {
  MC_REQUIRE(rows > 0 && cols > 0);
  EdgeList e;
  e.ia.reserve(static_cast<size_t>(2 * rows * cols));
  e.ib.reserve(static_cast<size_t>(2 * rows * cols));
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      const Index v = r * cols + c;
      if (c + 1 < cols) {
        e.ia.push_back(v);
        e.ib.push_back(v + 1);
      }
      if (r + 1 < rows) {
        e.ia.push_back(v);
        e.ib.push_back(v + cols);
      }
    }
  }
  return e;
}

EdgeList renumberNodes(const EdgeList& edges, const std::vector<Index>& perm) {
  EdgeList out;
  out.ia.reserve(edges.ia.size());
  out.ib.reserve(edges.ib.size());
  for (size_t i = 0; i < edges.ia.size(); ++i) {
    out.ia.push_back(perm[static_cast<size_t>(edges.ia[i])]);
    out.ib.push_back(perm[static_cast<size_t>(edges.ib[i])]);
  }
  return out;
}

std::vector<Index> nodePermutation(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const auto p = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> out(p.size());
  for (size_t i = 0; i < p.size(); ++i) out[i] = static_cast<Index>(p[i]);
  return out;
}

InterfaceMapping regToIrregMapping(Index rows, Index cols,
                                   const std::vector<Index>& perm) {
  MC_REQUIRE(static_cast<Index>(perm.size()) == rows * cols,
             "permutation size %zu != mesh size %lld", perm.size(),
             static_cast<long long>(rows * cols));
  InterfaceMapping m;
  const auto n = static_cast<size_t>(rows * cols);
  m.reg1.reserve(n);
  m.reg2.reserve(n);
  m.irreg.reserve(n);
  for (Index k = 0; k < rows * cols; ++k) {
    m.reg1.push_back(k / cols);
    m.reg2.push_back(k % cols);
    m.irreg.push_back(perm[static_cast<size_t>(k)]);
  }
  return m;
}

NodeCoords gridCoordinates(Index rows, Index cols,
                           const std::vector<Index>& perm) {
  MC_REQUIRE(static_cast<Index>(perm.size()) == rows * cols,
             "permutation size %zu != mesh size %lld", perm.size(),
             static_cast<long long>(rows * cols));
  NodeCoords coords;
  coords.x.assign(perm.size(), 0.0);
  coords.y.assign(perm.size(), 0.0);
  for (Index k = 0; k < rows * cols; ++k) {
    const auto id = static_cast<size_t>(perm[static_cast<size_t>(k)]);
    coords.x[id] = static_cast<double>(k % cols);
    coords.y[id] = static_cast<double>(k / cols);
  }
  return coords;
}

}  // namespace mc::meshgen
