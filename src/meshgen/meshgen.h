// Workload generators for the paper's experiments.
//
// The paper's Section 5.1 couples a 256x256 regular mesh (Multiblock Parti)
// with a 65536-point unstructured mesh (Chaos) — equal element counts, i.e.
// the interface *remaps the whole mesh* between its regular (i,j) identity
// and an irregular point numbering.  The authors used real CFD meshes; we
// generate the closest synthetic equivalent:
//
//  * edges: a 4-neighbour grid graph (the connectivity of a structured
//    triangulation) whose nodes are renumbered by a seeded random
//    permutation — preserving mesh degree structure while destroying index
//    locality, which is exactly what stresses irregular runtimes;
//  * the regular<->irregular interface mapping (the paper's Reg2Irreg_Reg1 /
//    Reg2Irreg_Reg2 / Reg2Irreg_Irreg arrays of Figure 1).
//
// All generators are deterministic in their seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/index.h"

namespace mc::meshgen {

/// An unstructured mesh's edge list: edge e connects nodes ia[e] and ib[e].
struct EdgeList {
  std::vector<layout::Index> ia;
  std::vector<layout::Index> ib;
  layout::Index numEdges() const {
    return static_cast<layout::Index>(ia.size());
  }
};

/// 4-neighbour grid-graph edges over rows x cols nodes (row-major ids).
EdgeList gridEdges(layout::Index rows, layout::Index cols);

/// Renumbers nodes: node v becomes perm[v].
EdgeList renumberNodes(const EdgeList& edges,
                       const std::vector<layout::Index>& perm);

/// A seeded random permutation of 0..n-1 (as layout::Index values).
std::vector<layout::Index> nodePermutation(layout::Index n,
                                           std::uint64_t seed);

/// The Figure-1 interface mapping between a rows x cols regular mesh and an
/// irregular mesh of rows*cols points: entry k associates regular point
/// (reg1[k], reg2[k]) with irregular point irreg[k] = perm[k].
struct InterfaceMapping {
  std::vector<layout::Index> reg1;   // first regular index
  std::vector<layout::Index> reg2;   // second regular index
  std::vector<layout::Index> irreg;  // irregular point index
  layout::Index size() const { return static_cast<layout::Index>(irreg.size()); }
};

InterfaceMapping regToIrregMapping(layout::Index rows, layout::Index cols,
                                   const std::vector<layout::Index>& perm);

/// Physical coordinates per node (indexed by *renumbered* node id): the
/// node that grid cell (r, c) became under `perm` sits at (c, r).  Feeds
/// geometric partitioners (chaos::rcbPartition).
struct NodeCoords {
  std::vector<double> x;
  std::vector<double> y;
};

NodeCoords gridCoordinates(layout::Index rows, layout::Index cols,
                           const std::vector<layout::Index>& perm);

}  // namespace mc::meshgen
