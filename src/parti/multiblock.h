// MultiblockArray: the "multiblock" in Multiblock Parti.
//
// Multiblock codes decompose a complex geometry into several logically
// rectangular blocks (grids); each block is independently distributed over
// the processors, and the blocks are stitched together by *interfaces* —
// conformant section pairs copied at every time-step (the paper's Section
// 5.3 scenario: "a multiblock computational fluid dynamics code, where
// inter-block boundaries must be updated at every time-step").
//
// The class packages: per-block distributed arrays with halos, ghost
// schedules, and registered interfaces with their section-copy schedules —
// inspector (buildSchedules) / executor (updateInterfaces, exchangeGhosts)
// style, all schedules reusable across steps.
#pragma once

#include <memory>

#include "parti/ghost.h"
#include "parti/section_copy.h"

namespace mc::parti {

template <typename T>
class MultiblockArray {
 public:
  /// Collective: every block is distributed over the whole program.
  MultiblockArray(transport::Comm& comm,
                  std::vector<layout::Shape> blockShapes, int ghost)
      : comm_(&comm) {
    MC_REQUIRE(!blockShapes.empty(), "a multiblock array needs blocks");
    blocks_.reserve(blockShapes.size());
    for (const layout::Shape& shape : blockShapes) {
      blocks_.push_back(
          std::make_unique<BlockDistArray<T>>(comm, shape, ghost));
    }
  }

  int numBlocks() const { return static_cast<int>(blocks_.size()); }
  BlockDistArray<T>& block(int b) {
    return *blocks_.at(static_cast<size_t>(b));
  }
  const BlockDistArray<T>& block(int b) const {
    return *blocks_.at(static_cast<size_t>(b));
  }
  transport::Comm& comm() const { return *comm_; }

  /// Registers an interface: at update time, `srcSec` of block `srcBlock`
  /// is copied onto `dstSec` of block `dstBlock` (conformant sections,
  /// dimension-wise pairing).  Call before buildSchedules.
  void addInterface(int srcBlock, layout::RegularSection srcSec, int dstBlock,
                    layout::RegularSection dstSec) {
    MC_REQUIRE(!built_, "interfaces must be registered before buildSchedules");
    MC_REQUIRE(srcBlock >= 0 && srcBlock < numBlocks() && dstBlock >= 0 &&
               dstBlock < numBlocks());
    interfaces_.push_back(Interface{srcBlock, dstBlock, srcSec, dstSec, {}});
  }

  int numInterfaces() const { return static_cast<int>(interfaces_.size()); }

  /// Inspector: builds the ghost schedules and every interface's
  /// section-copy schedule.  Collective; call once.
  void buildSchedules() {
    MC_REQUIRE(!built_, "buildSchedules must run once");
    ghostScheds_.reserve(blocks_.size());
    for (const auto& blk : blocks_) {
      ghostScheds_.push_back(buildGhostSchedule(*blk));
    }
    for (Interface& iface : interfaces_) {
      iface.sched = buildSectionCopySchedule(
          block(iface.srcBlock).desc(), iface.srcSec,
          block(iface.dstBlock).desc(), iface.dstSec, comm_->rank());
    }
    built_ = true;
  }

  /// Executor: runs every registered interface copy, in registration order.
  /// Collective.
  void updateInterfaces() {
    MC_REQUIRE(built_, "buildSchedules first");
    for (const Interface& iface : interfaces_) {
      sectionCopy(iface.sched, block(iface.srcBlock), block(iface.dstBlock));
    }
  }

  /// Executor: fills every block's halo from its own block's owners.
  /// Collective.
  void exchangeAllGhosts() {
    MC_REQUIRE(built_, "buildSchedules first");
    for (size_t b = 0; b < blocks_.size(); ++b) {
      exchangeGhosts(*blocks_[b], ghostScheds_[b]);
    }
  }

  /// Collective checksum over all owned elements of all blocks.
  double checksum() const {
    double local = 0;
    for (const auto& blk : blocks_) {
      blk->ownedBox().forEach([&](const layout::Point& p, layout::Index) {
        local += static_cast<double>(blk->at(p));
      });
    }
    return comm_->allreduceSum(local);
  }

 private:
  struct Interface {
    int srcBlock;
    int dstBlock;
    layout::RegularSection srcSec;
    layout::RegularSection dstSec;
    Schedule sched;
  };

  transport::Comm* comm_;
  std::vector<std::unique_ptr<BlockDistArray<T>>> blocks_;
  std::vector<Schedule> ghostScheds_;
  std::vector<Interface> interfaces_;
  bool built_ = false;
};

}  // namespace mc::parti
