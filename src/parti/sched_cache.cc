#include "parti/sched_cache.h"

#include "layout/section_hash.h"
#include "obs/metrics.h"
#include "parti/ghost.h"
#include "parti/section_copy.h"

namespace mc::parti {

sched::KeyedCache<Schedule>& partiScheduleCache() {
  thread_local sched::KeyedCache<Schedule> cache;
  thread_local bool registered = [] {
    obs::registerCacheMetrics(obs::threadRegistry(), "parti.sched_cache",
                              cache);
    return true;
  }();
  (void)registered;
  return cache;
}

void hashPartiDesc(HashStream& h, const PartiDesc& desc) {
  layout::hashShape(h, desc.decomp.globalShape());
  for (int g : desc.decomp.grid()) h.pod(g);
  h.pod(desc.ghost);
}

std::shared_ptr<const Schedule> cachedGhostSchedule(const PartiDesc& desc,
                                                    int myProc) {
  HashStream h;
  h.str("parti-ghost");
  hashPartiDesc(h, desc);
  h.pod(myProc);
  return partiScheduleCache().getOrBuild(h.digest(), [&] {
    auto built = std::make_shared<Schedule>(buildGhostSchedule(desc, myProc));
    built->compress();
    return built;
  });
}

std::shared_ptr<const Schedule> cachedSectionCopySchedule(
    const PartiDesc& srcDesc, const layout::RegularSection& srcSec,
    const PartiDesc& dstDesc, const layout::RegularSection& dstSec,
    int myProc) {
  HashStream h;
  h.str("parti-section-copy");
  hashPartiDesc(h, srcDesc);
  layout::hashSection(h, srcSec);
  hashPartiDesc(h, dstDesc);
  layout::hashSection(h, dstSec);
  h.pod(myProc);
  return partiScheduleCache().getOrBuild(h.digest(), [&] {
    auto built = std::make_shared<Schedule>(
        buildSectionCopySchedule(srcDesc, srcSec, dstDesc, dstSec, myProc));
    built->compress();
    return built;
  });
}

}  // namespace mc::parti
