#include "parti/ghost.h"

namespace mc::parti {

Schedule buildGhostSchedule(const PartiDesc& desc, int myProc) {
  Schedule sched;
  if (desc.ghost == 0) return sched;
  const layout::BlockDecomp& decomp = desc.decomp;
  const layout::Shape& domain = decomp.globalShape();
  const layout::RegularSection myBox = decomp.ownedBox(myProc);
  if (myBox.empty()) return sched;
  const layout::RegularSection myHalo =
      layout::expandBox(myBox, desc.ghost, domain);
  const PartiAddr myAddr = desc.addrOf(myProc);

  for (int q = 0; q < decomp.nprocs(); ++q) {
    if (q == myProc) continue;
    const layout::RegularSection qBox = decomp.ownedBox(q);
    if (qBox.empty()) continue;
    // Halo cells I need that q owns.
    const layout::RegularSection need = layout::intersectBoxes(myHalo, qBox);
    if (!need.empty()) {
      OffsetPlan plan;
      plan.peer = q;
      plan.offsets.reserve(static_cast<size_t>(need.numElements()));
      need.forEach([&](const layout::Point& p, layout::Index) {
        plan.offsets.push_back(myAddr.offsetOf(p));
      });
      sched.recvs.push_back(std::move(plan));
    }
    // Cells I own that fall in q's halo.
    const layout::RegularSection qHalo =
        layout::expandBox(qBox, desc.ghost, domain);
    const layout::RegularSection give = layout::intersectBoxes(qHalo, myBox);
    if (!give.empty()) {
      OffsetPlan plan;
      plan.peer = q;
      plan.offsets.reserve(static_cast<size_t>(give.numElements()));
      give.forEach([&](const layout::Point& p, layout::Index) {
        plan.offsets.push_back(myAddr.offsetOf(p));
      });
      sched.sends.push_back(std::move(plan));
    }
  }
  sched.sortByPeer();
  return sched;
}

}  // namespace mc::parti
