// Ghost (overlap) cell exchange for Parti arrays.
//
// buildGhostSchedule is the *inspector*: from the replicated distribution
// descriptor alone — no communication — each processor derives which halo
// cells it must receive from which owner, and which of its owned cells its
// neighbours need.  Executing the schedule (the *executor*) fills every halo
// cell with the owner's current value; it is typically run once per
// time-step, as in Loop 1 of the paper's Figure 1 code.
#pragma once

#include "parti/dist_array.h"
#include "parti/schedule.h"

namespace mc::parti {

/// Builds the ghost-fill schedule for processor `myProc` of an array
/// described by `desc`.  Pure local computation.
Schedule buildGhostSchedule(const PartiDesc& desc, int myProc);

/// Convenience: build for the calling processor of `array`.
template <typename T>
Schedule buildGhostSchedule(const BlockDistArray<T>& array) {
  return buildGhostSchedule(array.desc(), array.comm().rank());
}

/// Executes a ghost fill on `array` (collective).
template <typename T>
void exchangeGhosts(BlockDistArray<T>& array, const Schedule& sched) {
  const int tag = array.comm().nextUserTag();
  execute<T>(array.comm(), sched, array.raw(), array.raw(), tag);
}

}  // namespace mc::parti
