// Ghost (overlap) cell exchange for Parti arrays.
//
// buildGhostSchedule is the *inspector*: from the replicated distribution
// descriptor alone — no communication — each processor derives which halo
// cells it must receive from which owner, and which of its owned cells its
// neighbours need.  Executing the schedule (the *executor*) fills every halo
// cell with the owner's current value; it is typically run once per
// time-step, as in Loop 1 of the paper's Figure 1 code.
#pragma once

#include "parti/dist_array.h"
#include "parti/sched_cache.h"
#include "parti/schedule.h"

namespace mc::parti {

/// Builds the ghost-fill schedule for processor `myProc` of an array
/// described by `desc`.  Pure local computation.
Schedule buildGhostSchedule(const PartiDesc& desc, int myProc);

/// Convenience: build for the calling processor of `array`.
template <typename T>
Schedule buildGhostSchedule(const BlockDistArray<T>& array) {
  return buildGhostSchedule(array.desc(), array.comm().rank());
}

/// Executes a ghost fill on `array` (collective).  One-shot; time-step
/// loops should hold a GhostExchanger instead.
template <typename T>
void exchangeGhosts(BlockDistArray<T>& array, const Schedule& sched) {
  const int tag = array.comm().nextUserTag();
  execute<T>(array.comm(), sched, array.raw(), array.raw(), tag);
}

/// A persistent ghost-fill executor for one array: shares the rank's cached
/// ghost schedule and keeps a bound sched::Executor across exchanges, so
/// steady-state fills reuse their message buffers (zero transport payload
/// copies or allocations per step).  The array must outlive the exchanger
/// and keep its distribution.
template <typename T>
class GhostExchanger {
 public:
  explicit GhostExchanger(BlockDistArray<T>& array)
      : array_(&array),
        exec_(array.comm(),
              cachedGhostSchedule(array.desc(), array.comm().rank())) {}

  /// One collective ghost fill (src and dst alias the array's storage).
  void exchange() { exec_.run(array_->raw(), array_->raw()); }

  /// Split-phase ghost fill: posts the sends and returns a handle; the
  /// caller computes away from the footprint (see sched/footprint.h),
  /// polls, and finishes with finish(array().raw()).
  typename Executor<T>::Pending startExchange() {
    return exec_.start(array_->raw());
  }

  const Schedule& schedule() const { return exec_.schedule(); }
  Executor<T>& executor() { return exec_; }

 private:
  BlockDistArray<T>* array_;
  Executor<T> exec_;
};

}  // namespace mc::parti
