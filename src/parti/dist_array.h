// BlockDistArray: the Multiblock-Parti-style distributed array.
//
// Multiblock Parti [Agrawal, Sussman, Saltz; IEEE TPDS 1995] manages
// multidimensional arrays distributed BLOCK-wise over a processor grid, with
// ghost (overlap) cells around each local block for stencil communication.
// Every processor of the owning program constructs the array collectively
// with identical arguments; each then holds its own block plus a halo of
// `ghost` cells per face, stored row-major in one contiguous buffer.
//
// The distribution descriptor (decomposition + ghost width) is replicated
// knowledge: any processor can answer "who owns global element g and at what
// local address" without communication — which is exactly the inquiry
// interface Meta-Chaos requires (paper Section 4.1.3).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "layout/block_decomp.h"
#include "transport/comm.h"

namespace mc::parti {

/// Precomputed padded-storage addressing for one processor; build it once
/// outside a hot loop instead of calling PartiDesc::paddedOffsetOf per
/// element (which re-derives the owned box every call).
struct PartiAddr {
  int rank = 0;
  int ghost = 0;
  std::array<layout::Index, layout::kMaxRank> lo{};      // owned-box lows
  std::array<layout::Index, layout::kMaxRank> extent{};  // padded extents

  /// Offset of global point `p` in the processor's padded storage; `p` must
  /// lie within the padded block (checked).
  layout::Index offsetOf(const layout::Point& p) const {
    layout::Index off = 0;
    for (int d = 0; d < rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      const layout::Index l = p[d] - lo[dd] + ghost;
      MC_CHECK(l >= 0 && l < extent[dd],
               "global point outside the padded block");
      off = off * extent[dd] + l;
    }
    return off;
  }
};

/// Compact distribution descriptor for a Parti array, shippable between
/// programs (it is a few dozen bytes — this is why the paper's *duplication*
/// schedule method is practical for Parti but not for Chaos).
struct PartiDesc {
  layout::BlockDecomp decomp;
  int ghost = 0;

  int ownerOf(const layout::Point& p) const { return decomp.ownerOf(p); }

  /// Hot-loop addressing snapshot for `proc`.
  PartiAddr addrOf(int proc) const {
    const layout::RegularSection box = decomp.ownedBox(proc);
    PartiAddr addr;
    addr.rank = decomp.rank();
    addr.ghost = ghost;
    const layout::Shape padded = paddedShape(proc);
    for (int d = 0; d < addr.rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      addr.lo[dd] = box.lo[dd];
      addr.extent[dd] = padded[d];
    }
    return addr;
  }

  /// Padded (halo-included) local shape on `proc`.
  layout::Shape paddedShape(int proc) const {
    layout::Shape s = decomp.localShape(proc);
    for (int d = 0; d < s.rank; ++d) s[d] += 2 * ghost;
    return s;
  }

  /// Offset of global point `p` in `proc`'s padded storage.  `p` must lie in
  /// the processor's owned box expanded by the ghost width (clipped to the
  /// global domain).
  layout::Index paddedOffsetOf(int proc, const layout::Point& p) const {
    const layout::RegularSection box = decomp.ownedBox(proc);
    const layout::Shape padded = paddedShape(proc);
    layout::Point local;
    local.rank = p.rank;
    for (int d = 0; d < p.rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      const layout::Index l = p[d] - box.lo[dd] + ghost;
      MC_REQUIRE(l >= 0 && l < padded[d],
                 "global point outside proc %d's padded block", proc);
      local[d] = l;
    }
    return layout::rowMajorOffset(padded, local);
  }
};

template <typename T>
class BlockDistArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective constructor; the processor grid is chosen near-square.
  BlockDistArray(transport::Comm& comm, layout::Shape global, int ghost = 0)
      : BlockDistArray(comm, layout::BlockDecomp::regular(global, comm.size()),
                       ghost) {}

  /// Collective constructor with an explicit decomposition.
  BlockDistArray(transport::Comm& comm, layout::BlockDecomp decomp, int ghost)
      : comm_(&comm), desc_{std::move(decomp), ghost} {
    MC_REQUIRE(ghost >= 0);
    MC_REQUIRE(desc_.decomp.nprocs() == comm.size(),
               "decomposition is over %d processors but the program has %d",
               desc_.decomp.nprocs(), comm.size());
    data_.assign(
        static_cast<size_t>(desc_.paddedShape(comm.rank()).numElements()),
        T{});
  }

  transport::Comm& comm() const { return *comm_; }
  const PartiDesc& desc() const { return desc_; }
  const layout::BlockDecomp& decomp() const { return desc_.decomp; }
  int ghost() const { return desc_.ghost; }
  const layout::Shape& globalShape() const { return desc_.decomp.globalShape(); }
  layout::RegularSection ownedBox() const {
    return desc_.decomp.ownedBox(comm_->rank());
  }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  layout::Index paddedOffsetOf(const layout::Point& p) const {
    return desc_.paddedOffsetOf(comm_->rank(), p);
  }

  /// Element access by *global* point; valid for owned and halo points.
  T& at(const layout::Point& p) {
    return data_[static_cast<size_t>(paddedOffsetOf(p))];
  }
  const T& at(const layout::Point& p) const {
    return data_[static_cast<size_t>(paddedOffsetOf(p))];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every *owned* element to fn(point).
  template <typename F>
  void fillByPoint(F&& fn) {
    ownedBox().forEach([&](const layout::Point& p, layout::Index) {
      at(p) = fn(p);
    });
  }

  /// Collective test/debug oracle: every processor receives the full global
  /// array (row-major).  O(global size) traffic; not for production paths.
  std::vector<T> gatherGlobal() const {
    std::vector<T> mine;
    const layout::RegularSection box = ownedBox();
    mine.reserve(static_cast<size_t>(box.numElements()));
    box.forEach([&](const layout::Point& p, layout::Index) {
      mine.push_back(at(p));
    });
    auto rows = comm_->allgather<T>(std::span<const T>(mine));
    std::vector<T> global(
        static_cast<size_t>(globalShape().numElements()), T{});
    for (int proc = 0; proc < comm_->size(); ++proc) {
      const layout::RegularSection pbox = desc_.decomp.ownedBox(proc);
      size_t i = 0;
      pbox.forEach([&](const layout::Point& p, layout::Index) {
        global[static_cast<size_t>(rowMajorOffset(globalShape(), p))] =
            rows[static_cast<size_t>(proc)][i++];
      });
    }
    return global;
  }

 private:
  transport::Comm* comm_;
  PartiDesc desc_;
  std::vector<T> data_;
};

/// Collective reduction over every *owned* element (halos excluded).
template <typename T, typename Op>
T reduceOwned(const BlockDistArray<T>& a, T init, Op op) {
  T local = init;
  a.ownedBox().forEach([&](const layout::Point& p, layout::Index) {
    local = op(local, a.at(p));
  });
  return a.comm().allreduceValue(local, op);
}

/// Collective global sum / max over the owned elements.
template <typename T>
T globalSum(const BlockDistArray<T>& a) {
  return reduceOwned(a, T{}, [](T x, T y) { return x + y; });
}
template <typename T>
T globalMax(const BlockDistArray<T>& a) {
  bool first = true;
  T local{};
  a.ownedBox().forEach([&](const layout::Point& p, layout::Index) {
    local = first ? a.at(p) : std::max(local, a.at(p));
    first = false;
  });
  // Empty blocks contribute the program-wide minimum-possible start value:
  // fold via max over the non-empty contributions only.
  struct Tagged {
    T value;
    int valid;
  };
  const Tagged mine{local, first ? 0 : 1};
  const auto all = a.comm().allgatherValue(mine);
  T best{};
  bool any = false;
  for (const Tagged& t : all) {
    if (t.valid == 0) continue;
    best = any ? std::max(best, t.value) : t.value;
    any = true;
  }
  MC_REQUIRE(any, "globalMax over an empty array");
  return best;
}

}  // namespace mc::parti
