#include "parti/section_copy.h"

namespace mc::parti {

namespace {

using layout::Index;
using layout::Point;
using layout::RegularSection;

/// Maps point `p`, which lies on section `from`, to the corresponding point
/// of conformant section `to` (dimension-wise position preservation).
Point mapPoint(const RegularSection& from, const RegularSection& to,
               const Point& p) {
  Point out;
  out.rank = p.rank;
  for (int d = 0; d < p.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    out[d] = to.lo[dd] + (p[d] - from.lo[dd]) / from.stride[dd] * to.stride[dd];
  }
  return out;
}

/// Maps a sub-lattice of `from` (same stride multiples, aligned lo/hi) onto
/// the corresponding sub-lattice of `to`.
RegularSection mapSection(const RegularSection& sub, const RegularSection& from,
                          const RegularSection& to) {
  RegularSection out;
  out.rank = sub.rank;
  for (int d = 0; d < sub.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    if (sub.hi[dd] < sub.lo[dd]) {
      // Empty dimension: keep it empty in the image.
      out.lo[dd] = 1;
      out.hi[dd] = 0;
      out.stride[dd] = 1;
      continue;
    }
    MC_CHECK(sub.stride[dd] % from.stride[dd] == 0);
    const Index steps = sub.stride[dd] / from.stride[dd];
    out.lo[dd] = to.lo[dd] +
                 (sub.lo[dd] - from.lo[dd]) / from.stride[dd] * to.stride[dd];
    out.hi[dd] = to.lo[dd] +
                 (sub.hi[dd] - from.lo[dd]) / from.stride[dd] * to.stride[dd];
    out.stride[dd] = steps * to.stride[dd];
  }
  return out;
}

Point boxLo(const RegularSection& s) {
  Point p;
  p.rank = s.rank;
  for (int d = 0; d < s.rank; ++d) p[d] = s.lo[static_cast<size_t>(d)];
  return p;
}

Point boxHi(const RegularSection& s) {
  Point p;
  p.rank = s.rank;
  for (int d = 0; d < s.rank; ++d) p[d] = s.hi[static_cast<size_t>(d)];
  return p;
}

}  // namespace

Schedule buildSectionCopySchedule(const PartiDesc& srcDesc,
                                  const layout::RegularSection& srcSec,
                                  const PartiDesc& dstDesc,
                                  const layout::RegularSection& dstSec,
                                  int myProc) {
  MC_REQUIRE(srcSec.rank == dstSec.rank,
             "sections must have equal rank (%d vs %d)", srcSec.rank,
             dstSec.rank);
  for (int d = 0; d < srcSec.rank; ++d) {
    MC_REQUIRE(srcSec.count(d) == dstSec.count(d),
               "sections must be conformant: dim %d has %lld vs %lld elements",
               d, static_cast<long long>(srcSec.count(d)),
               static_cast<long long>(dstSec.count(d)));
  }
  Schedule sched;
  const PartiAddr mySrcAddr = srcDesc.addrOf(myProc);
  const PartiAddr myDstAddr = dstDesc.addrOf(myProc);

  // --- sends: section elements I own in the source array ---------------
  const RegularSection myBoxSrc = srcDesc.decomp.ownedBox(myProc);
  if (!myBoxSrc.empty()) {
    const RegularSection minePart =
        srcSec.clampToBox(boxLo(myBoxSrc), boxHi(myBoxSrc));
    if (!minePart.empty()) {
      const RegularSection mineInDst = mapSection(minePart, srcSec, dstSec);
      for (int q = 0; q < dstDesc.decomp.nprocs(); ++q) {
        const RegularSection qBox = dstDesc.decomp.ownedBox(q);
        if (qBox.empty()) continue;
        const RegularSection part =
            mineInDst.clampToBox(boxLo(qBox), boxHi(qBox));
        if (part.empty()) continue;
        if (q == myProc) {
          // Local transfer; enumerated in dst row-major order like remote
          // lanes, pairing (my src offset, my dst offset).
          part.forEach([&](const Point& pDst, Index) {
            const Point pSrc = mapPoint(dstSec, srcSec, pDst);
            sched.localPairs.emplace_back(
                mySrcAddr.offsetOf(pSrc),
                myDstAddr.offsetOf(pDst));
          });
          continue;
        }
        OffsetPlan plan;
        plan.peer = q;
        plan.offsets.reserve(static_cast<size_t>(part.numElements()));
        part.forEach([&](const Point& pDst, Index) {
          const Point pSrc = mapPoint(dstSec, srcSec, pDst);
          plan.offsets.push_back(mySrcAddr.offsetOf(pSrc));
        });
        sched.sends.push_back(std::move(plan));
      }
    }
  }

  // --- recvs: section elements I own in the destination array ----------
  const RegularSection myBoxDst = dstDesc.decomp.ownedBox(myProc);
  if (!myBoxDst.empty()) {
    const RegularSection minePart =
        dstSec.clampToBox(boxLo(myBoxDst), boxHi(myBoxDst));
    if (!minePart.empty()) {
      const RegularSection mineInSrc = mapSection(minePart, dstSec, srcSec);
      for (int q = 0; q < srcDesc.decomp.nprocs(); ++q) {
        if (q == myProc) continue;  // local pairs recorded on the send side
        const RegularSection qBox = srcDesc.decomp.ownedBox(q);
        if (qBox.empty()) continue;
        const RegularSection part =
            mineInSrc.clampToBox(boxLo(qBox), boxHi(qBox));
        if (part.empty()) continue;
        // Enumerate in *destination* row-major order to match the sender.
        const RegularSection partInDst = mapSection(part, srcSec, dstSec);
        OffsetPlan plan;
        plan.peer = q;
        plan.offsets.reserve(static_cast<size_t>(partInDst.numElements()));
        partInDst.forEach([&](const Point& pDst, Index) {
          plan.offsets.push_back(myDstAddr.offsetOf(pDst));
        });
        sched.recvs.push_back(std::move(plan));
      }
    }
  }
  sched.sortByPeer();
  return sched;
}

}  // namespace mc::parti
