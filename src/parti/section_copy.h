// Regular-section copy between two Parti arrays (Multiblock Parti's
// native inter-block move, used for multiblock boundary updates — paper
// Section 5.3).
//
// The source and destination sections must be *conformant*: equal rank and
// equal element counts per dimension.  The copy pairs elements dimension by
// dimension (the natural multiblock correspondence).  The schedule builder
// uses box calculus — intersections of the sections with owner blocks — so
// its cost scales with the number of processors and *locally owned* section
// elements, not with the global section size.  This is what makes the
// special-purpose Parti builder faster than the general Meta-Chaos builder
// in Table 5, and the comparison is a headline result of the paper.
#pragma once

#include "parti/dist_array.h"
#include "parti/schedule.h"

namespace mc::parti {

/// Builds the copy schedule for `myProc`.  Pure local computation (this is
/// the zero-communication build the paper notes for Multiblock Parti in
/// Table 5).
Schedule buildSectionCopySchedule(const PartiDesc& srcDesc,
                                  const layout::RegularSection& srcSec,
                                  const PartiDesc& dstDesc,
                                  const layout::RegularSection& dstSec,
                                  int myProc);

/// Executes the copy (collective): src's section elements land in dst's
/// section, dimension-wise.
template <typename T>
void sectionCopy(const Schedule& sched, const BlockDistArray<T>& src,
                 BlockDistArray<T>& dst) {
  transport::Comm& comm = src.comm();
  const int tag = comm.nextUserTag();
  execute<T>(comm, sched, src.raw(), dst.raw(), tag);
}

}  // namespace mc::parti
