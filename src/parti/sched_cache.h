// Cached Parti schedule builders.
//
// Parti builds are pure local computation, so caching needs no
// cross-processor agreement: every rank keys on the same replicated
// descriptor state and therefore hits and misses in lockstep.  The cache is
// per virtual processor (thread_local), like the rank's arrays themselves;
// cached schedules come back run-compressed, so a reused ghost fill
// executes memcpy-wise from the second time-step on.
#pragma once

#include "parti/dist_array.h"
#include "parti/schedule.h"
#include "sched/schedule_cache.h"

namespace mc::parti {

/// The calling rank's cache of Parti-built schedules; ghost fills and
/// section copies share it (their keys are salted apart).
sched::KeyedCache<Schedule>& partiScheduleCache();

/// Cached buildGhostSchedule.
std::shared_ptr<const Schedule> cachedGhostSchedule(const PartiDesc& desc,
                                                    int myProc);

/// Cached buildSectionCopySchedule.
std::shared_ptr<const Schedule> cachedSectionCopySchedule(
    const PartiDesc& srcDesc, const layout::RegularSection& srcSec,
    const PartiDesc& dstDesc, const layout::RegularSection& dstSec,
    int myProc);

/// Contribution of a Parti descriptor to a cache key.
void hashPartiDesc(HashStream& h, const PartiDesc& desc);

}  // namespace mc::parti
