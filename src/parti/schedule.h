// Parti communication schedules — shared inspector/executor machinery.
// See src/sched/schedule.h (data structures) and src/sched/executor.h
// (execution) for the implementation; Parti re-exports the names so its API
// reads as a self-contained library.
#pragma once

#include "sched/executor.h"
#include "sched/schedule.h"

namespace mc::parti {

using sched::DrainOrder;
using sched::Executor;
using sched::OffsetPlan;
using sched::Schedule;
using sched::execute;
using sched::executeAdd;

}  // namespace mc::parti
