// Parti communication schedules — shared inspector/executor machinery.
// See src/sched/schedule.h for the implementation; Parti re-exports the
// names so its API reads as a self-contained library.
#pragma once

#include "sched/schedule.h"

namespace mc::parti {

using sched::OffsetPlan;
using sched::Schedule;
using sched::execute;
using sched::executeAdd;

}  // namespace mc::parti
