// Structured-mesh sweeps (the regular half of the paper's Figure 1 code).
//
// Loop 1 of Figure 1:
//   forall (i = 2:n1-1, j = 2:n2-1)
//     a(i,j) = a(i,j-1) + a(i-1,j) + a(i+1,j) + a(i,j+1)
//
// i.e. a Jacobi-style 4-point update over the interior.  The executor
// exchanges ghost cells, then updates owned interior points from the *old*
// values (forall semantics), using a scratch copy of the local block.
#pragma once

#include "parti/ghost.h"

namespace mc::parti {

/// One forall sweep of the 4-point stencil over the interior of `a`
/// (2-D array with ghost width >= 1).  Collective.
template <typename T>
void stencilSweep(BlockDistArray<T>& a, const Schedule& ghostSched,
                  std::vector<T>& scratch) {
  MC_REQUIRE(a.globalShape().rank == 2, "stencilSweep expects a 2-D array");
  MC_REQUIRE(a.ghost() >= 1, "stencilSweep needs a ghost width of at least 1");
  exchangeGhosts(a, ghostSched);

  a.comm().compute([&] {
    const std::span<const T> data = a.raw();
    scratch.assign(data.begin(), data.end());
    const layout::RegularSection box = a.ownedBox();
    if (box.empty()) return;
    const layout::Shape& global = a.globalShape();
    const layout::Shape padded =
        a.desc().paddedShape(a.comm().rank());
    const layout::Index rowStride = padded[1];
    const std::span<T> out = a.raw();
    // Interior of the *global* mesh: 1..n-2 in both dimensions.
    const layout::Index iLo = std::max<layout::Index>(box.lo[0], 1);
    const layout::Index iHi = std::min<layout::Index>(box.hi[0], global[0] - 2);
    const layout::Index jLo = std::max<layout::Index>(box.lo[1], 1);
    const layout::Index jHi = std::min<layout::Index>(box.hi[1], global[1] - 2);
    const int g = a.ghost();
    for (layout::Index i = iLo; i <= iHi; ++i) {
      const layout::Index li = i - box.lo[0] + g;
      for (layout::Index j = jLo; j <= jHi; ++j) {
        const layout::Index lj = j - box.lo[1] + g;
        const layout::Index c = li * rowStride + lj;
        out[static_cast<size_t>(c)] =
            scratch[static_cast<size_t>(c - 1)] +
            scratch[static_cast<size_t>(c - rowStride)] +
            scratch[static_cast<size_t>(c + rowStride)] +
            scratch[static_cast<size_t>(c + 1)];
      }
    }
  });
}

}  // namespace mc::parti
