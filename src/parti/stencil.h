// Structured-mesh sweeps (the regular half of the paper's Figure 1 code).
//
// Loop 1 of Figure 1:
//   forall (i = 2:n1-1, j = 2:n2-1)
//     a(i,j) = a(i,j-1) + a(i-1,j) + a(i+1,j) + a(i,j+1)
//
// i.e. a Jacobi-style 4-point update over the interior.  The sweep is a
// split-phase overlap pipeline: it snapshots the local block, *starts* the
// ghost exchange, computes every interior point whose reads and write avoid
// the exchange's footprint while messages are in flight (polling the
// exchange between rows), then finishes the exchange and computes the
// deferred boundary-adjacent points.  Results are bitwise identical to the
// old exchange-then-sweep ordering: a point's inputs come from the scratch
// snapshot, which is refreshed at exactly the exchange-touched offsets
// after finish, so every point reads the same values either way.
#pragma once

#include "obs/span.h"
#include "parti/ghost.h"

namespace mc::parti {

namespace detail {

/// The overlap pipeline over a bound ghost-fill executor (see file
/// comment).  `scratch` persists across sweeps to avoid reallocation.
template <typename T>
void stencilSweepOverlapped(BlockDistArray<T>& a, Executor<T>& exec,
                            std::vector<T>& scratch) {
  MC_REQUIRE(a.globalShape().rank == 2, "stencilSweep expects a 2-D array");
  MC_REQUIRE(a.ghost() >= 1, "stencilSweep needs a ghost width of at least 1");
  transport::Comm& comm = a.comm();
  const std::span<T> out = a.raw();

  // Snapshot *before* the exchange: owned cells hold the sweep's inputs
  // already; exchange-touched offsets are refreshed after finish.
  comm.compute([&] { scratch.assign(out.begin(), out.end()); });

  auto pending = exec.start(a.raw());
  const sched::IndexSet& touched = exec.footprint().dstTouched;
  const sched::IndexSet& pinnedSrc = exec.footprint().localSrc;

  const layout::RegularSection box = a.ownedBox();
  std::vector<layout::Index> deferred;
  // Interior sweep riding under the in-flight exchange; in a trace this
  // compute span sits alongside the exchange's recvWait instead of after it.
  obs::ScopedSpan interiorSpan(obs::phase::kCompute);
  if (!box.empty()) {
    const layout::Shape& global = a.globalShape();
    const layout::Shape padded = a.desc().paddedShape(comm.rank());
    const layout::Index rowStride = padded[1];
    const int g = a.ghost();
    // Interior of the *global* mesh: 1..n-2 in both dimensions.
    const layout::Index iLo = std::max<layout::Index>(box.lo[0], 1);
    const layout::Index iHi = std::min<layout::Index>(box.hi[0], global[0] - 2);
    const layout::Index jLo = std::max<layout::Index>(box.lo[1], 1);
    const layout::Index jHi = std::min<layout::Index>(box.hi[1], global[1] - 2);
    const layout::Index ljLo = jLo - box.lo[1] + g;
    const layout::Index ljHi = jHi - box.lo[1] + g;
    std::vector<char> defer(
        static_cast<std::size_t>(std::max<layout::Index>(ljHi - ljLo + 1, 0)));
    for (layout::Index i = iLo; i <= iHi; ++i) {
      const layout::Index li = i - box.lo[0] + g;
      const layout::Index rowBase = li * rowStride;
      comm.compute([&] {
        // A point c defers when any of its four reads (c±1, c∓rowStride)
        // or c itself lies in the exchange's touched set (its snapshot
        // value is stale until finish), or when writing c would clobber a
        // local-copy source the finish still reads.
        std::fill(defer.begin(), defer.end(), 0);
        const auto markCol = [&](layout::Index lj) {
          if (lj >= ljLo && lj <= ljHi) defer[static_cast<std::size_t>(lj - ljLo)] = 1;
        };
        touched.forEachIn(rowBase + ljLo - 1, rowBase + ljHi + 2,
                          [&](layout::Index off) {
                            const layout::Index lj = off - rowBase;
                            markCol(lj - 1);
                            markCol(lj);
                            markCol(lj + 1);
                          });
        touched.forEachIn(rowBase - rowStride + ljLo,
                          rowBase - rowStride + ljHi + 1,
                          [&](layout::Index off) {
                            markCol(off - (rowBase - rowStride));
                          });
        touched.forEachIn(rowBase + rowStride + ljLo,
                          rowBase + rowStride + ljHi + 1,
                          [&](layout::Index off) {
                            markCol(off - (rowBase + rowStride));
                          });
        pinnedSrc.forEachIn(rowBase + ljLo, rowBase + ljHi + 1,
                            [&](layout::Index off) { markCol(off - rowBase); });
        for (layout::Index lj = ljLo; lj <= ljHi; ++lj) {
          const layout::Index c = rowBase + lj;
          if (defer[static_cast<std::size_t>(lj - ljLo)]) {
            deferred.push_back(c);
            continue;
          }
          out[static_cast<size_t>(c)] =
              scratch[static_cast<size_t>(c - 1)] +
              scratch[static_cast<size_t>(c - rowStride)] +
              scratch[static_cast<size_t>(c + rowStride)] +
              scratch[static_cast<size_t>(c + 1)];
        }
      });
      // Consume whatever ghost traffic has already arrived; the row's
      // compute advanced the virtual clock past those arrivals, so the
      // finish below pays no latency for them.
      pending.poll();
    }
  }
  interiorSpan.end();
  pending.finish(a.raw());

  obs::ScopedSpan boundarySpan(obs::phase::kCompute);
  comm.compute([&] {
    // Refresh the snapshot at exactly the offsets the exchange wrote, then
    // compute the deferred points — now reading fresh ghost values.
    touched.forEach([&](layout::Index off) {
      scratch[static_cast<size_t>(off)] = out[static_cast<size_t>(off)];
    });
    const layout::Shape padded = a.desc().paddedShape(comm.rank());
    const layout::Index rowStride = padded[1];
    for (const layout::Index c : deferred) {
      out[static_cast<size_t>(c)] =
          scratch[static_cast<size_t>(c - 1)] +
          scratch[static_cast<size_t>(c - rowStride)] +
          scratch[static_cast<size_t>(c + rowStride)] +
          scratch[static_cast<size_t>(c + 1)];
    }
  });
}

}  // namespace detail

/// One forall sweep of the 4-point stencil over the interior of `a`
/// (2-D array with ghost width >= 1).  Collective.  One-shot form: binds a
/// temporary executor to `ghostSched`; time-step loops should hold a
/// GhostExchanger and use the overload below to keep persistent buffers
/// and the cached footprint.
template <typename T>
void stencilSweep(BlockDistArray<T>& a, const Schedule& ghostSched,
                  std::vector<T>& scratch) {
  Executor<T> exec(a.comm(), ghostSched);
  detail::stencilSweepOverlapped(a, exec, scratch);
}

/// Steady-state form over a persistent GhostExchanger: split-phase ghost
/// traffic overlaps the interior update every step, with zero transport
/// payload copies or allocations.
template <typename T>
void stencilSweep(BlockDistArray<T>& a, GhostExchanger<T>& ghosts,
                  std::vector<T>& scratch) {
  detail::stencilSweepOverlapped(a, ghosts.executor(), scratch);
}

}  // namespace mc::parti
