#include "server/client_session.h"

#include <optional>
#include <utility>
#include <vector>

#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"
#include "sched/executor.h"
#include "sched/serialize.h"
#include "server/protocol.h"

namespace mc::server {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

struct ClientSession::Impl {
  transport::Comm& c;
  SessionConfig cfg;
  parti::BlockDistArray<double> A;
  parti::BlockDistArray<double> x;
  parti::BlockDistArray<double> y;
  core::SetOfRegions mSet, vSet;
  long long sessionId = -1;
  bool attached = false;

  // The send half for x (built or downloaded) and its reverse for y; the
  // executors persist across requests (steady-state zero-copy runs).
  std::shared_ptr<const core::McSchedule> xSendKeepAlive;
  std::shared_ptr<const sched::Schedule> xPlan;
  std::shared_ptr<const sched::Schedule> yPlan;
  std::optional<sched::Executor<double>> xSendExec;
  std::optional<sched::Executor<double>> yRecvExec;

  Impl(transport::Comm& comm, SessionConfig config)
      : c(comm),
        cfg(config),
        A(comm,
          layout::BlockDecomp(Shape::of({config.n, config.n}),
                              {comm.size(), 1}),
          0),
        x(comm,
          layout::BlockDecomp(Shape::of({config.n + config.pad}),
                              {comm.size()}),
          0),
        y(comm,
          layout::BlockDecomp(Shape::of({config.n + config.pad}),
                              {comm.size()}),
          0) {
    const Index n = cfg.n;
    mSet.add(core::Region::section(
        RegularSection::box({0, 0}, {n - 1, n - 1})));
    vSet.add(
        core::Region::section(RegularSection::box({0}, {n - 1})));
    A.fillByPoint([this](const Point& p) {
      return matrixEntry(cfg.matrixId, p[0], p[1]);
    });
  }

  AttachStats attach() {
    MC_REQUIRE(!attached, "session already attached");
    const int server = cfg.serverProgram;
    c.barrier();
    const double t0 = c.now();

    // The canonical layout fingerprint is rank 0's (adapter fingerprints
    // are rank-local); broadcast it so the whole program presents one key.
    HashStream::Digest d = core::scheduleSideDigest(
        core::PartiAdapter::describe(x), vSet);
    d = c.bcastValue(d, 0);

    AttachAck ack{};
    if (c.rank() == 0) {
      ControlMsg msg;
      msg.kind = kMsgAttach;
      msg.n = cfg.n;
      msg.matrixId = cfg.matrixId;
      msg.method = static_cast<int>(cfg.method);
      msg.clientProcs = c.size();
      msg.xDigest[0] = d[0];
      msg.xDigest[1] = d[1];
      c.sendValueTo(server, 0, kControlTag, msg);
      ack = c.recvValueFrom<AttachAck>(server, 0, kControlTag);
    }
    ack = c.bcastValue(ack, 0);
    sessionId = ack.sessionId;

    if (ack.cached == 0) {
      // First client with this layout: collective build paired with the
      // server's getOrBuildRecvByLayout, then upload the serialized send
      // half so later tenants skip their inspector entirely.
      xSendKeepAlive = core::defaultScheduleCache().getOrBuildSend(
          c, core::PartiAdapter::describe(x), vSet, server, cfg.method);
      xPlan = std::shared_ptr<const sched::Schedule>(
          xSendKeepAlive, &xSendKeepAlive->plan);
      c.sendBytesTo(server, 0, kControlTag,
                    sched::serializeSchedule(xSendKeepAlive->plan));
    } else {
      transport::Message m = c.recvMsgFrom(server, 0, kControlTag);
      xPlan = std::make_shared<const sched::Schedule>(
          sched::deserializeSchedule(m.payload));
    }
    yPlan = std::make_shared<const sched::Schedule>(sched::reverse(*xPlan));
    xSendExec.emplace(
        sched::Executor<double>::sender(c, xPlan, server));
    yRecvExec.emplace(
        sched::Executor<double>::receiver(c, yPlan, server));
    c.barrier();
    const double t1 = c.now();

    if (ack.needMatrix != 0) {
      const auto mSend = core::defaultScheduleCache().getOrBuildSend(
          c, core::PartiAdapter::describe(A), mSet, server, cfg.method);
      core::dataMoveSend<double>(c, *mSend, A.raw());
      // The ship completes when the server acknowledges unpacking.
      if (c.rank() == 0) {
        (void)c.recvValueFrom<int>(server, 0, kControlTag);
      }
    }
    c.barrier();
    const double t2 = c.now();

    attached = true;
    AttachStats stats;
    stats.scheduleSeconds = t1 - t0;
    stats.matrixSeconds = t2 - t1;
    stats.sharedSchedule = ack.cached != 0;
    stats.shippedMatrix = ack.needMatrix != 0;
    return stats;
  }

  RequestResult request() {
    MC_REQUIRE(attached, "request() before attach()");
    const int server = cfg.serverProgram;
    RequestResult res;
    double t0 = 0;
    if (c.rank() == 0) {
      t0 = c.now();
      ControlMsg msg;
      msg.kind = kMsgSubmit;
      msg.sessionId = sessionId;
      c.sendValueTo(server, 0, kControlTag, msg);
      SubmitAck ack = c.recvValueFrom<SubmitAck>(server, 0, kControlTag);
      if (ack.granted == 0) {
        // Backpressure: honor the server's hint, then retry.  A retry is
        // never bounced again — the server holds it for a deferred grant.
        res.backedOff = true;
        c.advance(ack.retryAfterSeconds);
        msg.retry = 1;
        c.sendValueTo(server, 0, kControlTag, msg);
        ack = c.recvValueFrom<SubmitAck>(server, 0, kControlTag);
        MC_REQUIRE(ack.granted != 0, "retried submit must be granted");
      }
    }
    // Non-root ranks send immediately; their operand blocks wait in the
    // server's mailboxes until the batch is staged.
    xSendExec->runSend(x.raw());
    yRecvExec->runRecv(y.raw());
    if (c.rank() == 0) {
      const DoneMsg done = c.recvValueFrom<DoneMsg>(server, 0, kControlTag);
      res.latencySeconds = c.now() - t0;
      res.serverComputeSeconds = done.computeSeconds;
    }
    res = c.bcastValue(res, 0);
    return res;
  }

  void detach() {
    MC_REQUIRE(attached, "detach() before attach()");
    c.barrier();
    if (c.rank() == 0) {
      ControlMsg msg;
      msg.kind = kMsgDetach;
      msg.sessionId = sessionId;
      c.sendValueTo(cfg.serverProgram, 0, kControlTag, msg);
    }
    attached = false;
  }
};

ClientSession::ClientSession(transport::Comm& comm, SessionConfig config)
    : impl_(std::make_unique<Impl>(comm, config)) {}

ClientSession::~ClientSession() = default;

AttachStats ClientSession::attach() { return impl_->attach(); }
RequestResult ClientSession::request() { return impl_->request(); }
void ClientSession::detach() { impl_->detach(); }

parti::BlockDistArray<double>& ClientSession::x() { return impl_->x; }
parti::BlockDistArray<double>& ClientSession::y() { return impl_->y; }
parti::BlockDistArray<double>& ClientSession::matrix() { return impl_->A; }
long long ClientSession::sessionId() const { return impl_->sessionId; }

}  // namespace mc::server
