// Control-plane protocol of the multi-tenant compute server.
//
// One server program hosts many client programs over a single World::run:
// clients attach (registering a session against the server's persistent
// state), submit matvec requests, and detach — all through fixed-tag
// point-to-point control messages between the client's rank 0 and the
// server's rank 0.  Control traffic deliberately lives on kControlTag, a
// region of tag space untouched by the paired inter-program tag counters
// (user tags occupy [1<<20, 1<<20 + 1<<18), inter-program tags start at
// 1<<24), so an attach/submit/detach never perturbs the tag pairing that
// data schedules depend on — sessions can come and go without rebuilding
// or even pausing the server's data plane.
#pragma once

#include <cstdint>

#include "layout/index.h"

namespace mc::server {

/// Fixed tag for all control-plane messages (see file comment).
inline constexpr int kControlTag = 1 << 23;

/// Hard ceiling on requests coalesced into one batch (the Command POD
/// carries member session ids inline).  ServerConfig::maxBatch must not
/// exceed it.
inline constexpr int kMaxBatch = 16;

enum MsgKind : int {
  kMsgAttach = 1,
  kMsgSubmit = 2,
  kMsgDetach = 3,
};

/// Client rank 0 -> server rank 0.  POD (sendValueTo/recvValueFrom).
struct ControlMsg {
  int kind = 0;  // MsgKind
  long long sessionId = -1;  // kMsgSubmit / kMsgDetach
  layout::Index n = 0;       // kMsgAttach: matrix dimension (must match the
                             // server's configured n)
  int matrixId = 0;          // kMsgAttach: which matrix this session applies
  int method = 0;            // kMsgAttach: core::Method as int
  int clientProcs = 0;       // kMsgAttach: client program width
  int retry = 0;             // kMsgSubmit: 1 after an admission rejection
  // kMsgAttach: the client's canonical (rank 0) operand-layout fingerprint
  // — the cross-client sharing key.
  std::uint64_t xDigest[2] = {0, 0};
};

/// Server rank 0 -> client rank 0, answering kMsgAttach.
struct AttachAck {
  long long sessionId = -1;
  int cached = 0;      // 1: layout already known — download the serialized
                       // send schedule instead of running an inspector
  int needMatrix = 0;  // 1: first session for this matrixId — ship it
};

/// Server rank 0 -> client rank 0, answering kMsgSubmit.
struct SubmitAck {
  int granted = 0;
  // Backpressure signal when not granted: the server's estimate of how long
  // the client should back off before retrying.
  double retryAfterSeconds = 0;
};

/// Server rank 0 -> client rank 0 after the request's result vector has
/// been sent: per-request share of the batch's compute time.
struct DoneMsg {
  double computeSeconds = 0;
};

/// The matrix every session multiplies against, parameterized by matrixId
/// so distinct matrices force distinct server-side arrays (matrixId 0
/// reproduces the original single-session matvec values).
inline double matrixEntry(int matrixId, layout::Index i, layout::Index j) {
  return 1.0 / (1.0 + static_cast<double>(i + j) +
                static_cast<double>(matrixId));
}

}  // namespace mc::server
