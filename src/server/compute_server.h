// ComputeServer — a long-lived, multi-tenant matvec service.
//
// One server program serves many client programs over a single world run:
// sessions attach and detach dynamically (no server rebuild between
// tenants), a bounded request queue applies admission control with a
// backpressure hint, and a batching scheduler coalesces compatible
// requests — same operand-layout fingerprint, same target matrix — into
// one fused operand exchange and one server compute sweep
// (MatvecEngine::multiplyBatch).  Batches execute split-phase: batch k+1's
// operand receives are staged before batch k's multiply starts, so its
// messages drain underneath the compute.
//
// Cross-client schedule sharing: the server keys its ScheduleCache lookups
// on the (client layout fingerprint, server layout fingerprint) pair
// rather than session or program identity
// (ScheduleCache::getOrBuildRecvByLayout), and additionally archives the
// *client-side* send halves in serialized form.  The Nth client presenting
// a layout some earlier client already attached with pays zero inspector
// cost: the server hits its cache, and the client downloads the serialized
// send schedule instead of running a collective build.
//
// Every server rank constructs one ComputeServer and calls run();
// rank 0 additionally runs the control plane, broadcasting each decision
// as a Command so all ranks execute identical handler sequences.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/schedule_builder.h"
#include "transport/comm.h"
#include "util/stats.h"

namespace mc::server {

struct ServerConfig {
  layout::Index n = 256;   // matrix dimension (all sessions share it)
  int totalSessions = 1;   // run() returns after this many detaches
  int queueDepth = 8;      // admission bound on granted, unstaged requests
  int maxBatch = 8;        // coalescing limit (<= kMaxBatch)
  core::Method method = core::Method::kCooperation;
  double flopsPerSecond = 4e6;  // era-calibrated arithmetic rate
  /// Warm-start directory (empty = disabled).  run() restores the schedule
  /// cache, the layout-fingerprint archive, and the shipped matrices from
  /// it on entry (when a complete snapshot is present) and saves them back
  /// on exit, so the first same-layout attach after a restart is a sharing
  /// hit with zero inspector builds on either side.
  std::string snapshotDir;
};

/// Control-plane accounting, meaningful on server rank 0 after run().
struct ServerStats {
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
  // Layout-keyed schedule sharing: a hit means the attaching client paid
  // zero inspector cost.
  std::uint64_t schedShareHits = 0;
  std::uint64_t schedShareMisses = 0;
  std::uint64_t matrixShips = 0;
  // Admission control.
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // first-attempt submits bounced with a hint
  std::uint64_t deferred = 0;  // retries held for a deferred grant
  std::size_t maxQueueDepth = 0;
  // Batching scheduler.
  std::uint64_t batches = 0;
  std::uint64_t batchedRequests = 0;
  int maxBatchOccupancy = 0;
  RunningStat batchOccupancy;  // requests per batch
  // Sessions sharing one layout slot (sharing degree).
  std::size_t maxSharingDegree = 0;

  double hitRate() const {
    const double total =
        static_cast<double>(schedShareHits + schedShareMisses);
    return total > 0 ? static_cast<double>(schedShareHits) / total : 0.0;
  }
};

class ComputeServer {
 public:
  /// Per-rank construction (collective-free); `comm` must outlive it.
  ComputeServer(transport::Comm& comm, ServerConfig config);
  ~ComputeServer();
  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  /// Serves until totalSessions sessions have detached.  Collective over
  /// the server program; clients drive it via ClientSession.
  void run();

  const ServerStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mc::server
