// ClientSession — the client half of the compute-server protocol.
//
// A client program constructs one ClientSession per tenancy, attach()es
// (registering with the server and either building its send schedule
// collectively or — when the server has seen this layout before —
// downloading the archived serialized schedule at zero inspector cost),
// then issues any number of request()s (each one matvec round trip through
// the server's admission control and batching scheduler), and detach()es.
// Sessions are dynamic: programs may attach, detach, and re-attach at any
// point in the server's life without the server rebuilding anything.
#pragma once

#include <memory>

#include "core/schedule_builder.h"
#include "parti/dist_array.h"
#include "transport/comm.h"

namespace mc::server {

struct SessionConfig {
  layout::Index n = 256;  // matrix dimension (must match the server's)
  // Extra trailing elements on the client's operand/result vectors.  The
  // requested region is always [0, n-1], but the padded distribution gives
  // the session a distinct layout fingerprint — the knob benchmarks and
  // tests turn to control how many distinct layouts the server sees.
  layout::Index pad = 0;
  int matrixId = 0;
  int serverProgram = 0;
  core::Method method = core::Method::kCooperation;
  double flopsPerSecond = 4e6;  // for the client-local alternative
};

struct AttachStats {
  double scheduleSeconds = 0;  // attach handshake + schedule build/download
  double matrixSeconds = 0;    // matrix schedule + ship (0 when not needed)
  bool sharedSchedule = false;  // downloaded an earlier client's schedule
  bool shippedMatrix = false;
};

struct RequestResult {
  double latencySeconds = 0;  // submit -> result received, rank 0's clock
  double serverComputeSeconds = 0;  // this request's share of its batch
  bool backedOff = false;  // admission bounced the first submit
};

class ClientSession {
 public:
  /// Per-rank construction; allocates the client's Parti arrays and fills
  /// the matrix (matrixEntry).  Collective-free.
  ClientSession(transport::Comm& comm, SessionConfig config);
  ~ClientSession();
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Registers with the server.  Collective over the client program (and,
  /// on a schedule miss, over the server program too).
  AttachStats attach();

  /// One y = A x round trip: fill x() first.  Collective over the client
  /// program; every rank returns the same result (rank 0's timings).
  RequestResult request();

  /// Retires the session.  Collective over the client program.
  void detach();

  parti::BlockDistArray<double>& x();
  parti::BlockDistArray<double>& y();
  parti::BlockDistArray<double>& matrix();
  long long sessionId() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mc::server
