#include "server/compute_server.h"

#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "core/adapters/hpf_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"
#include "hpfrt/matvec.h"
#include "obs/metrics.h"
#include "sched/serialize.h"
#include "server/protocol.h"
#include "snapshot/array_io.h"
#include "snapshot/mc_schedule_io.h"
#include "snapshot/snapshot.h"
#include "util/blob_io.h"

namespace mc::server {

namespace {

enum CmdKind : int {
  kCmdAttach = 1,
  kCmdStage = 2,
  kCmdExec = 3,
  kCmdDetach = 4,
  kCmdShutdown = 5,
};

/// One control-plane decision, broadcast from server rank 0 so every rank
/// executes the identical handler sequence in the identical order — the
/// invariant that keeps collective builds, barriers, and per-client
/// inter-program tag counters aligned across the server program.
struct Command {
  int kind = 0;  // CmdKind
  int client = -1;
  long long sessionId = -1;
  int layoutSlot = -1;
  int cached = 0;
  int needMatrix = 0;
  int matrixId = 0;
  int method = 0;
  int count = 0;  // kCmdStage: batch occupancy
  std::uint64_t clientXDigest[2] = {0, 0};
  long long members[kMaxBatch] = {0};  // kCmdStage: batched session ids
};
static_assert(std::is_trivially_copyable_v<Command>);

ControlMsg parseControl(const transport::Message& m) {
  MC_REQUIRE(m.payload.size() == sizeof(ControlMsg),
             "malformed control message (%zu bytes)", m.payload.size());
  ControlMsg msg;
  std::memcpy(&msg, m.payload.data(), sizeof(msg));
  return msg;
}

}  // namespace

struct ComputeServer::Impl {
  transport::Comm& c;
  ServerConfig cfg;
  ServerStats stats;

  // Data plane, identical on every server rank.
  core::SetOfRegions mSet, vSet;
  hpfrt::HpfArray<double> x;  // operand-distribution anchor
  hpfrt::MatvecEngine<double> engine;
  layout::Index localLen;

  /// One attached layout: the server's receive half (cache-shared), plus
  /// the reversed send half for results.  Indexed by slot; identical on
  /// every rank.
  struct LayoutEntry {
    std::shared_ptr<const core::McSchedule> xRecv;
    std::shared_ptr<const sched::Schedule> xPlan;  // alias into xRecv
    std::shared_ptr<const sched::Schedule> yPlan;  // reversed
  };
  std::vector<LayoutEntry> layouts;

  /// A live session: persistent executor halves bound to the layout
  /// slot's plans, retargeted to this session's client program.
  struct Session {
    int client;
    int layoutSlot;
    int matrixId;
    sched::Executor<double> xRecv;
    sched::Executor<double> ySend;
  };
  std::map<long long, std::unique_ptr<Session>> sessions;
  std::map<int, std::unique_ptr<hpfrt::HpfArray<double>>> matrices;

  /// A staged batch: split-phase receives already posted, so its operand
  /// blocks drain underneath the preceding batch's multiply.
  struct Staged {
    Command cmd;
    std::vector<sched::Executor<double>::Pending> pendings;
    std::vector<double> xs;  // k operand blocks, back to back
  };
  std::deque<Staged> staged;
  std::vector<double> ys;

  // Control plane (rank 0 only).
  int clientLo = 0, clientHi = 0;  // contiguous client program span
  long long nextSession = 0;
  // (client layout digest, client width, method) -> layout slot.
  std::map<std::tuple<std::uint64_t, std::uint64_t, int, int>, int> slotOf;
  // Archived client-side send halves, serialized: slot -> client rank ->
  // blob.  A cached attach downloads these instead of building.
  std::vector<std::vector<std::vector<std::byte>>> blobs;
  std::vector<std::size_t> sharingDegree;  // attaches per slot
  struct Request {
    long long sessionId;
  };
  std::deque<Request> queue;     // granted, not yet staged
  std::deque<Request> deferred;  // retried while full; grant is pending
  double perReqEstimate = 0;     // EMA of per-request compute seconds

  Impl(transport::Comm& comm, ServerConfig config)
      : c(comm),
        cfg(config),
        x(comm, hpfrt::matvecVectorDist(config.n, comm.size())),
        engine(x),
        localLen(engine.operandLocalLen()) {
    MC_REQUIRE(cfg.maxBatch >= 1 && cfg.maxBatch <= kMaxBatch,
               "maxBatch must be in [1, %d]", kMaxBatch);
    MC_REQUIRE(cfg.queueDepth >= 1, "queueDepth must be >= 1");
    const layout::Index n = cfg.n;
    mSet.add(core::Region::section(
        layout::RegularSection::box({0, 0}, {n - 1, n - 1})));
    vSet.add(
        core::Region::section(layout::RegularSection::box({0}, {n - 1})));
    // Clients are every program but ours; the span must be contiguous for
    // recvMsgAnyOfPrograms, so the server sits first or last.
    const int np = c.numPrograms();
    MC_REQUIRE(np >= 2, "a compute server needs at least one client program");
    if (c.program() == 0) {
      clientLo = 1;
      clientHi = np - 1;
    } else {
      MC_REQUIRE(c.program() == np - 1,
                 "server program must be first or last");
      clientLo = 0;
      clientHi = np - 2;
    }
    perReqEstimate = 2.0 * static_cast<double>(n) * static_cast<double>(n) /
                         (static_cast<double>(c.size()) *
                          cfg.flopsPerSecond) +
                     1e-3;
  }

  // --- shared handlers (all ranks, in broadcast order) ---------------------

  void dispatch(const Command& cmd) {
    switch (cmd.kind) {
      case kCmdAttach:
        handleAttach(cmd);
        break;
      case kCmdStage:
        handleStage(cmd);
        break;
      case kCmdExec:
        execFront();
        break;
      case kCmdDetach:
        sessions.erase(cmd.sessionId);
        break;
      default:
        MC_REQUIRE(false, "unknown server command %d", cmd.kind);
    }
  }

  void handleAttach(const Command& cmd) {
    if (cmd.cached == 0) {
      // First sighting of this layout: collective inspector paired with
      // the client's build, keyed on the layout fingerprints (not the
      // program id) so the entry serves every later client program.
      MC_REQUIRE(cmd.layoutSlot == static_cast<int>(layouts.size()));
      const HashStream::Digest d{cmd.clientXDigest[0], cmd.clientXDigest[1]};
      LayoutEntry e;
      e.xRecv = core::defaultScheduleCache().getOrBuildRecvByLayout(
          c, core::HpfAdapter::describe(x), vSet, cmd.client, d,
          static_cast<core::Method>(cmd.method));
      e.xPlan = std::shared_ptr<const sched::Schedule>(e.xRecv,
                                                       &e.xRecv->plan);
      e.yPlan = std::make_shared<const sched::Schedule>(
          sched::reverse(e.xRecv->plan));
      layouts.push_back(std::move(e));
      if (c.rank() == 0) {
        // Archive the client's serialized send halves for later tenants.
        std::vector<std::vector<std::byte>> perRank;
        const int np = c.programInfo(cmd.client).nprocs;
        perRank.reserve(static_cast<std::size_t>(np));
        for (int i = 0; i < np; ++i) {
          perRank.push_back(
              std::move(c.recvMsgFrom(cmd.client, i, kControlTag).payload));
        }
        blobs.push_back(std::move(perRank));
      }
    } else if (c.rank() == 0) {
      // Shared layout: the client skips its inspector entirely and
      // downloads the archived send half instead.
      const auto& perRank = blobs[static_cast<std::size_t>(cmd.layoutSlot)];
      for (std::size_t i = 0; i < perRank.size(); ++i) {
        c.sendBytesTo(cmd.client, static_cast<int>(i), kControlTag,
                      std::vector<std::byte>(perRank[i]));
      }
    }

    if (cmd.needMatrix != 0) {
      auto A = std::make_unique<hpfrt::HpfArray<double>>(
          c, hpfrt::matvecMatrixDist(cfg.n, c.size()));
      const auto mRecv = core::defaultScheduleCache().getOrBuildRecv(
          c, core::HpfAdapter::describe(*A), mSet, cmd.client,
          static_cast<core::Method>(cmd.method));
      core::dataMoveRecv<double>(c, *mRecv, A->raw());
      c.barrier();
      if (c.rank() == 0) c.sendValueTo(cmd.client, 0, kControlTag, 1);
      matrices[cmd.matrixId] = std::move(A);
    }

    const LayoutEntry& e = layouts[static_cast<std::size_t>(cmd.layoutSlot)];
    auto s = std::make_unique<Session>(Session{
        cmd.client, cmd.layoutSlot, cmd.matrixId,
        sched::Executor<double>::receiver(c, e.xPlan, cmd.client),
        sched::Executor<double>::sender(c, e.yPlan, cmd.client)});
    sessions.emplace(cmd.sessionId, std::move(s));
  }

  void handleStage(const Command& cmd) {
    Staged st;
    st.cmd = cmd;
    st.xs.resize(static_cast<std::size_t>(cmd.count) *
                 static_cast<std::size_t>(localLen));
    st.pendings.reserve(static_cast<std::size_t>(cmd.count));
    for (int j = 0; j < cmd.count; ++j) {
      st.pendings.push_back(
          sessions.at(cmd.members[j])->xRecv.startRecv());
    }
    staged.push_back(std::move(st));
  }

  void execFront() {
    MC_REQUIRE(!staged.empty());
    Staged st = std::move(staged.front());
    staged.pop_front();
    const int k = st.cmd.count;
    const hpfrt::HpfArray<double>& A = *matrices.at(st.cmd.matrixId);
    const layout::Index myRows = A.dist().localShape(c.rank())[0];
    const std::span<double> xs(st.xs);
    for (int j = 0; j < k; ++j) {
      st.pendings[static_cast<std::size_t>(j)].finish(xs.subspan(
          static_cast<std::size_t>(j) * static_cast<std::size_t>(localLen),
          static_cast<std::size_t>(localLen)));
    }
    ys.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(myRows));
    c.barrier();
    const double t0 = c.now();
    // Batch k+1's receives are already posted (handleStage); drain them
    // underneath this batch's compute.
    engine.multiplyBatch(A, xs, ys, k, [this] {
      if (staged.empty()) return;
      for (auto& p : staged.front().pendings) p.poll();
    });
    // Era-calibrated arithmetic cost, once for the fused sweep.
    c.advance(2.0 * static_cast<double>(myRows * cfg.n) *
              static_cast<double>(k) / cfg.flopsPerSecond);
    c.barrier();
    const double t1 = c.now();
    const std::span<const double> yspan(ys);
    for (int j = 0; j < k; ++j) {
      sessions.at(st.cmd.members[j])
          ->ySend.runSend(yspan.subspan(
              static_cast<std::size_t>(j) * static_cast<std::size_t>(myRows),
              static_cast<std::size_t>(myRows)));
    }
    if (c.rank() == 0) {
      const double per = (t1 - t0) / static_cast<double>(k);
      for (int j = 0; j < k; ++j) {
        c.sendValueTo(sessions.at(st.cmd.members[j])->client, 0, kControlTag,
                      DoneMsg{per});
      }
      perReqEstimate = 0.5 * perReqEstimate + 0.5 * per;
      stats.batches += 1;
      stats.batchedRequests += static_cast<std::uint64_t>(k);
      stats.batchOccupancy.add(static_cast<double>(k));
      if (k > stats.maxBatchOccupancy) stats.maxBatchOccupancy = k;
    }
  }

  // --- control plane (rank 0) ----------------------------------------------

  void issue(const Command& cmd) {
    c.bcastValue(cmd, 0);
    dispatch(cmd);
  }

  double backoffHint() const {
    return perReqEstimate *
           static_cast<double>(queue.size() + deferred.size() + 1);
  }

  void onAttach(const ControlMsg& msg, int srcGlobal) {
    MC_REQUIRE(msg.n == cfg.n,
               "session n=%lld does not match the server's n=%lld",
               static_cast<long long>(msg.n), static_cast<long long>(cfg.n));
    const int client = c.programOf(srcGlobal);
    const auto key = std::make_tuple(msg.xDigest[0], msg.xDigest[1],
                                     msg.clientProcs, msg.method);
    const auto it = slotOf.find(key);
    const bool cached = it != slotOf.end();
    const int slot =
        cached ? it->second : static_cast<int>(layouts.size());
    const bool needMatrix = matrices.find(msg.matrixId) == matrices.end();
    const long long sid = nextSession++;

    // Ack before the broadcast: on a miss both programs enter a collective
    // build next, and the client can only join once it knows the verdict.
    c.sendValueTo(client, 0, kControlTag,
                  AttachAck{sid, cached ? 1 : 0, needMatrix ? 1 : 0});

    Command cmd;
    cmd.kind = kCmdAttach;
    cmd.client = client;
    cmd.sessionId = sid;
    cmd.layoutSlot = slot;
    cmd.cached = cached ? 1 : 0;
    cmd.needMatrix = needMatrix ? 1 : 0;
    cmd.matrixId = msg.matrixId;
    cmd.method = msg.method;
    cmd.clientXDigest[0] = msg.xDigest[0];
    cmd.clientXDigest[1] = msg.xDigest[1];
    issue(cmd);

    if (!cached) {
      slotOf.emplace(key, slot);
      sharingDegree.push_back(0);
    }
    std::size_t& degree = sharingDegree[static_cast<std::size_t>(slot)];
    degree += 1;
    if (degree > stats.maxSharingDegree) stats.maxSharingDegree = degree;
    stats.attaches += 1;
    if (cached) {
      stats.schedShareHits += 1;
    } else {
      stats.schedShareMisses += 1;
    }
    if (needMatrix) stats.matrixShips += 1;
  }

  void onSubmit(const ControlMsg& msg) {
    const Session& s = *sessions.at(msg.sessionId);
    if (static_cast<int>(queue.size()) < cfg.queueDepth) {
      queue.push_back(Request{msg.sessionId});
      if (queue.size() > stats.maxQueueDepth) {
        stats.maxQueueDepth = queue.size();
      }
      stats.admitted += 1;
      c.sendValueTo(s.client, 0, kControlTag, SubmitAck{1, 0.0});
      return;
    }
    if (msg.retry == 0) {
      // Bounce with a backpressure hint; the client backs off and retries.
      stats.rejected += 1;
      c.sendValueTo(s.client, 0, kControlTag, SubmitAck{0, backoffHint()});
      return;
    }
    // A retry never bounces twice: hold it and grant when space frees.
    stats.deferred += 1;
    deferred.push_back(Request{msg.sessionId});
  }

  void admitDeferred() {
    while (!deferred.empty() &&
           static_cast<int>(queue.size()) < cfg.queueDepth) {
      const Request r = deferred.front();
      deferred.pop_front();
      queue.push_back(r);
      if (queue.size() > stats.maxQueueDepth) {
        stats.maxQueueDepth = queue.size();
      }
      stats.admitted += 1;
      c.sendValueTo(sessions.at(r.sessionId)->client, 0, kControlTag,
                    SubmitAck{1, 0.0});
    }
  }

  void handleControl(const transport::Message& m) {
    const ControlMsg msg = parseControl(m);
    switch (msg.kind) {
      case kMsgAttach:
        onAttach(msg, m.srcGlobal);
        break;
      case kMsgSubmit:
        onSubmit(msg);
        break;
      case kMsgDetach: {
        stats.detaches += 1;
        Command cmd;
        cmd.kind = kCmdDetach;
        cmd.sessionId = msg.sessionId;
        issue(cmd);
        break;
      }
      default:
        MC_REQUIRE(false, "unknown control message kind %d", msg.kind);
    }
  }

  /// Coalesces the longest run of queued requests compatible with the
  /// queue head — same layout slot (operand fingerprints match, so their
  /// exchanges fuse) and same matrix (one compute sweep serves all).
  void stageNext() {
    const Session& head = *sessions.at(queue.front().sessionId);
    Command cmd;
    cmd.kind = kCmdStage;
    cmd.layoutSlot = head.layoutSlot;
    cmd.matrixId = head.matrixId;
    int k = 0;
    for (auto it = queue.begin(); it != queue.end() && k < cfg.maxBatch;) {
      const Session& s = *sessions.at(it->sessionId);
      if (s.layoutSlot == head.layoutSlot && s.matrixId == head.matrixId) {
        cmd.members[k++] = it->sessionId;
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
    cmd.count = k;
    issue(cmd);
  }

  void runRank0() {
    for (;;) {
      if (staged.empty() && queue.empty() && deferred.empty()) {
        if (stats.detaches >=
            static_cast<std::uint64_t>(cfg.totalSessions)) {
          Command cmd;
          cmd.kind = kCmdShutdown;
          c.bcastValue(cmd, 0);
          return;
        }
        // Fully idle: block for the next control message.
        handleControl(c.recvMsgAnyOfPrograms(clientLo, clientHi,
                                             kControlTag));
      }
      // Drain whatever other control traffic has arrived.
      for (;;) {
        const std::optional<transport::Message> m =
            c.tryRecvMsgAnyOfPrograms(clientLo, clientHi, kControlTag);
        if (!m.has_value()) break;
        handleControl(*m);
      }
      admitDeferred();
      // Keep one batch staged ahead of the one executing, so the staged
      // batch's operand receives drain underneath the running multiply.
      while (static_cast<int>(staged.size()) < 2 && !queue.empty()) {
        stageNext();
      }
      if (!staged.empty()) {
        Command cmd;
        cmd.kind = kCmdExec;
        issue(cmd);
      }
    }
  }

  void runWorker() {
    for (;;) {
      const Command cmd = c.bcastValue(Command{}, 0);
      if (cmd.kind == kCmdShutdown) return;
      dispatch(cmd);
    }
  }

  // --- warm-start archive (snapshot section "server.archive") --------------
  //
  // What a restart must keep to make the first same-layout attach a sharing
  // hit with zero inspector builds: the per-rank layout entries (receive
  // halves; the reversed result plans are recomputed), the shipped
  // matrices (else needMatrix forces a collective matrix build), and rank
  // 0's control-plane state — the layout-fingerprint slot map, the
  // archived client send blobs, the sharing degrees, and the session-id
  // counter.  Live sessions and queued requests are deliberately NOT
  // persisted: a restart drops its tenants, warm-start only keeps what
  // they paid to build.

  std::vector<std::byte> saveArchive() const {
    std::vector<std::byte> out;
    blob::putU64(out, static_cast<std::uint64_t>(cfg.n));
    blob::putU64(out, layouts.size());
    for (const LayoutEntry& e : layouts) {
      blob::putBytes(out, snapshot::serializeMcSchedule(*e.xRecv));
    }
    blob::putU64(out, matrices.size());
    for (const auto& [id, A] : matrices) {
      blob::putU64(out,
                   static_cast<std::uint64_t>(static_cast<std::int64_t>(id)));
      blob::putBytes(out, snapshot::serializeArray(*A));
    }
    blob::putU64(out, c.rank() == 0 ? 1 : 0);
    if (c.rank() == 0) {
      blob::putU64(out, static_cast<std::uint64_t>(nextSession));
      blob::putU64(out, slotOf.size());
      for (const auto& [key, slot] : slotOf) {
        blob::putU64(out, std::get<0>(key));
        blob::putU64(out, std::get<1>(key));
        blob::putU64(out, static_cast<std::uint64_t>(std::get<2>(key)));
        blob::putU64(out, static_cast<std::uint64_t>(std::get<3>(key)));
        blob::putU64(out, static_cast<std::uint64_t>(slot));
      }
      blob::putU64(out, blobs.size());
      for (const auto& perRank : blobs) {
        blob::putU64(out, perRank.size());
        for (const auto& b : perRank) blob::putBytes(out, b);
      }
      std::vector<std::uint64_t> degrees(sharingDegree.begin(),
                                         sharingDegree.end());
      blob::putPods(out, degrees);
    }
    return out;
  }

  void restoreArchive(std::span<const std::byte> bytes) {
    MC_REQUIRE(layouts.empty() && matrices.empty() && sessions.empty(),
               "warm-start restore must run before any session attaches");
    blob::ByteReader r(bytes);
    const std::uint64_t n = r.u64();
    MC_REQUIRE(n == static_cast<std::uint64_t>(cfg.n),
               "snapshot server n=%llu does not match configured n=%lld",
               static_cast<unsigned long long>(n),
               static_cast<long long>(cfg.n));
    const std::uint64_t numLayouts = r.count(sizeof(std::uint64_t));
    layouts.reserve(static_cast<std::size_t>(numLayouts));
    for (std::uint64_t i = 0; i < numLayouts; ++i) {
      LayoutEntry e;
      auto xRecv = std::make_shared<const core::McSchedule>(
          snapshot::deserializeMcSchedule(r.bytes()));
      e.xRecv = xRecv;
      e.xPlan =
          std::shared_ptr<const sched::Schedule>(xRecv, &xRecv->plan);
      e.yPlan =
          std::make_shared<const sched::Schedule>(sched::reverse(xRecv->plan));
      layouts.push_back(std::move(e));
    }
    const std::uint64_t numMatrices = r.count(2 * sizeof(std::uint64_t));
    for (std::uint64_t i = 0; i < numMatrices; ++i) {
      const int id =
          static_cast<int>(static_cast<std::int64_t>(r.u64()));
      matrices[id] = std::make_unique<hpfrt::HpfArray<double>>(
          snapshot::deserializeHpfArray<double>(c, r.bytes()));
    }
    const bool root = r.u64() != 0;
    MC_REQUIRE(root == (c.rank() == 0),
               "snapshot control-plane state is on the wrong rank");
    if (root) {
      nextSession = static_cast<long long>(r.u64());
      MC_REQUIRE(nextSession >= 0, "corrupt server archive: session counter");
      const std::uint64_t numSlots = r.count(5 * sizeof(std::uint64_t));
      MC_REQUIRE(numSlots == numLayouts,
                 "server archive slot map covers %llu of %llu layouts",
                 static_cast<unsigned long long>(numSlots),
                 static_cast<unsigned long long>(numLayouts));
      for (std::uint64_t i = 0; i < numSlots; ++i) {
        const std::uint64_t d0 = r.u64();
        const std::uint64_t d1 = r.u64();
        const std::uint64_t procs = r.u64();
        const int method = static_cast<int>(r.u64());
        const std::uint64_t slot = r.u64();
        MC_REQUIRE(slot < numLayouts,
                   "server archive references layout slot %llu of %llu",
                   static_cast<unsigned long long>(slot),
                   static_cast<unsigned long long>(numLayouts));
        const bool fresh =
            slotOf
                .emplace(std::make_tuple(d0, d1, static_cast<int>(procs),
                                         method),
                         static_cast<int>(slot))
                .second;
        MC_REQUIRE(fresh, "server archive has a duplicate layout key");
      }
      const std::uint64_t numBlobSlots = r.count(sizeof(std::uint64_t));
      MC_REQUIRE(numBlobSlots == numLayouts,
                 "server archive blobs cover %llu of %llu layouts",
                 static_cast<unsigned long long>(numBlobSlots),
                 static_cast<unsigned long long>(numLayouts));
      for (std::uint64_t i = 0; i < numBlobSlots; ++i) {
        const std::uint64_t ranks = r.count(sizeof(std::uint64_t));
        std::vector<std::vector<std::byte>> perRank;
        perRank.reserve(static_cast<std::size_t>(ranks));
        for (std::uint64_t j = 0; j < ranks; ++j) {
          const std::span<const std::byte> b = r.bytes();
          perRank.emplace_back(b.begin(), b.end());
        }
        blobs.push_back(std::move(perRank));
      }
      const std::vector<std::uint64_t> degrees = r.pods<std::uint64_t>();
      MC_REQUIRE(degrees.size() == numLayouts,
                 "server archive sharing degrees cover %zu of %llu layouts",
                 degrees.size(),
                 static_cast<unsigned long long>(numLayouts));
      sharingDegree.assign(degrees.begin(), degrees.end());
    }
    r.requireEnd("server archive");
    // Layout-count agreement: every rank must have restored the same
    // number of layout entries, or a later broadcast attach command would
    // index out of range on some rank.
    const auto count = static_cast<std::uint64_t>(layouts.size());
    const std::uint64_t minC = c.allreduceValue(
        count,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
    const std::uint64_t maxC = c.allreduceValue(
        count,
        [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
    MC_REQUIRE(minC == maxC,
               "restored layout counts disagree across server ranks");
  }
};

ComputeServer::ComputeServer(transport::Comm& comm, ServerConfig config)
    : impl_(std::make_unique<Impl>(comm, config)) {}

ComputeServer::~ComputeServer() = default;

void ComputeServer::run() {
  Impl& im = *impl_;
  const bool root = im.c.rank() == 0;
  const bool persist = !im.cfg.snapshotDir.empty();
  if (persist) {
    // Collective: register the archive section, then restore if a complete
    // snapshot is present (first boot starts cold, later boots warm).
    snapshot::threadSections().add(
        "server.archive",
        [this](transport::Comm&) { return impl_->saveArchive(); },
        [this](transport::Comm&, std::span<const std::byte> bytes) {
          impl_->restoreArchive(bytes);
        });
    if (snapshotAvailable(im.c, im.cfg.snapshotDir)) {
      snapshotRestore(im.c, im.cfg.snapshotDir);
    }
  }
  if (root) {
    // Control-plane visibility on the rank's metrics registry, sampled by
    // obs snapshots taken on this thread during the run.
    obs::MetricsRegistry& reg = obs::threadRegistry();
    const ServerStats& st = im.stats;
    reg.registerCounter("server.sched_share.hits",
                        [&st] { return static_cast<double>(st.schedShareHits); });
    reg.registerCounter("server.sched_share.misses", [&st] {
      return static_cast<double>(st.schedShareMisses);
    });
    reg.registerCounter("server.sharing.max_degree", [&st] {
      return static_cast<double>(st.maxSharingDegree);
    });
    reg.registerCounter("server.queue.max_depth", [&st] {
      return static_cast<double>(st.maxQueueDepth);
    });
    reg.registerCounter("server.queue.rejected",
                        [&st] { return static_cast<double>(st.rejected); });
    reg.registerCounter("server.batch.count",
                        [&st] { return static_cast<double>(st.batches); });
    reg.registerCounter("server.batch.requests", [&st] {
      return static_cast<double>(st.batchedRequests);
    });
    im.runRank0();
    reg.unregisterPrefix("server.");
  } else {
    im.runWorker();
  }
  if (persist) {
    // Collective: all ranks reach this after the shutdown broadcast.
    snapshotSave(im.c, im.cfg.snapshotDir);
    snapshot::threadSections().remove("server.archive");
  }
}

const ServerStats& ComputeServer::stats() const { return impl_->stats; }

}  // namespace mc::server
