// The Chaos localize inspector.
//
// Given the global indices an irregular loop references (e.g. the ia/ib
// indirection arrays of the paper's Figure 1, Loop 3), localize
//   1. dereferences every distinct reference through the translation table,
//   2. assigns each distinct off-processor reference a ghost slot appended
//      after the owned elements,
//   3. rewrites the references as local indices (owned offset, or
//      localCount + ghost slot), and
//   4. builds the gather schedule (owners -> ghost slots) and its reverse,
//      the scatter-add schedule (ghost contributions -> owners).
//
// This is the classic inspector whose cost — dominated by translation-table
// dereference — the paper measures in Tables 1 and 2.
#pragma once

#include "chaos/irreg_array.h"
#include "sched/executor.h"

namespace mc::chaos {

struct Localized {
  /// For each input reference: local index into [0, localCount + ghostCount).
  std::vector<layout::Index> localIndices;
  layout::Index ghostCount = 0;
  /// Gather: pack from owned data (sends), unpack into the ghost area
  /// (recvs index the ghost buffer, not owned storage).
  sched::Schedule gatherSched;
  /// Scatter-add: pack from the ghost area, accumulate into owned data.
  sched::Schedule scatterAddSched;
};

/// Collective inspector over the calling processor's reference list.
/// Batched: references are sort-and-uniqued, resolved through the per-rank
/// dereference cache (deref_cache.h) in one sorted pass — only distinct
/// uncached references travel to the table's home processors — and ghost
/// slots are assigned in first-appearance order, so the result is
/// bit-identical to localizeReference.
Localized localize(transport::Comm& comm, const TranslationTable& table,
                   std::span<const layout::Index> refs);

/// The pre-batching inspector, kept as the differential oracle: hash-based
/// uniquing and an uncached element-wise table dereference on every call.
/// Same Localized output as localize() (identical ghost layout, local
/// indices, and schedules); only the cost differs.
Localized localizeReference(transport::Comm& comm,
                            const TranslationTable& table,
                            std::span<const layout::Index> refs);

/// Gather executor: fills `ghost` (size >= ghostCount) with the current
/// owner values for the localized off-processor references.  Collective.
/// One-shot convenience; a time-step loop should bind a sched::Executor to
/// gatherSched once and run() it per step (see chaos::EdgeSweep).
template <typename T>
void gatherGhosts(transport::Comm& comm, const Localized& loc,
                  std::span<const T> owned, std::span<T> ghost) {
  const int tag = comm.nextUserTag();
  sched::execute<T>(comm, loc.gatherSched, owned, ghost, tag);
}

/// Scatter-add executor: accumulates ghost contributions into their owners'
/// elements.  Collective.
template <typename T>
void scatterAddGhosts(transport::Comm& comm, const Localized& loc,
                      std::span<const T> ghost, std::span<T> owned) {
  const int tag = comm.nextUserTag();
  sched::executeAdd<T>(comm, loc.scatterAddSched, ghost, owned, tag);
}

}  // namespace mc::chaos
