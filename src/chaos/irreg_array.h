// IrregArray: a Chaos-style irregularly distributed 1-D array.
//
// Each processor holds the elements a partitioner assigned to it, in local
// order; a shared TranslationTable maps global indices to (owner, offset).
// Off-processor references are resolved by the localize inspector
// (chaos/localize.h), which appends a ghost area after the owned elements —
// the classic Chaos storage layout.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "chaos/ttable.h"
#include "transport/comm.h"

namespace mc::chaos {

template <typename T>
class IrregArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective: `myGlobals` is this processor's assignment (local order);
  /// the table must have been built from the same assignment.
  IrregArray(transport::Comm& comm,
             std::shared_ptr<const TranslationTable> table,
             std::vector<layout::Index> myGlobals)
      : comm_(&comm), table_(std::move(table)), myGlobals_(std::move(myGlobals)) {
    MC_REQUIRE(table_ != nullptr);
    MC_REQUIRE(static_cast<layout::Index>(myGlobals_.size()) ==
                   table_->localCount(comm.rank()),
               "assignment size %zu does not match the translation table "
               "(%lld local elements)",
               myGlobals_.size(),
               static_cast<long long>(table_->localCount(comm.rank())));
    data_.assign(myGlobals_.size(), T{});
  }

  transport::Comm& comm() const { return *comm_; }
  const TranslationTable& table() const { return *table_; }
  std::shared_ptr<const TranslationTable> tablePtr() const { return table_; }
  layout::Index globalSize() const { return table_->globalSize(); }
  layout::Index localCount() const {
    return static_cast<layout::Index>(data_.size());
  }
  std::span<const layout::Index> myGlobals() const { return myGlobals_; }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }
  T& local(layout::Index i) { return data_[static_cast<size_t>(i)]; }
  const T& local(layout::Index i) const { return data_[static_cast<size_t>(i)]; }

  /// Sets every owned element to fn(globalIndex).
  template <typename F>
  void fillByGlobal(F&& fn) {
    for (size_t i = 0; i < myGlobals_.size(); ++i) {
      data_[i] = fn(myGlobals_[i]);
    }
  }

  /// Collective test/debug oracle: the full array in global-index order on
  /// every processor.
  std::vector<T> gatherGlobal() const {
    struct Pair {
      layout::Index global;
      T value;
    };
    std::vector<Pair> mine;
    mine.reserve(myGlobals_.size());
    for (size_t i = 0; i < myGlobals_.size(); ++i) {
      mine.push_back(Pair{myGlobals_[i], data_[i]});
    }
    auto rows = comm_->allgather<Pair>(std::span<const Pair>(mine));
    std::vector<T> out(static_cast<size_t>(globalSize()), T{});
    for (const auto& row : rows) {
      for (const Pair& p : row) out[static_cast<size_t>(p.global)] = p.value;
    }
    return out;
  }

 private:
  transport::Comm* comm_;
  std::shared_ptr<const TranslationTable> table_;
  std::vector<layout::Index> myGlobals_;
  std::vector<T> data_;
};

}  // namespace mc::chaos
