// Per-rank dereference cache for translation-table lookups.
//
// Inspector phases dereference the same off-processor references over and
// over: every schedule build against a translation table re-asks the
// table's home processors for (owner, localOffset) pairs that have not
// changed since the last build.  The cache memoizes resolved locations per
// rank (thread_local — each virtual processor has its own), keyed by the
// table's process-unique uid(), so repeated inspector calls resolve
// entirely locally and only genuinely new references travel.
//
// Invalidation contract: a table's entries are immutable after build, so a
// cached location can only go stale when the *data* migrates — i.e. at
// chaos::remap, which drops the old table's shard on every participating
// rank (remap is collective, so the invalidation is too).  uids are minted
// from a monotone process-wide counter and never reused; a new table that
// happens to live at a recycled address cannot alias a stale shard.
//
// Storage is a sorted parallel array per table (globals ascending +
// locations), probed with narrowing binary searches over a sorted query
// batch and grown by linear merges — no per-element hashing anywhere.
// Stats live in a plain thread_local POD surfaced through the obs
// MetricsRegistry as localize.deref_cache.* counters; the samplers touch
// only the POD, so they stay valid whatever order thread_locals die in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chaos/ttable.h"
#include "layout/index.h"

namespace mc::chaos {

/// Monotone per-rank cache telemetry (entries is the current size).
struct DerefCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;     // entries added
  std::uint64_t invalidations = 0;  // shards dropped by invalidate()
  std::uint64_t evictions = 0;      // entries dropped by the capacity cap
  std::uint64_t entries = 0;        // current resident entries (gauge)
  std::uint64_t retargets = 0;      // shards carried across a remap
  std::uint64_t retargetDropped = 0;  // migrated entries dropped by retarget
};

const DerefCacheStats& derefCacheStats();

class DerefCache {
 public:
  /// Resident-entry cap per rank (~48 MiB of (Index, ElementLoc) pairs at
  /// the default).  An insert that would exceed it evicts whole shards,
  /// oldest table first.
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 21;

  /// Probes one table's shard with a sorted, duplicate-free query batch.
  /// For query i: hit[i] = 1 and out[i] is filled on a hit, hit[i] = 0
  /// otherwise.  Returns the hit count; bumps hits/misses.
  std::size_t lookupSorted(std::uint64_t uid,
                           std::span<const layout::Index> sortedGlobals,
                           ElementLoc* out, std::uint8_t* hit);

  /// Merges freshly resolved locations into the table's shard.  `globals`
  /// must be sorted, duplicate-free, and disjoint from the shard (i.e. the
  /// misses of a preceding lookupSorted).
  void insertSorted(std::uint64_t uid,
                    std::span<const layout::Index> globals,
                    std::span<const ElementLoc> locs);

  /// Drops every entry cached for the table; returns true if any existed.
  /// chaos::remap calls this for the table it replaces.
  bool invalidate(std::uint64_t uid);

  /// Selective remap invalidation: rekeys the old table's shard to the new
  /// table's uid, dropping only the entries whose global index is in
  /// `sortedMigrated` (the elements whose (owner, offset) changed — see
  /// chaos::migratedGlobals).  Survivors resolve identically under the new
  /// table by the migrated-set contract, so later inspector passes against
  /// the new table hit on every reference the remap did not move.  Returns
  /// true when a shard was carried over.
  bool retarget(std::uint64_t oldUid, std::uint64_t newUid,
                std::span<const layout::Index> sortedMigrated);

  void clear();

  std::size_t entryCount() const { return total_; }

 private:
  struct Shard {
    std::uint64_t uid = 0;
    std::vector<layout::Index> keys;  // sorted ascending
    std::vector<ElementLoc> locs;     // parallel to keys
  };

  Shard* findShard(std::uint64_t uid);

  // Few live tables per rank in practice: a linear scan beats a hash map.
  // Insertion order is retained so capacity eviction drops oldest first.
  std::vector<Shard> shards_;
  std::size_t total_ = 0;
};

/// The calling rank's cache (each virtual processor is a thread).
DerefCache& derefCache();

/// Registers the localize.deref_cache.* samplers into the rank's registry
/// (idempotent).
void ensureLocalizeMetrics();

}  // namespace mc::chaos
