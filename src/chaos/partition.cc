#include "chaos/partition.h"

#include "util/error.h"
#include "util/rng.h"

#include <algorithm>
#include <limits>

namespace mc::chaos {

using layout::Index;

std::vector<Index> blockPartition(Index n, int nprocs, int rank) {
  MC_REQUIRE(n >= 0 && nprocs > 0 && rank >= 0 && rank < nprocs);
  const Index block = (n + nprocs - 1) / nprocs;
  const Index lo = block * rank;
  const Index hi = std::min(n, block * (rank + 1));
  std::vector<Index> out;
  out.reserve(static_cast<size_t>(std::max<Index>(0, hi - lo)));
  for (Index g = lo; g < hi; ++g) out.push_back(g);
  return out;
}

std::vector<Index> cyclicPartition(Index n, int nprocs, int rank) {
  MC_REQUIRE(n >= 0 && nprocs > 0 && rank >= 0 && rank < nprocs);
  std::vector<Index> out;
  out.reserve(static_cast<size_t>(n / nprocs + 1));
  for (Index g = rank; g < n; g += nprocs) out.push_back(g);
  return out;
}

std::vector<Index> randomPartition(Index n, int nprocs, int rank,
                                   std::uint64_t seed) {
  MC_REQUIRE(n >= 0 && nprocs > 0 && rank >= 0 && rank < nprocs);
  Rng rng(seed);
  const auto perm = rng.permutation(static_cast<std::uint64_t>(n));
  std::vector<Index> out;
  out.reserve(static_cast<size_t>(n / nprocs + 1));
  for (Index g = 0; g < n; ++g) {
    if (static_cast<int>(perm[static_cast<size_t>(g)] %
                         static_cast<std::uint64_t>(nprocs)) == rank) {
      out.push_back(g);
    }
  }
  return out;
}

namespace {

using layout::Index;

/// Assigns ranks [rankLo, rankLo+nparts) to `ids`, cutting along the wider
/// axis.  `ids` is reordered freely; `ownerOf` receives the result.
void rcbSplit(std::vector<Index>& ids, std::span<const double> x,
              std::span<const double> y, int rankLo, int nparts,
              std::vector<int>& ownerOf) {
  if (nparts == 1) {
    for (Index g : ids) ownerOf[static_cast<size_t>(g)] = rankLo;
    return;
  }
  double xMin = std::numeric_limits<double>::infinity(), xMax = -xMin;
  double yMin = xMin, yMax = -xMin;
  for (Index g : ids) {
    const auto gg = static_cast<size_t>(g);
    xMin = std::min(xMin, x[gg]);
    xMax = std::max(xMax, x[gg]);
    yMin = std::min(yMin, y[gg]);
    yMax = std::max(yMax, y[gg]);
  }
  const bool cutX = (xMax - xMin) >= (yMax - yMin);
  // Deterministic order: sort by cut coordinate, ties by global index.
  std::sort(ids.begin(), ids.end(), [&](Index a, Index b) {
    const double ca = cutX ? x[static_cast<size_t>(a)] : y[static_cast<size_t>(a)];
    const double cb = cutX ? x[static_cast<size_t>(b)] : y[static_cast<size_t>(b)];
    return ca != cb ? ca < cb : a < b;
  });
  const int leftParts = nparts / 2;
  const size_t leftCount =
      ids.size() * static_cast<size_t>(leftParts) / static_cast<size_t>(nparts);
  std::vector<Index> left(ids.begin(), ids.begin() + static_cast<long>(leftCount));
  std::vector<Index> right(ids.begin() + static_cast<long>(leftCount), ids.end());
  rcbSplit(left, x, y, rankLo, leftParts, ownerOf);
  rcbSplit(right, x, y, rankLo + leftParts, nparts - leftParts, ownerOf);
}

}  // namespace

std::vector<Index> rcbPartition(std::span<const double> x,
                                std::span<const double> y, int nprocs,
                                int rank) {
  MC_REQUIRE(x.size() == y.size(), "coordinate arrays differ in length");
  MC_REQUIRE(nprocs > 0 && rank >= 0 && rank < nprocs);
  const auto n = static_cast<Index>(x.size());
  std::vector<Index> ids(static_cast<size_t>(n));
  for (Index g = 0; g < n; ++g) ids[static_cast<size_t>(g)] = g;
  std::vector<int> ownerOf(static_cast<size_t>(n), -1);
  if (n > 0) rcbSplit(ids, x, y, 0, nprocs, ownerOf);
  std::vector<Index> mine;
  for (Index g = 0; g < n; ++g) {
    if (ownerOf[static_cast<size_t>(g)] == rank) mine.push_back(g);
  }
  return mine;
}

}  // namespace mc::chaos
