#include "chaos/irreg_copy.h"

namespace mc::chaos {

using layout::Index;

sched::Schedule buildIrregCopySchedule(transport::Comm& comm,
                                       const TranslationTable& dstTable,
                                       std::span<const Index> mySrcOffsets,
                                       std::span<const Index> dstGlobals) {
  MC_REQUIRE(mySrcOffsets.size() == dstGlobals.size(),
             "mapping lists differ in length (%zu vs %zu)",
             mySrcOffsets.size(), dstGlobals.size());
  const int np = comm.size();
  const int me = comm.rank();
  sched::Schedule out;

  // The dominant cost: dereferencing the destination side — batched and
  // cached, so a rebuild against the same table resolves locally.
  const std::vector<ElementLoc> locs = comm.computeValue([&] {
    return dstTable.dereferenceCached(comm, dstGlobals);
  });

  // Group by destination owner; ship the destination local offsets so the
  // receiver can build its unpack plan without further lookups.
  std::vector<std::vector<Index>> srcOffTo(static_cast<size_t>(np));
  std::vector<std::vector<Index>> dstOffTo(static_cast<size_t>(np));
  for (size_t i = 0; i < dstGlobals.size(); ++i) {
    const ElementLoc& loc = locs[i];
    if (loc.proc == me) {
      out.localPairs.emplace_back(mySrcOffsets[i], loc.offset);
    } else {
      srcOffTo[static_cast<size_t>(loc.proc)].push_back(mySrcOffsets[i]);
      dstOffTo[static_cast<size_t>(loc.proc)].push_back(loc.offset);
    }
  }
  auto incoming = comm.alltoall(dstOffTo);
  for (int q = 0; q < np; ++q) {
    const auto qq = static_cast<size_t>(q);
    if (q != me && !srcOffTo[qq].empty()) {
      out.sends.push_back(sched::OffsetPlan{q, std::move(srcOffTo[qq])});
    }
    if (q != me && !incoming[qq].empty()) {
      out.recvs.push_back(sched::OffsetPlan{q, std::move(incoming[qq])});
    }
  }
  out.sortByPeer();
  return out;
}

sched::KeyedCache<sched::Schedule>& chaosScheduleCache() {
  thread_local sched::KeyedCache<sched::Schedule> cache;
  return cache;
}

std::shared_ptr<const sched::Schedule> cachedIrregCopySchedule(
    transport::Comm& comm, const TranslationTable& dstTable,
    std::span<const Index> mySrcOffsets, std::span<const Index> dstGlobals) {
  HashStream h;
  h.str("chaos-irreg-copy");
  h.pod(comm.program());
  h.pod(comm.size());
  h.pod(dstTable.localFingerprint());
  h.podSpan(mySrcOffsets);
  h.podSpan(dstGlobals);
  const auto key = h.digest();

  sched::KeyedCache<sched::Schedule>& cache = chaosScheduleCache();
  std::shared_ptr<const sched::Schedule> local = cache.peek(key);
  // The build dereferences the translation table collectively, so all
  // ranks must agree to skip it: AND-reduce the local hit bit.
  const int hit = comm.allreduceValue(
      local != nullptr ? 1 : 0, [](int a, int b) { return a < b ? a : b; });
  if (hit != 0) {
    cache.noteHit(key);
    return local;
  }
  cache.noteMiss();
  auto built = std::make_shared<sched::Schedule>(
      buildIrregCopySchedule(comm, dstTable, mySrcOffsets, dstGlobals));
  built->compress();
  cache.insert(key, built);
  return built;
}

}  // namespace mc::chaos
