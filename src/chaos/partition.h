// Partitioners: assignments of global indices to processors.
//
// Chaos separates data distribution (the partitioner's choice) from the
// runtime machinery (translation table + schedules).  These generators are
// deterministic in (n, nprocs, rank[, seed]) so every processor can compute
// every processor's assignment without communication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "layout/index.h"

namespace mc::chaos {

/// Contiguous blocks: processor r owns [r*ceil(n/P), ...).
std::vector<layout::Index> blockPartition(layout::Index n, int nprocs,
                                          int rank);

/// Round-robin: processor r owns {r, r+P, r+2P, ...}.
std::vector<layout::Index> cyclicPartition(layout::Index n, int nprocs,
                                           int rank);

/// Pseudo-random assignment (deterministic in seed): global index g is owned
/// by perm(g) mod P, where perm is a seed-derived permutation.  Local order
/// is ascending global index.  This stands in for the graph-partitioner
/// output a real unstructured-mesh code would use: neighbours land on
/// arbitrary processors, which maximizes the irregular-communication stress
/// on the runtime.
std::vector<layout::Index> randomPartition(layout::Index n, int nprocs,
                                           int rank, std::uint64_t seed);

/// Recursive coordinate bisection: element i sits at (x[i], y[i]); the
/// point set is cut recursively along its wider axis into spatially compact
/// parts of near-equal size.  This is the geometric partitioner family real
/// Chaos applications feed the runtime with (the runtime itself is
/// partitioner-agnostic — any owner assignment works).  Deterministic; no
/// communication; local order is ascending global index.
std::vector<layout::Index> rcbPartition(std::span<const double> x,
                                        std::span<const double> y, int nprocs,
                                        int rank);

}  // namespace mc::chaos
