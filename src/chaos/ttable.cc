#include "chaos/ttable.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "chaos/deref_cache.h"
#include "util/blob_io.h"
#include "util/hash.h"

namespace mc::chaos {

using layout::Index;

namespace {
// Table identities for the dereference cache: monotone, never reused.
// 0 is reserved for "no table" so a default-constructed uid never matches.
std::uint64_t nextTableUid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

TranslationTable TranslationTable::build(
    transport::Comm& comm, std::span<const Index> myGlobals, Index globalSize,
    Storage storage, double modeledQueryCostSeconds) {
  MC_REQUIRE(globalSize > 0);
  MC_REQUIRE(modeledQueryCostSeconds >= 0.0);
  TranslationTable t;
  t.storage_ = storage;
  t.modeledQueryCost_ = modeledQueryCostSeconds;
  t.globalSize_ = globalSize;
  t.myRank_ = comm.rank();
  t.uid_ = nextTableUid();
  const int np = comm.size();
  t.homeBlock_ = (globalSize + np - 1) / np;
  t.localCounts_ = [&] {
    auto counts = comm.allgatherValue(static_cast<Index>(myGlobals.size()));
    Index total = 0;
    for (Index c : counts) total += c;
    MC_REQUIRE(total == globalSize,
               "partition covers %lld elements, global size is %lld",
               static_cast<long long>(total),
               static_cast<long long>(globalSize));
    return counts;
  }();

  // Triples (global, owner, offset) contributed by this processor.
  struct Entry {
    Index global;
    Index offset;
    int proc;
  };
  std::vector<Entry> mine;
  mine.reserve(myGlobals.size());
  for (size_t i = 0; i < myGlobals.size(); ++i) {
    const Index g = myGlobals[i];
    MC_REQUIRE(g >= 0 && g < globalSize, "global index %lld out of range",
               static_cast<long long>(g));
    mine.push_back(Entry{g, static_cast<Index>(i), comm.rank()});
  }

  if (storage == Storage::kReplicated) {
    auto rows = comm.allgather<Entry>(std::span<const Entry>(mine));
    t.entries_.assign(static_cast<size_t>(globalSize), ElementLoc{});
    for (const auto& row : rows) {
      for (const Entry& e : row) {
        ElementLoc& loc = t.entries_[static_cast<size_t>(e.global)];
        MC_REQUIRE(loc.proc == -1, "global index %lld owned twice",
                   static_cast<long long>(e.global));
        loc = ElementLoc{e.proc, e.offset};
      }
    }
    for (Index g = 0; g < globalSize; ++g) {
      MC_REQUIRE(t.entries_[static_cast<size_t>(g)].proc != -1,
                 "global index %lld unowned", static_cast<long long>(g));
    }
  } else {
    // Route each entry to its home processor.
    std::vector<std::vector<Entry>> sendTo(static_cast<size_t>(np));
    for (const Entry& e : mine) {
      sendTo[static_cast<size_t>(t.homeOf(e.global))].push_back(e);
    }
    auto recvFrom = comm.alltoall(sendTo);
    const Index sliceLo = t.homeBlock_ * comm.rank();
    const Index sliceSize =
        std::max<Index>(0, std::min(t.homeBlock_, globalSize - sliceLo));
    t.entries_.assign(static_cast<size_t>(sliceSize), ElementLoc{});
    Index filled = 0;
    for (const auto& row : recvFrom) {
      for (const Entry& e : row) {
        const Index slot = e.global - sliceLo;
        MC_CHECK(slot >= 0 && slot < sliceSize);
        ElementLoc& loc = t.entries_[static_cast<size_t>(slot)];
        MC_REQUIRE(loc.proc == -1, "global index %lld owned twice",
                   static_cast<long long>(e.global));
        loc = ElementLoc{e.proc, e.offset};
        ++filled;
      }
    }
    // Coverage check is global: every slice must be fully populated.
    const double total = comm.allreduceSum(static_cast<double>(filled));
    MC_REQUIRE(static_cast<Index>(total) == globalSize,
               "partition covers %lld of %lld elements",
               static_cast<long long>(total),
               static_cast<long long>(globalSize));
    for (Index s = 0; s < sliceSize; ++s) {
      MC_REQUIRE(t.entries_[static_cast<size_t>(s)].proc != -1,
                 "global index %lld unowned",
                 static_cast<long long>(sliceLo + s));
    }
  }
  return t;
}

TranslationTable TranslationTable::replicatedFromEntries(
    std::vector<ElementLoc> entries, int nprocs,
    double modeledQueryCostSeconds) {
  MC_REQUIRE(!entries.empty() && nprocs > 0);
  MC_REQUIRE(modeledQueryCostSeconds >= 0.0);
  TranslationTable t;
  t.storage_ = Storage::kReplicated;
  t.modeledQueryCost_ = modeledQueryCostSeconds;
  t.uid_ = nextTableUid();
  t.globalSize_ = static_cast<Index>(entries.size());
  t.homeBlock_ = (t.globalSize_ + nprocs - 1) / nprocs;
  t.localCounts_.assign(static_cast<size_t>(nprocs), 0);
  for (const ElementLoc& loc : entries) {
    MC_REQUIRE(loc.proc >= 0 && loc.proc < nprocs,
               "entry owner %d out of range", loc.proc);
    ++t.localCounts_[static_cast<size_t>(loc.proc)];
  }
  t.entries_ = std::move(entries);
  return t;
}

std::vector<ElementLoc> TranslationTable::dereference(
    transport::Comm& comm, std::span<const Index> globals) const {
  std::vector<ElementLoc> out(globals.size());
  if (storage_ == Storage::kReplicated) {
    for (size_t i = 0; i < globals.size(); ++i) {
      out[i] = dereferenceLocal(globals[i]);
    }
    // Replicated tables answer locally; the lookup machinery still pays the
    // modeled per-element cost.
    comm.advance(modeledQueryCost_ * static_cast<double>(globals.size()));
    return out;
  }
  const int np = comm.size();
  // Group queries by home processor, remembering their positions.
  std::vector<std::vector<Index>> queryTo(static_cast<size_t>(np));
  std::vector<std::vector<size_t>> posOf(static_cast<size_t>(np));
  for (size_t i = 0; i < globals.size(); ++i) {
    const Index g = globals[i];
    MC_REQUIRE(g >= 0 && g < globalSize_, "global index %lld out of range",
               static_cast<long long>(g));
    const auto h = static_cast<size_t>(homeOf(g));
    queryTo[h].push_back(g);
    posOf[h].push_back(i);
  }
  auto queries = comm.alltoall(queryTo);
  // Answer the queries that landed on my slice; the per-element lookup cost
  // is charged here, on the answering processor, so dereference work
  // spreads over the processors holding the table.
  const Index sliceLo = homeBlock_ * myRank_;
  std::size_t answered = 0;
  for (const auto& qs : queries) answered += qs.size();
  comm.advance(modeledQueryCost_ * static_cast<double>(answered));
  std::vector<std::vector<ElementLoc>> answers(static_cast<size_t>(np));
  for (int q = 0; q < np; ++q) {
    const auto& qs = queries[static_cast<size_t>(q)];
    auto& ans = answers[static_cast<size_t>(q)];
    ans.reserve(qs.size());
    for (Index g : qs) {
      const Index slot = g - sliceLo;
      MC_CHECK(slot >= 0 && slot < static_cast<Index>(entries_.size()));
      ans.push_back(entries_[static_cast<size_t>(slot)]);
    }
  }
  auto replies = comm.alltoall(answers);
  for (int h = 0; h < np; ++h) {
    const auto& reply = replies[static_cast<size_t>(h)];
    const auto& pos = posOf[static_cast<size_t>(h)];
    MC_CHECK(reply.size() == pos.size());
    for (size_t k = 0; k < reply.size(); ++k) out[pos[k]] = reply[k];
  }
  return out;
}

std::vector<ElementLoc> TranslationTable::dereferenceCached(
    transport::Comm& comm, std::span<const Index> globals) const {
  ensureLocalizeMetrics();
  DerefCache& cache = derefCache();
  std::vector<ElementLoc> out(globals.size());

  // Sort-and-unique the batch, remembering each query's distinct slot so
  // results scatter back in query order.  One sort replaces the per-element
  // hash probes of the unbatched path.  Host-side batching work is not
  // charged to the virtual clock — same convention as dereference(), whose
  // per-element grouping also runs uncharged: the modeled per-query cost
  // (advance below) is the model of lookup work, and charging measured CPU
  // on top of it would double-count.  Call sites that want the host cost on
  // the clock wrap the call in computeValue (as buildIrregCopySchedule
  // does).
  std::vector<std::pair<Index, std::uint32_t>> order(globals.size());
  std::vector<std::uint32_t> uniqOf(globals.size());
  std::vector<Index> uniq;
  std::vector<ElementLoc> locs;
  std::vector<std::uint8_t> hit;
  std::vector<Index> missG;
  std::vector<std::uint32_t> missAt;
  for (std::size_t i = 0; i < globals.size(); ++i) {
    const Index g = globals[i];
    MC_REQUIRE(g >= 0 && g < globalSize_, "global index %lld out of range",
               static_cast<long long>(g));
    order[i] = {g, static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end());
  uniq.reserve(order.size());
  for (const auto& [g, pos] : order) {
    if (uniq.empty() || uniq.back() != g) uniq.push_back(g);
    uniqOf[pos] = static_cast<std::uint32_t>(uniq.size() - 1);
  }
  locs.resize(uniq.size());
  hit.resize(uniq.size());
  cache.lookupSorted(uid_, uniq, locs.data(), hit.data());
  for (std::size_t u = 0; u < uniq.size(); ++u) {
    if (hit[u]) continue;
    missG.push_back(uniq[u]);
    missAt.push_back(static_cast<std::uint32_t>(u));
  }

  std::vector<ElementLoc> missLocs(missG.size());
  if (storage_ == Storage::kReplicated) {
    for (std::size_t k = 0; k < missG.size(); ++k) {
      missLocs[k] = entries_[static_cast<std::size_t>(missG[k])];
    }
    // Only genuine misses pay the modeled lookup charge — the cache's win.
    comm.advance(modeledQueryCost_ * static_cast<double>(missG.size()));
  } else {
    // missG ascends, so each home processor's queries form one contiguous
    // segment: a single pass splits the batch page by page.  The exchange
    // is unconditional — ranks whose queries all hit still participate.
    const int np = comm.size();
    std::vector<std::vector<Index>> queryTo(static_cast<std::size_t>(np));
    std::size_t k = 0;
    while (k < missG.size()) {
      const int home = homeOf(missG[k]);
      std::size_t end = k;
      while (end < missG.size() && homeOf(missG[end]) == home) ++end;
      auto& lane = queryTo[static_cast<std::size_t>(home)];
      lane.assign(missG.begin() + static_cast<std::ptrdiff_t>(k),
                  missG.begin() + static_cast<std::ptrdiff_t>(end));
      k = end;
    }
    auto queries = comm.alltoall(queryTo);
    const Index sliceLo = homeBlock_ * myRank_;
    std::size_t answered = 0;
    for (const auto& qs : queries) answered += qs.size();
    comm.advance(modeledQueryCost_ * static_cast<double>(answered));
    std::vector<std::vector<ElementLoc>> answers(
        static_cast<std::size_t>(np));
    for (int q = 0; q < np; ++q) {
      const auto& qs = queries[static_cast<std::size_t>(q)];
      auto& ans = answers[static_cast<std::size_t>(q)];
      ans.reserve(qs.size());
      for (Index g : qs) {
        const Index slot = g - sliceLo;
        MC_CHECK(slot >= 0 && slot < static_cast<Index>(entries_.size()));
        ans.push_back(entries_[static_cast<std::size_t>(slot)]);
      }
    }
    auto replies = comm.alltoall(answers);
    // Replies land in home order == the order the segments were carved.
    std::size_t filled = 0;
    for (const auto& reply : replies) {
      for (const ElementLoc& loc : reply) missLocs[filled++] = loc;
    }
    MC_CHECK(filled == missG.size());
  }

  for (std::size_t m = 0; m < missG.size(); ++m) {
    locs[missAt[m]] = missLocs[m];
  }
  cache.insertSorted(uid_, missG, missLocs);
  for (std::size_t i = 0; i < globals.size(); ++i) {
    out[i] = locs[uniqOf[i]];
  }
  return out;
}

ElementLoc TranslationTable::dereferenceLocal(Index g) const {
  MC_REQUIRE(storage_ == Storage::kReplicated,
             "local dereference requires a replicated translation table");
  MC_REQUIRE(g >= 0 && g < globalSize_);
  return entries_[static_cast<size_t>(g)];
}

std::vector<ElementLoc> TranslationTable::gatherFull(
    transport::Comm& comm) const {
  if (storage_ == Storage::kReplicated) return entries_;
  auto rows = comm.allgather<ElementLoc>(std::span<const ElementLoc>(entries_));
  std::vector<ElementLoc> full;
  full.reserve(static_cast<size_t>(globalSize_));
  for (const auto& row : rows) full.insert(full.end(), row.begin(), row.end());
  MC_CHECK(static_cast<Index>(full.size()) == globalSize_);
  return full;
}

std::uint64_t TranslationTable::localFingerprint() const {
  HashStream h;
  h.pod(static_cast<int>(storage_));
  h.pod(globalSize_);
  h.pod(homeBlock_);
  h.podSpan(std::span<const Index>(localCounts_));
  h.pod(myRank_);
  h.pod(modeledQueryCost_);
  // ElementLoc has tail padding; hash the fields, not the raw bytes.
  h.pod(entries_.size());
  for (const ElementLoc& e : entries_) {
    h.pod(e.proc);
    h.pod(e.offset);
  }
  return h.digest()[0];
}

std::vector<std::byte> TranslationTable::serialize() const {
  // ElementLoc has tail padding; serialize the fields as separate lanes so
  // the byte stream is canonical (no indeterminate padding on disk).
  std::vector<std::byte> payload;
  blob::putU64(payload, static_cast<std::uint64_t>(storage_));
  blob::putU64(payload, static_cast<std::uint64_t>(globalSize_));
  blob::putU64(payload, static_cast<std::uint64_t>(homeBlock_));
  blob::putU64(payload, static_cast<std::uint64_t>(myRank_));
  std::uint64_t cost = 0;
  static_assert(sizeof(cost) == sizeof(modeledQueryCost_));
  std::memcpy(&cost, &modeledQueryCost_, sizeof(cost));
  blob::putU64(payload, cost);
  blob::putPods(payload, localCounts_);
  std::vector<Index> procs, offsets;
  procs.reserve(entries_.size());
  offsets.reserve(entries_.size());
  for (const ElementLoc& e : entries_) {
    procs.push_back(static_cast<Index>(e.proc));
    offsets.push_back(e.offset);
  }
  blob::putPods(payload, procs);
  blob::putPods(payload, offsets);
  return blob::frame(blob::kTranslationTable, 1, payload);
}

TranslationTable TranslationTable::deserialize(
    std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kTranslationTable);
  MC_REQUIRE(v.kindVersion == 1, "unknown translation-table blob version %u",
             v.kindVersion);
  blob::ByteReader r(v.payload);
  TranslationTable t;
  const std::uint64_t storage = r.u64();
  MC_REQUIRE(storage <= 1, "corrupt translation-table blob: bad storage tag");
  t.storage_ = static_cast<Storage>(storage);
  t.globalSize_ = static_cast<Index>(r.u64());
  t.homeBlock_ = static_cast<Index>(r.u64());
  t.myRank_ = static_cast<int>(r.u64());
  const std::uint64_t cost = r.u64();
  std::memcpy(&t.modeledQueryCost_, &cost, sizeof(cost));
  t.localCounts_ = r.pods<Index>();
  const std::vector<Index> procs = r.pods<Index>();
  const std::vector<Index> offsets = r.pods<Index>();
  r.requireEnd("translation-table blob");

  MC_REQUIRE(t.globalSize_ > 0 && !t.localCounts_.empty(),
             "corrupt translation-table blob: empty table");
  const int np = static_cast<int>(t.localCounts_.size());
  MC_REQUIRE(t.homeBlock_ == (t.globalSize_ + np - 1) / np,
             "corrupt translation-table blob: home block does not match the "
             "global size");
  MC_REQUIRE(t.myRank_ >= 0 && t.myRank_ < np,
             "corrupt translation-table blob: rank %d of %d", t.myRank_, np);
  MC_REQUIRE(t.modeledQueryCost_ >= 0.0,
             "corrupt translation-table blob: negative query cost");
  Index countTotal = 0;
  for (const Index c : t.localCounts_) {
    MC_REQUIRE(c >= 0, "corrupt translation-table blob: negative count");
    countTotal += c;
  }
  MC_REQUIRE(countTotal == t.globalSize_,
             "corrupt translation-table blob: counts cover %lld of %lld "
             "elements",
             static_cast<long long>(countTotal),
             static_cast<long long>(t.globalSize_));
  MC_REQUIRE(procs.size() == offsets.size(),
             "corrupt translation-table blob: mismatched entry lanes");
  const Index sliceLo = t.homeBlock_ * t.myRank_;
  const Index expect =
      t.storage_ == Storage::kReplicated
          ? t.globalSize_
          : std::max<Index>(
                0, std::min(t.globalSize_, sliceLo + t.homeBlock_) - sliceLo);
  MC_REQUIRE(static_cast<Index>(procs.size()) == expect,
             "corrupt translation-table blob: %zu entries, expected %lld",
             procs.size(), static_cast<long long>(expect));
  t.entries_.reserve(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    MC_REQUIRE(procs[i] >= 0 && procs[i] < np,
               "corrupt translation-table blob: entry owner %lld out of "
               "range",
               static_cast<long long>(procs[i]));
    MC_REQUIRE(offsets[i] >= 0 &&
                   offsets[i] < t.localCounts_[static_cast<size_t>(procs[i])],
               "corrupt translation-table blob: entry offset out of range");
    t.entries_.push_back(
        ElementLoc{static_cast<int>(procs[i]), offsets[i]});
  }
  // Uid remint rule (see header): never reuse the saved identity.
  t.uid_ = nextTableUid();
  return t;
}

}  // namespace mc::chaos
