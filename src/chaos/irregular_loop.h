// The unstructured-mesh edge sweep of the paper's Figure 1 (Loop 3):
//
//   forall (e = 1:Nedges)
//     y(ia(e)) = y(ia(e)) + (x(ia(e)) + x(ib(e))) / 4
//     y(ib(e)) = y(ib(e)) + (x(ia(e)) + x(ib(e))) / 4
//
// x and y are node arrays with the *same* irregular distribution; ia/ib are
// block-distributed edge endpoint arrays.  The inspector localizes the
// endpoint references once; the executor then, per time-step, gathers the
// off-processor x values, runs the local edge loop (accumulating remote y
// contributions in a ghost buffer), and scatter-adds those contributions
// back to their owners.
#pragma once

#include <algorithm>
#include <optional>

#include "chaos/localize.h"
#include "obs/span.h"

namespace mc::chaos {

template <typename T>
class EdgeSweep {
 public:
  /// Collective inspector.  `ia`/`ib` are the calling processor's slice of
  /// the edge arrays (global node indices).  x and y must share `table`'s
  /// distribution.
  EdgeSweep(transport::Comm& comm, const TranslationTable& table,
            std::span<const layout::Index> ia,
            std::span<const layout::Index> ib)
      : comm_(&comm), nLocalEdges_(static_cast<layout::Index>(ia.size())) {
    MC_REQUIRE(ia.size() == ib.size());
    std::vector<layout::Index> refs;
    refs.reserve(ia.size() + ib.size());
    refs.insert(refs.end(), ia.begin(), ia.end());
    refs.insert(refs.end(), ib.begin(), ib.end());
    loc_ = localize(comm, table, refs);
    ownedCount_ = table.localCount(comm.rank());
    // Classify edges once (inspector side): an *interior* edge has both
    // endpoints owned, so it reads neither gathered ghost value — the
    // executor computes interior edges while the gather is in flight and
    // defers the rest to after finish.
    comm_->compute([&] {
      for (layout::Index e = 0; e < nLocalEdges_; ++e) {
        const layout::Index a = loc_.localIndices[static_cast<size_t>(e)];
        const layout::Index b =
            loc_.localIndices[static_cast<size_t>(e + nLocalEdges_)];
        (a < ownedCount_ && b < ownedCount_ ? interiorEdges_ : boundaryEdges_)
            .push_back(e);
      }
    });
  }

  const Localized& localized() const { return loc_; }

  /// Collective executor: one forall sweep.  The gather and scatter-add
  /// executors bind lazily on the first sweep and persist across sweeps, so
  /// steady-state iterations reuse their message buffers (zero payload
  /// copies / allocations; see sched::Executor).
  ///
  /// Split-phase overlap: the gather *starts*, the interior edges (both
  /// endpoints owned — they read no gathered value) run in chunks with a
  /// poll between chunks, then the gather finishes and the boundary edges
  /// run.  Edges apply in a fixed order (interior in edge order, then
  /// boundary in edge order), so results are deterministic run to run; the
  /// order differs from the plain e=0..N loop, so sums may differ from it
  /// by floating-point reassociation only.
  void run(IrregArray<T>& x, IrregArray<T>& y) {
    MC_REQUIRE(x.localCount() == ownedCount_ && y.localCount() == ownedCount_,
               "x/y do not match the inspected distribution");
    if (!gatherExec_) {
      gatherExec_.emplace(*comm_, loc_.gatherSched);
      scatterExec_.emplace(*comm_, loc_.scatterAddSched);
    }
    xGhost_.assign(static_cast<size_t>(loc_.ghostCount), T{});
    yGhost_.assign(static_cast<size_t>(loc_.ghostCount), T{});
    auto pending = gatherExec_->start(x.raw());
    const auto& li = loc_.localIndices;
    const std::span<const T> xo = x.raw();
    const std::span<T> yo = y.raw();
    // Interior edges overlap the in-flight gather (trace: this compute span
    // runs beside the gather's recvWait).
    obs::ScopedSpan interiorSpan(obs::phase::kCompute);
    constexpr std::size_t kChunk = 4096;  // edges per poll
    for (std::size_t at = 0; at < interiorEdges_.size(); at += kChunk) {
      const std::size_t end = std::min(interiorEdges_.size(), at + kChunk);
      comm_->compute([&] {
        for (std::size_t k = at; k < end; ++k) {
          const layout::Index e = interiorEdges_[k];
          const layout::Index a = li[static_cast<size_t>(e)];
          const layout::Index b = li[static_cast<size_t>(e + nLocalEdges_)];
          const T contrib = (xo[static_cast<size_t>(a)] +
                             xo[static_cast<size_t>(b)]) / T{4};
          yo[static_cast<size_t>(a)] += contrib;
          yo[static_cast<size_t>(b)] += contrib;
        }
      });
      pending.poll();
    }
    interiorSpan.end();
    pending.finish(xGhost_);
    obs::ScopedSpan boundarySpan(obs::phase::kCompute);
    comm_->compute([&] {
      for (const layout::Index e : boundaryEdges_) {
        const layout::Index a = li[static_cast<size_t>(e)];
        const layout::Index b = li[static_cast<size_t>(e + nLocalEdges_)];
        const T contrib = (valueAt(x, a) + valueAt(x, b)) / T{4};
        addAt(y, a, contrib);
        addAt(y, b, contrib);
      }
    });
    boundarySpan.end();
    scatterExec_->runAdd(yGhost_, y.raw());
  }

 private:
  T valueAt(const IrregArray<T>& x, layout::Index i) const {
    return i < ownedCount_
               ? x.raw()[static_cast<size_t>(i)]
               : xGhost_[static_cast<size_t>(i - ownedCount_)];
  }
  void addAt(IrregArray<T>& y, layout::Index i, T v) {
    if (i < ownedCount_) {
      y.raw()[static_cast<size_t>(i)] += v;
    } else {
      yGhost_[static_cast<size_t>(i - ownedCount_)] += v;
    }
  }

  transport::Comm* comm_;
  layout::Index nLocalEdges_ = 0;
  layout::Index ownedCount_ = 0;
  Localized loc_;
  std::vector<layout::Index> interiorEdges_;  // both endpoints owned
  std::vector<layout::Index> boundaryEdges_;  // at least one ghost endpoint
  // Bound lazily on the first run() against loc_'s schedules; do not move
  // an EdgeSweep after sweeping it (the executors point into loc_).
  std::optional<sched::Executor<T>> gatherExec_;
  std::optional<sched::Executor<T>> scatterExec_;
  std::vector<T> xGhost_;
  std::vector<T> yGhost_;
};

}  // namespace mc::chaos
