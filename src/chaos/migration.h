// Migration analysis for adaptive repartitioning.
//
// An adaptive application re-partitions as its load evolves (RCB after
// particle drift, client grow/shrink).  Rebuilding every inspector product
// from scratch on each repartitioning wastes the observation that most
// elements usually stay put.  This module derives the *migrated set* — the
// global indices whose (owner, local offset) actually changed — which is
// what feeds the delta-schedule machinery (core::deltaFromMigratedIndices,
// core::patchSchedule) and the dereference cache's selective invalidation
// (DerefCache::retarget).
//
// It also provides the slot policy that keeps the migrated set small:
// stableRemapOrder re-orders a partitioner's raw assignment so that
// surviving elements keep their local offsets.  Partitioners emit local
// order ascending-by-global-index; after even a tiny boundary shift that
// ordering shifts *every* element's offset and the "delta" becomes the
// whole array.  With stable slots, only genuine arrivals/departures count.
#pragma once

#include <span>
#include <vector>

#include "layout/index.h"
#include "transport/comm.h"

namespace mc::chaos {

/// Collective: the sorted global indices whose (owner, local offset)
/// mapping differs between the old assignment (`oldMine`, this rank's
/// elements in local order) and the new one (`newMine`).  Indices owned in
/// only one of the two assignments count as migrated.  Every rank returns
/// the same (global) sorted, duplicate-free vector.
std::vector<layout::Index> migratedGlobals(transport::Comm& comm,
                                           std::span<const layout::Index> oldMine,
                                           std::span<const layout::Index> newMine,
                                           layout::Index globalSize);

/// Re-orders a new local assignment to minimize offset churn against the
/// old one: surviving elements keep their old slots, arrivals fill the
/// departures' slots in place (ascending), extras append, and when the
/// assignment shrinks the tail compacts.  The result is a permutation of
/// `newMineAnyOrder`.  Local (no communication).
std::vector<layout::Index> stableRemapOrder(
    std::span<const layout::Index> oldMine,
    std::span<const layout::Index> newMineAnyOrder);

}  // namespace mc::chaos
