// Translation tables: the heart of the Chaos runtime library.
//
// Chaos [Das, Saltz et al.; JPDC 1994] distributes 1-D arrays *irregularly*:
// an arbitrary assignment of global indices to processors, chosen by a
// partitioner.  The translation table records, for every global index, the
// owning processor and the element's offset in the owner's local storage.
//
// Two storage policies, both from the real library:
//  * replicated  — every processor holds the full table; dereference is a
//    local lookup, but memory is O(global size) per processor.
//  * distributed — entry g lives on processor g / ceil(N/P) (the table's
//    "home" distribution); dereference is a collective exchange.  This is
//    the policy whose cost dominates the paper's Table 2 (the "Chaos
//    dereference function" the text discusses), and whose size makes the
//    paper's *duplication* schedule method impractical across programs.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "layout/index.h"
#include "transport/comm.h"

namespace mc::chaos {

/// Location of one element: owning processor and offset in its local data.
struct ElementLoc {
  int proc = -1;
  layout::Index offset = -1;
  bool operator==(const ElementLoc& o) const {
    return proc == o.proc && offset == o.offset;
  }
};

class TranslationTable {
 public:
  enum class Storage { kReplicated, kDistributed };

  /// Collective build.  `myGlobals` lists the global indices owned by the
  /// calling processor, in local storage order; the union over processors
  /// must be exactly {0, ..., globalSize-1} with no duplicates.
  /// `modeledQueryCostSeconds`: virtual-clock charge per dereferenced
  /// element, calibrated to the original library's per-element lookup cost
  /// (the paper's Table 2 implies ~15us/element on the SP2).  The charge
  /// lands on whichever processor resolves the query, so dereference work
  /// spreads across processors exactly as in Chaos.  Zero (the default)
  /// keeps dereference at this host's native speed.
  static TranslationTable build(transport::Comm& comm,
                                std::span<const layout::Index> myGlobals,
                                layout::Index globalSize, Storage storage,
                                double modeledQueryCostSeconds = 0.0);

  /// Builds a replicated table directly from a complete entry list (entry g
  /// = location of global index g).  Used to reconstruct a table shipped to
  /// another program; no communication.
  static TranslationTable replicatedFromEntries(
      std::vector<ElementLoc> entries, int nprocs,
      double modeledQueryCostSeconds = 0.0);

  Storage storage() const { return storage_; }
  layout::Index globalSize() const { return globalSize_; }
  /// Number of elements owned by processor `proc`.
  layout::Index localCount(int proc) const {
    return localCounts_[static_cast<size_t>(proc)];
  }

  /// Collective dereference: every processor passes its own query list and
  /// receives the locations in query order.  Replicated tables answer
  /// locally; distributed tables exchange query/answer messages with each
  /// entry's home processor (the expensive path the paper measures).
  std::vector<ElementLoc> dereference(
      transport::Comm& comm, std::span<const layout::Index> globals) const;

  /// Batched, cached dereference — same collective contract and same
  /// results as dereference(), different cost model.  Queries are
  /// sort-and-uniqued, the per-rank dereference cache (deref_cache.h) is
  /// probed in one sorted pass, and only the distinct *misses* travel to
  /// their home processors (grouped page-contiguously by the sort); the
  /// modeled per-element query cost is likewise charged per miss only.
  /// Results are inserted into the cache under this table's uid() for
  /// reuse by later inspector calls.  Every processor must call this
  /// (distributed tables exchange even when a rank's queries all hit).
  std::vector<ElementLoc> dereferenceCached(
      transport::Comm& comm, std::span<const layout::Index> globals) const;

  /// Local lookup; requires replicated storage.
  ElementLoc dereferenceLocal(layout::Index g) const;

  /// Collective: materializes the complete table on every processor.  For a
  /// distributed table this ships O(globalSize) data — provided to let the
  /// benchmarks demonstrate *why* the paper rules out the duplication
  /// schedule method for Chaos-distributed data across programs.
  std::vector<ElementLoc> gatherFull(transport::Comm& comm) const;

  /// Home processor of entry g in the distributed policy.
  int homeOf(layout::Index g) const {
    return static_cast<int>(g / homeBlock_);
  }

  /// Modeled per-element dereference cost (see build()).
  double modeledQueryCost() const { return modeledQueryCost_; }

  /// Process-unique identity of this table, minted at construction.  The
  /// per-rank dereference cache keys on it: uids are never reused, so a
  /// cache entry can only ever describe the table that minted it (a new
  /// table at a recycled address cannot alias a stale entry).
  std::uint64_t uid() const { return uid_; }

  /// Serializes the locally held table state (storage policy, extents, this
  /// processor's entry shard) to a framed blob (util/blob_io.h).  The uid is
  /// deliberately NOT serialized — see deserialize().
  std::vector<std::byte> serialize() const;

  /// Inverse of serialize(); validates the frame and every internal count.
  /// Uid remint rule: the restored table mints a FRESH process-unique uid
  /// rather than reusing the saved one, so the per-rank DerefCache — which
  /// keys entries on table uids — can never serve a stale pre-restore (or
  /// other-process) entry against a restored table.  The saved uid would be
  /// meaningless in this process anyway; reminting makes that explicit.
  static TranslationTable deserialize(std::span<const std::byte> blob);

  /// Communication-free digest of the locally held table state: the storage
  /// policy, the global extent, and this processor's entry shard.  For a
  /// distributed table no single processor can fingerprint the whole
  /// mapping; callers that key caches on this value must combine the
  /// per-processor digests collectively (the schedule cache does).
  std::uint64_t localFingerprint() const;

 private:
  TranslationTable() = default;

  Storage storage_ = Storage::kReplicated;
  layout::Index globalSize_ = 0;
  layout::Index homeBlock_ = 1;          // ceil(N/P)
  std::vector<layout::Index> localCounts_;
  // kReplicated: full table, indexed by global index.
  // kDistributed: my home slice, indexed by g - homeBlock*rank.
  std::vector<ElementLoc> entries_;
  int myRank_ = 0;
  double modeledQueryCost_ = 0.0;
  std::uint64_t uid_ = 0;
};

}  // namespace mc::chaos
