#include "chaos/deref_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mc::chaos {

using layout::Index;

namespace {
thread_local DerefCacheStats g_stats;
}  // namespace

const DerefCacheStats& derefCacheStats() { return g_stats; }

DerefCache& derefCache() {
  thread_local DerefCache cache;
  return cache;
}

void ensureLocalizeMetrics() {
  obs::MetricsRegistry& reg = obs::threadRegistry();
  if (reg.has("localize.deref_cache.hits")) return;
  // Samplers read only the thread_local POD — safe regardless of the
  // destruction order of the registry and the cache object.
  reg.registerCounter("localize.deref_cache.hits",
                      [] { return static_cast<double>(g_stats.hits); });
  reg.registerCounter("localize.deref_cache.misses",
                      [] { return static_cast<double>(g_stats.misses); });
  reg.registerCounter("localize.deref_cache.insertions",
                      [] { return static_cast<double>(g_stats.insertions); });
  reg.registerCounter("localize.deref_cache.invalidations", [] {
    return static_cast<double>(g_stats.invalidations);
  });
  reg.registerCounter("localize.deref_cache.evictions",
                      [] { return static_cast<double>(g_stats.evictions); });
  reg.registerCounter("localize.deref_cache.entries",
                      [] { return static_cast<double>(g_stats.entries); });
  reg.registerCounter("localize.deref_cache.retargets",
                      [] { return static_cast<double>(g_stats.retargets); });
  reg.registerCounter("localize.deref_cache.retarget_dropped", [] {
    return static_cast<double>(g_stats.retargetDropped);
  });
}

DerefCache::Shard* DerefCache::findShard(std::uint64_t uid) {
  for (Shard& s : shards_) {
    if (s.uid == uid) return &s;
  }
  return nullptr;
}

std::size_t DerefCache::lookupSorted(std::uint64_t uid,
                                     std::span<const Index> sortedGlobals,
                                     ElementLoc* out, std::uint8_t* hit) {
  const Shard* shard = findShard(uid);
  if (shard == nullptr || shard->keys.empty()) {
    std::fill(hit, hit + sortedGlobals.size(), std::uint8_t{0});
    g_stats.misses += sortedGlobals.size();
    return 0;
  }
  std::size_t found = 0;
  // Queries ascend, so each binary search narrows the next one's range.
  auto from = shard->keys.begin();
  for (std::size_t i = 0; i < sortedGlobals.size(); ++i) {
    const Index g = sortedGlobals[i];
    from = std::lower_bound(from, shard->keys.end(), g);
    if (from != shard->keys.end() && *from == g) {
      out[i] = shard->locs[static_cast<std::size_t>(
          from - shard->keys.begin())];
      hit[i] = 1;
      ++found;
    } else {
      hit[i] = 0;
    }
  }
  g_stats.hits += found;
  g_stats.misses += sortedGlobals.size() - found;
  return found;
}

void DerefCache::insertSorted(std::uint64_t uid,
                              std::span<const Index> globals,
                              std::span<const ElementLoc> locs) {
  MC_CHECK(globals.size() == locs.size());
  if (globals.empty()) return;
  // Make room under the cap by dropping whole shards, oldest table first
  // (the incoming shard last — a batch larger than the cap still caches).
  while (total_ + globals.size() > kMaxEntries && !shards_.empty()) {
    const bool self = shards_.front().uid == uid;
    const std::size_t dropped = shards_.front().keys.size();
    shards_.erase(shards_.begin());
    total_ -= dropped;
    g_stats.evictions += dropped;
    g_stats.entries = total_;
    if (self) break;  // evicted our own history; start the shard fresh
  }
  Shard* shard = findShard(uid);
  if (shard == nullptr) {
    shards_.push_back(Shard{uid, {}, {}});
    shard = &shards_.back();
  }
  if (shard->keys.empty()) {
    shard->keys.assign(globals.begin(), globals.end());
    shard->locs.assign(locs.begin(), locs.end());
  } else {
    // Linear merge of two sorted, disjoint runs.
    std::vector<Index> keys;
    std::vector<ElementLoc> merged;
    keys.reserve(shard->keys.size() + globals.size());
    merged.reserve(keys.capacity());
    std::size_t a = 0, b = 0;
    while (a < shard->keys.size() || b < globals.size()) {
      if (b == globals.size() ||
          (a < shard->keys.size() && shard->keys[a] < globals[b])) {
        keys.push_back(shard->keys[a]);
        merged.push_back(shard->locs[a]);
        ++a;
      } else {
        keys.push_back(globals[b]);
        merged.push_back(locs[b]);
        ++b;
      }
    }
    shard->keys = std::move(keys);
    shard->locs = std::move(merged);
  }
  total_ += globals.size();
  g_stats.insertions += globals.size();
  g_stats.entries = total_;
}

bool DerefCache::retarget(std::uint64_t oldUid, std::uint64_t newUid,
                          std::span<const Index> sortedMigrated) {
  if (oldUid == newUid) return false;
  // A shard already keyed by the new uid would alias the rekeyed one.
  // Cannot happen in practice (uids are minted at table build, before any
  // lookup), but drop it defensively.
  invalidate(newUid);
  Shard* shard = findShard(oldUid);
  if (shard == nullptr) return false;
  const std::size_t before = shard->keys.size();
  // In-place two-pointer filter: both the shard keys and the migrated list
  // ascend.
  std::size_t w = 0;
  std::size_t m = 0;
  for (std::size_t r = 0; r < shard->keys.size(); ++r) {
    const Index g = shard->keys[r];
    while (m < sortedMigrated.size() && sortedMigrated[m] < g) ++m;
    if (m < sortedMigrated.size() && sortedMigrated[m] == g) continue;
    shard->keys[w] = g;
    shard->locs[w] = shard->locs[r];
    ++w;
  }
  shard->keys.resize(w);
  shard->locs.resize(w);
  shard->uid = newUid;
  total_ -= before - w;
  // The old table's shard is gone (rekeyed), which is what invalidations
  // has always counted; retargets/retargetDropped record the carry-over.
  ++g_stats.invalidations;
  ++g_stats.retargets;
  g_stats.retargetDropped += before - w;
  g_stats.entries = total_;
  return true;
}

bool DerefCache::invalidate(std::uint64_t uid) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].uid != uid) continue;
    total_ -= shards_[i].keys.size();
    shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(i));
    ++g_stats.invalidations;
    g_stats.entries = total_;
    return true;
  }
  return false;
}

void DerefCache::clear() {
  shards_.clear();
  total_ = 0;
  g_stats.entries = 0;
}

}  // namespace mc::chaos
