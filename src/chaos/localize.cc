#include "chaos/localize.h"

#include <unordered_map>

namespace mc::chaos {

using layout::Index;

Localized localize(transport::Comm& comm, const TranslationTable& table,
                   std::span<const Index> refs) {
  Localized out;
  const int np = comm.size();
  const int me = comm.rank();
  const Index ownedCount = table.localCount(me);

  // Distinct references in first-appearance order.
  std::vector<Index> unique;
  std::unordered_map<Index, size_t> uniqueIdx;
  unique.reserve(refs.size());
  for (Index g : refs) {
    if (uniqueIdx.emplace(g, unique.size()).second) unique.push_back(g);
  }

  // One dereference per distinct reference (collective).
  const std::vector<ElementLoc> locs = comm.computeValue([&] {
    return table.dereference(comm, unique);
  });

  // Assign ghost slots to distinct off-processor references and group the
  // needed remote offsets by owner.
  std::vector<Index> localOfUnique(unique.size());
  std::vector<std::vector<Index>> wantOffsets(static_cast<size_t>(np));
  std::vector<std::vector<Index>> wantGhostSlots(static_cast<size_t>(np));
  Index ghostCount = 0;
  for (size_t u = 0; u < unique.size(); ++u) {
    const ElementLoc& loc = locs[u];
    if (loc.proc == me) {
      localOfUnique[u] = loc.offset;
    } else {
      localOfUnique[u] = ownedCount + ghostCount;
      wantOffsets[static_cast<size_t>(loc.proc)].push_back(loc.offset);
      wantGhostSlots[static_cast<size_t>(loc.proc)].push_back(ghostCount);
      ++ghostCount;
    }
  }
  out.ghostCount = ghostCount;

  // Rewrite the full reference list.
  out.localIndices.reserve(refs.size());
  for (Index g : refs) {
    out.localIndices.push_back(localOfUnique[uniqueIdx[g]]);
  }

  // Exchange requests: the owner's send plan is my request list, in my
  // request order; my recv plan is the matching ghost slots.
  auto requests = comm.alltoall(wantOffsets);
  for (int q = 0; q < np; ++q) {
    const auto qq = static_cast<size_t>(q);
    if (q != me && !wantOffsets[qq].empty()) {
      sched::OffsetPlan plan;
      plan.peer = q;
      plan.offsets = wantGhostSlots[qq];  // indices into the ghost buffer
      out.gatherSched.recvs.push_back(std::move(plan));
    }
    if (q != me && !requests[qq].empty()) {
      sched::OffsetPlan plan;
      plan.peer = q;
      plan.offsets = requests[qq];  // my owned offsets they asked for
      out.gatherSched.sends.push_back(std::move(plan));
    }
  }
  out.gatherSched.sortByPeer();
  out.scatterAddSched = sched::reverse(out.gatherSched);
  return out;
}

}  // namespace mc::chaos
