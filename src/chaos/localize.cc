#include "chaos/localize.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "chaos/deref_cache.h"

namespace mc::chaos {

using layout::Index;

namespace {

/// The schedule-building tail shared by both inspectors: exchange the
/// per-owner request lists and assemble the gather/scatter-add schedules.
void buildGhostSchedules(transport::Comm& comm,
                         std::vector<std::vector<Index>>& wantOffsets,
                         std::vector<std::vector<Index>>& wantGhostSlots,
                         Localized& out) {
  const int np = comm.size();
  const int me = comm.rank();
  // Exchange requests: the owner's send plan is my request list, in my
  // request order; my recv plan is the matching ghost slots.
  auto requests = comm.alltoall(wantOffsets);
  for (int q = 0; q < np; ++q) {
    const auto qq = static_cast<size_t>(q);
    if (q != me && !wantOffsets[qq].empty()) {
      sched::OffsetPlan plan;
      plan.peer = q;
      plan.offsets = std::move(wantGhostSlots[qq]);  // ghost-buffer indices
      out.gatherSched.recvs.push_back(std::move(plan));
    }
    if (q != me && !requests[qq].empty()) {
      sched::OffsetPlan plan;
      plan.peer = q;
      plan.offsets = std::move(requests[qq]);  // my owned offsets they want
      out.gatherSched.sends.push_back(std::move(plan));
    }
  }
  out.gatherSched.sortByPeer();
  out.scatterAddSched = sched::reverse(out.gatherSched);
}

}  // namespace

Localized localize(transport::Comm& comm, const TranslationTable& table,
                   std::span<const Index> refs) {
  Localized out;
  const int np = comm.size();
  const int me = comm.rank();
  const Index ownedCount = table.localCount(me);

  // Sort-and-unique the references; uniqOf maps each reference to its
  // distinct slot.  The sorted distinct batch is what the dereference
  // cache probes in one pass.
  std::vector<Index> uniq;
  std::vector<std::uint32_t> uniqOf(refs.size());
  comm.compute([&] {
    std::vector<std::pair<Index, std::uint32_t>> order(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      order[i] = {refs[i], static_cast<std::uint32_t>(i)};
    }
    std::sort(order.begin(), order.end());
    uniq.reserve(order.size());
    for (const auto& [g, pos] : order) {
      if (uniq.empty() || uniq.back() != g) uniq.push_back(g);
      uniqOf[pos] = static_cast<std::uint32_t>(uniq.size() - 1);
    }
  });

  // Batched, cached dereference of the distinct references (collective).
  const std::vector<ElementLoc> locs = table.dereferenceCached(comm, uniq);

  // Walk the references in their original order, assigning each distinct
  // off-processor reference a ghost slot at its FIRST appearance — the
  // same slot sequence the hash-based oracle produces — and rewrite the
  // reference list in the same pass.
  std::vector<std::vector<Index>> wantOffsets(static_cast<size_t>(np));
  std::vector<std::vector<Index>> wantGhostSlots(static_cast<size_t>(np));
  comm.compute([&] {
    std::vector<Index> localOfUnique(uniq.size());
    std::vector<std::uint8_t> seen(uniq.size(), 0);
    Index ghostCount = 0;
    out.localIndices.reserve(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      const std::uint32_t u = uniqOf[i];
      if (!seen[u]) {
        seen[u] = 1;
        const ElementLoc& loc = locs[u];
        if (loc.proc == me) {
          localOfUnique[u] = loc.offset;
        } else {
          localOfUnique[u] = ownedCount + ghostCount;
          wantOffsets[static_cast<size_t>(loc.proc)].push_back(loc.offset);
          wantGhostSlots[static_cast<size_t>(loc.proc)].push_back(ghostCount);
          ++ghostCount;
        }
      }
      out.localIndices.push_back(localOfUnique[u]);
    }
    out.ghostCount = ghostCount;
  });

  buildGhostSchedules(comm, wantOffsets, wantGhostSlots, out);
  return out;
}

Localized localizeReference(transport::Comm& comm,
                            const TranslationTable& table,
                            std::span<const Index> refs) {
  Localized out;
  const int np = comm.size();
  const int me = comm.rank();
  const Index ownedCount = table.localCount(me);

  // Distinct references in first-appearance order.
  std::vector<Index> unique;
  std::unordered_map<Index, size_t> uniqueIdx;
  unique.reserve(refs.size());
  for (Index g : refs) {
    if (uniqueIdx.emplace(g, unique.size()).second) unique.push_back(g);
  }

  // One dereference per distinct reference (collective), uncached.
  const std::vector<ElementLoc> locs = comm.computeValue([&] {
    return table.dereference(comm, unique);
  });

  // Assign ghost slots to distinct off-processor references and group the
  // needed remote offsets by owner.
  std::vector<Index> localOfUnique(unique.size());
  std::vector<std::vector<Index>> wantOffsets(static_cast<size_t>(np));
  std::vector<std::vector<Index>> wantGhostSlots(static_cast<size_t>(np));
  Index ghostCount = 0;
  for (size_t u = 0; u < unique.size(); ++u) {
    const ElementLoc& loc = locs[u];
    if (loc.proc == me) {
      localOfUnique[u] = loc.offset;
    } else {
      localOfUnique[u] = ownedCount + ghostCount;
      wantOffsets[static_cast<size_t>(loc.proc)].push_back(loc.offset);
      wantGhostSlots[static_cast<size_t>(loc.proc)].push_back(ghostCount);
      ++ghostCount;
    }
  }
  out.ghostCount = ghostCount;

  // Rewrite the full reference list.
  out.localIndices.reserve(refs.size());
  for (Index g : refs) {
    out.localIndices.push_back(localOfUnique[uniqueIdx[g]]);
  }

  buildGhostSchedules(comm, wantOffsets, wantGhostSlots, out);
  return out;
}

}  // namespace mc::chaos
