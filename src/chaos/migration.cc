#include "chaos/migration.h"

#include <algorithm>

namespace mc::chaos {

using layout::Index;

namespace {

/// One routed assignment entry: global index + the local offset its owner
/// holds it at (the owner is implied by the alltoall source row).
struct GlobalOffset {
  Index g = 0;
  Index off = 0;
};

/// Routes an assignment to block-home ranks: home(g) = g / homeBlock.
std::vector<std::vector<GlobalOffset>> routeToHomes(
    std::span<const Index> mine, Index homeBlock, int nprocs) {
  std::vector<std::vector<GlobalOffset>> rows(
      static_cast<std::size_t>(nprocs));
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const Index g = mine[i];
    rows[static_cast<std::size_t>(g / homeBlock)].push_back(
        GlobalOffset{g, static_cast<Index>(i)});
  }
  return rows;
}

}  // namespace

std::vector<Index> migratedGlobals(transport::Comm& comm,
                                   std::span<const Index> oldMine,
                                   std::span<const Index> newMine,
                                   Index globalSize) {
  const int nprocs = comm.size();
  const Index homeBlock =
      std::max<Index>(1, (globalSize + nprocs - 1) / nprocs);
  // Each index has a home rank that sees both assignments' claims for it
  // and decides migration locally — two all-to-alls and one allgather,
  // independent of how irregular the distributions are.
  auto oldAt = comm.alltoall(routeToHomes(oldMine, homeBlock, nprocs));
  auto newAt = comm.alltoall(routeToHomes(newMine, homeBlock, nprocs));

  const Index myLo = std::min(globalSize, homeBlock * comm.rank());
  const Index myHi = std::min(globalSize, myLo + homeBlock);
  struct OwnerOffset {
    int owner = -1;  // -1: not owned in this assignment
    Index off = 0;
  };
  std::vector<OwnerOffset> oldLoc(static_cast<std::size_t>(myHi - myLo));
  std::vector<OwnerOffset> newLoc(static_cast<std::size_t>(myHi - myLo));
  for (int r = 0; r < nprocs; ++r) {
    for (const GlobalOffset& e : oldAt[static_cast<std::size_t>(r)]) {
      oldLoc[static_cast<std::size_t>(e.g - myLo)] = OwnerOffset{r, e.off};
    }
    for (const GlobalOffset& e : newAt[static_cast<std::size_t>(r)]) {
      newLoc[static_cast<std::size_t>(e.g - myLo)] = OwnerOffset{r, e.off};
    }
  }
  std::vector<Index> mineMigrated;
  for (Index g = myLo; g < myHi; ++g) {
    const OwnerOffset& a = oldLoc[static_cast<std::size_t>(g - myLo)];
    const OwnerOffset& b = newLoc[static_cast<std::size_t>(g - myLo)];
    if (a.owner != b.owner || (a.owner >= 0 && a.off != b.off)) {
      mineMigrated.push_back(g);
    }
  }
  // Home ranges ascend with rank, so concatenating the rows in rank order
  // yields the globally sorted migrated set directly.
  auto rows = comm.allgather<Index>(std::span<const Index>(mineMigrated));
  std::vector<Index> migrated;
  for (const std::vector<Index>& row : rows) {
    migrated.insert(migrated.end(), row.begin(), row.end());
  }
  return migrated;
}

std::vector<Index> stableRemapOrder(std::span<const Index> oldMine,
                                    std::span<const Index> newMineAnyOrder) {
  std::vector<Index> oldSorted(oldMine.begin(), oldMine.end());
  std::sort(oldSorted.begin(), oldSorted.end());
  std::vector<Index> newSorted(newMineAnyOrder.begin(),
                               newMineAnyOrder.end());
  std::sort(newSorted.begin(), newSorted.end());
  const auto inOld = [&](Index g) {
    return std::binary_search(oldSorted.begin(), oldSorted.end(), g);
  };
  const auto inNew = [&](Index g) {
    return std::binary_search(newSorted.begin(), newSorted.end(), g);
  };
  std::vector<Index> arrivals;
  for (const Index g : newSorted) {
    if (!inOld(g)) arrivals.push_back(g);
  }
  std::vector<Index> out;
  out.reserve(newSorted.size());
  std::size_t a = 0;
  for (const Index g : oldMine) {
    if (inNew(g)) {
      out.push_back(g);  // survivor keeps its slot
    } else if (a < arrivals.size()) {
      out.push_back(arrivals[a++]);  // departure's slot reused in place
    }
    // else: the assignment shrank past this slot; later survivors shift
    // left — unavoidable without holes in the local buffer.
  }
  for (; a < arrivals.size(); ++a) out.push_back(arrivals[a]);
  return out;
}

}  // namespace mc::chaos
