// Remap: move an irregular array to a new partitioning.
//
// Adaptive irregular applications repartition as the computation evolves
// (Chaos was built for exactly this: "runtime and language support for
// compiling adaptive irregular programs").  remap() builds the new
// translation table, derives the old-owner -> new-owner schedule through
// the existing copy machinery, moves the data, and returns the array under
// its new distribution.  Schedules built against the old distribution
// (localize results, Meta-Chaos schedules) are invalidated by a remap and
// must be rebuilt or *patched*: the optional `migratedOut` hands back the
// sorted migrated global indices, ready for core::deltaFromMigratedIndices
// and core::patchSchedule.
//
// The dereference cache survives a remap selectively: only entries whose
// (owner, offset) actually changed are dropped (DerefCache::retarget); the
// rest carry over to the new table's shard, so an inspector pass after an
// unrelated remap still hits.  Pass the new assignment through
// chaos::stableRemapOrder to keep survivors at their old offsets —
// otherwise a one-element boundary shift migrates everything.
#pragma once

#include "chaos/deref_cache.h"
#include "chaos/irreg_copy.h"
#include "chaos/irreg_array.h"
#include "chaos/migration.h"
#include "sched/executor.h"

namespace mc::chaos {

/// Collective: every processor passes the global indices it will own
/// *after* the remap (the new partitioner's assignment, local order).
/// Returns the array under the new distribution; `old` keeps its data and
/// distribution (caller discards it when done).  When `migratedOut` is
/// non-null it receives the sorted global indices whose (owner, offset)
/// changed — the DistDelta feed for patching dependent schedules.
template <typename T>
IrregArray<T> remap(const IrregArray<T>& old,
                    std::vector<layout::Index> newMine,
                    TranslationTable::Storage storage,
                    std::vector<layout::Index>* migratedOut) {
  transport::Comm& comm = old.comm();
  // Which elements actually move?  Computed against the assignment before
  // it is consumed by the new array below.
  std::vector<layout::Index> migrated =
      migratedGlobals(comm, old.myGlobals(), newMine, old.globalSize());
  auto newTable = std::make_shared<const TranslationTable>(
      TranslationTable::build(comm, newMine, old.globalSize(), storage,
                              old.table().modeledQueryCost()));
  // Selective invalidation, *before* the copy-schedule build dereferences
  // the new table: survivors resolve identically under it (unmigrated
  // means identical (owner, offset)), so they are carried into the new
  // table's shard and the build's own dereferences already hit.
  derefCache().retarget(old.table().uid(), newTable->uid(), migrated);
  IrregArray<T> fresh(comm, newTable, std::move(newMine));
  // Mapping: my old element at offset i (global g) goes to new location of
  // the same global index g.
  const auto myOld = old.myGlobals();
  std::vector<layout::Index> srcOffsets(myOld.size());
  std::vector<layout::Index> dstGlobals(myOld.begin(), myOld.end());
  for (size_t i = 0; i < myOld.size(); ++i) {
    srcOffsets[i] = static_cast<layout::Index>(i);
  }
  const sched::Schedule sched =
      buildIrregCopySchedule(comm, *newTable, srcOffsets, dstGlobals);
  sched::execute<T>(comm, sched, old.raw(), fresh.raw(), comm.nextUserTag());
  if (migratedOut != nullptr) *migratedOut = std::move(migrated);
  return fresh;
}

template <typename T>
IrregArray<T> remap(const IrregArray<T>& old,
                    std::vector<layout::Index> newMine,
                    TranslationTable::Storage storage) {
  return remap(old, std::move(newMine), storage, nullptr);
}

}  // namespace mc::chaos
