// Remap: move an irregular array to a new partitioning.
//
// Adaptive irregular applications repartition as the computation evolves
// (Chaos was built for exactly this: "runtime and language support for
// compiling adaptive irregular programs").  remap() builds the new
// translation table, derives the old-owner -> new-owner schedule through
// the existing copy machinery, moves the data, and returns the array under
// its new distribution.  Schedules built against the old distribution
// (localize results, Meta-Chaos schedules) are invalidated by a remap and
// must be rebuilt — the usual inspector/executor contract.
#pragma once

#include "chaos/deref_cache.h"
#include "chaos/irreg_copy.h"
#include "chaos/irreg_array.h"
#include "sched/executor.h"

namespace mc::chaos {

/// Collective: every processor passes the global indices it will own
/// *after* the remap (the new partitioner's assignment, local order).
/// Returns the array under the new distribution; `old` keeps its data and
/// distribution (caller discards it when done).
template <typename T>
IrregArray<T> remap(const IrregArray<T>& old,
                    std::vector<layout::Index> newMine,
                    TranslationTable::Storage storage) {
  transport::Comm& comm = old.comm();
  auto newTable = std::make_shared<const TranslationTable>(
      TranslationTable::build(comm, newMine, old.globalSize(), storage,
                              old.table().modeledQueryCost()));
  IrregArray<T> fresh(comm, newTable, std::move(newMine));
  // Mapping: my old element at offset i (global g) goes to new location of
  // the same global index g.
  const auto myOld = old.myGlobals();
  std::vector<layout::Index> srcOffsets(myOld.size());
  std::vector<layout::Index> dstGlobals(myOld.begin(), myOld.end());
  for (size_t i = 0; i < myOld.size(); ++i) {
    srcOffsets[i] = static_cast<layout::Index>(i);
  }
  const sched::Schedule sched =
      buildIrregCopySchedule(comm, *newTable, srcOffsets, dstGlobals);
  sched::execute<T>(comm, sched, old.raw(), fresh.raw(), comm.nextUserTag());
  // The data just migrated: locations cached for the old distribution are
  // the stale-cache bug class, so drop the old table's shard on this rank
  // (remap is collective — every participant does).  Inspector results
  // built against `old` were already invalidated by contract; this makes
  // the dereference cache honor the same contract.
  derefCache().invalidate(old.table().uid());
  return fresh;
}

}  // namespace mc::chaos
