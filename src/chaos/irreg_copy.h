// Chaos-native copy between two distributed arrays (the baseline of the
// paper's Table 2).
//
// To move data between a regular mesh and an irregular mesh using Chaos
// alone, the paper explains (Section 5.1) that one must treat the regular
// mesh pointwise: build a Chaos translation table for it, store the
// correspondence between the meshes explicitly, and let Chaos dereference
// the irregular side to compute a schedule.  The Chaos executor then pays an
// extra internal copy and an extra level of indirection relative to
// Meta-Chaos — which is why the paper finds the Meta-Chaos data copy
// slightly *faster* even though its schedule is built by a general
// mechanism.
//
// buildIrregCopySchedule: each processor passes the mapping entries whose
// *source* element it owns: (my local source offset, destination global
// index).  One collective dereference of the destination translation table
// dominates the cost, matching the paper's observation that the Chaos
// schedule build and the Meta-Chaos *cooperation* build (which uses the same
// dereference once) cost about the same.
#pragma once

#include "chaos/ttable.h"
#include "sched/schedule.h"
#include "sched/schedule_cache.h"

namespace mc::chaos {

/// Builds the copy schedule.  Collective.  Sends index the caller's source
/// storage; recvs index the caller's destination storage.
sched::Schedule buildIrregCopySchedule(
    transport::Comm& comm, const TranslationTable& dstTable,
    std::span<const layout::Index> mySrcOffsets,
    std::span<const layout::Index> dstGlobals);

/// Cached buildIrregCopySchedule.  Still collective: the build communicates
/// (the translation-table dereference), so the ranks first agree whether
/// *everyone* holds a cached copy — an allreduce of the local hit bit —
/// and rebuild together otherwise.  Keys cover the table's local shard,
/// this rank's mapping slice, and the program topology; cached schedules
/// come back run-compressed.
std::shared_ptr<const sched::Schedule> cachedIrregCopySchedule(
    transport::Comm& comm, const TranslationTable& dstTable,
    std::span<const layout::Index> mySrcOffsets,
    std::span<const layout::Index> dstGlobals);

/// The calling rank's cache behind cachedIrregCopySchedule (counters for
/// tests and benches).
sched::KeyedCache<sched::Schedule>& chaosScheduleCache();

/// Chaos-style executor: like sched::execute but with the extra internal
/// staging copy and extra indirection pass of the real library.  Collective.
template <typename T>
void executeChaosCopy(transport::Comm& comm, const sched::Schedule& sched,
                      std::span<const T> src, std::span<T> dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const sched::OffsetPlan& plan : sched.sends) {
    // Gather through the indirection into a staging buffer, then copy into
    // the message buffer (the extra copy the paper describes).
    std::vector<T> msg;
    comm.compute([&] {
      std::vector<T> stage;
      stage.reserve(plan.offsets.size());
      for (layout::Index off : plan.offsets) {
        stage.push_back(src[static_cast<size_t>(off)]);
      }
      msg.assign(stage.begin(), stage.end());
    });
    comm.send(plan.peer, tag, msg);
  }
  comm.compute([&] {
    // Local transfers also pass through the staging buffer.
    std::vector<T> stage;
    stage.reserve(sched.localPairs.size());
    for (const auto& [from, to] : sched.localPairs) {
      stage.push_back(src[static_cast<size_t>(from)]);
    }
    size_t i = 0;
    for (const auto& [from, to] : sched.localPairs) {
      dst[static_cast<size_t>(to)] = stage[i++];
    }
  });
  for (const sched::OffsetPlan& plan : sched.recvs) {
    const std::vector<T> msg = comm.recv<T>(plan.peer, tag);
    MC_REQUIRE(msg.size() == plan.offsets.size(),
               "schedule mismatch: peer %d sent %zu elements, expected %zu",
               plan.peer, msg.size(), plan.offsets.size());
    comm.compute([&] {
      std::vector<T> stage(msg.begin(), msg.end());  // the extra copy
      size_t i = 0;
      for (layout::Index off : plan.offsets) {
        dst[static_cast<size_t>(off)] = stage[i++];
      }
    });
  }
}

}  // namespace mc::chaos
