#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/schedule_cache.h"
#include "obs/metrics.h"
#include "snapshot/mc_schedule_io.h"
#include "util/blob_io.h"

namespace mc::snapshot {

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

/// Cumulative per-rank counters behind the snapshot.* obs metrics.
struct Counters {
  std::uint64_t saveBytes = 0;
  std::uint64_t saveEntries = 0;
  std::uint64_t restoreBytes = 0;
  std::uint64_t restoreEntries = 0;
  std::uint64_t restoreHits = 0;  // completed snapshotRestore calls
};

Counters& threadCounters() {
  thread_local Counters counters;
  thread_local bool registered = [] {
    obs::MetricsRegistry& reg = obs::threadRegistry();
    const Counters& c = counters;
    reg.registerCounter("snapshot.save.bytes", [&c] {
      return static_cast<double>(c.saveBytes);
    });
    reg.registerCounter("snapshot.save.entries", [&c] {
      return static_cast<double>(c.saveEntries);
    });
    reg.registerCounter("snapshot.restore.bytes", [&c] {
      return static_cast<double>(c.restoreBytes);
    });
    reg.registerCounter("snapshot.restore.entries", [&c] {
      return static_cast<double>(c.restoreEntries);
    });
    reg.registerCounter("snapshot.restore.hits", [&c] {
      return static_cast<double>(c.restoreHits);
    });
    return true;
  }();
  (void)registered;
  return counters;
}

std::filesystem::path rankFile(const std::string& dir, int rank) {
  return std::filesystem::path(dir) /
         ("rank" + std::to_string(rank) + ".mcsnap");
}

/// Allgathers a 128-bit digest: result[2r], result[2r+1] = rank r's halves.
std::vector<std::uint64_t> allgatherDigest(transport::Comm& comm,
                                           const HashStream::Digest& d) {
  const std::uint64_t mine[2] = {d[0], d[1]};
  const auto rows =
      comm.allgather<std::uint64_t>(std::span<const std::uint64_t>(mine, 2));
  std::vector<std::uint64_t> flat;
  flat.reserve(rows.size() * 2);
  for (const auto& row : rows) {
    MC_REQUIRE(row.size() == 2, "malformed digest row in allgather");
    flat.push_back(row[0]);
    flat.push_back(row[1]);
  }
  return flat;
}

/// Every rank must hold the *same* manifest — allgather the manifest
/// digests and compare, so a directory mixing files from two save
/// generations fails on every rank.
void requireAgreement(transport::Comm& comm, const HashStream::Digest& mine,
                      const char* what) {
  const std::vector<std::uint64_t> all = allgatherDigest(comm, mine);
  for (int rk = 0; rk < comm.size(); ++rk) {
    const auto i = static_cast<std::size_t>(rk) * 2;
    MC_REQUIRE(all[i] == mine[0] && all[i + 1] == mine[1],
               "snapshot %s disagrees between rank %d and rank %d — the "
               "directory mixes files from different snapshots",
               what, comm.rank(), rk);
  }
}

}  // namespace

void SectionRegistry::add(std::string name, SaveFn save, RestoreFn restore) {
  MC_REQUIRE(!name.empty(), "snapshot section needs a name");
  MC_REQUIRE(!has(name), "snapshot section '%s' is already registered",
             name.c_str());
  MC_REQUIRE(static_cast<bool>(save) && static_cast<bool>(restore),
             "snapshot section '%s' needs both callbacks", name.c_str());
  sections_.push_back(
      Section{std::move(name), std::move(save), std::move(restore)});
}

void SectionRegistry::remove(const std::string& name) {
  std::erase_if(sections_,
                [&](const Section& s) { return s.name == name; });
}

bool SectionRegistry::has(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

SectionRegistry& threadSections() {
  thread_local SectionRegistry registry;
  return registry;
}

}  // namespace mc::snapshot

namespace mc {

using snapshot::Report;

Report snapshotSave(transport::Comm& comm, const std::string& dir) {
  Report rep;

  // --- body: rank tag + schedule-cache dump + registered sections ----------
  std::vector<std::byte> payload;
  blob::putU64(payload, static_cast<std::uint64_t>(comm.size()));
  blob::putU64(payload, static_cast<std::uint64_t>(comm.rank()));

  core::ScheduleCache& cache = core::defaultScheduleCache();
  std::vector<std::pair<HashStream::Digest, std::vector<std::byte>>> entries;
  entries.reserve(cache.size());
  cache.forEachEntryOldestFirst(
      [&](const HashStream::Digest& key,
          const std::shared_ptr<const core::McSchedule>& value) {
        entries.emplace_back(key, snapshot::serializeMcSchedule(*value));
      });
  blob::putU64(payload, entries.size());
  for (const auto& [key, bytes] : entries) {
    blob::putU64(payload, key[0]);
    blob::putU64(payload, key[1]);
    blob::putBytes(payload, bytes);
  }
  rep.cacheEntries = entries.size();

  const auto& sections = snapshot::threadSections().sections();
  blob::putU64(payload, sections.size());
  for (const auto& s : sections) {
    blob::putStr(payload, s.name);
    blob::putBytes(payload, s.save(comm));
  }
  rep.sections = sections.size();

  const std::vector<std::byte> body =
      blob::frame(blob::kSnapshotBody, snapshot::kSnapshotVersion, payload);

  // --- manifest: every rank's body digest, identical in every file ---------
  const HashStream::Digest myDigest = blob::payloadChecksum(body);
  const std::vector<std::uint64_t> all =
      snapshot::allgatherDigest(comm, myDigest);
  std::vector<std::byte> mpayload;
  blob::putU64(mpayload, static_cast<std::uint64_t>(comm.size()));
  blob::putPods(mpayload, all);
  const std::vector<std::byte> manifest = blob::frame(
      blob::kSnapshotManifest, snapshot::kSnapshotVersion, mpayload);

  // --- write <dir>/rank<r>.mcsnap atomically (temp + rename) ---------------
  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    MC_REQUIRE(!ec, "cannot create snapshot directory '%s': %s", dir.c_str(),
               ec.message().c_str());
  }
  comm.barrier();  // the directory exists before anyone writes into it
  const std::filesystem::path path = snapshot::rankFile(dir, comm.rank());
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MC_REQUIRE(out.good(), "cannot open '%s' for writing",
               tmp.string().c_str());
    out.write(reinterpret_cast<const char*>(body.data()),
              static_cast<std::streamsize>(body.size()));
    out.write(reinterpret_cast<const char*>(manifest.data()),
              static_cast<std::streamsize>(manifest.size()));
    MC_REQUIRE(out.good(), "short write to '%s'", tmp.string().c_str());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  MC_REQUIRE(!ec, "cannot finalize snapshot file '%s': %s",
             path.string().c_str(), ec.message().c_str());
  comm.barrier();  // the snapshot is complete on every rank before return

  rep.bytes = body.size() + manifest.size();
  snapshot::Counters& counters = snapshot::threadCounters();
  counters.saveBytes += rep.bytes;
  counters.saveEntries += rep.cacheEntries;
  return rep;
}

Report snapshotRestore(transport::Comm& comm, const std::string& dir) {
  Report rep;
  const std::filesystem::path path = snapshot::rankFile(dir, comm.rank());

  std::vector<std::byte> file;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    MC_REQUIRE(in.good(), "no snapshot for rank %d under '%s'", comm.rank(),
               dir.c_str());
    const std::streamsize size = in.tellg();
    in.seekg(0);
    file.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(file.data()), size);
    MC_REQUIRE(in.good(), "short read from '%s'", path.string().c_str());
  }
  rep.bytes = file.size();

  // --- frames: body ++ manifest --------------------------------------------
  std::size_t bodySize = 0;
  const blob::FrameView body =
      blob::unframe(file, blob::kSnapshotBody, &bodySize);
  MC_REQUIRE(body.kindVersion == snapshot::kSnapshotVersion,
             "unknown snapshot version %u", body.kindVersion);
  const std::span<const std::byte> rest =
      std::span<const std::byte>(file).subspan(bodySize);
  const blob::FrameView manifest =
      blob::unframe(rest, blob::kSnapshotManifest);
  MC_REQUIRE(manifest.kindVersion == snapshot::kSnapshotVersion,
             "unknown snapshot manifest version %u", manifest.kindVersion);

  // --- agreement checks ----------------------------------------------------
  blob::ByteReader m(manifest.payload);
  const std::uint64_t nprocs = m.u64();
  MC_REQUIRE(nprocs == static_cast<std::uint64_t>(comm.size()),
             "snapshot was saved by a %llu-process program, this program has "
             "%d processes",
             static_cast<unsigned long long>(nprocs), comm.size());
  const std::vector<std::uint64_t> digests = m.pods<std::uint64_t>();
  m.requireEnd("snapshot manifest");
  MC_REQUIRE(digests.size() == 2 * static_cast<std::size_t>(comm.size()),
             "snapshot manifest lists %zu digests for %d ranks",
             digests.size() / 2, comm.size());
  const HashStream::Digest myDigest =
      blob::payloadChecksum(std::span<const std::byte>(file).first(bodySize));
  const auto di = static_cast<std::size_t>(comm.rank()) * 2;
  MC_REQUIRE(digests[di] == myDigest[0] && digests[di + 1] == myDigest[1],
             "snapshot body for rank %d does not match the manifest — the "
             "file was replaced or mixed in from another snapshot",
             comm.rank());
  snapshot::requireAgreement(comm, blob::payloadChecksum(manifest.payload),
                             "manifest");

  // --- body: rank tag + schedule cache + sections --------------------------
  blob::ByteReader r(body.payload);
  MC_REQUIRE(r.u64() == static_cast<std::uint64_t>(comm.size()),
             "snapshot body rank-count tag mismatch");
  MC_REQUIRE(r.u64() == static_cast<std::uint64_t>(comm.rank()),
             "snapshot body was saved by a different rank");

  core::ScheduleCache& cache = core::defaultScheduleCache();
  // Each entry is at least key (16 bytes) + blob length prefix (8 bytes).
  const std::uint64_t n = r.count(3 * sizeof(std::uint64_t));
  for (std::uint64_t i = 0; i < n; ++i) {
    HashStream::Digest key{r.u64(), r.u64()};
    core::McSchedule s = snapshot::deserializeMcSchedule(r.bytes());
    cache.insertEntry(
        key, std::make_shared<const core::McSchedule>(std::move(s)));
  }
  rep.cacheEntries = n;
  // Collective entry-count agreement: descriptor fingerprints are
  // rank-local, so the *keys* legitimately differ across ranks — but every
  // rank of one save dumped its cache at the same point, so the counts must
  // match.  A mismatch means the directory holds files from different runs.
  const std::uint64_t minN = comm.allreduceValue(
      n, [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
  const std::uint64_t maxN = comm.allreduceValue(
      n, [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  MC_REQUIRE(minN == maxN,
             "snapshot schedule-cache entry counts disagree across ranks "
             "(%llu vs %llu)",
             static_cast<unsigned long long>(minN),
             static_cast<unsigned long long>(maxN));

  const auto& sections = snapshot::threadSections().sections();
  const std::uint64_t ns = r.count(2 * sizeof(std::uint64_t));
  MC_REQUIRE(ns == sections.size(),
             "snapshot holds %llu sections, %zu are registered — restore "
             "with the same subsystems that saved",
             static_cast<unsigned long long>(ns), sections.size());
  for (std::uint64_t i = 0; i < ns; ++i) {
    const std::string name = r.str();
    const std::span<const std::byte> bytes = r.bytes();
    const auto& s = sections[static_cast<std::size_t>(i)];
    MC_REQUIRE(name == s.name,
               "snapshot section '%s' does not match registered section "
               "'%s' (order and names must agree)",
               name.c_str(), s.name.c_str());
    s.restore(comm, bytes);
  }
  rep.sections = ns;
  r.requireEnd("snapshot body");

  snapshot::Counters& counters = snapshot::threadCounters();
  counters.restoreBytes += rep.bytes;
  counters.restoreEntries += rep.cacheEntries;
  counters.restoreHits += 1;
  return rep;
}

bool snapshotAvailable(transport::Comm& comm, const std::string& dir) {
  std::error_code ec;
  const bool mine =
      std::filesystem::exists(snapshot::rankFile(dir, comm.rank()), ec) &&
      !ec;
  const int all = comm.allreduceValue(
      mine ? 1 : 0, [](int a, int b) { return a < b ? a : b; });
  return all != 0;
}

}  // namespace mc
