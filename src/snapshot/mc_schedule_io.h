// Framed serialization of core::McSchedule — the value type of the
// content-addressed schedule cache.
//
// The inner sched::Schedule payload reuses the exact writer/reader pair of
// sched/serialize.h (writeSchedulePayload / readSchedulePayload), so a
// schedule restored from a snapshot is byte-for-byte the schedule the
// cross-program sharing path would have shipped.  The provenance segment
// lanes (SendSeg / RecvSeg) are all-Index PODs with no padding, so they
// round-trip as raw lanes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/schedule_builder.h"
#include "sched/serialize.h"
#include "util/blob_io.h"

namespace mc::snapshot {

inline constexpr std::uint32_t kMcScheduleBlobVersion = 1;

static_assert(sizeof(core::SendSeg) == 7 * sizeof(layout::Index),
              "SendSeg must be padding-free to serialize as a raw lane");
static_assert(sizeof(core::RecvSeg) == 5 * sizeof(layout::Index),
              "RecvSeg must be padding-free to serialize as a raw lane");

inline std::vector<std::byte> serializeMcSchedule(
    const core::McSchedule& s) {
  std::vector<std::byte> payload;
  sched::writeSchedulePayload(payload, s.plan);
  blob::putU64(payload, static_cast<std::uint64_t>(s.numElements));
  blob::putU64(payload,
               static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(s.remoteProgram)));
  blob::putU64(payload, s.isSender ? 1 : 0);
  blob::putU64(payload, s.hasProvenance ? 1 : 0);
  blob::putPods(payload, s.sendSegs);
  blob::putPods(payload, s.recvSegs);
  return blob::frame(blob::kMcSchedule, kMcScheduleBlobVersion, payload);
}

inline core::McSchedule deserializeMcSchedule(
    std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kMcSchedule);
  MC_REQUIRE(v.kindVersion == kMcScheduleBlobVersion,
             "unknown McSchedule blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  core::McSchedule s;
  s.plan = sched::readSchedulePayload(r);
  s.numElements = static_cast<layout::Index>(r.u64());
  s.remoteProgram =
      static_cast<int>(static_cast<std::int64_t>(r.u64()));
  s.isSender = r.u64() != 0;
  s.hasProvenance = r.u64() != 0;
  s.sendSegs = r.pods<core::SendSeg>();
  s.recvSegs = r.pods<core::RecvSeg>();
  r.requireEnd("McSchedule blob");
  MC_REQUIRE(s.numElements >= 0,
             "corrupt McSchedule blob: negative element count");
  MC_REQUIRE(s.remoteProgram >= -1,
             "corrupt McSchedule blob: remote program %d", s.remoteProgram);
  MC_REQUIRE(s.hasProvenance || (s.sendSegs.empty() && s.recvSegs.empty()),
             "corrupt McSchedule blob: provenance lanes without the flag");
  return s;
}

}  // namespace mc::snapshot
