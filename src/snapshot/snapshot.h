// Per-rank persistent snapshots: save the expensive inspector state
// (content-addressed schedule cache + registered subsystem sections) to a
// directory, and restore it after a restart so the process comes back warm.
//
// The paper's inspector/executor split makes inspector results the state
// worth keeping: schedules and translation tables cost collective
// communication to build and nothing but bytes to keep.  PR 8 serialized
// schedules across *programs*; this layer serializes them across
// *restarts*, inside the framed, versioned, checksummed container of
// util/blob_io.h.
//
// Layout on disk: one file per rank, `<dir>/rank<r>.mcsnap`, holding two
// concatenated frames —
//
//   frame(kSnapshotBody)      rank tag, schedule-cache entries (key +
//                             framed McSchedule), named sections
//   frame(kSnapshotManifest)  program size + every rank's body digest
//
// The manifest is identical in every rank's file (it is allgathered before
// writing), which is what makes a mismatched restore fail loudly:
//   * a file from a different program size fails the rank-count check;
//   * a file from a different save generation fails the cross-rank
//     manifest-agreement check (digests differ);
//   * a truncated or edited file fails the frame checksum;
//   * ranks whose restored caches disagree in entry count fail the
//     collective entry-count agreement check.
//
// Sections are the per-layer hook: a subsystem (e.g. the compute server)
// registers a named save/restore callback pair on its rank's thread-local
// SectionRegistry, and its bytes travel inside the body frame.  Restore
// requires the registered section set and the saved section set to match
// exactly — a snapshot is only meaningful to the configuration that wrote
// it.
//
// Both entry points are collective over the program; every rank must call
// them together (they barrier and allgather internally).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "transport/comm.h"

namespace mc::snapshot {

/// Serializes a subsystem's state to bytes (typically a nested frame).
using SaveFn = std::function<std::vector<std::byte>(transport::Comm&)>;
/// Restores a subsystem's state from the bytes its SaveFn produced.
using RestoreFn =
    std::function<void(transport::Comm&, std::span<const std::byte>)>;

/// Per-rank (thread-local) registry of named snapshot sections.  Sections
/// are saved and restored in registration order.
class SectionRegistry {
 public:
  void add(std::string name, SaveFn save, RestoreFn restore);
  void remove(const std::string& name);
  bool has(const std::string& name) const;

  struct Section {
    std::string name;
    SaveFn save;
    RestoreFn restore;
  };
  const std::vector<Section>& sections() const { return sections_; }

 private:
  std::vector<Section> sections_;
};

/// The calling virtual processor's section registry (thread-local, like
/// core::defaultScheduleCache()).
SectionRegistry& threadSections();

/// What a save/restore did, per rank.  Mirrored by the snapshot.* obs
/// counters (cumulative across calls on the thread).
struct Report {
  std::uint64_t bytes = 0;          ///< framed bytes written / read
  std::uint64_t cacheEntries = 0;   ///< schedule-cache entries moved
  std::uint64_t sections = 0;       ///< named sections moved
};

}  // namespace mc::snapshot

namespace mc {

/// Collective: every rank serializes its schedule cache and registered
/// sections into `<dir>/rank<r>.mcsnap` (created atomically via a temp file
/// + rename; `dir` is created if missing).
snapshot::Report snapshotSave(transport::Comm& comm, const std::string& dir);

/// Collective inverse: every rank restores from its own file, after the
/// rank-count, manifest-agreement, and entry-count agreement checks pass.
/// Throws mc::Error (on every rank that detects it) on any mismatch.
snapshot::Report snapshotRestore(transport::Comm& comm,
                                 const std::string& dir);

/// Collective probe: true iff every rank of the program finds its own
/// snapshot file under `dir` (the warm-start "is there anything to restore"
/// test; agreement is allreduced so all ranks answer identically).
bool snapshotAvailable(transport::Comm& comm, const std::string& dir);

}  // namespace mc
