// Framed per-rank serialization of the four libraries' distributed
// containers (parti / hpfrt / tulip / chaos).
//
// Each blob holds the *replicated* distribution descriptor plus the saving
// rank's local shard, tagged with the saving rank, the program size, and
// sizeof(T).  Restore is collective in the same sense construction is:
// every rank of the program calls it with its own blob, the container is
// rebuilt through the library's ordinary collective constructor (which
// re-validates the descriptor against the program), and the shard is copied
// back only after every count in the blob checked out.  A blob saved by a
// different rank, a different program size, or a different element type is
// rejected loudly — never reinterpreted.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "chaos/irreg_array.h"
#include "hpfrt/hpf_array.h"
#include "parti/dist_array.h"
#include "tulip/collection.h"
#include "util/blob_io.h"

namespace mc::snapshot {

inline constexpr std::uint32_t kArrayBlobVersion = 1;

namespace detail {

template <typename T>
void putShardHeader(std::vector<std::byte>& out, const transport::Comm& c) {
  blob::putU64(out, sizeof(T));
  blob::putU64(out, static_cast<std::uint64_t>(c.rank()));
  blob::putU64(out, static_cast<std::uint64_t>(c.size()));
}

template <typename T>
void readShardHeader(blob::ByteReader& r, const transport::Comm& c,
                     const char* what) {
  const std::uint64_t elem = r.u64();
  MC_REQUIRE(elem == sizeof(T),
             "%s blob holds %llu-byte elements, this program reads %zu-byte "
             "elements",
             what, static_cast<unsigned long long>(elem), sizeof(T));
  const std::uint64_t rank = r.u64();
  const std::uint64_t nprocs = r.u64();
  MC_REQUIRE(nprocs == static_cast<std::uint64_t>(c.size()),
             "%s blob was saved by a %llu-process program, this program has "
             "%d processes",
             what, static_cast<unsigned long long>(nprocs), c.size());
  MC_REQUIRE(rank == static_cast<std::uint64_t>(c.rank()),
             "%s blob was saved by rank %llu, restoring rank is %d", what,
             static_cast<unsigned long long>(rank), c.rank());
}

inline void putShape(std::vector<std::byte>& out, const layout::Shape& s) {
  blob::putU64(out, static_cast<std::uint64_t>(s.rank));
  for (int d = 0; d < s.rank; ++d) {
    blob::putU64(out, static_cast<std::uint64_t>(s[d]));
  }
}

inline layout::Shape readShape(blob::ByteReader& r, const char* what) {
  const std::uint64_t rank = r.u64();
  MC_REQUIRE(rank >= 1 && rank <= layout::kMaxRank,
             "%s blob has shape rank %llu (supported: 1..%d)", what,
             static_cast<unsigned long long>(rank), layout::kMaxRank);
  layout::Shape s;
  s.rank = static_cast<int>(rank);
  for (int d = 0; d < s.rank; ++d) {
    const layout::Index e = static_cast<layout::Index>(r.u64());
    MC_REQUIRE(e >= 0, "%s blob has a negative extent", what);
    s[d] = e;
  }
  return s;
}

template <typename T>
void copyShard(std::vector<T>&& shard, std::span<T> dst, const char* what) {
  MC_REQUIRE(shard.size() == dst.size(),
             "%s blob carries %zu local elements, the rebuilt container "
             "holds %zu",
             what, shard.size(), dst.size());
  if (!shard.empty()) {
    std::memcpy(dst.data(), shard.data(), shard.size() * sizeof(T));
  }
}

}  // namespace detail

// --- Multiblock Parti -------------------------------------------------------

template <typename T>
std::vector<std::byte> serializeArray(const parti::BlockDistArray<T>& a) {
  std::vector<std::byte> payload;
  detail::putShardHeader<T>(payload, a.comm());
  detail::putShape(payload, a.globalShape());
  blob::putPods(payload, a.decomp().grid());
  blob::putU64(payload, static_cast<std::uint64_t>(a.ghost()));
  const std::span<const T> raw = a.raw();
  blob::putPods(payload, std::vector<T>(raw.begin(), raw.end()));
  return blob::frame(blob::kPartiArray, kArrayBlobVersion, payload);
}

template <typename T>
parti::BlockDistArray<T> deserializePartiArray(
    transport::Comm& comm, std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kPartiArray);
  MC_REQUIRE(v.kindVersion == kArrayBlobVersion,
             "unknown parti-array blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  detail::readShardHeader<T>(r, comm, "parti array");
  const layout::Shape global = detail::readShape(r, "parti array");
  const std::vector<int> grid = r.pods<int>();
  const std::uint64_t ghost = r.u64();
  MC_REQUIRE(ghost <= 1u << 20, "parti array blob: implausible ghost width");
  std::vector<T> shard = r.pods<T>();
  r.requireEnd("parti array blob");
  // BlockDecomp's constructor re-validates grid shape vs. nprocs.
  parti::BlockDistArray<T> a(comm, layout::BlockDecomp(global, grid),
                             static_cast<int>(ghost));
  detail::copyShard(std::move(shard), a.raw(), "parti array");
  return a;
}

// --- HPF runtime ------------------------------------------------------------

static_assert(sizeof(hpfrt::DimDist) ==
                  2 * sizeof(int) + sizeof(layout::Index),
              "DimDist must be padding-free to serialize as a raw lane");

template <typename T>
std::vector<std::byte> serializeArray(const hpfrt::HpfArray<T>& a) {
  std::vector<std::byte> payload;
  detail::putShardHeader<T>(payload, a.comm());
  detail::putShape(payload, a.globalShape());
  blob::putPods(payload, a.dist().dims());
  const std::span<const T> raw = a.raw();
  blob::putPods(payload, std::vector<T>(raw.begin(), raw.end()));
  return blob::frame(blob::kHpfArray, kArrayBlobVersion, payload);
}

template <typename T>
hpfrt::HpfArray<T> deserializeHpfArray(transport::Comm& comm,
                                       std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kHpfArray);
  MC_REQUIRE(v.kindVersion == kArrayBlobVersion,
             "unknown hpf-array blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  detail::readShardHeader<T>(r, comm, "hpf array");
  const layout::Shape global = detail::readShape(r, "hpf array");
  const std::vector<hpfrt::DimDist> dims = r.pods<hpfrt::DimDist>();
  for (const hpfrt::DimDist& d : dims) {
    MC_REQUIRE(d.kind >= hpfrt::DistKind::kBlock &&
                   d.kind <= hpfrt::DistKind::kBlockCyclic,
               "hpf array blob: unknown distribution kind");
    MC_REQUIRE(d.procs >= 1 && d.param >= 1,
               "hpf array blob: corrupt dimension distribution");
  }
  std::vector<T> shard = r.pods<T>();
  r.requireEnd("hpf array blob");
  // HpfDist's constructor re-validates dims vs. the global shape.
  hpfrt::HpfArray<T> a(comm, hpfrt::HpfDist(global, dims));
  detail::copyShard(std::move(shard), a.raw(), "hpf array");
  return a;
}

// --- Tulip (pC++) -----------------------------------------------------------

template <typename T>
std::vector<std::byte> serializeArray(const tulip::Collection<T>& a) {
  std::vector<std::byte> payload;
  detail::putShardHeader<T>(payload, a.comm());
  blob::putU64(payload, static_cast<std::uint64_t>(a.size()));
  blob::putU64(payload, static_cast<std::uint64_t>(a.desc().placement));
  const std::span<const T> raw = a.raw();
  blob::putPods(payload, std::vector<T>(raw.begin(), raw.end()));
  return blob::frame(blob::kTulipCollection, kArrayBlobVersion, payload);
}

template <typename T>
tulip::Collection<T> deserializeTulipCollection(
    transport::Comm& comm, std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kTulipCollection);
  MC_REQUIRE(v.kindVersion == kArrayBlobVersion,
             "unknown tulip-collection blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  detail::readShardHeader<T>(r, comm, "tulip collection");
  const layout::Index size = static_cast<layout::Index>(r.u64());
  MC_REQUIRE(size >= 0, "tulip collection blob: negative size");
  const std::uint64_t placement = r.u64();
  MC_REQUIRE(placement <= 1,
             "tulip collection blob: unknown placement tag");
  std::vector<T> shard = r.pods<T>();
  r.requireEnd("tulip collection blob");
  tulip::Collection<T> a(comm, size,
                         static_cast<tulip::Placement>(placement));
  detail::copyShard(std::move(shard), a.raw(), "tulip collection");
  return a;
}

// --- Chaos ------------------------------------------------------------------

template <typename T>
std::vector<std::byte> serializeArray(const chaos::IrregArray<T>& a) {
  std::vector<std::byte> payload;
  detail::putShardHeader<T>(payload, a.comm());
  blob::putBytes(payload, a.table().serialize());
  const std::span<const layout::Index> globals = a.myGlobals();
  blob::putPods(payload,
                std::vector<layout::Index>(globals.begin(), globals.end()));
  const std::span<const T> raw = a.raw();
  blob::putPods(payload, std::vector<T>(raw.begin(), raw.end()));
  return blob::frame(blob::kIrregArray, kArrayBlobVersion, payload);
}

template <typename T>
chaos::IrregArray<T> deserializeIrregArray(transport::Comm& comm,
                                           std::span<const std::byte> data) {
  const blob::FrameView v = blob::unframe(data, blob::kIrregArray);
  MC_REQUIRE(v.kindVersion == kArrayBlobVersion,
             "unknown irreg-array blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  detail::readShardHeader<T>(r, comm, "irreg array");
  // The nested table blob mints a fresh uid (ttable.h), so the restored
  // array can never hit stale DerefCache entries keyed by the saved table.
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::deserialize(r.bytes()));
  std::vector<layout::Index> myGlobals = r.pods<layout::Index>();
  std::vector<T> shard = r.pods<T>();
  r.requireEnd("irreg array blob");
  for (const layout::Index g : myGlobals) {
    MC_REQUIRE(g >= 0 && g < table->globalSize(),
               "irreg array blob: global index out of range");
  }
  // The IrregArray constructor re-validates |myGlobals| against the table.
  chaos::IrregArray<T> a(comm, std::move(table), std::move(myGlobals));
  detail::copyShard(std::move(shard), a.raw(), "irreg array");
  return a;
}

}  // namespace mc::snapshot
