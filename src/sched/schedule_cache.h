// A keyed cache of communication schedules.
//
// The paper's amortization argument (Figure 15, Table 1) rests on building a
// schedule once and executing it many times.  This cache makes that pattern
// automatic: call sites ask for "the schedule for (descriptor, regions,
// method)" and get the previously built — and run-compressed — schedule
// back when nothing in the key changed.  Keys are 128-bit content digests
// (util/hash.h); values are shared_ptr-owned so cached schedules stay valid
// across eviction.  Eviction is LRU with a fixed capacity, and hit / miss /
// insertion / eviction counters are surfaced like transport::TrafficStats so
// tests and benches can assert reuse actually happened.
//
// The cache itself is a per-virtual-processor (per-thread) structure with no
// locking: in the SPMD model every rank builds and caches its own halves of
// each schedule.  Whether all ranks agree on hit-vs-miss is the *caller's*
// concern — builds that communicate must agree collectively before
// consulting the cache (see core::ScheduleCache).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "util/error.h"
#include "util/hash.h"

namespace mc::sched {

/// Counters mirroring the shape of transport::TrafficStats.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Epoch snapshot/diff, like transport::TrafficStats: the cache activity of
/// a code region is `after - before` — multi-case benches attribute hits
/// and misses to the right case without resetting the cumulative counters.
inline CacheStats operator-(const CacheStats& a, const CacheStats& b) {
  CacheStats d;
  d.hits = a.hits - b.hits;
  d.misses = a.misses - b.misses;
  d.insertions = a.insertions - b.insertions;
  d.evictions = a.evictions - b.evictions;
  return d;
}

template <typename V>
class KeyedCache {
 public:
  using Key = HashStream::Digest;

  explicit KeyedCache(std::size_t capacity = 64) : capacity_(capacity) {
    MC_REQUIRE(capacity > 0, "cache capacity must be positive");
  }

  /// Lookup without touching the stats or the LRU order.
  std::shared_ptr<const V> peek(const Key& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second->value;
  }

  /// Lookup; counts a hit (and refreshes LRU order) or a miss.
  std::shared_ptr<const V> find(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    noteHit(key);
    return it->second->value;
  }

  /// Marks an externally confirmed hit: refreshes LRU order and counts it.
  void noteHit(const Key& key) {
    const auto it = map_.find(key);
    MC_REQUIRE(it != map_.end(), "noteHit on a key that is not cached");
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
  }

  void noteMiss() { ++stats_.misses; }

  /// Inserts (or replaces) the value under `key`, evicting the least
  /// recently used entry if the cache is full.
  void insert(const Key& key, std::shared_ptr<const V> value) {
    MC_REQUIRE(value != nullptr, "cannot cache a null schedule");
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.insertions;
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(value)});
    map_.emplace(key, lru_.begin());
    ++stats_.insertions;
  }

  /// find-or-build convenience for builds that need no cross-processor
  /// agreement (purely local schedule constructions).
  template <typename F>
  std::shared_ptr<const V> getOrBuild(const Key& key, F&& build) {
    if (auto hit = find(key)) return hit;
    std::shared_ptr<const V> value = std::forward<F>(build)();
    insert(key, value);
    return value;
  }

  const CacheStats& stats() const { return stats_; }
  void resetStats() { stats_ = CacheStats{}; }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Changes the capacity, evicting LRU entries down to the new bound.
  void setCapacity(std::size_t capacity) {
    MC_REQUIRE(capacity > 0, "cache capacity must be positive");
    capacity_ = capacity;
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  void clear() {
    map_.clear();
    lru_.clear();
  }

  /// Visits every entry from least to most recently used:
  /// fn(key, shared_ptr<const V>).  Snapshot writers dump the cache in this
  /// order so a restore that insert()s sequentially reproduces the LRU
  /// order exactly (and, over capacity, evicts the oldest entries first).
  template <typename F>
  void forEachOldestFirst(F&& fn) const {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      fn(it->key, it->value);
    }
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const V> value;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k[0]);
    }
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> map_;
  CacheStats stats_;
};

}  // namespace mc::sched
