// Communication schedules shared by the runtime libraries
// (inspector/executor pattern of Saltz et al.).
//
// A Schedule lists, per peer processor, the element offsets to pack (sends)
// or unpack (recvs), in an order both sides agree on; same-processor
// transfers are local offset pairs.  Executing a schedule sends *at most one
// message per processor pair* — the aggregation property the paper calls out
// as matching hand-written message passing (Section 4.1.4).
//
// The same structure serves Multiblock Parti (ghost fills, section moves),
// Chaos (gather / scatter-add), the HPF runtime (redistribution) and
// Meta-Chaos itself (inter-library copies); each library differs only in how
// it *builds* the offsets.
//
// This header holds the schedule *data structures* (plus merge / reverse);
// execution lives in sched/executor.h (sched::Executor and the execute /
// executeAdd one-shot wrappers).
#pragma once

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "layout/index.h"
#include "sched/run_plan.h"
#include "transport/comm.h"

namespace mc::sched {

/// One peer's pack (or unpack) order.  Plans are runs-first: the Meta-Chaos
/// builders emit `runs` directly and never materialize per-element offsets;
/// the library-level builders (parti/hpfrt/chaos) still produce `offsets`
/// and gain `runs` on compress().  Either form alone is complete — when
/// both are present they describe the same element sequence.
struct OffsetPlan {
  int peer = 0;
  std::vector<layout::Index> offsets;  // element offsets in the local buffer
  /// Run-compressed form (see run_plan.h).  When present, pack/unpack
  /// execute run-wise (memcpy for contiguous runs) instead of element-wise.
  std::vector<OffsetRun> runs;

  bool compressed() const { return !runs.empty() || offsets.empty(); }

  layout::Index elementCount() const {
    return runs.empty() ? static_cast<layout::Index>(offsets.size())
                        : runElementCount(std::span<const OffsetRun>(runs));
  }

  /// The per-element offset list, expanded from `runs` for runs-first
  /// plans.  Legacy consumers (element-wise executors, differential tests)
  /// use this; the hot paths never do.
  std::vector<layout::Index> expandedOffsets() const {
    if (!offsets.empty() || runs.empty()) return offsets;
    return expandOffsets(std::span<const OffsetRun>(runs));
  }
};

struct Schedule {
  std::vector<OffsetPlan> sends;  // sorted by peer
  std::vector<OffsetPlan> recvs;  // sorted by peer
  std::vector<std::pair<layout::Index, layout::Index>> localPairs;
  /// Run-compressed form of `localPairs`; empty until compress()ed.
  std::vector<LocalRun> localRuns;
  /// Authentic Multiblock Parti stages local transfers through an
  /// intermediate buffer (the paper contrasts this with Meta-Chaos's direct
  /// local copy in Section 5.3).  Meta-Chaos schedules set this to false.
  bool bufferLocalCopies = true;

  layout::Index totalSendElements() const {
    layout::Index n = 0;
    for (const auto& p : sends) n += p.elementCount();
    return n;
  }
  layout::Index totalRecvElements() const {
    layout::Index n = 0;
    for (const auto& p : recvs) n += p.elementCount();
    return n;
  }
  layout::Index localElementCount() const {
    return localRuns.empty()
               ? static_cast<layout::Index>(localPairs.size())
               : runPairCount(std::span<const LocalRun>(localRuns));
  }
  /// Local (src, dst) pairs, expanded from `localRuns` when the schedule is
  /// runs-first.
  std::vector<std::pair<layout::Index, layout::Index>> expandedLocalPairs()
      const {
    if (!localPairs.empty() || localRuns.empty()) return localPairs;
    return expandPairs(std::span<const LocalRun>(localRuns));
  }
  void sortByPeer() {
    auto byPeer = [](const OffsetPlan& a, const OffsetPlan& b) {
      return a.peer < b.peer;
    };
    std::sort(sends.begin(), sends.end(), byPeer);
    std::sort(recvs.begin(), recvs.end(), byPeer);
  }

  /// Populates the run-compressed form of every plan that still carries an
  /// offset list.  Runs-first plans (empty offsets, non-empty runs) are
  /// already authoritative and are left alone.  Idempotent.
  void compress() {
    for (OffsetPlan& p : sends) {
      if (!p.offsets.empty()) {
        p.runs = compressOffsets(std::span<const layout::Index>(p.offsets));
      }
    }
    for (OffsetPlan& p : recvs) {
      if (!p.offsets.empty()) {
        p.runs = compressOffsets(std::span<const layout::Index>(p.offsets));
      }
    }
    if (!localPairs.empty()) {
      localRuns = compressPairs(
          std::span<const std::pair<layout::Index, layout::Index>>(
              localPairs));
    }
  }

  /// Drops the expanded forms (offsets, localPairs) of a compressed
  /// schedule, leaving the runs as the only representation — this is how
  /// cached schedules are stored, halving their memory.  Requires
  /// compressed().
  void releaseExpandedForms() {
    MC_REQUIRE(compressed(),
               "releaseExpandedForms needs a compressed schedule");
    for (OffsetPlan& p : sends) {
      p.offsets.clear();
      p.offsets.shrink_to_fit();
    }
    for (OffsetPlan& p : recvs) {
      p.offsets.clear();
      p.offsets.shrink_to_fit();
    }
    localPairs.clear();
    localPairs.shrink_to_fit();
  }

  bool compressed() const {
    for (const OffsetPlan& p : sends) {
      if (!p.compressed()) return false;
    }
    for (const OffsetPlan& p : recvs) {
      if (!p.compressed()) return false;
    }
    return localRuns.size() > 0 || localPairs.empty();
  }
};

/// Merges schedules into one; the merged executor ships ONE message per
/// peer for the whole group instead of one per part — Chaos's
/// schedule-merging optimization for transfers that always run together.
/// All processors must merge the same parts in the same order (the
/// per-peer pack order becomes part order, consistently on both sides).
/// Offsets of different parts may index different buffers only if the
/// caller executes the merged schedule against a common buffer pair.
inline Schedule merge(std::span<const Schedule> parts) {
  Schedule out;
  if (parts.empty()) return out;
  out.bufferLocalCopies = parts.front().bufferLocalCopies;
  bool allCompressed = true;
  bool allOffsets = true;  // every plan still carries an offset list
  bool allPairs = true;    // every part still carries local pairs
  for (const Schedule& part : parts) {
    MC_REQUIRE(part.bufferLocalCopies == out.bufferLocalCopies,
               "cannot merge schedules with different local-copy policies");
    allCompressed = allCompressed && part.compressed();
    for (const OffsetPlan& p : part.sends) {
      allOffsets = allOffsets && (!p.offsets.empty() || p.runs.empty());
    }
    for (const OffsetPlan& p : part.recvs) {
      allOffsets = allOffsets && (!p.offsets.empty() || p.runs.empty());
    }
    allPairs = allPairs && (!part.localPairs.empty() || part.localRuns.empty());
  }
  // Peer -> lane index, so appending stays O(plans) instead of the
  // O(parts x peers^2) repeated linear scan.
  std::unordered_map<int, size_t> sendLane, recvLane;
  auto append = [&](std::vector<OffsetPlan>& into,
                    std::unordered_map<int, size_t>& lane,
                    const OffsetPlan& plan) {
    const auto [it, fresh] = lane.try_emplace(plan.peer, into.size());
    if (fresh) into.push_back(OffsetPlan{plan.peer, {}, {}});
    OffsetPlan& dst = into[it->second];
    if (allCompressed) {
      // Concatenate runs directly (run-wise greedy == element-wise greedy),
      // no expand-and-recompress round trip.
      for (const OffsetRun& run : plan.runs) appendOffsetRun(dst.runs, run);
      if (allOffsets) {
        dst.offsets.insert(dst.offsets.end(), plan.offsets.begin(),
                           plan.offsets.end());
      }
    } else {
      const std::vector<layout::Index> offs = plan.expandedOffsets();
      dst.offsets.insert(dst.offsets.end(), offs.begin(), offs.end());
    }
  };
  for (const Schedule& part : parts) {
    for (const OffsetPlan& p : part.sends) append(out.sends, sendLane, p);
    for (const OffsetPlan& p : part.recvs) append(out.recvs, recvLane, p);
    if (allCompressed) {
      for (const LocalRun& run : part.localRuns) {
        appendLocalRun(out.localRuns, run);
      }
      if (allPairs) {
        out.localPairs.insert(out.localPairs.end(), part.localPairs.begin(),
                              part.localPairs.end());
      }
    } else {
      const auto pairs = part.expandedLocalPairs();
      out.localPairs.insert(out.localPairs.end(), pairs.begin(), pairs.end());
    }
  }
  out.sortByPeer();
  return out;
}

/// Reverses a schedule: sends become recvs and vice versa, local pairs flip.
/// The paper notes Meta-Chaos schedules are symmetric — one schedule moves
/// data either direction (Section 4.3); this implements that reversal.
inline Schedule reverse(const Schedule& sched) {
  Schedule out;
  out.sends = sched.recvs;  // per-plan runs stay valid: offsets are unchanged
  out.recvs = sched.sends;
  out.localPairs.reserve(sched.localPairs.size());
  for (const auto& [from, to] : sched.localPairs) {
    out.localPairs.emplace_back(to, from);
  }
  out.localRuns.reserve(sched.localRuns.size());
  for (const LocalRun& run : sched.localRuns) {
    out.localRuns.push_back(
        LocalRun{run.dst, run.src, run.count, run.dstStride, run.srcStride});
  }
  out.bufferLocalCopies = sched.bufferLocalCopies;
  return out;
}

}  // namespace mc::sched
