// Communication schedules shared by the runtime libraries
// (inspector/executor pattern of Saltz et al.).
//
// A Schedule lists, per peer processor, the element offsets to pack (sends)
// or unpack (recvs), in an order both sides agree on; same-processor
// transfers are local offset pairs.  Executing a schedule sends *at most one
// message per processor pair* — the aggregation property the paper calls out
// as matching hand-written message passing (Section 4.1.4).
//
// The same structure serves Multiblock Parti (ghost fills, section moves),
// Chaos (gather / scatter-add), the HPF runtime (redistribution) and
// Meta-Chaos itself (inter-library copies); each library differs only in how
// it *builds* the offsets.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "layout/index.h"
#include "transport/comm.h"

namespace mc::sched {

struct OffsetPlan {
  int peer = 0;
  std::vector<layout::Index> offsets;  // element offsets in the local buffer
};

struct Schedule {
  std::vector<OffsetPlan> sends;  // sorted by peer
  std::vector<OffsetPlan> recvs;  // sorted by peer
  std::vector<std::pair<layout::Index, layout::Index>> localPairs;
  /// Authentic Multiblock Parti stages local transfers through an
  /// intermediate buffer (the paper contrasts this with Meta-Chaos's direct
  /// local copy in Section 5.3).  Meta-Chaos schedules set this to false.
  bool bufferLocalCopies = true;

  layout::Index totalSendElements() const {
    layout::Index n = 0;
    for (const auto& p : sends) n += static_cast<layout::Index>(p.offsets.size());
    return n;
  }
  layout::Index totalRecvElements() const {
    layout::Index n = 0;
    for (const auto& p : recvs) n += static_cast<layout::Index>(p.offsets.size());
    return n;
  }
  void sortByPeer() {
    auto byPeer = [](const OffsetPlan& a, const OffsetPlan& b) {
      return a.peer < b.peer;
    };
    std::sort(sends.begin(), sends.end(), byPeer);
    std::sort(recvs.begin(), recvs.end(), byPeer);
  }
};

/// Executes `sched` within one program: packs `src` elements, sends at most
/// one message per peer, copies local pairs, then unpacks into `dst`.
/// Collective; `tag` must match across the program (comm.nextUserTag()).
/// `src` and `dst` may alias (e.g. a ghost fill within one buffer).
template <typename T>
void execute(transport::Comm& comm, const Schedule& sched,
             std::span<const T> src, std::span<T> dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Pack/copy/unpack loops run under compute() so their CPU time is charged
  // to the virtual clock; the messages charge their own transfer costs.
  for (const OffsetPlan& plan : sched.sends) {
    std::vector<T> buf;
    comm.compute([&] {
      buf.reserve(plan.offsets.size());
      for (layout::Index off : plan.offsets) {
        buf.push_back(src[static_cast<size_t>(off)]);
      }
    });
    comm.send(plan.peer, tag, buf);
  }
  comm.compute([&] {
    if (sched.bufferLocalCopies) {
      std::vector<T> buf;
      buf.reserve(sched.localPairs.size());
      for (const auto& [from, to] : sched.localPairs) {
        buf.push_back(src[static_cast<size_t>(from)]);
      }
      size_t i = 0;
      for (const auto& [from, to] : sched.localPairs) {
        dst[static_cast<size_t>(to)] = buf[i++];
      }
    } else {
      for (const auto& [from, to] : sched.localPairs) {
        dst[static_cast<size_t>(to)] = src[static_cast<size_t>(from)];
      }
    }
  });
  for (const OffsetPlan& plan : sched.recvs) {
    const std::vector<T> buf = comm.recv<T>(plan.peer, tag);
    MC_REQUIRE(buf.size() == plan.offsets.size(),
               "schedule mismatch: peer %d sent %zu elements, expected %zu",
               plan.peer, buf.size(), plan.offsets.size());
    comm.compute([&] {
      size_t i = 0;
      for (layout::Index off : plan.offsets) {
        dst[static_cast<size_t>(off)] = buf[i++];
      }
    });
  }
}

/// Like execute, but *accumulates* received and local elements into `dst`
/// (dst[off] += value).  This is the Chaos scatter-add executor used for
/// irregular reductions such as Loop 3 of the paper's Figure 1.
template <typename T>
void executeAdd(transport::Comm& comm, const Schedule& sched,
                std::span<const T> src, std::span<T> dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetPlan& plan : sched.sends) {
    std::vector<T> buf;
    comm.compute([&] {
      buf.reserve(plan.offsets.size());
      for (layout::Index off : plan.offsets) {
        buf.push_back(src[static_cast<size_t>(off)]);
      }
    });
    comm.send(plan.peer, tag, buf);
  }
  comm.compute([&] {
    for (const auto& [from, to] : sched.localPairs) {
      dst[static_cast<size_t>(to)] += src[static_cast<size_t>(from)];
    }
  });
  for (const OffsetPlan& plan : sched.recvs) {
    const std::vector<T> buf = comm.recv<T>(plan.peer, tag);
    MC_REQUIRE(buf.size() == plan.offsets.size(),
               "schedule mismatch: peer %d sent %zu elements, expected %zu",
               plan.peer, buf.size(), plan.offsets.size());
    comm.compute([&] {
      size_t i = 0;
      for (layout::Index off : plan.offsets) {
        dst[static_cast<size_t>(off)] += buf[i++];
      }
    });
  }
}

/// Merges schedules into one; the merged executor ships ONE message per
/// peer for the whole group instead of one per part — Chaos's
/// schedule-merging optimization for transfers that always run together.
/// All processors must merge the same parts in the same order (the
/// per-peer pack order becomes part order, consistently on both sides).
/// Offsets of different parts may index different buffers only if the
/// caller executes the merged schedule against a common buffer pair.
inline Schedule merge(std::span<const Schedule> parts) {
  Schedule out;
  if (parts.empty()) return out;
  out.bufferLocalCopies = parts.front().bufferLocalCopies;
  auto append = [](std::vector<OffsetPlan>& into,
                   const std::vector<OffsetPlan>& from) {
    for (const OffsetPlan& plan : from) {
      auto it = std::find_if(into.begin(), into.end(), [&](const OffsetPlan& p) {
        return p.peer == plan.peer;
      });
      if (it == into.end()) {
        into.push_back(plan);
      } else {
        it->offsets.insert(it->offsets.end(), plan.offsets.begin(),
                           plan.offsets.end());
      }
    }
  };
  for (const Schedule& part : parts) {
    MC_REQUIRE(part.bufferLocalCopies == out.bufferLocalCopies,
               "cannot merge schedules with different local-copy policies");
    append(out.sends, part.sends);
    append(out.recvs, part.recvs);
    out.localPairs.insert(out.localPairs.end(), part.localPairs.begin(),
                          part.localPairs.end());
  }
  out.sortByPeer();
  return out;
}

/// Reverses a schedule: sends become recvs and vice versa, local pairs flip.
/// The paper notes Meta-Chaos schedules are symmetric — one schedule moves
/// data either direction (Section 4.3); this implements that reversal.
inline Schedule reverse(const Schedule& sched) {
  Schedule out;
  out.sends = sched.recvs;
  out.recvs = sched.sends;
  out.localPairs.reserve(sched.localPairs.size());
  for (const auto& [from, to] : sched.localPairs) {
    out.localPairs.emplace_back(to, from);
  }
  out.bufferLocalCopies = sched.bufferLocalCopies;
  return out;
}

}  // namespace mc::sched
