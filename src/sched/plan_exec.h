// Shared pack/unpack primitives for one OffsetPlan.
//
// Every executor needs the same three moves — gather a plan's elements into
// a contiguous buffer, scatter a contiguous buffer to a plan's elements,
// and the accumulating scatter — each with a run-wise fast path and an
// element-wise fallback for uncompressed plans.  These helpers are that
// logic, written once; sched::Executor, the reference executors, and the
// inter-program data-move halves all call them instead of carrying private
// copies of the same lambdas.
#pragma once

#include <span>
#include <type_traits>

#include "sched/run_plan.h"
#include "sched/schedule.h"

namespace mc::sched {

/// Packs `plan`'s source elements into `out`, which must hold
/// plan.elementCount() elements.  Run-wise when the plan is compressed.
template <typename T>
void packPlan(const OffsetPlan& plan, std::span<const T> src, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!plan.runs.empty()) {
    packRuns(src, std::span<const OffsetRun>(plan.runs), out);
    return;
  }
  for (layout::Index off : plan.offsets) {
    *out++ = src[static_cast<size_t>(off)];
  }
}

/// Unpacks `buf` (plan.elementCount() elements, pack order) into `dst` at
/// the plan's offsets.
template <typename T>
void unpackPlan(const OffsetPlan& plan, const T* buf, std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!plan.runs.empty()) {
    unpackRuns(std::span<const OffsetRun>(plan.runs), buf, dst);
    return;
  }
  for (layout::Index off : plan.offsets) {
    dst[static_cast<size_t>(off)] = *buf++;
  }
}

/// Accumulating unpack: dst[off] += value, in pack order.
template <typename T>
void unpackPlanAdd(const OffsetPlan& plan, const T* buf, std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!plan.runs.empty()) {
    unpackRunsAdd(std::span<const OffsetRun>(plan.runs), buf, dst);
    return;
  }
  for (layout::Index off : plan.offsets) {
    dst[static_cast<size_t>(off)] += *buf++;
  }
}

}  // namespace mc::sched
