// sched::Executor — the zero-copy, arrival-order schedule executor.
//
// A Schedule is built once and executed many times (the inspector/executor
// split the paper inherits from Saltz et al.); the free-function execute()
// re-derived buffers and matching state on every call and paid two payload
// copies per message (pack buffer -> Message on send, Message -> temporary
// vector on receive).  An Executor instead *binds* to one schedule:
//
//   bind (construction)           run (per time-step)
//   ---------------------------   -------------------------------------
//   per-peer plan byte counts     pack runs straight into a pooled
//   recv slots indexed by         payload buffer, move it into the
//     source global rank          Message (zero copies), drain receives
//   persistent free-buffer list   in *arrival order*, unpack straight
//                                 out of the Message payload, recycle
//                                 the buffer for the next step's sends
//
// In steady state a run() performs no transport-layer payload copies and —
// for schedules whose send and receive volumes match, e.g. ghost exchanges —
// no payload heap allocations: each received buffer becomes one of the next
// step's send buffers.  TrafficStats{bytesCopied, allocations} observe this.
//
// Arrival-order drain: receives match any rank of the peer program
// (Comm::recvMsgAnyOf) and are routed to their plan by the sender's global
// rank.  This is safe for copy semantics because builders produce *disjoint*
// per-peer receive offsets — unpacks commute — and each (peer, tag) pair
// carries exactly one message per run, so the MPI non-overtaking guarantee
// is never needed across peers, only within one pair where the mailbox
// already provides it.  Accumulating runs (runAdd) are NOT order-independent
// (floating-point += does not commute across peers targeting the same
// offset), so the drain stashes payloads and applies them in peer order —
// results stay bitwise identical under any delivery interleaving.
//
// setDrainOrder(DrainOrder::kPeer) is a debug flag restoring the old
// peer-ordered receives; data results are identical, only the virtual-clock
// interleaving (and wall time) differ.
//
// Split-phase execution: run() is synchronous — it blocks draining every
// receive before the caller computes a single point, so per-step time is
// communication latency *added to* compute.  start() instead posts all
// sends and returns a Pending handle; the caller computes whatever does not
// touch the schedule's destination footprint (see footprint.h), calling
// Pending::poll() now and then to consume messages that have already
// arrived, and Pending::finish(dst) / finishAdd(dst) to drain the rest,
// apply local plans, and unpack — communication rides under computation.
// Unpacks are deferred to finish in *plan order*, so results are bitwise
// identical to run()/runAdd() under any delivery interleaving (copy unpacks
// commute; add already applied in peer order).  The buffer-recycling
// invariant survives: payloads stash by plan slot while pending and recycle
// into the executor's free list at finish, so steady-state split-phase runs
// stay zero-copy and allocation-free exactly like run().  A Pending
// destroyed without finish cancels cleanly: the abandoned exchange's
// messages are drained and discarded so the next run sees a clean mailbox.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "obs/span.h"
#include "sched/footprint.h"
#include "sched/kernels.h"
#include "sched/node_agg.h"
#include "sched/plan_exec.h"
#include "sched/schedule.h"
#include "transport/comm.h"

namespace mc::sched {

/// How run() consumes its receives.
enum class DrainOrder {
  kArrival,  // any-source within the peer program, routed by sender rank
  kPeer,     // fixed peer order (debug: fully deterministic virtual clocks)
};

namespace detail {
inline std::atomic<DrainOrder>& drainOrderFlag() {
  static std::atomic<DrainOrder> flag{DrainOrder::kArrival};
  return flag;
}
}  // namespace detail

inline DrainOrder drainOrder() {
  return detail::drainOrderFlag().load(std::memory_order_relaxed);
}
/// Process-wide debug switch; set it before the world runs (it is read by
/// every virtual processor).
inline void setDrainOrder(DrainOrder order) {
  detail::drainOrderFlag().store(order, std::memory_order_relaxed);
}

template <typename T>
class Executor {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Binds to an intra-program schedule the caller keeps alive.
  Executor(transport::Comm& comm, const Schedule& sched)
      : Executor(comm, &sched, nullptr, /*remoteProgram=*/-1) {}

  /// Binds to an intra-program schedule, sharing ownership (the usual form
  /// for cached schedules).
  Executor(transport::Comm& comm, std::shared_ptr<const Schedule> sched)
      : Executor(comm, sched.get(), sched, /*remoteProgram=*/-1) {}

  /// The sending half of an inter-program move (peer ranks of the
  /// schedule's sends live in `remoteProgram`).
  static Executor sender(transport::Comm& comm, const Schedule& sched,
                         int remoteProgram) {
    MC_REQUIRE(sched.recvs.empty(),
               "sender half must not carry receive plans");
    MC_REQUIRE(sched.localElementCount() == 0,
               "inter-program schedules have no local transfers");
    return Executor(comm, &sched, nullptr, remoteProgram);
  }
  static Executor sender(transport::Comm& comm,
                         std::shared_ptr<const Schedule> sched,
                         int remoteProgram) {
    MC_REQUIRE(sched && sched->recvs.empty() &&
               sched->localElementCount() == 0);
    return Executor(comm, sched.get(), sched, remoteProgram);
  }

  /// The receiving half of an inter-program move.
  static Executor receiver(transport::Comm& comm, const Schedule& sched,
                           int remoteProgram) {
    MC_REQUIRE(sched.sends.empty(),
               "receiver half must not carry send plans");
    MC_REQUIRE(sched.localElementCount() == 0,
               "inter-program schedules have no local transfers");
    return Executor(comm, &sched, nullptr, remoteProgram);
  }
  static Executor receiver(transport::Comm& comm,
                           std::shared_ptr<const Schedule> sched,
                           int remoteProgram) {
    MC_REQUIRE(sched && sched->sends.empty() &&
               sched->localElementCount() == 0);
    return Executor(comm, sched.get(), sched, remoteProgram);
  }

  const Schedule& schedule() const { return *sched_; }

  /// Re-binds this executor to a new (e.g. patched) schedule without the
  /// cold-start costs of constructing a fresh one: recycled payload buffers
  /// survive the re-bind (stashed payloads join them), and compiled plan
  /// kernels are carried over for every peer whose plan is unchanged — only
  /// plans the repartitioning actually touched recompile.  After one step
  /// of a same-shaped schedule the executor is back to its steady state
  /// (zero payload allocations per run).  Intra-program only.
  void rebind(const Schedule& sched) { rebindTo(&sched, nullptr); }
  void rebind(std::shared_ptr<const Schedule> sched) {
    const Schedule* p = sched.get();
    MC_REQUIRE(p != nullptr);
    rebindTo(p, std::move(sched));
  }

  // --- intra-program runs ---------------------------------------------------

  /// One schedule execution: pack + send, local copies, drain + unpack.
  /// Collective over the program; `tag` must match across it.  `src` and
  /// `dst` may alias (ghost fills).
  void run(std::span<const T> src, std::span<T> dst, int tag) {
    MC_REQUIRE(remoteProgram_ < 0,
               "inter-program executor: use runSend / runRecv");
    MC_REQUIRE(!inFlight_,
               "split-phase run in flight: finish() it before run()");
    sendPhase(src, tag);
    localPhase(src, dst, /*add=*/false);
    if (agg_) {
      drainAggregated(dst, tag, /*add=*/false);
    } else {
      drainCopy(dst, tag);
    }
  }
  void run(std::span<const T> src, std::span<T> dst) {
    run(src, dst, comm_->nextUserTag());
  }

  /// Accumulating execution (dst[off] += value): the Chaos scatter-add.
  /// Received contributions are applied in peer order regardless of arrival
  /// order, so results are bitwise deterministic.
  void runAdd(std::span<const T> src, std::span<T> dst, int tag) {
    MC_REQUIRE(remoteProgram_ < 0,
               "inter-program executor: use runSend / runRecv");
    MC_REQUIRE(!inFlight_,
               "split-phase run in flight: finish() it before runAdd()");
    sendPhase(src, tag);
    localPhase(src, dst, /*add=*/true);
    if (agg_) {
      drainAggregated(dst, tag, /*add=*/true);
    } else {
      drainAdd(dst, tag);
    }
  }
  void runAdd(std::span<const T> src, std::span<T> dst) {
    runAdd(src, dst, comm_->nextUserTag());
  }

  // --- split-phase runs -----------------------------------------------------

  /// A split-phase run in flight (see the file comment).  Move-only; exactly
  /// one of finish()/finishAdd() must eventually run, or the destructor
  /// cancels the exchange (drains and discards its messages).
  class Pending {
   public:
    Pending(const Pending&) = delete;
    Pending& operator=(const Pending&) = delete;
    Pending(Pending&& other) noexcept : ex_(other.ex_) {
      other.ex_ = nullptr;
    }
    Pending& operator=(Pending&&) = delete;
    ~Pending() {
      if (ex_ != nullptr) ex_->cancelPending();
    }

    /// Opportunistic non-blocking drain: consumes every message that has
    /// already arrived (stashing the payload — unpacking waits for finish),
    /// then returns true when all receives are in.  A no-op under
    /// DrainOrder::kPeer, whose virtual clocks must stay independent of
    /// wall-clock arrival.
    bool poll() {
      requireActive();
      return ex_->pollPending();
    }

    /// True when every expected message has been consumed (by poll).
    bool done() const {
      requireActive();
      return ex_->pendingDone();
    }

    /// Blocks for the remaining messages, applies local transfers from the
    /// span passed to start(), unpacks everything in plan order, recycles
    /// payloads.  Result is bitwise identical to run(src, dst, tag).
    void finish(std::span<T> dst) {
      requireActive();
      Executor* ex = ex_;
      ex_ = nullptr;
      ex->finishPending(dst, /*add=*/false);
    }

    /// Accumulating finish; bitwise identical to runAdd(src, dst, tag).
    void finishAdd(std::span<T> dst) {
      requireActive();
      Executor* ex = ex_;
      ex_ = nullptr;
      ex->finishPending(dst, /*add=*/true);
    }

   private:
    friend class Executor;
    explicit Pending(Executor* ex) : ex_(ex) {}
    void requireActive() const {
      MC_REQUIRE(ex_ != nullptr,
                 "split-phase handle already finished (or moved from)");
    }

    Executor* ex_;  // null once finished / moved from
  };

  /// Posts all sends for one schedule execution and returns without touching
  /// `dst` — receives, local transfers, and unpacks happen in the returned
  /// handle's finish()/finishAdd().  Between start and finish the caller may
  /// compute freely outside footprint().dstTouched (of dst) and
  /// footprint().localSrc (of src); `src` must stay alive and unmodified at
  /// those localSrc offsets until finish.  Collective over the program.
  Pending start(std::span<const T> src, int tag) {
    MC_REQUIRE(remoteProgram_ < 0,
               "inter-program executor: use runSend / runRecv");
    MC_REQUIRE(!inFlight_,
               "split-phase run already in flight: finish() it first");
    sendPhase(src, tag);
    ++runEpoch_;
    inFlight_ = true;
    pendingTag_ = tag;
    pendingSrc_ = src;
    arrived_ = 0;
    return Pending(this);
  }
  Pending start(std::span<const T> src) {
    return start(src, comm_->nextUserTag());
  }

  /// The schedule's destination footprint — which offsets a run touches and
  /// which are free for overlapped computation.  Built once, on first use
  /// (one-shot executes never pay for it).
  const Footprint& footprint() const {
    if (!footprint_.has_value()) footprint_ = Footprint::of(*sched_);
    return *footprint_;
  }

  // --- inter-program halves -------------------------------------------------

  /// Sender half; the remote program concurrently calls runRecv on the
  /// matching receiver executor.  Collective over both programs.
  void runSend(std::span<const T> src) {
    MC_REQUIRE(remoteProgram_ >= 0, "intra-program executor: use run");
    sendPhase(src, comm_->nextInterTag(remoteProgram_));
  }

  /// Receiver half.
  void runRecv(std::span<T> dst) {
    MC_REQUIRE(remoteProgram_ >= 0, "intra-program executor: use run");
    drainCopy(dst, comm_->nextInterTag(remoteProgram_));
  }

  /// Split-phase receiver half: allocates the paired inter-program tag *now*
  /// — so it lines up with the remote sender's runSend in the usual paired
  /// tag-allocation order — and returns a Pending to poll/finish later.
  /// Between startRecv and finish the receiver's rank is free to compute;
  /// the compute server stages batch k+1's receives this way so their
  /// messages drain underneath batch k's multiply.
  Pending startRecv() {
    MC_REQUIRE(remoteProgram_ >= 0, "intra-program executor: use start");
    MC_REQUIRE(!inFlight_,
               "split-phase run already in flight: finish() it first");
    const int tag = comm_->nextInterTag(remoteProgram_);
    ++runEpoch_;
    inFlight_ = true;
    pendingTag_ = tag;
    pendingSrc_ = {};
    arrived_ = 0;
    return Pending(this);
  }

 private:
  struct RecvSlot {
    int srcGlobal = 0;       // sender's global rank (the arrival-order key)
    std::size_t bytes = 0;   // exact expected payload size
    std::uint64_t epoch = 0;  // last run that consumed this slot
  };

  Executor(transport::Comm& comm, const Schedule* sched,
           std::shared_ptr<const Schedule> keepAlive, int remoteProgram)
      : comm_(&comm),
        keepAlive_(std::move(keepAlive)),
        sched_(sched),
        remoteProgram_(remoteProgram) {
    MC_REQUIRE(sched_ != nullptr);
    bind();
  }

  void bind() { bindReusing(nullptr, nullptr, nullptr); }

  /// Fills all bind-time state for sched_.  When `old` (plus its compiled
  /// kernels) is given, plans identical to the old schedule's plan for the
  /// same peer reuse the already-compiled kernel instead of recompiling —
  /// the rebind() fast path for untouched peers.
  void bindReusing(const Schedule* old, std::vector<PlanKernel>* oldSend,
                   std::vector<PlanKernel>* oldRecv) {
    const int peerProg =
        remoteProgram_ >= 0 ? remoteProgram_ : comm_->program();
    sendPlanBytes_.reserve(sched_->sends.size());
    for (const OffsetPlan& p : sched_->sends) {
      sendPlanBytes_.push_back(static_cast<std::size_t>(p.elementCount()) *
                               sizeof(T));
    }
    slots_.reserve(sched_->recvs.size());
    for (const OffsetPlan& p : sched_->recvs) {
      RecvSlot s;
      s.srcGlobal = comm_->globalRankOf(peerProg, p.peer);
      s.bytes = static_cast<std::size_t>(p.elementCount()) * sizeof(T);
      // Plans are sorted by peer and global ranks are monotone in peer, so
      // slots_ is sorted by srcGlobal and slot index == plan index; a
      // duplicate peer would break the one-message-per-pair matching.
      MC_REQUIRE(slots_.empty() || slots_.back().srcGlobal < s.srcGlobal,
                 "receive plans must be sorted by peer, without duplicates");
      slots_.push_back(s);
    }
    stash_.resize(sched_->recvs.size());
    stashOff_.assign(sched_->recvs.size(), 0);
    bindAggregation();
    // Compile the dispatch kernels once per bind (see kernels.h): every
    // run thereafter moves bytes through the variant the plan's shape
    // earned instead of re-branching per run.
    ensureKernelMetrics();
    compileLane(sched_->sends, old != nullptr ? &old->sends : nullptr,
                oldSend, sendKernels_);
    compileLane(sched_->recvs, old != nullptr ? &old->recvs : nullptr,
                oldRecv, recvKernels_);
    localKernel_ = LocalKernel::compile(*sched_);
  }

  /// Compiles one lane of plan kernels, carrying over the old compiled
  /// kernel for any peer whose plan is bitwise unchanged (two-pointer walk —
  /// both lanes are sorted by peer).
  static void compileLane(const std::vector<OffsetPlan>& plans,
                          const std::vector<OffsetPlan>* oldPlans,
                          std::vector<PlanKernel>* oldKernels,
                          std::vector<PlanKernel>& out) {
    out.reserve(plans.size());
    std::size_t j = 0;
    for (const OffsetPlan& p : plans) {
      const PlanKernel* reuse = nullptr;
      if (oldPlans != nullptr && oldKernels != nullptr) {
        while (j < oldPlans->size() && (*oldPlans)[j].peer < p.peer) ++j;
        if (j < oldPlans->size() && (*oldPlans)[j].peer == p.peer &&
            (*oldPlans)[j].runs == p.runs &&
            (*oldPlans)[j].offsets == p.offsets) {
          reuse = &(*oldKernels)[j];
        }
      }
      out.push_back(reuse != nullptr ? *reuse : PlanKernel::compile(p));
    }
  }

  void rebindTo(const Schedule* sched, std::shared_ptr<const Schedule> keep) {
    MC_REQUIRE(remoteProgram_ < 0, "rebind is intra-program only");
    MC_REQUIRE(!inFlight_,
               "split-phase run in flight: finish() it before rebind()");
    const Schedule* old = sched_;
    // Keep the old schedule alive until the reuse walk below is done.
    std::shared_ptr<const Schedule> oldKeepAlive = std::move(keepAlive_);
    std::vector<PlanKernel> oldSendKernels = std::move(sendKernels_);
    std::vector<PlanKernel> oldRecvKernels = std::move(recvKernels_);
    // Stashed payload capacity is as good as a free buffer; keep it.
    for (std::vector<std::byte>& buf : stash_) {
      if (buf.capacity() > 0) freeBufs_.push_back(std::move(buf));
    }
    stash_.clear();
    sendPlanBytes_.clear();
    slots_.clear();
    sendKernels_.clear();
    recvKernels_.clear();
    footprint_.reset();
    sched_ = sched;
    keepAlive_ = std::move(keep);
    bindReusing(old, &oldSendKernels, &oldRecvKernels);
    // Trim the retained buffers to the new steady-state demand (one per
    // send plan); the overflow returns to the world pool.
    while (freeBufs_.size() > sched_->sends.size()) {
      comm_->releasePayload(std::move(freeBufs_.back()));
      freeBufs_.pop_back();
    }
  }

  // --- node aggregation -----------------------------------------------------

  /// Captures the process-wide aggregation flag for this bind and derives
  /// the per-node send grouping and receive expectations.  Intra-program
  /// only; with aggregation on, binds are collective over the program (the
  /// node leader learns which frames to expect via an intra-node exchange).
  void bindAggregation() {
    agg_ = false;
    directSendIdx_.clear();
    aggGroups_.clear();
    frameSrcs_.clear();
    directRecvPeers_.clear();
    aggExpected_ = 0;
    if (remoteProgram_ >= 0 || !nodeAggregation()) return;
    MC_REQUIRE(alignof(T) <= 8,
               "node aggregation supports element alignment up to 8");
    agg_ = true;
    const int myNode = comm_->myNode();
    // Group send plans by destination node; plans stay in peer order inside
    // each group and groups sort by leader, so framing is deterministic.
    for (std::size_t i = 0; i < sched_->sends.size(); ++i) {
      const OffsetPlan& plan = sched_->sends[i];
      if (comm_->nodeOfRank(plan.peer) == myNode) {
        directSendIdx_.push_back(i);
        continue;
      }
      const int leader = comm_->leaderOfRank(plan.peer);
      AggGroup* g = nullptr;
      for (AggGroup& cand : aggGroups_) {
        if (cand.leader == leader) {
          g = &cand;
          break;
        }
      }
      if (g == nullptr) {
        aggGroups_.push_back(AggGroup{leader, kAggMsgHeaderBytes, {}});
        g = &aggGroups_.back();
      }
      g->frameBytes += kAggSegHeaderBytes + sendPlanBytes_[i];
      g->planIdx.push_back(i);
    }
    std::sort(aggGroups_.begin(), aggGroups_.end(),
              [](const AggGroup& a, const AggGroup& b) {
                return a.leader < b.leader;
              });
    // Receive expectations: same-node sources arrive directly (in plan
    // order under kPeer); remote sources arrive inside frames at the node
    // leader, which forwards other ranks' segments intra-node.
    std::vector<std::int32_t> myRemote;
    for (const RecvSlot& s : slots_) {
      const int srcLocal = comm_->localRankOfGlobal(s.srcGlobal);
      if (comm_->nodeOfRank(srcLocal) == myNode) {
        directRecvPeers_.push_back(srcLocal);
      } else {
        myRemote.push_back(s.srcGlobal);
      }
    }
    const int tag = comm_->nextUserTag();
    if (!comm_->isNodeLeader()) {
      comm_->send(comm_->nodeLeader(), tag, myRemote);
      aggExpected_ = directRecvPeers_.size() + myRemote.size();
    } else {
      std::vector<std::int32_t> uni = myRemote;
      for (int r : comm_->nodePeers()) {
        if (r == comm_->rank()) continue;
        const std::vector<std::int32_t> peerRemote =
            comm_->recv<std::int32_t>(r, tag);
        uni.insert(uni.end(), peerRemote.begin(), peerRemote.end());
      }
      std::sort(uni.begin(), uni.end());
      uni.erase(std::unique(uni.begin(), uni.end()), uni.end());
      frameSrcs_.assign(uni.begin(), uni.end());
      aggExpected_ = directRecvPeers_.size() + frameSrcs_.size();
    }
  }

  // --- send side ------------------------------------------------------------

  void packInto(std::size_t i, std::span<const T> src, std::byte* out) {
    const OffsetPlan& plan = sched_->sends[i];
    if (kernelDispatchEnabled()) {
      packKernel<T>(sendKernels_[i], plan, src, reinterpret_cast<T*>(out));
    } else {
      packPlan<T>(plan, src, reinterpret_cast<T*>(out));
    }
  }

  void sendPhase(std::span<const T> src, int tag) {
    if (agg_) {
      sendPhaseAggregated(src, tag);
      return;
    }
    obs::ScopedSpan sendSpan(obs::phase::kSend);
    for (std::size_t i = 0; i < sched_->sends.size(); ++i) {
      const OffsetPlan& plan = sched_->sends[i];
      std::vector<std::byte> payload = obtainBuffer(sendPlanBytes_[i]);
      {
        obs::ScopedSpan packSpan(obs::phase::kPack);
        comm_->compute([&] { packInto(i, src, payload.data()); });
      }
      if (remoteProgram_ >= 0) {
        comm_->sendBytesTo(remoteProgram_, plan.peer, tag,
                           std::move(payload));
      } else {
        comm_->sendBytes(plan.peer, tag, std::move(payload));
      }
    }
  }

  /// Aggregated sends: same-node peers get their ordinary per-peer message
  /// (with a routing header), every remote *node* gets exactly ONE framed
  /// message addressed to its leader — so this rank emits at most nodes-1
  /// inter-node messages per schedule step.
  void sendPhaseAggregated(std::span<const T> src, int tag) {
    obs::ScopedSpan sendSpan(obs::phase::kSend);
    for (std::size_t i : directSendIdx_) {
      const OffsetPlan& plan = sched_->sends[i];
      std::vector<std::byte> payload =
          obtainBuffer(kAggMsgHeaderBytes + sendPlanBytes_[i]);
      writeAggMsgHeader(payload.data(), kAggData, comm_->globalRank());
      {
        obs::ScopedSpan packSpan(obs::phase::kPack);
        comm_->compute(
            [&] { packInto(i, src, payload.data() + kAggMsgHeaderBytes); });
      }
      comm_->sendBytes(plan.peer, tag, std::move(payload));
    }
    for (const AggGroup& g : aggGroups_) {
      std::vector<std::byte> payload = obtainBuffer(g.frameBytes);
      writeAggMsgHeader(payload.data(), kAggFrame, comm_->globalRank());
      {
        obs::ScopedSpan packSpan(obs::phase::kPack);
        comm_->compute([&] {
          std::byte* p = payload.data() + kAggMsgHeaderBytes;
          for (std::size_t i : g.planIdx) {
            writeAggSegHeader(
                p,
                comm_->globalRankOf(comm_->program(), sched_->sends[i].peer),
                sendPlanBytes_[i]);
            p += kAggSegHeaderBytes;
            packInto(i, src, p);
            p += sendPlanBytes_[i];
          }
        });
      }
      comm_->sendBytes(g.leader, tag, std::move(payload));
    }
  }

  /// A payload buffer with size() == nbytes: best-fit from the executor's
  /// own recycled buffers (deterministic — no cross-thread state), falling
  /// back to the world pool.
  std::vector<std::byte> obtainBuffer(std::size_t nbytes) {
    std::size_t best = freeBufs_.size();
    for (std::size_t i = 0; i < freeBufs_.size(); ++i) {
      if (freeBufs_[i].capacity() < nbytes) continue;
      if (best == freeBufs_.size() ||
          freeBufs_[i].capacity() < freeBufs_[best].capacity()) {
        best = i;
      }
    }
    if (best == freeBufs_.size()) return comm_->acquirePayload(nbytes);
    std::vector<std::byte> buf = std::move(freeBufs_[best]);
    freeBufs_.erase(freeBufs_.begin() +
                    static_cast<std::ptrdiff_t>(best));
    buf.resize(nbytes);  // capacity suffices: no reallocation
    return buf;
  }

  /// Parks a drained payload for the next step's sends (up to one buffer
  /// per send plan — the steady-state demand); overflow recycles through
  /// the world pool so other ranks can reuse the capacity.
  void recycle(std::vector<std::byte>&& payload) {
    if (freeBufs_.size() < sched_->sends.size()) {
      freeBufs_.push_back(std::move(payload));
    } else {
      comm_->releasePayload(std::move(payload));
    }
  }

  // --- local transfers ------------------------------------------------------

  void localPhase(std::span<const T> src, std::span<T> dst, bool add) {
    obs::ScopedSpan span(obs::phase::kApply);
    comm_->compute([&] {
      if (kernelDispatchEnabled() &&
          localKernel_.kind == KernelKind::kIndexList) {
        // Flattened local transfers; compile() only picks kIndexList when
        // element order matches copyLocalRuns exactly (see kernels.h).
        if (add) {
          localKernel_.add(src, dst);
        } else {
          localKernel_.copy(src, dst);
        }
        return;
      }
      if (add) {
        if (!sched_->localRuns.empty()) {
          addLocalRuns(std::span<const LocalRun>(sched_->localRuns), src,
                       dst);
        } else {
          for (const auto& [from, to] : sched_->localPairs) {
            dst[static_cast<std::size_t>(to)] +=
                src[static_cast<std::size_t>(from)];
          }
        }
        return;
      }
      if (!sched_->localRuns.empty()) {
        // Run-wise copies have read-all-then-write semantics per run
        // (memmove), serving both local-copy policies.
        copyLocalRuns(std::span<const LocalRun>(sched_->localRuns), src, dst);
      } else if (sched_->bufferLocalCopies) {
        // Authentic Parti staging, through a buffer that persists across
        // runs instead of reallocating each step.
        localStage_.resize(sched_->localPairs.size());
        std::size_t i = 0;
        for (const auto& [from, to] : sched_->localPairs) {
          localStage_[i++] = src[static_cast<std::size_t>(from)];
        }
        i = 0;
        for (const auto& [from, to] : sched_->localPairs) {
          dst[static_cast<std::size_t>(to)] = localStage_[i++];
        }
      } else {
        for (const auto& [from, to] : sched_->localPairs) {
          dst[static_cast<std::size_t>(to)] =
              src[static_cast<std::size_t>(from)];
        }
      }
    });
  }

  // --- receive side ---------------------------------------------------------

  transport::Message nextMessage(std::size_t k, int tag) {
    obs::ScopedSpan span(obs::phase::kRecvWait);
    if (drainOrder() == DrainOrder::kPeer) {
      const int peer = sched_->recvs[k].peer;
      return remoteProgram_ >= 0
                 ? comm_->recvMsgFrom(remoteProgram_, peer, tag)
                 : comm_->recvMsg(peer, tag);
    }
    const int prog = remoteProgram_ >= 0 ? remoteProgram_ : comm_->program();
    return comm_->recvMsgAnyOf(prog, tag);
  }

  /// Routes a drained payload to its plan by the *original* sender's global
  /// rank, verifying size and that no plan is served twice in one run.
  std::size_t slotForSrc(int srcGlobal, std::size_t nbytes) {
    std::size_t lo = 0, hi = slots_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (slots_[mid].srcGlobal < srcGlobal) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    MC_REQUIRE(lo < slots_.size() && slots_[lo].srcGlobal == srcGlobal,
               "unexpected message from global rank %d", srcGlobal);
    RecvSlot& slot = slots_[lo];
    MC_REQUIRE(slot.epoch != runEpoch_,
               "duplicate message from global rank %d in one run", srcGlobal);
    slot.epoch = runEpoch_;
    MC_REQUIRE(nbytes == slot.bytes,
               "schedule mismatch: peer sent %zu bytes, expected %zu", nbytes,
               slot.bytes);
    return lo;  // slot index == plan index (both sorted by peer)
  }
  std::size_t slotFor(const transport::Message& m) {
    return slotForSrc(m.srcGlobal, m.payload.size());
  }

  void drainCopy(std::span<T> dst, int tag) {
    ++runEpoch_;
    for (std::size_t n = 0; n < sched_->recvs.size(); ++n) {
      transport::Message m = nextMessage(n, tag);
      const std::size_t k = slotFor(m);
      const OffsetPlan& plan = sched_->recvs[k];
      // Unpack straight out of the payload — builders emit disjoint
      // per-peer receive offsets, so these unpacks commute and arrival
      // order cannot change the result.
      {
        obs::ScopedSpan span(obs::phase::kUnpack);
        comm_->compute([&] {
          if (kernelDispatchEnabled()) {
            unpackKernel<T>(recvKernels_[k], plan,
                            transport::payloadView<T>(m).data(), dst);
          } else {
            unpackPlan<T>(plan, transport::payloadView<T>(m).data(), dst);
          }
        });
      }
      recycle(std::move(m.payload));
    }
  }

  // --- aggregated receive side ----------------------------------------------

  /// Next aggregated-mode message.  Under kPeer the receive order is fixed
  /// for deterministic virtual clocks: direct same-node sources in plan
  /// order, then frames in sorted-source order (leader) or the leader's
  /// forwards in FIFO order (member).  The leader's direct sends precede
  /// its forwards in its own program order, so the member-side FIFO per
  /// (source, tag) pair keeps the two streams from crossing.
  transport::Message nextAggMessage(std::size_t n, int tag) {
    obs::ScopedSpan span(obs::phase::kRecvWait);
    if (drainOrder() == DrainOrder::kPeer) {
      if (n < directRecvPeers_.size()) {
        return comm_->recvMsg(directRecvPeers_[n], tag);
      }
      if (comm_->isNodeLeader()) {
        const std::size_t j = n - directRecvPeers_.size();
        return comm_->recvMsg(comm_->localRankOfGlobal(frameSrcs_[j]), tag);
      }
      return comm_->recvMsg(comm_->nodeLeader(), tag);
    }
    return comm_->recvMsgAnyOf(comm_->program(), tag);
  }

  /// Aggregated-mode intake for one message: a data payload stashes by its
  /// header's original source; a frame is split — the segment addressed to
  /// this rank stays stashed, every other segment re-sends to its same-node
  /// destination with a data header carrying the original source.
  void stashAggMessage(transport::Message&& m, int tag) {
    MC_REQUIRE(m.payload.size() >= kAggMsgHeaderBytes,
               "aggregated message shorter than its header");
    const AggMsgHeader h = readAggMsgHeader(m.payload.data());
    if (h.kind == kAggData) {
      const std::size_t k =
          slotForSrc(h.srcGlobal, m.payload.size() - kAggMsgHeaderBytes);
      stash_[k] = std::move(m.payload);
      stashOff_[k] = kAggMsgHeaderBytes;
      return;
    }
    MC_REQUIRE(h.kind == kAggFrame, "bad aggregated message kind %d", h.kind);
    MC_REQUIRE(comm_->isNodeLeader(),
               "aggregated frame delivered to a non-leader rank");
    constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    std::size_t ownSlot = kNoSlot;
    std::size_t ownOff = 0;
    std::size_t pos = kAggMsgHeaderBytes;
    while (pos < m.payload.size()) {
      MC_REQUIRE(pos + kAggSegHeaderBytes <= m.payload.size(),
                 "truncated segment header in aggregated frame");
      const AggSegHeader seg = readAggSegHeader(m.payload.data() + pos);
      pos += kAggSegHeaderBytes;
      const auto segBytes = static_cast<std::size_t>(seg.bytes);
      MC_REQUIRE(pos + segBytes <= m.payload.size(),
                 "truncated segment payload in aggregated frame");
      if (seg.dstGlobal == comm_->globalRank()) {
        MC_REQUIRE(ownSlot == kNoSlot,
                   "two segments for one rank in one aggregated frame");
        ownSlot = slotForSrc(h.srcGlobal, segBytes);
        ownOff = pos;
      } else {
        std::vector<std::byte> fwd =
            comm_->acquirePayload(kAggMsgHeaderBytes + segBytes);
        writeAggMsgHeader(fwd.data(), kAggData, h.srcGlobal);
        std::memcpy(fwd.data() + kAggMsgHeaderBytes, m.payload.data() + pos,
                    segBytes);
        comm_->noteForwarded(segBytes);
        comm_->sendBytes(comm_->localRankOfGlobal(seg.dstGlobal), tag,
                         std::move(fwd));
      }
      pos += segBytes;
    }
    MC_REQUIRE(pos == m.payload.size(),
               "trailing bytes in aggregated frame");
    if (ownSlot != kNoSlot) {
      stash_[ownSlot] = std::move(m.payload);
      stashOff_[ownSlot] = ownOff;
    } else {
      recycle(std::move(m.payload));
    }
  }

  /// Unpacks every stashed payload in plan order (honoring each stash's
  /// aggregated-mode byte offset) and recycles the buffers.  Copy unpacks
  /// commute (disjoint per-peer offsets) and adds apply in peer order, so
  /// results are bitwise identical to the flat drain.
  void unpackStash(std::span<T> dst, bool add) {
    for (std::size_t k = 0; k < sched_->recvs.size(); ++k) {
      const OffsetPlan& plan = sched_->recvs[k];
      obs::ScopedSpan span(obs::phase::kUnpack);
      comm_->compute([&] {
        const T* payload =
            reinterpret_cast<const T*>(stash_[k].data() + stashOff_[k]);
        if (kernelDispatchEnabled()) {
          if (add) {
            unpackAddKernel<T>(recvKernels_[k], plan, payload, dst);
          } else {
            unpackKernel<T>(recvKernels_[k], plan, payload, dst);
          }
        } else if (add) {
          unpackPlanAdd<T>(plan, payload, dst);
        } else {
          unpackPlan<T>(plan, payload, dst);
        }
      });
      recycle(std::move(stash_[k]));
      stash_[k] = {};
      stashOff_[k] = 0;
    }
  }

  void drainAggregated(std::span<T> dst, int tag, bool add) {
    ++runEpoch_;
    for (std::size_t n = 0; n < aggExpected_; ++n) {
      stashAggMessage(nextAggMessage(n, tag), tag);
    }
    unpackStash(dst, add);
  }

  // --- split-phase internals ------------------------------------------------

  /// Verifies, sizes, and stashes one drained message by plan slot.
  void stashMessage(transport::Message&& m) {
    stash_[slotFor(m)] = std::move(m.payload);
    ++arrived_;
  }

  /// Messages one run consumes (in aggregated mode frames and forwards
  /// replace the per-peer messages, so the count differs from recvs.size()).
  std::size_t expectedMessages() const {
    return agg_ ? aggExpected_ : sched_->recvs.size();
  }

  bool pendingDone() const { return arrived_ == expectedMessages(); }

  /// Blocking intake of one more pending message (either drain mode).
  void drainOnePending() {
    if (agg_) {
      stashAggMessage(nextAggMessage(arrived_, pendingTag_), pendingTag_);
      ++arrived_;
    } else {
      stashMessage(nextMessage(arrived_, pendingTag_));
    }
  }

  bool pollPending() {
    if (drainOrder() == DrainOrder::kPeer) {
      // kPeer is the deterministic-clock debug mode: consuming messages at
      // wall-clock-dependent moments would reorder the virtual-clock max
      // arithmetic, so the opportunistic drain is disabled and every
      // receive happens in finish, in peer order.
      return pendingDone();
    }
    const int prog = remoteProgram_ >= 0 ? remoteProgram_ : comm_->program();
    while (!pendingDone()) {
      std::optional<transport::Message> m =
          comm_->tryRecvMsgAnyOf(prog, pendingTag_);
      if (!m.has_value()) break;
      if (agg_) {
        stashAggMessage(std::move(*m), pendingTag_);
        ++arrived_;
      } else {
        stashMessage(std::move(*m));
      }
    }
    return pendingDone();
  }

  void finishPending(std::span<T> dst, bool add) {
    // Drain whatever poll() did not get (blocking).  In kPeer mode nothing
    // was stashed, so arrived_ walks the receive order exactly as the
    // blocking drain would; in kArrival mode the index is ignored.
    while (!pendingDone()) drainOnePending();
    localPhase(pendingSrc_, dst, add);
    // Unpack in plan order: copy unpacks commute (disjoint per-peer
    // offsets), adds must apply in peer order — either way this is bitwise
    // identical to the corresponding run()/runAdd().
    unpackStash(dst, add);
    inFlight_ = false;
    pendingSrc_ = {};
  }

  /// Abandoned split-phase run (Pending destroyed without finish): consume
  /// the exchange's remaining messages so the mailbox and the executor's
  /// epoch state stay consistent, discard the data, keep the executor
  /// reusable.  In aggregated mode the drain still splits and forwards
  /// frames — node-mates depend on the leader relaying their segments even
  /// when the leader's own exchange is abandoned.  Errors are swallowed —
  /// this runs from a destructor, possibly unwinding a world abort.
  void cancelPending() noexcept {
    try {
      while (!pendingDone()) drainOnePending();
    } catch (...) {
      // Aborted world or timeout: leave whatever arrived; the abort tears
      // the whole run down anyway.
    }
    for (std::size_t k = 0; k < stash_.size(); ++k) {
      if (stash_[k].capacity() > 0) recycle(std::move(stash_[k]));
      stash_[k] = {};
      stashOff_[k] = 0;
    }
    inFlight_ = false;
    pendingSrc_ = {};
  }

  void drainAdd(std::span<T> dst, int tag) {
    ++runEpoch_;
    // += does not commute across peers hitting the same offset, so take
    // messages as they arrive but *apply* them in peer order: stash each
    // payload in its plan's slot, then accumulate plan by plan.
    for (std::size_t n = 0; n < sched_->recvs.size(); ++n) {
      transport::Message m = nextMessage(n, tag);
      stash_[slotFor(m)] = std::move(m.payload);
    }
    unpackStash(dst, /*add=*/true);
  }

  /// One framed message to a remote node (aggregated mode).
  struct AggGroup {
    int leader = 0;               // destination node's leader (local rank)
    std::size_t frameBytes = 0;   // header + segments, fixed at bind
    std::vector<std::size_t> planIdx;  // send plans packed, in peer order
  };

  transport::Comm* comm_;
  std::shared_ptr<const Schedule> keepAlive_;
  const Schedule* sched_;
  int remoteProgram_;  // -1 for intra-program executors

  std::vector<std::size_t> sendPlanBytes_;  // per send plan, fixed at bind
  std::vector<RecvSlot> slots_;             // sorted by srcGlobal
  std::vector<PlanKernel> sendKernels_;     // compiled at bind, per plan
  std::vector<PlanKernel> recvKernels_;
  LocalKernel localKernel_;
  std::uint64_t runEpoch_ = 0;
  std::vector<std::vector<std::byte>> freeBufs_;  // recycled payloads
  std::vector<std::vector<std::byte>> stash_;     // runAdd deferral slots
  std::vector<std::size_t> stashOff_;  // payload byte offset per stash slot
  std::vector<T> localStage_;  // persistent Parti local-copy staging

  // Node aggregation (node_agg.h), captured at bind.
  bool agg_ = false;
  std::vector<std::size_t> directSendIdx_;  // send plans to same-node peers
  std::vector<AggGroup> aggGroups_;         // one frame per remote node
  std::vector<int> directRecvPeers_;  // same-node sources, in plan order
  std::vector<int> frameSrcs_;  // leader: inbound frame sources (global, sorted)
  std::size_t aggExpected_ = 0;  // messages consumed per aggregated run

  // Split-phase state (one run may be in flight at a time).
  bool inFlight_ = false;
  int pendingTag_ = 0;
  std::span<const T> pendingSrc_{};  // captured by start, read at finish
  std::size_t arrived_ = 0;          // messages stashed so far this run
  mutable std::optional<Footprint> footprint_;  // built on first use
};

/// Executes `sched` within one program: packs `src` elements, sends at most
/// one message per peer, copies local pairs, then unpacks into `dst`.
/// Collective; `tag` must match across the program (comm.nextUserTag()).
/// `src` and `dst` may alias (e.g. a ghost fill within one buffer).
///
/// One-shot convenience over Executor — loops should bind an Executor once
/// and run() it per step to keep its persistent buffers.
template <typename T>
void execute(transport::Comm& comm, const Schedule& sched,
             std::span<const T> src, std::span<T> dst, int tag) {
  Executor<T>(comm, sched).run(src, dst, tag);
}

/// Like execute, but *accumulates* received and local elements into `dst`
/// (dst[off] += value).  This is the Chaos scatter-add executor used for
/// irregular reductions such as Loop 3 of the paper's Figure 1.
template <typename T>
void executeAdd(transport::Comm& comm, const Schedule& sched,
                std::span<const T> src, std::span<T> dst, int tag) {
  Executor<T>(comm, sched).runAdd(src, dst, tag);
}

}  // namespace mc::sched
