// Flat-byte serialization of communication schedules, and batch
// replication of inter-program halves.
//
// Serialization is what lets the compute server share inspector results
// *across client programs*: the first client with a given layout builds its
// send schedule collectively, uploads the serialized form, and every later
// client with the same layout fingerprint downloads the bytes instead of
// running an inspector.  A schedule's plan peers are remote-program-LOCAL
// ranks (the executor converts them via globalRankOf at bind), so the same
// bytes retarget to any program id — that is the whole point.
//
// batchReplicate turns one inter-program schedule into a fused k-request
// schedule: each peer's plan repeats k times with its offsets shifted by a
// per-copy stride, so executing the fused schedule ships ONE message per
// peer pair carrying all k operand blocks — the paper's
// one-message-per-pair aggregation property, preserved across a whole
// request batch.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sched/schedule.h"
#include "util/error.h"

namespace mc::sched {

namespace detail {

inline void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(v));
  std::memcpy(out.data() + pos, &v, sizeof(v));
}

template <typename T>
void putPods(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  putU64(out, v.size());
  const std::size_t pos = out.size();
  out.resize(pos + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data() + pos, v.data(), v.size() * sizeof(T));
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint64_t u64() {
    MC_REQUIRE(pos_ + sizeof(std::uint64_t) <= data_.size(),
               "truncated schedule blob");
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  template <typename T>
  std::vector<T> pods() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    MC_REQUIRE(n <= (data_.size() - pos_) / sizeof(T),
               "truncated schedule blob");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), data_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos_ += static_cast<std::size_t>(n) * sizeof(T);
    }
    return v;
  }

  bool atEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline constexpr std::uint64_t kScheduleBlobVersion = 1;

/// Serializes a schedule to a flat byte blob (version-tagged; POD runs and
/// offsets are copied raw).  Round-trips exactly through
/// deserializeSchedule.
inline std::vector<std::byte> serializeSchedule(const Schedule& s) {
  std::vector<std::byte> out;
  detail::putU64(out, kScheduleBlobVersion);
  detail::putU64(out, s.bufferLocalCopies ? 1 : 0);
  for (const std::vector<OffsetPlan>* lane : {&s.sends, &s.recvs}) {
    detail::putU64(out, lane->size());
    for (const OffsetPlan& p : *lane) {
      detail::putU64(out, static_cast<std::uint64_t>(p.peer));
      detail::putPods(out, p.offsets);
      detail::putPods(out, p.runs);
    }
  }
  // std::pair is not trivially copyable; flatten to (from, to) index pairs.
  std::vector<layout::Index> flatPairs;
  flatPairs.reserve(s.localPairs.size() * 2);
  for (const auto& [from, to] : s.localPairs) {
    flatPairs.push_back(from);
    flatPairs.push_back(to);
  }
  detail::putPods(out, flatPairs);
  detail::putPods(out, s.localRuns);
  return out;
}

/// Inverse of serializeSchedule; validates sizes and the version tag.
inline Schedule deserializeSchedule(std::span<const std::byte> blob) {
  detail::ByteReader r(blob);
  MC_REQUIRE(r.u64() == kScheduleBlobVersion,
             "unknown schedule blob version");
  Schedule s;
  s.bufferLocalCopies = r.u64() != 0;
  for (std::vector<OffsetPlan>* lane : {&s.sends, &s.recvs}) {
    const std::uint64_t n = r.u64();
    lane->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      OffsetPlan p;
      p.peer = static_cast<int>(r.u64());
      p.offsets = r.pods<layout::Index>();
      p.runs = r.pods<OffsetRun>();
      lane->push_back(std::move(p));
    }
  }
  const std::vector<layout::Index> flatPairs = r.pods<layout::Index>();
  MC_REQUIRE(flatPairs.size() % 2 == 0, "malformed local-pair lane");
  s.localPairs.reserve(flatPairs.size() / 2);
  for (std::size_t i = 0; i < flatPairs.size(); i += 2) {
    s.localPairs.emplace_back(flatPairs[i], flatPairs[i + 1]);
  }
  s.localRuns = r.pods<LocalRun>();
  MC_REQUIRE(r.atEnd(), "trailing bytes in schedule blob");
  return s;
}

/// Replicates an inter-program schedule k times into one fused exchange:
/// copy j of every send plan shifts its offsets by j*sendStride (the
/// sender-local operand length) and copy j of every receive plan by
/// j*recvStride (the receiver-local destination length).  Each peer keeps a
/// single plan whose payload carries the k blocks back to back, so a batch
/// of k compatible requests still sends at most one message per processor
/// pair.  Local transfers are not supported (inter-program halves have
/// none).
inline Schedule batchReplicate(const Schedule& s, int k,
                               layout::Index sendStride,
                               layout::Index recvStride) {
  MC_REQUIRE(k >= 1, "batchReplicate needs k >= 1");
  MC_REQUIRE(s.localElementCount() == 0,
             "batchReplicate is for inter-program halves (no local plans)");
  Schedule out;
  out.bufferLocalCopies = s.bufferLocalCopies;
  auto replicate = [k](const std::vector<OffsetPlan>& lane,
                       layout::Index stride) {
    std::vector<OffsetPlan> fused;
    fused.reserve(lane.size());
    for (const OffsetPlan& p : lane) {
      OffsetPlan f;
      f.peer = p.peer;
      // Replicate whichever forms are present so the fused plan stays
      // consistent (runs-first plans stay runs-first).
      if (!p.runs.empty() || p.offsets.empty()) {
        f.runs.reserve(p.runs.size() * static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
          for (const OffsetRun& run : p.runs) {
            f.runs.push_back(
                OffsetRun{run.start + j * stride, run.count, run.stride});
          }
        }
      }
      if (!p.offsets.empty()) {
        f.offsets.reserve(p.offsets.size() * static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
          for (const layout::Index off : p.offsets) {
            f.offsets.push_back(off + j * stride);
          }
        }
      }
      fused.push_back(std::move(f));
    }
    return fused;
  };
  out.sends = replicate(s.sends, sendStride);
  out.recvs = replicate(s.recvs, recvStride);
  return out;
}

}  // namespace mc::sched
