// Flat-byte serialization of communication schedules, and batch
// replication of inter-program halves.
//
// Serialization is what lets the compute server share inspector results
// *across client programs*: the first client with a given layout builds its
// send schedule collectively, uploads the serialized form, and every later
// client with the same layout fingerprint downloads the bytes instead of
// running an inspector.  A schedule's plan peers are remote-program-LOCAL
// ranks (the executor converts them via globalRankOf at bind), so the same
// bytes retarget to any program id — that is the whole point.
//
// batchReplicate turns one inter-program schedule into a fused k-request
// schedule: each peer's plan repeats k times with its offsets shifted by a
// per-copy stride, so executing the fused schedule ships ONE message per
// peer pair carrying all k operand blocks — the paper's
// one-message-per-pair aggregation property, preserved across a whole
// request batch.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sched/schedule.h"
#include "util/blob_io.h"
#include "util/error.h"

namespace mc::sched {

/// Kind version of the schedule payload inside the blob::frame container
/// (v1 was the pre-container raw format; v2 moved the version/arch/checksum
/// tagging into the shared frame header).
inline constexpr std::uint32_t kScheduleBlobVersion = 2;

/// Serializes a schedule payload (no frame) into `out`.  Exposed for the
/// snapshot writers, which embed schedules in larger payloads.
inline void writeSchedulePayload(std::vector<std::byte>& out,
                                 const Schedule& s) {
  blob::putU64(out, s.bufferLocalCopies ? 1 : 0);
  for (const std::vector<OffsetPlan>* lane : {&s.sends, &s.recvs}) {
    blob::putU64(out, lane->size());
    for (const OffsetPlan& p : *lane) {
      blob::putU64(out, static_cast<std::uint64_t>(p.peer));
      blob::putPods(out, p.offsets);
      blob::putPods(out, p.runs);
    }
  }
  // std::pair is not trivially copyable; flatten to (from, to) index pairs.
  std::vector<layout::Index> flatPairs;
  flatPairs.reserve(s.localPairs.size() * 2);
  for (const auto& [from, to] : s.localPairs) {
    flatPairs.push_back(from);
    flatPairs.push_back(to);
  }
  blob::putPods(out, flatPairs);
  blob::putPods(out, s.localRuns);
}

/// Reads a schedule payload from `r` (counterpart of writeSchedulePayload).
/// Every count is validated against the remaining bytes before it sizes an
/// allocation, so corrupt or truncated payloads throw instead of
/// over-allocating.
inline Schedule readSchedulePayload(blob::ByteReader& r) {
  Schedule s;
  s.bufferLocalCopies = r.u64() != 0;
  for (std::vector<OffsetPlan>* lane : {&s.sends, &s.recvs}) {
    // A serialized plan is at least 24 bytes (peer + two lane counts);
    // clamping here keeps a corrupt plan count from reserving gigabytes.
    const std::uint64_t n = r.count(3 * sizeof(std::uint64_t));
    lane->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      OffsetPlan p;
      p.peer = static_cast<int>(r.u64());
      p.offsets = r.pods<layout::Index>();
      p.runs = r.pods<OffsetRun>();
      lane->push_back(std::move(p));
    }
  }
  const std::vector<layout::Index> flatPairs = r.pods<layout::Index>();
  MC_REQUIRE(flatPairs.size() % 2 == 0, "malformed local-pair lane");
  s.localPairs.reserve(flatPairs.size() / 2);
  for (std::size_t i = 0; i < flatPairs.size(); i += 2) {
    s.localPairs.emplace_back(flatPairs[i], flatPairs[i + 1]);
  }
  s.localRuns = r.pods<LocalRun>();
  return s;
}

/// Serializes a schedule to a framed byte blob (magic, versions, endian and
/// type-width tags, checksum — util/blob_io.h), safe to persist as well as
/// to ship between programs.  Round-trips exactly through
/// deserializeSchedule.
inline std::vector<std::byte> serializeSchedule(const Schedule& s) {
  std::vector<std::byte> payload;
  writeSchedulePayload(payload, s);
  return blob::frame(blob::kSchedule, kScheduleBlobVersion, payload);
}

/// Inverse of serializeSchedule; validates the frame (magic, endianness,
/// type widths, length, checksum), the kind version, and every internal
/// count.  Throws mc::Error on any mismatch — never misreads.
inline Schedule deserializeSchedule(std::span<const std::byte> blob) {
  const blob::FrameView v = blob::unframe(blob, blob::kSchedule);
  MC_REQUIRE(v.kindVersion == kScheduleBlobVersion,
             "unknown schedule blob version %u", v.kindVersion);
  blob::ByteReader r(v.payload);
  Schedule s = readSchedulePayload(r);
  r.requireEnd("schedule blob");
  return s;
}

/// Replicates an inter-program schedule k times into one fused exchange:
/// copy j of every send plan shifts its offsets by j*sendStride (the
/// sender-local operand length) and copy j of every receive plan by
/// j*recvStride (the receiver-local destination length).  Each peer keeps a
/// single plan whose payload carries the k blocks back to back, so a batch
/// of k compatible requests still sends at most one message per processor
/// pair.  Local transfers are not supported (inter-program halves have
/// none).
inline Schedule batchReplicate(const Schedule& s, int k,
                               layout::Index sendStride,
                               layout::Index recvStride) {
  MC_REQUIRE(k >= 1, "batchReplicate needs k >= 1");
  MC_REQUIRE(s.localElementCount() == 0,
             "batchReplicate is for inter-program halves (no local plans)");
  Schedule out;
  out.bufferLocalCopies = s.bufferLocalCopies;
  auto replicate = [k](const std::vector<OffsetPlan>& lane,
                       layout::Index stride) {
    std::vector<OffsetPlan> fused;
    fused.reserve(lane.size());
    for (const OffsetPlan& p : lane) {
      OffsetPlan f;
      f.peer = p.peer;
      // Replicate whichever forms are present so the fused plan stays
      // consistent (runs-first plans stay runs-first).
      if (!p.runs.empty() || p.offsets.empty()) {
        f.runs.reserve(p.runs.size() * static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
          for (const OffsetRun& run : p.runs) {
            f.runs.push_back(
                OffsetRun{run.start + j * stride, run.count, run.stride});
          }
        }
      }
      if (!p.offsets.empty()) {
        f.offsets.reserve(p.offsets.size() * static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
          for (const layout::Index off : p.offsets) {
            f.offsets.push_back(off + j * stride);
          }
        }
      }
      fused.push_back(std::move(f));
    }
    return fused;
  };
  out.sends = replicate(s.sends, sendStride);
  out.recvs = replicate(s.recvs, recvStride);
  return out;
}

}  // namespace mc::sched
