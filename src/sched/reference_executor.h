// The pre-Executor schedule executors, kept verbatim in behavior as
// sched::reference::{execute, executeAdd}.
//
// These are the copy-per-step loops sched::Executor replaces: every send
// packs into a fresh std::vector<T> and the transport copies it again into
// the Message; every receive allocates and fills a temporary vector before
// unpacking; receives drain in fixed peer order.  They remain in the tree as
//
//   * the baseline leg of bench/micro_data_move (old path vs executor), and
//   * the oracle for the executor's differential tests.
//
// Production call sites route through sched::Executor; nothing outside
// benches and tests should include this header.
#pragma once

#include <span>
#include <vector>

#include "sched/plan_exec.h"
#include "sched/schedule.h"
#include "transport/comm.h"

namespace mc::sched::reference {

/// Peer-ordered, copy-per-step schedule execution (pre-Executor behavior).
template <typename T>
void execute(transport::Comm& comm, const Schedule& sched,
             std::span<const T> src, std::span<T> dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetPlan& plan : sched.sends) {
    std::vector<T> buf(static_cast<size_t>(plan.elementCount()));
    comm.compute([&] { packPlan<T>(plan, src, buf.data()); });
    comm.send(plan.peer, tag, buf);  // copying send
  }
  comm.compute([&] {
    if (!sched.localRuns.empty()) {
      copyLocalRuns(std::span<const LocalRun>(sched.localRuns), src, dst);
    } else if (sched.bufferLocalCopies) {
      std::vector<T> buf;
      buf.reserve(sched.localPairs.size());
      for (const auto& [from, to] : sched.localPairs) {
        buf.push_back(src[static_cast<size_t>(from)]);
      }
      size_t i = 0;
      for (const auto& [from, to] : sched.localPairs) {
        dst[static_cast<size_t>(to)] = buf[i++];
      }
    } else {
      for (const auto& [from, to] : sched.localPairs) {
        dst[static_cast<size_t>(to)] = src[static_cast<size_t>(from)];
      }
    }
  });
  for (const OffsetPlan& plan : sched.recvs) {
    const std::vector<T> buf = comm.recv<T>(plan.peer, tag);  // alloc + copy
    MC_REQUIRE(buf.size() == static_cast<size_t>(plan.elementCount()),
               "schedule mismatch: peer %d sent %zu elements, expected %lld",
               plan.peer, buf.size(),
               static_cast<long long>(plan.elementCount()));
    comm.compute([&] { unpackPlan<T>(plan, buf.data(), dst); });
  }
}

/// Accumulating variant (dst[off] += value), same copy-per-step behavior.
template <typename T>
void executeAdd(transport::Comm& comm, const Schedule& sched,
                std::span<const T> src, std::span<T> dst, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetPlan& plan : sched.sends) {
    std::vector<T> buf(static_cast<size_t>(plan.elementCount()));
    comm.compute([&] { packPlan<T>(plan, src, buf.data()); });
    comm.send(plan.peer, tag, buf);
  }
  comm.compute([&] {
    if (!sched.localRuns.empty()) {
      addLocalRuns(std::span<const LocalRun>(sched.localRuns), src, dst);
    } else {
      for (const auto& [from, to] : sched.localPairs) {
        dst[static_cast<size_t>(to)] += src[static_cast<size_t>(from)];
      }
    }
  });
  for (const OffsetPlan& plan : sched.recvs) {
    const std::vector<T> buf = comm.recv<T>(plan.peer, tag);
    MC_REQUIRE(buf.size() == static_cast<size_t>(plan.elementCount()),
               "schedule mismatch: peer %d sent %zu elements, expected %lld",
               plan.peer, buf.size(),
               static_cast<long long>(plan.elementCount()));
    comm.compute([&] { unpackPlanAdd<T>(plan, buf.data(), dst); });
  }
}

}  // namespace mc::sched::reference
