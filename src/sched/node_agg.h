// Node-aggregated schedule execution: process-wide switch + wire format.
//
// Flat execution sends one message per (rank, remote rank) pair, so under
// one-NIC contention the inter-node message count grows with ranks-per-node
// — exactly the §5.4 regime where per-message NIC costs dominate.  In
// aggregated mode an executor instead packs all send plans bound for one
// remote *node* into a single framed message addressed to that node's
// leader; the leader keeps its own segment and re-sends every other segment
// to its same-node destination over the cheap intraNode link.  Each rank
// therefore emits at most nodes-1 inter-node messages per schedule step.
//
// Wire format (fixed, little-endian host layout; messages never leave the
// process):
//
//   every aggregated-mode message:   [AggMsgHeader]              (8 bytes)
//   kAggData payload:                [packed plan bytes]
//   kAggFrame payload:               [AggSegHeader][bytes] ...   (per plan)
//
// AggMsgHeader.srcGlobal is the *original* packing rank — a forwarded
// segment keeps it, so receivers always route by header source, never by
// the transport envelope (which names the leader for forwards).  Headers
// are 8- and 16-byte blocks and plan payloads are whole-element multiples,
// so element data stays suitably aligned for any scalar T with
// alignof(T) <= 8.
//
// Determinism: the drain stashes every payload by source slot and unpacks
// in plan (peer) order, so both run() and runAdd() results are bitwise
// identical to flat execution under any delivery interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

namespace mc::sched {

namespace detail {
inline std::atomic<bool>& nodeAggregationFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

inline bool nodeAggregation() {
  return detail::nodeAggregationFlag().load(std::memory_order_relaxed);
}
/// Process-wide switch, captured by Executor at bind()/rebind().  With it
/// on, executors must be constructed and rebound *collectively* (every rank
/// of the program together, in the same order): bind performs an intra-node
/// exchange so each node leader learns which frames to expect.
inline void setNodeAggregation(bool on) {
  detail::nodeAggregationFlag().store(on, std::memory_order_relaxed);
}

/// First 8 bytes of every aggregated-mode message.
struct AggMsgHeader {
  std::int32_t kind = 0;       // kAggData or kAggFrame
  std::int32_t srcGlobal = 0;  // original packing rank (survives forwarding)
};
inline constexpr std::int32_t kAggData = 1;
inline constexpr std::int32_t kAggFrame = 2;
inline constexpr std::size_t kAggMsgHeaderBytes = sizeof(AggMsgHeader);
static_assert(kAggMsgHeaderBytes == 8);

/// Per-segment header inside a kAggFrame payload.
struct AggSegHeader {
  std::int32_t dstGlobal = 0;
  std::int32_t reserved = 0;
  std::uint64_t bytes = 0;  // packed plan bytes following this header
};
inline constexpr std::size_t kAggSegHeaderBytes = sizeof(AggSegHeader);
static_assert(kAggSegHeaderBytes == 16);

inline void writeAggMsgHeader(std::byte* p, std::int32_t kind,
                              std::int32_t srcGlobal) {
  AggMsgHeader h;
  h.kind = kind;
  h.srcGlobal = srcGlobal;
  std::memcpy(p, &h, sizeof(h));
}

inline AggMsgHeader readAggMsgHeader(const std::byte* p) {
  AggMsgHeader h;
  std::memcpy(&h, p, sizeof(h));
  return h;
}

inline void writeAggSegHeader(std::byte* p, std::int32_t dstGlobal,
                              std::uint64_t bytes) {
  AggSegHeader h;
  h.dstGlobal = dstGlobal;
  h.bytes = bytes;
  std::memcpy(p, &h, sizeof(h));
}

inline AggSegHeader readAggSegHeader(const std::byte* p) {
  AggSegHeader h;
  std::memcpy(&h, p, sizeof(h));
  return h;
}

}  // namespace mc::sched
