// Destination footprints for split-phase schedule execution.
//
// A schedule run mutates only part of its destination buffer: the offsets
// its receive plans unpack into and the offsets its local transfers write.
// Everything else is *untouched* — a caller that starts a split-phase run
// (Executor::start) may freely read and write untouched offsets while the
// exchange is in flight, which is what lets a time-step loop compute its
// interior points under the ghost traffic.
//
// Footprint::of classifies a schedule's offsets once (the inspector side of
// the overlap: schedules are built once and executed many times, so the
// classification amortizes like the schedule itself):
//
//   remote    dst offsets written by unpacking received messages
//   localDst  dst offsets written by local transfers (applied at finish)
//   localSrc  src offsets *read* by local transfers at finish — a caller
//             overlapping an aliased schedule (src == dst, e.g. ghost
//             fills) must not overwrite these before finish()
//   dstTouched = remote ∪ localDst
//
// The safety contract for code running between start() and finish():
//   * do not READ any dstTouched offset of dst (its value is stale until
//     finish), and
//   * do not WRITE any dstTouched offset of dst (finish would clobber the
//     write — or race with an early poll() unpack), and
//   * do not WRITE any localSrc offset of src (finish reads it).
// Offsets outside those sets are free.  The sets are exact, including
// strided and descending runs — never an over-approximation — so the
// "interior" a caller may compute early is as large as the schedule allows.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "sched/schedule.h"

namespace mc::sched {

/// An immutable set of element offsets stored as sorted, disjoint,
/// half-open intervals [lo, hi).  Queries are O(log intervals).
class IndexSet {
 public:
  struct Interval {
    layout::Index lo = 0;  // inclusive
    layout::Index hi = 0;  // exclusive
    bool operator==(const Interval&) const = default;
  };

  IndexSet() = default;

  /// Builds the set from an arbitrary (unsorted, possibly duplicated)
  /// offset list plus already-intervalized pieces.
  static IndexSet fromParts(std::vector<layout::Index> offsets,
                            std::vector<Interval> intervals) {
    std::sort(offsets.begin(), offsets.end());
    for (const layout::Index off : offsets) {
      intervals.push_back(Interval{off, off + 1});
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    IndexSet out;
    for (const Interval& iv : intervals) {
      if (iv.lo >= iv.hi) continue;  // empty
      if (!out.intervals_.empty() && iv.lo <= out.intervals_.back().hi) {
        out.intervals_.back().hi = std::max(out.intervals_.back().hi, iv.hi);
      } else {
        out.intervals_.push_back(iv);
      }
    }
    for (const Interval& iv : out.intervals_) out.count_ += iv.hi - iv.lo;
    return out;
  }

  static IndexSet fromOffsets(std::vector<layout::Index> offsets) {
    return fromParts(std::move(offsets), {});
  }

  /// Union of two sets.
  static IndexSet unionOf(const IndexSet& a, const IndexSet& b) {
    std::vector<Interval> merged = a.intervals_;
    merged.insert(merged.end(), b.intervals_.begin(), b.intervals_.end());
    return fromParts({}, std::move(merged));
  }

  bool empty() const { return intervals_.empty(); }
  /// Number of distinct offsets in the set.
  layout::Index count() const { return count_; }
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool contains(layout::Index off) const {
    const Interval* iv = firstEndingAfter(off);
    return iv != nullptr && iv->lo <= off;
  }

  /// True when any offset in [lo, hi) is in the set.
  bool overlaps(layout::Index lo, layout::Index hi) const {
    if (lo >= hi) return false;
    const Interval* iv = firstEndingAfter(lo);
    return iv != nullptr && iv->lo < hi;
  }

  /// Calls fn(offset) for every member offset in [lo, hi), ascending.
  template <typename F>
  void forEachIn(layout::Index lo, layout::Index hi, F&& fn) const {
    auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), lo,
        [](layout::Index v, const Interval& iv) { return v < iv.hi; });
    for (; it != intervals_.end() && it->lo < hi; ++it) {
      const layout::Index from = std::max(it->lo, lo);
      const layout::Index to = std::min(it->hi, hi);
      for (layout::Index off = from; off < to; ++off) fn(off);
    }
  }

  /// Calls fn(offset) for every member offset, ascending.
  template <typename F>
  void forEach(F&& fn) const {
    for (const Interval& iv : intervals_) {
      for (layout::Index off = iv.lo; off < iv.hi; ++off) fn(off);
    }
  }

 private:
  /// The first interval with hi > off (candidate container of off), or
  /// nullptr when every interval ends at or before off.
  const Interval* firstEndingAfter(layout::Index off) const {
    const auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), off,
        [](layout::Index v, const Interval& iv) { return v < iv.hi; });
    return it == intervals_.end() ? nullptr : &*it;
  }

  std::vector<Interval> intervals_;  // sorted, disjoint, non-empty
  layout::Index count_ = 0;
};

/// The classification of one schedule's touched offsets (see file comment).
struct Footprint {
  IndexSet remote;      ///< dst offsets unpacked from received messages
  IndexSet localDst;    ///< dst offsets written by local transfers
  IndexSet localSrc;    ///< src offsets read by local transfers at finish
  IndexSet dstTouched;  ///< remote ∪ localDst

  static Footprint of(const Schedule& sched) {
    Footprint fp;
    fp.remote = offsetsOfPlans(sched.recvs);
    std::vector<layout::Index> srcOffs, dstOffs;
    std::vector<IndexSet::Interval> srcIvs, dstIvs;
    if (!sched.localRuns.empty()) {
      for (const LocalRun& run : sched.localRuns) {
        appendRun(run.src, run.count, run.srcStride, srcOffs, srcIvs);
        appendRun(run.dst, run.count, run.dstStride, dstOffs, dstIvs);
      }
    } else {
      for (const auto& [from, to] : sched.localPairs) {
        srcOffs.push_back(from);
        dstOffs.push_back(to);
      }
    }
    fp.localSrc = IndexSet::fromParts(std::move(srcOffs), std::move(srcIvs));
    fp.localDst = IndexSet::fromParts(std::move(dstOffs), std::move(dstIvs));
    fp.dstTouched = IndexSet::unionOf(fp.remote, fp.localDst);
    return fp;
  }

 private:
  /// Exact offsets of an arithmetic run: contiguous runs become one
  /// interval, strided / descending / repeated ones enumerate.
  static void appendRun(layout::Index start, layout::Index count,
                        layout::Index stride,
                        std::vector<layout::Index>& offsets,
                        std::vector<IndexSet::Interval>& intervals) {
    if (count <= 0) return;
    if (stride == 1) {
      intervals.push_back(IndexSet::Interval{start, start + count});
    } else if (stride == 0 || count == 1) {
      offsets.push_back(start);
    } else {
      for (layout::Index k = 0; k < count; ++k) {
        offsets.push_back(start + k * stride);
      }
    }
  }

  static IndexSet offsetsOfPlans(const std::vector<OffsetPlan>& plans) {
    std::vector<layout::Index> offsets;
    std::vector<IndexSet::Interval> intervals;
    for (const OffsetPlan& plan : plans) {
      if (!plan.runs.empty()) {
        for (const OffsetRun& run : plan.runs) {
          appendRun(run.start, run.count, run.stride, offsets, intervals);
        }
      } else {
        offsets.insert(offsets.end(), plan.offsets.begin(),
                       plan.offsets.end());
      }
    }
    return IndexSet::fromParts(std::move(offsets), std::move(intervals));
  }
};

}  // namespace mc::sched
