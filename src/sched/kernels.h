// Vectorized pack/unpack/scatter-add kernels with plan-compile-time dispatch.
//
// The run-wise loops in run_plan.h are ideal when a plan is a few long
// (start,count,stride) runs, but irregular schedules degenerate into
// thousands of count-1/count-2 runs and the per-run branch + loop setup
// dominates — the executor spends its time dispatching, not moving bytes.
// A PlanKernel classifies each OffsetPlan ONCE, when an Executor binds:
//
//   kContiguous — one stride-1 run: a single memcpy;
//   kStrided    — one constant-stride run: a tight strided loop;
//   kRunList    — few, long runs: the existing run-wise loop;
//   kIndexList  — many short runs (or an uncompressed plan): the runs are
//                 flattened back to one offset array and executed as a
//                 branch-free gather/scatter loop the compiler can
//                 auto-vectorize (`out[i] = src[idx[i]]`).
//
// Element order is preserved exactly in every variant, so results —
// including the peer-ordered floating-point `+=` of scatter-add — are
// bitwise identical to the run-wise and element-wise paths.  LocalKernel is
// the same idea for a schedule's local transfers; it flattens only runs
// whose element-order semantics match copyLocalRuns (count-1 runs, and
// strided runs that never hit the memmove fast path), so aliased
// src/dst buffers behave identically.
//
// Dispatch decisions and kernel executions are counted per rank and
// surfaced through the obs MetricsRegistry as kernel.* metrics.
// setKernelDispatch(false) routes executors back to the pre-kernel
// run-wise loops — the A/B switch the benches and differential tests use.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "sched/run_plan.h"
#include "sched/schedule.h"

namespace mc::sched {

enum class KernelKind : std::uint8_t {
  kEmpty,       // no elements: nothing to do
  kContiguous,  // single stride-1 run -> memcpy
  kStrided,     // single constant-stride run -> strided loop
  kRunList,     // few long runs -> run-wise loop (run_plan.h)
  kIndexList,   // many short runs -> flattened branch-free gather/scatter
};

inline const char* kernelKindName(KernelKind k) {
  switch (k) {
    case KernelKind::kEmpty: return "empty";
    case KernelKind::kContiguous: return "contiguous";
    case KernelKind::kStrided: return "strided";
    case KernelKind::kRunList: return "run_list";
    case KernelKind::kIndexList: return "index_list";
  }
  return "?";
}

namespace detail {
inline std::atomic<bool>& kernelDispatchFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}
/// Runs shorter than this on average flatten to an index list; at or above
/// it the per-run loop already amortizes its dispatch overhead.
inline constexpr layout::Index kShortRunAvg = 4;
}  // namespace detail

namespace detail {
/// Prefetch distance for the index-list gather/scatter loops: far enough
/// ahead to hide a cache miss behind ~16 iterations of 2-3ns each, near
/// enough that the line is still resident when the loop reaches it.
inline constexpr std::size_t kPrefetchAhead = 16;
}  // namespace detail

inline bool kernelDispatchEnabled() {
  return detail::kernelDispatchFlag().load(std::memory_order_relaxed);
}
/// Process-wide A/B switch (like setDrainOrder): false restores the
/// pre-kernel run-wise loops.  Set it outside World::run regions (or under
/// a barrier) — it is read by every virtual processor.
inline void setKernelDispatch(bool on) {
  detail::kernelDispatchFlag().store(on, std::memory_order_relaxed);
}

/// Monotone per-rank kernel telemetry: how many plans compiled to each
/// kernel at bind time, and how many kernel executions ran by kind.
struct KernelStats {
  std::uint64_t dispatchContiguous = 0;
  std::uint64_t dispatchStrided = 0;
  std::uint64_t dispatchRunList = 0;
  std::uint64_t dispatchIndexList = 0;
  std::uint64_t execContiguous = 0;
  std::uint64_t execStrided = 0;
  std::uint64_t execRunList = 0;
  std::uint64_t execIndexList = 0;
};

inline KernelStats& kernelStats() {
  thread_local KernelStats stats;
  return stats;
}

/// Registers the kernel.* samplers into the rank's registry (idempotent;
/// every Executor bind calls it, so the metrics exist wherever kernels do).
inline void ensureKernelMetrics() {
  obs::MetricsRegistry& reg = obs::threadRegistry();
  if (reg.has("kernel.dispatch.contiguous")) return;
  const KernelStats& s = kernelStats();
  reg.registerCounter("kernel.dispatch.contiguous", [&s] {
    return static_cast<double>(s.dispatchContiguous);
  });
  reg.registerCounter("kernel.dispatch.strided", [&s] {
    return static_cast<double>(s.dispatchStrided);
  });
  reg.registerCounter("kernel.dispatch.run_list", [&s] {
    return static_cast<double>(s.dispatchRunList);
  });
  reg.registerCounter("kernel.dispatch.index_list", [&s] {
    return static_cast<double>(s.dispatchIndexList);
  });
  reg.registerCounter("kernel.exec.contiguous", [&s] {
    return static_cast<double>(s.execContiguous);
  });
  reg.registerCounter("kernel.exec.strided", [&s] {
    return static_cast<double>(s.execStrided);
  });
  reg.registerCounter("kernel.exec.run_list", [&s] {
    return static_cast<double>(s.execRunList);
  });
  reg.registerCounter("kernel.exec.index_list", [&s] {
    return static_cast<double>(s.execIndexList);
  });
}

/// The kernel a plan dispatches to — a pure function of the plan, so the
/// schedule builder can record the dispatch distribution in BuildStats
/// without materializing anything.
inline KernelKind classifyPlan(const OffsetPlan& plan) {
  if (plan.elementCount() == 0) return KernelKind::kEmpty;
  if (plan.runs.empty()) return KernelKind::kIndexList;  // uncompressed
  if (plan.runs.size() == 1) {
    const OffsetRun& run = plan.runs.front();
    return (run.stride == 1 || run.count == 1) ? KernelKind::kContiguous
                                               : KernelKind::kStrided;
  }
  const auto avg = plan.elementCount() /
                   static_cast<layout::Index>(plan.runs.size());
  return avg < detail::kShortRunAvg ? KernelKind::kIndexList
                                    : KernelKind::kRunList;
}

/// A compiled pack/unpack kernel for one OffsetPlan.  Compiled once at
/// Executor bind; the plan must outlive the kernel (the executor already
/// requires the schedule to outlive it).
struct PlanKernel {
  KernelKind kind = KernelKind::kRunList;
  OffsetRun run{};  // kContiguous / kStrided
  /// kIndexList offsets expanded from the plan's runs.  Empty when the
  /// plan itself carries the offset list (uncompressed plans), in which
  /// case the kernel reads plan.offsets directly.
  std::vector<layout::Index> ownedIndices;
  /// Narrowed copy of the kIndexList offsets.  Index is 64-bit but local
  /// offsets in any real schedule fit 32; the narrow stream halves the
  /// index bytes the gather/scatter loops pull through the cache.  Empty
  /// when some offset does not fit (the wide loops take over).
  std::vector<std::uint32_t> idx32;

  static PlanKernel compile(const OffsetPlan& plan) {
    PlanKernel k;
    k.kind = classifyPlan(plan);
    KernelStats& s = kernelStats();
    switch (k.kind) {
      case KernelKind::kEmpty:
        break;
      case KernelKind::kContiguous:
        k.run = plan.runs.front();
        ++s.dispatchContiguous;
        break;
      case KernelKind::kStrided:
        k.run = plan.runs.front();
        ++s.dispatchStrided;
        break;
      case KernelKind::kRunList:
        ++s.dispatchRunList;
        break;
      case KernelKind::kIndexList: {
        if (!plan.runs.empty()) {
          k.ownedIndices =
              expandOffsets(std::span<const OffsetRun>(plan.runs));
        }
        const std::span<const layout::Index> idx = k.indices(plan);
        k.idx32 = narrowIndices(idx);
        ++s.dispatchIndexList;
        break;
      }
    }
    return k;
  }

  /// The flattened offset list of a kIndexList kernel (wide form).
  std::span<const layout::Index> indices(const OffsetPlan& plan) const {
    return ownedIndices.empty() ? std::span<const layout::Index>(plan.offsets)
                                : std::span<const layout::Index>(ownedIndices);
  }

  /// Offsets narrowed to 32 bits, or empty when any is out of range.
  static std::vector<std::uint32_t> narrowIndices(
      std::span<const layout::Index> idx) {
    std::vector<std::uint32_t> out;
    for (const layout::Index off : idx) {
      if (off < 0 || off > static_cast<layout::Index>(UINT32_MAX)) return {};
    }
    out.reserve(idx.size());
    for (const layout::Index off : idx) {
      out.push_back(static_cast<std::uint32_t>(off));
    }
    return out;
  }
};

/// Gather `plan`'s source elements into `out` (plan.elementCount()
/// elements), dispatched through the compiled kernel.  Element order — and
/// therefore every result — is identical to packPlan.
template <typename T>
void packKernel(const PlanKernel& k, const OffsetPlan& plan,
                std::span<const T> src, T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  KernelStats& s = kernelStats();
  switch (k.kind) {
    case KernelKind::kEmpty:
      return;
    case KernelKind::kContiguous:
      ++s.execContiguous;
      std::memcpy(out, src.data() + k.run.start,
                  static_cast<size_t>(k.run.count) * sizeof(T));
      return;
    case KernelKind::kStrided: {
      ++s.execStrided;
      const T* base = src.data() + k.run.start;
      const layout::Index stride = k.run.stride;
      const layout::Index n = k.run.count;
      for (layout::Index i = 0; i < n; ++i) out[i] = base[i * stride];
      return;
    }
    case KernelKind::kRunList:
      ++s.execRunList;
      packRuns(src, std::span<const OffsetRun>(plan.runs), out);
      return;
    case KernelKind::kIndexList: {
      ++s.execIndexList;
      const T* base = src.data();
      if (!k.idx32.empty()) {
        const std::uint32_t* idx = k.idx32.data();
        const size_t n = k.idx32.size();
        constexpr size_t ahead = detail::kPrefetchAhead;
        for (size_t i = 0; i < n; ++i) {
          if (i + ahead < n) __builtin_prefetch(base + idx[i + ahead], 0);
          out[i] = base[idx[i]];
        }
        return;
      }
      const std::span<const layout::Index> idx = k.indices(plan);
      const size_t n = idx.size();
      for (size_t i = 0; i < n; ++i) {
        out[i] = base[static_cast<size_t>(idx[i])];
      }
      return;
    }
  }
}

/// Scatter `buf` (pack order) to `plan`'s destination elements.
template <typename T>
void unpackKernel(const PlanKernel& k, const OffsetPlan& plan, const T* buf,
                  std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  KernelStats& s = kernelStats();
  switch (k.kind) {
    case KernelKind::kEmpty:
      return;
    case KernelKind::kContiguous:
      ++s.execContiguous;
      std::memcpy(dst.data() + k.run.start, buf,
                  static_cast<size_t>(k.run.count) * sizeof(T));
      return;
    case KernelKind::kStrided: {
      ++s.execStrided;
      T* base = dst.data() + k.run.start;
      const layout::Index stride = k.run.stride;
      const layout::Index n = k.run.count;
      for (layout::Index i = 0; i < n; ++i) base[i * stride] = buf[i];
      return;
    }
    case KernelKind::kRunList:
      ++s.execRunList;
      unpackRuns(std::span<const OffsetRun>(plan.runs), buf, dst);
      return;
    case KernelKind::kIndexList: {
      ++s.execIndexList;
      T* base = dst.data();
      if (!k.idx32.empty()) {
        const std::uint32_t* idx = k.idx32.data();
        const size_t n = k.idx32.size();
        constexpr size_t ahead = detail::kPrefetchAhead;
        for (size_t i = 0; i < n; ++i) {
          if (i + ahead < n) __builtin_prefetch(base + idx[i + ahead], 1);
          base[idx[i]] = buf[i];
        }
        return;
      }
      const std::span<const layout::Index> idx = k.indices(plan);
      const size_t n = idx.size();
      for (size_t i = 0; i < n; ++i) {
        base[static_cast<size_t>(idx[i])] = buf[i];
      }
      return;
    }
  }
}

/// Accumulating scatter (dst[off] += value), in pack order — the same
/// element order as unpackRunsAdd, so floating-point sums stay bitwise
/// identical.
template <typename T>
void unpackAddKernel(const PlanKernel& k, const OffsetPlan& plan,
                     const T* buf, std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  KernelStats& s = kernelStats();
  switch (k.kind) {
    case KernelKind::kEmpty:
      return;
    case KernelKind::kContiguous: {
      ++s.execContiguous;
      T* base = dst.data() + k.run.start;
      const layout::Index n = k.run.count;
      for (layout::Index i = 0; i < n; ++i) base[i] += buf[i];
      return;
    }
    case KernelKind::kStrided: {
      ++s.execStrided;
      T* base = dst.data() + k.run.start;
      const layout::Index stride = k.run.stride;
      const layout::Index n = k.run.count;
      for (layout::Index i = 0; i < n; ++i) base[i * stride] += buf[i];
      return;
    }
    case KernelKind::kRunList:
      ++s.execRunList;
      unpackRunsAdd(std::span<const OffsetRun>(plan.runs), buf, dst);
      return;
    case KernelKind::kIndexList: {
      ++s.execIndexList;
      T* base = dst.data();
      if (!k.idx32.empty()) {
        const std::uint32_t* idx = k.idx32.data();
        const size_t n = k.idx32.size();
        constexpr size_t ahead = detail::kPrefetchAhead;
        for (size_t i = 0; i < n; ++i) {
          if (i + ahead < n) __builtin_prefetch(base + idx[i + ahead], 1);
          base[idx[i]] += buf[i];
        }
        return;
      }
      const std::span<const layout::Index> idx = k.indices(plan);
      const size_t n = idx.size();
      for (size_t i = 0; i < n; ++i) {
        base[static_cast<size_t>(idx[i])] += buf[i];
      }
      return;
    }
  }
}

/// A compiled kernel for a schedule's local transfers.  Only kIndexList is
/// a new path: the local runs flatten to (src, dst) offset arrays executed
/// as branch-free loops.  Flattening is restricted to runs whose
/// copyLocalRuns semantics ARE element order — count-1 runs and strided
/// runs that never take the memmove fast path — so aliased src/dst buffers
/// (ghost fills) behave bit-identically.  Everything else stays kRunList
/// (the executor's existing local paths).
struct LocalKernel {
  KernelKind kind = KernelKind::kRunList;
  std::vector<layout::Index> srcIdx, dstIdx;  // kIndexList (wide fallback)
  std::vector<std::uint32_t> srcIdx32, dstIdx32;  // narrow fast path

  static LocalKernel compile(const Schedule& sched) {
    LocalKernel k;
    if (sched.localRuns.empty()) {
      // Uncompressed local pairs: the executor's element-wise paths are
      // already branch-free; leave them alone.
      k.kind = sched.localPairs.empty() ? KernelKind::kEmpty
                                        : KernelKind::kRunList;
      return k;
    }
    layout::Index total = 0;
    bool flattenable = true;
    for (const LocalRun& run : sched.localRuns) {
      total += run.count;
      // A memmove-eligible run (both strides 1, count > 1) has
      // read-all-then-write semantics that element order cannot reproduce
      // under aliasing; keep the run-wise path for schedules carrying one.
      if (run.count > 1 && run.srcStride == 1 && run.dstStride == 1) {
        flattenable = false;
      }
    }
    if (total == 0) {
      k.kind = KernelKind::kEmpty;
      return k;
    }
    const auto avg =
        total / static_cast<layout::Index>(sched.localRuns.size());
    if (!flattenable || avg >= detail::kShortRunAvg) {
      k.kind = KernelKind::kRunList;
      ++kernelStats().dispatchRunList;
      return k;
    }
    k.kind = KernelKind::kIndexList;
    k.srcIdx.reserve(static_cast<size_t>(total));
    k.dstIdx.reserve(static_cast<size_t>(total));
    for (const LocalRun& run : sched.localRuns) {
      for (layout::Index i = 0; i < run.count; ++i) {
        k.srcIdx.push_back(run.src + i * run.srcStride);
        k.dstIdx.push_back(run.dst + i * run.dstStride);
      }
    }
    k.srcIdx32 =
        PlanKernel::narrowIndices(std::span<const layout::Index>(k.srcIdx));
    k.dstIdx32 =
        PlanKernel::narrowIndices(std::span<const layout::Index>(k.dstIdx));
    if (k.srcIdx32.empty() || k.dstIdx32.empty()) {
      k.srcIdx32.clear();
      k.dstIdx32.clear();
    }
    ++kernelStats().dispatchIndexList;
    return k;
  }

  /// Direct local copies in element order (== copyLocalRuns for the runs
  /// this kernel flattens).
  template <typename T>
  void copy(std::span<const T> src, std::span<T> dst) const {
    ++kernelStats().execIndexList;
    if (!srcIdx32.empty()) {
      const std::uint32_t* sIdx = srcIdx32.data();
      const std::uint32_t* dIdx = dstIdx32.data();
      const size_t n = srcIdx32.size();
      constexpr size_t ahead = detail::kPrefetchAhead;
      for (size_t i = 0; i < n; ++i) {
        if (i + ahead < n) {
          __builtin_prefetch(src.data() + sIdx[i + ahead], 0);
          __builtin_prefetch(dst.data() + dIdx[i + ahead], 1);
        }
        dst[dIdx[i]] = src[sIdx[i]];
      }
      return;
    }
    const layout::Index* sIdx = srcIdx.data();
    const layout::Index* dIdx = dstIdx.data();
    const size_t n = srcIdx.size();
    for (size_t i = 0; i < n; ++i) {
      dst[static_cast<size_t>(dIdx[i])] = src[static_cast<size_t>(sIdx[i])];
    }
  }

  /// Accumulating local copies (dst += src), element order.
  template <typename T>
  void add(std::span<const T> src, std::span<T> dst) const {
    ++kernelStats().execIndexList;
    if (!srcIdx32.empty()) {
      const std::uint32_t* sIdx = srcIdx32.data();
      const std::uint32_t* dIdx = dstIdx32.data();
      const size_t n = srcIdx32.size();
      constexpr size_t ahead = detail::kPrefetchAhead;
      for (size_t i = 0; i < n; ++i) {
        if (i + ahead < n) {
          __builtin_prefetch(src.data() + sIdx[i + ahead], 0);
          __builtin_prefetch(dst.data() + dIdx[i + ahead], 1);
        }
        dst[dIdx[i]] += src[sIdx[i]];
      }
      return;
    }
    const layout::Index* sIdx = srcIdx.data();
    const layout::Index* dIdx = dstIdx.data();
    const size_t n = srcIdx.size();
    for (size_t i = 0; i < n; ++i) {
      dst[static_cast<size_t>(dIdx[i])] += src[static_cast<size_t>(sIdx[i])];
    }
  }
};

}  // namespace mc::sched
