// Run-compressed offset plans.
//
// Schedule offset lists produced from regular sections are dominated by long
// arithmetic progressions (whole section rows), yet the baseline executor
// walks them one element at a time.  compressOffsets collapses an offset
// list into (start, count, stride) runs; the pack/unpack/local-copy helpers
// here execute stride-1 runs with one memcpy/memmove per run and other
// strides with a tight strided loop.  Compression is exact: expanding the
// runs reproduces the original list, including repeated offsets (stride-0
// runs — a source element fanned out to several destinations) and
// descending progressions (negative strides).  The compressed form is what
// the schedule caches store, so a cached schedule re-executes on the fast
// path every time.
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "layout/index.h"

namespace mc::sched {

/// `count` offsets start, start+stride, ..., start+(count-1)*stride.
struct OffsetRun {
  layout::Index start = 0;
  layout::Index count = 0;
  layout::Index stride = 0;

  bool operator==(const OffsetRun&) const = default;
};

/// A run of local src->dst element copies: src + k*srcStride goes to
/// dst + k*dstStride for k in [0, count).
struct LocalRun {
  layout::Index src = 0;
  layout::Index dst = 0;
  layout::Index count = 0;
  layout::Index srcStride = 0;
  layout::Index dstStride = 0;

  bool operator==(const LocalRun&) const = default;
};

/// Collapses an offset list into maximal arithmetic runs, preserving order.
inline std::vector<OffsetRun> compressOffsets(
    std::span<const layout::Index> offsets) {
  std::vector<OffsetRun> runs;
  for (const layout::Index off : offsets) {
    if (!runs.empty()) {
      OffsetRun& run = runs.back();
      if (run.count == 1) {
        run.stride = off - run.start;
        ++run.count;
        continue;
      }
      if (off == run.start + run.count * run.stride) {
        ++run.count;
        continue;
      }
    }
    runs.push_back(OffsetRun{off, 1, 0});
  }
  return runs;
}

/// Collapses local (src, dst) offset pairs into runs, preserving order.
inline std::vector<LocalRun> compressPairs(
    std::span<const std::pair<layout::Index, layout::Index>> pairs) {
  std::vector<LocalRun> runs;
  for (const auto& [from, to] : pairs) {
    if (!runs.empty()) {
      LocalRun& run = runs.back();
      if (run.count == 1) {
        run.srcStride = from - run.src;
        run.dstStride = to - run.dst;
        ++run.count;
        continue;
      }
      if (from == run.src + run.count * run.srcStride &&
          to == run.dst + run.count * run.dstStride) {
        ++run.count;
        continue;
      }
    }
    runs.push_back(LocalRun{from, to, 1, 0, 0});
  }
  return runs;
}

/// Appends a whole run to a run list, preserving compressOffsets' exact
/// greedy semantics: the result is bit-identical to
/// compressOffsets(expand(runs) ++ expand(run)).  This is what lets the
/// run-native schedule builders emit whole runs yet produce the same lanes
/// the element-wise path would.  The greedy absorbs elements one at a time
/// only across run seams (a count-1 tail infers its stride from the next
/// element; a mismatched-stride run donates its first element before the
/// remainder starts a fresh run), so the loop runs O(1) amortized.
inline void appendOffsetRun(std::vector<OffsetRun>& runs, OffsetRun run) {
  while (run.count > 0) {
    if (!runs.empty()) {
      OffsetRun& tail = runs.back();
      if (tail.count == 1) {
        tail.stride = run.start - tail.start;
        ++tail.count;
        run.start += run.stride;
        --run.count;
        continue;
      }
      if (run.start == tail.start + tail.count * tail.stride) {
        if (run.count == 1 || run.stride == tail.stride) {
          tail.count += run.count;
          return;
        }
        ++tail.count;
        run.start += run.stride;
        --run.count;
        continue;
      }
    }
    if (run.count == 1) run.stride = 0;  // canonical singleton form
    runs.push_back(run);
    return;
  }
}

/// Run-wise analogue of compressPairs: appends a LocalRun preserving the
/// element-wise greedy exactly (see appendOffsetRun).
inline void appendLocalRun(std::vector<LocalRun>& runs, LocalRun run) {
  while (run.count > 0) {
    if (!runs.empty()) {
      LocalRun& tail = runs.back();
      if (tail.count == 1) {
        tail.srcStride = run.src - tail.src;
        tail.dstStride = run.dst - tail.dst;
        ++tail.count;
        run.src += run.srcStride;
        run.dst += run.dstStride;
        --run.count;
        continue;
      }
      if (run.src == tail.src + tail.count * tail.srcStride &&
          run.dst == tail.dst + tail.count * tail.dstStride) {
        if (run.count == 1 || (run.srcStride == tail.srcStride &&
                               run.dstStride == tail.dstStride)) {
          tail.count += run.count;
          return;
        }
        ++tail.count;
        run.src += run.srcStride;
        run.dst += run.dstStride;
        --run.count;
        continue;
      }
    }
    if (run.count == 1) {
      run.srcStride = 0;
      run.dstStride = 0;
    }
    runs.push_back(run);
    return;
  }
}

/// Inverse of compressOffsets.
inline std::vector<layout::Index> expandOffsets(
    std::span<const OffsetRun> runs) {
  std::vector<layout::Index> out;
  for (const OffsetRun& run : runs) {
    for (layout::Index k = 0; k < run.count; ++k) {
      out.push_back(run.start + k * run.stride);
    }
  }
  return out;
}

/// Inverse of compressPairs.
inline std::vector<std::pair<layout::Index, layout::Index>> expandPairs(
    std::span<const LocalRun> runs) {
  std::vector<std::pair<layout::Index, layout::Index>> out;
  for (const LocalRun& run : runs) {
    for (layout::Index k = 0; k < run.count; ++k) {
      out.emplace_back(run.src + k * run.srcStride,
                       run.dst + k * run.dstStride);
    }
  }
  return out;
}

inline layout::Index runElementCount(std::span<const OffsetRun> runs) {
  layout::Index n = 0;
  for (const OffsetRun& run : runs) n += run.count;
  return n;
}

inline layout::Index runPairCount(std::span<const LocalRun> runs) {
  layout::Index n = 0;
  for (const LocalRun& run : runs) n += run.count;
  return n;
}

/// Packs src elements addressed by `runs` into `out` (which must hold
/// runElementCount(runs) elements), in run order.
template <typename T>
void packRuns(std::span<const T> src, std::span<const OffsetRun> runs,
              T* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetRun& run : runs) {
    const T* base = src.data() + run.start;
    if (run.stride == 1) {
      std::memcpy(out, base, static_cast<size_t>(run.count) * sizeof(T));
      out += run.count;
    } else {
      for (layout::Index k = 0; k < run.count; ++k) {
        *out++ = *base;
        base += run.stride;
      }
    }
  }
}

/// Unpacks `buf` (in run order) into dst elements addressed by `runs`.
template <typename T>
void unpackRuns(std::span<const OffsetRun> runs, const T* buf,
                std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetRun& run : runs) {
    T* base = dst.data() + run.start;
    if (run.stride == 1) {
      std::memcpy(base, buf, static_cast<size_t>(run.count) * sizeof(T));
      buf += run.count;
    } else {
      for (layout::Index k = 0; k < run.count; ++k) {
        *base = *buf++;
        base += run.stride;
      }
    }
  }
}

/// Accumulating unpack (dst[off] += value) — the scatter-add executor.
template <typename T>
void unpackRunsAdd(std::span<const OffsetRun> runs, const T* buf,
                   std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const OffsetRun& run : runs) {
    T* base = dst.data() + run.start;
    for (layout::Index k = 0; k < run.count; ++k) {
      *base += *buf++;
      base += run.stride;
    }
  }
}

/// Direct local copies.  src and dst may alias (ghost fills copy within one
/// buffer), so the contiguous fast path uses memmove.
template <typename T>
void copyLocalRuns(std::span<const LocalRun> runs, std::span<const T> src,
                   std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const LocalRun& run : runs) {
    if (run.srcStride == 1 && run.dstStride == 1) {
      std::memmove(dst.data() + run.dst, src.data() + run.src,
                   static_cast<size_t>(run.count) * sizeof(T));
    } else {
      for (layout::Index k = 0; k < run.count; ++k) {
        dst[static_cast<size_t>(run.dst + k * run.dstStride)] =
            src[static_cast<size_t>(run.src + k * run.srcStride)];
      }
    }
  }
}

/// Accumulating local copies (dst += src).
template <typename T>
void addLocalRuns(std::span<const LocalRun> runs, std::span<const T> src,
                  std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const LocalRun& run : runs) {
    for (layout::Index k = 0; k < run.count; ++k) {
      dst[static_cast<size_t>(run.dst + k * run.dstStride)] +=
          src[static_cast<size_t>(run.src + k * run.srcStride)];
    }
  }
}

}  // namespace mc::sched
