// Small fixed-rank index math for distributed multidimensional arrays.
//
// Ranks are tiny (the paper's codes are 1-D and 2-D; we support up to 4-D),
// so points and shapes are inline arrays — no heap traffic in the inner
// loops that enumerate linearizations.
#pragma once

#include <array>
#include <cstdint>

#include "util/error.h"

namespace mc::layout {

using Index = std::int64_t;
inline constexpr int kMaxRank = 4;

/// An n-dimensional index (or extent vector).
struct Point {
  int rank = 0;
  std::array<Index, kMaxRank> v{};

  static Point of(std::initializer_list<Index> xs) {
    MC_REQUIRE(xs.size() >= 1 && xs.size() <= kMaxRank);
    Point p;
    p.rank = static_cast<int>(xs.size());
    int i = 0;
    for (Index x : xs) p.v[static_cast<size_t>(i++)] = x;
    return p;
  }
  Index& operator[](int d) { return v[static_cast<size_t>(d)]; }
  Index operator[](int d) const { return v[static_cast<size_t>(d)]; }
  bool operator==(const Point& o) const {
    if (rank != o.rank) return false;
    for (int d = 0; d < rank; ++d) {
      if (v[static_cast<size_t>(d)] != o.v[static_cast<size_t>(d)]) return false;
    }
    return true;
  }
};

/// Extents of an n-dimensional array (all extents >= 0).
struct Shape {
  int rank = 0;
  std::array<Index, kMaxRank> extent{};

  static Shape of(std::initializer_list<Index> xs) {
    MC_REQUIRE(xs.size() >= 1 && xs.size() <= kMaxRank);
    Shape s;
    s.rank = static_cast<int>(xs.size());
    int i = 0;
    for (Index x : xs) {
      MC_REQUIRE(x >= 0);
      s.extent[static_cast<size_t>(i++)] = x;
    }
    return s;
  }
  Index operator[](int d) const { return extent[static_cast<size_t>(d)]; }
  Index& operator[](int d) { return extent[static_cast<size_t>(d)]; }
  Index numElements() const {
    Index n = 1;
    for (int d = 0; d < rank; ++d) n *= extent[static_cast<size_t>(d)];
    return n;
  }
  bool contains(const Point& p) const {
    if (p.rank != rank) return false;
    for (int d = 0; d < rank; ++d) {
      if (p[d] < 0 || p[d] >= (*this)[d]) return false;
    }
    return true;
  }
  bool operator==(const Shape& o) const {
    if (rank != o.rank) return false;
    for (int d = 0; d < rank; ++d) {
      if ((*this)[d] != o[d]) return false;
    }
    return true;
  }
};

/// Row-major (C order) offset of `p` within an array of shape `s`.
inline Index rowMajorOffset(const Shape& s, const Point& p) {
  MC_CHECK(p.rank == s.rank);
  Index off = 0;
  for (int d = 0; d < s.rank; ++d) off = off * s[d] + p[d];
  return off;
}

/// Inverse of rowMajorOffset.
inline Point rowMajorPoint(const Shape& s, Index off) {
  Point p;
  p.rank = s.rank;
  for (int d = s.rank - 1; d >= 0; --d) {
    p[d] = off % s[d];
    off /= s[d];
  }
  MC_CHECK(off == 0, "offset out of range");
  return p;
}

}  // namespace mc::layout
