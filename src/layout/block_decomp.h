// Multidimensional block decompositions over processor grids.
//
// This is the distribution machinery shared by the "regular" libraries:
// Multiblock Parti distributes each array BLOCK-wise over a processor grid
// (paper Section 5.1: "regularly distributed by blocks in both dimensions"),
// and the HPF runtime uses the same per-dimension block map for its BLOCK
// distributions.  Blocks are ceiling-sized: dimension extent N over P
// processors gives blocks of ceil(N/P), the last processor taking the
// remainder (the HPF BLOCK rule).
#pragma once

#include <vector>

#include "layout/index.h"
#include "layout/section.h"

namespace mc::layout {

/// Chooses a processor grid for `nprocs` over `rank` dimensions, favouring
/// near-square grids (same spirit as MPI_Dims_create).
std::vector<int> chooseProcGrid(int nprocs, int rank);

/// A BLOCK decomposition of a global shape over a processor grid.
class BlockDecomp {
 public:
  BlockDecomp() = default;
  /// `grid[d]` = processors along dimension d; product must equal nprocs.
  BlockDecomp(Shape global, std::vector<int> grid);
  /// Near-square grid chosen automatically.
  static BlockDecomp regular(Shape global, int nprocs);

  const Shape& globalShape() const { return global_; }
  int rank() const { return global_.rank; }
  int nprocs() const { return nprocs_; }
  const std::vector<int>& grid() const { return grid_; }

  /// Processor-grid coordinates of processor `proc` (row-major over grid).
  std::vector<int> procCoord(int proc) const;
  /// Inverse of procCoord.
  int procAt(const std::vector<int>& coord) const;

  /// Inclusive [lo, hi] owned along dimension d by grid coordinate c.
  /// Empty blocks (hi < lo) are possible when extents < grid size.
  std::pair<Index, Index> ownedRange(int d, int c) const;

  /// The subarray owned by `proc` as a stride-1 section (may be empty).
  RegularSection ownedBox(int proc) const;

  /// Owner processor of a global point.
  int ownerOf(const Point& p) const;

  /// Local shape (owned extents) of `proc`.
  Shape localShape(int proc) const;

  /// Offset of global point `p` within the owner's local row-major storage
  /// (no ghost padding; callers with halos add their own padding).
  Index localOffset(int proc, const Point& p) const;

 private:
  Shape global_;
  std::vector<int> grid_;
  int nprocs_ = 0;
};

}  // namespace mc::layout
