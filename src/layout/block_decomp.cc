#include "layout/block_decomp.h"

#include <algorithm>

namespace mc::layout {

std::vector<int> chooseProcGrid(int nprocs, int rank) {
  MC_REQUIRE(nprocs > 0 && rank >= 1 && rank <= kMaxRank);
  std::vector<int> grid(static_cast<size_t>(rank), 1);
  // Peel prime factors largest-first onto the currently smallest grid axis.
  std::vector<int> factors;
  int n = nprocs;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto smallest = std::min_element(grid.begin(), grid.end());
    *smallest *= f;
  }
  std::sort(grid.rbegin(), grid.rend());
  return grid;
}

BlockDecomp::BlockDecomp(Shape global, std::vector<int> grid)
    : global_(global), grid_(std::move(grid)) {
  MC_REQUIRE(static_cast<int>(grid_.size()) == global_.rank,
             "grid rank %zu != shape rank %d", grid_.size(), global_.rank);
  nprocs_ = 1;
  for (int g : grid_) {
    MC_REQUIRE(g > 0);
    nprocs_ *= g;
  }
}

BlockDecomp BlockDecomp::regular(Shape global, int nprocs) {
  return BlockDecomp(global, chooseProcGrid(nprocs, global.rank));
}

std::vector<int> BlockDecomp::procCoord(int proc) const {
  MC_REQUIRE(proc >= 0 && proc < nprocs_);
  std::vector<int> coord(grid_.size());
  for (int d = global_.rank - 1; d >= 0; --d) {
    coord[static_cast<size_t>(d)] = proc % grid_[static_cast<size_t>(d)];
    proc /= grid_[static_cast<size_t>(d)];
  }
  return coord;
}

int BlockDecomp::procAt(const std::vector<int>& coord) const {
  MC_REQUIRE(coord.size() == grid_.size());
  int proc = 0;
  for (int d = 0; d < global_.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    MC_REQUIRE(coord[dd] >= 0 && coord[dd] < grid_[dd]);
    proc = proc * grid_[dd] + coord[dd];
  }
  return proc;
}

std::pair<Index, Index> BlockDecomp::ownedRange(int d, int c) const {
  const Index extent = global_[d];
  const Index p = grid_[static_cast<size_t>(d)];
  const Index block = (extent + p - 1) / p;  // ceil
  const Index lo = block * c;
  const Index hi = std::min(extent, block * (c + 1)) - 1;
  return {lo, hi};
}

RegularSection BlockDecomp::ownedBox(int proc) const {
  MC_REQUIRE(proc >= 0 && proc < nprocs_);
  // Decode the grid coordinate inline (hot path: no heap traffic).
  std::array<int, kMaxRank> coord{};
  int rem = proc;
  for (int d = global_.rank - 1; d >= 0; --d) {
    const int g = grid_[static_cast<size_t>(d)];
    coord[static_cast<size_t>(d)] = rem % g;
    rem /= g;
  }
  RegularSection s;
  s.rank = global_.rank;
  for (int d = 0; d < global_.rank; ++d) {
    const auto [lo, hi] = ownedRange(d, coord[static_cast<size_t>(d)]);
    const auto dd = static_cast<size_t>(d);
    s.lo[dd] = lo;
    s.hi[dd] = hi;
    s.stride[dd] = 1;
  }
  return s;
}

int BlockDecomp::ownerOf(const Point& p) const {
  MC_REQUIRE(global_.contains(p), "point not in the global array");
  // Row-major over grid coordinates, computed without allocation: this is
  // called once per element in schedule builders.
  int proc = 0;
  for (int d = 0; d < global_.rank; ++d) {
    const Index extent = global_[d];
    const Index np = grid_[static_cast<size_t>(d)];
    const Index block = (extent + np - 1) / np;
    proc = proc * static_cast<int>(np) + static_cast<int>(p[d] / block);
  }
  return proc;
}

Shape BlockDecomp::localShape(int proc) const {
  const RegularSection box = ownedBox(proc);
  Shape s;
  s.rank = global_.rank;
  for (int d = 0; d < global_.rank; ++d) s[d] = box.count(d);
  return s;
}

Index BlockDecomp::localOffset(int proc, const Point& p) const {
  const RegularSection box = ownedBox(proc);
  MC_REQUIRE(box.contains(p), "point not owned by processor %d", proc);
  const Shape local = localShape(proc);
  Point lp;
  lp.rank = p.rank;
  for (int d = 0; d < p.rank; ++d) lp[d] = p[d] - box.lo[static_cast<size_t>(d)];
  return rowMajorOffset(local, lp);
}

}  // namespace mc::layout
