// DistDelta — the migrated-interval description of a repartitioning.
//
// When a distribution changes incrementally (RCB rebalance after load
// drift, block boundary shift, chaos::remap, client grow/shrink), the set
// of linearization positions whose (owner, local offset) mapping changed
// is usually small.  A DistDelta records exactly those positions as sorted
// disjoint half-open intervals over the linearization of a SetOfRegions.
//
// Contract: outside the delta's intervals, BOTH sides' (owner, offset)
// mappings are unchanged between the old and new distribution.  Inside
// them, anything may have changed.  Over-approximation is safe — marking
// an unchanged position as migrated only makes the patch rebuild an
// identical segment (the schedule builders' greedy run coalescing is
// cut-invariant), never changes the result.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/section.h"
#include "util/hash.h"

namespace mc::layout {

/// A half-open interval [lo, hi) of linearization positions.
struct LinInterval {
  Index lo = 0;
  Index hi = 0;
  bool operator==(const LinInterval&) const = default;
};

class DistDelta {
 public:
  /// Marks [lo, hi) migrated.  Empty or inverted intervals are ignored.
  void add(Index lo, Index hi);

  /// Marks `count` positions starting at `lin` with the given stride
  /// migrated (stride 0 or 1 marks the contiguous block).
  void addRun(Index lin, Index count, Index stride = 1);

  /// Folds another delta in (set union).
  void unionWith(const DistDelta& other);

  /// Sorted disjoint maximal intervals (normalizes lazily).
  const std::vector<LinInterval>& intervals() const;

  bool empty() const { return intervals().empty(); }

  /// Total number of migrated positions.
  Index migratedElements() const;

  /// True when `pos` lies inside a migrated interval.
  bool contains(Index pos) const;

  /// Content fingerprint of the normalized interval set — the cache key
  /// ingredient for delta-keyed schedule lookups.
  HashStream::Digest fingerprint() const;

 private:
  void ensureNormalized() const;

  mutable std::vector<LinInterval> iv_;
  mutable bool dirty_ = false;
};

}  // namespace mc::layout
