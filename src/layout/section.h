// Regular array sections (Fortran-90 style triplets).
//
// A RegularSection is the Region type of the "regular" libraries in the
// paper (HPF and Multiblock Parti): per dimension an inclusive lower bound,
// inclusive upper bound and positive stride, exactly the
// `lo:hi:stride` triplet of the paper's CreateRegion_HPF example.  Its
// linearization is row-major order over the section's index tuples
// (Section 4.1.2 of the paper: "the row major ordering of the elements of
// the regular section").
#pragma once

#include <vector>

#include "layout/index.h"

namespace mc::layout {

struct RegularSection {
  int rank = 0;
  std::array<Index, kMaxRank> lo{};
  std::array<Index, kMaxRank> hi{};      // inclusive
  std::array<Index, kMaxRank> stride{};  // > 0

  /// Builds lo:hi:stride per dimension; hi is inclusive.
  static RegularSection of(std::initializer_list<Index> lo,
                           std::initializer_list<Index> hi,
                           std::initializer_list<Index> stride);
  /// Stride-1 section.
  static RegularSection box(std::initializer_list<Index> lo,
                            std::initializer_list<Index> hi);
  /// The whole array of shape `s`.
  static RegularSection all(const Shape& s);

  Index count(int d) const {
    const Index lo_ = lo[static_cast<size_t>(d)];
    const Index hi_ = hi[static_cast<size_t>(d)];
    const Index st = stride[static_cast<size_t>(d)];
    return hi_ < lo_ ? 0 : (hi_ - lo_) / st + 1;
  }
  Index numElements() const {
    Index n = 1;
    for (int d = 0; d < rank; ++d) n *= count(d);
    return n;
  }
  bool empty() const { return numElements() == 0; }

  bool contains(const Point& p) const {
    if (p.rank != rank) return false;
    for (int d = 0; d < rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      if (p[d] < lo[dd] || p[d] > hi[dd]) return false;
      if ((p[d] - lo[dd]) % stride[dd] != 0) return false;
    }
    return true;
  }

  /// The k-th index tuple of the section in linearization (row-major) order.
  Point pointAt(Index k) const;

  /// Linearization position of `p` (which must be contained).
  Index positionOf(const Point& p) const;

  /// Section restricted to the axis-aligned box [boxLo, boxHi] (inclusive).
  /// The result keeps this section's strides and global alignment, so its
  /// elements are exactly the contained elements that fall in the box.
  RegularSection clampToBox(const Point& boxLo, const Point& boxHi) const;

  /// Calls fn(point, linearPosition) for every element in row-major order.
  template <typename F>
  void forEach(F&& fn) const {
    if (empty()) return;
    Point p;
    p.rank = rank;
    for (int d = 0; d < rank; ++d) p[d] = lo[static_cast<size_t>(d)];
    Index pos = 0;
    for (;;) {
      fn(p, pos);
      ++pos;
      int d = rank - 1;
      for (; d >= 0; --d) {
        const auto dd = static_cast<size_t>(d);
        p[d] += stride[dd];
        if (p[d] <= hi[dd]) break;
        p[d] = lo[dd];
      }
      if (d < 0) return;
    }
  }

  bool operator==(const RegularSection& o) const;
};

/// Intersection of two stride-1 boxes (both strides must be 1); the result
/// may be empty.  Used by the regular libraries' box-calculus schedule
/// builders.
RegularSection intersectBoxes(const RegularSection& a, const RegularSection& b);

/// `box` grown by `width` cells on every face, clipped to `domain`.
RegularSection expandBox(const RegularSection& box, Index width,
                         const Shape& domain);

}  // namespace mc::layout
