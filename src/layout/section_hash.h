// Hashing of layout types for schedule-cache keys.
#pragma once

#include "layout/section.h"
#include "util/hash.h"

namespace mc::layout {

inline void hashSection(HashStream& h, const RegularSection& s) {
  h.pod(s.rank);
  for (int d = 0; d < s.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    h.pod(s.lo[dd]);
    h.pod(s.hi[dd]);
    h.pod(s.stride[dd]);
  }
}

inline void hashShape(HashStream& h, const Shape& s) {
  h.pod(s.rank);
  for (int d = 0; d < s.rank; ++d) h.pod(s[d]);
}

}  // namespace mc::layout
