#include "layout/dist_delta.h"

#include <algorithm>

namespace mc::layout {

void DistDelta::add(Index lo, Index hi) {
  if (hi <= lo) return;
  if (!dirty_ && !iv_.empty()) {
    LinInterval& tail = iv_.back();
    if (lo >= tail.lo) {
      // Common in-order case: extend or append without re-sorting.
      if (lo <= tail.hi) {
        tail.hi = std::max(tail.hi, hi);
        return;
      }
      iv_.push_back({lo, hi});
      return;
    }
    dirty_ = true;
  }
  iv_.push_back({lo, hi});
}

void DistDelta::addRun(Index lin, Index count, Index stride) {
  if (count <= 0) return;
  if (count == 1 || stride == 0) {
    add(lin, lin + 1);
    return;
  }
  if (stride == 1) {
    add(lin, lin + count);
    return;
  }
  for (Index k = 0; k < count; ++k) add(lin + k * stride, lin + k * stride + 1);
}

void DistDelta::unionWith(const DistDelta& other) {
  other.ensureNormalized();
  for (const LinInterval& iv : other.iv_) add(iv.lo, iv.hi);
}

const std::vector<LinInterval>& DistDelta::intervals() const {
  ensureNormalized();
  return iv_;
}

Index DistDelta::migratedElements() const {
  ensureNormalized();
  Index n = 0;
  for (const LinInterval& iv : iv_) n += iv.hi - iv.lo;
  return n;
}

bool DistDelta::contains(Index pos) const {
  ensureNormalized();
  auto it = std::upper_bound(
      iv_.begin(), iv_.end(), pos,
      [](Index p, const LinInterval& iv) { return p < iv.lo; });
  return it != iv_.begin() && pos < std::prev(it)->hi;
}

HashStream::Digest DistDelta::fingerprint() const {
  ensureNormalized();
  HashStream h;
  h.str("mc-dist-delta");
  h.pod(static_cast<Index>(iv_.size()));
  h.podSpan(std::span<const LinInterval>(iv_));
  return h.digest();
}

void DistDelta::ensureNormalized() const {
  if (!dirty_) return;
  std::sort(iv_.begin(), iv_.end(),
            [](const LinInterval& a, const LinInterval& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  std::vector<LinInterval> merged;
  merged.reserve(iv_.size());
  for (const LinInterval& iv : iv_) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  iv_ = std::move(merged);
  dirty_ = false;
}

}  // namespace mc::layout
