#include "layout/section.h"

#include <algorithm>

namespace mc::layout {

RegularSection RegularSection::of(std::initializer_list<Index> lo,
                                  std::initializer_list<Index> hi,
                                  std::initializer_list<Index> stride) {
  MC_REQUIRE(lo.size() == hi.size() && hi.size() == stride.size());
  MC_REQUIRE(lo.size() >= 1 && lo.size() <= kMaxRank);
  RegularSection s;
  s.rank = static_cast<int>(lo.size());
  int i = 0;
  for (Index x : lo) s.lo[static_cast<size_t>(i++)] = x;
  i = 0;
  for (Index x : hi) s.hi[static_cast<size_t>(i++)] = x;
  i = 0;
  for (Index x : stride) {
    MC_REQUIRE(x > 0, "stride must be positive");
    s.stride[static_cast<size_t>(i++)] = x;
  }
  return s;
}

RegularSection RegularSection::box(std::initializer_list<Index> lo,
                                   std::initializer_list<Index> hi) {
  MC_REQUIRE(lo.size() == hi.size());
  RegularSection s;
  s.rank = static_cast<int>(lo.size());
  int i = 0;
  for (Index x : lo) s.lo[static_cast<size_t>(i++)] = x;
  i = 0;
  for (Index x : hi) s.hi[static_cast<size_t>(i++)] = x;
  for (int d = 0; d < s.rank; ++d) s.stride[static_cast<size_t>(d)] = 1;
  return s;
}

RegularSection RegularSection::all(const Shape& shape) {
  RegularSection s;
  s.rank = shape.rank;
  for (int d = 0; d < s.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    s.lo[dd] = 0;
    s.hi[dd] = shape[d] - 1;
    s.stride[dd] = 1;
  }
  return s;
}

Point RegularSection::pointAt(Index k) const {
  MC_REQUIRE(k >= 0 && k < numElements());
  Point p;
  p.rank = rank;
  for (int d = rank - 1; d >= 0; --d) {
    const auto dd = static_cast<size_t>(d);
    const Index c = count(d);
    p[d] = lo[dd] + (k % c) * stride[dd];
    k /= c;
  }
  return p;
}

Index RegularSection::positionOf(const Point& p) const {
  MC_REQUIRE(contains(p));
  Index pos = 0;
  for (int d = 0; d < rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    pos = pos * count(d) + (p[d] - lo[dd]) / stride[dd];
  }
  return pos;
}

RegularSection RegularSection::clampToBox(const Point& boxLo,
                                          const Point& boxHi) const {
  MC_REQUIRE(boxLo.rank == rank && boxHi.rank == rank);
  RegularSection out = *this;
  for (int d = 0; d < rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    // First section element >= boxLo[d], staying on this section's lattice.
    Index newLo = lo[dd];
    if (boxLo[d] > newLo) {
      const Index delta = boxLo[d] - newLo;
      newLo += (delta + stride[dd] - 1) / stride[dd] * stride[dd];
    }
    // Last section element <= min(hi, boxHi[d]).
    Index newHi = std::min(hi[dd], boxHi[d]);
    if (newHi >= newLo) {
      newHi = newLo + (newHi - newLo) / stride[dd] * stride[dd];
    }
    out.lo[dd] = newLo;
    out.hi[dd] = newHi;  // may produce an empty dimension (newHi < newLo)
  }
  return out;
}

RegularSection intersectBoxes(const RegularSection& a,
                              const RegularSection& b) {
  MC_REQUIRE(a.rank == b.rank);
  RegularSection out;
  out.rank = a.rank;
  for (int d = 0; d < a.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    MC_REQUIRE(a.stride[dd] == 1 && b.stride[dd] == 1,
               "intersectBoxes requires stride-1 boxes");
    out.lo[dd] = std::max(a.lo[dd], b.lo[dd]);
    out.hi[dd] = std::min(a.hi[dd], b.hi[dd]);
    out.stride[dd] = 1;
  }
  return out;
}

RegularSection expandBox(const RegularSection& box, Index width,
                         const Shape& domain) {
  MC_REQUIRE(box.rank == domain.rank);
  RegularSection out = box;
  for (int d = 0; d < box.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    MC_REQUIRE(box.stride[dd] == 1, "expandBox requires stride-1 boxes");
    out.lo[dd] = std::max<Index>(0, box.lo[dd] - width);
    out.hi[dd] = std::min<Index>(domain[d] - 1, box.hi[dd] + width);
  }
  return out;
}

bool RegularSection::operator==(const RegularSection& o) const {
  if (rank != o.rank) return false;
  for (int d = 0; d < rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    if (lo[dd] != o.lo[dd] || hi[dd] != o.hi[dd] || stride[dd] != o.stride[dd])
      return false;
  }
  return true;
}

}  // namespace mc::layout
