#include "workloads/matvec_session.h"

#include <algorithm>
#include <cmath>

#include "parti/dist_array.h"
#include "server/client_session.h"
#include "server/compute_server.h"

namespace mc::workloads {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

namespace {

double vectorEntry(Index i, int iter) {
  return static_cast<double>((i + iter) % 13) - 6.0;
}

/// Client-side matvec on the client's Parti arrays (BLOCK rows): allgather
/// the operand, multiply the owned row block.  This is the "compute in the
/// client" alternative of Figure 15.
void clientMatvec(Comm& comm, const parti::BlockDistArray<double>& A,
                  const parti::BlockDistArray<double>& x,
                  parti::BlockDistArray<double>& y, double flopsPerSecond) {
  const Index n = A.globalShape()[1];
  const std::vector<double> full = x.gatherGlobal();
  Index myRows = 0;
  comm.compute([&] {
    const RegularSection rows = A.ownedBox();
    if (rows.empty()) return;
    myRows = rows.count(0);
    for (Index i = rows.lo[0]; i <= rows.hi[0]; ++i) {
      double acc = 0;
      for (Index j = 0; j < n; ++j) {
        acc += A.at(Point::of({i, j})) * full[static_cast<size_t>(j)];
      }
      y.at(Point::of({i})) = acc;
    }
  });
  // Era-calibrated arithmetic cost (see MatvecSessionConfig).
  comm.advance(2.0 * static_cast<double>(myRows * n) / flopsPerSecond);
}

}  // namespace

int breakEvenVectors(const MatvecBreakdown& b, int numVectors) {
  // A session that never shipped a vector breaks even immediately: there
  // is no per-vector cost to amortize the fixed cost against.
  if (numVectors == 0) return 0;
  MC_REQUIRE(numVectors > 0);
  const double perVectorServer =
      (b.serverCompute + b.vectorExchange) / numVectors;
  const double fixed = b.scheduleBuild + b.sendMatrix;
  const double gain = b.clientLocalMatvec - perVectorServer;
  if (gain <= 0) return 0;
  // Small epsilon so exact ratios are not pushed up by rounding noise.
  return static_cast<int>(std::ceil(fixed / gain - 1e-9));
}

MatvecBreakdown runMatvecSession(const MatvecSessionConfig& config) {
  MatvecBreakdown result;
  const Index n = config.n;
  const int kServer = 1;

  transport::WorldOptions options;
  options.net.interNode = transport::atmParams();
  options.net.interProgram = transport::atmParams();
  options.net.contention = config.contention;
  options.net.nodesPerProgram = {config.clientProcs, config.serverNodes};

  // One tenancy on the multi-tenant compute server: attach (schedule +
  // matrix phases), a request per vector, detach.  Batch size 1 keeps the
  // per-vector accounting of the original single-session figures.
  auto clientMain = [&](Comm& c) {
    server::SessionConfig scfg;
    scfg.n = n;
    scfg.serverProgram = kServer;
    scfg.method = config.method;
    scfg.flopsPerSecond = config.flopsPerSecond;
    server::ClientSession session(c, scfg);
    const server::AttachStats attach = session.attach();

    c.barrier();
    const double t0 = c.now();
    double serverCompute = 0;
    for (int it = 0; it < config.numVectors; ++it) {
      session.x().fillByPoint(
          [&](const Point& p) { return vectorEntry(p[0], it); });
      serverCompute += session.request().serverComputeSeconds;
    }
    c.barrier();
    const double t1 = c.now();
    session.detach();

    // --- client-local alternative (one matvec) ---------------------------
    c.barrier();
    const double t2 = c.now();
    clientMatvec(c, session.matrix(), session.x(), session.y(),
                 config.flopsPerSecond);
    c.barrier();
    const double t3 = c.now();

    if (c.rank() == 0) {
      result.scheduleBuild = attach.scheduleSeconds;
      result.sendMatrix = attach.matrixSeconds;
      result.serverCompute = serverCompute;
      result.vectorExchange = (t1 - t0) - serverCompute;
      result.clientLocalMatvec = t3 - t2;
    }
  };

  auto serverMain = [&](Comm& c) {
    server::ServerConfig scfg;
    scfg.n = n;
    scfg.totalSessions = 1;
    scfg.queueDepth = 2;
    scfg.maxBatch = 1;
    scfg.method = config.method;
    scfg.flopsPerSecond = config.flopsPerSecond;
    server::ComputeServer srv(c, scfg);
    srv.run();
  };

  World::run({ProgramSpec{"client", config.clientProcs, clientMain},
              ProgramSpec{"server", config.serverProcs, serverMain}},
             options);
  return result;
}

}  // namespace mc::workloads
